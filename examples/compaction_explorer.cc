// compaction_explorer: a terminal rendition of the Acheron demonstration.
// Runs a configurable insert/update/delete workload against a chosen engine
// configuration and periodically renders the shape of the LSM-tree -- files,
// bytes, tombstones, and the delete-persistence clock -- so you can *watch*
// tombstones ride (or fail to ride) down the tree.
//
// Usage:
//   ./example_compaction_explorer [ops] [delete_percent] [dth] [style]
//     ops            total operations              (default 100000)
//     delete_percent share of deletes, 0-90        (default 25)
//     dth            persistence threshold in ops  (default 20000; 0 = off)
//     style          "leveling" | "tiering"        (default leveling)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>

#include "src/env/env.h"
#include "src/lsm/db.h"
#include "src/lsm/version_set.h"
#include "src/workload/workload.h"

namespace {

void RenderTree(acheron::DB* db, uint64_t op, uint64_t dth) {
  std::printf("---- after %llu ops ----\n",
              static_cast<unsigned long long>(op));
  std::printf("%6s %7s %10s %12s  %s\n", "level", "files", "KiB",
              "tombstones", "fill");
  std::string summary;
  db->GetProperty("acheron.level-summary", &summary);
  int level, files;
  long long bytes;
  unsigned long long tombstones;
  const char* p = summary.c_str();
  while (std::sscanf(p, "%d %d %lld %llu", &level, &files, &bytes,
                     &tombstones) == 4) {
    int bars = static_cast<int>(bytes / 16384) + 1;
    if (bars > 40) bars = 40;
    std::printf("%6d %7d %10.1f %12llu  %.*s\n", level, files,
                bytes / 1024.0, tombstones, bars,
                "########################################");
    p = std::strchr(p, '\n');
    if (p == nullptr) break;
    p++;
  }
  std::string ts, age;
  db->GetProperty("acheron.total-tombstones", &ts);
  db->GetProperty("acheron.max-tombstone-age", &age);
  std::printf("live tombstones: %s | oldest age: %s ops", ts.c_str(),
              age.c_str());
  if (dth > 0) {
    std::printf(" | budget: %llu (%.0f%% used)",
                static_cast<unsigned long long>(dth),
                100.0 * std::stod(age) / static_cast<double>(dth));
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const uint64_t ops = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 100000;
  const int delete_percent = argc > 2 ? std::atoi(argv[2]) : 25;
  const uint64_t dth = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 20000;
  const bool tiering = argc > 4 && std::strcmp(argv[4], "tiering") == 0;

  acheron::Options options;
  options.env = acheron::NewMemEnv();  // throwaway exploration
  options.create_if_missing = true;
  options.write_buffer_size = 64 << 10;
  options.max_file_size = 128 << 10;
  options.size_ratio = 4;
  options.disable_wal = true;
  options.delete_persistence_threshold = dth;
  options.compaction_style = tiering ? acheron::CompactionStyle::kTiering
                                     : acheron::CompactionStyle::kLeveling;

  std::printf("acheron compaction explorer -- %llu ops, %d%% deletes, "
              "D_th=%llu, %s\n",
              static_cast<unsigned long long>(ops), delete_percent,
              static_cast<unsigned long long>(dth),
              tiering ? "tiering" : "leveling");

  acheron::DB* raw = nullptr;
  auto s = acheron::DB::Open(options, "/explore", &raw);
  if (!s.ok()) {
    std::fprintf(stderr, "open: %s\n", s.ToString().c_str());
    return 1;
  }
  std::unique_ptr<acheron::DB> db(raw);

  acheron::workload::WorkloadSpec spec;
  spec.num_ops = ops;
  spec.key_space = 10000;
  spec.update_percent = 30;
  spec.delete_percent = delete_percent;
  acheron::workload::Generator gen(spec);

  const uint64_t checkpoint = ops / 5 ? ops / 5 : 1;
  for (uint64_t i = 0; i < ops; i++) {
    acheron::workload::Op op = gen.Next();
    acheron::Status s =
        op.type == acheron::workload::OpType::kDelete
            ? db->Delete(acheron::WriteOptions(), op.key)
            : db->Put(acheron::WriteOptions(), op.key, op.value);
    if (!s.ok()) {
      std::fprintf(stderr, "write failed: %s\n", s.ToString().c_str());
      return 1;
    }
    if ((i + 1) % checkpoint == 0) {
      RenderTree(db.get(), i + 1, dth);
    }
  }

  std::printf("\nfinal accounting:\n");
  acheron::DeleteStats ds = db->GetDeleteStats();
  std::printf("  %s\n", ds.ToString().c_str());
  std::string stats;
  db->GetProperty("acheron.stats", &stats);
  std::printf("  %s\n", stats.c_str());

  db.reset();
  delete options.env;
  return 0;
}
