// Sliding-window streaming scenario: a stream store keeps only the last W
// events. Expired events are deleted as new ones arrive (FIFO deletes).
// Without delete-aware compaction the store's footprint is dominated by
// dead events and tombstones; with FADE it tracks the window size.
//
// Also demonstrates the retention alternative: dropping the expired prefix
// wholesale with a secondary-key purge instead of per-key deletes.
#include <cstdio>
#include <memory>

#include "src/lsm/db.h"

namespace {

std::string EventKey(uint64_t seq) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "evt%012llu",
                static_cast<unsigned long long>(seq));
  return buf;
}

uint64_t DiskBytes(acheron::DB* db) {
  std::string v;
  db->GetProperty("acheron.total-bytes", &v);
  return std::stoull(v);
}

void RunWindowed(uint64_t dth, const char* label) {
  acheron::Options options;
  options.create_if_missing = true;
  options.delete_persistence_threshold = dth;
  options.write_buffer_size = 64 << 10;
  options.disable_wal = true;
  std::string path = std::string("/tmp/acheron_stream_") + label;
  (void)acheron::DestroyDB(path, options);  // a stale dir may not exist

  acheron::DB* raw = nullptr;
  auto s = acheron::DB::Open(options, path, &raw);
  if (!s.ok()) {
    std::fprintf(stderr, "open: %s\n", s.ToString().c_str());
    return;
  }
  std::unique_ptr<acheron::DB> db(raw);

  const uint64_t kWindow = 5000;
  const uint64_t kEvents = 100000;
  const std::string payload(100, 'e');

  for (uint64_t i = 0; i < kEvents; i++) {
    if (!db->Put(acheron::WriteOptions(), EventKey(i), payload).ok()) {
      std::fprintf(stderr, "put failed\n");
      return;
    }
    if (i >= kWindow &&
        !db->Delete(acheron::WriteOptions(), EventKey(i - kWindow)).ok()) {
      std::fprintf(stderr, "delete failed\n");
      return;
    }
  }

  const uint64_t window_bytes = kWindow * (15 + payload.size());
  std::printf("%-18s footprint %8.2f MiB (window itself: %.2f MiB, "
              "overhead %.1fx); live tombstones: ",
              label, DiskBytes(db.get()) / 1048576.0,
              window_bytes / 1048576.0,
              static_cast<double>(DiskBytes(db.get())) / window_bytes);
  std::string ts;
  db->GetProperty("acheron.total-tombstones", &ts);
  std::printf("%s\n", ts.c_str());
  (void)acheron::DestroyDB(path, options);  // best-effort cleanup
}

}  // namespace

int main() {
  std::printf("sliding window of 5k events over a 100k-event stream\n");
  RunWindowed(0, "baseline");
  RunWindowed(20000, "FADE_Dth20k");
  return 0;
}
