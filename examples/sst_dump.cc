// sst_dump: inspect a single Acheron table file -- its properties block
// (including the tombstone metadata the FADE planner runs on) and,
// optionally, every entry.
//
//   ./example_sst_dump <file.sst> [--entries]
#include <cstdio>
#include <cstring>
#include <memory>

#include "src/env/env.h"
#include "src/lsm/dbformat.h"
#include "src/table/table.h"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <file.sst> [--entries]\n", argv[0]);
    return 1;
  }
  const std::string path = argv[1];
  const bool dump_entries = argc > 2 && std::strcmp(argv[2], "--entries") == 0;

  acheron::Env* env = acheron::DefaultEnv();
  uint64_t file_size;
  acheron::Status s = env->GetFileSize(path, &file_size);
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::unique_ptr<acheron::RandomAccessFile> file;
  s = env->NewRandomAccessFile(path, &file);
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  acheron::Options options;
  acheron::InternalKeyComparator icmp(acheron::BytewiseComparator());
  options.comparator = &icmp;
  acheron::Table* raw_table = nullptr;
  s = acheron::Table::Open(options, file.get(), file_size, &raw_table);
  if (!s.ok()) {
    std::fprintf(stderr, "not a readable table: %s\n", s.ToString().c_str());
    return 1;
  }
  std::unique_ptr<acheron::Table> table(raw_table);

  const acheron::TableProperties& props = table->properties();
  std::printf("file:                     %s (%llu bytes)\n", path.c_str(),
              static_cast<unsigned long long>(file_size));
  std::printf("entries:                  %llu\n",
              static_cast<unsigned long long>(props.num_entries));
  std::printf("data blocks:              %llu\n",
              static_cast<unsigned long long>(props.num_data_blocks));
  std::printf("raw key/value bytes:      %llu / %llu\n",
              static_cast<unsigned long long>(props.raw_key_bytes),
              static_cast<unsigned long long>(props.raw_value_bytes));
  std::printf("tombstones:               %llu\n",
              static_cast<unsigned long long>(props.num_tombstones));
  if (props.num_tombstones > 0) {
    std::printf("oldest tombstone seq:     %llu\n",
                static_cast<unsigned long long>(props.earliest_tombstone_time));
  }
  if (!props.max_secondary_key.empty()) {
    std::printf("secondary key range:      [%s .. %s]\n",
                props.min_secondary_key.c_str(),
                props.max_secondary_key.c_str());
  }

  if (dump_entries) {
    std::printf("entries:\n");
    std::unique_ptr<acheron::Iterator> it(
        table->NewIterator(acheron::ReadOptions()));
    for (it->SeekToFirst(); it->Valid(); it->Next()) {
      acheron::ParsedInternalKey parsed;
      if (!acheron::ParseInternalKey(it->key(), &parsed)) {
        std::printf("  <corrupt key>\n");
        continue;
      }
      std::printf("  %-30s @%llu %s %s\n",
                  parsed.user_key.ToString().c_str(),
                  static_cast<unsigned long long>(parsed.sequence),
                  parsed.type == acheron::kTypeDeletion ? "DEL" : "PUT",
                  parsed.type == acheron::kTypeDeletion
                      ? ""
                      : it->value().ToString().substr(0, 40).c_str());
    }
    if (!it->status().ok()) {
      std::fprintf(stderr, "iteration error: %s\n",
                   it->status().ToString().c_str());
      return 1;
    }
  }
  return 0;
}
