// Quickstart: open an Acheron DB, write, read, delete, scan, and inspect
// delete-persistence statistics.
//
//   ./example_quickstart [db_path]
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "src/lsm/db.h"

namespace {
// Examples model production usage: every Status is checked.
void OrDie(const acheron::Status& s) {
  if (!s.ok()) {
    std::fprintf(stderr, "fatal: %s\n", s.ToString().c_str());
    std::exit(1);
  }
}
}  // namespace

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "/tmp/acheron_quickstart";

  acheron::Options options;
  options.create_if_missing = true;
  // The Acheron knob: every delete becomes physically persistent within
  // 100k subsequently ingested operations.
  options.delete_persistence_threshold = 100000;

  acheron::DB* raw = nullptr;
  acheron::Status s = acheron::DB::Open(options, path, &raw);
  if (!s.ok()) {
    std::fprintf(stderr, "open: %s\n", s.ToString().c_str());
    return 1;
  }
  std::unique_ptr<acheron::DB> db(raw);

  // Writes.
  OrDie(db->Put(acheron::WriteOptions(), "user:1001:name", "ada"));
  OrDie(db->Put(acheron::WriteOptions(), "user:1001:email",
                "ada@example.com"));
  OrDie(db->Put(acheron::WriteOptions(), "user:1002:name", "grace"));

  // Point read.
  std::string value;
  OrDie(db->Get(acheron::ReadOptions(), "user:1001:name", &value));
  std::printf("user:1001:name = %s\n", value.c_str());

  // Atomic batch.
  acheron::WriteBatch batch;
  batch.Put("user:1003:name", "edsger");
  batch.Delete("user:1002:name");
  OrDie(db->Write(acheron::WriteOptions(), &batch));

  // Deleted keys are NotFound.
  s = db->Get(acheron::ReadOptions(), "user:1002:name", &value);
  std::printf("user:1002:name -> %s\n", s.ToString().c_str());

  // Prefix scan.
  std::printf("all user keys:\n");
  std::unique_ptr<acheron::Iterator> it(
      db->NewIterator(acheron::ReadOptions()));
  for (it->Seek("user:"); it->Valid() && it->key().starts_with("user:");
       it->Next()) {
    std::printf("  %s = %s\n", it->key().ToString().c_str(),
                it->value().ToString().c_str());
  }

  // Acheron observability: what happened to the deletes?
  acheron::DeleteStats ds = db->GetDeleteStats();
  std::printf("delete stats: %s\n", ds.ToString().c_str());

  std::string stats;
  db->GetProperty("acheron.stats", &stats);
  std::printf("engine stats: %s\n", stats.c_str());
  return 0;
}
