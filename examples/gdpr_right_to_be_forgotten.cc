// Right-to-be-forgotten scenario (GDPR Art. 17 / CCPA): a service must
// guarantee that a user's deleted data is *physically* gone within a fixed
// amount of ingestion, not merely hidden behind tombstones.
//
// The example deletes one user's records, keeps the system running, and
// then audits the raw LSM tree (internal iterator) to show that no trace of
// the user remains -- values or tombstones -- within the configured bound.
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "src/lsm/db.h"
#include "src/lsm/db_impl.h"
#include "src/lsm/dbformat.h"
#include "src/util/random.h"

namespace {

void OrDie(const acheron::Status& s) {
  if (!s.ok()) {
    std::fprintf(stderr, "fatal: %s\n", s.ToString().c_str());
    std::exit(1);
  }
}

std::string UserKey(int user, int record) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "user%05d/rec%05d", user, record);
  return buf;
}

// Audit: scan the *internal* representation (every version, every
// tombstone) for any trace of |user|.
int CountInternalTraces(acheron::DB* db, int user) {
  auto* impl = static_cast<acheron::DBImpl*>(db);
  std::unique_ptr<acheron::Iterator> it(impl->TEST_NewInternalIterator());
  char prefix[32];
  std::snprintf(prefix, sizeof(prefix), "user%05d/", user);
  int traces = 0;
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    if (acheron::ExtractUserKey(it->key()).starts_with(prefix)) traces++;
  }
  return traces;
}

}  // namespace

int main() {
  const uint64_t kDth = 50000;  // compliance budget, in ingested operations

  acheron::Options options;
  options.create_if_missing = true;
  options.delete_persistence_threshold = kDth;
  options.write_buffer_size = 64 << 10;
  options.disable_wal = true;

  acheron::DB* raw = nullptr;
  auto s = acheron::DB::Open(options, "/tmp/acheron_gdpr", &raw);
  if (!s.ok()) {
    std::fprintf(stderr, "open: %s\n", s.ToString().c_str());
    return 1;
  }
  std::unique_ptr<acheron::DB> db(raw);

  // 1. Populate: 200 users x 50 records.
  std::printf("ingesting 200 users x 50 records...\n");
  for (int user = 0; user < 200; user++) {
    for (int rec = 0; rec < 50; rec++) {
      OrDie(db->Put(acheron::WriteOptions(), UserKey(user, rec),
                    "personal-data-" + std::to_string(user)));
    }
  }

  // 2. User 42 invokes the right to be forgotten.
  const int kUser = 42;
  std::printf("deleting all records of user %d...\n", kUser);
  acheron::WriteBatch erase;
  for (int rec = 0; rec < 50; rec++) {
    erase.Delete(UserKey(kUser, rec));
  }
  OrDie(db->Write(acheron::WriteOptions(), &erase));

  // Logically deleted immediately...
  std::string v;
  bool hidden =
      db->Get(acheron::ReadOptions(), UserKey(kUser, 0), &v).IsNotFound();
  std::printf("logically deleted: %s\n", hidden ? "yes" : "NO (bug!)");
  // ...but physically the data (and now tombstones) may still be on disk.
  std::printf("internal traces right after delete: %d\n",
              CountInternalTraces(db.get(), kUser));

  // 3. Normal operation continues; after D_th ingested operations Acheron
  //    guarantees the physical erasure completed.
  std::printf("running %llu ops of regular traffic (the compliance clock)...\n",
              static_cast<unsigned long long>(kDth));
  acheron::Random rnd(1);
  for (uint64_t i = 0; i < kDth + 100; i++) {
    int user = 200 + static_cast<int>(rnd.Uniform(100));
    OrDie(db->Put(acheron::WriteOptions(),
                  UserKey(user, static_cast<int>(rnd.Uniform(50))), "fresh"));
  }

  const int traces = CountInternalTraces(db.get(), kUser);
  std::printf("internal traces after the compliance window: %d %s\n", traces,
              traces == 0 ? "(physically erased)" : "(VIOLATION)");

  acheron::DeleteStats ds = db->GetDeleteStats();
  std::printf("delete stats: %s\n", ds.ToString().c_str());
  return traces == 0 ? 0 : 2;
}
