#include "src/lsm/version_edit.h"

#include <gtest/gtest.h>

namespace acheron {

static void TestEncodeDecode(const VersionEdit& edit) {
  std::string encoded, encoded2;
  edit.EncodeTo(&encoded);
  VersionEdit parsed;
  Status s = parsed.DecodeFrom(encoded);
  ASSERT_TRUE(s.ok()) << s.ToString();
  parsed.EncodeTo(&encoded2);
  EXPECT_EQ(encoded, encoded2);
}

TEST(VersionEditTest, EncodeDecode) {
  static const uint64_t kBig = 1ull << 50;

  VersionEdit edit;
  for (int i = 0; i < 4; i++) {
    TestEncodeDecode(edit);
    FileMetaData f;
    f.number = kBig + 300 + i;
    f.file_size = kBig + 400 + i;
    f.smallest = InternalKey("foo", kBig + 500 + i, kTypeValue);
    f.largest = InternalKey("zoo", kBig + 600 + i, kTypeDeletion);
    f.num_entries = 1000 + i;
    f.num_tombstones = 17 + i;
    f.earliest_tombstone_seq = kBig + 700 + i;
    f.earliest_tombstone_wall_micros = kBig + 800 + i;
    f.min_secondary_key = "sec_min";
    f.max_secondary_key = "sec_max";
    f.run_id = kBig + 300 + i;
    edit.AddFile(3, f);
    edit.RemoveFile(4, kBig + 700 + i);
    edit.SetCompactPointer(i, InternalKey("x", kBig + 900 + i, kTypeValue));
  }

  edit.SetComparatorName("foo");
  edit.SetLogNumber(kBig + 100);
  edit.SetNextFile(kBig + 200);
  edit.SetLastSequence(kBig + 1000);
  TestEncodeDecode(edit);
}

TEST(VersionEditTest, TombstoneMetadataRoundTrips) {
  VersionEdit edit;
  FileMetaData f;
  f.number = 9;
  f.file_size = 1234;
  f.smallest = InternalKey("a", 5, kTypeValue);
  f.largest = InternalKey("z", 6, kTypeValue);
  f.num_entries = 77;
  f.num_tombstones = 13;
  f.earliest_tombstone_seq = 42;
  edit.AddFile(1, f);

  std::string encoded;
  edit.EncodeTo(&encoded);
  VersionEdit parsed;
  ASSERT_TRUE(parsed.DecodeFrom(encoded).ok());
  std::string debug = parsed.DebugString();
  EXPECT_NE(std::string::npos, debug.find("tombstones=13"));
}

TEST(VersionEditTest, RejectsGarbage) {
  VersionEdit edit;
  EXPECT_TRUE(edit.DecodeFrom(Slice("\x42\x99 garbage")).IsCorruption());
  // Truncated new-file record.
  VersionEdit good;
  FileMetaData f;
  f.number = 1;
  f.file_size = 2;
  f.smallest = InternalKey("a", 1, kTypeValue);
  f.largest = InternalKey("b", 2, kTypeValue);
  good.AddFile(0, f);
  std::string enc;
  good.EncodeTo(&enc);
  EXPECT_TRUE(
      edit.DecodeFrom(Slice(enc.data(), enc.size() / 2)).IsCorruption());
}

TEST(VersionEditTest, FileMetaDataHelpers) {
  FileMetaData f;
  EXPECT_FALSE(f.has_tombstones());
  EXPECT_EQ(0.0, f.tombstone_density());
  f.num_entries = 100;
  f.num_tombstones = 25;
  EXPECT_TRUE(f.has_tombstones());
  EXPECT_DOUBLE_EQ(0.25, f.tombstone_density());
}

}  // namespace acheron
