// Unit tests of the merging iterator and the two-level iterator, including
// direction switches, duplicate keys across children, and error channels.
#include "src/lsm/merger.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/table/iterator.h"
#include "src/table/two_level_iterator.h"
#include "src/util/comparator.h"

namespace acheron {

namespace {

// Simple in-memory iterator over a sorted vector of (key, value) pairs.
class VectorIterator : public Iterator {
 public:
  explicit VectorIterator(std::vector<std::pair<std::string, std::string>> kv)
      : kv_(std::move(kv)), index_(kv_.size()) {}

  bool Valid() const override { return index_ < kv_.size(); }
  void SeekToFirst() override { index_ = 0; }
  void SeekToLast() override { index_ = kv_.empty() ? 0 : kv_.size() - 1; }
  void Seek(const Slice& target) override {
    index_ = 0;
    while (index_ < kv_.size() && Slice(kv_[index_].first).compare(target) < 0) {
      index_++;
    }
  }
  void Next() override { index_++; }
  void Prev() override {
    if (index_ == 0) {
      index_ = kv_.size();
    } else {
      index_--;
    }
  }
  Slice key() const override { return kv_[index_].first; }
  Slice value() const override { return kv_[index_].second; }
  Status status() const override { return Status::OK(); }

 private:
  std::vector<std::pair<std::string, std::string>> kv_;
  size_t index_;
};

Iterator* MakeVec(std::vector<std::pair<std::string, std::string>> kv) {
  return new VectorIterator(std::move(kv));
}

std::string Drain(Iterator* it) {
  std::string out;
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    out += it->key().ToString() + "=" + it->value().ToString() + ",";
  }
  return out;
}

}  // namespace

TEST(MergerTest, ZeroChildren) {
  std::unique_ptr<Iterator> it(
      NewMergingIterator(BytewiseComparator(), nullptr, 0));
  it->SeekToFirst();
  EXPECT_FALSE(it->Valid());
  EXPECT_TRUE(it->status().ok());
}

TEST(MergerTest, SingleChildPassThrough) {
  Iterator* children[] = {MakeVec({{"a", "1"}, {"b", "2"}})};
  std::unique_ptr<Iterator> it(
      NewMergingIterator(BytewiseComparator(), children, 1));
  EXPECT_EQ("a=1,b=2,", Drain(it.get()));
}

TEST(MergerTest, InterleavedMerge) {
  Iterator* children[] = {
      MakeVec({{"a", "1"}, {"d", "4"}, {"g", "7"}}),
      MakeVec({{"b", "2"}, {"e", "5"}}),
      MakeVec({{"c", "3"}, {"f", "6"}, {"h", "8"}}),
  };
  std::unique_ptr<Iterator> it(
      NewMergingIterator(BytewiseComparator(), children, 3));
  EXPECT_EQ("a=1,b=2,c=3,d=4,e=5,f=6,g=7,h=8,", Drain(it.get()));
}

TEST(MergerTest, DuplicatesYieldedFromEveryChild) {
  Iterator* children[] = {
      MakeVec({{"k", "first"}}),
      MakeVec({{"k", "second"}}),
  };
  std::unique_ptr<Iterator> it(
      NewMergingIterator(BytewiseComparator(), children, 2));
  it->SeekToFirst();
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ("k", it->key().ToString());
  it->Next();
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ("k", it->key().ToString());
  it->Next();
  EXPECT_FALSE(it->Valid());
}

TEST(MergerTest, SeekLandsOnLowerBound) {
  Iterator* children[] = {
      MakeVec({{"a", "1"}, {"e", "5"}}),
      MakeVec({{"c", "3"}, {"g", "7"}}),
  };
  std::unique_ptr<Iterator> it(
      NewMergingIterator(BytewiseComparator(), children, 2));
  it->Seek("b");
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ("c", it->key().ToString());
  it->Seek("z");
  EXPECT_FALSE(it->Valid());
  it->Seek("");
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ("a", it->key().ToString());
}

TEST(MergerTest, ReverseIteration) {
  Iterator* children[] = {
      MakeVec({{"a", "1"}, {"d", "4"}}),
      MakeVec({{"b", "2"}, {"c", "3"}}),
  };
  std::unique_ptr<Iterator> it(
      NewMergingIterator(BytewiseComparator(), children, 2));
  it->SeekToLast();
  std::string out;
  while (it->Valid()) {
    out += it->key().ToString();
    it->Prev();
  }
  EXPECT_EQ("dcba", out);
}

TEST(MergerTest, DirectionSwitches) {
  Iterator* children[] = {
      MakeVec({{"a", "1"}, {"c", "3"}, {"e", "5"}}),
      MakeVec({{"b", "2"}, {"d", "4"}}),
  };
  std::unique_ptr<Iterator> it(
      NewMergingIterator(BytewiseComparator(), children, 2));
  it->Seek("c");
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ("c", it->key().ToString());
  it->Prev();  // forward -> reverse
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ("b", it->key().ToString());
  it->Next();  // reverse -> forward
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ("c", it->key().ToString());
  it->Next();
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ("d", it->key().ToString());
  it->Prev();
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ("c", it->key().ToString());
}

TEST(IteratorTest, EmptyAndErrorIterators) {
  std::unique_ptr<Iterator> empty(NewEmptyIterator());
  empty->SeekToFirst();
  EXPECT_FALSE(empty->Valid());
  EXPECT_TRUE(empty->status().ok());

  std::unique_ptr<Iterator> err(
      NewErrorIterator(Status::Corruption("boom")));
  err->SeekToFirst();
  EXPECT_FALSE(err->Valid());
  EXPECT_TRUE(err->status().IsCorruption());
}

TEST(IteratorTest, CleanupFunctionsRunOnDestroy) {
  static int cleanups = 0;
  cleanups = 0;
  {
    std::unique_ptr<Iterator> it(NewEmptyIterator());
    auto fn = [](void*, void*) { cleanups++; };
    it->RegisterCleanup(fn, nullptr, nullptr);
    it->RegisterCleanup(fn, nullptr, nullptr);
    it->RegisterCleanup(fn, nullptr, nullptr);
    EXPECT_EQ(0, cleanups);
  }
  EXPECT_EQ(3, cleanups);
}

}  // namespace acheron
