// The crash-recovery matrix: simulate a machine crash at every file-op
// index of a scripted workload (plus torn tails inside the last unsynced
// WAL/MANIFEST append), reopen (or RepairDB), and check the five recovery
// invariants from DESIGN.md. Also unit-tests the FaultInjectionEnv crash
// simulator itself, and pins regression tests for the recovery bugs the
// matrix originally surfaced.
//
// Default runs use a bounded matrix (sampled torn offsets, strided churn
// and repair legs); set ACHERON_CRASH_MATRIX_FULL=1 for the exhaustive
// version. See TESTING.md.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "src/env/env.h"
#include "src/env/fault_env.h"
#include "src/lsm/db.h"
#include "tests/crash_harness.h"

namespace acheron {
namespace {

using crash::CrashRun;
using CrashDataPolicy = FaultInjectionEnv::CrashDataPolicy;

// ---------------- Crash-simulator unit tests ----------------

class CrashSimTest : public ::testing::Test {
 protected:
  CrashSimTest() : base_(NewMemEnv()), env_(base_.get()) {}

  void WriteFile(const std::string& fname, const std::string& a,
                 const std::string& synced_upto_here,
                 const std::string& b = std::string()) {
    std::unique_ptr<WritableFile> f;
    ASSERT_TRUE(env_.NewWritableFile(fname, &f).ok());
    if (!a.empty()) ASSERT_TRUE(f->Append(a).ok());
    if (!synced_upto_here.empty()) ASSERT_TRUE(f->Append(synced_upto_here).ok());
    ASSERT_TRUE(f->Sync().ok());
    if (!b.empty()) ASSERT_TRUE(f->Append(b).ok());
    ASSERT_TRUE(f->Close().ok());
  }

  std::string ReadAll(const std::string& fname) {
    std::string data;
    EXPECT_TRUE(env_.ReadFileToString(fname, &data).ok());
    return data;
  }

  std::unique_ptr<Env> base_;
  FaultInjectionEnv env_;
};

TEST_F(CrashSimTest, CountsMutatingOpsAndTracksSyncedBytes) {
  ASSERT_EQ(0u, env_.FileOpCount());
  WriteFile("/f", "aaaa", "bb", "ccc");
  // create + append + append + sync + append + close = 6 mutating ops.
  EXPECT_EQ(6u, env_.FileOpCount());

  auto files = env_.TrackedFiles();
  ASSERT_EQ(1u, files.count("/f"));
  EXPECT_EQ(6u, files["/f"].synced_bytes);
  EXPECT_EQ(9u, files["/f"].written_bytes);
  EXPECT_EQ(3u, files["/f"].last_append_bytes);
}

TEST_F(CrashSimTest, CrashAfterOpFailsTheIndexedOpAndEverythingAfter) {
  env_.CrashAfterOp(2);  // create, append succeed; 2nd append fails
  std::unique_ptr<WritableFile> f;
  ASSERT_TRUE(env_.NewWritableFile("/f", &f).ok());
  ASSERT_TRUE(f->Append("aa").ok());
  EXPECT_FALSE(env_.crashed());
  Status s = f->Append("bb");
  EXPECT_TRUE(s.IsIOError());
  EXPECT_TRUE(env_.crashed());
  EXPECT_EQ("append", env_.crashed_op().kind);
  EXPECT_EQ("/f", env_.crashed_op().fname);
  EXPECT_EQ(2u, env_.crashed_op().append_size);
  // Every later mutating op keeps failing...
  EXPECT_FALSE(f->Sync().ok());
  EXPECT_FALSE(env_.RemoveFile("/f").ok());
  EXPECT_FALSE(env_.RenameFile("/f", "/g").ok());
  // ...while reads and metadata queries still work.
  EXPECT_TRUE(env_.FileExists("/f"));
  EXPECT_EQ("aa", ReadAll("/f"));
}

TEST_F(CrashSimTest, RestartDropsUnsyncedData) {
  WriteFile("/f", "aaaa", "bb", "ccc");
  ASSERT_TRUE(env_.CrashAndRestart().ok());
  EXPECT_EQ("aaaabb", ReadAll("/f"));
  // The surviving prefix is the new durable baseline.
  auto files = env_.TrackedFiles();
  EXPECT_EQ(6u, files["/f"].synced_bytes);
  EXPECT_EQ(6u, files["/f"].written_bytes);
}

TEST_F(CrashSimTest, RestartKeepWrittenPreservesEverything) {
  WriteFile("/f", "aaaa", "bb", "ccc");
  ASSERT_TRUE(env_.CrashAndRestart(CrashDataPolicy::kKeepWritten).ok());
  EXPECT_EQ("aaaabbccc", ReadAll("/f"));
}

TEST_F(CrashSimTest, RestartHonorsTornTailOverride) {
  WriteFile("/f", "aaaa", "bb", "ccc");
  // Keep one byte of the unsynced tail: a torn append.
  ASSERT_TRUE(env_.CrashAndRestart(CrashDataPolicy::kDropUnsynced,
                                   {{"/f", 7}})
                  .ok());
  EXPECT_EQ("aaaabbc", ReadAll("/f"));
}

TEST_F(CrashSimTest, TornTailOverrideClampsToSyncedAndWritten) {
  WriteFile("/f", "aaaa", "bb", "ccc");
  // Below the synced prefix: clamped up (synced data cannot be lost).
  ASSERT_TRUE(env_.CrashAndRestart(CrashDataPolicy::kDropUnsynced,
                                   {{"/f", 1}})
                  .ok());
  EXPECT_EQ("aaaabb", ReadAll("/f"));
}

TEST_F(CrashSimTest, RenameAndRemoveMoveTracking) {
  WriteFile("/f", "aaaa", "bb", "ccc");
  ASSERT_TRUE(env_.RenameFile("/f", "/g").ok());
  auto files = env_.TrackedFiles();
  EXPECT_EQ(0u, files.count("/f"));
  ASSERT_EQ(1u, files.count("/g"));
  EXPECT_EQ(9u, files["/g"].written_bytes);
  ASSERT_TRUE(env_.CrashAndRestart().ok());
  EXPECT_EQ("aaaabb", ReadAll("/g"));

  ASSERT_TRUE(env_.RemoveFile("/g").ok());
  EXPECT_EQ(0u, env_.TrackedFiles().count("/g"));
}

TEST_F(CrashSimTest, RestartRearmsCleanly) {
  WriteFile("/f", "aaaa", "bb", "ccc");
  env_.CrashAfterOp(0);
  std::unique_ptr<WritableFile> f;
  EXPECT_FALSE(env_.NewWritableFile("/g", &f).ok());
  EXPECT_TRUE(env_.crashed());
  ASSERT_TRUE(env_.CrashAndRestart().ok());
  EXPECT_FALSE(env_.crashed());
  // Disarmed: ops work again.
  ASSERT_TRUE(env_.NewWritableFile("/g", &f).ok());
  ASSERT_TRUE(f->Append("x").ok());
  ASSERT_TRUE(f->Sync().ok());
  ASSERT_TRUE(f->Close().ok());
  EXPECT_EQ("x", ReadAll("/g"));
}

// ---------------- Pinned regression tests ----------------
//
// First surfaced by the matrix (sync mode, crash at the op index right
// after the MANIFEST sync of the first flush): table files were only
// Sync()ed when Options::sync_writes was set, so the synced manifest could
// reference a table whose bytes evaporated with the crash.

TEST(CrashRecoveryRegression, FlushedTableSurvivesMachineCrash) {
  for (bool background : {false, true}) {
    CrashRun run(background);
    DB* db = nullptr;
    ASSERT_TRUE(DB::Open(run.DbOptions(), run.dbname(), &db).ok());
    ASSERT_TRUE(db->Put(WriteOptions(), "k", "v").ok());
    ASSERT_TRUE(db->FlushMemTable().ok());  // acked: durable from here on
    delete db;

    ASSERT_TRUE(run.env()->CrashAndRestart().ok());
    ASSERT_TRUE(DB::Open(run.DbOptions(), run.dbname(), &db).ok())
        << "background=" << background;
    std::string v;
    ASSERT_TRUE(db->Get(ReadOptions(), "k", &v).ok())
        << "background=" << background
        << ": flushed table lost unsynced bytes behind a synced manifest";
    EXPECT_EQ("v", v);
    delete db;
  }
}

TEST(CrashRecoveryRegression, CompactionOutputSurvivesMachineCrash) {
  for (bool background : {false, true}) {
    CrashRun run(background);
    DB* db = nullptr;
    ASSERT_TRUE(DB::Open(run.DbOptions(), run.dbname(), &db).ok());
    for (int i = 0; i < 20; i++) {
      ASSERT_TRUE(
          db->Put(WriteOptions(), "k" + std::to_string(i), "v").ok());
    }
    ASSERT_TRUE(db->FlushMemTable().ok());
    db->CompactRange(nullptr, nullptr);  // rewrites into deeper levels
    ASSERT_TRUE(db->WaitForCompactions().ok());
    delete db;

    ASSERT_TRUE(run.env()->CrashAndRestart().ok());
    ASSERT_TRUE(DB::Open(run.DbOptions(), run.dbname(), &db).ok())
        << "background=" << background;
    std::string v;
    for (int i = 0; i < 20; i++) {
      EXPECT_TRUE(db->Get(ReadOptions(), "k" + std::to_string(i), &v).ok())
          << "background=" << background << " key " << i;
    }
    delete db;
  }
}

// ---------------- The matrix ----------------

bool FullMatrix() {
  const char* e = std::getenv("ACHERON_CRASH_MATRIX_FULL");
  return e != nullptr && e[0] == '1';
}

// Files whose unsynced tail can tear mid-append: the log-structured
// appenders (WAL, MANIFEST, vLog segments). Table files are excluded --
// they sync before install, so their torn tails are the "drop" leg's
// problem, not a distinct recovery surface.
bool IsTornTailCandidate(const std::string& fname) {
  return fname.find(".log") != std::string::npos ||
         fname.find("MANIFEST-") != std::string::npos ||
         fname.find(".vlog") != std::string::npos;
}

std::string Repro(const std::string& mode, uint64_t k, uint64_t total,
                  const FaultInjectionEnv::CrashedOpInfo& op,
                  const std::string& leg, const std::string& torn) {
  std::ostringstream out;
  out << "[crash-matrix repro: mode=" << mode << " k=" << k << "/" << total
      << " crashed_op=" << (op.kind.empty() ? "none" : op.kind);
  if (!op.fname.empty()) {
    out << "(" << op.fname;
    if (op.kind == "append") out << "+" << op.append_size << "B";
    out << ")";
  }
  out << " leg=" << leg;
  if (!torn.empty()) out << " torn=" << torn;
  out << "]";
  return out.str();
}

// Reopen the recovered DB and run the invariant checks.
void ReopenAndCheck(CrashRun& run, const std::string& repro, bool check_ttl,
                    bool check_vlog = false) {
  DB* db = nullptr;
  Status s = DB::Open(run.DbOptions(), run.dbname(), &db);
  ASSERT_TRUE(s.ok()) << repro << " reopen failed: " << s.ToString();
  crash::CheckRecoveredState(db, run.result(), repro);
  if (check_vlog) crash::CheckVlogRecoveredState(db, run.result(), repro);
  if (check_ttl) crash::CheckDeletePersistenceBound(db, repro);
  delete db;
}

// Invariant 5: strip CURRENT and every MANIFEST from the crash state, then
// RepairDB must succeed and the repaired DB must still satisfy the
// workload-prefix invariants.
void RepairAndCheck(CrashRun& run, const std::string& repro, bool check_ttl,
                    bool check_vlog = false) {
  Env* env = run.env();
  std::vector<std::string> children;
  if (!env->GetChildren(run.dbname(), &children).ok()) return;
  size_t remaining = 0;
  for (const std::string& c : children) {
    if (c == "CURRENT" || c.rfind("MANIFEST-", 0) == 0) {
      ASSERT_TRUE(env->RemoveFile(run.dbname() + "/" + c).ok()) << repro;
    } else {
      remaining++;
    }
  }
  if (remaining == 0) {
    // The crash predates any WAL or table: stripping the metadata leaves
    // nothing to repair (RepairDB on a fileless directory reports IOError
    // by design), so the repair invariant is vacuous at this k.
    return;
  }
  Status s = RepairDB(run.dbname(), run.DbOptions());
  ASSERT_TRUE(s.ok()) << repro << " RepairDB failed: " << s.ToString();
  ReopenAndCheck(run, repro, check_ttl, check_vlog);
}

// Runs every crash point k with k % nshards == shard (sharded so ctest can
// parallelize the matrix). Per crash point:
//   leg A ("drop"):  machine crash, unsynced bytes gone, reopen.
//   leg B ("torn"):  same, but a torn tail survives inside the last
//                    unsynced WAL/MANIFEST append (sampled offsets by
//                    default, every byte offset under FULL).
//   leg C ("keep"):  process crash, everything written survives, reopen.
//   leg D ("repair"): machine crash, CURRENT+MANIFEST destroyed, RepairDB.
void RunCrashMatrix(bool background, uint64_t shard, uint64_t nshards,
                    bool async_wal = false, bool range_delete = false,
                    bool vlog = false) {
  const bool full = FullMatrix();
  const std::string mode = std::string(background ? "background" : "sync") +
                           (async_wal ? "+async-wal" : "") +
                           (range_delete ? "+range-delete" : "") +
                           (vlog ? "+vlog" : "");
  auto make_run = [&] {
    CrashRun r(background);
    r.set_async_wal_sync(async_wal);
    if (range_delete) r.set_script(crash::ScriptedRangeDeleteWorkload());
    if (vlog) {
      r.set_script(crash::ScriptedVlogWorkload());
      r.set_value_separation(crash::kVlogThreshold);
    }
    return r;
  };

  // Dry run (twice): learn the op count and assert the schedule is
  // deterministic -- the property that makes "k" a sufficient repro.
  uint64_t total = 0;
  {
    CrashRun dry = make_run();
    dry.RunWorkload(-1);
    ASSERT_TRUE(dry.result().open_status.ok());
    for (const crash::LogicalOp& op : dry.result().ops) {
      ASSERT_TRUE(op.acked) << "dry run must ack every op";
    }
    total = dry.env()->FileOpCount();
    ASSERT_GT(total, 0u);
    CrashRun dry2 = make_run();
    dry2.RunWorkload(-1);
    ASSERT_EQ(total, dry2.env()->FileOpCount())
        << "file-op schedule must be deterministic for k to be a repro";
  }

  for (uint64_t k = shard; k <= total; k += nshards) {
    // ---- leg A: machine crash at op k. ----
    CrashRun run = make_run();
    run.RunWorkload(static_cast<int64_t>(k));
    if (k < total) {
      ASSERT_TRUE(run.env()->crashed())
          << "crash point " << k << "/" << total << " never reached";
    }
    const auto crashed_op = run.env()->crashed_op();
    const auto files = run.env()->TrackedFiles();
    ASSERT_TRUE(run.env()->CrashAndRestart().ok());
    // The TTL churn (invariant 4) dominates matrix cost; stride it unless
    // the full matrix was requested.
    const bool check_ttl = full || (k % 4 == 0);
    ReopenAndCheck(run, Repro(mode, k, total, crashed_op, "drop", ""),
                   check_ttl, vlog);
    if (::testing::Test::HasFatalFailure()) return;

    // ---- leg B: torn tails within the last unsynced append. ----
    for (const auto& entry : files) {
      const std::string& fname = entry.first;
      const FaultInjectionEnv::FileCrashInfo& info = entry.second;
      if (!IsTornTailCandidate(fname)) continue;
      if (info.written_bytes <= info.synced_bytes) continue;
      if (info.last_append_bytes == 0) continue;
      const uint64_t region_start =
          info.written_bytes - std::min(info.last_append_bytes,
                                        info.written_bytes - info.synced_bytes);
      std::set<uint64_t> targets;
      if (full) {
        for (uint64_t t = region_start + 1; t < info.written_bytes; t++) {
          targets.insert(t);
        }
      } else {
        const uint64_t len = info.written_bytes - region_start;
        targets.insert(region_start + 1);
        targets.insert(region_start + len / 2);
        targets.insert(info.written_bytes - 1);
      }
      for (uint64_t target : targets) {
        if (target <= info.synced_bytes || target >= info.written_bytes) {
          continue;
        }
        CrashRun torn = make_run();
        torn.RunWorkload(static_cast<int64_t>(k));
        std::string tag = fname + "@" + std::to_string(target);
        ASSERT_TRUE(torn.env()
                        ->CrashAndRestart(CrashDataPolicy::kDropUnsynced,
                                          {{fname, target}})
                        .ok());
        ReopenAndCheck(torn,
                       Repro(mode, k, total, crashed_op, "torn", tag),
                       /*check_ttl=*/false, vlog);
        if (::testing::Test::HasFatalFailure()) return;
      }
    }

    // ---- leg C: process crash (everything written survives). ----
    {
      CrashRun keep = make_run();
      keep.RunWorkload(static_cast<int64_t>(k));
      ASSERT_TRUE(
          keep.env()->CrashAndRestart(CrashDataPolicy::kKeepWritten).ok());
      ReopenAndCheck(keep, Repro(mode, k, total, crashed_op, "keep", ""),
                     /*check_ttl=*/false, vlog);
      if (::testing::Test::HasFatalFailure()) return;
    }

    // ---- leg D: RepairDB on the crash state, metadata destroyed. ----
    if (full || (k % 3 == 0)) {
      CrashRun rep = make_run();
      rep.RunWorkload(static_cast<int64_t>(k));
      ASSERT_TRUE(rep.env()->CrashAndRestart().ok());
      RepairAndCheck(rep, Repro(mode, k, total, crashed_op, "repair", ""),
                     /*check_ttl=*/full, vlog);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

TEST(CrashMatrixSync, Shard0) { RunCrashMatrix(false, 0, 4); }
TEST(CrashMatrixSync, Shard1) { RunCrashMatrix(false, 1, 4); }
TEST(CrashMatrixSync, Shard2) { RunCrashMatrix(false, 2, 4); }
TEST(CrashMatrixSync, Shard3) { RunCrashMatrix(false, 3, 4); }
TEST(CrashMatrixBackground, Shard0) { RunCrashMatrix(true, 0, 4); }
TEST(CrashMatrixBackground, Shard1) { RunCrashMatrix(true, 1, 4); }
TEST(CrashMatrixBackground, Shard2) { RunCrashMatrix(true, 2, 4); }
TEST(CrashMatrixBackground, Shard3) { RunCrashMatrix(true, 3, 4); }

// Async group-commit WAL syncs (Options::async_wal_sync) through the same
// matrix: the fsync is numbered at submit and the leader still waits for
// its completion, so the invariants and the determinism assertion must hold
// unchanged in both pipeline modes.
TEST(CrashMatrixAsyncWalSync, Shard0) { RunCrashMatrix(false, 0, 2, true); }
TEST(CrashMatrixAsyncWalSync, Shard1) { RunCrashMatrix(false, 1, 2, true); }
TEST(CrashMatrixAsyncWalBackground, Shard0) { RunCrashMatrix(true, 0, 2, true); }
TEST(CrashMatrixAsyncWalBackground, Shard1) { RunCrashMatrix(true, 1, 2, true); }

// The range-delete workload through the same matrix: every crash point, all
// four legs, in both compaction modes and with async WAL syncs. The
// invariant set adds "a durable range delete never resurrects a covered
// key" (checked inside CheckRecoveredState for range entries).
TEST(CrashMatrixRangeDelete, Shard0) {
  RunCrashMatrix(false, 0, 2, false, true);
}
TEST(CrashMatrixRangeDelete, Shard1) {
  RunCrashMatrix(false, 1, 2, false, true);
}
TEST(CrashMatrixRangeDeleteBackground, Shard0) {
  RunCrashMatrix(true, 0, 2, false, true);
}
TEST(CrashMatrixRangeDeleteBackground, Shard1) {
  RunCrashMatrix(true, 1, 2, false, true);
}
TEST(CrashMatrixRangeDeleteAsyncWal, Shard0) {
  RunCrashMatrix(false, 0, 2, true, true);
}
TEST(CrashMatrixRangeDeleteAsyncWal, Shard1) {
  RunCrashMatrix(false, 1, 2, true, true);
}
TEST(CrashMatrixRangeDeleteAsyncWalBackground, Shard0) {
  RunCrashMatrix(true, 0, 2, true, true);
}
TEST(CrashMatrixRangeDeleteAsyncWalBackground, Shard1) {
  RunCrashMatrix(true, 1, 2, true, true);
}

// The key-value-separated workload through the same matrix: every crash
// point, all four legs (the torn leg now also tears vLog segment tails, and
// the repair leg salvages orphaned segments), in both compaction modes and
// with async WAL syncs. The invariant set adds number 7: an acked write
// whose value went to the vLog survives restart, and a persisted delete's
// value bytes never resurrect (CheckVlogRecoveredState). The enumerated
// crash points include the vLog appends/syncs, head rotations, seals, and
// the GC relocation the workload deliberately drives.
TEST(CrashMatrixVlog, Shard0) {
  RunCrashMatrix(false, 0, 2, false, false, true);
}
TEST(CrashMatrixVlog, Shard1) {
  RunCrashMatrix(false, 1, 2, false, false, true);
}
TEST(CrashMatrixVlogBackground, Shard0) {
  RunCrashMatrix(true, 0, 2, false, false, true);
}
TEST(CrashMatrixVlogBackground, Shard1) {
  RunCrashMatrix(true, 1, 2, false, false, true);
}
TEST(CrashMatrixVlogAsyncWal, Shard0) {
  RunCrashMatrix(false, 0, 2, true, false, true);
}
TEST(CrashMatrixVlogAsyncWal, Shard1) {
  RunCrashMatrix(false, 1, 2, true, false, true);
}
TEST(CrashMatrixVlogAsyncWalBackground, Shard0) {
  RunCrashMatrix(true, 0, 2, true, false, true);
}
TEST(CrashMatrixVlogAsyncWalBackground, Shard1) {
  RunCrashMatrix(true, 1, 2, true, false, true);
}

// The vLog workload must actually reach the GC-relocation path, or the
// matrix's crash-during-GC coverage silently evaporates if the script or
// the GC heuristics drift. Pin it: a fault-free run ends with at least one
// GC run that relocated live values, and -- after a reopen, proving the
// monitor journal round-trips -- a drained value-purge backlog with
// purges on the books.
TEST(CrashMatrixVlogWorkload, DrivesGcRelocationAndDrainsBacklog) {
  for (bool background : {false, true}) {
    CrashRun run(background);
    run.set_script(crash::ScriptedVlogWorkload());
    run.set_value_separation(crash::kVlogThreshold);
    DB* db = nullptr;
    ASSERT_TRUE(DB::Open(run.DbOptions(), run.dbname(), &db).ok());
    std::vector<crash::LogicalOp> ops = crash::ScriptedVlogWorkload();
    for (crash::LogicalOp& op : ops) {
      switch (op.kind) {
        case crash::LogicalOp::kWrite: {
          WriteBatch batch;
          for (const crash::Entry& e : op.entries) {
            if (e.is_delete) {
              batch.Delete(e.key);
            } else {
              batch.Put(e.key, e.value);
            }
          }
          WriteOptions w;
          w.sync = op.sync;
          ASSERT_TRUE(db->Write(w, &batch).ok()) << "background=" << background;
          break;
        }
        case crash::LogicalOp::kFlush:
          ASSERT_TRUE(db->FlushMemTable().ok()) << "background=" << background;
          break;
        case crash::LogicalOp::kCompact:
          db->CompactRange(nullptr, nullptr);
          break;
      }
    }
    const InternalStats stats = db->GetStats();
    EXPECT_GT(stats.vlog_gc_runs, 0u)
        << "background=" << background
        << ": the scripted vLog workload no longer drives GC";
    EXPECT_GT(stats.vlog_gc_values_relocated, 0u)
        << "background=" << background
        << ": the scripted vLog workload no longer drives a relocation";
    delete db;

    ASSERT_TRUE(DB::Open(run.DbOptions(), run.dbname(), &db).ok());
    const DeleteStats ds = db->GetDeleteStats();
    EXPECT_GT(ds.values_purged, 0u) << "background=" << background;
    EXPECT_EQ(ds.value_purge_backlog, 0u) << "background=" << background;
    delete db;
  }
}

}  // namespace
}  // namespace acheron
