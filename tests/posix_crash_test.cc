// A sampled crash-matrix shard against the real filesystem: the same
// scripted workload and invariants as the MemEnv matrix, but with the
// FaultInjectionEnv wrapping an unbuffered PosixEnv (see NewPosixEnv).
// Unbuffered writes are required: the fault env's durability model assumes
// every Append reaches the tracked file immediately, which the default
// 64KiB user-space write buffer would violate.
//
// The k dimension is sampled coarsely (real fsyncs make each run orders of
// magnitude slower than MemEnv); the MemEnv matrix remains the exhaustive
// check, this shard proves the simulation holds off the in-memory fake.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/env/env.h"
#include "src/env/fault_env.h"
#include "src/lsm/db.h"
#include "tests/crash_harness.h"

namespace acheron {
namespace {

using crash::CrashRun;

// Build-directory-relative scratch database, wiped before every run.
// One directory per mode: ctest runs the two shard tests concurrently.
std::string ScratchDbName(bool background) {
  return background ? "posix_crash_scratch_db_bg" : "posix_crash_scratch_db";
}

void WipeScratchDir(bool background) {
  Env* env = DefaultEnv();
  const std::string dbname = ScratchDbName(background);
  std::vector<std::string> children;
  if (env->GetChildren(dbname, &children).ok()) {
    for (const std::string& c : children) {
      ASSERT_TRUE(env->RemoveFile(dbname + "/" + c).ok());
    }
    ASSERT_TRUE(env->RemoveDir(dbname).ok());
  }
}

CrashRun MakePosixRun(bool background) {
  WipeScratchDir(background);
  return CrashRun(background, std::unique_ptr<Env>(NewPosixEnv(true)),
                  ScratchDbName(background));
}

void RunPosixShard(bool background) {
  // Dry run: learn the op count and confirm the schedule matches a fresh
  // execution (the determinism the repro strings depend on).
  uint64_t total = 0;
  {
    CrashRun dry = MakePosixRun(background);
    dry.RunWorkload(-1);
    ASSERT_TRUE(dry.result().open_status.ok());
    total = dry.env()->FileOpCount();
    ASSERT_GT(total, 0u);
  }

  // ~7 crash points spread over the schedule, ends included.
  const uint64_t stride = std::max<uint64_t>(total / 6, 1);
  for (uint64_t k = 0; k <= total; k += stride) {
    const std::string repro =
        std::string("[posix crash repro: mode=") +
        (background ? "background" : "sync") + " k=" + std::to_string(k) +
        "/" + std::to_string(total) + "]";
    CrashRun run = MakePosixRun(background);
    if (::testing::Test::HasFatalFailure()) return;
    run.RunWorkload(static_cast<int64_t>(k));
    ASSERT_TRUE(run.env()->CrashAndRestart().ok()) << repro;

    DB* db = nullptr;
    Status s = DB::Open(run.DbOptions(), run.dbname(), &db);
    ASSERT_TRUE(s.ok()) << repro << " open failed: " << s.ToString();
    crash::CheckRecoveredState(db, run.result(), repro);
    delete db;
    if (::testing::Test::HasFatalFailure()) return;
  }
  WipeScratchDir(background);
}

TEST(PosixCrashShard, SampledMatrixSync) { RunPosixShard(false); }

TEST(PosixCrashShard, SampledMatrixBackground) { RunPosixShard(true); }

}  // namespace
}  // namespace acheron
