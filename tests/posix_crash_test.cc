// A sampled crash-matrix shard against the real filesystem: the same
// scripted workload and invariants as the MemEnv matrix, but with the
// FaultInjectionEnv wrapping an unbuffered PosixEnv (see NewPosixEnv).
// Unbuffered writes are required: the fault env's durability model assumes
// every Append reaches the tracked file immediately, which the default
// 64KiB user-space write buffer would violate.
//
// The k dimension is sampled coarsely (real fsyncs make each run orders of
// magnitude slower than MemEnv); the MemEnv matrix remains the exhaustive
// check, this shard proves the simulation holds off the in-memory fake.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/env/env.h"
#include "src/env/fault_env.h"
#include "src/lsm/db.h"
#include "tests/crash_harness.h"

namespace acheron {
namespace {

using crash::CrashRun;

// Build-directory-relative scratch database, wiped before every run.
// One directory per mode: ctest runs the two shard tests concurrently.
std::string ScratchDbName(bool background) {
  return background ? "posix_crash_scratch_db_bg" : "posix_crash_scratch_db";
}

void WipeScratchDir(bool background) {
  Env* env = DefaultEnv();
  const std::string dbname = ScratchDbName(background);
  std::vector<std::string> children;
  if (env->GetChildren(dbname, &children).ok()) {
    for (const std::string& c : children) {
      ASSERT_TRUE(env->RemoveFile(dbname + "/" + c).ok());
    }
    ASSERT_TRUE(env->RemoveDir(dbname).ok());
  }
}

CrashRun MakePosixRun(bool background) {
  WipeScratchDir(background);
  return CrashRun(background, std::unique_ptr<Env>(NewPosixEnv(true)),
                  ScratchDbName(background));
}

void RunPosixShard(bool background) {
  // Dry run: learn the op count and confirm the schedule matches a fresh
  // execution (the determinism the repro strings depend on).
  uint64_t total = 0;
  {
    CrashRun dry = MakePosixRun(background);
    dry.RunWorkload(-1);
    ASSERT_TRUE(dry.result().open_status.ok());
    total = dry.env()->FileOpCount();
    ASSERT_GT(total, 0u);
  }

  // ~7 crash points spread over the schedule, ends included.
  const uint64_t stride = std::max<uint64_t>(total / 6, 1);
  for (uint64_t k = 0; k <= total; k += stride) {
    const std::string repro =
        std::string("[posix crash repro: mode=") +
        (background ? "background" : "sync") + " k=" + std::to_string(k) +
        "/" + std::to_string(total) + "]";
    CrashRun run = MakePosixRun(background);
    if (::testing::Test::HasFatalFailure()) return;
    run.RunWorkload(static_cast<int64_t>(k));
    ASSERT_TRUE(run.env()->CrashAndRestart().ok()) << repro;

    DB* db = nullptr;
    Status s = DB::Open(run.DbOptions(), run.dbname(), &db);
    ASSERT_TRUE(s.ok()) << repro << " open failed: " << s.ToString();
    crash::CheckRecoveredState(db, run.result(), repro);
    delete db;
    if (::testing::Test::HasFatalFailure()) return;
  }
  WipeScratchDir(background);
}

TEST(PosixCrashShard, SampledMatrixSync) { RunPosixShard(false); }

TEST(PosixCrashShard, SampledMatrixBackground) { RunPosixShard(true); }

// --------------------------------------------------------------------------
// mmap read path under crash simulation. PosixEnv serves RandomAccessFiles
// via a fixed-length read-only mapping taken at open (see posix_env.cc); a
// crash that drops unsynced data must leave a reopened reader seeing
// exactly the synced prefix -- never a torn tail -- and the mmap and pread
// (budget=0) paths must agree byte-for-byte.
// --------------------------------------------------------------------------

namespace {

// Reads the whole of |fname| through |env| and appends EOF probes: a read
// starting at the persisted length must come back empty with OK, a read
// straddling it must come back short.
void ReadBackAndProbe(Env* env, const std::string& fname,
                      uint64_t persisted, std::string* contents) {
  std::unique_ptr<RandomAccessFile> file;
  ASSERT_TRUE(env->NewRandomAccessFile(fname, &file).ok());

  std::vector<char> scratch(persisted + 4096);
  Slice result;
  ASSERT_TRUE(file->Read(0, persisted + 4096, &result, scratch.data()).ok());
  ASSERT_EQ(persisted, result.size()) << "observed bytes past synced prefix";
  contents->assign(result.data(), result.size());

  ASSERT_TRUE(file->Read(persisted, 64, &result, scratch.data()).ok());
  EXPECT_EQ(0u, result.size()) << "read at EOF must be empty, not torn";
  if (persisted >= 16) {
    ASSERT_TRUE(
        file->Read(persisted - 16, 4096, &result, scratch.data()).ok());
    EXPECT_EQ(16u, result.size()) << "straddling read must clamp at EOF";
  }
}

}  // namespace

TEST(PosixMmapCrash, MmapNeverObservesPastSyncedPrefix) {
  const std::string dir = "posix_mmap_crash_scratch";
  const std::string fname = dir + "/table.dat";
  std::unique_ptr<Env> base(NewPosixEnv(/*unbuffered_writes=*/true));
  FaultInjectionEnv fenv(base.get());
  ASSERT_TRUE(fenv.CreateDir(dir).ok());
  if (fenv.FileExists(fname)) ASSERT_TRUE(fenv.RemoveFile(fname).ok());

  // 8KiB synced 'A' prefix, then 8KiB of unsynced 'B' that the crash drops.
  const std::string synced(8192, 'A');
  const std::string unsynced(8192, 'B');
  {
    std::unique_ptr<WritableFile> wf;
    ASSERT_TRUE(fenv.NewWritableFile(fname, &wf).ok());
    ASSERT_TRUE(wf->Append(synced).ok());
    ASSERT_TRUE(wf->Sync().ok());
    ASSERT_TRUE(wf->Append(unsynced).ok());
    ASSERT_TRUE(wf->Close().ok());  // close(2) does not imply durability
  }
  ASSERT_TRUE(
      fenv.CrashAndRestart(FaultInjectionEnv::CrashDataPolicy::kDropUnsynced)
          .ok());

  // Reopened through the default (mmap-serving) env: the mapping length is
  // captured post-crash, so the reader structurally cannot see 'B' bytes.
  std::string via_mmap;
  ReadBackAndProbe(&fenv, fname, synced.size(), &via_mmap);
  if (::testing::Test::HasFatalFailure()) return;
  EXPECT_EQ(synced, via_mmap);

  // Equivalence: a pread-only env (mmap budget 0) must agree byte-for-byte.
  std::unique_ptr<Env> pread_env(
      NewPosixEnv(/*unbuffered_writes=*/true, /*mmap_budget=*/0));
  std::string via_pread;
  ReadBackAndProbe(pread_env.get(), fname, synced.size(), &via_pread);
  if (::testing::Test::HasFatalFailure()) return;
  EXPECT_EQ(via_mmap, via_pread);

  ASSERT_TRUE(fenv.RemoveFile(fname).ok());
  ASSERT_TRUE(fenv.RemoveDir(dir).ok());
}

TEST(PosixMmapCrash, BudgetExhaustionFallsBackToPread) {
  // With a budget of one mapping, the second open must transparently fall
  // back to pread and still serve identical bytes; releasing the first
  // reader hands its slot to a later open.
  const std::string dir = "posix_mmap_budget_scratch";
  std::unique_ptr<Env> env(
      NewPosixEnv(/*unbuffered_writes=*/false, /*mmap_budget=*/1));
  ASSERT_TRUE(env->CreateDir(dir).ok());

  const std::string payload = "acheron-mmap-budget-payload";
  std::vector<std::string> names;
  for (int i = 0; i < 3; i++) {
    names.push_back(dir + "/f" + std::to_string(i));
    ASSERT_TRUE(env->WriteStringToFile(payload, names.back()).ok());
  }

  char scratch[64];
  Slice result;
  {
    std::unique_ptr<RandomAccessFile> a, b;
    ASSERT_TRUE(env->NewRandomAccessFile(names[0], &a).ok());  // takes slot
    ASSERT_TRUE(env->NewRandomAccessFile(names[1], &b).ok());  // pread path
    ASSERT_TRUE(a->Read(0, sizeof(scratch), &result, scratch).ok());
    EXPECT_EQ(payload, result.ToString());
    ASSERT_TRUE(b->Read(0, sizeof(scratch), &result, scratch).ok());
    EXPECT_EQ(payload, result.ToString());
  }  // both closed: the mmap slot is back

  std::unique_ptr<RandomAccessFile> c;
  ASSERT_TRUE(env->NewRandomAccessFile(names[2], &c).ok());
  ASSERT_TRUE(c->Read(0, sizeof(scratch), &result, scratch).ok());
  EXPECT_EQ(payload, result.ToString());
  c.reset();

  for (const auto& n : names) ASSERT_TRUE(env->RemoveFile(n).ok());
  ASSERT_TRUE(env->RemoveDir(dir).ok());
}

}  // namespace
}  // namespace acheron
