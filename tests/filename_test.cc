#include "src/lsm/filename.h"

#include <gtest/gtest.h>

namespace acheron {

TEST(FileNameTest, Parse) {
  Slice db;
  FileType type;
  uint64_t number;

  // Successful parses
  static struct {
    const char* fname;
    uint64_t number;
    FileType type;
  } cases[] = {
      {"100.log", 100, kLogFile},
      {"0.log", 0, kLogFile},
      {"0.sst", 0, kTableFile},
      {"CURRENT", 0, kCurrentFile},
      {"LOCK", 0, kDBLockFile},
      {"MANIFEST-2", 2, kDescriptorFile},
      {"MANIFEST-7", 7, kDescriptorFile},
      {"18446744073709551615.log", 18446744073709551615ull, kLogFile},
  };
  for (const auto& c : cases) {
    std::string f = c.fname;
    ASSERT_TRUE(ParseFileName(f, &number, &type)) << f;
    EXPECT_EQ(c.type, type) << f;
    EXPECT_EQ(c.number, number) << f;
  }

  // Errors
  static const char* errors[] = {"",
                                 "foo",
                                 "foo-dx-100.log",
                                 ".log",
                                 "",
                                 "manifest",
                                 "CURREN",
                                 "CURRENTX",
                                 "MANIFES",
                                 "MANIFEST",
                                 "MANIFEST-",
                                 "XMANIFEST-3",
                                 "MANIFEST-3x",
                                 "LOC",
                                 "LOCKx",
                                 "100",
                                 "100.",
                                 "100.lop"};
  for (const char* fname : errors) {
    std::string f = fname;
    EXPECT_TRUE(!ParseFileName(f, &number, &type)) << f;
  }
}

TEST(FileNameTest, Construction) {
  uint64_t number;
  FileType type;
  std::string fname;

  fname = CurrentFileName("foo");
  EXPECT_EQ("foo/", std::string(fname.data(), 4));
  ASSERT_TRUE(ParseFileName(fname.c_str() + 4, &number, &type));
  EXPECT_EQ(0u, number);
  EXPECT_EQ(kCurrentFile, type);

  fname = LockFileName("foo");
  EXPECT_EQ("foo/", std::string(fname.data(), 4));
  ASSERT_TRUE(ParseFileName(fname.c_str() + 4, &number, &type));
  EXPECT_EQ(0u, number);
  EXPECT_EQ(kDBLockFile, type);

  fname = LogFileName("foo", 192);
  EXPECT_EQ("foo/", std::string(fname.data(), 4));
  ASSERT_TRUE(ParseFileName(fname.c_str() + 4, &number, &type));
  EXPECT_EQ(192u, number);
  EXPECT_EQ(kLogFile, type);

  fname = TableFileName("bar", 200);
  EXPECT_EQ("bar/", std::string(fname.data(), 4));
  ASSERT_TRUE(ParseFileName(fname.c_str() + 4, &number, &type));
  EXPECT_EQ(200u, number);
  EXPECT_EQ(kTableFile, type);

  fname = DescriptorFileName("bar", 100);
  EXPECT_EQ("bar/", std::string(fname.data(), 4));
  ASSERT_TRUE(ParseFileName(fname.c_str() + 4, &number, &type));
  EXPECT_EQ(100u, number);
  EXPECT_EQ(kDescriptorFile, type);

  fname = TempFileName("tmp", 999);
  EXPECT_EQ("tmp/", std::string(fname.data(), 4));
  ASSERT_TRUE(ParseFileName(fname.c_str() + 4, &number, &type));
  EXPECT_EQ(999u, number);
  EXPECT_EQ(kTempFile, type);
}

}  // namespace acheron
