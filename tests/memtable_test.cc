#include "src/memtable/memtable.h"

#include <gtest/gtest.h>

#include <memory>

namespace acheron {

class MemTableTest : public ::testing::Test {
 protected:
  MemTableTest() : icmp_(BytewiseComparator()), mem_(new MemTable(icmp_)) {
    mem_->Ref();
  }
  ~MemTableTest() override { mem_->Unref(); }

  bool Get(const Slice& key, SequenceNumber seq, std::string* value,
           Status* s) {
    LookupKey lkey(key, seq);
    return mem_->Get(lkey, value, s);
  }

  InternalKeyComparator icmp_;
  MemTable* mem_;
};

TEST_F(MemTableTest, AddAndGet) {
  mem_->Add(1, kTypeValue, "key1", "value1");
  mem_->Add(2, kTypeValue, "key2", "value2");

  std::string value;
  Status s;
  ASSERT_TRUE(Get("key1", 10, &value, &s));
  EXPECT_EQ("value1", value);
  ASSERT_TRUE(Get("key2", 10, &value, &s));
  EXPECT_EQ("value2", value);
  EXPECT_FALSE(Get("key3", 10, &value, &s));
}

TEST_F(MemTableTest, DeleteHidesValue) {
  mem_->Add(1, kTypeValue, "k", "v");
  mem_->Add(2, kTypeDeletion, "k", "");

  std::string value;
  Status s;
  ASSERT_TRUE(Get("k", 10, &value, &s));
  EXPECT_TRUE(s.IsNotFound());
}

TEST_F(MemTableTest, SnapshotReads) {
  mem_->Add(1, kTypeValue, "k", "v1");
  mem_->Add(5, kTypeValue, "k", "v2");

  std::string value;
  Status s = Status::OK();
  // Read as of seq 3: sees v1.
  ASSERT_TRUE(Get("k", 3, &value, &s));
  EXPECT_EQ("v1", value);
  // Read as of seq 10: sees v2.
  ASSERT_TRUE(Get("k", 10, &value, &s));
  EXPECT_EQ("v2", value);
  // Read as of seq 0: sees nothing.
  EXPECT_FALSE(Get("k", 0, &value, &s));
}

TEST_F(MemTableTest, TombstoneStats) {
  EXPECT_EQ(0u, mem_->num_tombstones());
  EXPECT_EQ(kMaxSequenceNumber, mem_->earliest_tombstone_seq());

  mem_->Add(1, kTypeValue, "a", "x");
  mem_->Add(7, kTypeDeletion, "a", "");
  mem_->Add(9, kTypeDeletion, "b", "");

  EXPECT_EQ(2u, mem_->num_tombstones());
  EXPECT_EQ(7u, mem_->earliest_tombstone_seq());
  EXPECT_EQ(3u, mem_->num_entries());
}

TEST_F(MemTableTest, IteratorYieldsSortedInternalKeys) {
  mem_->Add(3, kTypeValue, "b", "vb");
  mem_->Add(1, kTypeValue, "a", "va");
  mem_->Add(2, kTypeValue, "c", "vc");
  mem_->Add(4, kTypeValue, "a", "va2");  // newer version of "a"

  std::unique_ptr<Iterator> it(mem_->NewIterator());
  it->SeekToFirst();
  // "a" seq 4 comes before "a" seq 1 (desc seq within same user key).
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ("a", ExtractUserKey(it->key()).ToString());
  EXPECT_EQ(4u, ExtractSequence(it->key()));
  EXPECT_EQ("va2", it->value().ToString());
  it->Next();
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ("a", ExtractUserKey(it->key()).ToString());
  EXPECT_EQ(1u, ExtractSequence(it->key()));
  it->Next();
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ("b", ExtractUserKey(it->key()).ToString());
  it->Next();
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ("c", ExtractUserKey(it->key()).ToString());
  it->Next();
  EXPECT_FALSE(it->Valid());
}

TEST_F(MemTableTest, IteratorSeek) {
  for (int i = 0; i < 100; i++) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "key%03d", i);
    mem_->Add(i + 1, kTypeValue, buf, "v");
  }
  std::unique_ptr<Iterator> it(mem_->NewIterator());
  std::string target;
  AppendInternalKey(&target, ParsedInternalKey("key050", kMaxSequenceNumber,
                                               kValueTypeForSeek));
  it->Seek(target);
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ("key050", ExtractUserKey(it->key()).ToString());
}

TEST_F(MemTableTest, MemoryUsageGrows) {
  size_t before = mem_->ApproximateMemoryUsage();
  for (int i = 0; i < 1000; i++) {
    mem_->Add(i + 1, kTypeValue, "key" + std::to_string(i),
              std::string(100, 'v'));
  }
  EXPECT_GT(mem_->ApproximateMemoryUsage(), before + 100 * 1000);
}

TEST_F(MemTableTest, EmptyValueAndBinaryKeys) {
  std::string key_with_nul("k\0x", 3);
  mem_->Add(1, kTypeValue, key_with_nul, "");
  std::string value = "sentinel";
  Status s;
  ASSERT_TRUE(Get(key_with_nul, 5, &value, &s));
  EXPECT_EQ("", value);
}

}  // namespace acheron
