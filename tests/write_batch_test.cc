#include "src/lsm/write_batch.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/lsm/write_batch_internal.h"
#include "src/memtable/memtable.h"

namespace acheron {

static std::string PrintContents(WriteBatch* b) {
  InternalKeyComparator cmp(BytewiseComparator());
  MemTable* mem = new MemTable(cmp);
  mem->Ref();
  std::string state;
  Status s = WriteBatchInternal::InsertInto(b, mem);
  int count = 0;
  Iterator* iter = mem->NewIterator();
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    ParsedInternalKey ikey;
    EXPECT_TRUE(ParseInternalKey(iter->key(), &ikey));
    switch (ikey.type) {
      case kTypeValue:
        state.append("Put(");
        state.append(ikey.user_key.ToString());
        state.append(", ");
        state.append(iter->value().ToString());
        state.append(")");
        count++;
        break;
      case kTypeDeletion:
        state.append("Delete(");
        state.append(ikey.user_key.ToString());
        state.append(")");
        count++;
        break;
    }
    state.append("@");
    state.append(std::to_string(ikey.sequence));
  }
  delete iter;
  if (!s.ok()) {
    state.append("ParseError()");
  } else if (count != WriteBatchInternal::Count(b)) {
    state.append("CountMismatch()");
  }
  mem->Unref();
  return state;
}

TEST(WriteBatchTest, Empty) {
  WriteBatch batch;
  EXPECT_EQ("", PrintContents(&batch));
  EXPECT_EQ(0, WriteBatchInternal::Count(&batch));
}

TEST(WriteBatchTest, Multiple) {
  WriteBatch batch;
  batch.Put(Slice("foo"), Slice("bar"));
  batch.Delete(Slice("box"));
  batch.Put(Slice("baz"), Slice("boo"));
  WriteBatchInternal::SetSequence(&batch, 100);
  EXPECT_EQ(100u, WriteBatchInternal::Sequence(&batch));
  EXPECT_EQ(3, WriteBatchInternal::Count(&batch));
  EXPECT_EQ("Put(baz, boo)@102Delete(box)@101Put(foo, bar)@100",
            PrintContents(&batch));
}

TEST(WriteBatchTest, Corruption) {
  WriteBatch batch;
  batch.Put(Slice("foo"), Slice("bar"));
  batch.Delete(Slice("box"));
  WriteBatchInternal::SetSequence(&batch, 200);
  Slice contents = WriteBatchInternal::Contents(&batch);
  WriteBatchInternal::SetContents(&batch,
                                  Slice(contents.data(), contents.size() - 1));
  EXPECT_EQ("Put(foo, bar)@200ParseError()", PrintContents(&batch));
}

TEST(WriteBatchTest, Append) {
  WriteBatch b1, b2;
  WriteBatchInternal::SetSequence(&b1, 200);
  WriteBatchInternal::SetSequence(&b2, 300);
  b1.Append(b2);
  EXPECT_EQ("", PrintContents(&b1));
  b2.Put("a", "va");
  b1.Append(b2);
  EXPECT_EQ("Put(a, va)@200", PrintContents(&b1));
  b2.Clear();
  b2.Put("b", "vb");
  b1.Append(b2);
  EXPECT_EQ("Put(a, va)@200Put(b, vb)@201", PrintContents(&b1));
  b2.Delete("foo");
  b1.Append(b2);
  // Newer versions of the same user key sort first (sequence descending).
  EXPECT_EQ("Put(a, va)@200Put(b, vb)@202Put(b, vb)@201Delete(foo)@203",
            PrintContents(&b1));
}

TEST(WriteBatchTest, ApproximateSize) {
  WriteBatch batch;
  size_t empty_size = batch.ApproximateSize();

  batch.Put(Slice("foo"), Slice("bar"));
  size_t one_key_size = batch.ApproximateSize();
  EXPECT_LT(empty_size, one_key_size);

  batch.Put(Slice("baz"), Slice("boo"));
  size_t two_keys_size = batch.ApproximateSize();
  EXPECT_LT(one_key_size, two_keys_size);

  batch.Delete(Slice("box"));
  size_t post_delete_size = batch.ApproximateSize();
  EXPECT_LT(two_keys_size, post_delete_size);
}

TEST(WriteBatchTest, ClearResets) {
  WriteBatch batch;
  batch.Put("k", "v");
  batch.Delete("k2");
  EXPECT_EQ(2, batch.Count());
  batch.Clear();
  EXPECT_EQ(0, batch.Count());
  EXPECT_EQ("", PrintContents(&batch));
}

}  // namespace acheron
