// Unit tests of the FADE compaction planner: TTL schedule math and file
// expiry detection.
#include "src/core/compaction_planner.h"

#include <gtest/gtest.h>

#include "src/core/persistence_monitor.h"

namespace acheron {

class PlannerTest : public ::testing::Test {
 protected:
  PlannerTest() : icmp_(BytewiseComparator()) {}

  CompactionPlanner Make(uint64_t dth, int size_ratio, int levels,
                         TtlAllocation alloc = TtlAllocation::kGeometric) {
    options_.delete_persistence_threshold = dth;
    options_.size_ratio = size_ratio;
    options_.num_levels = levels;
    options_.ttl_allocation = alloc;
    return CompactionPlanner(options_, &icmp_);
  }

  Options options_;
  InternalKeyComparator icmp_;
};

TEST_F(PlannerTest, GeometricTtlSumsToThreshold) {
  const uint64_t dth = 1000000;
  const int T = 10, L = 5;
  CompactionPlanner p = Make(dth, T, L);
  // d_0 (T-1)/(T^L-1) * (1 + T + ... + T^{L-1}) == D_th (up to rounding).
  uint64_t sum = p.CumulativeTtl(L - 1);
  EXPECT_NEAR(static_cast<double>(dth), static_cast<double>(sum),
              dth * 0.01 + L);
  // Each level's TTL is T times the previous.
  for (int i = 1; i < L; i++) {
    EXPECT_NEAR(static_cast<double>(p.LevelTtl(i)),
                static_cast<double>(p.LevelTtl(i - 1)) * T,
                p.LevelTtl(i) * 0.01 + 1);
  }
  // Cumulative TTLs are strictly increasing.
  for (int i = 1; i < L; i++) {
    EXPECT_GT(p.CumulativeTtl(i), p.CumulativeTtl(i - 1));
  }
}

TEST_F(PlannerTest, UniformTtlIsEqualPerLevel) {
  const uint64_t dth = 500000;
  const int L = 5;
  CompactionPlanner p = Make(dth, 10, L, TtlAllocation::kUniform);
  for (int i = 0; i < L; i++) {
    EXPECT_EQ(dth / L, p.LevelTtl(i));
  }
  EXPECT_EQ(dth / L * L, p.CumulativeTtl(L - 1));
}

TEST_F(PlannerTest, ZeroThresholdDisablesDeleteAwareness) {
  CompactionPlanner p = Make(0, 10, 5);
  EXPECT_FALSE(p.delete_aware());
  FileMetaData f;
  f.num_tombstones = 10;
  f.earliest_tombstone_seq = 1;
  EXPECT_FALSE(p.FileTtlExpired(f, 0, 1000000000));
}

TEST_F(PlannerTest, FileExpiryRespectsCumulativeTtl) {
  const uint64_t dth = 100000;
  CompactionPlanner p = Make(dth, 10, 5);
  FileMetaData f;
  f.num_entries = 100;
  f.num_tombstones = 10;
  f.earliest_tombstone_seq = 1000;

  // Not expired right after creation.
  EXPECT_FALSE(p.FileTtlExpired(f, 0, 1000));
  // Expired at level 0 once past c_0.
  uint64_t c0 = p.CumulativeTtl(0);
  EXPECT_FALSE(p.FileTtlExpired(f, 0, 1000 + c0));
  EXPECT_TRUE(p.FileTtlExpired(f, 0, 1000 + c0 + 1));
  // The same age is NOT expired at a deeper level (bigger budget).
  EXPECT_FALSE(p.FileTtlExpired(f, 3, 1000 + c0 + 1));
  // Every level expires eventually.
  EXPECT_TRUE(p.FileTtlExpired(f, 4, 1000 + dth + dth / 10));
}

TEST_F(PlannerTest, FilesWithoutTombstonesNeverExpire) {
  CompactionPlanner p = Make(1000, 4, 4);
  FileMetaData f;
  f.num_entries = 100;
  f.num_tombstones = 0;
  EXPECT_FALSE(p.FileTtlExpired(f, 0, UINT64_MAX / 2));
}

TEST_F(PlannerTest, GeometricGivesDeepLevelsMoreBudget) {
  CompactionPlanner geo = Make(1000000, 10, 5, TtlAllocation::kGeometric);
  CompactionPlanner uni = Make(1000000, 10, 5, TtlAllocation::kUniform);
  // Geometric gives level 0 much less than uniform, the deepest level much
  // more: shallow levels hold little data so their TTLs can be tight.
  EXPECT_LT(geo.LevelTtl(0), uni.LevelTtl(0));
  EXPECT_GT(geo.LevelTtl(4), uni.LevelTtl(4));
}

// Sweep: the schedule is sane across tunings.
class PlannerSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(PlannerSweep, CumulativeTtlBoundedByThreshold) {
  auto [dth_k, T, L] = GetParam();
  const uint64_t dth = static_cast<uint64_t>(dth_k) * 1000;
  Options options;
  options.delete_persistence_threshold = dth;
  options.size_ratio = T;
  options.num_levels = L;
  InternalKeyComparator icmp(BytewiseComparator());
  CompactionPlanner p(options, &icmp);
  // The total budget never exceeds D_th by more than rounding slack.
  EXPECT_LE(p.CumulativeTtl(L - 1), dth + static_cast<uint64_t>(L));
  // And uses at least 90% of it.
  EXPECT_GE(p.CumulativeTtl(L - 1), dth * 9 / 10);
}

INSTANTIATE_TEST_SUITE_P(Tunings, PlannerSweep,
                         ::testing::Combine(::testing::Values(10, 100, 10000),
                                            ::testing::Values(2, 4, 10, 32),
                                            ::testing::Values(2, 4, 7, 12)));

TEST(PersistenceMonitorTest, CountsAndLatency) {
  DeletePersistenceMonitor m;
  m.OnTombstoneWritten(5);
  m.OnTombstonePersisted(100, 600);
  m.OnTombstonePersisted(200, 300);
  m.OnTombstoneSuperseded();

  DeleteStats stats;
  m.Snapshot(&stats, /*live=*/3, /*oldest_age=*/42);
  EXPECT_EQ(5u, stats.tombstones_written);
  EXPECT_EQ(2u, stats.tombstones_persisted);
  EXPECT_EQ(1u, stats.tombstones_superseded);
  EXPECT_EQ(3u, stats.tombstones_live);
  EXPECT_EQ(42u, stats.oldest_live_tombstone_age);
  EXPECT_EQ(500, stats.persistence_latency_max);
  EXPECT_NEAR(300, stats.persistence_latency_avg, 1);
  EXPECT_FALSE(stats.ToString().empty());
}

TEST(PersistenceMonitorTest, ClockSkewIsClamped) {
  DeletePersistenceMonitor m;
  m.OnTombstonePersisted(700, 600);  // now < created: clamp to 0
  DeleteStats stats;
  m.Snapshot(&stats, 0, 0);
  EXPECT_EQ(0, stats.persistence_latency_max);
}

}  // namespace acheron
