// Tests for block building/reading and the full SSTable round trip,
// including the properties block and Bloom-filtered InternalGet.
#include "src/table/table.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "src/env/env.h"
#include "src/lsm/dbformat.h"
#include "src/table/block.h"
#include "src/table/block_builder.h"
#include "src/table/table_builder.h"
#include "src/util/random.h"

namespace acheron {

TEST(BlockTest, EmptyBlock) {
  BlockBuilder builder(16);
  Slice raw = builder.Finish();
  std::string owned = raw.ToString();
  BlockContents contents{Slice(owned), false, false};
  Block block(contents);
  std::unique_ptr<Iterator> it(block.NewIterator(BytewiseComparator()));
  it->SeekToFirst();
  EXPECT_FALSE(it->Valid());
}

TEST(BlockTest, RoundTripAndSeek) {
  BlockBuilder builder(4);  // small restart interval to exercise restarts
  std::map<std::string, std::string> model;
  for (int i = 0; i < 200; i++) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "key%04d", i);
    model[buf] = "value" + std::to_string(i);
  }
  for (const auto& [k, v] : model) {
    builder.Add(k, v);
  }
  std::string owned = builder.Finish().ToString();
  BlockContents contents{Slice(owned), false, false};
  Block block(contents);

  std::unique_ptr<Iterator> it(block.NewIterator(BytewiseComparator()));
  // Full forward scan matches the model.
  it->SeekToFirst();
  for (const auto& [k, v] : model) {
    ASSERT_TRUE(it->Valid());
    EXPECT_EQ(k, it->key().ToString());
    EXPECT_EQ(v, it->value().ToString());
    it->Next();
  }
  EXPECT_FALSE(it->Valid());

  // Backward scan.
  it->SeekToLast();
  for (auto rit = model.rbegin(); rit != model.rend(); ++rit) {
    ASSERT_TRUE(it->Valid());
    EXPECT_EQ(rit->first, it->key().ToString());
    it->Prev();
  }
  EXPECT_FALSE(it->Valid());

  // Seeks land on lower bounds.
  it->Seek("key0100");
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ("key0100", it->key().ToString());
  it->Seek("key0100x");
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ("key0101", it->key().ToString());
  it->Seek("zzz");
  EXPECT_FALSE(it->Valid());
  it->Seek("");
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ("key0000", it->key().ToString());
}

TEST(BlockTest, PrefixCompressionPreservesKeys) {
  BlockBuilder builder(16);
  std::vector<std::string> keys = {"app", "apple", "applesauce", "apply",
                                   "apt"};
  for (const auto& k : keys) {
    builder.Add(k, "v_" + k);
  }
  std::string owned = builder.Finish().ToString();
  BlockContents contents{Slice(owned), false, false};
  Block block(contents);
  std::unique_ptr<Iterator> it(block.NewIterator(BytewiseComparator()));
  it->SeekToFirst();
  for (const auto& k : keys) {
    ASSERT_TRUE(it->Valid());
    EXPECT_EQ(k, it->key().ToString());
    EXPECT_EQ("v_" + k, it->value().ToString());
    it->Next();
  }
}

namespace {

// Builds a table in a MemEnv and reopens it for reading.
class TableHarness {
 public:
  TableHarness() : env_(NewMemEnv()) {
    options_.env = env_.get();
    options_.block_size = 1024;  // several blocks for realistic index use
    options_.comparator = BytewiseComparator();
  }

  // keys must be added in sorted order.
  void Add(const std::string& key, const std::string& value) {
    model_[key] = value;
  }

  Status Build() {
    std::unique_ptr<WritableFile> sink;
    Status s = env_->NewWritableFile("/table", &sink);
    if (!s.ok()) return s;
    TableBuilder builder(options_, sink.get());
    for (const auto& [k, v] : model_) {
      builder.Add(k, v, k);
    }
    builder.mutable_properties()->num_tombstones = 42;
    builder.mutable_properties()->earliest_tombstone_time = 7;
    s = builder.Finish();
    if (!s.ok()) return s;
    file_size_ = builder.FileSize();
    s = sink->Close();
    if (!s.ok()) return s;

    s = env_->NewRandomAccessFile("/table", &source_);
    if (!s.ok()) return s;
    Table* t;
    s = Table::Open(options_, source_.get(), file_size_, &t);
    table_.reset(t);
    return s;
  }

  Table* table() { return table_.get(); }
  const std::map<std::string, std::string>& model() const { return model_; }
  Options options_;

 private:
  std::unique_ptr<Env> env_;
  std::map<std::string, std::string> model_;
  std::unique_ptr<RandomAccessFile> source_;
  std::unique_ptr<Table> table_;
  uint64_t file_size_ = 0;
};

struct GetResult {
  bool called = false;
  std::string key, value;
};
void SaveGet(void* arg, const Slice& k, const Slice& v) {
  auto* r = static_cast<GetResult*>(arg);
  r->called = true;
  r->key = k.ToString();
  r->value = v.ToString();
}

}  // namespace

TEST(TableTest, EmptyTable) {
  TableHarness h;
  ASSERT_TRUE(h.Build().ok());
  std::unique_ptr<Iterator> it(h.table()->NewIterator(ReadOptions()));
  it->SeekToFirst();
  EXPECT_FALSE(it->Valid());
}

TEST(TableTest, RoundTrip) {
  TableHarness h;
  Random rnd(42);
  for (int i = 0; i < 3000; i++) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "k%06d", i);
    h.Add(buf, "val" + std::to_string(rnd.Uniform(1000000)));
  }
  ASSERT_TRUE(h.Build().ok());

  // Scan matches the model exactly.
  std::unique_ptr<Iterator> it(h.table()->NewIterator(ReadOptions()));
  it->SeekToFirst();
  for (const auto& [k, v] : h.model()) {
    ASSERT_TRUE(it->Valid());
    EXPECT_EQ(k, it->key().ToString());
    EXPECT_EQ(v, it->value().ToString());
    it->Next();
  }
  EXPECT_FALSE(it->Valid());

  // Seeks.
  it->Seek("k001500");
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ("k001500", it->key().ToString());

  // Reverse scan from the end.
  it->SeekToLast();
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(h.model().rbegin()->first, it->key().ToString());
}

TEST(TableTest, InternalGetFindsEntries) {
  TableHarness h;
  for (int i = 0; i < 500; i++) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "k%05d", i * 2);  // even keys only
    h.Add(buf, "v" + std::to_string(i));
  }
  ASSERT_TRUE(h.Build().ok());

  // Present key.
  GetResult r;
  ASSERT_TRUE(h.table()
                  ->InternalGet(ReadOptions(), "k00100", "k00100", &r, SaveGet)
                  .ok());
  ASSERT_TRUE(r.called);
  EXPECT_EQ("k00100", r.key);
  EXPECT_EQ("v50", r.value);

  // Absent key: callback may fire with the successor key (caller's job to
  // compare user keys), or the Bloom filter suppresses it entirely.
  GetResult r2;
  ASSERT_TRUE(h.table()
                  ->InternalGet(ReadOptions(), "k00101", "k00101", &r2, SaveGet)
                  .ok());
  if (r2.called) {
    EXPECT_NE("k00101", r2.key);
  }
}

TEST(TableTest, BloomFilterSuppressesMisses) {
  TableHarness h;
  for (int i = 0; i < 2000; i++) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "k%06d", i);
    h.Add(buf, "v");
  }
  ASSERT_TRUE(h.Build().ok());

  uint64_t before = h.table()->filter_negatives();
  int suppressed = 0;
  for (int i = 0; i < 1000; i++) {
    GetResult r;
    std::string absent = "absent" + std::to_string(i);
    // Only whether the callback fired matters here, not the status.
    (void)h.table()->InternalGet(ReadOptions(), absent, absent, &r, SaveGet);
    if (!r.called) suppressed++;
  }
  // With 10 bits/key nearly all misses must be filtered without touching a
  // data block.
  EXPECT_GT(h.table()->filter_negatives() - before, 950u);
  EXPECT_GT(suppressed, 950);
}

TEST(TableTest, PropertiesRoundTrip) {
  TableHarness h;
  for (int i = 0; i < 100; i++) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "k%04d", i);
    h.Add(buf, std::string(50, 'x'));
  }
  ASSERT_TRUE(h.Build().ok());
  const TableProperties& props = h.table()->properties();
  EXPECT_EQ(100u, props.num_entries);
  EXPECT_EQ(42u, props.num_tombstones);          // set via mutable_properties
  EXPECT_EQ(7u, props.earliest_tombstone_time);  // ditto
  EXPECT_GT(props.num_data_blocks, 1u);
  EXPECT_EQ(100u * 5, props.raw_key_bytes);  // "kNNNN" is 5 bytes
  EXPECT_EQ(100u * 50, props.raw_value_bytes);
}

TEST(TableTest, CorruptFooterIsRejected) {
  std::unique_ptr<Env> env(NewMemEnv());
  Options options;
  options.env = env.get();
  ASSERT_TRUE(env->WriteStringToFile(std::string(200, 'z'), "/bad").ok());
  std::unique_ptr<RandomAccessFile> file;
  ASSERT_TRUE(env->NewRandomAccessFile("/bad", &file).ok());
  Table* t = nullptr;
  Status s = Table::Open(options, file.get(), 200, &t);
  EXPECT_TRUE(s.IsCorruption());
  EXPECT_EQ(nullptr, t);
}

TEST(TableTest, TruncatedFileIsRejected) {
  std::unique_ptr<Env> env(NewMemEnv());
  Options options;
  options.env = env.get();
  ASSERT_TRUE(env->WriteStringToFile("tiny", "/tiny").ok());
  std::unique_ptr<RandomAccessFile> file;
  ASSERT_TRUE(env->NewRandomAccessFile("/tiny", &file).ok());
  Table* t = nullptr;
  Status s = Table::Open(options, file.get(), 4, &t);
  EXPECT_TRUE(s.IsCorruption());
}

// Property sweep: tables round-trip across block sizes and restart
// intervals.
class TableParamTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(TableParamTest, RoundTripAcrossShapes) {
  auto [block_size, restart_interval] = GetParam();
  TableHarness h;
  h.options_.block_size = block_size;
  h.options_.block_restart_interval = restart_interval;
  for (int i = 0; i < 500; i++) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "key%05d", i * 3);
    h.Add(buf, "value" + std::to_string(i));
  }
  ASSERT_TRUE(h.Build().ok());
  std::unique_ptr<Iterator> it(h.table()->NewIterator(ReadOptions()));
  it->SeekToFirst();
  size_t n = 0;
  for (const auto& [k, v] : h.model()) {
    ASSERT_TRUE(it->Valid());
    EXPECT_EQ(k, it->key().ToString());
    EXPECT_EQ(v, it->value().ToString());
    it->Next();
    n++;
  }
  EXPECT_EQ(500u, n);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TableParamTest,
    ::testing::Combine(::testing::Values(512, 1024, 4096, 65536),
                       ::testing::Values(1, 2, 16, 64)));

}  // namespace acheron
