#include "src/memtable/skiplist.h"

#include <gtest/gtest.h>

#include <set>

#include "src/util/arena.h"
#include "src/util/random.h"

namespace acheron {

typedef uint64_t Key;

struct TestComparator {
  int operator()(const Key& a, const Key& b) const {
    if (a < b) {
      return -1;
    } else if (a > b) {
      return +1;
    } else {
      return 0;
    }
  }
};

TEST(SkipList, Empty) {
  Arena arena;
  TestComparator cmp;
  SkipList<Key, TestComparator> list(cmp, &arena);
  EXPECT_TRUE(!list.Contains(10));

  SkipList<Key, TestComparator>::Iterator iter(&list);
  EXPECT_TRUE(!iter.Valid());
  iter.SeekToFirst();
  EXPECT_TRUE(!iter.Valid());
  iter.Seek(100);
  EXPECT_TRUE(!iter.Valid());
  iter.SeekToLast();
  EXPECT_TRUE(!iter.Valid());
}

TEST(SkipList, InsertAndLookup) {
  const int N = 2000;
  const int R = 5000;
  Random rnd(1000);
  std::set<Key> keys;
  Arena arena;
  TestComparator cmp;
  SkipList<Key, TestComparator> list(cmp, &arena);
  for (int i = 0; i < N; i++) {
    Key key = rnd.Uniform(R);
    if (keys.insert(key).second) {
      list.Insert(key);
    }
  }

  for (int i = 0; i < R; i++) {
    if (list.Contains(i)) {
      EXPECT_EQ(keys.count(i), 1u);
    } else {
      EXPECT_EQ(keys.count(i), 0u);
    }
  }

  // Simple iterator tests
  {
    SkipList<Key, TestComparator>::Iterator iter(&list);
    EXPECT_TRUE(!iter.Valid());

    iter.Seek(0);
    ASSERT_TRUE(iter.Valid());
    EXPECT_EQ(*(keys.begin()), iter.key());

    iter.SeekToFirst();
    ASSERT_TRUE(iter.Valid());
    EXPECT_EQ(*(keys.begin()), iter.key());

    iter.SeekToLast();
    ASSERT_TRUE(iter.Valid());
    EXPECT_EQ(*(keys.rbegin()), iter.key());
  }

  // Forward iteration test
  for (int i = 0; i < R; i++) {
    SkipList<Key, TestComparator>::Iterator iter(&list);
    iter.Seek(i);

    // Compare against model iterator
    std::set<Key>::iterator model_iter = keys.lower_bound(i);
    for (int j = 0; j < 3; j++) {
      if (model_iter == keys.end()) {
        EXPECT_TRUE(!iter.Valid());
        break;
      } else {
        ASSERT_TRUE(iter.Valid());
        EXPECT_EQ(*model_iter, iter.key());
        ++model_iter;
        iter.Next();
      }
    }
  }

  // Backward iteration test
  {
    SkipList<Key, TestComparator>::Iterator iter(&list);
    iter.SeekToLast();

    // Compare against model iterator
    for (std::set<Key>::reverse_iterator model_iter = keys.rbegin();
         model_iter != keys.rend(); ++model_iter) {
      ASSERT_TRUE(iter.Valid());
      EXPECT_EQ(*model_iter, iter.key());
      iter.Prev();
    }
    EXPECT_TRUE(!iter.Valid());
  }
}

// Property sweep across seeds: skiplist behaves exactly like std::set.
class SkipListModel : public ::testing::TestWithParam<int> {};

TEST_P(SkipListModel, MatchesStdSet) {
  Random rnd(GetParam());
  std::set<Key> model;
  Arena arena;
  TestComparator cmp;
  SkipList<Key, TestComparator> list(cmp, &arena);
  for (int i = 0; i < 5000; i++) {
    Key k = rnd.Uniform(100000);
    if (model.insert(k).second) {
      list.Insert(k);
    }
  }
  // Every model key is present, in identical iteration order.
  SkipList<Key, TestComparator>::Iterator iter(&list);
  iter.SeekToFirst();
  for (Key k : model) {
    ASSERT_TRUE(iter.Valid());
    EXPECT_EQ(k, iter.key());
    iter.Next();
  }
  EXPECT_FALSE(iter.Valid());
  // Seek lands on lower_bound.
  for (int i = 0; i < 1000; i++) {
    Key probe = rnd.Uniform(100000);
    iter.Seek(probe);
    auto lb = model.lower_bound(probe);
    if (lb == model.end()) {
      EXPECT_FALSE(iter.Valid());
    } else {
      ASSERT_TRUE(iter.Valid());
      EXPECT_EQ(*lb, iter.key());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SkipListModel,
                         ::testing::Values(1, 17, 33, 4242));

}  // namespace acheron
