// KiWi-lite retention purge: physical deletion on a secondary attribute
// (e.g. a creation timestamp embedded in values) via wholesale file drops
// and straddling-file rewrites.
#include <gtest/gtest.h>

#include <memory>

#include "src/env/env.h"
#include "src/lsm/db.h"

namespace acheron {

namespace {

// Values are "TTTTTTTT|payload" where T is a zero-padded timestamp; the
// extractor returns that prefix.
std::string MakeValue(uint64_t timestamp, const std::string& payload) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%08llu",
                static_cast<unsigned long long>(timestamp));
  return std::string(buf) + "|" + payload;
}

std::string TimestampExtractor(const Slice&, const Slice& value) {
  if (value.size() < 8) return std::string();
  return std::string(value.data(), 8);
}

std::string Threshold(uint64_t timestamp) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%08llu",
                static_cast<unsigned long long>(timestamp));
  return std::string(buf);
}

}  // namespace

class SecondaryPurgeTest : public ::testing::Test {
 protected:
  SecondaryPurgeTest() : env_(NewMemEnv()), db_(nullptr) {
    options_.env = env_.get();
    options_.write_buffer_size = 8 << 10;
    options_.max_file_size = 16 << 10;
    options_.secondary_key_extractor = TimestampExtractor;
  }
  ~SecondaryPurgeTest() override { delete db_; }

  void Open() { ASSERT_TRUE(DB::Open(options_, "/db", &db_).ok()); }

  std::string Get(const std::string& k) {
    std::string v;
    Status s = db_->Get(ReadOptions(), k, &v);
    return s.ok() ? v : (s.IsNotFound() ? "NOT_FOUND" : s.ToString());
  }

  std::unique_ptr<Env> env_;
  Options options_;
  DB* db_;
};

TEST_F(SecondaryPurgeTest, RequiresExtractor) {
  options_.secondary_key_extractor = nullptr;
  Open();
  EXPECT_TRUE(db_->PurgeSecondaryRange("x").IsNotSupported());
}

TEST_F(SecondaryPurgeTest, PurgesOldEntriesOnly) {
  Open();
  // Two generations of data: timestamps 1000..1999 and 2000..2999.
  for (int i = 0; i < 500; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), "old" + std::to_string(i),
                         MakeValue(1000 + i, "stale"))
                    .ok());
  }
  for (int i = 0; i < 500; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), "new" + std::to_string(i),
                         MakeValue(2000 + i, "fresh"))
                    .ok());
  }
  ASSERT_TRUE(db_->PurgeSecondaryRange(Threshold(2000)).ok());

  for (int i = 0; i < 500; i++) {
    EXPECT_EQ("NOT_FOUND", Get("old" + std::to_string(i))) << i;
    EXPECT_EQ(MakeValue(2000 + i, "fresh"), Get("new" + std::to_string(i)))
        << i;
  }
}

TEST_F(SecondaryPurgeTest, PurgeIsPhysicalNotLogical) {
  Open();
  for (int i = 0; i < 1000; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), "k" + std::to_string(i),
                         MakeValue(100 + i, std::string(100, 'z')))
                    .ok());
  }
  ASSERT_TRUE(db_->FlushMemTable().ok());
  std::string sst_before;
  ASSERT_TRUE(db_->GetProperty("acheron.sstables", &sst_before));

  // Purge everything: no tombstones may be written -- files must go away.
  DeleteStats before = db_->GetDeleteStats();
  ASSERT_TRUE(db_->PurgeSecondaryRange(Threshold(100000)).ok());
  DeleteStats after = db_->GetDeleteStats();
  EXPECT_EQ(before.tombstones_written, after.tombstones_written);

  for (int i = 0; i < 1000; i += 97) {
    EXPECT_EQ("NOT_FOUND", Get("k" + std::to_string(i)));
  }
  // Tree is empty (or nearly): no data files remain with live entries.
  std::string total;
  int files = 0;
  for (int level = 0; level < 12; level++) {
    std::string v;
    db_->GetProperty("acheron.num-files-at-level" + std::to_string(level), &v);
    files += std::stoi(v);
  }
  EXPECT_EQ(0, files);
}

TEST_F(SecondaryPurgeTest, StraddlingFileIsRewritten) {
  Open();
  // One file holding both halves of the threshold.
  for (int i = 0; i < 100; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), "k" + std::to_string(i),
                         MakeValue(i < 50 ? 10 + i : 5000 + i, "p"))
                    .ok());
  }
  ASSERT_TRUE(db_->FlushMemTable().ok());
  ASSERT_TRUE(db_->PurgeSecondaryRange(Threshold(1000)).ok());
  for (int i = 0; i < 100; i++) {
    if (i < 50) {
      EXPECT_EQ("NOT_FOUND", Get("k" + std::to_string(i)));
    } else {
      EXPECT_EQ(MakeValue(5000 + i, "p"), Get("k" + std::to_string(i)));
    }
  }
}

TEST_F(SecondaryPurgeTest, SurvivesReopen) {
  Open();
  for (int i = 0; i < 200; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), "k" + std::to_string(i),
                         MakeValue(i, "gen1"))
                    .ok());
  }
  ASSERT_TRUE(db_->PurgeSecondaryRange(Threshold(100)).ok());
  delete db_;
  db_ = nullptr;
  Open();
  for (int i = 0; i < 200; i++) {
    if (i < 100) {
      EXPECT_EQ("NOT_FOUND", Get("k" + std::to_string(i)));
    } else {
      EXPECT_EQ(MakeValue(i, "gen1"), Get("k" + std::to_string(i)));
    }
  }
}

TEST_F(SecondaryPurgeTest, PurgeInteractsWithCompactions) {
  options_.delete_persistence_threshold = 4000;
  Open();
  // Enough data to reach multiple levels, then purge mid-stream.
  for (int round = 0; round < 4; round++) {
    for (int i = 0; i < 800; i++) {
      uint64_t ts = round * 1000 + i;
      ASSERT_TRUE(db_->Put(WriteOptions(),
                           "r" + std::to_string(round) + "k" +
                               std::to_string(i),
                           MakeValue(ts, std::string(60, 'q')))
                      .ok());
    }
  }
  ASSERT_TRUE(db_->PurgeSecondaryRange(Threshold(2000)).ok());
  // Rounds 0 and 1 gone; rounds 2 and 3 intact.
  for (int i = 0; i < 800; i += 101) {
    EXPECT_EQ("NOT_FOUND", Get("r0k" + std::to_string(i)));
    EXPECT_EQ("NOT_FOUND", Get("r1k" + std::to_string(i)));
    EXPECT_NE("NOT_FOUND", Get("r2k" + std::to_string(i)));
    EXPECT_NE("NOT_FOUND", Get("r3k" + std::to_string(i)));
  }
  // Engine still healthy for further writes.
  ASSERT_TRUE(db_->Put(WriteOptions(), "post", MakeValue(9999, "ok")).ok());
  EXPECT_EQ(MakeValue(9999, "ok"), Get("post"));
}

}  // namespace acheron
