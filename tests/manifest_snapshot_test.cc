// Tests for MANIFEST snapshot records and bounded replay: the snapshot
// record wire format (inner CRC32C), descriptor rotation and its GC, the
// edit-replay counter that proves recovery seeks to the last valid
// snapshot, and the torn-tail-snapshot fallback in DB::Open.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/env/env.h"
#include "src/env/fault_env.h"
#include "src/lsm/db.h"
#include "src/lsm/dbformat.h"
#include "src/lsm/filename.h"
#include "src/lsm/version_edit.h"
#include "src/util/histogram.h"
#include "src/wal/log_reader.h"
#include "src/wal/log_writer.h"

namespace acheron {
namespace {

// ---------------- Wire-format unit tests ----------------

TEST(SnapshotRecord, RoundTripsAllFields) {
  VersionEdit e;
  e.SetSnapshot();
  e.SetComparatorName("acheron.BytewiseComparator");
  e.SetLogNumber(7);
  e.SetNextFile(9);
  e.SetLastSequence(42);
  Histogram h;
  h.Add(3.0);
  h.Add(700.0);
  e.SetMonitorWritten(11);
  e.SetMonitorDelta(4, 2, h);
  FileMetaData f;
  f.number = 5;
  f.file_size = 123;
  f.smallest = InternalKey("a", 1, kTypeValue);
  f.largest = InternalKey("z", 40, kTypeValue);
  f.num_entries = 17;
  f.num_tombstones = 3;
  f.earliest_tombstone_seq = 12;
  f.run_id = 5;
  e.AddFile(2, f);

  std::string rec;
  e.EncodeTo(&rec);

  VersionEdit d;
  ASSERT_TRUE(d.DecodeFrom(rec).ok());
  EXPECT_TRUE(d.IsSnapshot());
  EXPECT_TRUE(d.has_monitor_written());
  EXPECT_EQ(11u, d.monitor_written());
  ASSERT_TRUE(d.has_monitor_delta());
  EXPECT_EQ(4u, d.monitor_persisted());
  EXPECT_EQ(2u, d.monitor_superseded());
  // The latency histogram must survive bit-for-bit (it feeds the recovered
  // percentiles, which the journal contract says are exact).
  std::string h_bytes, d_bytes;
  h.EncodeTo(&h_bytes);
  d.monitor_latency().EncodeTo(&d_bytes);
  EXPECT_EQ(h_bytes, d_bytes);
  ASSERT_EQ(1u, d.new_files().size());
  EXPECT_EQ(2, d.new_files()[0].first);
  EXPECT_EQ(5u, d.new_files()[0].second.number);
  EXPECT_EQ(3u, d.new_files()[0].second.num_tombstones);
}

TEST(SnapshotRecord, InnerCrcRejectsCorruptionButKeepsSnapshotTag) {
  VersionEdit e;
  e.SetSnapshot();
  e.SetComparatorName("c");
  e.SetLogNumber(1);
  e.SetNextFile(2);
  e.SetLastSequence(3);
  std::string rec;
  e.EncodeTo(&rec);

  std::string bad = rec;
  bad[bad.size() - 1] ^= 0x01;  // body byte: tag + CRC prefix untouched
  VersionEdit d;
  Status s = d.DecodeFrom(bad);
  EXPECT_FALSE(s.ok());
  // Recovery relies on this: a failed snapshot is still *identifiable* as
  // a snapshot, so it can be skipped (torn) instead of aborting the replay
  // the way a corrupt ordinary edit must.
  EXPECT_TRUE(d.IsSnapshot());
}

TEST(SnapshotRecord, OrdinaryEditHasNoEnvelope) {
  VersionEdit e;
  e.SetLogNumber(1);
  std::string rec;
  e.EncodeTo(&rec);
  VersionEdit d;
  ASSERT_TRUE(d.DecodeFrom(rec).ok());
  EXPECT_FALSE(d.IsSnapshot());
}

TEST(HistogramCodec, RoundTripsBitForBit) {
  Histogram h;
  for (int i = 0; i < 1000; i++) h.Add(static_cast<double>(i * i % 977));
  std::string enc;
  h.EncodeTo(&enc);
  Histogram d;
  Slice in(enc);
  ASSERT_TRUE(d.DecodeFrom(&in));
  EXPECT_TRUE(in.empty());
  std::string re;
  d.EncodeTo(&re);
  EXPECT_EQ(enc, re);
  EXPECT_EQ(h.Average(), d.Average());
  EXPECT_EQ(h.Percentile(99), d.Percentile(99));
}

// ---------------- Engine-level tests ----------------

class ManifestSnapshotTest : public ::testing::Test {
 protected:
  ManifestSnapshotTest() : base_(NewMemEnv()), fault_(base_.get()) {}

  Options Opts(uint32_t interval) {
    Options o;
    o.env = &fault_;
    o.create_if_missing = true;
    o.write_buffer_size = 256 << 10;
    o.manifest_snapshot_interval = interval;
    return o;
  }

  // Simulate kill -9: every further file op fails, then restart keeping
  // all written bytes (process crash, not machine crash).
  void Kill(DB** db) {
    fault_.CrashAfterOp(static_cast<int64_t>(fault_.FileOpCount()));
    delete *db;
    *db = nullptr;
    ASSERT_TRUE(
        fault_.CrashAndRestart(FaultInjectionEnv::CrashDataPolicy::kKeepWritten)
            .ok());
  }

  uint64_t Prop(DB* db, const std::string& name) {
    std::string v;
    EXPECT_TRUE(db->GetProperty(name, &v)) << name;
    return std::stoull(v);
  }

  int CountManifests() {
    std::vector<std::string> children;
    EXPECT_TRUE(fault_.GetChildren(dbname_, &children).ok());
    int n = 0;
    for (const std::string& c : children) {
      if (c.rfind("MANIFEST-", 0) == 0) n++;
    }
    return n;
  }

  const std::string dbname_ = "/snapdb";
  std::unique_ptr<Env> base_;
  FaultInjectionEnv fault_;
};

TEST_F(ManifestSnapshotTest, CleanCloseReplaysZeroEdits) {
  DB* db = nullptr;
  ASSERT_TRUE(DB::Open(Opts(64), dbname_, &db).ok());
  for (int i = 0; i < 30; i++) {
    ASSERT_TRUE(db->Put(WriteOptions(), "k" + std::to_string(i), "v").ok());
    if (i % 10 == 9) ASSERT_TRUE(db->FlushMemTable().ok());
  }
  delete db;  // writes the clean-close snapshot

  ASSERT_TRUE(DB::Open(Opts(64), dbname_, &db).ok());
  // The close-time snapshot is the last record: nothing after it to replay.
  EXPECT_EQ(0u, Prop(db, "acheron.manifest-edits-replayed"));
  std::string v;
  EXPECT_TRUE(db->Get(ReadOptions(), "k29", &v).ok());
  delete db;
}

TEST_F(ManifestSnapshotTest, ReplayAfterKillIsBoundedByInterval) {
  constexpr uint32_t kInterval = 4;
  DB* db = nullptr;
  ASSERT_TRUE(DB::Open(Opts(kInterval), dbname_, &db).ok());
  // Each flush is one manifest edit; push well past several rotations.
  for (int i = 0; i < 23; i++) {
    ASSERT_TRUE(db->Put(WriteOptions(), "k" + std::to_string(i), "v").ok());
    ASSERT_TRUE(db->FlushMemTable().ok());
  }
  const uint64_t rotations_before = db->GetStats().manifest_rotations;
  EXPECT_GE(rotations_before, 4u);
  Kill(&db);

  ASSERT_TRUE(DB::Open(Opts(kInterval), dbname_, &db).ok());
  // Bounded replay: only the edit suffix after the rotation-head snapshot,
  // never the whole history.
  EXPECT_LE(Prop(db, "acheron.manifest-edits-replayed"), kInterval);
  for (int i = 0; i < 23; i++) {
    std::string v;
    EXPECT_TRUE(db->Get(ReadOptions(), "k" + std::to_string(i), &v).ok())
        << "k" << i;
  }
  delete db;
}

TEST_F(ManifestSnapshotTest, RotationGarbageCollectsOldManifests) {
  constexpr uint32_t kInterval = 4;
  DB* db = nullptr;
  ASSERT_TRUE(DB::Open(Opts(kInterval), dbname_, &db).ok());
  for (int i = 0; i < 23; i++) {
    ASSERT_TRUE(db->Put(WriteOptions(), "k" + std::to_string(i), "v").ok());
    ASSERT_TRUE(db->FlushMemTable().ok());
  }
  EXPECT_GE(db->GetStats().manifest_rotations, 4u);
  // RemoveObsoleteFiles runs after every flush: superseded descriptors are
  // gone, only the live incarnation remains.
  EXPECT_EQ(1, CountManifests());
  delete db;
  EXPECT_EQ(1, CountManifests());
}

TEST_F(ManifestSnapshotTest, IntervalZeroDisablesRotation) {
  DB* db = nullptr;
  ASSERT_TRUE(DB::Open(Opts(0), dbname_, &db).ok());
  for (int i = 0; i < 12; i++) {
    ASSERT_TRUE(db->Put(WriteOptions(), "k" + std::to_string(i), "v").ok());
    ASSERT_TRUE(db->FlushMemTable().ok());
  }
  EXPECT_EQ(0u, db->GetStats().manifest_rotations);
  delete db;
}

// Rewrites |fname|'s log records verbatim except for one flipped byte in
// the middle of the last record's body. The WAL framing checksum is
// recomputed over the corrupted payload, so only the record's *inner* CRC
// can catch it -- exactly the situation the snapshot envelope exists for.
void CorruptLastRecordBody(Env* env, const std::string& fname) {
  struct Silent : public wal::Reader::Reporter {
    void Corruption(size_t, const Status&) override {}
  };
  std::vector<std::string> records;
  {
    std::unique_ptr<SequentialFile> f;
    ASSERT_TRUE(env->NewSequentialFile(fname, &f).ok());
    Silent rep;
    wal::Reader reader(f.get(), &rep, true);
    std::string scratch;
    Slice rec;
    while (reader.ReadRecord(&rec, &scratch)) {
      records.push_back(rec.ToString());
    }
  }
  ASSERT_GE(records.size(), 2u) << "need a head record plus a tail snapshot";
  std::string& last = records.back();
  ASSERT_GT(last.size(), 10u);
  last[last.size() / 2] ^= 0x01;
  std::unique_ptr<WritableFile> w;
  ASSERT_TRUE(env->NewWritableFile(fname, &w).ok());
  wal::Writer writer(w.get());
  for (const std::string& r : records) {
    ASSERT_TRUE(writer.AddRecord(r).ok());
  }
  ASSERT_TRUE(w->Sync().ok());
  ASSERT_TRUE(w->Close().ok());
}

std::string LiveManifestPath(Env* env, const std::string& dbname) {
  std::string current;
  EXPECT_TRUE(env->ReadFileToString(CurrentFileName(dbname), &current).ok());
  EXPECT_FALSE(current.empty());
  if (!current.empty() && current.back() == '\n') current.pop_back();
  return dbname + "/" + current;
}

TEST_F(ManifestSnapshotTest, TornTailSnapshotFallsBackToEditReplay) {
  DB* db = nullptr;
  ASSERT_TRUE(DB::Open(Opts(0), dbname_, &db).ok());  // no rotation
  for (int i = 0; i < 12; i++) {
    ASSERT_TRUE(db->Put(WriteOptions(), "k" + std::to_string(i), "v").ok());
    if (i % 4 == 3) ASSERT_TRUE(db->FlushMemTable().ok());
  }
  delete db;  // manifest tail = clean-close snapshot

  CorruptLastRecordBody(&fault_, LiveManifestPath(&fault_, dbname_));

  ASSERT_TRUE(DB::Open(Opts(0), dbname_, &db).ok());
  InternalStats stats = db->GetStats();
  EXPECT_EQ(1u, stats.torn_snapshots_skipped)
      << "open must skip the corrupt snapshot, not fail on it";
  // Fallback path: the pre-snapshot edits were replayed instead.
  EXPECT_GT(Prop(db, "acheron.manifest-edits-replayed"), 0u);
  for (int i = 0; i < 12; i++) {
    std::string v;
    EXPECT_TRUE(db->Get(ReadOptions(), "k" + std::to_string(i), &v).ok())
        << "k" << i;
  }
  delete db;
}

}  // namespace
}  // namespace acheron
