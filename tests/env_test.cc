// Tests for the Env abstraction: MemEnv, PosixEnv, and fault injection.
#include "src/env/env.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/env/fault_env.h"

namespace acheron {

class MemEnvTest : public ::testing::Test {
 protected:
  void SetUp() override { env_.reset(NewMemEnv()); }
  std::unique_ptr<Env> env_;
};

TEST_F(MemEnvTest, Basics) {
  uint64_t file_size;
  std::unique_ptr<WritableFile> writable_file;
  std::vector<std::string> children;

  ASSERT_TRUE(env_->CreateDir("/dir").ok());

  // Check that the directory is empty.
  EXPECT_FALSE(env_->FileExists("/dir/non_existent"));
  EXPECT_FALSE(env_->GetFileSize("/dir/non_existent", &file_size).ok());
  ASSERT_TRUE(env_->GetChildren("/dir", &children).ok());
  EXPECT_EQ(0u, children.size());

  // Create a file.
  ASSERT_TRUE(env_->NewWritableFile("/dir/f", &writable_file).ok());
  ASSERT_TRUE(env_->GetFileSize("/dir/f", &file_size).ok());
  EXPECT_EQ(0u, file_size);
  writable_file.reset();

  // Check that the file exists.
  EXPECT_TRUE(env_->FileExists("/dir/f"));
  ASSERT_TRUE(env_->GetFileSize("/dir/f", &file_size).ok());
  EXPECT_EQ(0u, file_size);
  ASSERT_TRUE(env_->GetChildren("/dir", &children).ok());
  EXPECT_EQ(1u, children.size());
  EXPECT_EQ("f", children[0]);

  // Write to the file.
  ASSERT_TRUE(env_->NewWritableFile("/dir/f", &writable_file).ok());
  ASSERT_TRUE(writable_file->Append("abc").ok());
  writable_file.reset();

  // Check that append works.
  ASSERT_TRUE(env_->GetFileSize("/dir/f", &file_size).ok());
  EXPECT_EQ(3u, file_size);

  // Check that renaming works.
  EXPECT_FALSE(env_->RenameFile("/dir/non_existent", "/dir/g").ok());
  ASSERT_TRUE(env_->RenameFile("/dir/f", "/dir/g").ok());
  EXPECT_FALSE(env_->FileExists("/dir/f"));
  EXPECT_TRUE(env_->FileExists("/dir/g"));
  ASSERT_TRUE(env_->GetFileSize("/dir/g", &file_size).ok());
  EXPECT_EQ(3u, file_size);

  // Check that opening non-existent file fails.
  std::unique_ptr<SequentialFile> seq_file;
  std::unique_ptr<RandomAccessFile> rand_file;
  EXPECT_FALSE(env_->NewSequentialFile("/dir/non_existent", &seq_file).ok());
  EXPECT_FALSE(
      env_->NewRandomAccessFile("/dir/non_existent", &rand_file).ok());

  // Check that deleting works.
  EXPECT_FALSE(env_->RemoveFile("/dir/non_existent").ok());
  ASSERT_TRUE(env_->RemoveFile("/dir/g").ok());
  EXPECT_FALSE(env_->FileExists("/dir/g"));
  ASSERT_TRUE(env_->GetChildren("/dir", &children).ok());
  EXPECT_EQ(0u, children.size());
}

TEST_F(MemEnvTest, ReadWrite) {
  std::unique_ptr<WritableFile> writable_file;
  std::unique_ptr<SequentialFile> seq_file;
  std::unique_ptr<RandomAccessFile> rand_file;
  Slice result;
  char scratch[100];

  ASSERT_TRUE(env_->NewWritableFile("/dir/f", &writable_file).ok());
  ASSERT_TRUE(writable_file->Append("hello ").ok());
  ASSERT_TRUE(writable_file->Append("world").ok());
  writable_file.reset();

  // Read sequentially.
  ASSERT_TRUE(env_->NewSequentialFile("/dir/f", &seq_file).ok());
  ASSERT_TRUE(seq_file->Read(5, &result, scratch).ok());
  EXPECT_EQ(0, result.compare("hello"));
  ASSERT_TRUE(seq_file->Skip(1).ok());
  ASSERT_TRUE(seq_file->Read(1000, &result, scratch).ok());
  EXPECT_EQ(0, result.compare("world"));
  ASSERT_TRUE(seq_file->Read(1000, &result, scratch).ok());  // Try reading past EOF.
  EXPECT_EQ(0u, result.size());
  ASSERT_TRUE(seq_file->Skip(100).ok());  // Skip past end of file.
  ASSERT_TRUE(seq_file->Read(1000, &result, scratch).ok());
  EXPECT_EQ(0u, result.size());

  // Random reads.
  ASSERT_TRUE(env_->NewRandomAccessFile("/dir/f", &rand_file).ok());
  ASSERT_TRUE(rand_file->Read(6, 5, &result, scratch).ok());
  EXPECT_EQ(0, result.compare("world"));
  ASSERT_TRUE(rand_file->Read(0, 5, &result, scratch).ok());
  EXPECT_EQ(0, result.compare("hello"));
  ASSERT_TRUE(rand_file->Read(10, 100, &result, scratch).ok());
  EXPECT_EQ(0, result.compare("d"));
}

TEST_F(MemEnvTest, OverwriteTruncates) {
  std::unique_ptr<WritableFile> f;
  ASSERT_TRUE(env_->NewWritableFile("/a", &f).ok());
  ASSERT_TRUE(f->Append("long content here").ok());
  f.reset();
  ASSERT_TRUE(env_->NewWritableFile("/a", &f).ok());
  ASSERT_TRUE(f->Append("x").ok());
  f.reset();
  uint64_t size;
  ASSERT_TRUE(env_->GetFileSize("/a", &size).ok());
  EXPECT_EQ(1u, size);
}

TEST_F(MemEnvTest, WholeFileHelpers) {
  ASSERT_TRUE(env_->WriteStringToFile("contents", "/whole").ok());
  std::string read_back;
  ASSERT_TRUE(env_->ReadFileToString("/whole", &read_back).ok());
  EXPECT_EQ("contents", read_back);
}

class PosixEnvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = DefaultEnv();
    dir_ = std::filesystem::temp_directory_path() /
           ("acheron_env_test_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
    ASSERT_TRUE(env_->CreateDir(dir_.string()).ok());
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  Env* env_;
  std::filesystem::path dir_;
};

TEST_F(PosixEnvTest, WriteReadRoundTrip) {
  std::unique_ptr<WritableFile> w;
  ASSERT_TRUE(env_->NewWritableFile(Path("f"), &w).ok());
  ASSERT_TRUE(w->Append("hello world").ok());
  ASSERT_TRUE(w->Sync().ok());
  ASSERT_TRUE(w->Close().ok());
  w.reset();

  uint64_t size;
  ASSERT_TRUE(env_->GetFileSize(Path("f"), &size).ok());
  EXPECT_EQ(11u, size);

  std::unique_ptr<RandomAccessFile> r;
  ASSERT_TRUE(env_->NewRandomAccessFile(Path("f"), &r).ok());
  char scratch[32];
  Slice result;
  ASSERT_TRUE(r->Read(6, 5, &result, scratch).ok());
  EXPECT_EQ("world", result.ToString());
}

TEST_F(PosixEnvTest, LargeBufferedWrite) {
  // Exceed the 64KiB internal buffer to exercise the unbuffered path.
  std::string big(300 * 1024, 'q');
  std::unique_ptr<WritableFile> w;
  ASSERT_TRUE(env_->NewWritableFile(Path("big"), &w).ok());
  ASSERT_TRUE(w->Append("head:").ok());
  ASSERT_TRUE(w->Append(big).ok());
  ASSERT_TRUE(w->Close().ok());
  w.reset();

  std::string contents;
  ASSERT_TRUE(env_->ReadFileToString(Path("big"), &contents).ok());
  EXPECT_EQ(5 + big.size(), contents.size());
  EXPECT_EQ("head:", contents.substr(0, 5));
  EXPECT_EQ(big, contents.substr(5));
}

TEST_F(PosixEnvTest, GetChildrenAndRemove) {
  ASSERT_TRUE(env_->WriteStringToFile("1", Path("a")).ok());
  ASSERT_TRUE(env_->WriteStringToFile("2", Path("b")).ok());
  std::vector<std::string> children;
  ASSERT_TRUE(env_->GetChildren(dir_.string(), &children).ok());
  std::sort(children.begin(), children.end());
  ASSERT_EQ(2u, children.size());
  EXPECT_EQ("a", children[0]);
  EXPECT_EQ("b", children[1]);
  ASSERT_TRUE(env_->RemoveFile(Path("a")).ok());
  EXPECT_FALSE(env_->FileExists(Path("a")));
}

TEST_F(PosixEnvTest, RenameReplacesTarget) {
  ASSERT_TRUE(env_->WriteStringToFile("src", Path("src")).ok());
  ASSERT_TRUE(env_->WriteStringToFile("dst", Path("dst")).ok());
  ASSERT_TRUE(env_->RenameFile(Path("src"), Path("dst")).ok());
  std::string contents;
  ASSERT_TRUE(env_->ReadFileToString(Path("dst"), &contents).ok());
  EXPECT_EQ("src", contents);
  EXPECT_FALSE(env_->FileExists(Path("src")));
}

TEST(FaultEnvTest, WriteFaultCountdown) {
  std::unique_ptr<Env> base(NewMemEnv());
  FaultInjectionEnv fenv(base.get());
  std::unique_ptr<WritableFile> f;
  ASSERT_TRUE(fenv.NewWritableFile("/f", &f).ok());
  fenv.SetWriteFaultCountdown(2);
  EXPECT_TRUE(f->Append("one").ok());
  EXPECT_TRUE(f->Append("two").ok());
  EXPECT_TRUE(f->Append("three").IsIOError());
  EXPECT_TRUE(f->Append("four").IsIOError());
  EXPECT_GE(fenv.FaultsInjected(), 2u);
  fenv.SetWriteFaultCountdown(-1);
  EXPECT_TRUE(f->Append("five").ok());
}

TEST(FaultEnvTest, ReadFaultBySubstring) {
  std::unique_ptr<Env> base(NewMemEnv());
  FaultInjectionEnv fenv(base.get());
  ASSERT_TRUE(fenv.WriteStringToFile("payload", "/data/curse.sst").ok());
  ASSERT_TRUE(fenv.WriteStringToFile("payload", "/data/fine.sst").ok());

  fenv.SetReadFaultSubstring("curse");
  std::unique_ptr<RandomAccessFile> r;
  char scratch[16];
  Slice result;
  ASSERT_TRUE(fenv.NewRandomAccessFile("/data/curse.sst", &r).ok());
  EXPECT_TRUE(r->Read(0, 7, &result, scratch).IsIOError());
  ASSERT_TRUE(fenv.NewRandomAccessFile("/data/fine.sst", &r).ok());
  EXPECT_TRUE(r->Read(0, 7, &result, scratch).ok());
  EXPECT_EQ("payload", result.ToString());

  fenv.SetReadFaultSubstring("");
  ASSERT_TRUE(fenv.NewRandomAccessFile("/data/curse.sst", &r).ok());
  EXPECT_TRUE(r->Read(0, 7, &result, scratch).ok());
}

TEST(FaultEnvTest, SequentialReadFaultBySubstring) {
  std::unique_ptr<Env> base(NewMemEnv());
  FaultInjectionEnv fenv(base.get());
  ASSERT_TRUE(fenv.WriteStringToFile("abcdef", "/wal/000007.log").ok());

  fenv.SetReadFaultSubstring("000007");
  std::unique_ptr<SequentialFile> s;
  char scratch[16];
  Slice result;
  ASSERT_TRUE(fenv.NewSequentialFile("/wal/000007.log", &s).ok());
  EXPECT_TRUE(s->Read(3, &result, scratch).IsIOError());
  // Skip is not a read; it must pass through even while reads fail.
  EXPECT_TRUE(s->Skip(2).ok());

  fenv.SetReadFaultSubstring("");
  ASSERT_TRUE(s->Read(3, &result, scratch).ok());
  EXPECT_EQ("cde", result.ToString());
}

TEST(FaultEnvTest, ReadFaultsCountAsInjected) {
  std::unique_ptr<Env> base(NewMemEnv());
  FaultInjectionEnv fenv(base.get());
  ASSERT_TRUE(fenv.WriteStringToFile("abcdef", "/cursed").ok());
  ASSERT_EQ(0u, fenv.FaultsInjected());

  fenv.SetReadFaultSubstring("cursed");
  char scratch[16];
  Slice result;
  std::unique_ptr<RandomAccessFile> r;
  ASSERT_TRUE(fenv.NewRandomAccessFile("/cursed", &r).ok());
  EXPECT_TRUE(r->Read(0, 3, &result, scratch).IsIOError());
  EXPECT_EQ(1u, fenv.FaultsInjected());
  std::unique_ptr<SequentialFile> s;
  ASSERT_TRUE(fenv.NewSequentialFile("/cursed", &s).ok());
  EXPECT_TRUE(s->Read(3, &result, scratch).IsIOError());
  EXPECT_EQ(2u, fenv.FaultsInjected());

  // Disabled faults stop counting; successful reads never count.
  fenv.SetReadFaultSubstring("");
  EXPECT_TRUE(s->Read(3, &result, scratch).ok());
  EXPECT_EQ(2u, fenv.FaultsInjected());
}

// --------------------------------------------------------------------------
// Env::Schedule / Env::StartThread (the background-compaction plumbing).
// --------------------------------------------------------------------------

namespace {

// Polls |pred| for up to ~10 seconds; Schedule/StartThread give no
// completion handle, so tests wait on state the closures publish.
template <typename Pred>
bool WaitFor(Pred pred) {
  for (int i = 0; i < 10000; i++) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return false;
}

struct OrderRecorder {
  std::mutex mu;
  std::vector<int> order;
  std::atomic<int> done{0};
};

struct OrderTask {
  OrderRecorder* recorder;
  int index;
};

void RecordOrder(void* arg) {
  auto* task = static_cast<OrderTask*>(arg);
  {
    std::lock_guard<std::mutex> l(task->recorder->mu);
    task->recorder->order.push_back(task->index);
  }
  task->recorder->done.fetch_add(1);
}

void BumpCounter(void* arg) {
  static_cast<std::atomic<int>*>(arg)->fetch_add(1);
}

}  // namespace

TEST_F(MemEnvTest, ScheduleRunsAllInFifoOrder) {
  constexpr int kTasks = 64;
  OrderRecorder recorder;
  std::vector<OrderTask> tasks(kTasks);
  for (int i = 0; i < kTasks; i++) {
    tasks[i] = {&recorder, i};
    env_->Schedule(&RecordOrder, &tasks[i]);
  }
  ASSERT_TRUE(WaitFor([&] { return recorder.done.load() == kTasks; }));
  // One worker drains the queue in submission order.
  std::lock_guard<std::mutex> l(recorder.mu);
  ASSERT_EQ(static_cast<size_t>(kTasks), recorder.order.size());
  for (int i = 0; i < kTasks; i++) EXPECT_EQ(i, recorder.order[i]);
}

TEST_F(MemEnvTest, ScheduleDrainsOnEnvDestruction) {
  // The Env destructor must let queued work finish before returning --
  // DBImpl relies on this when closing with a flush still queued.
  std::atomic<int> counter{0};
  for (int i = 0; i < 32; i++) env_->Schedule(&BumpCounter, &counter);
  env_.reset();
  EXPECT_EQ(32, counter.load());
}

TEST_F(MemEnvTest, StartThreadRunsDetached) {
  constexpr int kThreads = 8;
  std::atomic<int> counter{0};
  for (int i = 0; i < kThreads; i++) env_->StartThread(&BumpCounter, &counter);
  EXPECT_TRUE(WaitFor([&] { return counter.load() == kThreads; }));
}

TEST(PosixEnvScheduleTest, ScheduleAndStartThread) {
  Env* env = DefaultEnv();
  std::atomic<int> counter{0};
  for (int i = 0; i < 8; i++) env->Schedule(&BumpCounter, &counter);
  env->StartThread(&BumpCounter, &counter);
  EXPECT_TRUE(WaitFor([&] { return counter.load() == 9; }));
}

TEST(FaultEnvScheduleTest, ForwardsToBase) {
  std::unique_ptr<Env> base(NewMemEnv());
  FaultInjectionEnv fenv(base.get());
  std::atomic<int> counter{0};
  fenv.Schedule(&BumpCounter, &counter);
  fenv.StartThread(&BumpCounter, &counter);
  EXPECT_TRUE(WaitFor([&] { return counter.load() == 2; }));
}

// --------------------------------------------------------------------------
// Async submission/completion (Env::SubmitReads / Env::SubmitSync).
// --------------------------------------------------------------------------

namespace {

// Submits |kReads| overlapping reads of |contents| (written to |fname|
// beforehand) in one batch and checks every completion. Shared across envs
// so MemEnv's thread pool and PosixEnv's backend run the same leg.
void CheckBatchedReads(Env* env, const std::string& fname) {
  const std::string contents = "0123456789abcdef";
  ASSERT_TRUE(env->WriteStringToFile(contents, fname).ok());
  std::unique_ptr<RandomAccessFile> file;
  ASSERT_TRUE(env->NewRandomAccessFile(fname, &file).ok());

  constexpr int kReads = 33;  // deliberately not a multiple of any chunk size
  std::vector<ReadRequest> reqs(kReads);
  std::vector<std::array<char, 4>> scratch(kReads);
  std::vector<ReadRequest*> ptrs(kReads);
  for (int i = 0; i < kReads; i++) {
    reqs[i].file = file.get();
    reqs[i].offset = static_cast<uint64_t>(i % 13);
    reqs[i].n = 4;
    reqs[i].scratch = scratch[i].data();
    ptrs[i] = &reqs[i];
  }
  CompletionQueue cq;
  env->SubmitReads(ptrs.data(), ptrs.size(), &cq);
  cq.WaitFor(kReads);
  EXPECT_EQ(static_cast<uint64_t>(kReads), cq.completed());
  for (int i = 0; i < kReads; i++) {
    ASSERT_TRUE(reqs[i].status.ok()) << "read " << i;
    EXPECT_EQ(contents.substr(i % 13, 4), reqs[i].result.ToString())
        << "read " << i;
  }
}

}  // namespace

TEST_F(MemEnvTest, SubmitReadsBatchCompletesAll) {
  CheckBatchedReads(env_.get(), "/async_reads");
}

TEST_F(PosixEnvTest, SubmitReadsBatchCompletesAll) {
  CheckBatchedReads(env_, Path("async_reads"));
}

TEST_F(PosixEnvTest, SubmitSyncCompletes) {
  std::unique_ptr<WritableFile> w;
  ASSERT_TRUE(env_->NewWritableFile(Path("wal"), &w).ok());
  ASSERT_TRUE(w->Append("payload").ok());
  ASSERT_TRUE(w->Flush().ok());
  SyncRequest req;
  req.file = w.get();
  CompletionQueue cq;
  env_->SubmitSync(&req, &cq);
  cq.WaitFor(1);
  EXPECT_TRUE(req.status.ok());
  ASSERT_TRUE(w->Close().ok());
}

TEST(CompletionQueueTest, MultipleWaitersWithDistinctTargets) {
  // Exercises the armed-target protocol: the queue only signals when the
  // smallest armed target is reached, and a departing waiter must re-arm
  // the ones still blocked.
  CompletionQueue cq;
  std::atomic<int> woke{0};
  std::thread t1([&] {
    cq.WaitFor(1);
    woke.fetch_add(1);
  });
  std::thread t2([&] {
    cq.WaitFor(3);
    woke.fetch_add(1);
  });
  // Let both waiters block and arm their targets before posting.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  cq.Post();
  EXPECT_TRUE(WaitFor([&] { return woke.load() >= 1; }));
  cq.Post();
  cq.Post();
  t1.join();
  t2.join();
  EXPECT_EQ(2, woke.load());
  EXPECT_EQ(3u, cq.completed());
}

TEST(FaultEnvAsyncTest, SubmitReadsHonorsReadFaults) {
  std::unique_ptr<Env> base(NewMemEnv());
  FaultInjectionEnv fenv(base.get());
  ASSERT_TRUE(fenv.WriteStringToFile("payload", "/cursed.sst").ok());
  ASSERT_TRUE(fenv.WriteStringToFile("payload", "/fine.sst").ok());
  std::unique_ptr<RandomAccessFile> cursed;
  std::unique_ptr<RandomAccessFile> fine;
  ASSERT_TRUE(fenv.NewRandomAccessFile("/cursed.sst", &cursed).ok());
  ASSERT_TRUE(fenv.NewRandomAccessFile("/fine.sst", &fine).ok());
  fenv.SetReadFaultSubstring("cursed");

  char s1[8];
  char s2[8];
  ReadRequest r1;
  r1.file = cursed.get();
  r1.n = 7;
  r1.scratch = s1;
  ReadRequest r2;
  r2.file = fine.get();
  r2.n = 7;
  r2.scratch = s2;
  ReadRequest* reqs[2] = {&r1, &r2};
  CompletionQueue cq;
  fenv.SubmitReads(reqs, 2, &cq);
  cq.WaitFor(2);
  EXPECT_TRUE(r1.status.IsIOError());
  ASSERT_TRUE(r2.status.ok());
  EXPECT_EQ("payload", r2.result.ToString());
  EXPECT_GE(fenv.FaultsInjected(), 1u);
}

TEST(FaultEnvAsyncTest, SubmitSyncCreditsDurabilityAtCompletion) {
  std::unique_ptr<Env> base(NewMemEnv());
  FaultInjectionEnv fenv(base.get());
  std::unique_ptr<WritableFile> f;
  ASSERT_TRUE(fenv.NewWritableFile("/wal", &f).ok());  // op 0
  ASSERT_TRUE(f->Append("abcde").ok());                // op 1
  ASSERT_TRUE(f->Flush().ok());

  SyncRequest req;
  req.file = f.get();
  CompletionQueue cq;
  fenv.SubmitSync(&req, &cq);  // numbered op 2 at submit
  cq.WaitFor(1);
  ASSERT_TRUE(req.status.ok());
  EXPECT_EQ(3u, fenv.FileOpCount());
  auto files = fenv.TrackedFiles();
  ASSERT_EQ(1u, files.count("/wal"));
  EXPECT_EQ(5u, files["/wal"].synced_bytes);
  EXPECT_EQ(5u, files["/wal"].written_bytes);
}

TEST(FaultEnvAsyncTest, AsyncSyncsNumberedInSubmitOrder) {
  // Two in-flight syncs on one queue: op numbers are assigned at submit
  // time, so arming the crash between the two indices deterministically
  // fails the second submission and leaves the first durable.
  std::unique_ptr<Env> base(NewMemEnv());
  FaultInjectionEnv fenv(base.get());
  std::unique_ptr<WritableFile> a;
  std::unique_ptr<WritableFile> b;
  ASSERT_TRUE(fenv.NewWritableFile("/wal_a", &a).ok());  // op 0
  ASSERT_TRUE(fenv.NewWritableFile("/wal_b", &b).ok());  // op 1
  ASSERT_TRUE(a->Append("aaaa").ok());                   // op 2
  ASSERT_TRUE(b->Append("bb").ok());                     // op 3
  ASSERT_TRUE(a->Flush().ok());
  ASSERT_TRUE(b->Flush().ok());

  fenv.CrashAfterOp(5);  // first sync = op 4 (ok), second = op 5 (crash)
  SyncRequest ra;
  ra.file = a.get();
  SyncRequest rb;
  rb.file = b.get();
  CompletionQueue cq;
  fenv.SubmitSync(&ra, &cq);
  cq.WaitFor(1);  // a's sync completes before the crash op arrives
  fenv.SubmitSync(&rb, &cq);
  cq.WaitFor(2);

  EXPECT_TRUE(ra.status.ok());
  EXPECT_TRUE(rb.status.IsIOError());
  EXPECT_TRUE(fenv.crashed());
  auto files = fenv.TrackedFiles();
  EXPECT_EQ(4u, files["/wal_a"].synced_bytes);
  EXPECT_EQ(0u, files["/wal_b"].synced_bytes);  // crash: no durability effect
}

TEST(FaultEnvAsyncTest, CrashFailsInFlightSyncWithoutDurability) {
  std::unique_ptr<Env> base(NewMemEnv());
  FaultInjectionEnv fenv(base.get());
  std::unique_ptr<WritableFile> f;
  ASSERT_TRUE(fenv.NewWritableFile("/wal", &f).ok());  // op 0
  ASSERT_TRUE(f->Append("abcde").ok());                // op 1
  ASSERT_TRUE(f->Flush().ok());

  fenv.CrashAfterOp(2);  // the sync itself lands on the crash point
  SyncRequest req;
  req.file = f.get();
  CompletionQueue cq;
  fenv.SubmitSync(&req, &cq);
  cq.WaitFor(1);
  EXPECT_TRUE(req.status.IsIOError());
  EXPECT_TRUE(fenv.crashed());
  auto files = fenv.TrackedFiles();
  EXPECT_EQ(0u, files["/wal"].synced_bytes);

  // After the simulated reboot the unsynced append is gone.
  f.reset();
  ASSERT_TRUE(fenv.CrashAndRestart().ok());
  uint64_t size;
  ASSERT_TRUE(fenv.GetFileSize("/wal", &size).ok());
  EXPECT_EQ(0u, size);
}

}  // namespace acheron
