// The crash-during-recovery matrix (recovery of recovery): after a first
// machine crash at file-op index k of the scripted workload, arm a second
// crash at every file-op index j *inside* the recovery path itself --
// DB::Open in one leg, RepairDB in the other -- restart again, and require
// that the final recovery still satisfies the five invariants from
// DESIGN.md. J_k (the number of file ops a recovery performs) is not known
// a priori; the j-loop discovers it dynamically: it ends at the first j
// the recovery completes without reaching the armed crash point.
//
// Default runs sample first-crash indices (stride nshards*3); set
// ACHERON_CRASH_MATRIX_FULL=1 to enumerate every k. The j dimension is
// always exhaustive -- it has to be, to find J_k. See TESTING.md.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/env/env.h"
#include "src/env/fault_env.h"
#include "src/lsm/db.h"
#include "tests/crash_harness.h"

namespace acheron {
namespace {

using crash::CrashRun;
using CrashDataPolicy = FaultInjectionEnv::CrashDataPolicy;

bool FullMatrix() {
  const char* e = std::getenv("ACHERON_CRASH_MATRIX_FULL");
  return e != nullptr && e[0] == '1';
}

// Runaway guard on the j-loop: no recovery path performs anywhere near
// this many file ops; hitting the bound means the loop failed to converge.
constexpr uint64_t kMaxRecoveryOps = 10000;

std::string Repro(bool background, uint64_t k, uint64_t total, uint64_t j,
                  const std::string& leg) {
  std::ostringstream out;
  out << "[recovery-crash repro: mode="
      << (background ? "background" : "sync") << " k=" << k << "/" << total
      << " j=" << j << " leg=" << leg << "]";
  return out.str();
}

// Open the (fully recovered) DB and run the invariant checks against the
// original workload run.
void CheckFinalState(CrashRun& run, const std::string& repro, bool check_ttl) {
  DB* db = nullptr;
  Status s = DB::Open(run.DbOptions(), run.dbname(), &db);
  ASSERT_TRUE(s.ok()) << repro << " final open failed: " << s.ToString();
  crash::CheckRecoveredState(db, run.result(), repro);
  if (check_ttl) crash::CheckDeletePersistenceBound(db, repro);
  delete db;
}

// Leg A: second crash inside DB::Open. For a fixed first-crash k, walks
// j = 0,1,2,... until DB::Open completes without reaching the armed crash
// point; every interrupted recovery is restarted and must then recover.
void RunOpenLeg(bool background, uint64_t k, uint64_t total, bool full) {
  for (uint64_t j = 0; j < kMaxRecoveryOps; j++) {
    const std::string repro = Repro(background, k, total, j, "open");
    CrashRun run(background);
    run.RunWorkload(static_cast<int64_t>(k));
    ASSERT_TRUE(run.env()->CrashAndRestart().ok()) << repro;

    run.env()->CrashAfterRelativeOps(j);
    DB* db = nullptr;
    Status s = DB::Open(run.DbOptions(), run.dbname(), &db);
    if (run.env()->crashed()) {
      // Recovery was interrupted at its j-th file op (it may still have
      // reported success if the op was a best-effort one, e.g. an obsolete-
      // file unlink). Crash-restart again: recovery of recovery.
      delete db;
      ASSERT_TRUE(run.env()->CrashAndRestart().ok()) << repro;
      const bool check_ttl = full || (j % 8 == 0);
      CheckFinalState(run, repro, check_ttl);
      if (::testing::Test::HasFatalFailure()) return;
    } else {
      // j reached past the end of this recovery's file-op schedule: J_k
      // found. Disarm (the crash point would otherwise fire during the
      // checks below) and verify this uninterrupted recovery too.
      run.env()->CrashAfterOp(-1);
      ASSERT_TRUE(s.ok()) << repro << " open failed without a crash: "
                          << s.ToString();
      delete db;
      CheckFinalState(run, repro, /*check_ttl=*/false);
      return;
    }
  }
  FAIL() << "open-leg j-loop failed to converge at k=" << k;
}

// Strip CURRENT and every MANIFEST (the precondition of the repair
// invariant). Returns false if nothing else remains -- the crash predates
// any WAL or table, so repair is vacuous at this k.
bool StripManifests(CrashRun& run, const std::string& repro) {
  Env* env = run.env();
  std::vector<std::string> children;
  if (!env->GetChildren(run.dbname(), &children).ok()) return false;
  size_t remaining = 0;
  for (const std::string& c : children) {
    if (c == "CURRENT" || c.rfind("MANIFEST-", 0) == 0) {
      EXPECT_TRUE(env->RemoveFile(run.dbname() + "/" + c).ok()) << repro;
    } else {
      remaining++;
    }
  }
  return remaining > 0;
}

// Leg B: second crash inside RepairDB. CURRENT/MANIFESTs are stripped
// *before* arming the relative crash point (the strip itself is made of
// mutating file ops and must not consume the budget).
void RunRepairLeg(bool background, uint64_t k, uint64_t total, bool full) {
  for (uint64_t j = 0; j < kMaxRecoveryOps; j++) {
    const std::string repro = Repro(background, k, total, j, "repair");
    CrashRun run(background);
    run.RunWorkload(static_cast<int64_t>(k));
    ASSERT_TRUE(run.env()->CrashAndRestart().ok()) << repro;
    if (!StripManifests(run, repro)) return;  // vacuous at this k

    run.env()->CrashAfterRelativeOps(j);
    Status s = RepairDB(run.dbname(), run.DbOptions());
    if (run.env()->crashed()) {
      ASSERT_TRUE(run.env()->CrashAndRestart().ok()) << repro;
      // Repair of repair: run it again on whatever the interrupted repair
      // left behind (it may have completed a new MANIFEST+CURRENT, or torn
      // them mid-write -- both must be handled).
      Status s2 = RepairDB(run.dbname(), run.DbOptions());
      ASSERT_TRUE(s2.ok()) << repro << " repair-of-repair failed: "
                           << s2.ToString();
      const bool check_ttl = full || (j % 8 == 0);
      CheckFinalState(run, repro, check_ttl);
      if (::testing::Test::HasFatalFailure()) return;
    } else {
      run.env()->CrashAfterOp(-1);
      ASSERT_TRUE(s.ok()) << repro << " repair failed without a crash: "
                          << s.ToString();
      CheckFinalState(run, repro, /*check_ttl=*/false);
      return;
    }
  }
  FAIL() << "repair-leg j-loop failed to converge at k=" << k;
}

void RunRecoveryCrashMatrix(bool background, uint64_t shard,
                            uint64_t nshards) {
  const bool full = FullMatrix();

  // Dry run: learn the workload's total op count (k's domain) and assert
  // the schedule is deterministic, as the outer matrix does.
  uint64_t total = 0;
  {
    CrashRun dry(background);
    dry.RunWorkload(-1);
    ASSERT_TRUE(dry.result().open_status.ok());
    total = dry.env()->FileOpCount();
    ASSERT_GT(total, 0u);
    CrashRun dry2(background);
    dry2.RunWorkload(-1);
    ASSERT_EQ(total, dry2.env()->FileOpCount())
        << "file-op schedule must be deterministic for (k, j) to be a repro";
  }

  // The j dimension is exhaustive per k; sample k unless FULL. The stride
  // is offset by the shard so distinct shards cover distinct k.
  const uint64_t stride = full ? nshards : nshards * 3;
  for (uint64_t k = shard; k <= total; k += stride) {
    RunOpenLeg(background, k, total, full);
    if (::testing::Test::HasFatalFailure()) return;
    RunRepairLeg(background, k, total, full);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(RecoveryCrashMatrixSync, Shard0) { RunRecoveryCrashMatrix(false, 0, 4); }
TEST(RecoveryCrashMatrixSync, Shard1) { RunRecoveryCrashMatrix(false, 1, 4); }
TEST(RecoveryCrashMatrixSync, Shard2) { RunRecoveryCrashMatrix(false, 2, 4); }
TEST(RecoveryCrashMatrixSync, Shard3) { RunRecoveryCrashMatrix(false, 3, 4); }
TEST(RecoveryCrashMatrixBackground, Shard0) {
  RunRecoveryCrashMatrix(true, 0, 4);
}
TEST(RecoveryCrashMatrixBackground, Shard1) {
  RunRecoveryCrashMatrix(true, 1, 4);
}
TEST(RecoveryCrashMatrixBackground, Shard2) {
  RunRecoveryCrashMatrix(true, 2, 4);
}
TEST(RecoveryCrashMatrixBackground, Shard3) {
  RunRecoveryCrashMatrix(true, 3, 4);
}

}  // namespace
}  // namespace acheron
