// POSITIVE compile-time smoke test: the well-locked twin of
// thread_safety_violation.cc. Must compile cleanly under
//
//   clang++ -fsyntax-only -Wthread-safety -Werror=thread-safety
//
// Paired with the negative test so a broken harness (wrong flags, wrong
// include path) cannot masquerade as "the violation was caught".
//
// NOT part of any build target -- compiled standalone by the smoke test.
#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace {

class Guarded {
 public:
  void MustHoldLock() EXCLUSIVE_LOCKS_REQUIRED(mu_) { value_++; }

  acheron::Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int UseWithLockHeld() {
  Guarded g;
  acheron::MutexLock l(&g.mu_);
  g.MustHoldLock();
  return g.value_;
}
