// POSITIVE compile-time smoke test: the well-locked twin of
// thread_safety_violation.cc. Must compile cleanly under
//
//   clang++ -fsyntax-only -Wthread-safety -Werror=thread-safety
//
// Paired with the negative test so a broken harness (wrong flags, wrong
// include path) cannot masquerade as "the violation was caught".
//
// NOT part of any build target -- compiled standalone by the smoke test.
#include <vector>

#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace {

class Guarded {
 public:
  void MustHoldLock() EXCLUSIVE_LOCKS_REQUIRED(mu_) { value_++; }

  acheron::Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};

}  // namespace

namespace {

// Well-locked twin of the RetireList violation: the retire/free lists of
// the lock-free read path are GUARDED_BY the mutex even though the
// published pointer itself is an atomic (see DBImpl::retired_read_states_).
class RetireList {
 public:
  void Retire(int* p) EXCLUSIVE_LOCKS_REQUIRED(mu_) {
    retired_.push_back(p);
  }
  void Drain() EXCLUSIVE_LOCKS_REQUIRED(mu_) { retired_.clear(); }

  acheron::Mutex mu_;
  std::vector<int*> retired_ GUARDED_BY(mu_);
};

}  // namespace

int UseWithLockHeld() {
  Guarded g;
  acheron::MutexLock l(&g.mu_);
  g.MustHoldLock();
  return g.value_;
}

int UseRetireListWithLockHeld() {
  RetireList r;
  static int x;
  acheron::MutexLock l(&r.mu_);
  r.Retire(&x);
  r.Drain();
  return static_cast<int>(r.retired_.size());
}
