// NEGATIVE compile-time smoke test: this translation unit deliberately
// violates a thread-safety annotation and must FAIL to compile under
//
//   clang++ -fsyntax-only -Wthread-safety -Werror=thread-safety
//
// CTest runs it with WILL_FAIL (Clang builds only; GCC has no
// -Wthread-safety, so the target is skipped there). If this file ever
// compiles under the flags above, the annotation enforcement is broken.
//
// NOT part of any build target -- compiled standalone by the smoke test.
#include <vector>

#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace {

class Guarded {
 public:
  void MustHoldLock() EXCLUSIVE_LOCKS_REQUIRED(mu_) { value_++; }

  acheron::Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};

}  // namespace

namespace {

// Mirrors the lock-free read path's writer-side state: the retire/free
// lists are GUARDED_BY the mutex even though the published pointer itself
// is an atomic (see DBImpl::retired_read_states_).
class RetireList {
 public:
  void Retire(int* p) EXCLUSIVE_LOCKS_REQUIRED(mu_) {
    retired_.push_back(p);
  }
  void Drain() EXCLUSIVE_LOCKS_REQUIRED(mu_) { retired_.clear(); }

  acheron::Mutex mu_;
  std::vector<int*> retired_ GUARDED_BY(mu_);
};

}  // namespace

int ViolateThreadSafety() {
  Guarded g;
  g.MustHoldLock();     // ERROR: mu_ not held
  return g.value_;      // ERROR: reading value_ without mu_
}

int ViolateRetireList() {
  RetireList r;
  static int x;
  r.Retire(&x);                           // ERROR: mu_ not held
  r.Drain();                              // ERROR: mu_ not held
  return static_cast<int>(r.retired_.size());  // ERROR: unguarded read
}
