// NEGATIVE compile-time smoke test: this translation unit deliberately
// violates a thread-safety annotation and must FAIL to compile under
//
//   clang++ -fsyntax-only -Wthread-safety -Werror=thread-safety
//
// CTest runs it with WILL_FAIL (Clang builds only; GCC has no
// -Wthread-safety, so the target is skipped there). If this file ever
// compiles under the flags above, the annotation enforcement is broken.
//
// NOT part of any build target -- compiled standalone by the smoke test.
#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace {

class Guarded {
 public:
  void MustHoldLock() EXCLUSIVE_LOCKS_REQUIRED(mu_) { value_++; }

  acheron::Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int ViolateThreadSafety() {
  Guarded g;
  g.MustHoldLock();     // ERROR: mu_ not held
  return g.value_;      // ERROR: reading value_ without mu_
}
