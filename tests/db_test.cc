// End-to-end tests of the Acheron DB: CRUD, iterators, snapshots, flush,
// compaction (leveling + tiering), recovery, and properties.
#include "src/lsm/db.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "src/env/env.h"
#include "src/lsm/db_impl.h"
#include "src/util/random.h"

namespace acheron {

class DBTest : public ::testing::Test {
 protected:
  DBTest() : env_(NewMemEnv()), db_(nullptr) {
    options_.env = env_.get();
    options_.write_buffer_size = 16 << 10;  // small, to force flushes
    options_.max_file_size = 32 << 10;
    options_.level0_compaction_trigger = 4;
    options_.size_ratio = 4;
  }

  ~DBTest() override { delete db_; }

  Status Open() {
    delete db_;
    db_ = nullptr;
    return DB::Open(options_, "/db", &db_);
  }

  Status Reopen() { return Open(); }

  Status Put(const std::string& k, const std::string& v) {
    return db_->Put(WriteOptions(), k, v);
  }
  Status Delete(const std::string& k) { return db_->Delete(WriteOptions(), k); }
  std::string Get(const std::string& k, const Snapshot* snapshot = nullptr) {
    ReadOptions options;
    options.snapshot = snapshot;
    std::string result;
    Status s = db_->Get(options, k, &result);
    if (s.IsNotFound()) {
      result = "NOT_FOUND";
    } else if (!s.ok()) {
      result = s.ToString();
    }
    return result;
  }

  int NumFilesAtLevel(int level) {
    std::string value;
    EXPECT_TRUE(db_->GetProperty(
        "acheron.num-files-at-level" + std::to_string(level), &value));
    return std::stoi(value);
  }

  int TotalFiles() {
    int total = 0;
    for (int i = 0; i < kNumLevels; i++) total += NumFilesAtLevel(i);
    return total;
  }

  uint64_t TotalTombstones() {
    std::string value;
    EXPECT_TRUE(db_->GetProperty("acheron.total-tombstones", &value));
    return std::stoull(value);
  }

  uint64_t MaxTombstoneAge() {
    std::string value;
    EXPECT_TRUE(db_->GetProperty("acheron.max-tombstone-age", &value));
    return std::stoull(value);
  }

  // Full user-visible contents via an iterator, as "k1->v1,k2->v2,".
  std::string Contents() {
    std::string result;
    std::unique_ptr<Iterator> it(db_->NewIterator(ReadOptions()));
    for (it->SeekToFirst(); it->Valid(); it->Next()) {
      result += it->key().ToString() + "->" + it->value().ToString() + ",";
    }
    EXPECT_TRUE(it->status().ok()) << it->status().ToString();
    return result;
  }

  std::unique_ptr<Env> env_;
  Options options_;
  DB* db_;
};

TEST_F(DBTest, OpenAndReopenEmpty) {
  ASSERT_TRUE(Open().ok());
  EXPECT_EQ("NOT_FOUND", Get("missing"));
  ASSERT_TRUE(Reopen().ok());
  EXPECT_EQ("NOT_FOUND", Get("missing"));
}

TEST_F(DBTest, OpenFailsWithoutCreateIfMissing) {
  options_.create_if_missing = false;
  Status s = Open();
  EXPECT_FALSE(s.ok());
}

TEST_F(DBTest, ErrorIfExists) {
  ASSERT_TRUE(Open().ok());
  options_.error_if_exists = true;
  Status s = Open();
  EXPECT_FALSE(s.ok());
}

TEST_F(DBTest, PutGetDelete) {
  ASSERT_TRUE(Open().ok());
  ASSERT_TRUE(Put("foo", "v1").ok());
  EXPECT_EQ("v1", Get("foo"));
  ASSERT_TRUE(Put("foo", "v2").ok());
  EXPECT_EQ("v2", Get("foo"));
  ASSERT_TRUE(Delete("foo").ok());
  EXPECT_EQ("NOT_FOUND", Get("foo"));
  // Deleting a non-existent key succeeds.
  ASSERT_TRUE(Delete("nothing").ok());
}

TEST_F(DBTest, EmptyKeyAndValue) {
  ASSERT_TRUE(Open().ok());
  ASSERT_TRUE(Put("", "empty-key-value").ok());
  EXPECT_EQ("empty-key-value", Get(""));
  ASSERT_TRUE(Put("empty-value", "").ok());
  EXPECT_EQ("", Get("empty-value"));
}

TEST_F(DBTest, BinaryKeys) {
  ASSERT_TRUE(Open().ok());
  std::string k1("a\0b", 3), k2("a\0c", 3);
  ASSERT_TRUE(Put(k1, "1").ok());
  ASSERT_TRUE(Put(k2, "2").ok());
  EXPECT_EQ("1", Get(k1));
  EXPECT_EQ("2", Get(k2));
}

TEST_F(DBTest, GetFromSSTAfterFlush) {
  ASSERT_TRUE(Open().ok());
  ASSERT_TRUE(Put("persisted", "on-disk").ok());
  ASSERT_TRUE(db_->FlushMemTable().ok());
  EXPECT_GE(NumFilesAtLevel(0), 1);
  EXPECT_EQ("on-disk", Get("persisted"));
}

TEST_F(DBTest, DeleteShadowsOlderSST) {
  ASSERT_TRUE(Open().ok());
  ASSERT_TRUE(Put("k", "old").ok());
  ASSERT_TRUE(db_->FlushMemTable().ok());
  ASSERT_TRUE(Delete("k").ok());
  EXPECT_EQ("NOT_FOUND", Get("k"));
  ASSERT_TRUE(db_->FlushMemTable().ok());
  EXPECT_EQ("NOT_FOUND", Get("k"));
}

TEST_F(DBTest, WriteBatchAtomicity) {
  ASSERT_TRUE(Open().ok());
  WriteBatch batch;
  batch.Put("a", "1");
  batch.Put("b", "2");
  batch.Delete("a");
  batch.Put("c", "3");
  ASSERT_TRUE(db_->Write(WriteOptions(), &batch).ok());
  EXPECT_EQ("NOT_FOUND", Get("a"));
  EXPECT_EQ("2", Get("b"));
  EXPECT_EQ("3", Get("c"));
}

TEST_F(DBTest, RecoveryFromWAL) {
  ASSERT_TRUE(Open().ok());
  ASSERT_TRUE(Put("alpha", "1").ok());
  ASSERT_TRUE(Put("beta", "2").ok());
  ASSERT_TRUE(Delete("alpha").ok());
  // No flush: everything lives in the WAL + memtable.
  ASSERT_TRUE(Reopen().ok());
  EXPECT_EQ("NOT_FOUND", Get("alpha"));
  EXPECT_EQ("2", Get("beta"));
}

TEST_F(DBTest, RecoveryWithFlushedData) {
  ASSERT_TRUE(Open().ok());
  for (int i = 0; i < 100; i++) {
    ASSERT_TRUE(Put("key" + std::to_string(i), "v" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(db_->FlushMemTable().ok());
  for (int i = 100; i < 150; i++) {
    ASSERT_TRUE(Put("key" + std::to_string(i), "v" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(Reopen().ok());
  for (int i = 0; i < 150; i++) {
    EXPECT_EQ("v" + std::to_string(i), Get("key" + std::to_string(i)));
  }
}

TEST_F(DBTest, RepeatedReopens) {
  ASSERT_TRUE(Open().ok());
  for (int round = 0; round < 5; round++) {
    for (int i = 0; i < 50; i++) {
      ASSERT_TRUE(
          Put("r" + std::to_string(round) + "k" + std::to_string(i), "v").ok());
    }
    ASSERT_TRUE(Reopen().ok());
  }
  for (int round = 0; round < 5; round++) {
    for (int i = 0; i < 50; i++) {
      EXPECT_EQ("v", Get("r" + std::to_string(round) + "k" + std::to_string(i)));
    }
  }
}

TEST_F(DBTest, IteratorBasics) {
  ASSERT_TRUE(Open().ok());
  ASSERT_TRUE(Put("b", "2").ok());
  ASSERT_TRUE(Put("a", "1").ok());
  ASSERT_TRUE(Put("c", "3").ok());
  EXPECT_EQ("a->1,b->2,c->3,", Contents());

  std::unique_ptr<Iterator> it(db_->NewIterator(ReadOptions()));
  it->Seek("b");
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ("b", it->key().ToString());
  it->Prev();
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ("a", it->key().ToString());
  it->SeekToLast();
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ("c", it->key().ToString());
  it->Next();
  EXPECT_FALSE(it->Valid());
}

TEST_F(DBTest, IteratorHidesDeletedAndOldVersions) {
  ASSERT_TRUE(Open().ok());
  ASSERT_TRUE(Put("a", "old").ok());
  ASSERT_TRUE(Put("b", "keep").ok());
  ASSERT_TRUE(Put("a", "new").ok());
  ASSERT_TRUE(Put("c", "dead").ok());
  ASSERT_TRUE(Delete("c").ok());
  EXPECT_EQ("a->new,b->keep,", Contents());
}

TEST_F(DBTest, IteratorAcrossMemtableAndSSTs) {
  ASSERT_TRUE(Open().ok());
  ASSERT_TRUE(Put("disk1", "d1").ok());
  ASSERT_TRUE(Put("disk2", "d2").ok());
  ASSERT_TRUE(db_->FlushMemTable().ok());
  ASSERT_TRUE(Put("mem1", "m1").ok());
  ASSERT_TRUE(Delete("disk2").ok());
  EXPECT_EQ("disk1->d1,mem1->m1,", Contents());
}

TEST_F(DBTest, IteratorReverseScan) {
  ASSERT_TRUE(Open().ok());
  for (int i = 0; i < 20; i++) {
    char buf[8];
    std::snprintf(buf, sizeof(buf), "k%02d", i);
    ASSERT_TRUE(Put(buf, std::to_string(i)).ok());
  }
  ASSERT_TRUE(db_->FlushMemTable().ok());
  for (int i = 20; i < 40; i++) {
    char buf[8];
    std::snprintf(buf, sizeof(buf), "k%02d", i);
    ASSERT_TRUE(Put(buf, std::to_string(i)).ok());
  }
  std::unique_ptr<Iterator> it(db_->NewIterator(ReadOptions()));
  it->SeekToLast();
  for (int i = 39; i >= 0; i--) {
    ASSERT_TRUE(it->Valid()) << i;
    EXPECT_EQ(std::to_string(i), it->value().ToString());
    it->Prev();
  }
  EXPECT_FALSE(it->Valid());
}

TEST_F(DBTest, SnapshotIsolation) {
  ASSERT_TRUE(Open().ok());
  ASSERT_TRUE(Put("k", "v1").ok());
  const Snapshot* s1 = db_->GetSnapshot();
  ASSERT_TRUE(Put("k", "v2").ok());
  const Snapshot* s2 = db_->GetSnapshot();
  ASSERT_TRUE(Delete("k").ok());

  EXPECT_EQ("v1", Get("k", s1));
  EXPECT_EQ("v2", Get("k", s2));
  EXPECT_EQ("NOT_FOUND", Get("k"));

  // Survives flush + compaction while pinned.
  ASSERT_TRUE(db_->FlushMemTable().ok());
  db_->CompactRange(nullptr, nullptr);
  EXPECT_EQ("v1", Get("k", s1));
  EXPECT_EQ("v2", Get("k", s2));
  EXPECT_EQ("NOT_FOUND", Get("k"));

  db_->ReleaseSnapshot(s1);
  db_->ReleaseSnapshot(s2);
}

TEST_F(DBTest, SnapshotIterator) {
  ASSERT_TRUE(Open().ok());
  ASSERT_TRUE(Put("a", "1").ok());
  ASSERT_TRUE(Put("b", "2").ok());
  const Snapshot* snap = db_->GetSnapshot();
  ASSERT_TRUE(Delete("a").ok());
  ASSERT_TRUE(Put("c", "3").ok());

  ReadOptions ropts;
  ropts.snapshot = snap;
  std::unique_ptr<Iterator> it(db_->NewIterator(ropts));
  std::string contents;
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    contents += it->key().ToString() + "->" + it->value().ToString() + ",";
  }
  EXPECT_EQ("a->1,b->2,", contents);
  db_->ReleaseSnapshot(snap);
}

TEST_F(DBTest, CompactionsKeepDataCorrect) {
  ASSERT_TRUE(Open().ok());
  // Write enough data (with overwrites) to push through several levels.
  Random rnd(301);
  std::map<std::string, std::string> model;
  for (int i = 0; i < 5000; i++) {
    std::string key = "key" + std::to_string(rnd.Uniform(500));
    std::string value = "v" + std::to_string(i) + std::string(100, 'x');
    model[key] = value;
    ASSERT_TRUE(Put(key, value).ok());
  }
  ASSERT_TRUE(db_->FlushMemTable().ok());
  EXPECT_GT(TotalFiles(), 0);
  // There must be files beyond L0 by now.
  int deeper = 0;
  for (int level = 1; level < kNumLevels; level++)
    deeper += NumFilesAtLevel(level);
  EXPECT_GT(deeper, 0);

  for (const auto& [k, v] : model) {
    ASSERT_EQ(v, Get(k)) << k;
  }
}

TEST_F(DBTest, CompactRangeSquashesTree) {
  ASSERT_TRUE(Open().ok());
  for (int i = 0; i < 2000; i++) {
    ASSERT_TRUE(
        Put("key" + std::to_string(i % 300), std::string(200, 'a' + i % 26))
            .ok());
  }
  db_->CompactRange(nullptr, nullptr);
  // After a full manual compaction all data lives in one level.
  int populated_levels = 0;
  for (int level = 0; level < kNumLevels; level++) {
    if (NumFilesAtLevel(level) > 0) populated_levels++;
  }
  EXPECT_EQ(1, populated_levels);
  for (int i = 0; i < 300; i++) {
    EXPECT_NE("NOT_FOUND", Get("key" + std::to_string(i)));
  }
}

TEST_F(DBTest, ModelCheckWithReopens) {
  // Randomized property test: DB == std::map under a random op trace with
  // periodic reopens and flushes.
  ASSERT_TRUE(Open().ok());
  Random rnd(7);
  std::map<std::string, std::string> model;
  for (int step = 0; step < 8000; step++) {
    int op = rnd.Uniform(10);
    std::string key = "k" + std::to_string(rnd.Uniform(400));
    if (op < 6) {  // put
      std::string value = "v" + std::to_string(step);
      model[key] = value;
      ASSERT_TRUE(Put(key, value).ok());
    } else if (op < 9) {  // delete
      model.erase(key);
      ASSERT_TRUE(Delete(key).ok());
    } else if (op == 9 && step % 100 == 99) {
      if (rnd.OneIn(3)) {
        ASSERT_TRUE(Reopen().ok());
      } else {
        ASSERT_TRUE(db_->FlushMemTable().ok());
      }
    }
    if (step % 1000 == 999) {
      // Full comparison.
      std::string expected;
      for (const auto& [k, v] : model) {
        expected += k + "->" + v + ",";
      }
      ASSERT_EQ(expected, Contents()) << "step " << step;
    }
  }
  // Point-read comparison at the end.
  for (int i = 0; i < 400; i++) {
    std::string key = "k" + std::to_string(i);
    auto it = model.find(key);
    if (it == model.end()) {
      EXPECT_EQ("NOT_FOUND", Get(key));
    } else {
      EXPECT_EQ(it->second, Get(key));
    }
  }
}

TEST_F(DBTest, GetPropertySurface) {
  ASSERT_TRUE(Open().ok());
  ASSERT_TRUE(Put("a", "1").ok());
  ASSERT_TRUE(Delete("b").ok());
  std::string value;
  EXPECT_TRUE(db_->GetProperty("acheron.stats", &value));
  EXPECT_FALSE(value.empty());
  EXPECT_TRUE(db_->GetProperty("acheron.sstables", &value));
  EXPECT_TRUE(db_->GetProperty("acheron.total-tombstones", &value));
  EXPECT_EQ("1", value);
  EXPECT_TRUE(db_->GetProperty("acheron.delete-stats", &value));
  EXPECT_FALSE(db_->GetProperty("acheron.bogus", &value));
  EXPECT_FALSE(db_->GetProperty("unknown.prefix", &value));
}

TEST_F(DBTest, StatsTrackWrites) {
  ASSERT_TRUE(Open().ok());
  for (int i = 0; i < 1000; i++) {
    ASSERT_TRUE(Put("key" + std::to_string(i), std::string(100, 'v')).ok());
  }
  ASSERT_TRUE(db_->FlushMemTable().ok());
  InternalStats stats = db_->GetStats();
  EXPECT_GT(stats.user_bytes_written, 100u * 1000);
  EXPECT_GT(stats.flush_count, 0u);
  EXPECT_GT(stats.flush_bytes_written, 0u);
  EXPECT_GE(stats.WriteAmplification(), 1.0);
}

TEST_F(DBTest, DestroyDBRemovesEverything) {
  ASSERT_TRUE(Open().ok());
  ASSERT_TRUE(Put("k", "v").ok());
  ASSERT_TRUE(db_->FlushMemTable().ok());
  delete db_;
  db_ = nullptr;
  ASSERT_TRUE(DestroyDB("/db", options_).ok());
  options_.create_if_missing = false;
  EXPECT_FALSE(Open().ok());
}

TEST_F(DBTest, DisableWalStillWorksUntilReopen) {
  options_.disable_wal = true;
  ASSERT_TRUE(Open().ok());
  ASSERT_TRUE(Put("k", "v").ok());
  EXPECT_EQ("v", Get("k"));
  ASSERT_TRUE(db_->FlushMemTable().ok());
  ASSERT_TRUE(Reopen().ok());
  EXPECT_EQ("v", Get("k"));  // flushed data survives even without WAL
}

TEST_F(DBTest, LargeValues) {
  ASSERT_TRUE(Open().ok());
  std::string big(500000, 'B');
  ASSERT_TRUE(Put("big", big).ok());
  ASSERT_TRUE(Put("small", "s").ok());
  EXPECT_EQ(big, Get("big"));
  ASSERT_TRUE(db_->FlushMemTable().ok());
  EXPECT_EQ(big, Get("big"));
  EXPECT_EQ("s", Get("small"));
  ASSERT_TRUE(Reopen().ok());
  EXPECT_EQ(big, Get("big"));
}

// ---- Tiering ----

class DBTieringTest : public DBTest {
 protected:
  DBTieringTest() { options_.compaction_style = CompactionStyle::kTiering; }
};

TEST_F(DBTieringTest, BasicCrud) {
  ASSERT_TRUE(Open().ok());
  ASSERT_TRUE(Put("a", "1").ok());
  ASSERT_TRUE(Delete("a").ok());
  ASSERT_TRUE(Put("b", "2").ok());
  EXPECT_EQ("NOT_FOUND", Get("a"));
  EXPECT_EQ("2", Get("b"));
}

TEST_F(DBTieringTest, MergesRunsAtSizeRatio) {
  options_.size_ratio = 3;
  ASSERT_TRUE(Open().ok());
  // Force several flushes; L0 must never exceed the run trigger after
  // settle.
  for (int batch = 0; batch < 10; batch++) {
    for (int i = 0; i < 100; i++) {
      ASSERT_TRUE(
          Put("key" + std::to_string(batch * 100 + i), std::string(300, 'x'))
              .ok());
    }
    ASSERT_TRUE(db_->FlushMemTable().ok());
    EXPECT_LT(NumFilesAtLevel(0), 3 + 1);
  }
  for (int i = 0; i < 1000; i++) {
    EXPECT_NE("NOT_FOUND", Get("key" + std::to_string(i)));
  }
}

TEST_F(DBTieringTest, ModelCheck) {
  options_.size_ratio = 3;
  ASSERT_TRUE(Open().ok());
  Random rnd(99);
  std::map<std::string, std::string> model;
  for (int step = 0; step < 6000; step++) {
    std::string key = "k" + std::to_string(rnd.Uniform(300));
    if (rnd.Uniform(10) < 7) {
      std::string value = "v" + std::to_string(step) + std::string(50, 'y');
      model[key] = value;
      ASSERT_TRUE(Put(key, value).ok());
    } else {
      model.erase(key);
      ASSERT_TRUE(Delete(key).ok());
    }
    if (step % 1500 == 1499) {
      std::string expected;
      for (const auto& [k, v] : model) expected += k + "->" + v + ",";
      ASSERT_EQ(expected, Contents()) << "step " << step;
      ASSERT_TRUE(Reopen().ok());
    }
  }
  for (int i = 0; i < 300; i++) {
    std::string key = "k" + std::to_string(i);
    auto it = model.find(key);
    if (it == model.end()) {
      EXPECT_EQ("NOT_FOUND", Get(key));
    } else {
      EXPECT_EQ(it->second, Get(key));
    }
  }
}

}  // namespace acheron
