// Decoder robustness: random mutations/truncations of encoded structures
// (VersionEdit, TableProperties, WriteBatch, varints) must never crash or
// read out of bounds -- they either round-trip or fail cleanly.
#include <gtest/gtest.h>

#include "src/core/range_tombstone.h"
#include "src/lsm/version_edit.h"
#include "src/lsm/write_batch.h"
#include "src/lsm/write_batch_internal.h"
#include "src/memtable/memtable.h"
#include "src/table/properties.h"
#include "src/util/coding.h"
#include "src/util/random.h"

namespace acheron {

namespace {

std::string EncodedVersionEdit() {
  VersionEdit edit;
  edit.SetComparatorName("acheron.BytewiseComparator");
  edit.SetLogNumber(77);
  edit.SetNextFile(99);
  edit.SetLastSequence(123456789);
  for (int i = 0; i < 5; i++) {
    FileMetaData f;
    f.number = 100 + i;
    f.file_size = 5000 + i;
    f.smallest = InternalKey("aaa" + std::to_string(i), 10, kTypeValue);
    f.largest = InternalKey("zzz" + std::to_string(i), 20, kTypeDeletion);
    f.num_entries = 50;
    f.num_tombstones = 5;
    f.earliest_tombstone_seq = 12;
    f.min_secondary_key = "min";
    f.max_secondary_key = "max";
    edit.AddFile(i % 3, f);
    edit.RemoveFile(i % 3, 200 + i);
  }
  std::string out;
  edit.EncodeTo(&out);
  return out;
}

std::string EncodedProperties() {
  TableProperties props;
  props.num_entries = 1000;
  props.num_tombstones = 100;
  props.earliest_tombstone_time = 42;
  props.raw_key_bytes = 5000;
  props.raw_value_bytes = 9000;
  props.num_data_blocks = 7;
  props.min_secondary_key = "aaaa";
  props.max_secondary_key = "zzzz";
  std::string out;
  props.EncodeTo(&out);
  return out;
}

std::string EncodedBatch() {
  WriteBatch batch;
  for (int i = 0; i < 10; i++) {
    batch.Put("key" + std::to_string(i), std::string(50, 'v'));
    batch.Delete("dead" + std::to_string(i));
  }
  WriteBatchInternal::SetSequence(&batch, 555);
  return WriteBatchInternal::Contents(&batch).ToString();
}

std::string EncodedRangeTombstoneBlock() {
  // Deliberately overlapping, nested, and adjacent ranges: the mutated
  // block must never crash the decoder, and the clean block exercises every
  // fragmenter split case.
  std::vector<RangeTombstone> tombstones;
  tombstones.emplace_back("bbb", "ggg", 10);
  tombstones.emplace_back("ccc", "eee", 20);  // nested
  tombstones.emplace_back("aaa", "ddd", 15);  // overlaps the head
  tombstones.emplace_back("ggg", "kkk", 5);   // adjacent
  tombstones.emplace_back("mmm", "nnn", 30);  // disjoint
  std::string out;
  EncodeRangeTombstones(tombstones, &out);
  return out;
}

}  // namespace

class DecodeFuzz : public ::testing::TestWithParam<int> {};

TEST_P(DecodeFuzz, VersionEditSurvivesMutations) {
  Random rnd(GetParam());
  const std::string base = EncodedVersionEdit();
  for (int trial = 0; trial < 2000; trial++) {
    std::string mutated = base;
    // Truncate and/or flip bytes.
    if (rnd.OneIn(2) && !mutated.empty()) {
      mutated.resize(rnd.Uniform(mutated.size() + 1));
    }
    int flips = static_cast<int>(rnd.Uniform(4));
    for (int f = 0; f < flips && !mutated.empty(); f++) {
      mutated[rnd.Uniform(mutated.size())] ^=
          static_cast<char>(1 + rnd.Uniform(255));
    }
    VersionEdit edit;
    // Must not crash; status is either ok or corruption.
    (void)edit.DecodeFrom(mutated);
  }
}

TEST_P(DecodeFuzz, PropertiesSurviveMutations) {
  Random rnd(GetParam() + 1000);
  const std::string base = EncodedProperties();
  for (int trial = 0; trial < 2000; trial++) {
    std::string mutated = base;
    if (rnd.OneIn(2) && !mutated.empty()) {
      mutated.resize(rnd.Uniform(mutated.size() + 1));
    }
    int flips = static_cast<int>(rnd.Uniform(4));
    for (int f = 0; f < flips && !mutated.empty(); f++) {
      mutated[rnd.Uniform(mutated.size())] ^=
          static_cast<char>(1 + rnd.Uniform(255));
    }
    TableProperties props;
    (void)props.DecodeFrom(mutated);  // ok or corruption; must not crash
  }
}

TEST_P(DecodeFuzz, WriteBatchIterateSurvivesMutations) {
  Random rnd(GetParam() + 2000);
  const std::string base = EncodedBatch();
  InternalKeyComparator icmp(BytewiseComparator());
  for (int trial = 0; trial < 500; trial++) {
    std::string mutated = base;
    if (rnd.OneIn(2)) {
      mutated.resize(12 + rnd.Uniform(mutated.size() - 11));
    }
    int flips = static_cast<int>(rnd.Uniform(4));
    for (int f = 0; f < flips; f++) {
      size_t pos = rnd.Uniform(mutated.size());
      if (pos < 12) continue;  // keep the header sane for SetContents
      mutated[pos] ^= static_cast<char>(1 + rnd.Uniform(255));
    }
    WriteBatch batch;
    WriteBatchInternal::SetContents(&batch, mutated);
    MemTable* mem = new MemTable(icmp);
    mem->Ref();
    (void)WriteBatchInternal::InsertInto(&batch, mem);  // ok or corruption
    mem->Unref();
  }
}

TEST_P(DecodeFuzz, RangeTombstoneBlockSurvivesMutations) {
  Random rnd(GetParam() + 4000);
  const std::string base = EncodedRangeTombstoneBlock();
  const Comparator* ucmp = BytewiseComparator();
  for (int trial = 0; trial < 2000; trial++) {
    std::string mutated = base;
    // Truncation models a torn write of the block; byte flips model
    // on-disk corruption under the checksum (the decoder is the last line
    // of defense when the crc32c trailer was itself corrupted to match).
    if (rnd.OneIn(2) && !mutated.empty()) {
      mutated.resize(rnd.Uniform(mutated.size() + 1));
    }
    int flips = static_cast<int>(rnd.Uniform(4));
    for (int f = 0; f < flips && !mutated.empty(); f++) {
      mutated[rnd.Uniform(mutated.size())] ^=
          static_cast<char>(1 + rnd.Uniform(255));
    }
    std::vector<RangeTombstone> decoded;
    Status s = DecodeRangeTombstones(Slice(mutated), &decoded);
    if (!s.ok()) continue;  // clean rejection is the expected outcome
    // A block that still decodes must be semantically valid, and feeding
    // it onward through the fragmenter and a coverage query must hold up.
    for (const RangeTombstone& t : decoded) {
      ASSERT_LT(ucmp->Compare(Slice(t.begin), Slice(t.end)), 0)
          << "decoder accepted an inverted range";
      ASSERT_LE(t.seq, kMaxSequenceNumber)
          << "decoder accepted an out-of-range sequence";
    }
    FragmentedRangeTombstoneList frags;
    frags.Build(ucmp, decoded);
    (void)frags.MaxCoveringSeq("ccc", kMaxSequenceNumber);
    (void)frags.MaxCoveringSeq("", 0);
  }
}

TEST_P(DecodeFuzz, RangeTombstoneFragmenterMatchesBruteForce) {
  // Randomized overlapping tombstone sets must round-trip through the wire
  // format exactly, and the fragmented coverage structure must agree with
  // a brute-force scan of the raw list at every probed (key, snapshot).
  Random rnd(GetParam() + 5000);
  const Comparator* ucmp = BytewiseComparator();
  auto key_at = [](uint32_t i) { return std::string(1, 'a' + i % 16); };
  for (int trial = 0; trial < 200; trial++) {
    std::vector<RangeTombstone> tombstones;
    const int n = 1 + rnd.Uniform(6);
    for (int i = 0; i < n; i++) {
      uint32_t b = rnd.Uniform(14);
      uint32_t e = b + 1 + rnd.Uniform(14 - b);
      tombstones.emplace_back(key_at(b), key_at(e), 1 + rnd.Uniform(100));
    }
    std::string encoded;
    EncodeRangeTombstones(tombstones, &encoded);
    std::vector<RangeTombstone> decoded;
    ASSERT_TRUE(DecodeRangeTombstones(Slice(encoded), &decoded).ok());
    ASSERT_EQ(tombstones.size(), decoded.size());
    for (size_t i = 0; i < decoded.size(); i++) {
      EXPECT_EQ(tombstones[i].begin, decoded[i].begin);
      EXPECT_EQ(tombstones[i].end, decoded[i].end);
      EXPECT_EQ(tombstones[i].seq, decoded[i].seq);
    }
    FragmentedRangeTombstoneList frags;
    frags.Build(ucmp, decoded);
    for (uint32_t k = 0; k < 16; k++) {
      const std::string probe = key_at(k);
      const SequenceNumber snapshot = rnd.OneIn(2) ? kMaxSequenceNumber
                                                   : rnd.Uniform(100);
      SequenceNumber expect = 0;
      for (const RangeTombstone& t : tombstones) {
        if (t.seq <= snapshot && t.seq > expect &&
            ucmp->Compare(Slice(t.begin), Slice(probe)) <= 0 &&
            ucmp->Compare(Slice(probe), Slice(t.end)) < 0) {
          expect = t.seq;
        }
      }
      EXPECT_EQ(expect, frags.MaxCoveringSeq(probe, snapshot))
          << "trial " << trial << " probe " << probe << " snapshot "
          << snapshot;
    }
  }
}

TEST_P(DecodeFuzz, VarintsSurviveGarbage) {
  Random rnd(GetParam() + 3000);
  for (int trial = 0; trial < 5000; trial++) {
    char buf[16];
    size_t len = rnd.Uniform(sizeof(buf) + 1);
    for (size_t i = 0; i < len; i++) {
      buf[i] = static_cast<char>(rnd.Next());
    }
    uint32_t v32;
    uint64_t v64;
    GetVarint32Ptr(buf, buf + len, &v32);
    GetVarint64Ptr(buf, buf + len, &v64);
    Slice in32(buf, len), in64(buf, len), inlp(buf, len);
    GetVarint32(&in32, &v32);
    GetVarint64(&in64, &v64);
    Slice result;
    GetLengthPrefixedSlice(&inlp, &result);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecodeFuzz, ::testing::Values(1, 2, 3));

}  // namespace acheron
