// WAL writer/reader round-trip and corruption-handling tests, adapted to
// exercise block boundaries, fragmentation, and checksum failures.
#include <gtest/gtest.h>

#include <memory>

#include "src/env/env.h"
#include "src/util/coding.h"
#include "src/util/crc32c.h"
#include "src/util/random.h"
#include "src/wal/log_reader.h"
#include "src/wal/log_writer.h"

namespace acheron {
namespace wal {

// Construct a string of the specified length made out of the supplied
// partial string.
static std::string BigString(const std::string& partial_string, size_t n) {
  std::string result;
  while (result.size() < n) {
    result.append(partial_string);
  }
  result.resize(n);
  return result;
}

// Construct a string from a number.
static std::string NumberString(int n) {
  char buf[50];
  std::snprintf(buf, sizeof(buf), "%d.", n);
  return std::string(buf);
}

// Return a skewed potentially long string.
static std::string RandomSkewedString(int i, Random* rnd) {
  return BigString(NumberString(i), rnd->Skewed(17));
}

class LogTest : public ::testing::Test {
 public:
  LogTest()
      : env_(NewMemEnv()),
        reading_(false),
        dest_(nullptr),
        reader_(nullptr),
        writer_(nullptr) {
    EXPECT_TRUE(env_->NewWritableFile("/log", &dest_holder_).ok());
    writer_ = std::make_unique<Writer>(dest_holder_.get());
  }

  void Write(const std::string& msg) {
    ASSERT_TRUE(!reading_) << "Write() after starting to read";
    ASSERT_TRUE(writer_->AddRecord(Slice(msg)).ok());
  }

  size_t WrittenBytes() {
    uint64_t size = 0;
    EXPECT_TRUE(env_->GetFileSize("/log", &size).ok());
    return size;
  }

  std::string Read() {
    if (!reading_) {
      StartReading();
    }
    std::string scratch;
    Slice record;
    if (reader_->ReadRecord(&record, &scratch)) {
      return record.ToString();
    }
    return "EOF";
  }

  void StartReading() {
    reading_ = true;
    // Flush pending writes by destroying the writer (MemEnv keeps data).
    writer_.reset();
    dest_holder_.reset();
    ASSERT_TRUE(env_->NewSequentialFile("/log", &src_holder_).ok());
    reader_ = std::make_unique<Reader>(src_holder_.get(), &report_, true);
  }

  // Corruption helpers: rewrite the backing file with a mutation.
  void SetByte(size_t offset, char new_byte) {
    std::string contents = FileContents();
    contents[offset] = new_byte;
    RewriteFile(contents);
  }

  void ShrinkSize(size_t bytes) {
    std::string contents = FileContents();
    contents.resize(contents.size() - bytes);
    RewriteFile(contents);
  }

  void FixChecksum(int header_offset, int len) {
    std::string contents = FileContents();
    uint32_t crc =
        crc32c::Value(contents.data() + header_offset + 6, 1 + len);
    crc = crc32c::Mask(crc);
    EncodeFixed32(contents.data() + header_offset, crc);
    RewriteFile(contents);
  }

  std::string FileContents() {
    writer_.reset();
    dest_holder_.reset();
    std::string contents;
    EXPECT_TRUE(env_->ReadFileToString("/log", &contents).ok());
    return contents;
  }

  void RewriteFile(const std::string& contents) {
    ASSERT_TRUE(env_->WriteStringToFile(contents, "/log").ok());
  }

  size_t DroppedBytes() const { return report_.dropped_bytes_; }
  std::string ReportMessage() const { return report_.message_; }

 protected:
  class ReportCollector : public Reader::Reporter {
   public:
    ReportCollector() : dropped_bytes_(0) {}
    void Corruption(size_t bytes, const Status& status) override {
      dropped_bytes_ += bytes;
      message_.append(status.ToString());
    }

    size_t dropped_bytes_;
    std::string message_;
  };

  std::unique_ptr<Env> env_;
  ReportCollector report_;
  bool reading_;
  std::unique_ptr<WritableFile> dest_holder_;
  std::unique_ptr<SequentialFile> src_holder_;
  WritableFile* dest_;
  std::unique_ptr<Reader> reader_;
  std::unique_ptr<Writer> writer_;
};

TEST_F(LogTest, Empty) { EXPECT_EQ("EOF", Read()); }

TEST_F(LogTest, ReadWrite) {
  Write("foo");
  Write("bar");
  Write("");
  Write("xxxx");
  EXPECT_EQ("foo", Read());
  EXPECT_EQ("bar", Read());
  EXPECT_EQ("", Read());
  EXPECT_EQ("xxxx", Read());
  EXPECT_EQ("EOF", Read());
  EXPECT_EQ("EOF", Read());  // Make sure reads at eof work
}

TEST_F(LogTest, ManyBlocks) {
  for (int i = 0; i < 100000; i++) {
    Write(NumberString(i));
  }
  for (int i = 0; i < 100000; i++) {
    EXPECT_EQ(NumberString(i), Read());
  }
  EXPECT_EQ("EOF", Read());
}

TEST_F(LogTest, Fragmentation) {
  Write("small");
  Write(BigString("medium", 50000));
  Write(BigString("large", 100000));
  EXPECT_EQ("small", Read());
  EXPECT_EQ(BigString("medium", 50000), Read());
  EXPECT_EQ(BigString("large", 100000), Read());
  EXPECT_EQ("EOF", Read());
}

TEST_F(LogTest, MarginalTrailer) {
  // Make a trailer that is exactly the same length as an empty record.
  const int n = kBlockSize - 2 * kHeaderSize;
  Write(BigString("foo", n));
  EXPECT_EQ(static_cast<size_t>(kBlockSize - kHeaderSize), WrittenBytes());
  Write("");
  Write("bar");
  EXPECT_EQ(BigString("foo", n), Read());
  EXPECT_EQ("", Read());
  EXPECT_EQ("bar", Read());
  EXPECT_EQ("EOF", Read());
}

TEST_F(LogTest, ShortTrailer) {
  const int n = kBlockSize - 2 * kHeaderSize + 4;
  Write(BigString("foo", n));
  EXPECT_EQ(static_cast<size_t>(kBlockSize - kHeaderSize + 4), WrittenBytes());
  Write("");
  Write("bar");
  EXPECT_EQ(BigString("foo", n), Read());
  EXPECT_EQ("", Read());
  EXPECT_EQ("bar", Read());
  EXPECT_EQ("EOF", Read());
}

TEST_F(LogTest, AlignedEof) {
  const int n = kBlockSize - 2 * kHeaderSize + 4;
  Write(BigString("foo", n));
  EXPECT_EQ(static_cast<size_t>(kBlockSize - kHeaderSize + 4), WrittenBytes());
  EXPECT_EQ(BigString("foo", n), Read());
  EXPECT_EQ("EOF", Read());
}

TEST_F(LogTest, RandomRead) {
  const int N = 500;
  Random write_rnd(301);
  for (int i = 0; i < N; i++) {
    Write(RandomSkewedString(i, &write_rnd));
  }
  Random read_rnd(301);
  for (int i = 0; i < N; i++) {
    EXPECT_EQ(RandomSkewedString(i, &read_rnd), Read());
  }
  EXPECT_EQ("EOF", Read());
}

// Tests of all the error paths in log_reader.cc follow:

TEST_F(LogTest, ReadError) {
  Write("foo");
  ShrinkSize(4);  // Corrupt the record by truncation: header is incomplete.
  EXPECT_EQ("EOF", Read());
}

TEST_F(LogTest, BadRecordType) {
  Write("foo");
  // Type is stored in header[6]; also fix the checksum so only the type is
  // "valid" but unknown.
  SetByte(6, 100);
  FixChecksum(0, 3);
  EXPECT_EQ("EOF", Read());
  EXPECT_GT(DroppedBytes(), 0u);
  EXPECT_NE(std::string::npos, ReportMessage().find("unknown record type"));
}

TEST_F(LogTest, TruncatedTrailingRecordIsIgnored) {
  Write("foo");
  ShrinkSize(4);  // Drop all payload as well as a header byte
  EXPECT_EQ("EOF", Read());
  // Truncated last record is ignored, not treated as an error.
  EXPECT_EQ(0u, DroppedBytes());
  EXPECT_EQ("", ReportMessage());
}

TEST_F(LogTest, ChecksumMismatch) {
  Write("foo");
  SetByte(0, 'a');  // corrupt the stored checksum
  EXPECT_EQ("EOF", Read());
  EXPECT_GE(DroppedBytes(), 10u);
  EXPECT_NE(std::string::npos, ReportMessage().find("checksum mismatch"));
}

TEST_F(LogTest, CorruptedMiddleRecordDropsRestOfBlock) {
  Write("first");
  Write("second");
  Write("third");
  // Corrupt one payload byte of "second" (record 2 header starts after
  // record 1's header+payload: 7 + 5 = 12; its payload begins at 19).
  SetByte(19 + 2, 'X');
  EXPECT_EQ("first", Read());
  // A checksum mismatch drops the remainder of the block (the length field
  // itself cannot be trusted), so "third" is sacrificed too.
  EXPECT_EQ("EOF", Read());
  EXPECT_GT(DroppedBytes(), 0u);
  EXPECT_NE(std::string::npos, ReportMessage().find("checksum mismatch"));
}

TEST_F(LogTest, CorruptionInFirstBlockDoesNotAffectLaterBlocks) {
  // Fill block 0 and put more records in block 1; corrupt block 0.
  Write(BigString("a", kBlockSize - kHeaderSize));  // exactly block 0
  Write("block1_record");
  SetByte(10, 'Z');  // corrupt payload of the first record
  EXPECT_EQ("block1_record", Read());
  EXPECT_EQ("EOF", Read());
  EXPECT_GT(DroppedBytes(), 0u);
}

}  // namespace wal
}  // namespace acheron
