// Options sanitization and miscellaneous DB-surface behaviours.
#include <gtest/gtest.h>

#include <memory>

#include "src/env/env.h"
#include "src/lsm/db.h"
#include "src/lsm/db_impl.h"

namespace acheron {

TEST(OptionsTest, SanitizeClampsExtremes) {
  Options wild;
  wild.write_buffer_size = 1;            // absurdly small
  wild.max_file_size = 1;
  wild.block_size = 1;
  wild.size_ratio = 1000;
  wild.num_levels = 99;
  wild.level0_compaction_trigger = 0;
  Options clean = SanitizeOptions("/db", wild);
  EXPECT_GE(clean.write_buffer_size, size_t{4} << 10);
  EXPECT_GE(clean.max_file_size, size_t{16} << 10);
  EXPECT_GE(clean.block_size, size_t{512});
  EXPECT_LE(clean.size_ratio, 64);
  EXPECT_LE(clean.num_levels, kNumLevels);
  EXPECT_GE(clean.level0_compaction_trigger, 1);
  EXPECT_NE(nullptr, clean.comparator);
  EXPECT_NE(nullptr, clean.env);
}

TEST(OptionsTest, DbWorksWithClampedOptions) {
  std::unique_ptr<Env> env(NewMemEnv());
  Options wild;
  wild.env = env.get();
  wild.write_buffer_size = 1;
  wild.size_ratio = 1;
  wild.delete_persistence_threshold = 100;
  DB* db;
  ASSERT_TRUE(DB::Open(wild, "/db", &db).ok());
  for (int i = 0; i < 2000; i++) {
    ASSERT_TRUE(db->Put(WriteOptions(), "k" + std::to_string(i % 50),
                        "v" + std::to_string(i))
                    .ok());
    if (i % 3 == 0) {
      ASSERT_TRUE(db->Delete(WriteOptions(), "k" + std::to_string(i % 50)).ok());
    }
  }
  std::string v;
  Status s = db->Get(ReadOptions(), "k1", &v);
  EXPECT_TRUE(s.ok() || s.IsNotFound());
  delete db;
}

TEST(OptionsTest, LevelSummaryProperty) {
  std::unique_ptr<Env> env(NewMemEnv());
  Options options;
  options.env = env.get();
  options.write_buffer_size = 8 << 10;
  DB* db;
  ASSERT_TRUE(DB::Open(options, "/db", &db).ok());
  for (int i = 0; i < 500; i++) {
    ASSERT_TRUE(
        db->Put(WriteOptions(), "k" + std::to_string(i), std::string(100, 'x'))
            .ok());
  }
  ASSERT_TRUE(db->FlushMemTable().ok());
  std::string summary;
  ASSERT_TRUE(db->GetProperty("acheron.level-summary", &summary));
  // At least one populated level line of "level files bytes tombstones".
  int level, files;
  long long bytes;
  unsigned long long tombstones;
  ASSERT_EQ(4, std::sscanf(summary.c_str(), "%d %d %lld %llu", &level, &files,
                           &bytes, &tombstones));
  EXPECT_GE(files, 1);
  EXPECT_GT(bytes, 0);
  delete db;
}

TEST(OptionsTest, CustomComparatorOrdersIteration) {
  // Reverse-bytewise comparator: iteration comes out descending.
  class ReverseComparator : public Comparator {
   public:
    int Compare(const Slice& a, const Slice& b) const override {
      return -a.compare(b);
    }
    const char* Name() const override { return "test.ReverseComparator"; }
    void FindShortestSeparator(std::string*, const Slice&) const override {}
    void FindShortSuccessor(std::string*) const override {}
  };
  static ReverseComparator reverse_cmp;

  std::unique_ptr<Env> env(NewMemEnv());
  Options options;
  options.env = env.get();
  options.comparator = &reverse_cmp;
  DB* db;
  ASSERT_TRUE(DB::Open(options, "/db", &db).ok());
  ASSERT_TRUE(db->Put(WriteOptions(), "a", "1").ok());
  ASSERT_TRUE(db->Put(WriteOptions(), "b", "2").ok());
  ASSERT_TRUE(db->Put(WriteOptions(), "c", "3").ok());
  ASSERT_TRUE(db->FlushMemTable().ok());

  {
    std::unique_ptr<Iterator> it(db->NewIterator(ReadOptions()));
    std::string order;
    for (it->SeekToFirst(); it->Valid(); it->Next()) {
      order += it->key().ToString();
    }
    EXPECT_EQ("cba", order);
  }  // iterators must be released before the DB

  // Reopening with a different comparator is refused.
  delete db;
  options.comparator = nullptr;  // BytewiseComparator
  Status s = DB::Open(options, "/db", &db);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(std::string::npos,
            s.ToString().find("does not match existing comparator"));
}

}  // namespace acheron
