// Tests for Slice, Status, Arena, Random, Comparator, Histogram, Clock.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <thread>
#include <vector>

#include "src/util/arena.h"
#include "src/util/clock.h"
#include "src/util/comparator.h"
#include "src/util/histogram.h"
#include "src/util/random.h"
#include "src/util/slice.h"
#include "src/util/status.h"

namespace acheron {

TEST(Slice, Basics) {
  Slice empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(0u, empty.size());

  Slice s("hello");
  EXPECT_EQ(5u, s.size());
  EXPECT_EQ('h', s[0]);
  EXPECT_EQ("hello", s.ToString());
  EXPECT_TRUE(s.starts_with("hel"));
  EXPECT_FALSE(s.starts_with("help"));

  s.remove_prefix(2);
  EXPECT_EQ("llo", s.ToString());
  s.clear();
  EXPECT_TRUE(s.empty());
}

TEST(Slice, Compare) {
  EXPECT_LT(Slice("a").compare(Slice("b")), 0);
  EXPECT_GT(Slice("b").compare(Slice("a")), 0);
  EXPECT_EQ(Slice("abc").compare(Slice("abc")), 0);
  EXPECT_LT(Slice("abc").compare(Slice("abcd")), 0);
  EXPECT_GT(Slice("abcd").compare(Slice("abc")), 0);
  EXPECT_TRUE(Slice("x") == Slice("x"));
  EXPECT_TRUE(Slice("x") != Slice("y"));
}

TEST(Slice, EmbeddedNul) {
  std::string with_nul("a\0b", 3);
  Slice s(with_nul);
  EXPECT_EQ(3u, s.size());
  EXPECT_EQ(with_nul, s.ToString());
}

TEST(Status, OkAndErrors) {
  Status ok;
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ("OK", ok.ToString());

  Status nf = Status::NotFound("key", "missing");
  EXPECT_FALSE(nf.ok());
  EXPECT_TRUE(nf.IsNotFound());
  EXPECT_EQ("NotFound: key: missing", nf.ToString());

  Status corruption = Status::Corruption("bad block");
  EXPECT_TRUE(corruption.IsCorruption());
  Status io = Status::IOError("disk");
  EXPECT_TRUE(io.IsIOError());
  Status ia = Status::InvalidArgument("arg");
  EXPECT_TRUE(ia.IsInvalidArgument());
  Status ns = Status::NotSupported("feature");
  EXPECT_TRUE(ns.IsNotSupported());
  Status busy = Status::Busy("compacting");
  EXPECT_TRUE(busy.IsBusy());
}

TEST(Status, CopySemantics) {
  Status a = Status::IOError("original");
  Status b = a;
  EXPECT_EQ(a.ToString(), b.ToString());
  Status c;
  c = a;
  EXPECT_EQ(a.ToString(), c.ToString());
}

TEST(Arena, Empty) { Arena arena; }

TEST(Arena, Simple) {
  std::vector<std::pair<size_t, char*>> allocated;
  Arena arena;
  const int N = 100000;
  size_t bytes = 0;
  Random rnd(301);
  for (int i = 0; i < N; i++) {
    size_t s;
    if (i % (N / 10) == 0) {
      s = i;
    } else {
      s = rnd.OneIn(4000)
              ? rnd.Uniform(6000)
              : (rnd.OneIn(10) ? rnd.Uniform(100) : rnd.Uniform(20));
    }
    if (s == 0) {
      // Our arena disallows size 0 allocations.
      s = 1;
    }
    char* r;
    if (rnd.OneIn(10)) {
      r = arena.AllocateAligned(s);
    } else {
      r = arena.Allocate(s);
    }

    for (size_t b = 0; b < s; b++) {
      // Fill the "i"th allocation with a known bit pattern.
      r[b] = i % 256;
    }
    bytes += s;
    allocated.push_back(std::make_pair(s, r));
    EXPECT_GE(arena.MemoryUsage(), bytes);
    if (i > N / 10) {
      EXPECT_LE(arena.MemoryUsage(), bytes * 1.10);
    }
  }
  for (size_t i = 0; i < allocated.size(); i++) {
    size_t num_bytes = allocated[i].first;
    const char* p = allocated[i].second;
    for (size_t b = 0; b < num_bytes; b++) {
      // Check the "i"th allocation for the known bit pattern.
      EXPECT_EQ(static_cast<int>(i % 256), p[b] & 0xff);
    }
  }
}

TEST(Arena, AlignedAllocationsAreAligned) {
  Arena arena;
  for (int i = 1; i < 200; i++) {
    char* p = arena.AllocateAligned(i);
    EXPECT_EQ(0u, reinterpret_cast<uintptr_t>(p) % 8);
    // Interleave unaligned allocations to perturb the pointer.
    arena.Allocate(1 + (i % 3));
  }
}

TEST(Random, Determinism) {
  Random a(42), b(42);
  for (int i = 0; i < 1000; i++) {
    EXPECT_EQ(a.Next64(), b.Next64());
  }
}

TEST(Random, UniformInRange) {
  Random rnd(7);
  for (int i = 0; i < 10000; i++) {
    EXPECT_LT(rnd.Uniform(17), 17u);
  }
}

TEST(Random, NextDoubleInUnitInterval) {
  Random rnd(99);
  for (int i = 0; i < 10000; i++) {
    double d = rnd.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Random, RoughUniformity) {
  Random rnd(1234);
  int buckets[10] = {0};
  const int kTrials = 100000;
  for (int i = 0; i < kTrials; i++) {
    buckets[rnd.Uniform(10)]++;
  }
  for (int b = 0; b < 10; b++) {
    EXPECT_NEAR(buckets[b], kTrials / 10, kTrials / 100);
  }
}

TEST(Comparator, Bytewise) {
  const Comparator* cmp = BytewiseComparator();
  EXPECT_STREQ("acheron.BytewiseComparator", cmp->Name());
  EXPECT_LT(cmp->Compare("abc", "abd"), 0);
  EXPECT_EQ(cmp->Compare("abc", "abc"), 0);
  EXPECT_GT(cmp->Compare("abd", "abc"), 0);
}

TEST(Comparator, FindShortestSeparator) {
  const Comparator* cmp = BytewiseComparator();
  std::string start = "abcdefghij";
  cmp->FindShortestSeparator(&start, "abzzzz");
  EXPECT_LT(cmp->Compare(start, "abzzzz"), 0);
  EXPECT_LE(cmp->Compare("abcdefghij", start), 0);
  EXPECT_LE(start.size(), 10u);

  // Prefix case: must not shorten.
  start = "abc";
  cmp->FindShortestSeparator(&start, "abcdef");
  EXPECT_EQ("abc", start);
}

TEST(Comparator, FindShortSuccessor) {
  const Comparator* cmp = BytewiseComparator();
  std::string key = "abc";
  cmp->FindShortSuccessor(&key);
  EXPECT_GE(cmp->Compare(key, "abc"), 0);
  EXPECT_EQ(1u, key.size());

  key = std::string(3, '\xff');
  cmp->FindShortSuccessor(&key);
  EXPECT_EQ(std::string(3, '\xff'), key);  // all-0xff left unchanged
}

TEST(Histogram, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(0u, h.Count());
  EXPECT_EQ(0, h.Average());
  EXPECT_EQ(0, h.Percentile(99));
}

TEST(Histogram, SingleValue) {
  Histogram h;
  h.Add(42);
  EXPECT_EQ(1u, h.Count());
  EXPECT_DOUBLE_EQ(42.0, h.Average());
  EXPECT_EQ(42, h.Min());
  EXPECT_EQ(42, h.Max());
  EXPECT_NEAR(42, h.Median(), 1.0);
}

TEST(Histogram, PercentilesOrdered) {
  Histogram h;
  Random rnd(5);
  for (int i = 0; i < 10000; i++) {
    h.Add(rnd.Uniform(100000));
  }
  double p50 = h.Percentile(50);
  double p90 = h.Percentile(90);
  double p99 = h.Percentile(99);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_LE(p99, h.Max());
  EXPECT_GE(p50, h.Min());
  // Uniform distribution: p50 near 50000 with generous slack for bucketing.
  EXPECT_NEAR(50000, p50, 10000);
}

TEST(Histogram, MergeAddsCounts) {
  Histogram a, b;
  for (int i = 0; i < 100; i++) a.Add(i);
  for (int i = 100; i < 200; i++) b.Add(i);
  a.Merge(b);
  EXPECT_EQ(200u, a.Count());
  EXPECT_EQ(0, a.Min());
  EXPECT_EQ(199, a.Max());
  EXPECT_NEAR(99.5, a.Average(), 0.01);
}

TEST(LogicalClock, TickAndAdvance) {
  LogicalClock clock;
  EXPECT_EQ(0u, clock.Now());
  EXPECT_EQ(1u, clock.Tick());
  EXPECT_EQ(6u, clock.Tick(5));
  clock.AdvanceTo(3);  // no-op, already past
  EXPECT_EQ(6u, clock.Now());
  clock.AdvanceTo(100);
  EXPECT_EQ(100u, clock.Now());
}

TEST(LogicalClock, ConcurrentTicks) {
  LogicalClock clock;
  const int kThreads = 8, kTicksPer = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&clock] {
      for (int i = 0; i < kTicksPer; i++) clock.Tick();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(static_cast<uint64_t>(kThreads) * kTicksPer, clock.Now());
}

}  // namespace acheron
