// Differential test: drive the DB and a trivially-correct in-memory model
// (std::map plus a deleted-key set, with range deletes erasing whole map
// intervals) through the same randomized op stream and require identical
// visible state at every checkpoint. The stream mixes puts, point and RANGE
// deletes, overwrites, point reads (single and MultiGet batches),
// full scans, explicit flushes and
// compactions, and full close/reopen cycles; the PRNG is seeded with a
// fixed constant so a failure reproduces exactly, and the seed is printed
// in every assertion for when someone changes it.
//
// Key-value separation is ON with value lengths randomized across the
// threshold: roughly half the puts route their value through the value log
// and half stay inline, so every read path (Get, MultiGet, scans), every
// overwrite/delete, and every reopen continuously crosses the
// pointer/inline boundary while the value-log GC churns underneath.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <random>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "src/env/env.h"
#include "src/lsm/db.h"

namespace acheron {
namespace {

constexpr uint32_t kSeed = 0xac4e207;
constexpr int kSteps = 10000;
constexpr int kKeySpace = 400;  // small enough to force overwrite/delete churn
// Separation threshold; random value lengths are drawn from
// [1, 2 * kSepThreshold], so puts land on both sides of it.
constexpr size_t kSepThreshold = 64;

class DifferentialTest : public ::testing::Test {
 protected:
  DifferentialTest() : env_(NewMemEnv()) {}
  ~DifferentialTest() override { delete db_; }

  Options DbOptions() const {
    Options o;
    o.env = env_.get();
    o.create_if_missing = true;
    o.write_buffer_size = 16 << 10;  // small: steady flush/compaction churn
    o.background_compactions = background_;
    o.value_separation_threshold = kSepThreshold;
    o.vlog_segment_size = 64 << 10;  // small segments: rotation + GC churn
    return o;
  }

  void Open() {
    ASSERT_TRUE(DB::Open(DbOptions(), "/diffdb", &db_).ok()) << Ctx();
  }

  void Reopen() {
    delete db_;
    db_ = nullptr;
    Open();
  }

  std::string Ctx() const {
    return "[differential seed=" + std::to_string(kSeed) +
           " step=" + std::to_string(step_) + "]";
  }

  static std::string KeyAt(int idx) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "key%06d", idx);
    return std::string(buf);
  }

  std::string Key(std::mt19937& rng) {
    return KeyAt(static_cast<int>(rng() % kKeySpace));
  }

  // Point-read every key the model knows about (live or deleted) and
  // compare. Deleted keys must be NotFound -- the model's tombstone view.
  void CheckPointReads() {
    for (const auto& kv : model_) {
      std::string v;
      Status s = db_->Get(ReadOptions(), kv.first, &v);
      ASSERT_TRUE(s.ok()) << Ctx() << " Get(" << kv.first
                          << "): " << s.ToString();
      ASSERT_EQ(kv.second, v) << Ctx() << " Get(" << kv.first << ")";
    }
    for (const std::string& k : deleted_) {
      if (model_.count(k)) continue;  // re-put since the delete
      std::string v;
      Status s = db_->Get(ReadOptions(), k, &v);
      ASSERT_TRUE(s.IsNotFound())
          << Ctx() << " deleted key " << k << " visible: "
          << (s.ok() ? "value " + v : s.ToString());
    }
  }

  // Full forward scan must reproduce the model exactly: same keys, same
  // values, sorted order, no tombstone leak-through.
  void CheckScan() {
    std::unique_ptr<Iterator> it(db_->NewIterator(ReadOptions()));
    auto expect = model_.begin();
    for (it->SeekToFirst(); it->Valid(); it->Next()) {
      ASSERT_NE(expect, model_.end())
          << Ctx() << " scan found extra key " << it->key().ToString();
      ASSERT_EQ(expect->first, it->key().ToString()) << Ctx();
      ASSERT_EQ(expect->second, it->value().ToString()) << Ctx();
      ++expect;
    }
    ASSERT_TRUE(it->status().ok()) << Ctx() << ": " << it->status().ToString();
    ASSERT_EQ(expect, model_.end())
        << Ctx() << " scan ended early; missing key " << expect->first;
  }

  std::unique_ptr<Env> env_;
  DB* db_ = nullptr;
  bool background_ = false;
  std::map<std::string, std::string> model_;
  std::set<std::string> deleted_;  // every key ever deleted
  int step_ = 0;
};

TEST_F(DifferentialTest, DbMatchesModelOverRandomHistory) {
  for (bool background : {false, true}) {
    background_ = background;
    delete db_;
    db_ = nullptr;
    env_.reset(NewMemEnv());
    model_.clear();
    deleted_.clear();
    Open();

    std::mt19937 rng(kSeed + (background ? 1 : 0));
    for (step_ = 0; step_ < kSteps; step_++) {
      const uint32_t roll = rng() % 1000;
      if (roll < 550) {
        // Put (overwrites included by construction of the small key space).
        // The length straddles the separation threshold, so this randomly
        // alternates inline values and vLog pointers on the same keys.
        std::string k = Key(rng);
        std::string v = "v" + std::to_string(step_) + "-" +
                        std::string(1 + rng() % (2 * kSepThreshold),
                                    'a' + rng() % 26);
        ASSERT_TRUE(db_->Put(WriteOptions(), k, v).ok()) << Ctx();
        model_[k] = v;
      } else if (roll < 750) {
        // Delete (often of a key that exists; sometimes a no-op delete).
        std::string k = Key(rng);
        ASSERT_TRUE(db_->Delete(WriteOptions(), k).ok()) << Ctx();
        model_.erase(k);
        deleted_.insert(k);
      } else if (roll < 800) {
        // Range delete over [start, start+span): the model erases the whole
        // interval and remembers every covered index as deleted, so later
        // checks also prove that a durable range delete never resurrects.
        const int start = static_cast<int>(rng() % kKeySpace);
        const int span = 1 + static_cast<int>(rng() % 8);
        const std::string b = KeyAt(start);
        const std::string e = KeyAt(start + span);
        ASSERT_TRUE(db_->DeleteRange(WriteOptions(), b, e).ok()) << Ctx();
        model_.erase(model_.lower_bound(b), model_.lower_bound(e));
        for (int i = start; i < start + span && i < kKeySpace; i++) {
          deleted_.insert(KeyAt(i));
        }
      } else if (roll < 875) {
        // Point-read a random key and compare against the model.
        std::string k = Key(rng);
        std::string v;
        Status s = db_->Get(ReadOptions(), k, &v);
        auto it = model_.find(k);
        if (it == model_.end()) {
          ASSERT_TRUE(s.IsNotFound()) << Ctx() << " Get(" << k << ")";
        } else {
          ASSERT_TRUE(s.ok()) << Ctx() << " Get(" << k << ")";
          ASSERT_EQ(it->second, v) << Ctx() << " Get(" << k << ")";
        }
      } else if (roll < 950) {
        // Batched point reads: MultiGet must agree with the model per key,
        // under one snapshot, duplicates included.
        const size_t n = 1 + rng() % 8;
        std::vector<std::string> keys(n);
        std::vector<Slice> slices(n);
        for (size_t i = 0; i < n; i++) {
          keys[i] = Key(rng);
          slices[i] = keys[i];
        }
        std::vector<std::string> values;
        std::vector<Status> statuses = db_->MultiGet(
            ReadOptions(), std::span<const Slice>(slices.data(), n), &values);
        ASSERT_EQ(n, statuses.size()) << Ctx();
        ASSERT_EQ(n, values.size()) << Ctx();
        for (size_t i = 0; i < n; i++) {
          auto it = model_.find(keys[i]);
          if (it == model_.end()) {
            ASSERT_TRUE(statuses[i].IsNotFound())
                << Ctx() << " MultiGet[" << i << "](" << keys[i] << "): "
                << statuses[i].ToString();
          } else {
            ASSERT_TRUE(statuses[i].ok())
                << Ctx() << " MultiGet[" << i << "](" << keys[i] << "): "
                << statuses[i].ToString();
            ASSERT_EQ(it->second, values[i])
                << Ctx() << " MultiGet[" << i << "](" << keys[i] << ")";
          }
        }
      } else if (roll < 970) {
        ASSERT_TRUE(db_->FlushMemTable().ok()) << Ctx();
      } else if (roll < 985) {
        db_->CompactRange(nullptr, nullptr);
      } else {
        // Close and reopen: recovery must reconstruct the same state.
        ASSERT_NO_FATAL_FAILURE(Reopen());
      }

      if (step_ % 1000 == 999) {
        ASSERT_NO_FATAL_FAILURE(CheckScan());
        ASSERT_NO_FATAL_FAILURE(CheckPointReads());
      }
    }

    // Final sweep: as-is, after reopen, and after a full compaction.
    ASSERT_NO_FATAL_FAILURE(CheckScan());
    ASSERT_NO_FATAL_FAILURE(CheckPointReads());
    ASSERT_NO_FATAL_FAILURE(Reopen());
    ASSERT_NO_FATAL_FAILURE(CheckScan());
    ASSERT_NO_FATAL_FAILURE(CheckPointReads());
    db_->CompactRange(nullptr, nullptr);
    ASSERT_TRUE(db_->WaitForCompactions().ok()) << Ctx();
    ASSERT_NO_FATAL_FAILURE(CheckScan());
    ASSERT_NO_FATAL_FAILURE(CheckPointReads());
  }
}

}  // namespace
}  // namespace acheron
