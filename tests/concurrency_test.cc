// Concurrency: readers (Gets, iterators, snapshots) race a writer thread.
// The engine serializes writers behind the DB mutex; readers pin state and
// proceed outside it. These tests verify absence of crashes/corruption and
// basic read-your-writes visibility under contention.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "src/env/env.h"
#include "src/lsm/db.h"
#include "src/util/random.h"

namespace acheron {

class ConcurrencyTest : public ::testing::Test {
 protected:
  ConcurrencyTest() : env_(NewMemEnv()), db_(nullptr) {
    options_.env = env_.get();
    options_.write_buffer_size = 16 << 10;
    options_.delete_persistence_threshold = 20000;
    EXPECT_TRUE(DB::Open(options_, "/db", &db_).ok());
  }
  ~ConcurrencyTest() override { delete db_; }

  static std::string Key(uint64_t i) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "k%06llu",
                  static_cast<unsigned long long>(i));
    return buf;
  }

  std::unique_ptr<Env> env_;
  Options options_;
  DB* db_;
};

TEST_F(ConcurrencyTest, ReadersDuringWrites) {
  std::atomic<bool> done{false};
  std::atomic<uint64_t> read_errors{0};

  // Values encode the key so readers can verify integrity whenever a key is
  // found: value must be "val_<key>_<anything>".
  std::thread writer([&] {
    Random rnd(1);
    for (int i = 0; i < 30000; i++) {
      uint64_t k = rnd.Uniform(2000);
      if (rnd.Uniform(10) < 8) {
        ASSERT_TRUE(db_->Put(WriteOptions(), Key(k),
                             "val_" + Key(k) + "_" + std::to_string(i))
                        .ok());
      } else {
        ASSERT_TRUE(db_->Delete(WriteOptions(), Key(k)).ok());
      }
    }
    done.store(true);
  });

  std::vector<std::thread> readers;
  for (int t = 0; t < 4; t++) {
    readers.emplace_back([&, t] {
      Random rnd(100 + t);
      std::string value;
      while (!done.load()) {
        uint64_t k = rnd.Uniform(2000);
        Status s = db_->Get(ReadOptions(), Key(k), &value);
        if (s.ok()) {
          if (value.rfind("val_" + Key(k) + "_", 0) != 0) {
            read_errors.fetch_add(1);
          }
        } else if (!s.IsNotFound()) {
          read_errors.fetch_add(1);
        }
      }
    });
  }

  std::thread scanner([&] {
    while (!done.load()) {
      std::unique_ptr<Iterator> it(db_->NewIterator(ReadOptions()));
      std::string prev;
      for (it->SeekToFirst(); it->Valid(); it->Next()) {
        std::string key = it->key().ToString();
        if (!prev.empty() && key <= prev) {
          read_errors.fetch_add(1);  // ordering violation
        }
        prev = key;
      }
      if (!it->status().ok()) read_errors.fetch_add(1);
    }
  });

  writer.join();
  for (auto& r : readers) r.join();
  scanner.join();
  EXPECT_EQ(0u, read_errors.load());
}

TEST_F(ConcurrencyTest, ConcurrentWriters) {
  // Multiple writer threads serialize correctly: each writes a disjoint key
  // range; all writes must be present at the end.
  const int kThreads = 4, kPerThread = 5000;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; t++) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; i++) {
        ASSERT_TRUE(db_->Put(WriteOptions(),
                             Key(t * 1000000 + i),
                             std::to_string(t) + ":" + std::to_string(i))
                        .ok());
      }
    });
  }
  for (auto& w : writers) w.join();

  std::string value;
  Random rnd(7);
  for (int probe = 0; probe < 2000; probe++) {
    int t = static_cast<int>(rnd.Uniform(kThreads));
    int i = static_cast<int>(rnd.Uniform(kPerThread));
    ASSERT_TRUE(db_->Get(ReadOptions(), Key(t * 1000000 + i), &value).ok());
    EXPECT_EQ(std::to_string(t) + ":" + std::to_string(i), value);
  }
}

TEST_F(ConcurrencyTest, SnapshotsUnderConcurrentChurn) {
  for (int i = 0; i < 500; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), Key(i), "original").ok());
  }
  const Snapshot* snap = db_->GetSnapshot();

  std::atomic<bool> done{false};
  std::thread churn([&] {
    Random rnd(3);
    for (int i = 0; i < 20000; i++) {
      uint64_t k = rnd.Uniform(500);
      if (rnd.OneIn(2)) {
        EXPECT_TRUE(db_->Put(WriteOptions(), Key(k), "mutated").ok());
      } else {
        EXPECT_TRUE(db_->Delete(WriteOptions(), Key(k)).ok());
      }
    }
    done.store(true);
  });

  ReadOptions ropts;
  ropts.snapshot = snap;
  std::string value;
  Random rnd(4);
  uint64_t violations = 0;
  while (!done.load()) {
    uint64_t k = rnd.Uniform(500);
    Status s = db_->Get(ropts, Key(k), &value);
    if (!s.ok() || value != "original") violations++;
  }
  churn.join();
  EXPECT_EQ(0u, violations);
  db_->ReleaseSnapshot(snap);
}

// --------------------------------------------------------------------------
// Background-compaction pipeline. These tests open their own DB so they can
// set Options::background_compactions explicitly.
// --------------------------------------------------------------------------

class BackgroundConcurrencyTest : public ::testing::Test {
 protected:
  static std::string Key(uint64_t i) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "k%06llu",
                  static_cast<unsigned long long>(i));
    return buf;
  }

  // A fresh DB in a fresh mem env; |background| selects the pipeline mode.
  struct TestDB {
    explicit TestDB(bool background, uint64_t d_th = 0) : env(NewMemEnv()) {
      options.env = env.get();
      options.write_buffer_size = 16 << 10;
      options.background_compactions = background;
      options.delete_persistence_threshold = d_th;
      DB* raw = nullptr;
      EXPECT_TRUE(DB::Open(options, "/db", &raw).ok());
      db.reset(raw);
    }
    std::unique_ptr<Env> env;
    Options options;
    std::unique_ptr<DB> db;
  };
};

TEST_F(BackgroundConcurrencyTest, WritersAndReadersUnderBackground) {
  TestDB t(/*background=*/true);
  const int kWriters = 3, kReaders = 2, kPerThread = 6000;
  std::atomic<int> writers_done{0};
  std::atomic<uint64_t> read_errors{0};

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; w++) {
    threads.emplace_back([&, w] {
      for (int i = 0; i < kPerThread; i++) {
        ASSERT_TRUE(t.db->Put(WriteOptions(), Key(w * 1000000 + i),
                              std::to_string(w) + ":" + std::to_string(i))
                        .ok());
      }
      writers_done.fetch_add(1);
    });
  }
  for (int r = 0; r < kReaders; r++) {
    threads.emplace_back([&, r] {
      Random rnd(50 + r);
      std::string value;
      while (writers_done.load() < kWriters) {
        int w = static_cast<int>(rnd.Uniform(kWriters));
        int i = static_cast<int>(rnd.Uniform(kPerThread));
        Status s = t.db->Get(ReadOptions(), Key(w * 1000000 + i), &value);
        if (s.ok()) {
          if (value != std::to_string(w) + ":" + std::to_string(i)) {
            read_errors.fetch_add(1);
          }
        } else if (!s.IsNotFound()) {
          read_errors.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(0u, read_errors.load());

  ASSERT_TRUE(t.db->WaitForCompactions().ok());
  std::string value;
  Random rnd(9);
  for (int probe = 0; probe < 2000; probe++) {
    int w = static_cast<int>(rnd.Uniform(kWriters));
    int i = static_cast<int>(rnd.Uniform(kPerThread));
    ASSERT_TRUE(t.db->Get(ReadOptions(), Key(w * 1000000 + i), &value).ok());
    EXPECT_EQ(std::to_string(w) + ":" + std::to_string(i), value);
  }
  // The load was large enough that flushes really did run in the background.
  EXPECT_GT(t.db->GetStats().background_jobs_scheduled, 0u);
}

TEST_F(BackgroundConcurrencyTest, WaitForCompactionsQuiesces) {
  TestDB t(/*background=*/true);
  for (int i = 0; i < 20000; i++) {
    ASSERT_TRUE(t.db->Put(WriteOptions(), Key(i % 3000), "v" + Key(i)).ok());
  }
  ASSERT_TRUE(t.db->WaitForCompactions().ok());

  // Quiescent means: no immutable memtable, no pending compaction work.
  // Observable: L0 is below the compaction trigger and a second wait is a
  // no-op (engine counters do not move).
  std::string l0;
  ASSERT_TRUE(t.db->GetProperty("acheron.num-files-at-level0", &l0));
  EXPECT_LT(std::stoi(l0), t.options.level0_compaction_trigger);
  const InternalStats before = t.db->GetStats();
  ASSERT_TRUE(t.db->WaitForCompactions().ok());
  const InternalStats after = t.db->GetStats();
  EXPECT_EQ(before.flush_count, after.flush_count);
  EXPECT_EQ(before.compaction_count, after.compaction_count);
}

TEST_F(BackgroundConcurrencyTest, DeleteBoundsIdenticalAcrossModes) {
  // The pipeline replays the synchronous compaction schedule: a
  // single-threaded workload must leave an identical tree -- same level
  // file counts, same live tombstones, same oldest tombstone age -- in
  // both modes. This is the regression gate for FADE's D_th bound under
  // background execution.
  auto run = [](bool background) {
    TestDB t(background, /*d_th=*/8000);
    Random rnd(11);
    for (int i = 0; i < 25000; i++) {
      uint64_t k = rnd.Uniform(2500);
      if (rnd.Uniform(10) < 7) {
        EXPECT_TRUE(
            t.db->Put(WriteOptions(), Key(k), "v" + std::to_string(i)).ok());
      } else {
        EXPECT_TRUE(t.db->Delete(WriteOptions(), Key(k)).ok());
      }
    }
    EXPECT_TRUE(t.db->WaitForCompactions().ok());
    std::string summary, tombstones, age;
    EXPECT_TRUE(t.db->GetProperty("acheron.level-summary", &summary));
    EXPECT_TRUE(t.db->GetProperty("acheron.total-tombstones", &tombstones));
    EXPECT_TRUE(t.db->GetProperty("acheron.max-tombstone-age", &age));
    return summary + "|ts=" + tombstones + "|age=" + age;
  };
  EXPECT_EQ(run(false), run(true));
}

TEST_F(BackgroundConcurrencyTest, GroupCommitBatchesWalSyncs) {
  TestDB t(/*background=*/true);
  const int kWriters = 4, kPerThread = 4000;
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; w++) {
    writers.emplace_back([&, w] {
      WriteOptions wo;
      wo.sync = true;  // every *group* costs one WAL fsync
      for (int i = 0; i < kPerThread; i++) {
        ASSERT_TRUE(t.db->Put(wo, Key(w * 1000000 + i), "v").ok());
      }
    });
  }
  for (auto& w : writers) w.join();

  const InternalStats stats = t.db->GetStats();
  const uint64_t total = static_cast<uint64_t>(kWriters) * kPerThread;
  // Some writes must have ridden a leader's group, and every grouped write
  // saves a sync: strictly fewer fsyncs than logical writes.
  EXPECT_GT(stats.writes_grouped, 0u);
  EXPECT_GT(stats.group_commits, 0u);
  EXPECT_LT(stats.wal_syncs, total);

  // Grouping must not lose writes.
  std::string value;
  Random rnd(13);
  for (int probe = 0; probe < 1000; probe++) {
    int w = static_cast<int>(rnd.Uniform(kWriters));
    int i = static_cast<int>(rnd.Uniform(kPerThread));
    ASSERT_TRUE(t.db->Get(ReadOptions(), Key(w * 1000000 + i), &value).ok());
  }
}

}  // namespace acheron
