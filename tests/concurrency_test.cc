// Concurrency: readers (Gets, iterators, snapshots) race a writer thread.
// The engine serializes writers behind the DB mutex; readers pin state and
// proceed outside it. These tests verify absence of crashes/corruption and
// basic read-your-writes visibility under contention.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "src/env/env.h"
#include "src/lsm/db.h"
#include "src/util/random.h"

namespace acheron {

class ConcurrencyTest : public ::testing::Test {
 protected:
  ConcurrencyTest() : env_(NewMemEnv()), db_(nullptr) {
    options_.env = env_.get();
    options_.write_buffer_size = 16 << 10;
    options_.delete_persistence_threshold = 20000;
    EXPECT_TRUE(DB::Open(options_, "/db", &db_).ok());
  }
  ~ConcurrencyTest() override { delete db_; }

  static std::string Key(uint64_t i) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "k%06llu",
                  static_cast<unsigned long long>(i));
    return buf;
  }

  std::unique_ptr<Env> env_;
  Options options_;
  DB* db_;
};

TEST_F(ConcurrencyTest, ReadersDuringWrites) {
  std::atomic<bool> done{false};
  std::atomic<uint64_t> read_errors{0};

  // Values encode the key so readers can verify integrity whenever a key is
  // found: value must be "val_<key>_<anything>".
  std::thread writer([&] {
    Random rnd(1);
    for (int i = 0; i < 30000; i++) {
      uint64_t k = rnd.Uniform(2000);
      if (rnd.Uniform(10) < 8) {
        ASSERT_TRUE(db_->Put(WriteOptions(), Key(k),
                             "val_" + Key(k) + "_" + std::to_string(i))
                        .ok());
      } else {
        ASSERT_TRUE(db_->Delete(WriteOptions(), Key(k)).ok());
      }
    }
    done.store(true);
  });

  std::vector<std::thread> readers;
  for (int t = 0; t < 4; t++) {
    readers.emplace_back([&, t] {
      Random rnd(100 + t);
      std::string value;
      while (!done.load()) {
        uint64_t k = rnd.Uniform(2000);
        Status s = db_->Get(ReadOptions(), Key(k), &value);
        if (s.ok()) {
          if (value.rfind("val_" + Key(k) + "_", 0) != 0) {
            read_errors.fetch_add(1);
          }
        } else if (!s.IsNotFound()) {
          read_errors.fetch_add(1);
        }
      }
    });
  }

  std::thread scanner([&] {
    while (!done.load()) {
      std::unique_ptr<Iterator> it(db_->NewIterator(ReadOptions()));
      std::string prev;
      for (it->SeekToFirst(); it->Valid(); it->Next()) {
        std::string key = it->key().ToString();
        if (!prev.empty() && key <= prev) {
          read_errors.fetch_add(1);  // ordering violation
        }
        prev = key;
      }
      if (!it->status().ok()) read_errors.fetch_add(1);
    }
  });

  writer.join();
  for (auto& r : readers) r.join();
  scanner.join();
  EXPECT_EQ(0u, read_errors.load());
}

TEST_F(ConcurrencyTest, ConcurrentWriters) {
  // Multiple writer threads serialize correctly: each writes a disjoint key
  // range; all writes must be present at the end.
  const int kThreads = 4, kPerThread = 5000;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; t++) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; i++) {
        ASSERT_TRUE(db_->Put(WriteOptions(),
                             Key(t * 1000000 + i),
                             std::to_string(t) + ":" + std::to_string(i))
                        .ok());
      }
    });
  }
  for (auto& w : writers) w.join();

  std::string value;
  Random rnd(7);
  for (int probe = 0; probe < 2000; probe++) {
    int t = static_cast<int>(rnd.Uniform(kThreads));
    int i = static_cast<int>(rnd.Uniform(kPerThread));
    ASSERT_TRUE(db_->Get(ReadOptions(), Key(t * 1000000 + i), &value).ok());
    EXPECT_EQ(std::to_string(t) + ":" + std::to_string(i), value);
  }
}

TEST_F(ConcurrencyTest, SnapshotsUnderConcurrentChurn) {
  for (int i = 0; i < 500; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), Key(i), "original").ok());
  }
  const Snapshot* snap = db_->GetSnapshot();

  std::atomic<bool> done{false};
  std::thread churn([&] {
    Random rnd(3);
    for (int i = 0; i < 20000; i++) {
      uint64_t k = rnd.Uniform(500);
      if (rnd.OneIn(2)) {
        EXPECT_TRUE(db_->Put(WriteOptions(), Key(k), "mutated").ok());
      } else {
        EXPECT_TRUE(db_->Delete(WriteOptions(), Key(k)).ok());
      }
    }
    done.store(true);
  });

  ReadOptions ropts;
  ropts.snapshot = snap;
  std::string value;
  Random rnd(4);
  uint64_t violations = 0;
  while (!done.load()) {
    uint64_t k = rnd.Uniform(500);
    Status s = db_->Get(ropts, Key(k), &value);
    if (!s.ok() || value != "original") violations++;
  }
  churn.join();
  EXPECT_EQ(0u, violations);
  db_->ReleaseSnapshot(snap);
}

// --------------------------------------------------------------------------
// Background-compaction pipeline. These tests open their own DB so they can
// set Options::background_compactions explicitly.
// --------------------------------------------------------------------------

class BackgroundConcurrencyTest : public ::testing::Test {
 protected:
  static std::string Key(uint64_t i) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "k%06llu",
                  static_cast<unsigned long long>(i));
    return buf;
  }

  // A fresh DB in a fresh mem env; |background| selects the pipeline mode.
  struct TestDB {
    explicit TestDB(bool background, uint64_t d_th = 0,
                    bool async_wal_sync = false)
        : env(NewMemEnv()) {
      options.env = env.get();
      options.write_buffer_size = 16 << 10;
      options.background_compactions = background;
      options.delete_persistence_threshold = d_th;
      options.async_wal_sync = async_wal_sync;
      DB* raw = nullptr;
      EXPECT_TRUE(DB::Open(options, "/db", &raw).ok());
      db.reset(raw);
    }
    std::unique_ptr<Env> env;
    Options options;
    std::unique_ptr<DB> db;
  };
};

TEST_F(BackgroundConcurrencyTest, WritersAndReadersUnderBackground) {
  TestDB t(/*background=*/true);
  const int kWriters = 3, kReaders = 2, kPerThread = 6000;
  std::atomic<int> writers_done{0};
  std::atomic<uint64_t> read_errors{0};

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; w++) {
    threads.emplace_back([&, w] {
      for (int i = 0; i < kPerThread; i++) {
        ASSERT_TRUE(t.db->Put(WriteOptions(), Key(w * 1000000 + i),
                              std::to_string(w) + ":" + std::to_string(i))
                        .ok());
      }
      writers_done.fetch_add(1);
    });
  }
  for (int r = 0; r < kReaders; r++) {
    threads.emplace_back([&, r] {
      Random rnd(50 + r);
      std::string value;
      while (writers_done.load() < kWriters) {
        int w = static_cast<int>(rnd.Uniform(kWriters));
        int i = static_cast<int>(rnd.Uniform(kPerThread));
        Status s = t.db->Get(ReadOptions(), Key(w * 1000000 + i), &value);
        if (s.ok()) {
          if (value != std::to_string(w) + ":" + std::to_string(i)) {
            read_errors.fetch_add(1);
          }
        } else if (!s.IsNotFound()) {
          read_errors.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(0u, read_errors.load());

  ASSERT_TRUE(t.db->WaitForCompactions().ok());
  std::string value;
  Random rnd(9);
  for (int probe = 0; probe < 2000; probe++) {
    int w = static_cast<int>(rnd.Uniform(kWriters));
    int i = static_cast<int>(rnd.Uniform(kPerThread));
    ASSERT_TRUE(t.db->Get(ReadOptions(), Key(w * 1000000 + i), &value).ok());
    EXPECT_EQ(std::to_string(w) + ":" + std::to_string(i), value);
  }
  // The load was large enough that flushes really did run in the background.
  EXPECT_GT(t.db->GetStats().background_jobs_scheduled, 0u);
}

TEST_F(BackgroundConcurrencyTest, WaitForCompactionsQuiesces) {
  TestDB t(/*background=*/true);
  for (int i = 0; i < 20000; i++) {
    ASSERT_TRUE(t.db->Put(WriteOptions(), Key(i % 3000), "v" + Key(i)).ok());
  }
  ASSERT_TRUE(t.db->WaitForCompactions().ok());

  // Quiescent means: no immutable memtable, no pending compaction work.
  // Observable: L0 is below the compaction trigger and a second wait is a
  // no-op (engine counters do not move).
  std::string l0;
  ASSERT_TRUE(t.db->GetProperty("acheron.num-files-at-level0", &l0));
  EXPECT_LT(std::stoi(l0), t.options.level0_compaction_trigger);
  const InternalStats before = t.db->GetStats();
  ASSERT_TRUE(t.db->WaitForCompactions().ok());
  const InternalStats after = t.db->GetStats();
  EXPECT_EQ(before.flush_count, after.flush_count);
  EXPECT_EQ(before.compaction_count, after.compaction_count);
}

TEST_F(BackgroundConcurrencyTest, DeleteBoundsIdenticalAcrossModes) {
  // The pipeline replays the synchronous compaction schedule: a
  // single-threaded workload must leave an identical tree -- same level
  // file counts, same live tombstones, same oldest tombstone age -- in
  // both modes. This is the regression gate for FADE's D_th bound under
  // background execution.
  auto run = [](bool background) {
    TestDB t(background, /*d_th=*/8000);
    Random rnd(11);
    for (int i = 0; i < 25000; i++) {
      uint64_t k = rnd.Uniform(2500);
      if (rnd.Uniform(10) < 7) {
        EXPECT_TRUE(
            t.db->Put(WriteOptions(), Key(k), "v" + std::to_string(i)).ok());
      } else {
        EXPECT_TRUE(t.db->Delete(WriteOptions(), Key(k)).ok());
      }
    }
    EXPECT_TRUE(t.db->WaitForCompactions().ok());
    std::string summary, tombstones, age;
    EXPECT_TRUE(t.db->GetProperty("acheron.level-summary", &summary));
    EXPECT_TRUE(t.db->GetProperty("acheron.total-tombstones", &tombstones));
    EXPECT_TRUE(t.db->GetProperty("acheron.max-tombstone-age", &age));
    return summary + "|ts=" + tombstones + "|age=" + age;
  };
  EXPECT_EQ(run(false), run(true));
}

// --------------------------------------------------------------------------
// Lock-free point-lookup hot path (DESIGN.md "Read path"): Gets and
// iterators pin an atomically published ReadState and never touch the DB
// mutex. The tests below pin down the zero-mutex property and race reads
// against every ReadState publish site -- memtable swaps, flush/compaction
// version installs, and manual CompactRange -- in both pipeline modes.
// --------------------------------------------------------------------------

TEST_F(ConcurrencyTest, GetTakesNoMutex) {
  // Spread data across memtable and table files so Gets walk every layer.
  for (int i = 0; i < 3000; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), Key(i), "v" + Key(i)).ok());
  }
  ASSERT_TRUE(db_->WaitForCompactions().ok());

  std::string c0, c1, value;
  ASSERT_TRUE(db_->GetProperty("acheron.mutex-acquisitions", &c0));
  Random rnd(21);
  for (int i = 0; i < 5000; i++) {
    // ~25% misses so the not-found path is exercised too.
    Status s = db_->Get(ReadOptions(), Key(rnd.Uniform(4000)), &value);
    ASSERT_TRUE(s.ok() || s.IsNotFound());
  }
  ASSERT_TRUE(db_->GetProperty("acheron.mutex-acquisitions", &c1));
  // On a quiesced DB the only acquisition between the two samples is the
  // second property call's own lock: N Gets contribute exactly zero.
  EXPECT_EQ(std::stoull(c0) + 1, std::stoull(c1));
}

TEST_F(ConcurrencyTest, IteratorTakesNoMutex) {
  for (int i = 0; i < 2000; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), Key(i), "v").ok());
  }
  ASSERT_TRUE(db_->WaitForCompactions().ok());

  std::string c0, c1;
  ASSERT_TRUE(db_->GetProperty("acheron.mutex-acquisitions", &c0));
  {
    std::unique_ptr<Iterator> it(db_->NewIterator(ReadOptions()));
    uint64_t n = 0;
    for (it->SeekToFirst(); it->Valid(); it->Next()) n++;
    ASSERT_TRUE(it->status().ok());
    EXPECT_EQ(2000u, n);
  }  // destruction = lock-free unref; the writer-side drain cleans up later
  ASSERT_TRUE(db_->GetProperty("acheron.mutex-acquisitions", &c1));
  EXPECT_EQ(std::stoull(c0) + 1, std::stoull(c1));
}

TEST_F(ConcurrencyTest, StatsReadsRaceGets) {
  // TSan regression: GetProperty("acheron.stats")/GetStats() snapshot the
  // lock-free read counters (gets, gets_found, bloom_useful) while reader
  // threads bump them. Any non-atomic access is a reportable race.
  std::atomic<bool> done{false};
  for (int i = 0; i < 500; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), Key(i), "v").ok());
  }

  std::vector<std::thread> threads;
  for (int t = 0; t < 2; t++) {
    threads.emplace_back([&, t] {
      Random rnd(60 + t);
      std::string value;
      while (!done.load()) {
        (void)db_->Get(ReadOptions(), Key(rnd.Uniform(600)), &value);
      }
    });
  }

  uint64_t prev_gets = 0;
  for (int i = 0; i < 2000; i++) {
    std::string text;
    ASSERT_TRUE(db_->GetProperty("acheron.stats", &text));
    const InternalStats stats = db_->GetStats();
    // The merged snapshot must be internally sane and monotone.
    EXPECT_GE(stats.gets, stats.gets_found);
    EXPECT_GE(stats.gets, prev_gets);
    prev_gets = stats.gets;
  }
  done.store(true);
  for (auto& th : threads) th.join();
}

TEST_F(BackgroundConcurrencyTest, GetsRaceMemtableSwaps) {
  // Readers hammer Gets while the writer forces frequent mem_ -> imm_
  // rotations (16KiB buffer): every swap republishes the ReadState under
  // the readers' feet. Values encode their key for integrity checking.
  for (bool background : {false, true}) {
    TestDB t(background);
    std::atomic<bool> done{false};
    std::atomic<uint64_t> read_errors{0};

    std::vector<std::thread> readers;
    for (int r = 0; r < 3; r++) {
      readers.emplace_back([&, r] {
        Random rnd(80 + r);
        std::string value;
        while (!done.load()) {
          uint64_t k = rnd.Uniform(1500);
          Status s = t.db->Get(ReadOptions(), Key(k), &value);
          if (s.ok()) {
            if (value.rfind("val_" + Key(k) + "_", 0) != 0) {
              read_errors.fetch_add(1);
            }
          } else if (!s.IsNotFound()) {
            read_errors.fetch_add(1);
          }
        }
      });
    }

    Random rnd(17);
    for (int i = 0; i < 20000; i++) {
      uint64_t k = rnd.Uniform(1500);
      ASSERT_TRUE(t.db->Put(WriteOptions(), Key(k),
                            "val_" + Key(k) + "_" + std::to_string(i))
                      .ok());
    }
    done.store(true);
    for (auto& r : readers) r.join();
    ASSERT_TRUE(t.db->WaitForCompactions().ok());

    EXPECT_EQ(0u, read_errors.load()) << "background=" << background;
    // The workload really did rotate memtables (and install the flushed
    // results as new versions) while readers were live.
    EXPECT_GT(t.db->GetStats().memtable_swaps, 10u);
    EXPECT_GT(t.db->GetStats().flush_count, 0u);
  }
}

TEST_F(BackgroundConcurrencyTest, GetsRaceCompactRange) {
  // Manual full-range compactions rewrite every level and republish the
  // ReadState once per installed output; readers must never observe a
  // missing or stale value for the stable key range.
  for (bool background : {false, true}) {
    TestDB t(background);
    const int kStable = 400;
    for (int i = 0; i < kStable; i++) {
      ASSERT_TRUE(t.db->Put(WriteOptions(), Key(i), "stable").ok());
    }
    // Churn a disjoint range so compactions have real work.
    Random rnd(23);
    for (int i = 0; i < 8000; i++) {
      ASSERT_TRUE(
          t.db->Put(WriteOptions(), Key(1000 + rnd.Uniform(1000)), "x").ok());
    }

    std::atomic<bool> done{false};
    std::atomic<uint64_t> read_errors{0};
    std::vector<std::thread> readers;
    for (int r = 0; r < 3; r++) {
      readers.emplace_back([&, r] {
        Random rr(90 + r);
        std::string value;
        while (!done.load()) {
          uint64_t k = rr.Uniform(kStable);
          Status s = t.db->Get(ReadOptions(), Key(k), &value);
          if (!s.ok() || value != "stable") read_errors.fetch_add(1);
        }
      });
    }

    for (int round = 0; round < 4; round++) {
      t.db->CompactRange(nullptr, nullptr);
    }
    ASSERT_TRUE(t.db->WaitForCompactions().ok());
    done.store(true);
    for (auto& r : readers) r.join();

    EXPECT_EQ(0u, read_errors.load()) << "background=" << background;
    EXPECT_GT(t.db->GetStats().compaction_count, 0u)
        << "background=" << background;
  }
}

TEST_F(ConcurrencyTest, MultiGetTakesNoMutex) {
  // MultiGet rides the same pinned-ReadState hot path as Get: a batch of
  // lookups on a quiesced DB must not touch the DB mutex at all.
  for (int i = 0; i < 3000; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), Key(i), "v" + Key(i)).ok());
  }
  ASSERT_TRUE(db_->WaitForCompactions().ok());

  std::string c0, c1;
  ASSERT_TRUE(db_->GetProperty("acheron.mutex-acquisitions", &c0));
  Random rnd(31);
  for (int round = 0; round < 200; round++) {
    const size_t n = 1 + rnd.Uniform(16);
    std::vector<std::string> keys(n);
    std::vector<Slice> slices(n);
    for (size_t i = 0; i < n; i++) {
      keys[i] = Key(rnd.Uniform(4000));  // ~25% misses
      slices[i] = keys[i];
    }
    std::vector<std::string> values;
    std::vector<Status> statuses = db_->MultiGet(
        ReadOptions(), std::span<const Slice>(slices.data(), n), &values);
    for (const Status& s : statuses) {
      ASSERT_TRUE(s.ok() || s.IsNotFound());
    }
  }
  ASSERT_TRUE(db_->GetProperty("acheron.mutex-acquisitions", &c1));
  EXPECT_EQ(std::stoull(c0) + 1, std::stoull(c1));
}

TEST_F(BackgroundConcurrencyTest, MultiGetsRaceWrites) {
  // Batched readers race a writer through memtable swaps and version
  // installs in both pipeline modes; every returned value must encode its
  // key, and every batch must be internally consistent (one snapshot).
  for (bool background : {false, true}) {
    TestDB t(background);
    std::atomic<bool> done{false};
    std::atomic<uint64_t> read_errors{0};

    std::vector<std::thread> readers;
    for (int r = 0; r < 3; r++) {
      readers.emplace_back([&, r] {
        Random rnd(70 + r);
        while (!done.load()) {
          const size_t n = 1 + rnd.Uniform(8);
          std::vector<std::string> keys(n);
          std::vector<Slice> slices(n);
          for (size_t i = 0; i < n; i++) {
            keys[i] = Key(rnd.Uniform(1500));
            slices[i] = keys[i];
          }
          std::vector<std::string> values;
          std::vector<Status> statuses = t.db->MultiGet(
              ReadOptions(), std::span<const Slice>(slices.data(), n),
              &values);
          for (size_t i = 0; i < n; i++) {
            if (statuses[i].ok()) {
              if (values[i].rfind("val_" + keys[i] + "_", 0) != 0) {
                read_errors.fetch_add(1);
              }
            } else if (!statuses[i].IsNotFound()) {
              read_errors.fetch_add(1);
            }
          }
        }
      });
    }

    Random rnd(19);
    for (int i = 0; i < 20000; i++) {
      uint64_t k = rnd.Uniform(1500);
      ASSERT_TRUE(t.db->Put(WriteOptions(), Key(k),
                            "val_" + Key(k) + "_" + std::to_string(i))
                      .ok());
    }
    done.store(true);
    for (auto& r : readers) r.join();
    ASSERT_TRUE(t.db->WaitForCompactions().ok());

    EXPECT_EQ(0u, read_errors.load()) << "background=" << background;
    EXPECT_GT(t.db->GetStats().memtable_swaps, 10u);
  }
}

TEST_F(BackgroundConcurrencyTest, AsyncWalSyncConcurrentWriters) {
  // Options::async_wal_sync submits the group-commit fsync through
  // Env::SubmitSync and hands off leadership before waiting. Concurrent
  // sync-writers exercise the in-flight counter, the WAL-rotation drain,
  // and leadership hand-off under both pipeline modes; no write may be
  // lost and every leader must still ack only after its fsync completed.
  for (bool background : {false, true}) {
    TestDB t(background, /*d_th=*/0, /*async_wal_sync=*/true);
    const int kWriters = 4, kPerThread = 3000;
    std::vector<std::thread> writers;
    for (int w = 0; w < kWriters; w++) {
      writers.emplace_back([&, w] {
        WriteOptions wo;
        wo.sync = true;
        for (int i = 0; i < kPerThread; i++) {
          ASSERT_TRUE(t.db->Put(wo, Key(w * 1000000 + i), "v").ok());
        }
      });
    }
    for (auto& w : writers) w.join();

    const InternalStats stats = t.db->GetStats();
    const uint64_t total = static_cast<uint64_t>(kWriters) * kPerThread;
    EXPECT_GT(stats.wal_syncs, 0u) << "background=" << background;
    EXPECT_LT(stats.wal_syncs, total) << "background=" << background;

    std::string value;
    Random rnd(29);
    for (int probe = 0; probe < 1000; probe++) {
      int w = static_cast<int>(rnd.Uniform(kWriters));
      int i = static_cast<int>(rnd.Uniform(kPerThread));
      ASSERT_TRUE(t.db->Get(ReadOptions(), Key(w * 1000000 + i), &value).ok())
          << "background=" << background;
    }
  }
}

TEST_F(BackgroundConcurrencyTest, GroupCommitBatchesWalSyncs) {
  TestDB t(/*background=*/true);
  const int kWriters = 4, kPerThread = 4000;
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; w++) {
    writers.emplace_back([&, w] {
      WriteOptions wo;
      wo.sync = true;  // every *group* costs one WAL fsync
      for (int i = 0; i < kPerThread; i++) {
        ASSERT_TRUE(t.db->Put(wo, Key(w * 1000000 + i), "v").ok());
      }
    });
  }
  for (auto& w : writers) w.join();

  const InternalStats stats = t.db->GetStats();
  const uint64_t total = static_cast<uint64_t>(kWriters) * kPerThread;
  // Some writes must have ridden a leader's group, and every grouped write
  // saves a sync: strictly fewer fsyncs than logical writes.
  EXPECT_GT(stats.writes_grouped, 0u);
  EXPECT_GT(stats.group_commits, 0u);
  EXPECT_LT(stats.wal_syncs, total);

  // Grouping must not lose writes.
  std::string value;
  Random rnd(13);
  for (int probe = 0; probe < 1000; probe++) {
    int w = static_cast<int>(rnd.Uniform(kWriters));
    int i = static_cast<int>(rnd.Uniform(kPerThread));
    ASSERT_TRUE(t.db->Get(ReadOptions(), Key(w * 1000000 + i), &value).ok());
  }
}

}  // namespace acheron
