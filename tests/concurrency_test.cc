// Concurrency: readers (Gets, iterators, snapshots) race a writer thread.
// The engine serializes writers behind the DB mutex; readers pin state and
// proceed outside it. These tests verify absence of crashes/corruption and
// basic read-your-writes visibility under contention.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "src/env/env.h"
#include "src/lsm/db.h"
#include "src/util/random.h"

namespace acheron {

class ConcurrencyTest : public ::testing::Test {
 protected:
  ConcurrencyTest() : env_(NewMemEnv()), db_(nullptr) {
    options_.env = env_.get();
    options_.write_buffer_size = 16 << 10;
    options_.delete_persistence_threshold = 20000;
    EXPECT_TRUE(DB::Open(options_, "/db", &db_).ok());
  }
  ~ConcurrencyTest() override { delete db_; }

  static std::string Key(uint64_t i) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "k%06llu",
                  static_cast<unsigned long long>(i));
    return buf;
  }

  std::unique_ptr<Env> env_;
  Options options_;
  DB* db_;
};

TEST_F(ConcurrencyTest, ReadersDuringWrites) {
  std::atomic<bool> done{false};
  std::atomic<uint64_t> read_errors{0};

  // Values encode the key so readers can verify integrity whenever a key is
  // found: value must be "val_<key>_<anything>".
  std::thread writer([&] {
    Random rnd(1);
    for (int i = 0; i < 30000; i++) {
      uint64_t k = rnd.Uniform(2000);
      if (rnd.Uniform(10) < 8) {
        ASSERT_TRUE(db_->Put(WriteOptions(), Key(k),
                             "val_" + Key(k) + "_" + std::to_string(i))
                        .ok());
      } else {
        ASSERT_TRUE(db_->Delete(WriteOptions(), Key(k)).ok());
      }
    }
    done.store(true);
  });

  std::vector<std::thread> readers;
  for (int t = 0; t < 4; t++) {
    readers.emplace_back([&, t] {
      Random rnd(100 + t);
      std::string value;
      while (!done.load()) {
        uint64_t k = rnd.Uniform(2000);
        Status s = db_->Get(ReadOptions(), Key(k), &value);
        if (s.ok()) {
          if (value.rfind("val_" + Key(k) + "_", 0) != 0) {
            read_errors.fetch_add(1);
          }
        } else if (!s.IsNotFound()) {
          read_errors.fetch_add(1);
        }
      }
    });
  }

  std::thread scanner([&] {
    while (!done.load()) {
      std::unique_ptr<Iterator> it(db_->NewIterator(ReadOptions()));
      std::string prev;
      for (it->SeekToFirst(); it->Valid(); it->Next()) {
        std::string key = it->key().ToString();
        if (!prev.empty() && key <= prev) {
          read_errors.fetch_add(1);  // ordering violation
        }
        prev = key;
      }
      if (!it->status().ok()) read_errors.fetch_add(1);
    }
  });

  writer.join();
  for (auto& r : readers) r.join();
  scanner.join();
  EXPECT_EQ(0u, read_errors.load());
}

TEST_F(ConcurrencyTest, ConcurrentWriters) {
  // Multiple writer threads serialize correctly: each writes a disjoint key
  // range; all writes must be present at the end.
  const int kThreads = 4, kPerThread = 5000;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; t++) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; i++) {
        ASSERT_TRUE(db_->Put(WriteOptions(),
                             Key(t * 1000000 + i),
                             std::to_string(t) + ":" + std::to_string(i))
                        .ok());
      }
    });
  }
  for (auto& w : writers) w.join();

  std::string value;
  Random rnd(7);
  for (int probe = 0; probe < 2000; probe++) {
    int t = static_cast<int>(rnd.Uniform(kThreads));
    int i = static_cast<int>(rnd.Uniform(kPerThread));
    ASSERT_TRUE(db_->Get(ReadOptions(), Key(t * 1000000 + i), &value).ok());
    EXPECT_EQ(std::to_string(t) + ":" + std::to_string(i), value);
  }
}

TEST_F(ConcurrencyTest, SnapshotsUnderConcurrentChurn) {
  for (int i = 0; i < 500; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), Key(i), "original").ok());
  }
  const Snapshot* snap = db_->GetSnapshot();

  std::atomic<bool> done{false};
  std::thread churn([&] {
    Random rnd(3);
    for (int i = 0; i < 20000; i++) {
      uint64_t k = rnd.Uniform(500);
      if (rnd.OneIn(2)) {
        EXPECT_TRUE(db_->Put(WriteOptions(), Key(k), "mutated").ok());
      } else {
        EXPECT_TRUE(db_->Delete(WriteOptions(), Key(k)).ok());
      }
    }
    done.store(true);
  });

  ReadOptions ropts;
  ropts.snapshot = snap;
  std::string value;
  Random rnd(4);
  uint64_t violations = 0;
  while (!done.load()) {
    uint64_t k = rnd.Uniform(500);
    Status s = db_->Get(ropts, Key(k), &value);
    if (!s.ok() || value != "original") violations++;
  }
  churn.join();
  EXPECT_EQ(0u, violations);
  db_->ReleaseSnapshot(snap);
}

}  // namespace acheron
