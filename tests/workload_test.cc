#include "src/workload/workload.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace acheron {
namespace workload {

TEST(ZipfianTest, StaysInRange) {
  ZipfianGenerator gen(1000, 0.99, 7);
  for (int i = 0; i < 100000; i++) {
    EXPECT_LT(gen.Next(), 1000u);
  }
}

TEST(ZipfianTest, IsSkewed) {
  ZipfianGenerator gen(10000, 0.99, 7);
  std::map<uint64_t, int> counts;
  const int kDraws = 200000;
  for (int i = 0; i < kDraws; i++) counts[gen.Next()]++;
  // Rank 0 should receive a disproportionate share (~10% for theta=.99).
  EXPECT_GT(counts[0], kDraws / 25);
  // And far more than a mid-rank element.
  EXPECT_GT(counts[0], counts[5000] * 20);
}

TEST(ZipfianTest, LowThetaIsFlatter) {
  ZipfianGenerator skewed(1000, 0.99, 7);
  ZipfianGenerator flat(1000, 0.2, 7);
  int skewed_zero = 0, flat_zero = 0;
  for (int i = 0; i < 100000; i++) {
    if (skewed.Next() == 0) skewed_zero++;
    if (flat.Next() == 0) flat_zero++;
  }
  EXPECT_GT(skewed_zero, flat_zero * 3);
}

TEST(GeneratorTest, Determinism) {
  WorkloadSpec spec;
  spec.seed = 123;
  Generator a(spec), b(spec);
  for (int i = 0; i < 1000; i++) {
    Op oa = a.Next(), ob = b.Next();
    EXPECT_EQ(static_cast<int>(oa.type), static_cast<int>(ob.type));
    EXPECT_EQ(oa.key, ob.key);
    EXPECT_EQ(oa.value, ob.value);
  }
}

TEST(GeneratorTest, MixRatiosRoughlyHold) {
  WorkloadSpec spec;
  spec.update_percent = 30;
  spec.delete_percent = 20;
  spec.point_query_percent = 15;
  spec.range_query_percent = 5;
  Generator gen(spec);
  std::map<OpType, int> counts;
  const int kOps = 100000;
  for (int i = 0; i < kOps; i++) counts[gen.Next().type]++;
  EXPECT_NEAR(counts[OpType::kUpdate], kOps * 30 / 100, kOps / 50);
  EXPECT_NEAR(counts[OpType::kDelete], kOps * 20 / 100, kOps / 50);
  EXPECT_NEAR(counts[OpType::kPointQuery], kOps * 15 / 100, kOps / 50);
  EXPECT_NEAR(counts[OpType::kRangeQuery], kOps * 5 / 100, kOps / 50);
  EXPECT_NEAR(counts[OpType::kInsert], kOps * 30 / 100, kOps / 50);
}

TEST(GeneratorTest, KeysHaveFixedSizeAndOrder) {
  WorkloadSpec spec;
  spec.key_size = 16;
  Generator gen(spec);
  EXPECT_EQ(16u, gen.KeyAt(0).size());
  EXPECT_EQ(16u, gen.KeyAt(999999).size());
  // Numeric order matches lexicographic order (zero padding).
  EXPECT_LT(gen.KeyAt(5), gen.KeyAt(10));
  EXPECT_LT(gen.KeyAt(99), gen.KeyAt(100));
}

TEST(GeneratorTest, ValuesSizedAndDistinct) {
  WorkloadSpec spec;
  spec.value_size = 100;
  Generator gen(spec);
  EXPECT_EQ(100u, gen.ValueAt(1).size());
  EXPECT_NE(gen.ValueAt(1), gen.ValueAt(2));
}

TEST(GeneratorTest, FifoDeletesAreOrdered) {
  WorkloadSpec spec;
  spec.delete_percent = 100;
  spec.update_percent = 0;
  spec.point_query_percent = 0;
  spec.delete_model = DeleteModel::kFifo;
  Generator gen(spec);
  std::string prev;
  for (int i = 0; i < 100; i++) {
    Op op = gen.Next();
    ASSERT_EQ(OpType::kDelete, static_cast<OpType>(op.type));
    if (!prev.empty()) {
      EXPECT_LT(prev, op.key);
    }
    prev = op.key;
  }
}

class GeneratorSweep : public ::testing::TestWithParam<int> {};

TEST_P(GeneratorSweep, AllKeysWithinKeySpace) {
  WorkloadSpec spec;
  spec.key_space = 500;
  spec.seed = GetParam();
  spec.update_percent = 25;
  spec.delete_percent = 25;
  spec.point_query_percent = 25;
  spec.distribution = (GetParam() % 2) ? KeyDistribution::kZipfian
                                       : KeyDistribution::kUniform;
  Generator gen(spec);
  std::set<std::string> valid;
  for (uint64_t i = 0; i < spec.key_space; i++) valid.insert(gen.KeyAt(i));
  for (int i = 0; i < 10000; i++) {
    Op op = gen.Next();
    EXPECT_TRUE(valid.count(op.key)) << op.key;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorSweep, ::testing::Values(1, 2, 3, 4));

}  // namespace workload
}  // namespace acheron
