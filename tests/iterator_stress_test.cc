// Iterator stress: random walks (Seek/Next/Prev/SeekToFirst/SeekToLast)
// over a DB whose data spans the memtable and several levels, validated
// against a std::map model at every step. Also covers snapshot iteration
// and direction switching at boundaries.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "src/env/env.h"
#include "src/lsm/db.h"
#include "src/util/random.h"

namespace acheron {

class IteratorStressTest : public ::testing::TestWithParam<int> {
 protected:
  IteratorStressTest() : env_(NewMemEnv()), db_(nullptr) {
    options_.env = env_.get();
    options_.write_buffer_size = 8 << 10;
    options_.max_file_size = 16 << 10;
    options_.size_ratio = 4;
  }
  ~IteratorStressTest() override { delete db_; }

  void BuildDatabase(uint64_t seed) {
    ASSERT_TRUE(DB::Open(options_, "/db", &db_).ok());
    Random rnd(seed);
    // Several flush cycles so data lands in multiple levels, plus residue
    // left in the memtable.
    for (int round = 0; round < 6; round++) {
      for (int i = 0; i < 400; i++) {
        std::string key = Key(rnd.Uniform(800));
        if (rnd.Uniform(10) < 7) {
          std::string value = "v" + std::to_string(round * 1000 + i);
          model_[key] = value;
          ASSERT_TRUE(db_->Put(WriteOptions(), key, value).ok());
        } else {
          model_.erase(key);
          ASSERT_TRUE(db_->Delete(WriteOptions(), key).ok());
        }
      }
      if (round < 5) {
        ASSERT_TRUE(db_->FlushMemTable().ok());
      }
    }
  }

  static std::string Key(uint64_t i) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "k%06llu",
                  static_cast<unsigned long long>(i));
    return buf;
  }

  void CheckAgainstModel(Iterator* it,
                         std::map<std::string, std::string>::iterator pos,
                         bool valid) {
    if (!valid || pos == model_.end()) {
      // Model iterator at end: DB iterator must be invalid only when the
      // model is exhausted in the walked direction. Callers align this.
      return;
    }
    ASSERT_TRUE(it->Valid());
    EXPECT_EQ(pos->first, it->key().ToString());
    EXPECT_EQ(pos->second, it->value().ToString());
  }

  std::unique_ptr<Env> env_;
  Options options_;
  DB* db_;
  std::map<std::string, std::string> model_;
};

TEST_P(IteratorStressTest, RandomWalkMatchesModel) {
  BuildDatabase(GetParam());
  std::unique_ptr<Iterator> it(db_->NewIterator(ReadOptions()));
  Random rnd(GetParam() * 31 + 1);

  // Model cursor: an iterator into model_, or end() <=> !Valid().
  auto pos = model_.end();
  bool valid = false;

  for (int step = 0; step < 3000; step++) {
    switch (rnd.Uniform(5)) {
      case 0: {  // SeekToFirst
        it->SeekToFirst();
        pos = model_.begin();
        valid = (pos != model_.end());
        break;
      }
      case 1: {  // SeekToLast
        it->SeekToLast();
        if (model_.empty()) {
          valid = false;
        } else {
          pos = std::prev(model_.end());
          valid = true;
        }
        break;
      }
      case 2: {  // Seek to a random key
        std::string target = Key(rnd.Uniform(900));
        it->Seek(target);
        pos = model_.lower_bound(target);
        valid = (pos != model_.end());
        break;
      }
      case 3: {  // Next
        if (!valid) continue;
        it->Next();
        ++pos;
        valid = (pos != model_.end());
        break;
      }
      case 4: {  // Prev
        if (!valid) continue;
        it->Prev();
        if (pos == model_.begin()) {
          valid = false;
          pos = model_.end();
        } else {
          --pos;
        }
        break;
      }
    }
    ASSERT_EQ(valid, it->Valid()) << "step " << step;
    if (valid) {
      ASSERT_EQ(pos->first, it->key().ToString()) << "step " << step;
      ASSERT_EQ(pos->second, it->value().ToString()) << "step " << step;
    }
  }
  EXPECT_TRUE(it->status().ok());
}

TEST_P(IteratorStressTest, SnapshotIteratorIsFrozen) {
  BuildDatabase(GetParam());
  const Snapshot* snap = db_->GetSnapshot();
  auto frozen_model = model_;

  // Heavy churn after the snapshot.
  Random rnd(GetParam() + 99);
  for (int i = 0; i < 2000; i++) {
    std::string key = Key(rnd.Uniform(800));
    if (rnd.OneIn(2)) {
      ASSERT_TRUE(db_->Put(WriteOptions(), key, "post-snapshot").ok());
    } else {
      ASSERT_TRUE(db_->Delete(WriteOptions(), key).ok());
    }
  }
  ASSERT_TRUE(db_->FlushMemTable().ok());

  ReadOptions ropts;
  ropts.snapshot = snap;
  std::unique_ptr<Iterator> it(db_->NewIterator(ropts));
  auto pos = frozen_model.begin();
  for (it->SeekToFirst(); it->Valid(); it->Next(), ++pos) {
    ASSERT_NE(frozen_model.end(), pos);
    EXPECT_EQ(pos->first, it->key().ToString());
    EXPECT_EQ(pos->second, it->value().ToString());
  }
  EXPECT_EQ(frozen_model.end(), pos);
  db_->ReleaseSnapshot(snap);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IteratorStressTest,
                         ::testing::Values(1, 2, 3, 17, 42));

}  // namespace acheron
