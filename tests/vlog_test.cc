// Key-value separation: large values live in the vLog, the LSM carries
// pointers, and FADE-driven GC reclaims value bytes of persisted deletes.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/env/env.h"
#include "src/lsm/db.h"
#include "src/lsm/filename.h"
#include "src/util/random.h"
#include "src/vlog/vlog_format.h"
#include "src/vlog/vlog_reader.h"
#include "src/vlog/vlog_writer.h"

namespace acheron {

// ---------------- Format / writer / reader units ----------------

TEST(VlogFormatTest, PointerRoundTrip) {
  vlog::ValuePointer ptr;
  ptr.segment = 7;
  ptr.offset = 123456;
  ptr.size = 4096;
  std::string encoded;
  vlog::EncodeValuePointer(&encoded, ptr);
  vlog::ValuePointer decoded;
  ASSERT_TRUE(vlog::DecodeValuePointerStrict(encoded, &decoded));
  EXPECT_TRUE(ptr == decoded);
  // Trailing garbage must be rejected (strict decode).
  encoded.push_back('x');
  EXPECT_FALSE(vlog::DecodeValuePointerStrict(encoded, &decoded));
}

TEST(VlogWriterTest, AppendScanAndReadBack) {
  std::unique_ptr<Env> env(NewMemEnv());
  ASSERT_TRUE(env->CreateDir("/db").ok());
  const std::string fname = VlogFileName("/db", 9);
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env->NewWritableFile(fname, &file).ok());
  vlog::Writer writer(std::move(file), 9);

  std::vector<vlog::ValuePointer> ptrs;
  std::vector<std::string> values;
  for (int i = 0; i < 100; i++) {
    std::string key = "key" + std::to_string(i);
    std::string value(100 + i * 7, static_cast<char>('a' + i % 26));
    vlog::ValuePointer ptr;
    ASSERT_TRUE(writer.Add(key, value, &ptr).ok());
    EXPECT_EQ(ptr.segment, 9u);
    ptrs.push_back(ptr);
    values.push_back(value);
  }
  ASSERT_TRUE(writer.Sync().ok());
  ASSERT_TRUE(writer.Close().ok());
  EXPECT_EQ(writer.value_count(), 100u);

  // The CRC scan sees every record and agrees with the writer's extent.
  uint64_t valid_bytes = 0;
  uint64_t value_count = 0;
  ASSERT_TRUE(
      vlog::ScanSegment(env.get(), fname, &valid_bytes, &value_count).ok());
  EXPECT_EQ(valid_bytes, writer.offset());
  EXPECT_EQ(value_count, 100u);

  vlog::ReaderCache cache(env.get(), "/db");
  for (int i = 0; i < 100; i++) {
    std::string out;
    ASSERT_TRUE(
        cache.Get(ptrs[i], "key" + std::to_string(i), &out).ok());
    EXPECT_EQ(out, values[i]);
  }
  // Keyed back-check: the right address with the wrong key is a stale
  // pointer, not a value.
  std::string out;
  EXPECT_TRUE(cache.Get(ptrs[0], "not-the-key", &out).IsCorruption());
}

TEST(VlogWriterTest, TornTailScanStopsAtValidPrefix) {
  std::unique_ptr<Env> env(NewMemEnv());
  ASSERT_TRUE(env->CreateDir("/db").ok());
  const std::string fname = VlogFileName("/db", 3);
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env->NewWritableFile(fname, &file).ok());
  vlog::Writer writer(std::move(file), 3);
  vlog::ValuePointer ptr;
  ASSERT_TRUE(writer.Add("k1", std::string(500, 'v'), &ptr).ok());
  const uint64_t first_extent = writer.offset();
  ASSERT_TRUE(writer.Add("k2", std::string(500, 'w'), &ptr).ok());
  ASSERT_TRUE(writer.Sync().ok());
  ASSERT_TRUE(writer.Close().ok());

  // Tear the second record: rewrite the file as a truncated copy.
  std::string contents;
  ASSERT_TRUE(env->ReadFileToString(fname, &contents).ok());
  contents.resize(first_extent + 20);
  ASSERT_TRUE(env->RemoveFile(fname).ok());
  ASSERT_TRUE(env->NewWritableFile(fname, &file).ok());
  ASSERT_TRUE(file->Append(contents).ok());
  ASSERT_TRUE(file->Close().ok());

  uint64_t valid_bytes = 0;
  uint64_t value_count = 0;
  ASSERT_TRUE(
      vlog::ScanSegment(env.get(), fname, &valid_bytes, &value_count).ok());
  EXPECT_EQ(valid_bytes, first_extent);
  EXPECT_EQ(value_count, 1u);
}

// ---------------- End-to-end DB behaviour ----------------

class VlogDBTest : public ::testing::Test {
 protected:
  VlogDBTest() : env_(NewMemEnv()), db_(nullptr) {
    options_.env = env_.get();
    options_.write_buffer_size = 32 << 10;
    options_.max_file_size = 32 << 10;
    options_.value_separation_threshold = 256;
    options_.vlog_segment_size = 64 << 10;  // clamp floor; rotate often
  }
  ~VlogDBTest() override { delete db_; }

  void Open() { ASSERT_TRUE(DB::Open(options_, "/db", &db_).ok()); }
  void Reopen() {
    delete db_;
    db_ = nullptr;
    Open();
  }

  std::string Property(const std::string& name) {
    std::string v;
    EXPECT_TRUE(db_->GetProperty(name, &v)) << name;
    return v;
  }

  int CountVlogFiles() {
    std::vector<std::string> children;
    EXPECT_TRUE(env_->GetChildren("/db", &children).ok());
    int n = 0;
    uint64_t number;
    FileType type;
    for (const std::string& c : children) {
      if (ParseFileName(c, &number, &type) && type == kVlogFile) n++;
    }
    return n;
  }

  std::unique_ptr<Env> env_;
  Options options_;
  DB* db_;
};

TEST_F(VlogDBTest, ThresholdRoutesLargeValuesOnly) {
  Open();
  const std::string small(255, 's');   // below threshold: stays inline
  const std::string exact(256, 'e');   // at threshold: separated
  const std::string large(4096, 'L');  // far above: separated
  ASSERT_TRUE(db_->Put(WriteOptions(), "small", small).ok());
  ASSERT_TRUE(db_->Put(WriteOptions(), "exact", exact).ok());
  ASSERT_TRUE(db_->Put(WriteOptions(), "large", large).ok());

  std::string v;
  ASSERT_TRUE(db_->Get(ReadOptions(), "small", &v).ok());
  EXPECT_EQ(v, small);
  ASSERT_TRUE(db_->Get(ReadOptions(), "exact", &v).ok());
  EXPECT_EQ(v, exact);
  ASSERT_TRUE(db_->Get(ReadOptions(), "large", &v).ok());
  EXPECT_EQ(v, large);

  InternalStats stats = db_->GetStats();
  EXPECT_EQ(stats.vlog_values_written, 2u);
  EXPECT_GE(stats.vlog_reads, 2u);
}

TEST_F(VlogDBTest, ValuesSurviveFlushCompactionAndReopen) {
  Open();
  Random rnd(301);
  std::map<std::string, std::string> model;
  for (int i = 0; i < 2000; i++) {
    std::string key = "key" + std::to_string(rnd.Uniform(400));
    // Mixed sizes straddling the threshold, and overwrites.
    const size_t len = 1 + rnd.Uniform(1500);
    std::string value(len, static_cast<char>('a' + i % 26));
    ASSERT_TRUE(db_->Put(WriteOptions(), key, value).ok());
    model[key] = value;
    if (rnd.Uniform(10) == 0) {
      std::string dead = "key" + std::to_string(rnd.Uniform(400));
      ASSERT_TRUE(db_->Delete(WriteOptions(), dead).ok());
      model.erase(dead);
    }
  }

  auto check_all = [&] {
    for (const auto& [key, expect] : model) {
      std::string v;
      Status s = db_->Get(ReadOptions(), key, &v);
      ASSERT_TRUE(s.ok()) << key << ": " << s.ToString();
      ASSERT_EQ(v, expect) << key;
    }
    // Forward scan sees the same world.
    std::unique_ptr<Iterator> it(db_->NewIterator(ReadOptions()));
    size_t seen = 0;
    for (it->SeekToFirst(); it->Valid(); it->Next()) {
      auto mit = model.find(it->key().ToString());
      ASSERT_TRUE(mit != model.end()) << it->key().ToString();
      ASSERT_EQ(it->value().ToString(), mit->second);
      seen++;
    }
    ASSERT_TRUE(it->status().ok()) << it->status().ToString();
    ASSERT_EQ(seen, model.size());
    // Reverse scan too (pointers resolve once per accepted key).
    seen = 0;
    for (it->SeekToLast(); it->Valid(); it->Prev()) seen++;
    ASSERT_TRUE(it->status().ok()) << it->status().ToString();
    ASSERT_EQ(seen, model.size());
  };
  check_all();

  // MultiGet batches the pointer dereferences through one submission.
  std::vector<Slice> keys;
  std::vector<std::string> owned;
  owned.reserve(model.size());
  for (const auto& [key, expect] : model) owned.push_back(key);
  for (const std::string& k : owned) keys.emplace_back(k);
  std::vector<std::string> values;
  std::vector<Status> statuses =
      db_->MultiGet(ReadOptions(), keys, &values);
  for (size_t i = 0; i < keys.size(); i++) {
    ASSERT_TRUE(statuses[i].ok()) << owned[i];
    ASSERT_EQ(values[i], model[owned[i]]) << owned[i];
  }

  Reopen();
  check_all();

  // The workload spans several segments and the registry survived reopen.
  std::string vs = Property("acheron.vlog-stats");
  EXPECT_NE(vs.find("segments="), std::string::npos);
  EXPECT_GT(CountVlogFiles(), 1);
}

TEST_F(VlogDBTest, SnapshotReadsOldValueThroughPointer) {
  Open();
  const std::string v1(1000, '1');
  const std::string v2(1000, '2');
  ASSERT_TRUE(db_->Put(WriteOptions(), "k", v1).ok());
  const Snapshot* snap = db_->GetSnapshot();
  ASSERT_TRUE(db_->Put(WriteOptions(), "k", v2).ok());
  std::string v;
  ReadOptions ro;
  ro.snapshot = snap;
  ASSERT_TRUE(db_->Get(ro, "k", &v).ok());
  EXPECT_EQ(v, v1);
  ASSERT_TRUE(db_->Get(ReadOptions(), "k", &v).ok());
  EXPECT_EQ(v, v2);
  db_->ReleaseSnapshot(snap);
}

TEST_F(VlogDBTest, GcReclaimsDeletedValuesWithinDth) {
  const uint64_t kDth = 4000;
  options_.delete_persistence_threshold = kDth;
  options_.write_buffer_size = 8 << 10;
  Open();

  const std::string large(2048, 'G');
  // Fill, then delete every separated value: all vLog bytes become
  // deletion-driven garbage once the tombstones persist.
  for (int i = 0; i < 64; i++) {
    ASSERT_TRUE(
        db_->Put(WriteOptions(), "gone" + std::to_string(i), large).ok());
  }
  for (int i = 0; i < 64; i++) {
    ASSERT_TRUE(db_->Delete(WriteOptions(), "gone" + std::to_string(i)).ok());
  }
  // Keep one live separated value around: GC must relocate, not lose it.
  ASSERT_TRUE(db_->Put(WriteOptions(), "keeper", large).ok());

  // Drive the logical clock well past D_th so the key purges and then the
  // value purges both come due.
  for (uint64_t i = 0; i < 3 * kDth; i++) {
    ASSERT_TRUE(
        db_->Put(WriteOptions(), "filler" + std::to_string(i % 512),
                 "small")
            .ok());
  }

  DeleteStats ds = db_->GetDeleteStats();
  EXPECT_GT(ds.values_purged, 0u) << Property("acheron.vlog-stats");
  EXPECT_EQ(ds.value_purge_backlog, 0u) << Property("acheron.vlog-stats");
  // Delete-compliant GC: value bytes reclaimed within D_th of the key
  // purge (slack for the op that crosses the deadline).
  EXPECT_LE(ds.value_purge_latency_max, static_cast<double>(kDth) + 2);

  InternalStats stats = db_->GetStats();
  EXPECT_GT(stats.vlog_gc_runs, 0u);

  std::string v;
  ASSERT_TRUE(db_->Get(ReadOptions(), "keeper", &v).ok());
  EXPECT_EQ(v, large);
  for (int i = 0; i < 64; i++) {
    EXPECT_TRUE(
        db_->Get(ReadOptions(), "gone" + std::to_string(i), &v).IsNotFound());
  }
}

TEST_F(VlogDBTest, SpaceGcRewritesLowLiveRatioSegments) {
  options_.vlog_gc_live_ratio = 0.5;
  options_.write_buffer_size = 8 << 10;
  Open();

  const std::string large(2048, 'S');
  // Overwrite the same keys repeatedly: old versions become plain (non-
  // deletion) garbage, driving live ratios down without any tombstones.
  for (int round = 0; round < 6; round++) {
    for (int i = 0; i < 32; i++) {
      ASSERT_TRUE(
          db_->Put(WriteOptions(), "ow" + std::to_string(i), large).ok());
    }
  }
  // Push everything through flush + compaction so the garbage is charged.
  for (int i = 0; i < 4000; i++) {
    ASSERT_TRUE(
        db_->Put(WriteOptions(), "pad" + std::to_string(i % 256), "x").ok());
  }

  InternalStats stats = db_->GetStats();
  EXPECT_GT(stats.vlog_gc_runs, 0u) << Property("acheron.vlog-stats");

  std::string v;
  for (int i = 0; i < 32; i++) {
    ASSERT_TRUE(db_->Get(ReadOptions(), "ow" + std::to_string(i), &v).ok());
    EXPECT_EQ(v, large);
  }
}

TEST_F(VlogDBTest, SeparationOffNeverCreatesSegments) {
  options_.value_separation_threshold = 0;
  Open();
  ASSERT_TRUE(db_->Put(WriteOptions(), "k", std::string(64 << 10, 'v')).ok());
  std::string v;
  ASSERT_TRUE(db_->Get(ReadOptions(), "k", &v).ok());
  EXPECT_EQ(v.size(), static_cast<size_t>(64 << 10));
  EXPECT_EQ(CountVlogFiles(), 0);
  InternalStats stats = db_->GetStats();
  EXPECT_EQ(stats.vlog_values_written, 0u);
}

TEST_F(VlogDBTest, ObsoleteSegmentsAreCollectedNotLeaked) {
  options_.delete_persistence_threshold = 2000;
  options_.write_buffer_size = 8 << 10;
  Open();
  const std::string large(2048, 'D');
  for (int i = 0; i < 64; i++) {
    ASSERT_TRUE(
        db_->Put(WriteOptions(), "del" + std::to_string(i), large).ok());
  }
  for (int i = 0; i < 64; i++) {
    ASSERT_TRUE(db_->Delete(WriteOptions(), "del" + std::to_string(i)).ok());
  }
  const int before = CountVlogFiles();
  for (int i = 0; i < 8000; i++) {
    ASSERT_TRUE(
        db_->Put(WriteOptions(), "pad" + std::to_string(i % 128), "x").ok());
  }
  // Every all-garbage segment died; only the head and (possibly) a couple
  // of relocation/live segments remain.
  EXPECT_LT(CountVlogFiles(), before);
}

}  // namespace acheron
