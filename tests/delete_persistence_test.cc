// The core Acheron property: with delete_persistence_threshold = D_th, no
// tombstone outlives D_th ingested operations -- across compaction styles,
// TTL allocations, and workloads -- while the vanilla baseline lets
// tombstones linger indefinitely.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "src/env/env.h"
#include "src/lsm/db.h"
#include "src/lsm/version_set.h"
#include "src/util/random.h"

namespace acheron {

namespace {

struct Config {
  CompactionStyle style;
  TtlAllocation alloc;
  uint64_t dth;
  bool delete_aware_picking;
  const char* name;
};

std::string ConfigName(const ::testing::TestParamInfo<Config>& info) {
  return info.param.name;
}

}  // namespace

class DeletePersistenceTest : public ::testing::TestWithParam<Config> {
 protected:
  DeletePersistenceTest() : env_(NewMemEnv()), db_(nullptr) {
    options_.env = env_.get();
    options_.write_buffer_size = 8 << 10;
    options_.max_file_size = 16 << 10;
    options_.size_ratio = 4;
    options_.num_levels = 4;
    options_.level0_compaction_trigger = 4;
  }
  ~DeletePersistenceTest() override { delete db_; }

  void Open(const Config& cfg) {
    options_.compaction_style = cfg.style;
    options_.ttl_allocation = cfg.alloc;
    options_.delete_persistence_threshold = cfg.dth;
    options_.delete_aware_picking = cfg.delete_aware_picking;
    ASSERT_TRUE(DB::Open(options_, "/db", &db_).ok());
  }

  uint64_t MaxTombstoneAge() {
    std::string v;
    EXPECT_TRUE(db_->GetProperty("acheron.max-tombstone-age", &v));
    return std::stoull(v);
  }

  std::unique_ptr<Env> env_;
  Options options_;
  DB* db_;
};

TEST_P(DeletePersistenceTest, TombstoneAgeNeverExceedsThreshold) {
  const Config& cfg = GetParam();
  Open(cfg);
  Random rnd(42);
  std::map<std::string, bool> alive;

  const int kOps = 30000;
  for (int i = 0; i < kOps; i++) {
    std::string key = "user" + std::to_string(rnd.Uniform(600));
    if (rnd.Uniform(100) < 25) {
      ASSERT_TRUE(db_->Delete(WriteOptions(), key).ok());
      alive[key] = false;
    } else {
      ASSERT_TRUE(
          db_->Put(WriteOptions(), key, "payload" + std::to_string(i)).ok());
      alive[key] = true;
    }

    if (i % 500 == 499) {
      // THE invariant: no live tombstone older than D_th (+1 op of slack
      // for the write that crosses the deadline).
      uint64_t age = MaxTombstoneAge();
      ASSERT_LE(age, cfg.dth + 2)
          << "tombstone overdue at op " << i << " (style "
          << static_cast<int>(cfg.style) << ")";
    }
  }

  // Deletes were actually persisted, not just shuffled.
  DeleteStats ds = db_->GetDeleteStats();
  EXPECT_GT(ds.tombstones_written, 1000u);
  EXPECT_GT(ds.tombstones_persisted + ds.tombstones_superseded, 0u);
  EXPECT_LE(ds.persistence_latency_max, static_cast<double>(cfg.dth) + 2);

  // Reads still correct after all the delete-driven reorganisation.
  for (const auto& [key, is_alive] : alive) {
    std::string value;
    Status s = db_->Get(ReadOptions(), key, &value);
    if (is_alive) {
      EXPECT_TRUE(s.ok()) << key << ": " << s.ToString();
    } else {
      EXPECT_TRUE(s.IsNotFound()) << key;
    }
  }

  // Note: whether TTL-expiry compactions fire depends on the config --
  // structural triggers may persist everything ahead of the clock. The
  // dedicated ForcedTtlExpiry test below pins down the mechanism itself.
}

INSTANTIATE_TEST_SUITE_P(
    Configs, DeletePersistenceTest,
    ::testing::Values(
        Config{CompactionStyle::kLeveling, TtlAllocation::kGeometric, 8000,
               false, "LevelingGeometric"},
        Config{CompactionStyle::kLeveling, TtlAllocation::kUniform, 8000,
               false, "LevelingUniform"},
        Config{CompactionStyle::kLeveling, TtlAllocation::kGeometric, 8000,
               true, "LevelingDeleteAwarePicking"},
        Config{CompactionStyle::kTiering, TtlAllocation::kGeometric, 8000,
               false, "TieringGeometric"},
        Config{CompactionStyle::kLeveling, TtlAllocation::kGeometric, 2000,
               false, "TightThreshold"},
        Config{CompactionStyle::kLeveling, TtlAllocation::kGeometric, 25000,
               false, "LooseThreshold"}),
    ConfigName);

namespace {

// Runs the same delete-then-churn workload and returns the *peak* live
// tombstone age observed. The tree is deep enough (payloaded values, many
// distinct keys) that tombstones must traverse intermediate levels.
uint64_t PeakTombstoneAge(uint64_t dth, uint64_t* ttl_compactions) {
  std::unique_ptr<Env> env(NewMemEnv());
  Options options;
  options.env = env.get();
  options.write_buffer_size = 8 << 10;
  options.max_file_size = 16 << 10;
  options.size_ratio = 4;
  options.num_levels = 4;
  options.delete_persistence_threshold = dth;
  DB* db = nullptr;
  EXPECT_TRUE(DB::Open(options, "/db", &db).ok());

  // Build a multi-level tree of cold data first.
  const std::string payload(100, 'p');
  for (int i = 0; i < 3000; i++) {
    EXPECT_TRUE(
        db->Put(WriteOptions(), "cold" + std::to_string(i), payload).ok());
  }
  // Delete a slice of cold keys; these tombstones are what we track.
  for (int i = 0; i < 300; i++) {
    EXPECT_TRUE(db->Delete(WriteOptions(), "cold" + std::to_string(i)).ok());
  }
  // Hot churn in a disjoint key range: the cold tombstones only move when
  // either round-robin size compactions happen to reach them (baseline) or
  // their TTL expires (FADE).
  uint64_t peak = 0;
  for (int i = 0; i < 40000; i++) {
    EXPECT_TRUE(
        db->Put(WriteOptions(), "hot" + std::to_string(i % 800), payload).ok());
    if (i % 250 == 249) {
      std::string v;
      EXPECT_TRUE(db->GetProperty("acheron.max-tombstone-age", &v));
      peak = std::max<uint64_t>(peak, std::stoull(v));
    }
  }
  if (ttl_compactions != nullptr) {
    *ttl_compactions = db->GetStats().compactions_by_reason[static_cast<size_t>(
        CompactionReason::kTtlExpiry)];
  }
  delete db;
  return peak;
}

}  // namespace

// Baseline contrast: without FADE the same workload leaves tombstones
// lingering far beyond what FADE allows, and the FADE run visibly uses
// TTL-expiry compactions to meet its bound.
TEST(DeletePersistenceBaselineTest, FadeBoundsWhatBaselineDoesNot) {
  const uint64_t dth = 5000;
  uint64_t fade_ttl_compactions = 0;
  uint64_t fade_peak = PeakTombstoneAge(dth, &fade_ttl_compactions);
  uint64_t baseline_peak = PeakTombstoneAge(0, nullptr);

  EXPECT_LE(fade_peak, dth + 2);
  EXPECT_GT(baseline_peak, fade_peak * 2)
      << "baseline should retain tombstones much longer than FADE";
  EXPECT_GT(fade_ttl_compactions, 0u)
      << "FADE should have needed TTL-expiry compactions in this workload";
}

// A snapshot pins tombstones: ages may exceed D_th while pinned, but the
// engine must not livelock, and persistence resumes after release.
TEST(DeletePersistenceSnapshotTest, SnapshotPinsWithoutLivelock) {
  std::unique_ptr<Env> env(NewMemEnv());
  Options options;
  options.env = env.get();
  options.write_buffer_size = 8 << 10;
  options.delete_persistence_threshold = 3000;
  options.size_ratio = 4;
  DB* db;
  ASSERT_TRUE(DB::Open(options, "/db", &db).ok());

  for (int i = 0; i < 100; i++) {
    ASSERT_TRUE(db->Put(WriteOptions(), "k" + std::to_string(i), "v").ok());
  }
  const Snapshot* snap = db->GetSnapshot();
  for (int i = 0; i < 100; i++) {
    ASSERT_TRUE(db->Delete(WriteOptions(), "k" + std::to_string(i)).ok());
  }

  // Churn well past D_th with the snapshot held: must not hang or error.
  for (int i = 0; i < 10000; i++) {
    ASSERT_TRUE(
        db->Put(WriteOptions(), "other" + std::to_string(i % 300), "x").ok());
  }
  // Snapshot still sees pre-delete values.
  ReadOptions ropts;
  ropts.snapshot = snap;
  std::string value;
  EXPECT_TRUE(db->Get(ropts, "k5", &value).ok());
  EXPECT_EQ("v", value);

  db->ReleaseSnapshot(snap);
  // After release, further churn lets the tombstones persist again.
  for (int i = 0; i < 8000; i++) {
    ASSERT_TRUE(
        db->Put(WriteOptions(), "other" + std::to_string(i % 300), "y").ok());
  }
  std::string age_str;
  ASSERT_TRUE(db->GetProperty("acheron.max-tombstone-age", &age_str));
  EXPECT_LE(std::stoull(age_str), 3000u + 2);
  delete db;
}

// Delete persistence state must survive restarts: tombstone metadata is in
// the MANIFEST, so a reopened DB keeps enforcing deadlines for old
// tombstones.
TEST(DeletePersistenceRecoveryTest, TtlStateSurvivesReopen) {
  std::unique_ptr<Env> env(NewMemEnv());
  Options options;
  options.env = env.get();
  options.write_buffer_size = 8 << 10;
  options.delete_persistence_threshold = 5000;
  options.size_ratio = 4;
  DB* db;
  ASSERT_TRUE(DB::Open(options, "/db", &db).ok());

  for (int i = 0; i < 300; i++) {
    ASSERT_TRUE(db->Put(WriteOptions(), "k" + std::to_string(i), "v").ok());
  }
  for (int i = 0; i < 300; i++) {
    ASSERT_TRUE(db->Delete(WriteOptions(), "k" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(db->FlushMemTable().ok());
  delete db;

  ASSERT_TRUE(DB::Open(options, "/db", &db).ok());
  // Churn past the threshold: recovered tombstones must still expire.
  for (int i = 0; i < 12000; i++) {
    ASSERT_TRUE(
        db->Put(WriteOptions(), "new" + std::to_string(i % 400), "x").ok());
  }
  std::string age_str;
  ASSERT_TRUE(db->GetProperty("acheron.max-tombstone-age", &age_str));
  EXPECT_LE(std::stoull(age_str), 5000u + 2);
  delete db;
}

}  // namespace acheron
