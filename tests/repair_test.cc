// RepairDB: resurrecting a database after MANIFEST/CURRENT loss and other
// mishaps, preserving data and the delete-persistence clock.
#include <gtest/gtest.h>

#include <memory>

#include "src/env/env.h"
#include "src/lsm/db.h"
#include "src/wal/log_reader.h"
#include "src/wal/log_writer.h"

namespace acheron {

class RepairTest : public ::testing::Test {
 protected:
  RepairTest() : env_(NewMemEnv()), db_(nullptr) {
    options_.env = env_.get();
    options_.write_buffer_size = 8 << 10;
  }
  ~RepairTest() override { delete db_; }

  Status Open() {
    delete db_;
    db_ = nullptr;
    return DB::Open(options_, "/db", &db_);
  }

  void Close() {
    delete db_;
    db_ = nullptr;
  }

  std::string Get(const std::string& k) {
    std::string v;
    Status s = db_->Get(ReadOptions(), k, &v);
    return s.ok() ? v : (s.IsNotFound() ? "NOT_FOUND" : "ERR:" + s.ToString());
  }

  void RemoveManifestAndCurrent() {
    std::vector<std::string> children;
    ASSERT_TRUE(env_->GetChildren("/db", &children).ok());
    for (const auto& c : children) {
      if (c == "CURRENT" || c.rfind("MANIFEST-", 0) == 0) {
        ASSERT_TRUE(env_->RemoveFile("/db/" + c).ok());
      }
    }
  }

  std::unique_ptr<Env> env_;
  Options options_;
  DB* db_;
};

TEST_F(RepairTest, RecoversFlushedDataWithoutManifest) {
  ASSERT_TRUE(Open().ok());
  for (int i = 0; i < 500; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), "k" + std::to_string(i),
                         "v" + std::to_string(i))
                    .ok());
  }
  ASSERT_TRUE(db_->FlushMemTable().ok());
  Close();
  RemoveManifestAndCurrent();

  // Open (without implicit creation) now fails...
  options_.create_if_missing = false;
  EXPECT_FALSE(Open().ok());
  options_.create_if_missing = true;
  // ...repair brings it back. (NOTE: opening with create_if_missing=true
  // instead would silently create a fresh DB and garbage-collect the
  // orphaned tables -- repair must run first.)
  ASSERT_TRUE(RepairDB("/db", options_).ok());
  ASSERT_TRUE(Open().ok());
  for (int i = 0; i < 500; i++) {
    EXPECT_EQ("v" + std::to_string(i), Get("k" + std::to_string(i))) << i;
  }
}

TEST_F(RepairTest, SalvagesUnflushedWalRecords) {
  ASSERT_TRUE(Open().ok());
  ASSERT_TRUE(db_->Put(WriteOptions(), "flushed", "yes").ok());
  ASSERT_TRUE(db_->FlushMemTable().ok());
  ASSERT_TRUE(db_->Put(WriteOptions(), "wal-only", "salvage-me").ok());
  Close();
  RemoveManifestAndCurrent();

  ASSERT_TRUE(RepairDB("/db", options_).ok());
  ASSERT_TRUE(Open().ok());
  EXPECT_EQ("yes", Get("flushed"));
  EXPECT_EQ("salvage-me", Get("wal-only"));
}

TEST_F(RepairTest, PreservesDeletesAndVersionOrder) {
  ASSERT_TRUE(Open().ok());
  ASSERT_TRUE(db_->Put(WriteOptions(), "a", "old").ok());
  ASSERT_TRUE(db_->FlushMemTable().ok());
  ASSERT_TRUE(db_->Put(WriteOptions(), "a", "new").ok());
  ASSERT_TRUE(db_->Delete(WriteOptions(), "b").ok());
  ASSERT_TRUE(db_->Put(WriteOptions(), "b", "reborn").ok());
  ASSERT_TRUE(db_->FlushMemTable().ok());
  Close();
  RemoveManifestAndCurrent();

  ASSERT_TRUE(RepairDB("/db", options_).ok());
  ASSERT_TRUE(Open().ok());
  // Sequence numbers survived, so versions still resolve correctly.
  EXPECT_EQ("new", Get("a"));
  EXPECT_EQ("reborn", Get("b"));
}

TEST_F(RepairTest, PreservesTombstoneClock) {
  options_.delete_persistence_threshold = 5000;
  ASSERT_TRUE(Open().ok());
  // Base data pushed below L0, so fresh tombstones stay *pending* (they
  // shadow deeper values and cannot be dropped at flush time).
  for (int i = 0; i < 200; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), "k" + std::to_string(i), "v").ok());
  }
  db_->CompactRange(nullptr, nullptr);
  for (int i = 0; i < 50; i++) {
    ASSERT_TRUE(db_->Delete(WriteOptions(), "k" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(db_->FlushMemTable().ok());
  {
    std::string v;
    ASSERT_TRUE(db_->GetProperty("acheron.total-tombstones", &v));
    ASSERT_GT(std::stoull(v), 0u) << "test premise: tombstones pending";
  }
  Close();
  RemoveManifestAndCurrent();

  ASSERT_TRUE(RepairDB("/db", options_).ok());
  ASSERT_TRUE(Open().ok());
  // Repaired metadata still carries the tombstones and their ages...
  std::string v;
  ASSERT_TRUE(db_->GetProperty("acheron.total-tombstones", &v));
  EXPECT_GT(std::stoull(v), 0u);
  // ...and FADE still enforces the bound over continued churn.
  for (int i = 0; i < 12000; i++) {
    ASSERT_TRUE(
        db_->Put(WriteOptions(), "new" + std::to_string(i % 300), "x").ok());
  }
  ASSERT_TRUE(db_->GetProperty("acheron.max-tombstone-age", &v));
  EXPECT_LE(std::stoull(v), 5000u + 2);
}

TEST_F(RepairTest, SkipsCorruptTable) {
  ASSERT_TRUE(Open().ok());
  ASSERT_TRUE(db_->Put(WriteOptions(), "good", "data").ok());
  ASSERT_TRUE(db_->FlushMemTable().ok());
  Close();

  // Corrupt the table file beyond recognition and drop the manifest.
  std::vector<std::string> children;
  ASSERT_TRUE(env_->GetChildren("/db", &children).ok());
  for (const auto& c : children) {
    if (c.size() > 4 && c.substr(c.size() - 4) == ".sst") {
      ASSERT_TRUE(
          env_->WriteStringToFile(std::string(100, 'X'), "/db/" + c).ok());
    }
  }
  RemoveManifestAndCurrent();

  // Repair succeeds (with data loss) and the DB opens empty-but-healthy.
  ASSERT_TRUE(RepairDB("/db", options_).ok());
  ASSERT_TRUE(Open().ok());
  EXPECT_EQ("NOT_FOUND", Get("good"));
  ASSERT_TRUE(db_->Put(WriteOptions(), "fresh", "write").ok());
  EXPECT_EQ("write", Get("fresh"));
}

TEST_F(RepairTest, RepairOfMissingDirectoryFails) {
  EXPECT_FALSE(RepairDB("/nonexistent", options_).ok());
}

TEST_F(RepairTest, RecoversWhenOnlyCurrentIsMissing) {
  ASSERT_TRUE(Open().ok());
  ASSERT_TRUE(db_->Put(WriteOptions(), "k", "v").ok());
  ASSERT_TRUE(db_->FlushMemTable().ok());
  Close();

  // The MANIFEST survives; only the CURRENT pointer is gone (the classic
  // window of a crash between manifest creation and CURRENT repoint).
  ASSERT_TRUE(env_->RemoveFile("/db/CURRENT").ok());
  options_.create_if_missing = false;
  EXPECT_FALSE(Open().ok());

  ASSERT_TRUE(RepairDB("/db", options_).ok());
  ASSERT_TRUE(Open().ok());
  EXPECT_EQ("v", Get("k"));
}

TEST_F(RepairTest, RecoversFromManifestTruncatedMidRecord) {
  ASSERT_TRUE(Open().ok());
  for (int i = 0; i < 100; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), "k" + std::to_string(i), "v").ok());
  }
  ASSERT_TRUE(db_->FlushMemTable().ok());
  Close();

  // Tear the MANIFEST mid-record: keep a prefix that ends inside the last
  // version-edit record (torn metadata write at machine-crash time).
  std::vector<std::string> children;
  ASSERT_TRUE(env_->GetChildren("/db", &children).ok());
  std::string manifest;
  for (const auto& c : children) {
    if (c.rfind("MANIFEST-", 0) == 0) manifest = "/db/" + c;
  }
  ASSERT_FALSE(manifest.empty());
  std::string contents;
  ASSERT_TRUE(env_->ReadFileToString(manifest, &contents).ok());
  ASSERT_GT(contents.size(), 8u);
  ASSERT_TRUE(
      env_->WriteStringToFile(contents.substr(0, contents.size() - 5), manifest)
          .ok());

  ASSERT_TRUE(RepairDB("/db", options_).ok());
  ASSERT_TRUE(Open().ok());
  for (int i = 0; i < 100; i++) {
    EXPECT_EQ("v", Get("k" + std::to_string(i))) << i;
  }
}

namespace {
// True if the "acheron.level-summary" text lists any populated level > 0.
bool HasDeepLevel(const std::string& summary) {
  for (size_t pos = 0; pos < summary.size();) {
    size_t eol = summary.find('\n', pos);
    if (eol == std::string::npos) eol = summary.size();
    if (summary[pos] != '0') return true;
    pos = eol + 1;
  }
  return false;
}
}  // namespace

TEST_F(RepairTest, TornTailSnapshotFallsBackToPreviousSnapshot) {
  // A MANIFEST whose newest snapshot record is torn must repair from the
  // *previous* snapshot plus the edit suffix (bounded tier), not by
  // salvaging every table back into level 0.
  options_.manifest_snapshot_interval = 0;  // keep one manifest all run
  ASSERT_TRUE(Open().ok());
  // Enough volume (vs the 8KiB write buffer) that natural compactions push
  // data below L0; the manual compaction then squashes into that deepest
  // level. (CompactRange on an L0-only tree rewrites L0 in place.)
  for (int i = 0; i < 600; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), "k" + std::to_string(i),
                         "deep" + std::string(100, 'd'))
                    .ok());
  }
  db_->CompactRange(nullptr, nullptr);  // push the base data below L0
  for (int i = 600; i < 650; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), "k" + std::to_string(i), "top").ok());
  }
  ASSERT_TRUE(db_->FlushMemTable().ok());
  {
    std::string premise;
    ASSERT_TRUE(db_->GetProperty("acheron.level-summary", &premise));
    ASSERT_TRUE(HasDeepLevel(premise))
        << "test premise: base data below L0:\n" << premise;
  }
  Close();  // appends the clean-close snapshot as the manifest's tail record

  // Corrupt one byte inside the tail snapshot's body, re-framing the log
  // records so the WAL-layer checksum still passes: only the snapshot's
  // inner CRC can reject it, which is the fallback path under test.
  std::vector<std::string> children;
  ASSERT_TRUE(env_->GetChildren("/db", &children).ok());
  std::string manifest;
  for (const auto& c : children) {
    if (c.rfind("MANIFEST-", 0) == 0) manifest = "/db/" + c;
  }
  ASSERT_FALSE(manifest.empty());
  struct Silent : public wal::Reader::Reporter {
    void Corruption(size_t, const Status&) override {}
  };
  std::vector<std::string> records;
  {
    std::unique_ptr<SequentialFile> f;
    ASSERT_TRUE(env_->NewSequentialFile(manifest, &f).ok());
    Silent rep;
    wal::Reader reader(f.get(), &rep, true);
    std::string scratch;
    Slice rec;
    while (reader.ReadRecord(&rec, &scratch)) records.push_back(rec.ToString());
  }
  ASSERT_GE(records.size(), 2u);  // head snapshot + edits + tail snapshot
  records.back()[records.back().size() / 2] ^= 0x01;
  {
    std::unique_ptr<WritableFile> w;
    ASSERT_TRUE(env_->NewWritableFile(manifest, &w).ok());
    wal::Writer writer(w.get());
    for (const auto& r : records) ASSERT_TRUE(writer.AddRecord(r).ok());
    ASSERT_TRUE(w->Close().ok());
  }
  ASSERT_TRUE(env_->RemoveFile("/db/CURRENT").ok());

  ASSERT_TRUE(RepairDB("/db", options_).ok());
  ASSERT_TRUE(Open().ok());
  for (int i = 0; i < 650; i++) {
    EXPECT_EQ(i < 600 ? "deep" + std::string(100, 'd') : "top",
              Get("k" + std::to_string(i)))
        << i;
  }
  // The bounded tier preserved the level structure: the compacted base
  // data is still below L0. (The salvage tier would have rehomed every
  // table to level 0.)
  std::string summary;
  ASSERT_TRUE(db_->GetProperty("acheron.level-summary", &summary));
  EXPECT_TRUE(HasDeepLevel(summary))
      << "expected a level > 0 after bounded repair:\n" << summary;
}

TEST_F(RepairTest, SalvagesOrphanedTable) {
  // An SSTable that no manifest ever referenced (e.g. a flush output whose
  // version-edit install crashed) must still be picked up by repair.
  ASSERT_TRUE(Open().ok());
  ASSERT_TRUE(db_->Put(WriteOptions(), "tracked", "yes").ok());
  ASSERT_TRUE(db_->FlushMemTable().ok());
  Close();

  // Fabricate the orphan from a scratch DB, then copy its table file in
  // under a file number the victim DB has never allocated.
  {
    Options scratch_opts = options_;
    DB* scratch = nullptr;
    ASSERT_TRUE(DB::Open(scratch_opts, "/scratch", &scratch).ok());
    ASSERT_TRUE(scratch->Put(WriteOptions(), "orphan", "rescued").ok());
    ASSERT_TRUE(scratch->FlushMemTable().ok());
    delete scratch;
    std::vector<std::string> children;
    ASSERT_TRUE(env_->GetChildren("/scratch", &children).ok());
    std::string table;
    for (const auto& c : children) {
      if (c.size() > 4 && c.substr(c.size() - 4) == ".sst") table = c;
    }
    ASSERT_FALSE(table.empty());
    std::string contents;
    ASSERT_TRUE(env_->ReadFileToString("/scratch/" + table, &contents).ok());
    ASSERT_TRUE(env_->WriteStringToFile(contents, "/db/000099.sst").ok());
  }
  RemoveManifestAndCurrent();

  ASSERT_TRUE(RepairDB("/db", options_).ok());
  ASSERT_TRUE(Open().ok());
  EXPECT_EQ("yes", Get("tracked"));
  EXPECT_EQ("rescued", Get("orphan"));
}

}  // namespace acheron
