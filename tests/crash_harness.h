// Shared helpers for the crash-recovery matrix (crash_recovery_test.cc):
// fixed scripted workloads (point-op, range-delete, and key-value-separated
// variants), a per-run wrapper around MemEnv + FaultInjectionEnv, an
// in-memory model of the workload's visible state, and the
// recovery-invariant checks. The invariants the matrix enforces (the five
// point-op ones, "a durable range delete never resurrects a covered key",
// and "an acked write whose value went to the vLog survives restart; a
// persisted delete's value bytes never resurrect") are documented in
// DESIGN.md ("Recovery invariants"); how to run the matrix and read a
// repro line is in TESTING.md.
#ifndef ACHERON_TESTS_CRASH_HARNESS_H_
#define ACHERON_TESTS_CRASH_HARNESS_H_

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "src/env/env.h"
#include "src/env/fault_env.h"
#include "src/lsm/db.h"
#include "src/lsm/write_batch.h"

namespace acheron {
namespace crash {

// Delete-persistence threshold the harness runs with, in logical ops.
constexpr uint64_t kDth = 600;
// Slack on the D_th bound: the deadline check runs at write granularity and
// the triggering write plus the tombstone's own entry land after it.
constexpr uint64_t kDthSlack = 2;

// Separation threshold the key-value-separated workload runs with: values
// of at least this many bytes route through the value log, smaller ones
// stay inline. Chosen well clear of both the workload's small values
// (~16 B) and its separated ones (kVlogValueSize).
constexpr size_t kVlogThreshold = 256;
constexpr size_t kVlogValueSize = 400;

// A deterministic separated-size value: a distinctive tag followed by
// filler up to kVlogValueSize bytes. Byte-for-byte reproducible, so the
// invariant checks can compare exact contents through the pointer
// dereference path.
inline std::string BigValue(const std::string& tag) {
  std::string v = tag;
  v.push_back(':');
  while (v.size() < kVlogValueSize) {
    v.push_back(static_cast<char>('a' + (v.size() % 23)));
  }
  return v;
}

struct Entry {
  bool is_delete = false;
  bool is_range = false;   // range delete [key, end_key)
  std::string key;
  std::string value;    // empty for deletes
  std::string end_key;  // exclusive end for range deletes
};

// One scripted logical operation. A kWrite with several entries is issued
// as a single WriteBatch, i.e. one WAL record (the atomicity unit that
// invariant 2 is checked against).
struct LogicalOp {
  enum Kind { kWrite, kFlush, kCompact };
  Kind kind = kWrite;
  std::vector<Entry> entries;
  bool sync = false;   // WriteOptions::sync for kWrite
  bool acked = false;  // filled in by RunWorkload
};

inline LogicalOp Put(const std::string& k, const std::string& v,
                     bool sync = false) {
  LogicalOp op;
  op.entries.push_back(Entry{false, false, k, v, ""});
  op.sync = sync;
  return op;
}

inline LogicalOp Del(const std::string& k, bool sync = false) {
  LogicalOp op;
  op.entries.push_back(Entry{true, false, k, std::string(), ""});
  op.sync = sync;
  return op;
}

inline LogicalOp RangeDel(const std::string& begin, const std::string& end,
                          bool sync = false) {
  LogicalOp op;
  Entry e;
  e.is_delete = true;
  e.is_range = true;
  e.key = begin;
  e.end_key = end;
  op.entries.push_back(e);
  op.sync = sync;
  return op;
}

inline LogicalOp Flush() {
  LogicalOp op;
  op.kind = LogicalOp::kFlush;
  return op;
}

inline LogicalOp Compact() {
  LogicalOp op;
  op.kind = LogicalOp::kCompact;
  return op;
}

// The fixed workload. It is deterministic by construction (no randomness,
// no wall-clock dependence), which is what makes "crash at file-op k"
// reproducible: the repro line needs only the mode and k. The script walks
// the engine through every structure a crash can tear: WAL-only data,
// synced and unsynced writes, multi-entry batches, flushed L0 tables,
// tombstones shadowing deeper data, re-puts over tombstones, a compaction
// that persists deletes at the bottom level, and an unsynced tail.
inline std::vector<LogicalOp> ScriptedWorkload() {
  std::vector<LogicalOp> ops;
  auto key = [](int i) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "key%03d", i);
    return std::string(buf);
  };

  // Phase 1: base data, ending on a synced write (ack barrier).
  for (int i = 0; i < 18; i++) ops.push_back(Put(key(i), "v1-" + key(i)));
  ops.push_back(Put(key(18), "v1-sync", /*sync=*/true));
  // Phase 2: into L0, then to the bottom of the tree.
  ops.push_back(Flush());
  ops.push_back(Compact());
  // Phase 3: tombstones over the deep data, one batch mixing both kinds.
  for (int i = 0; i < 8; i++) ops.push_back(Del(key(i)));
  {
    LogicalOp batch;  // one WAL record: all-or-nothing after a crash
    batch.entries.push_back(Entry{true, false, key(8), std::string(), ""});
    batch.entries.push_back(Entry{false, false, key(19), "v1-batch", ""});
    batch.entries.push_back(Entry{true, false, key(9), std::string(), ""});
    ops.push_back(batch);
  }
  ops.push_back(Del(key(10), /*sync=*/true));
  // Phase 4: tombstones become L0 tables, then meet their values at the
  // bottom level, where FADE drops them as persisted.
  ops.push_back(Flush());
  for (int i = 5; i < 12; i++) ops.push_back(Put(key(i), "v2-" + key(i)));
  ops.push_back(Put(key(20), "v2-sync", /*sync=*/true));
  ops.push_back(Flush());
  ops.push_back(Compact());
  // Phase 5: an unsynced tail straddling one last ack barrier.
  for (int i = 30; i < 34; i++) ops.push_back(Put(key(i), "tail-" + key(i)));
  ops.push_back(Del(key(11)));
  ops.push_back(Put(key(34), "tail-sync", /*sync=*/true));
  ops.push_back(Put(key(35), "tail-unsynced"));
  ops.push_back(Del(key(12)));
  return ops;
}

// Range-delete variant of the scripted workload: the same phase structure,
// but the tombstones over the deep data are range tombstones, including a
// batch that mixes a put, a range delete, and a point delete in one WAL
// record, a range-only flush, re-puts inside a deleted span, and an
// unsynced range-delete tail. Exercises every structure the kRangeDelete
// path adds: WAL records, memtable range lists, range-tombstone blocks in
// L0, and compactions that persist or carry the ranges.
inline std::vector<LogicalOp> ScriptedRangeDeleteWorkload() {
  std::vector<LogicalOp> ops;
  auto key = [](int i) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "key%03d", i);
    return std::string(buf);
  };

  // Phase 1: base data, ending on a synced write (ack barrier).
  for (int i = 0; i < 18; i++) ops.push_back(Put(key(i), "v1-" + key(i)));
  ops.push_back(Put(key(18), "v1-sync", /*sync=*/true));
  // Phase 2: into L0, then to the bottom of the tree.
  ops.push_back(Flush());
  ops.push_back(Compact());
  // Phase 3: range tombstones over the deep data. One batch mixes a put, a
  // range delete, and a point delete: all-or-nothing after a crash.
  ops.push_back(RangeDel(key(0), key(4)));
  {
    LogicalOp batch;
    batch.entries.push_back(Entry{false, false, key(19), "v1-batch", ""});
    batch.entries.push_back(Entry{true, true, key(4), "", key(7)});
    batch.entries.push_back(Entry{true, false, key(7), "", ""});
    ops.push_back(batch);
  }
  ops.push_back(RangeDel(key(8), key(11), /*sync=*/true));
  // Phase 4: the range tombstones become an L0 table, re-puts land inside
  // a deleted span, and a compaction persists the ranges at the bottom.
  ops.push_back(Flush());
  for (int i = 2; i < 6; i++) ops.push_back(Put(key(i), "v2-" + key(i)));
  ops.push_back(Put(key(20), "v2-sync", /*sync=*/true));
  ops.push_back(Flush());
  ops.push_back(Compact());
  // Phase 5: an unsynced tail straddling one last ack barrier, with range
  // deletes on both sides of it.
  for (int i = 30; i < 33; i++) ops.push_back(Put(key(i), "tail-" + key(i)));
  ops.push_back(RangeDel(key(11), key(14)));
  ops.push_back(Put(key(34), "tail-sync", /*sync=*/true));
  ops.push_back(RangeDel(key(14), key(17)));
  ops.push_back(Put(key(35), "tail-unsynced"));
  return ops;
}

// Key-value-separated variant of the scripted workload (run with
// set_value_separation(kVlogThreshold)): the same phase structure, but most
// values are large enough to route through the value log, so every crash
// point also lands inside vLog appends, syncs, head rotations, seals, and
// -- because phase 4 deliberately sinks segment 1's live ratio below the
// GC floor -- a GC relocation rewriting tables and sealing a relocation
// segment. Exercises every structure key-value separation adds: pointer
// WAL records, pointer memtable entries, pointer-bearing L0/bottom tables,
// sealed segments, the per-segment FADE purge ledger, and the registry
// edits in the MANIFEST.
inline std::vector<LogicalOp> ScriptedVlogWorkload() {
  std::vector<LogicalOp> ops;
  auto key = [](int i) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "key%03d", i);
    return std::string(buf);
  };

  // Phase 1: 12 separated values plus inline ones, ending on a synced
  // separated write (ack barrier). All 13 separated values land in the
  // first vLog head segment.
  for (int i = 0; i < 12; i++) ops.push_back(Put(key(i), BigValue("v1-" + key(i))));
  for (int i = 12; i < 16; i++) ops.push_back(Put(key(i), "v1-small-" + key(i)));
  ops.push_back(Put(key(16), BigValue("v1-sync"), /*sync=*/true));
  // Phase 2: pointers into L0, then the bottom; the flush's memtable swap
  // rotates the vLog head, sealing segment 1.
  ops.push_back(Flush());
  ops.push_back(Compact());
  // Phase 3: tombstones over 11 of the 13 separated values, one batch
  // mixing deletes with an inline put (one WAL record: all-or-nothing),
  // and a synced delete of an inline value.
  for (int i = 0; i < 9; i++) ops.push_back(Del(key(i)));
  {
    LogicalOp batch;
    batch.entries.push_back(Entry{true, false, key(9), std::string(), ""});
    batch.entries.push_back(Entry{false, false, key(17), "v1-batch", ""});
    batch.entries.push_back(Entry{true, false, key(10), std::string(), ""});
    ops.push_back(batch);
  }
  ops.push_back(Del(key(12), /*sync=*/true));
  // Phase 4: the tombstones flush to L0, separated re-puts land over
  // deleted keys (a fresh segment), and the compaction persists the
  // deletes at the bottom -- charging their value bytes as garbage on
  // segment 1, whose live ratio (2 of 13 values) drops below the GC
  // floor. The trailing put+flush drives one more compaction round, and
  // the value-log GC riding it relocates segment 1's live values and
  // counts its pending purges persisted.
  ops.push_back(Flush());
  for (int i = 5; i < 9; i++) ops.push_back(Put(key(i), BigValue("v2-" + key(i))));
  ops.push_back(Put(key(18), BigValue("v2-sync"), /*sync=*/true));
  ops.push_back(Flush());
  ops.push_back(Compact());
  ops.push_back(Put(key(19), "gc-tick"));
  ops.push_back(Flush());
  // Phase 5: an unsynced tail straddling one last ack barrier, with
  // separated values on both sides and a delete of a relocated value.
  ops.push_back(Put(key(30), BigValue("tail-" + key(30))));
  ops.push_back(Del(key(11)));  // its value was just GC-relocated
  ops.push_back(Put(key(31), "tail-small"));
  ops.push_back(Put(key(32), BigValue("tail-sync"), /*sync=*/true));
  ops.push_back(Put(key(33), BigValue("tail-unsynced")));
  ops.push_back(Del(key(5)));
  return ops;
}

// The result of one workload execution against a (possibly crashing) env.
struct RunResult {
  std::vector<LogicalOp> ops;  // acked flags filled in
  // ops[0..durable_lb) are guaranteed durable: every index below the last
  // acked sync-write, and every write issued before an acked flush.
  size_t durable_lb = 0;
  Status open_status;  // initial DB::Open of the workload run
};

// Owns the MemEnv + FaultInjectionEnv pair for one deterministic execution
// of the scripted workload.
class CrashRun {
 public:
  explicit CrashRun(bool background)
      : CrashRun(background, std::unique_ptr<Env>(NewMemEnv()), "/crashdb") {}

  // For shards that crash-simulate against a different base env (e.g. the
  // unbuffered PosixEnv): the caller supplies the base env and a dbname
  // rooted wherever that env can write. The base env must apply Append()
  // immediately (see the FaultInjectionEnv header contract).
  CrashRun(bool background, std::unique_ptr<Env> base, std::string dbname)
      : background_(background),
        dbname_(std::move(dbname)),
        base_(std::move(base)),
        fault_(new FaultInjectionEnv(base_.get())) {}

  FaultInjectionEnv* env() { return fault_.get(); }
  const std::string& dbname() const { return dbname_; }

  // Route group-commit WAL fsyncs through Env::SubmitSync for this run.
  // Safe for the matrix: the harness writes single-threaded, every write is
  // its own group leader, and the leader still blocks on its completion
  // before returning -- so a synced ack implies durability exactly as in
  // the blocking mode, and syncs are numbered at submit time in arrival
  // order, keeping the file-op schedule deterministic.
  void set_async_wal_sync(bool v) { async_wal_sync_ = v; }

  // Replace the default scripted workload (e.g. with
  // ScriptedRangeDeleteWorkload()). Must be called before RunWorkload.
  void set_script(std::vector<LogicalOp> script) {
    script_ = std::move(script);
  }

  // The soft-error matrix (see soft_error_matrix_test.cc) re-enables
  // background retries to exercise the recovery machinery; the crash matrix
  // leaves them off so a crash-boundary IOError stays immediately fatal.
  void set_max_background_retries(int n) { max_background_retries_ = n; }

  // Route values of at least |threshold| bytes through the value log for
  // this run (0, the default, disables separation). Used with
  // ScriptedVlogWorkload() + kVlogThreshold.
  void set_value_separation(size_t threshold) {
    value_separation_ = threshold;
  }

  Options DbOptions() const {
    Options o;
    o.env = fault_.get();
    o.create_if_missing = true;
    // Large enough that the script never swaps the memtable on its own:
    // flush points are explicit, so the file-op schedule is a pure
    // function of the script in both compaction modes.
    o.write_buffer_size = 256 << 10;
    o.background_compactions = background_;
    o.delete_persistence_threshold = kDth;
    o.async_wal_sync = async_wal_sync_;
    // Crash simulation turns the crash boundary into an injected IOError;
    // retrying it would re-run file ops past the boundary and desync the
    // op schedule, so the state machine is disabled by default here.
    o.max_background_retries = max_background_retries_;
    if (value_separation_ > 0) {
      o.value_separation_threshold = value_separation_;
      // The minimum segment size; rotation is flush-driven anyway (the head
      // rotates at every non-empty memtable swap), this just keeps the
      // size-based rotation path armed too.
      o.vlog_segment_size = 64 << 10;
    }
    return o;
  }

  // Executes the scripted workload, arming a crash at absolute file-op
  // index |crash_at| first (crash_at < 0: never crash). Always returns with
  // the DB closed; per-op statuses land in result().
  void RunWorkload(int64_t crash_at) {
    if (crash_at >= 0) fault_->CrashAfterOp(crash_at);
    result_ = RunResult();
    result_.ops = script_;
    DB* db = nullptr;
    result_.open_status = DB::Open(DbOptions(), dbname_, &db);
    if (result_.open_status.ok()) {
      for (size_t i = 0; i < result_.ops.size(); i++) {
        LogicalOp& op = result_.ops[i];
        switch (op.kind) {
          case LogicalOp::kWrite: {
            WriteBatch batch;
            for (const Entry& e : op.entries) {
              if (e.is_range) {
                batch.DeleteRange(e.key, e.end_key);
              } else if (e.is_delete) {
                batch.Delete(e.key);
              } else {
                batch.Put(e.key, e.value);
              }
            }
            WriteOptions w;
            w.sync = op.sync;
            op.acked = db->Write(w, &batch).ok();
            // A synced ack covers the whole WAL prefix, not just this op.
            if (op.acked && op.sync) result_.durable_lb = i + 1;
            break;
          }
          case LogicalOp::kFlush:
            op.acked = db->FlushMemTable().ok();
            // Every write issued before the flush is durable once it acks.
            if (op.acked) {
              result_.durable_lb = std::max(result_.durable_lb, i);
            }
            break;
          case LogicalOp::kCompact:
            // CompactRange is void; it contributes no durability promise.
            db->CompactRange(nullptr, nullptr);
            op.acked = true;
            break;
        }
      }
    }
    // Closing a crashed DB exercises the poisoned-write teardown path; the
    // ops it attempts past the crash point fail and are not part of the
    // enumerated space (FileOpCount is sampled before this in the driver).
    delete db;
  }

  const RunResult& result() const { return result_; }

 private:
  const bool background_;
  bool async_wal_sync_ = false;
  int max_background_retries_ = 0;
  size_t value_separation_ = 0;
  std::vector<LogicalOp> script_ = ScriptedWorkload();
  const std::string dbname_;
  std::unique_ptr<Env> base_;
  std::unique_ptr<FaultInjectionEnv> fault_;
  RunResult result_;
};

// Visible state after applying the first |n| logical ops.
inline std::map<std::string, std::string> ApplyPrefix(
    const std::vector<LogicalOp>& ops, size_t n) {
  std::map<std::string, std::string> m;
  for (size_t i = 0; i < n && i < ops.size(); i++) {
    if (ops[i].kind != LogicalOp::kWrite) continue;
    for (const Entry& e : ops[i].entries) {
      if (e.is_range) {
        m.erase(m.lower_bound(e.key), m.lower_bound(e.end_key));
      } else if (e.is_delete) {
        m.erase(e.key);
      } else {
        m[e.key] = e.value;
      }
    }
  }
  return m;
}

// Full forward scan of |db| into a map. Iterator errors surface as gtest
// failures tagged with |repro|.
inline std::map<std::string, std::string> ScanAll(
    DB* db, const std::string& repro) {
  std::map<std::string, std::string> m;
  std::unique_ptr<Iterator> it(db->NewIterator(ReadOptions()));
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    m[it->key().ToString()] = it->value().ToString();
  }
  EXPECT_TRUE(it->status().ok())
      << repro << " iterator error: " << it->status().ToString();
  return m;
}

inline std::string DescribeState(const std::map<std::string, std::string>& m) {
  std::ostringstream out;
  out << m.size() << " keys {";
  for (const auto& kv : m) out << " " << kv.first;
  out << " }";
  return out.str();
}

// Invariants 1-3: the recovered visible state must equal the model replayed
// to some prefix N with durable_lb <= N <= ops issued (1: nothing acked
// durable is missing; 2: unacked writes are all-or-nothing per WAL record);
// Get must agree with the iterator for every key the workload touched; and
// the state must survive a forced full compaction unchanged (3: persisted
// tombstones never resurrect their values). Reports via gtest, prefixed
// with |repro|.
inline void CheckRecoveredState(DB* db, const RunResult& run,
                                const std::string& repro) {
  const std::map<std::string, std::string> scan = ScanAll(db, repro);

  bool prefix_found = false;
  size_t matched_n = 0;
  for (size_t n = run.durable_lb; n <= run.ops.size(); n++) {
    if (ApplyPrefix(run.ops, n) == scan) {
      prefix_found = true;
      matched_n = n;
      break;
    }
  }
  EXPECT_TRUE(prefix_found)
      << repro << " recovered state is not a workload prefix >= durable_lb="
      << run.durable_lb << "; got " << DescribeState(scan)
      << " want-at-least " << DescribeState(ApplyPrefix(run.ops, run.durable_lb));
  if (!prefix_found) return;

  // Get/iterator agreement over every key the workload ever touched.
  for (const LogicalOp& op : run.ops) {
    for (const Entry& e : op.entries) {
      std::string v;
      Status s = db->Get(ReadOptions(), e.key, &v);
      auto it = scan.find(e.key);
      if (it == scan.end()) {
        EXPECT_TRUE(s.IsNotFound())
            << repro << " Get(" << e.key << ") disagrees with scan: expected "
            << "NotFound, got " << (s.ok() ? "value " + v : s.ToString());
      } else {
        EXPECT_TRUE(s.ok() && v == it->second)
            << repro << " Get(" << e.key << ") disagrees with scan: expected "
            << it->second << ", got " << (s.ok() ? v : s.ToString());
      }
    }
  }

  // Invariant 3, stated directly: a key whose delete is inside the durable
  // prefix and never re-put afterwards in the matched prefix must be gone.
  // For range deletes the same statement quantifies over every key the
  // workload ever wrote inside [begin, end): a durable range delete never
  // resurrects a covered key.
  const std::map<std::string, std::string> durable_state =
      ApplyPrefix(run.ops, matched_n);
  std::set<std::string> written_keys;
  for (const LogicalOp& op : run.ops) {
    for (const Entry& e : op.entries) {
      if (!e.is_delete) written_keys.insert(e.key);
    }
  }
  for (size_t i = 0; i < run.durable_lb; i++) {
    for (const Entry& e : run.ops[i].entries) {
      if (!e.is_delete) continue;
      if (e.is_range) {
        for (auto it = written_keys.lower_bound(e.key);
             it != written_keys.end() && *it < e.end_key; ++it) {
          if (durable_state.count(*it)) continue;  // re-put later
          std::string v;
          EXPECT_TRUE(db->Get(ReadOptions(), *it, &v).IsNotFound())
              << repro << " durable range delete [" << e.key << ","
              << e.end_key << ") resurrected covered key " << *it;
        }
        continue;
      }
      if (durable_state.count(e.key)) continue;  // re-put later
      std::string v;
      EXPECT_TRUE(db->Get(ReadOptions(), e.key, &v).IsNotFound())
          << repro << " acked-durable delete of " << e.key
          << " resurrected after recovery";
    }
  }

  // ...and after forcing every tombstone through the tree: a full
  // compaction must not change the visible state.
  db->CompactRange(nullptr, nullptr);
  const std::map<std::string, std::string> after = ScanAll(db, repro);
  EXPECT_EQ(scan, after)
      << repro << " visible state changed across a full compaction: before "
      << DescribeState(scan) << " after " << DescribeState(after);
}

// Invariant 4: the FADE bound survives the restart. Churns 2.5 * D_th
// fresh inserts through the recovered DB and asserts no live tombstone's
// age exceeds D_th (+slack) -- i.e. the tombstone-age clock reconstructed
// from table metadata still drives timely persistence.
inline void CheckDeletePersistenceBound(DB* db, const std::string& repro) {
  for (uint64_t i = 0; i < kDth * 5 / 2; i++) {
    ASSERT_TRUE(
        db->Put(WriteOptions(), "churn" + std::to_string(i % 400), "x").ok())
        << repro << " churn write " << i << " failed";
  }
  ASSERT_TRUE(db->WaitForCompactions().ok()) << repro;
  std::string v;
  ASSERT_TRUE(db->GetProperty("acheron.max-tombstone-age", &v)) << repro;
  EXPECT_LE(std::stoull(v), kDth + kDthSlack)
      << repro << " FADE D_th bound violated after restart";
}

// Invariant 7 (key-value-separated runs): an acked write whose value went
// to the value log survives restart byte-for-byte, and a persisted
// delete's value bytes never resurrect -- neither at reopen nor after the
// compaction + value-log GC machinery runs over the recovered tree.
// CheckRecoveredState already proves the visible state is a consistent
// workload prefix (dereferencing every pointer along the way); this states
// the vLog half directly, pinned to keys whose outcome is prefix-
// independent: if every op touching a key lies inside the durable prefix,
// the last of them fixes the key's state no matter which prefix recovery
// matched.
inline void CheckVlogRecoveredState(DB* db, const RunResult& run,
                                    const std::string& repro) {
  std::string prop;
  EXPECT_TRUE(db->GetProperty("acheron.vlog-stats", &prop))
      << repro << " vlog-stats property missing after recovery";

  std::map<std::string, const Entry*> final_durable_op;
  std::set<std::string> touched_after_lb;
  for (size_t i = 0; i < run.ops.size(); i++) {
    for (const Entry& e : run.ops[i].entries) {
      if (e.is_range) continue;  // the vLog script is point-op only
      if (i < run.durable_lb) {
        final_durable_op[e.key] = &e;
      } else {
        touched_after_lb.insert(e.key);
      }
    }
  }
  auto check = [&](const char* when) {
    for (const auto& kv : final_durable_op) {
      if (touched_after_lb.count(kv.first)) continue;
      std::string v;
      Status s = db->Get(ReadOptions(), kv.first, &v);
      if (kv.second->is_delete) {
        EXPECT_TRUE(s.IsNotFound())
            << repro << " " << when << ": durable delete of " << kv.first
            << " resurrected (value bytes came back: "
            << (s.ok() ? std::to_string(v.size()) + "B" : s.ToString())
            << ")";
      } else {
        EXPECT_TRUE(s.ok() && v == kv.second->value)
            << repro << " " << when << ": durable value of " << kv.first
            << " did not survive ("
            << (s.ok() ? "bytes differ, got " + std::to_string(v.size()) +
                             "B want " +
                             std::to_string(kv.second->value.size()) + "B"
                       : s.ToString())
            << ")";
      }
    }
  };
  check("at reopen");
  // ...and after the persistence machinery runs over the recovered tree:
  // compactions persist the tombstones and the value-log GC purges or
  // relocates their value bytes; neither may disturb a live value or
  // resurrect a purged one.
  db->CompactRange(nullptr, nullptr);
  ASSERT_TRUE(db->WaitForCompactions().ok()) << repro;
  check("after compaction+GC");
}

}  // namespace crash
}  // namespace acheron

#endif  // ACHERON_TESTS_CRASH_HARNESS_H_
