#include "src/util/coding.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/util/random.h"

namespace acheron {

TEST(Coding, Fixed32) {
  std::string s;
  for (uint32_t v = 0; v < 100000; v++) {
    PutFixed32(&s, v);
  }
  const char* p = s.data();
  for (uint32_t v = 0; v < 100000; v++) {
    uint32_t actual = DecodeFixed32(p);
    EXPECT_EQ(v, actual);
    p += sizeof(uint32_t);
  }
}

TEST(Coding, Fixed64) {
  std::string s;
  for (int power = 0; power <= 63; power++) {
    uint64_t v = static_cast<uint64_t>(1) << power;
    PutFixed64(&s, v - 1);
    PutFixed64(&s, v + 0);
    PutFixed64(&s, v + 1);
  }
  const char* p = s.data();
  for (int power = 0; power <= 63; power++) {
    uint64_t v = static_cast<uint64_t>(1) << power;
    EXPECT_EQ(v - 1, DecodeFixed64(p));
    p += sizeof(uint64_t);
    EXPECT_EQ(v + 0, DecodeFixed64(p));
    p += sizeof(uint64_t);
    EXPECT_EQ(v + 1, DecodeFixed64(p));
    p += sizeof(uint64_t);
  }
}

TEST(Coding, EncodingOutputIsLittleEndian) {
  std::string dst;
  PutFixed32(&dst, 0x04030201);
  ASSERT_EQ(4u, dst.size());
  EXPECT_EQ(0x01, static_cast<int>(dst[0]));
  EXPECT_EQ(0x02, static_cast<int>(dst[1]));
  EXPECT_EQ(0x03, static_cast<int>(dst[2]));
  EXPECT_EQ(0x04, static_cast<int>(dst[3]));
}

TEST(Coding, Varint32) {
  std::string s;
  for (uint32_t i = 0; i < (32 * 32); i++) {
    uint32_t v = (i / 32) << (i % 32);
    PutVarint32(&s, v);
  }

  const char* p = s.data();
  const char* limit = p + s.size();
  for (uint32_t i = 0; i < (32 * 32); i++) {
    uint32_t expected = (i / 32) << (i % 32);
    uint32_t actual;
    const char* start = p;
    p = GetVarint32Ptr(p, limit, &actual);
    ASSERT_TRUE(p != nullptr);
    EXPECT_EQ(expected, actual);
    EXPECT_EQ(VarintLength(actual), p - start);
  }
  EXPECT_EQ(p, s.data() + s.size());
}

TEST(Coding, Varint64) {
  // Construct the list of values to check.
  std::vector<uint64_t> values;
  values.push_back(0);
  values.push_back(100);
  values.push_back(~static_cast<uint64_t>(0));
  values.push_back(~static_cast<uint64_t>(0) - 1);
  for (uint32_t k = 0; k < 64; k++) {
    // Test values near powers of two.
    const uint64_t power = 1ull << k;
    values.push_back(power);
    values.push_back(power - 1);
    values.push_back(power + 1);
  }

  std::string s;
  for (size_t i = 0; i < values.size(); i++) {
    PutVarint64(&s, values[i]);
  }

  const char* p = s.data();
  const char* limit = p + s.size();
  for (size_t i = 0; i < values.size(); i++) {
    ASSERT_TRUE(p < limit);
    uint64_t actual;
    const char* start = p;
    p = GetVarint64Ptr(p, limit, &actual);
    ASSERT_TRUE(p != nullptr);
    EXPECT_EQ(values[i], actual);
    EXPECT_EQ(VarintLength(actual), p - start);
  }
  EXPECT_EQ(p, limit);
}

TEST(Coding, Varint32Overflow) {
  uint32_t result;
  std::string input("\x81\x82\x83\x84\x85\x11");
  EXPECT_TRUE(GetVarint32Ptr(input.data(), input.data() + input.size(),
                             &result) == nullptr);
}

TEST(Coding, Varint32Truncation) {
  uint32_t large_value = (1u << 31) + 100;
  std::string s;
  PutVarint32(&s, large_value);
  uint32_t result;
  for (size_t len = 0; len < s.size() - 1; len++) {
    EXPECT_TRUE(GetVarint32Ptr(s.data(), s.data() + len, &result) == nullptr);
  }
  EXPECT_TRUE(GetVarint32Ptr(s.data(), s.data() + s.size(), &result) !=
              nullptr);
  EXPECT_EQ(large_value, result);
}

TEST(Coding, Varint64Overflow) {
  uint64_t result;
  std::string input("\x81\x82\x83\x84\x85\x81\x82\x83\x84\x85\x11");
  EXPECT_TRUE(GetVarint64Ptr(input.data(), input.data() + input.size(),
                             &result) == nullptr);
}

TEST(Coding, Strings) {
  std::string s;
  PutLengthPrefixedSlice(&s, Slice(""));
  PutLengthPrefixedSlice(&s, Slice("foo"));
  PutLengthPrefixedSlice(&s, Slice("bar"));
  PutLengthPrefixedSlice(&s, Slice(std::string(200, 'x')));

  Slice input(s);
  Slice v;
  ASSERT_TRUE(GetLengthPrefixedSlice(&input, &v));
  EXPECT_EQ("", v.ToString());
  ASSERT_TRUE(GetLengthPrefixedSlice(&input, &v));
  EXPECT_EQ("foo", v.ToString());
  ASSERT_TRUE(GetLengthPrefixedSlice(&input, &v));
  EXPECT_EQ("bar", v.ToString());
  ASSERT_TRUE(GetLengthPrefixedSlice(&input, &v));
  EXPECT_EQ(std::string(200, 'x'), v.ToString());
  EXPECT_TRUE(input.empty());
}

TEST(Coding, GetFixedConsumesInput) {
  std::string s;
  PutFixed32(&s, 0xdeadbeef);
  PutFixed64(&s, 0x0123456789abcdefull);
  Slice in(s);
  uint32_t v32;
  uint64_t v64;
  ASSERT_TRUE(GetFixed32(&in, &v32));
  EXPECT_EQ(0xdeadbeefu, v32);
  ASSERT_TRUE(GetFixed64(&in, &v64));
  EXPECT_EQ(0x0123456789abcdefull, v64);
  EXPECT_TRUE(in.empty());
  EXPECT_FALSE(GetFixed32(&in, &v32));
  EXPECT_FALSE(GetFixed64(&in, &v64));
}

// Property: random round-trips through varint64 always reproduce the value.
class CodingRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CodingRoundTrip, Varint64RandomRoundTrip) {
  Random rnd(GetParam());
  std::string s;
  std::vector<uint64_t> values;
  for (int i = 0; i < 1000; i++) {
    uint64_t v = rnd.Skewed(63);
    values.push_back(v);
    PutVarint64(&s, v);
  }
  Slice in(s);
  for (uint64_t expected : values) {
    uint64_t got;
    ASSERT_TRUE(GetVarint64(&in, &got));
    EXPECT_EQ(expected, got);
  }
  EXPECT_TRUE(in.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodingRoundTrip,
                         ::testing::Values(1, 7, 42, 12345, 987654321));

}  // namespace acheron
