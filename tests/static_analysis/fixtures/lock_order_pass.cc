// acheron-check fixture: lock-order, must PASS.
//
// Outer::mu_ is declared before Inner::mu_ in fixtures/lock_order.txt, and
// the only nesting here acquires them in exactly that order (Outer::Run
// holds its lock across a call into Inner::Touch).

struct Mutex {
  void Lock();
  void Unlock();
};

struct MutexLock {
  explicit MutexLock(Mutex* mu);
};

class Inner {
 public:
  void Touch() {
    MutexLock l(&mu_);
    count_ = count_ + 1;
  }

 private:
  Mutex mu_;
  int count_ = 0;
};

class Outer {
 public:
  void Run() {
    MutexLock l(&mu_);
    inner_->Touch();
  }

 private:
  Mutex mu_;
  Inner* inner_ = nullptr;
};
