// acheron-check fixture: sync-before-install with async durability,
// must FAIL.
//
// FlushTable creates a table output file and submits its fsync through
// Env::SubmitSync, but installs the version edit via LogAndApply while
// the fsync is still in flight -- the WaitFor only happens afterwards.
// A crash between the manifest write and the fsync completion would
// leave a durable version pointing at a torn table: submitting is not
// syncing.

struct Status {
  static Status OK();
  bool ok() const;
};

struct WritableFile {
  Status Flush();
  Status SyncDurable();
  Status Close();
};

struct SyncRequest {
  WritableFile* file = nullptr;
  Status status;
};

struct CompletionQueue {
  void WaitFor(unsigned long n);
};

struct Env {
  Status NewWritableFile(const char* fname, WritableFile** file);
  void SubmitSync(SyncRequest* req, CompletionQueue* cq);
};

const char* TableFileName(int number);

class VersionSetStub {
 public:
  Status LogAndApply(int edit);
};

class AsyncFlusher {
 public:
  Status FlushTable() {
    WritableFile* file = nullptr;
    Status s = env_->NewWritableFile(TableFileName(7), &file);
    if (s.ok()) {
      s = file->Flush();
    }
    SyncRequest req;
    CompletionQueue cq;
    if (s.ok()) {
      req.file = file;
      env_->SubmitSync(&req, &cq);
      s = versions_->LogAndApply(0);  // installs while the fsync is in flight
      cq.WaitFor(1);                  // too late: manifest already durable
    }
    return s;
  }

 private:
  Env* env_ = nullptr;
  VersionSetStub* versions_ = nullptr;
};
