// acheron-check fixture: atomic-ordering, must FAIL.
//
// Three violations: an implicit-seq_cst store (no memory order argument),
// a pointer-publication store that is not release, and operator sugar on
// an atomic counter.

#include <atomic>

struct ReadState {
  int sequence;
};

class Publisher {
 public:
  void BadImplicit(ReadState* next) {
    state_.store(next);  // implicit seq_cst: ordering must be stated
  }

  void BadRelaxedPublish(ReadState* next) {
    state_.store(next, std::memory_order_relaxed);  // must be release
  }

  void BadSugar() {
    hits_++;  // operator sugar is an implicit seq_cst RMW
  }

 private:
  std::atomic<ReadState*> state_{nullptr};
  std::atomic<unsigned long> hits_{0};
};
