// acheron-check fixture: sync-before-install over vLog outputs, must FAIL.
//
// SealSegment creates a vLog segment file and installs the registry edit
// without ever calling WritableFile::Sync: a crash after LogAndApply's
// manifest write would leave a durable registry entry -- and durable LSM
// pointers -- naming value bytes that never reached disk.

struct Status {
  static Status OK();
  bool ok() const;
};

struct WritableFile {
  Status Sync();
  Status Close();
};

struct Env {
  Status NewWritableFile(const char* fname, WritableFile** file);
};

const char* VlogFileName(int number);

class VersionSetStub {
 public:
  Status LogAndApply(int edit);
};

class VlogGc {
 public:
  Status SealSegment() {
    WritableFile* file = nullptr;
    Status s = env_->NewWritableFile(VlogFileName(11), &file);
    if (s.ok()) {
      s = file->Close();  // closed but never synced
    }
    if (s.ok()) {
      s = versions_->LogAndApply(0);  // installs dangling value pointers
    }
    return s;
  }

 private:
  Env* env_ = nullptr;
  VersionSetStub* versions_ = nullptr;
};
