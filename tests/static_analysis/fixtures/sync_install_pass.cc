// acheron-check fixture: sync-before-install, must PASS.
//
// FlushTable creates a table output file (NewWritableFile on a
// TableFileName), Syncs it, and only then installs the version edit via
// LogAndApply -- the PR-3 crash-matrix invariant, in miniature.

struct Status {
  static Status OK();
  bool ok() const;
};

struct WritableFile {
  Status Sync();
  Status Close();
};

struct Env {
  Status NewWritableFile(const char* fname, WritableFile** file);
};

const char* TableFileName(int number);

class VersionSetStub {
 public:
  Status LogAndApply(int edit);
};

class Flusher {
 public:
  Status FlushTable() {
    WritableFile* file = nullptr;
    Status s = env_->NewWritableFile(TableFileName(7), &file);
    if (s.ok()) {
      s = file->Sync();  // durable before the manifest references it
    }
    if (s.ok()) {
      s = versions_->LogAndApply(0);
    }
    return s;
  }

 private:
  Env* env_ = nullptr;
  VersionSetStub* versions_ = nullptr;
};
