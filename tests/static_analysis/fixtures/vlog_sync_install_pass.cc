// acheron-check fixture: sync-before-install over vLog outputs, must PASS.
//
// SealSegment creates a vLog segment file (NewWritableFile on a
// VlogFileName), Syncs it, and only then installs the registry edit via
// LogAndApply -- the PR-10 invariant: a "sealed" registry entry always
// describes durable value bytes, so no installed pointer can dangle.

struct Status {
  static Status OK();
  bool ok() const;
};

struct WritableFile {
  Status Sync();
  Status Close();
};

struct Env {
  Status NewWritableFile(const char* fname, WritableFile** file);
};

const char* VlogFileName(int number);

class VersionSetStub {
 public:
  Status LogAndApply(int edit);
};

class VlogGc {
 public:
  Status SealSegment() {
    WritableFile* file = nullptr;
    Status s = env_->NewWritableFile(VlogFileName(11), &file);
    if (s.ok()) {
      s = file->Sync();  // value bytes durable before pointers install
    }
    if (s.ok()) {
      s = file->Close();
    }
    if (s.ok()) {
      s = versions_->LogAndApply(0);
    }
    return s;
  }

 private:
  Env* env_ = nullptr;
  VersionSetStub* versions_ = nullptr;
};
