// acheron-check fixture: io-marker, must PASS.
//
// Every Env call carries an `// io:` marker -- same line, the line above,
// or the top of a contiguous comment block -- and one site demonstrates
// the justification-comment suppression syntax.

struct Status {
  static Status OK();
  bool ok() const;
};

struct Env {
  Status RemoveFile(const char* fname);
  Status GetChildren(const char* dir, int* out);
};

class Sweeper {
 public:
  void Sweep() {
    (void)env_->RemoveFile("000001.ldb");  // io: unlocked

    // io: unlocked -- batch cleanup happens after the DB mutex is
    // released, so this multi-line comment block covers the call below.
    (void)env_->RemoveFile("000002.ldb");

    // acheron: allow(io-marker) -- fixture demonstrates suppression
    (void)env_->GetChildren("db", nullptr);
  }

 private:
  Env* env_ = nullptr;
};
