// acheron-check fixture: sync-before-install, must FAIL.
//
// FlushTable creates a table output file and installs the version edit
// without ever calling WritableFile::Sync: a crash after LogAndApply's
// manifest write would leave a durable version pointing at a torn table.

struct Status {
  static Status OK();
  bool ok() const;
};

struct WritableFile {
  Status Sync();
  Status Close();
};

struct Env {
  Status NewWritableFile(const char* fname, WritableFile** file);
};

const char* TableFileName(int number);

class VersionSetStub {
 public:
  Status LogAndApply(int edit);
};

class Flusher {
 public:
  Status FlushTable() {
    WritableFile* file = nullptr;
    Status s = env_->NewWritableFile(TableFileName(7), &file);
    if (s.ok()) {
      s = file->Close();  // closed but never synced
    }
    if (s.ok()) {
      s = versions_->LogAndApply(0);  // installs a possibly-torn table
    }
    return s;
  }

 private:
  Env* env_ = nullptr;
  VersionSetStub* versions_ = nullptr;
};
