// acheron-check fixture: guarded-by coverage ratchet, must FAIL.
//
// Ledger owns a Mutex but its mutable member balance_ is neither
// GUARDED_BY, atomic, const, nor on the baseline allowlist.

#include <atomic>

#define GUARDED_BY(x) __attribute__((guarded_by(x)))

struct Mutex {
  void Lock();
  void Unlock();
};

class Ledger {
 public:
  void Credit();

 private:
  Mutex mu_;
  int count_ GUARDED_BY(mu_);
  int balance_;  // unguarded and not baselined: the ratchet must reject it
};
