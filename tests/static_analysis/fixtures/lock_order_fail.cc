// acheron-check fixture: lock-order, must FAIL.
//
// fixtures/lock_order.txt declares Engine::outer_mu_ before
// Engine::inner_mu_; Bad() acquires them in the opposite order, which is
// exactly the deadlock-shaped edge the checker exists to reject.

struct Mutex {
  void Lock();
  void Unlock();
};

struct MutexLock {
  explicit MutexLock(Mutex* mu);
};

class Engine {
 public:
  void Good() {
    MutexLock l(&outer_mu_);
    MutexLock l2(&inner_mu_);
  }

  void Bad() {
    MutexLock l(&inner_mu_);
    MutexLock l2(&outer_mu_);  // violates the declared order
  }

 private:
  Mutex outer_mu_;
  Mutex inner_mu_;
};
