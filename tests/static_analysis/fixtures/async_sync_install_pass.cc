// acheron-check fixture: sync-before-install with async durability,
// must PASS.
//
// FlushTable creates a table output file, submits its fsync through
// Env::SubmitSync, and WAITS on the completion queue before installing
// the version edit via LogAndApply. The completed SubmitSync/WaitFor
// pair is the async equivalent of WritableFile::Sync, so the PR-3
// invariant holds.

struct Status {
  static Status OK();
  bool ok() const;
};

struct WritableFile {
  Status Flush();
  Status SyncDurable();
  Status Close();
};

struct SyncRequest {
  WritableFile* file = nullptr;
  Status status;
};

struct CompletionQueue {
  void WaitFor(unsigned long n);
};

struct Env {
  Status NewWritableFile(const char* fname, WritableFile** file);
  void SubmitSync(SyncRequest* req, CompletionQueue* cq);
};

const char* TableFileName(int number);

class VersionSetStub {
 public:
  Status LogAndApply(int edit);
};

class AsyncFlusher {
 public:
  Status FlushTable() {
    WritableFile* file = nullptr;
    Status s = env_->NewWritableFile(TableFileName(7), &file);
    if (s.ok()) {
      s = file->Flush();  // SubmitSync contract: buffers on disk first
    }
    SyncRequest req;
    CompletionQueue cq;
    if (s.ok()) {
      req.file = file;
      env_->SubmitSync(&req, &cq);
      cq.WaitFor(1);  // fsync completed: table durable before install
      s = req.status;
    }
    if (s.ok()) {
      s = versions_->LogAndApply(0);
    }
    return s;
  }

 private:
  Env* env_ = nullptr;
  VersionSetStub* versions_ = nullptr;
};
