// acheron-check fixture: atomic-ordering, must PASS.
//
// Every atomic access states its memory order, and the pointer-publication
// member (state_) pairs release stores with acquire loads -- the ReadState
// protocol from src/lsm/db_impl.h.

#include <atomic>

struct ReadState {
  int sequence;
};

class Publisher {
 public:
  void Publish(ReadState* next) {
    state_.store(next, std::memory_order_release);
  }

  ReadState* Snapshot() {
    return state_.load(std::memory_order_acquire);
  }

  void CountHit() {
    hits_.fetch_add(1, std::memory_order_relaxed);
  }

  unsigned long Hits() {
    return hits_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<ReadState*> state_{nullptr};
  std::atomic<unsigned long> hits_{0};
};
