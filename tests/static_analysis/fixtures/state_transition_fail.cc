// acheron-check fixture: state-transition, must FAIL.
//
// Two seeded violations: WatcherWork calls TryResumeFromNoSpace with no
// lock held at all, and WriterWork drops mutex_ for an IO window and then
// records the background error BEFORE re-acquiring -- the transition races
// with any concurrent reader of the error state.

#define EXCLUSIVE_LOCKS_REQUIRED(x) __attribute__((exclusive_locks_required(x)))

struct Status {
  bool ok() const;
};

struct Mutex {
  void Lock();
  void Unlock();
};

class MutexLock {
 public:
  explicit MutexLock(Mutex* mu);
  ~MutexLock();
};

class EngineImpl {
 public:
  void WatcherWork();
  void WriterWork() EXCLUSIVE_LOCKS_REQUIRED(mutex_);

 private:
  void RecordBackgroundError(const Status& s, int subsystem)
      EXCLUSIVE_LOCKS_REQUIRED(mutex_);
  Status TryResumeFromNoSpace() EXCLUSIVE_LOCKS_REQUIRED(mutex_);

  void DoUnlockedIo();

  Mutex mutex_;
};

void EngineImpl::WatcherWork() {
  Status s = TryResumeFromNoSpace();  // no lock held: must be flagged
  (void)s;
}

void EngineImpl::WriterWork() {
  mutex_.Unlock();
  DoUnlockedIo();
  RecordBackgroundError(Status(), 1);  // still unlocked: must be flagged
  mutex_.Lock();
}
