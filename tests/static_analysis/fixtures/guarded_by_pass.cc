// acheron-check fixture: guarded-by coverage ratchet, must PASS.
//
// Registry owns a Mutex, so every mutable member must be GUARDED_BY,
// atomic, or const -- except legacy_, which is carried by an entry in
// fixtures/guarded_by_baseline.txt (with a reason).

#include <atomic>

#define GUARDED_BY(x) __attribute__((guarded_by(x)))

struct Mutex {
  void Lock();
  void Unlock();
};

class Registry {
 public:
  void Bump();

 private:
  Mutex mu_;
  int count_ GUARDED_BY(mu_);
  std::atomic<int> hits_{0};
  const int limit_ = 3;
  int legacy_;  // unguarded by design; listed in the fixture baseline
};
