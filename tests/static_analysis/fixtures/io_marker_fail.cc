// acheron-check fixture: io-marker, must FAIL.
//
// The Env call below carries no `// io:` marker, so a reader cannot tell
// which side of the DB mutex the I/O runs on.

struct Status {
  static Status OK();
  bool ok() const;
};

struct Env {
  Status RemoveFile(const char* fname);
};

class Sweeper {
 public:
  void Sweep() {
    (void)env_->RemoveFile("000001.ldb");
  }

 private:
  Env* env_ = nullptr;
};
