// acheron-check fixture: state-transition, must PASS.
//
// Every call into the background-error state machine holds mutex_: the
// flush path is annotated EXCLUSIVE_LOCKS_REQUIRED (held on entry), the
// watcher takes a scoped MutexLock, and the writer re-acquires the mutex
// after its unlocked IO window before recording. The transition functions
// themselves carry the annotation on their declarations.

#define EXCLUSIVE_LOCKS_REQUIRED(x) __attribute__((exclusive_locks_required(x)))

struct Status {
  bool ok() const;
};

struct Mutex {
  void Lock();
  void Unlock();
};

class MutexLock {
 public:
  explicit MutexLock(Mutex* mu);
  ~MutexLock();
};

class EngineImpl {
 public:
  void FlushWork() EXCLUSIVE_LOCKS_REQUIRED(mutex_);
  void WatcherWork();
  void WriterWork() EXCLUSIVE_LOCKS_REQUIRED(mutex_);

 private:
  void RecordBackgroundError(const Status& s, int subsystem)
      EXCLUSIVE_LOCKS_REQUIRED(mutex_);
  void ClearBackgroundError() EXCLUSIVE_LOCKS_REQUIRED(mutex_);
  Status TryResumeFromNoSpace() EXCLUSIVE_LOCKS_REQUIRED(mutex_);

  Status DoFlush();
  void DoUnlockedIo();

  Mutex mutex_;
};

void EngineImpl::FlushWork() {
  Status s = DoFlush();
  if (!s.ok()) {
    RecordBackgroundError(s, 0);  // mutex_ held on entry (annotation)
  }
}

void EngineImpl::WatcherWork() {
  MutexLock l(&mutex_);
  Status s = TryResumeFromNoSpace();  // mutex_ held via scoped lock
  if (s.ok()) {
    ClearBackgroundError();
  }
}

void EngineImpl::WriterWork() {
  mutex_.Unlock();
  DoUnlockedIo();
  mutex_.Lock();
  // Re-acquired after the IO window: the transition is safe again.
  RecordBackgroundError(Status(), 1);
}
