#include "src/workload/trace.h"

#include <gtest/gtest.h>

#include <memory>

namespace acheron {
namespace workload {

class TraceTest : public ::testing::Test {
 protected:
  TraceTest() : env_(NewMemEnv()) {}
  std::unique_ptr<Env> env_;
};

TEST_F(TraceTest, RoundTrip) {
  WorkloadSpec spec;
  spec.seed = 77;
  spec.update_percent = 25;
  spec.delete_percent = 25;
  spec.point_query_percent = 20;
  spec.range_query_percent = 10;

  Generator gen(spec);
  ASSERT_TRUE(RecordTrace(env_.get(), "/trace", &gen, 5000).ok());

  // Replay must be bit-identical to a fresh generator with the same spec.
  Generator expected(spec);
  std::unique_ptr<TraceReader> reader;
  ASSERT_TRUE(TraceReader::Open(env_.get(), "/trace", &reader).ok());
  Op got;
  for (int i = 0; i < 5000; i++) {
    Op want = expected.Next();
    ASSERT_TRUE(reader->Next(&got)) << "op " << i;
    EXPECT_EQ(static_cast<int>(want.type), static_cast<int>(got.type));
    EXPECT_EQ(want.key, got.key);
    EXPECT_EQ(want.value, got.value);
    EXPECT_EQ(want.scan_length, got.scan_length);
  }
  EXPECT_FALSE(reader->Next(&got));
  EXPECT_TRUE(reader->status().ok());
}

TEST_F(TraceTest, EmptyTrace) {
  WorkloadSpec spec;
  Generator gen(spec);
  ASSERT_TRUE(RecordTrace(env_.get(), "/empty", &gen, 0).ok());
  std::unique_ptr<TraceReader> reader;
  ASSERT_TRUE(TraceReader::Open(env_.get(), "/empty", &reader).ok());
  Op op;
  EXPECT_FALSE(reader->Next(&op));
  EXPECT_TRUE(reader->status().ok());
}

TEST_F(TraceTest, OpenMissingFileFails) {
  std::unique_ptr<TraceReader> reader;
  EXPECT_FALSE(TraceReader::Open(env_.get(), "/nope", &reader).ok());
}

TEST_F(TraceTest, BinaryKeysAndValuesSurvive) {
  std::unique_ptr<TraceWriter> writer;
  ASSERT_TRUE(TraceWriter::Open(env_.get(), "/bin", &writer).ok());
  Op op;
  op.type = OpType::kInsert;
  op.key = std::string("k\0\xff\x01", 4);
  op.value = std::string(1000, '\0');
  op.scan_length = 12345;
  ASSERT_TRUE(writer->Append(op).ok());
  ASSERT_TRUE(writer->Finish().ok());

  std::unique_ptr<TraceReader> reader;
  ASSERT_TRUE(TraceReader::Open(env_.get(), "/bin", &reader).ok());
  Op got;
  ASSERT_TRUE(reader->Next(&got));
  EXPECT_EQ(op.key, got.key);
  EXPECT_EQ(op.value, got.value);
  EXPECT_EQ(12345, got.scan_length);
}

TEST_F(TraceTest, CorruptionDetected) {
  WorkloadSpec spec;
  Generator gen(spec);
  ASSERT_TRUE(RecordTrace(env_.get(), "/c", &gen, 100).ok());
  std::string contents;
  ASSERT_TRUE(env_->ReadFileToString("/c", &contents).ok());
  contents[contents.size() / 2] ^= 0x5a;
  ASSERT_TRUE(env_->WriteStringToFile(contents, "/c").ok());

  std::unique_ptr<TraceReader> reader;
  ASSERT_TRUE(TraceReader::Open(env_.get(), "/c", &reader).ok());
  Op op;
  int read = 0;
  while (reader->Next(&op)) read++;
  // Some prefix replays; the corrupted region does not (the WAL layer drops
  // it), and no garbage op is surfaced.
  EXPECT_LT(read, 100);
}

}  // namespace workload
}  // namespace acheron
