// The soft-error injection matrix: arm a ONE-SHOT soft fault (transient
// EIO or ENOSPC) at every mutating file-op index of the scripted crash
// workload -- with background retries enabled -- and assert the
// transient-fault-tolerance contract from DESIGN.md ("Error handling &
// degraded mode"):
//
//   1. no acked write is ever lost (in-session, and across a reopen);
//   2. a soft fault never drives the engine fatal (errors_fatal == 0);
//   3. at most the one logical op carrying the faulted file op may surface
//      an error to its caller; everything after it succeeds;
//   4. background work resumes: after the episode the engine settles to a
//      clean quiescent state ("state=ok");
//   5. the FADE D_th bound survives the episode (churn check, strided);
//   6. an ENOSPC episode round-trips through degraded read-only mode and
//      back (one-shot legs here; persistent-fault legs in the NoSpace
//      tests below).
//
// Default runs stride the expensive TTL churn; set
// ACHERON_CRASH_MATRIX_FULL=1 for the exhaustive version. See TESTING.md.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/env/env.h"
#include "src/env/fault_env.h"
#include "src/lsm/db.h"
#include "src/lsm/stats.h"
#include "tests/crash_harness.h"

namespace acheron {
namespace {

using crash::CrashRun;
using crash::LogicalOp;
using SoftFaultClass = FaultInjectionEnv::SoftFaultClass;

bool FullMatrix() {
  const char* e = std::getenv("ACHERON_CRASH_MATRIX_FULL");
  return e != nullptr && e[0] == '1';
}

std::string Repro(const std::string& mode, const char* cls, uint64_t k,
                  uint64_t total) {
  std::ostringstream out;
  out << "[soft-error repro: mode=" << mode << " class=" << cls << " k=" << k
      << "/" << total << "]";
  return out.str();
}

// Visible state implied by the logical ops. With |include_unacked| false,
// applies exactly the acked ops -- the precise in-session model (a failed
// write never reaches the memtable). With true, also applies un-acked ops:
// after a reopen a record whose WAL append succeeded but whose sync failed
// was never acked yet legally resurfaces from replay.
std::map<std::string, std::string> ApplyOps(const std::vector<LogicalOp>& ops,
                                            bool include_unacked) {
  std::map<std::string, std::string> m;
  for (const LogicalOp& op : ops) {
    if (op.kind != LogicalOp::kWrite) continue;
    if (!op.acked && !include_unacked) continue;
    for (const crash::Entry& e : op.entries) {
      if (e.is_range) {
        m.erase(m.lower_bound(e.key), m.lower_bound(e.end_key));
      } else if (e.is_delete) {
        m.erase(e.key);
      } else {
        m[e.key] = e.value;
      }
    }
  }
  return m;
}

// Drives the scripted workload against an open DB, recording per-op acks.
// Unlike CrashRun::RunWorkload the DB handle stays open, so the matrix can
// check in-session state before exercising close + reopen.
void RunScript(DB* db, std::vector<LogicalOp>* ops) {
  for (LogicalOp& op : *ops) {
    switch (op.kind) {
      case LogicalOp::kWrite: {
        WriteBatch batch;
        for (const crash::Entry& e : op.entries) {
          if (e.is_range) {
            batch.DeleteRange(e.key, e.end_key);
          } else if (e.is_delete) {
            batch.Delete(e.key);
          } else {
            batch.Put(e.key, e.value);
          }
        }
        WriteOptions w;
        w.sync = op.sync;
        op.acked = db->Write(w, &batch).ok();
        break;
      }
      case LogicalOp::kFlush:
        op.acked = db->FlushMemTable().ok();
        break;
      case LogicalOp::kCompact:
        db->CompactRange(nullptr, nullptr);
        op.acked = true;
        break;
    }
  }
}

// Open the run's DB. A one-shot fault may land inside recovery, in which
// case Open must surface it cleanly and a retried Open (fault consumed)
// must succeed with no damage.
void OpenForRun(CrashRun& run, const std::string& repro, DB** dbp) {
  *dbp = nullptr;
  Status s = DB::Open(run.DbOptions(), run.dbname(), dbp);
  if (!s.ok()) {
    ASSERT_GE(run.env()->SoftFaultsInjected(), 1u)
        << repro << " open failed without the injected fault: "
        << s.ToString();
    s = DB::Open(run.DbOptions(), run.dbname(), dbp);
    ASSERT_TRUE(s.ok()) << repro
                        << " retried open failed: " << s.ToString();
  }
}

// Runs every fault index k with k % nshards == shard. With |vlog| set, the
// key-value-separated workload runs instead, so the enumerated indices land
// on vLog appends, syncs, head rotations/seals, and the GC relocation's
// table rewrites and segment seal -- each of which must honor the same
// transient-fault contract as every other file op.
void RunSoftErrorMatrix(bool background, bool async_wal, SoftFaultClass cls,
                        uint64_t shard, uint64_t nshards, bool vlog = false) {
  const bool full = FullMatrix();
  const char* cls_name =
      cls == SoftFaultClass::kTransientEio ? "eio" : "nospace";
  const std::string mode = std::string(background ? "background" : "sync") +
                           (async_wal ? "+async-wal" : "") +
                           (vlog ? "+vlog" : "");
  auto make_run = [&] {
    CrashRun r(background);
    r.set_async_wal_sync(async_wal);
    r.set_max_background_retries(5);  // the machinery under test
    if (vlog) r.set_value_separation(crash::kVlogThreshold);
    return r;
  };
  auto script = [&] {
    return vlog ? crash::ScriptedVlogWorkload() : crash::ScriptedWorkload();
  };

  // Dry run (twice): learn the fault-free op count of the workload --
  // sampled with the DB still open, so every enumerated index fires before
  // the per-k checks run -- and assert the schedule is deterministic,
  // which is what makes k a sufficient repro.
  uint64_t total = 0;
  {
    CrashRun dry = make_run();
    DB* db = nullptr;
    OpenForRun(dry, "[soft-error dry run]", &db);
    if (::testing::Test::HasFatalFailure()) return;
    std::vector<LogicalOp> ops = script();
    RunScript(db, &ops);
    for (const LogicalOp& op : ops) {
      ASSERT_TRUE(op.acked) << "dry run must ack every op";
    }
    total = dry.env()->FileOpCount();
    ASSERT_GT(total, 0u);
    delete db;

    CrashRun dry2 = make_run();
    DB* db2 = nullptr;
    OpenForRun(dry2, "[soft-error dry run 2]", &db2);
    if (::testing::Test::HasFatalFailure()) return;
    std::vector<LogicalOp> ops2 = script();
    RunScript(db2, &ops2);
    const uint64_t total2 = dry2.env()->FileOpCount();
    delete db2;
    ASSERT_EQ(total, total2)
        << "file-op schedule must be deterministic for k to be a repro";
  }

  for (uint64_t k = shard; k < total; k += nshards) {
    const std::string repro = Repro(mode, cls_name, k, total);
    CrashRun run = make_run();
    run.env()->FailOpOnce(static_cast<int64_t>(k), cls);
    DB* db = nullptr;
    OpenForRun(run, repro, &db);
    if (::testing::Test::HasFatalFailure()) return;
    std::vector<LogicalOp> ops = script();
    RunScript(db, &ops);

    // The armed index lies inside the fault-free schedule, so it fired.
    EXPECT_GE(run.env()->SoftFaultsInjected(), 1u)
        << repro << " armed fault never fired";

    // Contract 3: at most the one logical op carrying the faulted file op
    // surfaces an error; and a transient EIO never escapes the flush retry
    // loop (only a WAL-path fault may fail its own write).
    int unacked = 0, unacked_flushes = 0;
    for (const LogicalOp& op : ops) {
      if (op.acked) continue;
      unacked++;
      if (op.kind == LogicalOp::kFlush) unacked_flushes++;
    }
    EXPECT_LE(unacked, 1) << repro << " one-shot fault failed " << unacked
                          << " logical ops";
    if (cls == SoftFaultClass::kTransientEio) {
      EXPECT_EQ(0, unacked_flushes)
          << repro << " transient EIO surfaced through the flush retry loop";
    }

    // Contract 4: the engine settles to a clean state. An ENOSPC fault on
    // the final ops may leave the DB degraded with no later write to heal
    // it; Resume() is the documented recovery hook for that.
    Status s = db->Resume();
    EXPECT_TRUE(s.ok()) << repro << " Resume failed: " << s.ToString();
    s = db->WaitForCompactions();
    EXPECT_TRUE(s.ok()) << repro
                        << " WaitForCompactions failed: " << s.ToString();
    std::string prop;
    ASSERT_TRUE(db->GetProperty("acheron.background-error", &prop)) << repro;
    EXPECT_NE(prop.find("state=ok"), std::string::npos) << repro << " " << prop;

    // Contract 2: soft faults never go fatal.
    const InternalStats st = db->GetStats();
    EXPECT_EQ(0u, st.errors_fatal) << repro << " soft fault escalated fatal";

    // Contract 1, in-session: visible state equals the acked model exactly
    // (the failed write, if any, never reached the memtable).
    const auto scan = crash::ScanAll(db, repro);
    EXPECT_EQ(ApplyOps(ops, false), scan)
        << repro << " in-session state diverged from the acked model";
    delete db;
    if (::testing::Test::HasFatalFailure()) return;

    // Contract 1, across reopen: everything acked is still there. The one
    // un-acked record may or may not resurface from the WAL (its append
    // may have preceded the faulted sync), so both models are legal.
    DB* re = nullptr;
    s = DB::Open(run.DbOptions(), run.dbname(), &re);
    ASSERT_TRUE(s.ok()) << repro << " reopen failed: " << s.ToString();
    const auto rescan = crash::ScanAll(re, repro);
    const auto acked_model = ApplyOps(ops, false);
    const auto with_unacked = ApplyOps(ops, true);
    EXPECT_TRUE(rescan == acked_model || rescan == with_unacked)
        << repro << " reopened state matches neither model: got "
        << crash::DescribeState(rescan) << " want "
        << crash::DescribeState(acked_model) << " or "
        << crash::DescribeState(with_unacked);

    // Contract 5: the FADE bound survives the episode and the reopen.
    // The churn dominates matrix cost; stride it unless FULL.
    if (full || k % 4 == 0) {
      crash::CheckDeletePersistenceBound(re, repro);
    }
    delete re;
    if (::testing::Test::HasFatalFailure()) return;
  }
}

// Transient EIO at every index, both pipeline modes, sharded for ctest.
TEST(SoftErrorMatrixSync, Shard0) {
  RunSoftErrorMatrix(false, false, SoftFaultClass::kTransientEio, 0, 3);
}
TEST(SoftErrorMatrixSync, Shard1) {
  RunSoftErrorMatrix(false, false, SoftFaultClass::kTransientEio, 1, 3);
}
TEST(SoftErrorMatrixSync, Shard2) {
  RunSoftErrorMatrix(false, false, SoftFaultClass::kTransientEio, 2, 3);
}
TEST(SoftErrorMatrixBackground, Shard0) {
  RunSoftErrorMatrix(true, false, SoftFaultClass::kTransientEio, 0, 3);
}
TEST(SoftErrorMatrixBackground, Shard1) {
  RunSoftErrorMatrix(true, false, SoftFaultClass::kTransientEio, 1, 3);
}
TEST(SoftErrorMatrixBackground, Shard2) {
  RunSoftErrorMatrix(true, false, SoftFaultClass::kTransientEio, 2, 3);
}

// The async group-commit WAL legs: a faulted async fsync must fall back to
// a blocking sync before acking, so the write still succeeds.
TEST(SoftErrorMatrixAsyncWalSync, Shard0) {
  RunSoftErrorMatrix(false, true, SoftFaultClass::kTransientEio, 0, 2);
}
TEST(SoftErrorMatrixAsyncWalSync, Shard1) {
  RunSoftErrorMatrix(false, true, SoftFaultClass::kTransientEio, 1, 2);
}
TEST(SoftErrorMatrixAsyncWalBackground, Shard0) {
  RunSoftErrorMatrix(true, true, SoftFaultClass::kTransientEio, 0, 2);
}
TEST(SoftErrorMatrixAsyncWalBackground, Shard1) {
  RunSoftErrorMatrix(true, true, SoftFaultClass::kTransientEio, 1, 2);
}

// The key-value-separated workload through the matrix: the one-shot fault
// indices now land on vLog appends, write-path syncs, head rotations and
// seals, and the GC relocation's table rewrites -- a faulted separation
// fails only its own write, a faulted rotation or GC retries behind the
// background-error state machine, and no vLog fault may ever go fatal or
// lose an acked value.
TEST(SoftErrorMatrixVlogSync, Shard0) {
  RunSoftErrorMatrix(false, false, SoftFaultClass::kTransientEio, 0, 2, true);
}
TEST(SoftErrorMatrixVlogSync, Shard1) {
  RunSoftErrorMatrix(false, false, SoftFaultClass::kTransientEio, 1, 2, true);
}
TEST(SoftErrorMatrixVlogBackground, Shard0) {
  RunSoftErrorMatrix(true, false, SoftFaultClass::kTransientEio, 0, 2, true);
}
TEST(SoftErrorMatrixVlogBackground, Shard1) {
  RunSoftErrorMatrix(true, false, SoftFaultClass::kTransientEio, 1, 2, true);
}
TEST(SoftErrorMatrixVlogAsyncWal, Shard0) {
  RunSoftErrorMatrix(false, true, SoftFaultClass::kTransientEio, 0, 2, true);
}
TEST(SoftErrorMatrixVlogAsyncWal, Shard1) {
  RunSoftErrorMatrix(false, true, SoftFaultClass::kTransientEio, 1, 2, true);
}
TEST(SoftErrorMatrixVlogNoSpace, Sync) {
  RunSoftErrorMatrix(false, false, SoftFaultClass::kNoSpace, 0,
                     FullMatrix() ? 1 : 5, true);
}
TEST(SoftErrorMatrixVlogNoSpace, Background) {
  RunSoftErrorMatrix(true, false, SoftFaultClass::kNoSpace, 0,
                     FullMatrix() ? 1 : 5, true);
}

// One-shot ENOSPC round-trips: degraded read-only in, recovered out.
// Strided by default (the EIO legs already cover every index).
TEST(SoftErrorMatrixNoSpace, Sync) {
  RunSoftErrorMatrix(false, false, SoftFaultClass::kNoSpace, 0,
                     FullMatrix() ? 1 : 5);
}
TEST(SoftErrorMatrixNoSpace, Background) {
  RunSoftErrorMatrix(true, false, SoftFaultClass::kNoSpace, 0,
                     FullMatrix() ? 1 : 5);
}
TEST(SoftErrorMatrixNoSpace, AsyncWal) {
  RunSoftErrorMatrix(false, true, SoftFaultClass::kNoSpace, 0,
                     FullMatrix() ? 1 : 5);
}

// ---------------- Persistent-ENOSPC degradation legs ----------------

class NoSpaceTest : public ::testing::Test {
 protected:
  NoSpaceTest() : base_(NewMemEnv()), fault_(base_.get()), db_(nullptr) {
    options_.env = &fault_;
    options_.create_if_missing = true;
    options_.write_buffer_size = 64 << 10;
  }
  ~NoSpaceTest() override { delete db_; }

  Status Open() {
    delete db_;
    db_ = nullptr;
    return DB::Open(options_, "/db", &db_);
  }

  std::string Get(const std::string& k) {
    std::string v;
    Status s = db_->Get(ReadOptions(), k, &v);
    return s.ok() ? v : (s.IsNotFound() ? "NOT_FOUND" : "ERR:" + s.ToString());
  }

  std::string ErrorState() {
    std::string prop;
    EXPECT_TRUE(db_->GetProperty("acheron.background-error", &prop));
    return prop;
  }

  std::unique_ptr<Env> base_;
  FaultInjectionEnv fault_;
  Options options_;
  DB* db_;
};

TEST_F(NoSpaceTest, DegradesToReadOnlyAndManualResume) {
  options_.space_probe_interval_micros = 0;  // no watcher: manual Resume only
  ASSERT_TRUE(Open().ok());
  ASSERT_TRUE(db_->Put(WriteOptions(), "k1", "v1").ok());
  ASSERT_TRUE(db_->FlushMemTable().ok());
  ASSERT_TRUE(db_->Put(WriteOptions(), "k2", "v2").ok());

  fault_.SetPersistentSoftFault(SoftFaultClass::kNoSpace);
  Status s = db_->Put(WriteOptions(), "k3", "v3");
  EXPECT_TRUE(s.IsNoSpace()) << s.ToString();
  EXPECT_NE(ErrorState().find("state=degraded-read-only"), std::string::npos);

  // Writes keep failing NoSpace while degraded...
  s = db_->Put(WriteOptions(), "k4", "v4");
  EXPECT_TRUE(s.IsNoSpace()) << s.ToString();
  // ...but the lock-free read path stays fully live: table and memtable
  // data both readable, iterators included.
  EXPECT_EQ("v1", Get("k1"));
  EXPECT_EQ("v2", Get("k2"));
  EXPECT_EQ("NOT_FOUND", Get("k3"));

  // Resume with the disk still full reports the space error.
  EXPECT_TRUE(db_->Resume().IsNoSpace());
  EXPECT_NE(ErrorState().find("state=degraded-read-only"), std::string::npos);

  // Space returns: Resume succeeds, writes work, the episode is counted.
  fault_.ClearPersistentSoftFault();
  EXPECT_TRUE(db_->Resume().ok());
  EXPECT_NE(ErrorState().find("state=ok"), std::string::npos);
  ASSERT_TRUE(db_->Put(WriteOptions(), "k5", "v5").ok());
  EXPECT_EQ("v5", Get("k5"));
  EXPECT_EQ(1u, db_->GetStats().resume_count);
}

TEST_F(NoSpaceTest, SpaceWatcherAutoResumes) {
  options_.space_probe_interval_micros = 2 * 1000;  // probe every 2ms
  ASSERT_TRUE(Open().ok());
  ASSERT_TRUE(db_->Put(WriteOptions(), "k1", "v1").ok());

  fault_.SetPersistentSoftFault(SoftFaultClass::kNoSpace);
  EXPECT_TRUE(db_->Put(WriteOptions(), "k2", "v2").IsNoSpace());
  EXPECT_NE(ErrorState().find("state=degraded-read-only"), std::string::npos);

  fault_.ClearPersistentSoftFault();
  // No writes issued: recovery must come from the background space
  // watcher's probe alone. Generous deadline for loaded CI machines.
  bool resumed = false;
  for (int i = 0; i < 10 * 1000 && !resumed; i++) {
    resumed = ErrorState().find("state=ok") != std::string::npos;
    if (!resumed) base_->SleepForMicroseconds(1000);
  }
  EXPECT_TRUE(resumed) << "space watcher never resumed: " << ErrorState();
  ASSERT_TRUE(db_->Put(WriteOptions(), "k3", "v3").ok());
  EXPECT_EQ("v3", Get("k3"));
  EXPECT_GE(db_->GetStats().resume_count, 1u);
}

TEST_F(NoSpaceTest, DegradedStateSurvivesUntilProbeNotReopen) {
  // A reopen while space is still exhausted fails cleanly (recovery must
  // write a fresh WAL); after space returns the same reopen succeeds with
  // every acked write intact.
  options_.space_probe_interval_micros = 0;
  ASSERT_TRUE(Open().ok());
  ASSERT_TRUE(db_->Put(WriteOptions(), "k1", "v1").ok());
  ASSERT_TRUE(db_->FlushMemTable().ok());

  fault_.SetPersistentSoftFault(SoftFaultClass::kNoSpace);
  EXPECT_TRUE(db_->Put(WriteOptions(), "k2", "v2").IsNoSpace());
  delete db_;
  db_ = nullptr;
  EXPECT_FALSE(Open().ok());

  fault_.ClearPersistentSoftFault();
  ASSERT_TRUE(Open().ok());
  EXPECT_EQ("v1", Get("k1"));
  ASSERT_TRUE(db_->Put(WriteOptions(), "k3", "v3").ok());
  EXPECT_EQ("v3", Get("k3"));
}

}  // namespace
}  // namespace acheron
