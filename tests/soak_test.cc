// Cross-configuration soak: a longer randomized workload (puts, deletes,
// reopens, manual flushes, scans) model-checked against std::map, with the
// delete-persistence invariant asserted throughout, across the full matrix
// of compaction style x delete-awareness.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "src/env/env.h"
#include "src/lsm/db.h"
#include "src/util/random.h"

namespace acheron {

struct SoakConfig {
  CompactionStyle style;
  uint64_t dth;
  bool delete_aware_picking;
  const char* name;
};

static std::string SoakName(const ::testing::TestParamInfo<SoakConfig>& info) {
  return info.param.name;
}

class SoakTest : public ::testing::TestWithParam<SoakConfig> {
 protected:
  SoakTest() : env_(NewMemEnv()), db_(nullptr) {
    options_.env = env_.get();
    options_.write_buffer_size = 8 << 10;
    options_.max_file_size = 16 << 10;
    options_.size_ratio = 3;
    options_.level0_compaction_trigger = 3;
  }
  ~SoakTest() override { delete db_; }

  std::unique_ptr<Env> env_;
  Options options_;
  DB* db_;
};

TEST_P(SoakTest, LongRandomizedRun) {
  const SoakConfig& cfg = GetParam();
  options_.compaction_style = cfg.style;
  options_.delete_persistence_threshold = cfg.dth;
  options_.delete_aware_picking = cfg.delete_aware_picking;
  ASSERT_TRUE(DB::Open(options_, "/db", &db_).ok());

  Random rnd(20260704);
  std::map<std::string, std::string> model;
  const int kOps = 25000;
  for (int step = 0; step < kOps; step++) {
    std::string key = "key" + std::to_string(rnd.Uniform(700));
    switch (rnd.Uniform(20)) {
      default: {  // put (weight 13)
        std::string value = "v" + std::to_string(step);
        model[key] = value;
        ASSERT_TRUE(db_->Put(WriteOptions(), key, value).ok());
        break;
      }
      case 13:
      case 14:
      case 15:
      case 16: {  // delete (weight 4)
        model.erase(key);
        ASSERT_TRUE(db_->Delete(WriteOptions(), key).ok());
        break;
      }
      case 17: {  // point read (weight 1)
        std::string value;
        Status s = db_->Get(ReadOptions(), key, &value);
        auto it = model.find(key);
        if (it == model.end()) {
          ASSERT_TRUE(s.IsNotFound()) << key << " step " << step;
        } else {
          ASSERT_TRUE(s.ok()) << key << " step " << step;
          ASSERT_EQ(it->second, value);
        }
        break;
      }
      case 18: {  // short scan vs model (weight 1)
        std::unique_ptr<Iterator> it(db_->NewIterator(ReadOptions()));
        it->Seek(key);
        auto mit = model.lower_bound(key);
        for (int i = 0; i < 5 && mit != model.end(); i++, ++mit) {
          ASSERT_TRUE(it->Valid()) << "step " << step;
          ASSERT_EQ(mit->first, it->key().ToString());
          ASSERT_EQ(mit->second, it->value().ToString());
          it->Next();
        }
        break;
      }
      case 19: {  // structural event (weight 1)
        if (step % 1000 < 300) {
          ASSERT_TRUE(db_->FlushMemTable().ok());
        } else if (step % 1000 < 400) {
          delete db_;
          db_ = nullptr;
          ASSERT_TRUE(DB::Open(options_, "/db", &db_).ok());
        }
        break;
      }
    }

    // The headline invariant, sampled.
    if (cfg.dth > 0 && step % 1000 == 999) {
      std::string age;
      ASSERT_TRUE(db_->GetProperty("acheron.max-tombstone-age", &age));
      ASSERT_LE(std::stoull(age), cfg.dth + 2) << "step " << step;
    }
  }

  // Final exhaustive comparison.
  std::unique_ptr<Iterator> it(db_->NewIterator(ReadOptions()));
  auto mit = model.begin();
  for (it->SeekToFirst(); it->Valid(); it->Next(), ++mit) {
    ASSERT_NE(model.end(), mit);
    EXPECT_EQ(mit->first, it->key().ToString());
    EXPECT_EQ(mit->second, it->value().ToString());
  }
  EXPECT_EQ(model.end(), mit);
  EXPECT_TRUE(it->status().ok());
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, SoakTest,
    ::testing::Values(
        SoakConfig{CompactionStyle::kLeveling, 0, false, "LevelingVanilla"},
        SoakConfig{CompactionStyle::kLeveling, 6000, false, "LevelingFade"},
        SoakConfig{CompactionStyle::kLeveling, 6000, true,
                   "LevelingFadePicking"},
        SoakConfig{CompactionStyle::kTiering, 0, false, "TieringVanilla"},
        SoakConfig{CompactionStyle::kTiering, 6000, false, "TieringFade"}),
    SoakName);

}  // namespace acheron
