// Monitor-journal replay tests: the FADE clock recovered from the
// MANIFEST journal plus WAL recount must be *exact*, not conservative.
// The workload is killed (simulated kill -9, synced data kept) at every
// WAL rotation boundary and at mid-WAL points; after reopen the
// tombstone-age counters -- the full delete-stats line, including the
// latency percentiles, and the next TTL deadline -- must be bit-identical
// to the uncrashed run at the same point, in both compaction modes.
//
// Why equality is achievable: every write syncs, so the recovered tree
// and memtable equal the pre-crash ones; written is journaled at memtable
// swap and recounted from the WAL suffix; persisted/superseded/latency
// advance in lock-step with compaction installs (the live monitor applies
// a delta only after the edit carrying it is durable), so replaying the
// journaled deltas performs the identical Histogram::Merge sequence.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/env/env.h"
#include "src/env/fault_env.h"
#include "src/lsm/db.h"

namespace acheron {
namespace {

struct JournalOp {
  enum Kind { kPut, kDelete, kFlush } kind;
  std::string key;
};

// Deterministic script: phases of sync'd puts/deletes separated by
// explicit flushes (each flush rotates the WAL). Deletes target keys from
// earlier phases so compactions both persist and supersede tombstones.
std::vector<JournalOp> Script() {
  std::vector<JournalOp> ops;
  auto key = [](int i) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "k%04d", i);
    return std::string(buf);
  };
  for (int phase = 0; phase < 5; phase++) {
    for (int i = 0; i < 8; i++) {
      const int n = phase * 8 + i;
      if (phase > 0 && i % 3 == 2) {
        // Delete a key written two phases of writes ago (re-put later by
        // some phases, so a slice of these become superseded).
        ops.push_back({JournalOp::kDelete, key(n - 10)});
      } else {
        ops.push_back({JournalOp::kPut, key(n % 30)});
      }
    }
    ops.push_back({JournalOp::kFlush, ""});
  }
  return ops;
}

class RecoveryJournalTest : public ::testing::TestWithParam<bool> {
 protected:
  Options Opts(Env* env) {
    Options o;
    o.env = env;
    o.create_if_missing = true;
    o.write_buffer_size = 256 << 10;  // flush points are explicit
    o.delete_persistence_threshold = 400;
    o.background_compactions = GetParam();
    return o;
  }

  struct Probe {
    std::string delete_stats;
    std::string ttl_deadline;
  };

  Probe Capture(DB* db) {
    // Quiesce first so the capture point is deterministic in both modes.
    EXPECT_TRUE(db->WaitForCompactions().ok());
    Probe p;
    EXPECT_TRUE(db->GetProperty("acheron.delete-stats", &p.delete_stats));
    EXPECT_TRUE(db->GetProperty("acheron.next-ttl-deadline", &p.ttl_deadline));
    return p;
  }

  // Run the script prefix [0, upto) against |db|; every write syncs.
  void RunPrefix(DB* db, const std::vector<JournalOp>& ops, size_t upto) {
    WriteOptions wo;
    wo.sync = true;
    for (size_t i = 0; i < upto; i++) {
      switch (ops[i].kind) {
        case JournalOp::kPut:
          ASSERT_TRUE(db->Put(wo, ops[i].key, "v" + std::to_string(i)).ok());
          break;
        case JournalOp::kDelete:
          ASSERT_TRUE(db->Delete(wo, ops[i].key).ok());
          break;
        case JournalOp::kFlush:
          ASSERT_TRUE(db->FlushMemTable().ok());
          break;
      }
    }
  }

  // Run the prefix and crash-reopen; return the recovered probe.
  Probe CrashedProbe(const std::vector<JournalOp>& ops, size_t kill_at,
                     Probe* live) {
    std::unique_ptr<Env> base(NewMemEnv());
    FaultInjectionEnv fault(base.get());

    DB* db = nullptr;
    EXPECT_TRUE(DB::Open(Opts(&fault), "/journaldb", &db).ok());
    RunPrefix(db, ops, kill_at);
    if (live != nullptr) *live = Capture(db);

    // kill -9: all further file ops fail; synced bytes survive restart.
    fault.CrashAfterOp(static_cast<int64_t>(fault.FileOpCount()));
    delete db;
    EXPECT_TRUE(
        fault
            .CrashAndRestart(FaultInjectionEnv::CrashDataPolicy::kDropUnsynced)
            .ok());

    db = nullptr;
    EXPECT_TRUE(DB::Open(Opts(&fault), "/journaldb", &db).ok());
    Probe after = Capture(db);
    delete db;
    return after;
  }

  // Run the same prefix, close cleanly, reopen; return the reopened probe.
  // Recovery flushes the replayed WAL memtable (and may then compact), so
  // this -- not the still-running pre-crash instance -- is the state a
  // correct crash recovery must reproduce exactly.
  Probe CleanReopenProbe(const std::vector<JournalOp>& ops, size_t kill_at) {
    std::unique_ptr<Env> base(NewMemEnv());
    FaultInjectionEnv fault(base.get());
    DB* db = nullptr;
    EXPECT_TRUE(DB::Open(Opts(&fault), "/journaldb", &db).ok());
    RunPrefix(db, ops, kill_at);
    EXPECT_TRUE(db->WaitForCompactions().ok());
    delete db;  // clean close
    EXPECT_TRUE(DB::Open(Opts(&fault), "/journaldb", &db).ok());
    Probe p = Capture(db);
    delete db;
    return p;
  }

  void CheckKillPoint(const std::vector<JournalOp>& ops, size_t kill_at,
                      bool expect_live_identical) {
    SCOPED_TRACE("kill_at=" + std::to_string(kill_at) +
                 (GetParam() ? " background" : " sync"));
    Probe live;
    const Probe after = CrashedProbe(ops, kill_at, &live);
    if (expect_live_identical) {
      // At a rotation boundary the WAL is empty: recovery replays nothing
      // and must land on the pre-crash state itself, bit for bit -- the
      // whole delete-stats line (written/persisted/superseded, live
      // census, latency percentiles) and the TTL deadline.
      EXPECT_EQ(live.delete_stats, after.delete_stats);
      EXPECT_EQ(live.ttl_deadline, after.ttl_deadline);
    }
    // At every kill point, crashing must be indistinguishable from a clean
    // shutdown: same journal replay, same WAL recount, same open-time
    // flush and compactions.
    const Probe control = CleanReopenProbe(ops, kill_at);
    EXPECT_EQ(control.delete_stats, after.delete_stats);
    EXPECT_EQ(control.ttl_deadline, after.ttl_deadline);
  }
};

TEST_P(RecoveryJournalTest, KillAtEveryWalRotationBoundary) {
  const std::vector<JournalOp> ops = Script();
  for (size_t i = 0; i < ops.size(); i++) {
    if (ops[i].kind == JournalOp::kFlush) {
      CheckKillPoint(ops, i + 1, /*expect_live_identical=*/true);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

TEST_P(RecoveryJournalTest, KillMidWal) {
  const std::vector<JournalOp> ops = Script();
  // Mid-WAL points: tombstones live in the WAL suffix and must be exactly
  // recounted on top of the journaled written value.
  // The live instance's state is NOT the oracle here (recovery flushes the
  // replayed memtable, which a running instance would not have done); the
  // clean-shutdown control inside CheckKillPoint is.
  for (size_t i = 4; i < ops.size(); i += 9) {
    CheckKillPoint(ops, i, /*expect_live_identical=*/false);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST_P(RecoveryJournalTest, DoubleKillKeepsCountersExact) {
  // Crash, recover, write one more phase, crash again: the journal written
  // by the *recovered* instance must be as exact as the original's.
  const std::vector<JournalOp> ops = Script();
  std::unique_ptr<Env> base(NewMemEnv());
  FaultInjectionEnv fault(base.get());

  DB* db = nullptr;
  ASSERT_TRUE(DB::Open(Opts(&fault), "/journaldb", &db).ok());
  RunPrefix(db, ops, 2 * 9 + 4);  // two phases plus a mid-WAL tail
  fault.CrashAfterOp(static_cast<int64_t>(fault.FileOpCount()));
  delete db;
  ASSERT_TRUE(
      fault.CrashAndRestart(FaultInjectionEnv::CrashDataPolicy::kDropUnsynced)
          .ok());

  ASSERT_TRUE(DB::Open(Opts(&fault), "/journaldb", &db).ok());
  WriteOptions wo;
  wo.sync = true;
  for (int i = 0; i < 6; i++) {
    ASSERT_TRUE(db->Put(wo, "x" + std::to_string(i), "v").ok());
    if (i == 2) ASSERT_TRUE(db->Delete(wo, "k0001").ok());
  }
  ASSERT_TRUE(db->FlushMemTable().ok());
  const Probe before = Capture(db);
  fault.CrashAfterOp(static_cast<int64_t>(fault.FileOpCount()));
  delete db;
  ASSERT_TRUE(
      fault.CrashAndRestart(FaultInjectionEnv::CrashDataPolicy::kDropUnsynced)
          .ok());

  ASSERT_TRUE(DB::Open(Opts(&fault), "/journaldb", &db).ok());
  const Probe after = Capture(db);
  EXPECT_EQ(before.delete_stats, after.delete_stats);
  EXPECT_EQ(before.ttl_deadline, after.ttl_deadline);
  delete db;
}

INSTANTIATE_TEST_SUITE_P(Modes, RecoveryJournalTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Background" : "Sync";
                         });

}  // namespace
}  // namespace acheron
