// Failure-injection and corruption robustness: the DB surfaces injected IO
// errors without corrupting state, recovers from transient write faults by
// rotating onto a fresh WAL, tolerates torn WAL tails, and detects
// corrupted SSTables.
#include <gtest/gtest.h>

#include <memory>

#include "src/env/env.h"
#include "src/env/fault_env.h"
#include "src/lsm/db.h"

namespace acheron {

class RobustnessTest : public ::testing::Test {
 protected:
  RobustnessTest()
      : base_env_(NewMemEnv()), fault_env_(base_env_.get()), db_(nullptr) {
    options_.env = &fault_env_;
    options_.write_buffer_size = 8 << 10;
  }
  ~RobustnessTest() override { delete db_; }

  Status Open() {
    delete db_;
    db_ = nullptr;
    return DB::Open(options_, "/db", &db_);
  }

  std::string Get(const std::string& k) {
    std::string v;
    Status s = db_->Get(ReadOptions(), k, &v);
    return s.ok() ? v : (s.IsNotFound() ? "NOT_FOUND" : "ERR:" + s.ToString());
  }

  std::unique_ptr<Env> base_env_;
  FaultInjectionEnv fault_env_;
  Options options_;
  DB* db_;
};

TEST_F(RobustnessTest, WriteFaultSurfacesAsError) {
  ASSERT_TRUE(Open().ok());
  ASSERT_TRUE(db_->Put(WriteOptions(), "before", "ok").ok());

  fault_env_.SetWriteFaultCountdown(0);  // every write fails now
  Status s = db_->Put(WriteOptions(), "during", "fails");
  EXPECT_FALSE(s.ok());

  // The transient WAL failure parks the engine in the retrying state (with
  // a WAL rotation pending) rather than a sticky fatal error.
  std::string prop;
  ASSERT_TRUE(db_->GetProperty("acheron.background-error", &prop));
  EXPECT_NE(prop.find("state=retrying"), std::string::npos) << prop;
  EXPECT_NE(prop.find("subsystem=wal-sync"), std::string::npos) << prop;

  // Reads of previously committed data stay live throughout the episode.
  EXPECT_EQ("ok", Get("before"));

  fault_env_.SetWriteFaultCountdown(-1);
  // Once the fault clears, the next write rotates onto a fresh WAL and
  // succeeds. The failed write was never acked and stays absent.
  s = db_->Put(WriteOptions(), "after", "x");
  EXPECT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ("x", Get("after"));
  EXPECT_EQ("NOT_FOUND", Get("during"));
  ASSERT_TRUE(db_->GetProperty("acheron.background-error", &prop));
  EXPECT_NE(prop.find("state=ok"), std::string::npos) << prop;
}

TEST_F(RobustnessTest, WriteFaultFatalWithRetriesDisabled) {
  // max_background_retries == 0 restores the pre-state-machine behavior:
  // any background failure is immediately sticky-fatal.
  options_.max_background_retries = 0;
  ASSERT_TRUE(Open().ok());
  ASSERT_TRUE(db_->Put(WriteOptions(), "before", "ok").ok());

  fault_env_.SetWriteFaultCountdown(0);
  Status s = db_->Put(WriteOptions(), "during", "fails");
  EXPECT_FALSE(s.ok());
  fault_env_.SetWriteFaultCountdown(-1);

  s = db_->Put(WriteOptions(), "after", "x");
  EXPECT_FALSE(s.ok());
  std::string prop;
  ASSERT_TRUE(db_->GetProperty("acheron.background-error", &prop));
  EXPECT_NE(prop.find("state=fatal"), std::string::npos) << prop;
  // Reads of previously committed data still work.
  EXPECT_EQ("ok", Get("before"));
}

TEST_F(RobustnessTest, FlushFaultDoesNotLoseCommittedData) {
  ASSERT_TRUE(Open().ok());
  for (int i = 0; i < 50; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), "k" + std::to_string(i), "v").ok());
  }
  // Inject failures, then force a flush: it must fail cleanly.
  fault_env_.SetWriteFaultCountdown(0);
  Status s = db_->FlushMemTable();
  EXPECT_FALSE(s.ok());
  fault_env_.SetWriteFaultCountdown(-1);

  // Reopen from WAL: all committed writes are intact.
  ASSERT_TRUE(Open().ok());
  for (int i = 0; i < 50; i++) {
    EXPECT_EQ("v", Get("k" + std::to_string(i)));
  }
}

TEST_F(RobustnessTest, TornWalTailIsIgnored) {
  ASSERT_TRUE(Open().ok());
  ASSERT_TRUE(db_->Put(WriteOptions(), "committed", "yes").ok());
  delete db_;
  db_ = nullptr;

  // Find the live WAL and truncate a few bytes (simulating a torn write).
  std::vector<std::string> children;
  ASSERT_TRUE(base_env_->GetChildren("/db", &children).ok());
  std::string log_name;
  for (const auto& c : children) {
    if (c.size() > 4 && c.substr(c.size() - 4) == ".log") log_name = c;
  }
  ASSERT_FALSE(log_name.empty());
  std::string contents;
  ASSERT_TRUE(base_env_->ReadFileToString("/db/" + log_name, &contents).ok());
  ASSERT_GT(contents.size(), 3u);
  contents.resize(contents.size() - 3);
  ASSERT_TRUE(base_env_->WriteStringToFile(contents, "/db/" + log_name).ok());

  // Recovery succeeds; the whole record was torn so the write is lost, but
  // the DB comes up healthy.
  ASSERT_TRUE(Open().ok());
  ASSERT_TRUE(db_->Put(WriteOptions(), "fresh", "write").ok());
  EXPECT_EQ("write", Get("fresh"));
}

TEST_F(RobustnessTest, CorruptedWalRecordIsDropped) {
  ASSERT_TRUE(Open().ok());
  ASSERT_TRUE(db_->Put(WriteOptions(), "first", "1").ok());
  ASSERT_TRUE(db_->Put(WriteOptions(), "second", "2").ok());
  delete db_;
  db_ = nullptr;

  std::vector<std::string> children;
  ASSERT_TRUE(base_env_->GetChildren("/db", &children).ok());
  std::string log_name;
  for (const auto& c : children) {
    if (c.size() > 4 && c.substr(c.size() - 4) == ".log") log_name = c;
  }
  std::string contents;
  ASSERT_TRUE(base_env_->ReadFileToString("/db/" + log_name, &contents).ok());
  // Flip a byte in the middle of the first record's payload.
  contents[10] ^= 0x40;
  ASSERT_TRUE(base_env_->WriteStringToFile(contents, "/db/" + log_name).ok());

  // Default (non-paranoid) recovery: corrupted tail records are dropped,
  // DB opens.
  ASSERT_TRUE(Open().ok());
  ASSERT_TRUE(db_->Put(WriteOptions(), "alive", "yes").ok());
  EXPECT_EQ("yes", Get("alive"));
}

TEST_F(RobustnessTest, SstReadFaultSurfacesOnGet) {
  ASSERT_TRUE(Open().ok());
  for (int i = 0; i < 100; i++) {
    ASSERT_TRUE(
        db_->Put(WriteOptions(), "k" + std::to_string(i), "payload").ok());
  }
  ASSERT_TRUE(db_->FlushMemTable().ok());
  // Reopen so the table cache has no open handle yet, then poison reads.
  ASSERT_TRUE(Open().ok());
  fault_env_.SetReadFaultSubstring(".sst");
  std::string v;
  Status s = db_->Get(ReadOptions(), "k5", &v);
  EXPECT_TRUE(s.IsIOError()) << s.ToString();
  fault_env_.SetReadFaultSubstring("");
  EXPECT_EQ("payload", Get("k5"));
}

TEST_F(RobustnessTest, MultiGetReadFaultFailsOnlyFaultedKeys) {
  ASSERT_TRUE(Open().ok());
  for (int i = 0; i < 100; i++) {
    ASSERT_TRUE(
        db_->Put(WriteOptions(), "k" + std::to_string(i), "payload").ok());
  }
  ASSERT_TRUE(db_->FlushMemTable().ok());
  // Reopen (cold table cache), then land one key in the memtable so the
  // batch mixes faulted table reads with an unfaulted memtable hit.
  ASSERT_TRUE(Open().ok());
  ASSERT_TRUE(db_->Put(WriteOptions(), "memkey", "hot").ok());

  fault_env_.SetReadFaultSubstring(".sst");
  std::vector<Slice> keys = {"memkey", "k5", "k6"};
  std::vector<std::string> values;
  std::vector<Status> statuses = db_->MultiGet(ReadOptions(), keys, &values);
  ASSERT_EQ(3u, statuses.size());
  ASSERT_EQ(3u, values.size());
  // The faulted table reads fail their own keys only; the memtable hit in
  // the same batch is untouched.
  EXPECT_TRUE(statuses[0].ok()) << statuses[0].ToString();
  EXPECT_EQ("hot", values[0]);
  EXPECT_TRUE(statuses[1].IsIOError()) << statuses[1].ToString();
  EXPECT_TRUE(statuses[2].IsIOError()) << statuses[2].ToString();

  // The read fault is non-sticky: the same batch succeeds once it clears.
  fault_env_.SetReadFaultSubstring("");
  statuses = db_->MultiGet(ReadOptions(), keys, &values);
  ASSERT_EQ(3u, statuses.size());
  EXPECT_TRUE(statuses[0].ok());
  EXPECT_TRUE(statuses[1].ok()) << statuses[1].ToString();
  EXPECT_TRUE(statuses[2].ok()) << statuses[2].ToString();
  EXPECT_EQ("payload", values[1]);
  EXPECT_EQ("payload", values[2]);
}

TEST_F(RobustnessTest, CorruptedSstBlockIsDetected) {
  options_.filter_bits_per_key = 0;  // force data-block reads on every Get
  ASSERT_TRUE(Open().ok());
  for (int i = 0; i < 200; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), "key" + std::to_string(i),
                         std::string(50, 'd'))
                    .ok());
  }
  ASSERT_TRUE(db_->FlushMemTable().ok());
  delete db_;
  db_ = nullptr;

  // Corrupt a data-block byte in every table file (the flush may have
  // produced several).
  std::vector<std::string> children;
  ASSERT_TRUE(base_env_->GetChildren("/db", &children).ok());
  int corrupted = 0;
  for (const auto& c : children) {
    if (c.size() > 4 && c.substr(c.size() - 4) == ".sst") {
      std::string contents;
      ASSERT_TRUE(base_env_->ReadFileToString("/db/" + c, &contents).ok());
      contents[20] ^= 0xff;
      ASSERT_TRUE(base_env_->WriteStringToFile(contents, "/db/" + c).ok());
      corrupted++;
    }
  }
  ASSERT_GT(corrupted, 0);

  ASSERT_TRUE(Open().ok());
  std::string v;
  Status s = db_->Get(ReadOptions(), "key0", &v);
  // The block checksum must catch the flip.
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
}

}  // namespace acheron
