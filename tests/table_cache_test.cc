// TableCache: open-table handle caching, eviction, and error paths.
#include "src/lsm/table_cache.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/env/env.h"
#include "src/lsm/filename.h"
#include "src/table/table_builder.h"

namespace acheron {

class TableCacheTest : public ::testing::Test {
 protected:
  TableCacheTest() : env_(NewMemEnv()) {
    options_.env = env_.get();
    options_.comparator = &icmp_;
    cache_ = std::make_unique<TableCache>("/db", options_, /*entries=*/4);
    EXPECT_TRUE(env_->CreateDir("/db").ok());
  }

  // Builds table |number| holding keys k<base>..k<base+count-1> (internal
  // key encoded with seq 1..count). Returns the file size.
  uint64_t BuildTable(uint64_t number, int base, int count) {
    std::unique_ptr<WritableFile> file;
    EXPECT_TRUE(
        env_->NewWritableFile(TableFileName("/db", number), &file).ok());
    TableBuilder builder(options_, file.get());
    for (int i = 0; i < count; i++) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "k%06d", base + i);
      InternalKey ikey(buf, i + 1, kTypeValue);
      builder.Add(ikey.Encode(), "v" + std::to_string(base + i), buf);
    }
    EXPECT_TRUE(builder.Finish().ok());
    EXPECT_TRUE(file->Close().ok());
    return builder.FileSize();
  }

  InternalKeyComparator icmp_{BytewiseComparator()};
  std::unique_ptr<Env> env_;
  Options options_;
  std::unique_ptr<TableCache> cache_;
};

namespace {
struct GetState {
  bool found = false;
  std::string value;
};
void SaveEntry(void* arg, const Slice&, const Slice& v) {
  auto* s = static_cast<GetState*>(arg);
  s->found = true;
  s->value = v.ToString();
}
}  // namespace

TEST_F(TableCacheTest, IteratorAndGet) {
  uint64_t size = BuildTable(10, 0, 100);

  std::unique_ptr<Iterator> it(
      cache_->NewIterator(ReadOptions(), 10, size));
  it->SeekToFirst();
  int n = 0;
  for (; it->Valid(); it->Next()) n++;
  EXPECT_EQ(100, n);

  GetState state;
  InternalKey target("k000042", kMaxSequenceNumber, kValueTypeForSeek);
  ASSERT_TRUE(cache_->Get(ReadOptions(), 10, size, target.Encode(), "k000042",
                          &state, SaveEntry)
                  .ok());
  EXPECT_TRUE(state.found);
  EXPECT_EQ("v42", state.value);
}

TEST_F(TableCacheTest, ManyTablesExceedCacheCapacity) {
  // 10 tables through a 4-entry cache: all must stay readable (handles are
  // reopened on demand after eviction).
  uint64_t sizes[10];
  for (uint64_t t = 0; t < 10; t++) {
    sizes[t] = BuildTable(100 + t, static_cast<int>(t) * 1000, 50);
  }
  for (int round = 0; round < 3; round++) {
    for (uint64_t t = 0; t < 10; t++) {
      GetState state;
      char buf[32];
      std::snprintf(buf, sizeof(buf), "k%06d",
                    static_cast<int>(t) * 1000 + 7);
      InternalKey target(buf, kMaxSequenceNumber, kValueTypeForSeek);
      ASSERT_TRUE(cache_->Get(ReadOptions(), 100 + t, sizes[t],
                              target.Encode(), buf, &state, SaveEntry)
                      .ok());
      EXPECT_TRUE(state.found) << "table " << t;
    }
  }
}

TEST_F(TableCacheTest, EvictDropsHandle) {
  uint64_t size = BuildTable(20, 0, 10);
  GetState state;
  InternalKey target("k000003", kMaxSequenceNumber, kValueTypeForSeek);
  ASSERT_TRUE(cache_->Get(ReadOptions(), 20, size, target.Encode(), "k000003",
                          &state, SaveEntry)
                  .ok());
  cache_->Evict(20);
  // Still readable: the cache reopens the file.
  state = GetState();
  ASSERT_TRUE(cache_->Get(ReadOptions(), 20, size, target.Encode(), "k000003",
                          &state, SaveEntry)
                  .ok());
  EXPECT_TRUE(state.found);

  // After deleting the underlying file and evicting, reads fail cleanly.
  cache_->Evict(20);
  ASSERT_TRUE(env_->RemoveFile(TableFileName("/db", 20)).ok());
  Status s = cache_->Get(ReadOptions(), 20, size, target.Encode(), "k000003",
                         &state, SaveEntry);
  EXPECT_FALSE(s.ok());
}

TEST_F(TableCacheTest, MissingFileIsError) {
  std::unique_ptr<Iterator> it(
      cache_->NewIterator(ReadOptions(), 999, 1234));
  it->SeekToFirst();
  EXPECT_FALSE(it->Valid());
  EXPECT_FALSE(it->status().ok());
}

}  // namespace acheron
