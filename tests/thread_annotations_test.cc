// Runtime coverage for src/util/mutex.h (Mutex, MutexLock) and a sanity
// check that the thread-safety annotation macros expand cleanly on every
// compiler. The compile-time half of the story -- that Clang actually
// REJECTS code violating the annotations -- is exercised by the
// thread_safety_negative smoke target (see smoke/ and tests/CMakeLists.txt),
// which feeds a deliberately broken translation unit to the compiler and
// asserts it fails.
#include "src/util/thread_annotations.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/util/mutex.h"

namespace acheron {
namespace {

TEST(MutexTest, LockUnlock) {
  Mutex mu;
  mu.Lock();
  mu.AssertHeld();
  mu.Unlock();
}

TEST(MutexTest, TryLock) {
  Mutex mu;
  ASSERT_TRUE(mu.TryLock());
  // Non-reentrant: a second TryLock from another thread must fail while the
  // mutex is held. (Same-thread retry would be UB on std::mutex.)
  bool second = true;
  std::thread t([&] { second = mu.TryLock(); });
  t.join();
  EXPECT_FALSE(second);
  mu.Unlock();
  std::thread t2([&] {
    second = mu.TryLock();
    if (second) mu.Unlock();
  });
  t2.join();
  EXPECT_TRUE(second);
}

TEST(MutexLockTest, ReleasesOnScopeExit) {
  Mutex mu;
  {
    MutexLock l(&mu);
    bool acquired = true;
    std::thread t([&] { acquired = mu.TryLock(); });
    t.join();
    EXPECT_FALSE(acquired) << "MutexLock must hold the mutex in scope";
  }
  // Out of scope: the lock must be free again.
  ASSERT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(MutexLockTest, MutualExclusionUnderContention) {
  Mutex mu;
  int counter = 0;  // deliberately unsynchronized except via mu
  constexpr int kThreads = 8;
  constexpr int kIters = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; i++) {
        MutexLock l(&mu);
        counter++;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(kThreads * kIters, counter);
}

// The macros must expand to nothing (or to attributes) such that annotated
// declarations parse on every supported compiler. This block is a
// compile-time canary: if a macro definition rots, this file stops
// building everywhere, not just under Clang.
class AnnotatedExample {
 public:
  void LockedOp() EXCLUSIVE_LOCKS_REQUIRED(mu_) { guarded_++; }
  void FreeOp() LOCKS_EXCLUDED(mu_) {
    MutexLock l(&mu_);
    guarded_++;
  }
  int Value() NO_THREAD_SAFETY_ANALYSIS { return guarded_; }

  Mutex mu_;
  int guarded_ GUARDED_BY(mu_) = 0;
};

TEST(ThreadAnnotationsTest, AnnotatedCodeRuns) {
  AnnotatedExample ex;
  ex.FreeOp();
  {
    MutexLock l(&ex.mu_);
    ex.LockedOp();
  }
  EXPECT_EQ(2, ex.Value());
}

}  // namespace
}  // namespace acheron
