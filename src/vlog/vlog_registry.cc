#include "src/vlog/vlog_registry.h"

#include "src/util/coding.h"

namespace acheron {
namespace vlog {

void ApplyDelta(Registry* registry, const SegmentDelta& delta) {
  auto it = registry->find(delta.number);
  if (it == registry->end()) return;  // segment already collected
  SegmentInfo& info = it->second;
  info.garbage_bytes += delta.garbage_bytes;
  info.dead_count += delta.dead_count;
  if (delta.purge_count > 0) {
    info.pending.push_back({delta.purge_seq, delta.purge_count});
  }
}

void EncodeSegmentInfo(std::string* dst, const SegmentInfo& info) {
  PutVarint64(dst, info.number);
  PutVarint64(dst, info.sealed ? 1 : 0);
  PutVarint64(dst, info.total_bytes);
  PutVarint64(dst, info.value_count);
  PutVarint64(dst, info.garbage_bytes);
  PutVarint64(dst, info.dead_count);
  PutVarint64(dst, info.pending.size());
  for (const auto& p : info.pending) {
    PutVarint64(dst, p.purge_seq);
    PutVarint64(dst, p.count);
  }
}

bool DecodeSegmentInfo(Slice* input, SegmentInfo* info) {
  uint64_t sealed = 0;
  uint64_t npending = 0;
  if (!GetVarint64(input, &info->number) || !GetVarint64(input, &sealed) ||
      !GetVarint64(input, &info->total_bytes) ||
      !GetVarint64(input, &info->value_count) ||
      !GetVarint64(input, &info->garbage_bytes) ||
      !GetVarint64(input, &info->dead_count) ||
      !GetVarint64(input, &npending)) {
    return false;
  }
  info->sealed = sealed != 0;
  info->pending.clear();
  for (uint64_t i = 0; i < npending; i++) {
    SegmentInfo::PendingPurge p;
    if (!GetVarint64(input, &p.purge_seq) || !GetVarint64(input, &p.count)) {
      return false;
    }
    info->pending.push_back(p);
  }
  return true;
}

void EncodeSegmentDelta(std::string* dst, const SegmentDelta& delta) {
  PutVarint64(dst, delta.number);
  PutVarint64(dst, delta.garbage_bytes);
  PutVarint64(dst, delta.dead_count);
  PutVarint64(dst, delta.purge_count);
  PutVarint64(dst, delta.purge_seq);
}

bool DecodeSegmentDelta(Slice* input, SegmentDelta* delta) {
  return GetVarint64(input, &delta->number) &&
         GetVarint64(input, &delta->garbage_bytes) &&
         GetVarint64(input, &delta->dead_count) &&
         GetVarint64(input, &delta->purge_count) &&
         GetVarint64(input, &delta->purge_seq);
}

}  // namespace vlog
}  // namespace acheron
