// Dereferences ValuePointers against vLog segment files.
//
// ReaderCache keeps one RandomAccessFile per segment behind its own mutex,
// so the lock-free read paths (DBImpl::Get / MultiGet / DBIter) never touch
// the DB mutex to resolve a pointer. Every read CRC-validates the record and
// back-checks the stored user key against the expected one, so a stale or
// corrupt pointer surfaces as Corruption instead of a wrong value.
#ifndef ACHERON_VLOG_VLOG_READER_H_
#define ACHERON_VLOG_VLOG_READER_H_

#include <map>
#include <memory>
#include <string>

#include "src/env/env.h"
#include "src/util/mutex.h"
#include "src/util/status.h"
#include "src/util/thread_annotations.h"
#include "src/vlog/vlog_format.h"

namespace acheron {
namespace vlog {

// Split one raw record (as addressed by a ValuePointer) into key/value,
// verifying the record CRC and framing.
[[nodiscard]] Status DecodeRecord(const Slice& record, Slice* key,
                                  Slice* value);

// Sequentially scan segment file |fname| and report the length of its valid
// record prefix plus the record count within it -- recovery's torn-tail
// truncation. Unreadable or missing files return the error; a clean file
// with a torn suffix still returns OK (the suffix is simply excluded).
[[nodiscard]] Status ScanSegment(Env* env, const std::string& fname,
                                 uint64_t* valid_bytes, uint64_t* value_count);

// One pointer dereference of a batched lookup (see ReaderCache::MultiGet).
struct ReadItem {
  ValuePointer ptr;
  Slice expected_key;            // keyed back-check input
  std::string* value = nullptr;  // output, set on OK
  Status status;
};

class ReaderCache {
 public:
  ReaderCache(Env* env, std::string dbname);

  ReaderCache(const ReaderCache&) = delete;
  ReaderCache& operator=(const ReaderCache&) = delete;

  // Read, CRC-validate, and key-back-check the record |ptr| names; on OK
  // |*value| holds the user value.
  [[nodiscard]] Status Get(const ValuePointer& ptr, const Slice& expected_key,
                           std::string* value);

  // Batched Get: fans all reads out as one Env::SubmitReads submission so
  // pointer resolution pipelines with the caller's other IO (MultiGet).
  // Validation runs on the completion threads; each item's status/value are
  // final when this returns.
  void MultiGet(ReadItem* items, size_t count);

  // Drop the cached handle for |segment| (called after GC unlinks it).
  void Evict(uint64_t segment);

 private:
  [[nodiscard]] Status GetFile(uint64_t segment,
                               std::shared_ptr<RandomAccessFile>* file);

  Env* const env_;
  const std::string dbname_;
  // Innermost leaf lock: held only across the map lookup/insert, never
  // while doing IO or acquiring any other lock.
  Mutex mu_;
  std::map<uint64_t, std::shared_ptr<RandomAccessFile>> files_ GUARDED_BY(mu_);
};

}  // namespace vlog
}  // namespace acheron

#endif  // ACHERON_VLOG_VLOG_READER_H_
