#include "src/vlog/vlog_writer.h"

#include <utility>

#include "src/util/crc32c.h"

namespace acheron {
namespace vlog {

Writer::Writer(std::unique_ptr<WritableFile> file, uint64_t segment_number)
    : file_(std::move(file)), segment_number_(segment_number) {}

Status Writer::Add(const Slice& key, const Slice& value, ValuePointer* ptr) {
  // Body first (lengths + key + value), then the CRC over the body: the
  // record is self-validating independent of any file framing.
  std::string body;
  body.reserve(10 + key.size() + value.size());
  PutVarint32(&body, static_cast<uint32_t>(key.size()));
  PutVarint32(&body, static_cast<uint32_t>(value.size()));
  body.append(key.data(), key.size());
  body.append(value.data(), value.size());

  char crc_buf[kRecordCrcSize];
  EncodeFixed32(crc_buf, crc32c::Mask(crc32c::Value(body.data(), body.size())));

  Status s = file_->Append(Slice(crc_buf, kRecordCrcSize));
  if (s.ok()) s = file_->Append(body);
  if (!s.ok()) return s;

  ptr->segment = segment_number_;
  ptr->offset = offset_;
  ptr->size = kRecordCrcSize + body.size();
  offset_ += ptr->size;
  value_count_++;
  return s;
}

Status Writer::Flush() { return file_->Flush(); }

Status Writer::Sync() {
  Status s = file_->Flush();
  if (s.ok()) s = file_->Sync();
  return s;
}

Status Writer::Close() { return file_->Close(); }

}  // namespace vlog
}  // namespace acheron
