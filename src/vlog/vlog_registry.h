// The vLog segment registry: per-segment accounting journaled through the
// MANIFEST (VersionEdit tags kVlogSegment/kVlogRemove/kVlogDelta), owned by
// VersionSet and mutated only under the DB mutex via LogAndApply/Recover.
//
// Each segment carries, besides its physical extent, the *FADE clock* that
// drives delete-compliant garbage collection: every compaction that drops a
// deletion-shadowed pointer into the segment appends a pending-purge entry
// (key-purge logical time + count). GC picks the segment whose earliest
// pending purge is oldest -- the value bytes a user's delete is still
// waiting on -- with the live-byte ratio as tiebreak, and reports
// key-purge -> value-purge latency to the persistence monitor when the
// segment dies.
#ifndef ACHERON_VLOG_VLOG_REGISTRY_H_
#define ACHERON_VLOG_VLOG_REGISTRY_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/lsm/dbformat.h"
#include "src/util/slice.h"

namespace acheron {
namespace vlog {

struct SegmentInfo {
  uint64_t number = 0;
  // Sealed segments are immutable: total_bytes/value_count are exact and
  // the file is fully synced. The (single) unsealed segment is the write
  // head; its totals track the appended extent and are finalized by the
  // seal edit (or by the torn-tail scan at recovery).
  bool sealed = false;
  uint64_t total_bytes = 0;
  uint64_t value_count = 0;
  // Record bytes whose LSM entries were dropped by compactions (the values
  // are unreachable; GC reclaims the space).
  uint64_t garbage_bytes = 0;
  uint64_t dead_count = 0;

  // Deletion-driven subset of the dead values: each entry is one
  // compaction's batch of key purges charged to this segment, stamped with
  // the compaction's logical time. Bounded by compaction count, not value
  // count (one entry per charging compaction).
  struct PendingPurge {
    SequenceNumber purge_seq = 0;
    uint64_t count = 0;
  };
  std::vector<PendingPurge> pending;

  uint64_t pending_count() const {
    uint64_t n = 0;
    for (const auto& p : pending) n += p.count;
    return n;
  }
  SequenceNumber earliest_pending_seq() const {
    SequenceNumber earliest = kMaxSequenceNumber;
    for (const auto& p : pending) {
      if (p.purge_seq < earliest) earliest = p.purge_seq;
    }
    return earliest;
  }
  double live_ratio() const {
    if (total_bytes == 0) return 1.0;
    return garbage_bytes >= total_bytes
               ? 0.0
               : 1.0 - static_cast<double>(garbage_bytes) / total_bytes;
  }
};

// One compaction's charge against one segment (journaled as kVlogDelta so
// recovery replays the clock bit-identically).
struct SegmentDelta {
  uint64_t number = 0;
  uint64_t garbage_bytes = 0;
  uint64_t dead_count = 0;
  // Deletion-driven subset: joins the segment's pending-purge clock with
  // purge_seq as the key-purge logical time.
  uint64_t purge_count = 0;
  SequenceNumber purge_seq = 0;
};

using Registry = std::map<uint64_t, SegmentInfo>;

void ApplyDelta(Registry* registry, const SegmentDelta& delta);

// Wire encoding used by the VersionEdit tags (version_edit.cc).
void EncodeSegmentInfo(std::string* dst, const SegmentInfo& info);
bool DecodeSegmentInfo(Slice* input, SegmentInfo* info);
void EncodeSegmentDelta(std::string* dst, const SegmentDelta& delta);
bool DecodeSegmentDelta(Slice* input, SegmentDelta* delta);

}  // namespace vlog
}  // namespace acheron

#endif  // ACHERON_VLOG_VLOG_REGISTRY_H_
