// Value-log on-disk format (key-value separation, WiscKey-style with
// Acheron's FADE-driven garbage collection on top; see DESIGN.md "Value log
// & delete-compliant GC").
//
// A vLog segment ("<number>.vlog") is an append-only sequence of records:
//
//   record := crc32c(fixed32) | keylen(varint32) | vallen(varint32)
//             | key bytes | value bytes
//
// The CRC covers everything after itself (lengths + key + value), so a read
// validates the whole record, and the stored key lets garbage collection
// (and RepairDB salvage) run a *keyed back-check*: a pointer only counts as
// live if the record it names still carries the same user key.
//
// A ValuePointer names a record by (segment, offset, size) where offset is
// the byte offset of the record's CRC and size is the total record length,
// so a dereference is exactly one read. Pointers ride the ordinary point-key
// machinery as the payload of kTypeValuePointer entries (dbformat.h): the
// WAL, memtables, and SSTs all carry the pointer, never the value.
#ifndef ACHERON_VLOG_VLOG_FORMAT_H_
#define ACHERON_VLOG_VLOG_FORMAT_H_

#include <cstdint>
#include <string>

#include "src/util/coding.h"
#include "src/util/slice.h"

namespace acheron {
namespace vlog {

// Fixed part of a record header: crc32c. The varint lengths follow.
static const size_t kRecordCrcSize = 4;

struct ValuePointer {
  uint64_t segment = 0;  // vLog file number (shared DB number space)
  uint64_t offset = 0;   // byte offset of the record inside the segment
  uint64_t size = 0;     // total record length in bytes

  bool operator==(const ValuePointer& o) const {
    return segment == o.segment && offset == o.offset && size == o.size;
  }
};

inline void EncodeValuePointer(std::string* dst, const ValuePointer& ptr) {
  PutVarint64(dst, ptr.segment);
  PutVarint64(dst, ptr.offset);
  PutVarint64(dst, ptr.size);
}

inline bool DecodeValuePointer(Slice* input, ValuePointer* ptr) {
  return GetVarint64(input, &ptr->segment) &&
         GetVarint64(input, &ptr->offset) && GetVarint64(input, &ptr->size);
}

// Convenience: decode a pointer stored as a whole entry payload (the
// kTypeValuePointer value slice). Fails on trailing garbage.
inline bool DecodeValuePointerStrict(const Slice& payload, ValuePointer* ptr) {
  Slice input = payload;
  return DecodeValuePointer(&input, ptr) && input.empty();
}

// Fold a pointer entry's segment number into a [min,max] span (0 = unset).
// Every table builder (flush, compaction, purge/GC rewrites, repair) feeds
// kTypeValuePointer payloads through this so FileMetaData's vLog span stays
// an over-approximation of the segments the file references. Undecodable
// payloads are ignored here; readers surface the corruption.
inline void FoldVlogSpan(const Slice& payload, uint64_t* min_segment,
                         uint64_t* max_segment) {
  ValuePointer ptr;
  if (!DecodeValuePointerStrict(payload, &ptr)) return;
  if (*min_segment == 0 || ptr.segment < *min_segment) {
    *min_segment = ptr.segment;
  }
  if (ptr.segment > *max_segment) *max_segment = ptr.segment;
}

}  // namespace vlog
}  // namespace acheron

#endif  // ACHERON_VLOG_VLOG_FORMAT_H_
