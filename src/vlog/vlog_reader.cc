#include "src/vlog/vlog_reader.h"

#include <utility>
#include <vector>

#include "src/lsm/filename.h"
#include "src/util/coding.h"
#include "src/util/crc32c.h"

namespace acheron {
namespace vlog {

Status DecodeRecord(const Slice& record, Slice* key, Slice* value) {
  if (record.size() < kRecordCrcSize + 2) {
    return Status::Corruption("vlog record", "too short");
  }
  const uint32_t expected = crc32c::Unmask(DecodeFixed32(record.data()));
  const Slice body(record.data() + kRecordCrcSize,
                   record.size() - kRecordCrcSize);
  if (crc32c::Value(body.data(), body.size()) != expected) {
    return Status::Corruption("vlog record", "checksum mismatch");
  }
  uint32_t klen = 0;
  uint32_t vlen = 0;
  const char* p = body.data();
  const char* limit = body.data() + body.size();
  p = GetVarint32Ptr(p, limit, &klen);
  if (p == nullptr) return Status::Corruption("vlog record", "bad key length");
  p = GetVarint32Ptr(p, limit, &vlen);
  if (p == nullptr) {
    return Status::Corruption("vlog record", "bad value length");
  }
  if (static_cast<uint64_t>(limit - p) !=
      static_cast<uint64_t>(klen) + vlen) {
    return Status::Corruption("vlog record", "length mismatch");
  }
  *key = Slice(p, klen);
  *value = Slice(p + klen, vlen);
  return Status::OK();
}

Status ScanSegment(Env* env, const std::string& fname, uint64_t* valid_bytes,
                   uint64_t* value_count) {
  *valid_bytes = 0;
  *value_count = 0;
  std::string contents;
  // io: open/recovery -- torn-tail scan of one segment during DB::Open
  Status s = env->ReadFileToString(fname, &contents);
  if (!s.ok()) return s;
  uint64_t off = 0;
  while (off < contents.size()) {
    const char* base = contents.data() + off;
    const uint64_t remaining = contents.size() - off;
    if (remaining < kRecordCrcSize + 2) break;
    // Frame the record: lengths live after the CRC; a torn or garbage tail
    // fails either the varint parse, the bounds check, or the CRC.
    uint32_t klen = 0;
    uint32_t vlen = 0;
    const char* p = base + kRecordCrcSize;
    const char* limit = base + remaining;
    p = GetVarint32Ptr(p, limit, &klen);
    if (p == nullptr) break;
    p = GetVarint32Ptr(p, limit, &vlen);
    if (p == nullptr) break;
    const uint64_t body_size =
        static_cast<uint64_t>(p - (base + kRecordCrcSize)) +
        static_cast<uint64_t>(klen) + vlen;
    const uint64_t record_size = kRecordCrcSize + body_size;
    if (record_size > remaining) break;
    const uint32_t expected = crc32c::Unmask(DecodeFixed32(base));
    if (crc32c::Value(base + kRecordCrcSize, body_size) != expected) break;
    off += record_size;
    (*value_count)++;
  }
  *valid_bytes = off;
  return Status::OK();
}

ReaderCache::ReaderCache(Env* env, std::string dbname)
    : env_(env), dbname_(std::move(dbname)) {}

Status ReaderCache::GetFile(uint64_t segment,
                            std::shared_ptr<RandomAccessFile>* file) {
  {
    MutexLock l(&mu_);
    auto it = files_.find(segment);
    if (it != files_.end()) {
      *file = it->second;
      return Status::OK();
    }
  }
  std::unique_ptr<RandomAccessFile> raw;
  // io: unlocked -- segment open on the mutex-free read path
  Status s = env_->NewRandomAccessFile(VlogFileName(dbname_, segment), &raw);
  if (!s.ok()) return s;
  std::shared_ptr<RandomAccessFile> shared(std::move(raw));
  MutexLock l(&mu_);
  auto it = files_.emplace(segment, std::move(shared)).first;
  *file = it->second;  // a racing opener may have won; use the cached handle
  return Status::OK();
}

namespace {

// Validate one completed record read against its pointer and expected key;
// on success copies the value out.
Status FinishRead(const ReadItem& item, const Slice& raw, std::string* value) {
  if (raw.size() != item.ptr.size) {
    return Status::Corruption("vlog record", "short read");
  }
  Slice key;
  Slice val;
  Status s = DecodeRecord(raw, &key, &val);
  if (!s.ok()) return s;
  if (key != item.expected_key) {
    // Keyed back-check: the record at this address belongs to another key,
    // so the pointer is stale (e.g. segment space reused after a bug).
    return Status::Corruption("vlog record", "key back-check failed");
  }
  value->assign(val.data(), val.size());
  return Status::OK();
}

struct PendingRead {
  ReadItem* item = nullptr;
  std::shared_ptr<RandomAccessFile> file;  // pins the handle past Evict
  std::vector<char> scratch;
  ReadRequest req;
};

void OnVlogReadComplete(ReadRequest* req) {
  auto* pending = static_cast<PendingRead*>(req->arg);
  ReadItem* item = pending->item;
  if (!req->status.ok()) {
    item->status = req->status;
    return;
  }
  item->status = FinishRead(*item, req->result, item->value);
}

}  // namespace

Status ReaderCache::Get(const ValuePointer& ptr, const Slice& expected_key,
                        std::string* value) {
  std::shared_ptr<RandomAccessFile> file;
  Status s = GetFile(ptr.segment, &file);
  if (!s.ok()) return s;
  std::vector<char> scratch(ptr.size);
  Slice raw;
  s = file->Read(ptr.offset, ptr.size, &raw, scratch.data());
  if (!s.ok()) return s;
  ReadItem item;
  item.ptr = ptr;
  item.expected_key = expected_key;
  return FinishRead(item, raw, value);
}

void ReaderCache::MultiGet(ReadItem* items, size_t count) {
  std::vector<PendingRead> pending;
  pending.reserve(count);
  std::vector<ReadRequest*> reqs;
  reqs.reserve(count);
  for (size_t i = 0; i < count; i++) {
    ReadItem* item = &items[i];
    std::shared_ptr<RandomAccessFile> file;
    Status s = GetFile(item->ptr.segment, &file);
    if (!s.ok()) {
      item->status = s;
      continue;
    }
    pending.emplace_back();
    PendingRead& p = pending.back();
    p.item = item;
    p.file = std::move(file);
    p.scratch.resize(item->ptr.size);
    p.req.file = p.file.get();
    p.req.offset = item->ptr.offset;
    p.req.n = item->ptr.size;
    p.req.scratch = p.scratch.data();
    p.req.on_complete = &OnVlogReadComplete;
    p.req.arg = &p;
  }
  if (pending.empty()) return;
  for (PendingRead& p : pending) reqs.push_back(&p.req);
  CompletionQueue cq;
  // io: unlocked -- batched pointer dereferences on the MultiGet path
  env_->SubmitReads(reqs.data(), reqs.size(), &cq);
  cq.WaitFor(reqs.size());
}

void ReaderCache::Evict(uint64_t segment) {
  MutexLock l(&mu_);
  files_.erase(segment);
}

}  // namespace vlog
}  // namespace acheron
