// Appends checksummed key/value records to one vLog segment file.
//
// Not internally synchronized: the write path's group-commit protocol
// already serializes appends (one leader at a time owns the unlocked write
// section), and segment rotation happens under the DB mutex while no leader
// is in that section (see db_impl.cc MakeRoomForWrite).
#ifndef ACHERON_VLOG_VLOG_WRITER_H_
#define ACHERON_VLOG_VLOG_WRITER_H_

#include <cstdint>
#include <memory>

#include "src/env/env.h"
#include "src/util/status.h"
#include "src/vlog/vlog_format.h"

namespace acheron {
namespace vlog {

class Writer {
 public:
  // Takes ownership of |file|, an empty (or logically-truncated) segment.
  Writer(std::unique_ptr<WritableFile> file, uint64_t segment_number);

  Writer(const Writer&) = delete;
  Writer& operator=(const Writer&) = delete;

  // Append one record; on success fills |*ptr| with its address. The bytes
  // may still sit in the file's user-space buffer until Flush().
  [[nodiscard]] Status Add(const Slice& key, const Slice& value,
                           ValuePointer* ptr);

  // Push buffered records to the OS (pointer visibility for readers).
  [[nodiscard]] Status Flush();
  // Durably persist everything appended so far.
  [[nodiscard]] Status Sync();
  [[nodiscard]] Status Close();

  uint64_t segment_number() const { return segment_number_; }
  // Bytes successfully appended (== the durable extent after Sync()).
  uint64_t offset() const { return offset_; }
  uint64_t value_count() const { return value_count_; }

 private:
  std::unique_ptr<WritableFile> file_;
  const uint64_t segment_number_;
  uint64_t offset_ = 0;
  uint64_t value_count_ = 0;
};

}  // namespace vlog
}  // namespace acheron

#endif  // ACHERON_VLOG_VLOG_WRITER_H_
