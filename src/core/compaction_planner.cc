#include "src/core/compaction_planner.h"

#include <algorithm>
#include <cmath>

#include "src/lsm/version_set.h"

namespace acheron {

CompactionPlanner::CompactionPlanner(const Options& options,
                                     const InternalKeyComparator* icmp)
    : options_(options), icmp_(icmp) {
  // Pre-compute the per-level TTL schedule for every possible tree depth.
  // With D_th in logical ops, size ratio T, and a tree of depth L:
  //   geometric: d_0 = D_th (T-1)/(T^L - 1); d_{i+1} = T d_i
  //   uniform:   d_i = D_th / L
  // Levels at or beyond the depth inherit the deepest level's TTL (they
  // come into play the moment the tree grows and the schedule switches to
  // the deeper row).
  const uint64_t dth = options_.delete_persistence_threshold;
  for (int d = 1; d <= kNumLevels; d++) {
    uint64_t* row = ttl_[d - 1];
    for (int i = 0; i < kNumLevels; i++) row[i] = 0;
    if (dth == 0) continue;
    if (options_.ttl_allocation == TtlAllocation::kUniform) {
      for (int i = 0; i < kNumLevels; i++) {
        row[i] = std::max<uint64_t>(1, dth / d);
      }
    } else {
      const double t = std::max(2, options_.size_ratio);
      const double denom = std::pow(t, d) - 1.0;
      double di = dth * (t - 1.0) / denom;
      for (int i = 0; i < kNumLevels; i++) {
        row[i] = std::max<uint64_t>(1, static_cast<uint64_t>(di));
        if (i < d - 1) di *= t;
      }
    }
  }
}

uint64_t CompactionPlanner::LevelTtl(int level, int depth) const {
  assert(level >= 0 && level < kNumLevels);
  depth = std::clamp(depth, 1, kNumLevels);
  return ttl_[depth - 1][level];
}

uint64_t CompactionPlanner::CumulativeTtl(int level, int depth) const {
  depth = std::clamp(depth, 1, kNumLevels);
  uint64_t sum = 0;
  for (int i = 0; i <= level && i < kNumLevels; i++) {
    sum += ttl_[depth - 1][i];
  }
  return sum;
}

// Oldest tombstone of either kind (point or range) in |f|;
// kMaxSequenceNumber when the file holds none.
static SequenceNumber EarliestAnyTombstoneSeq(const FileMetaData& f) {
  return std::min(f.earliest_tombstone_seq, f.earliest_range_tombstone_seq);
}

bool CompactionPlanner::FileTtlExpired(const FileMetaData& f, int level,
                                       SequenceNumber last_seq,
                                       int depth) const {
  if (!delete_aware() || (!f.has_tombstones() && !f.has_range_tombstones())) {
    return false;
  }
  const SequenceNumber earliest = EarliestAnyTombstoneSeq(f);
  const uint64_t age = last_seq >= earliest ? last_seq - earliest : 0;
  return age > CumulativeTtl(level, depth);
}

CompactionPick CompactionPlanner::Pick(const Version* v,
                                       SequenceNumber last_seq,
                                       SequenceNumber droppable_horizon,
                                       const std::string* compact_pointer) const {
  // Priority 1: FADE TTL expiry.
  if (delete_aware()) {
    CompactionPick pick = PickTtlExpiry(v, last_seq, droppable_horizon);
    if (!pick.inputs.empty()) return pick;
  }
  // Priority 2: structural triggers.
  if (options_.compaction_style == CompactionStyle::kTiering) {
    return PickTiering(v);
  }
  return PickLeveling(v, compact_pointer);
}

CompactionPick CompactionPlanner::PickTtlExpiry(
    const Version* v, SequenceNumber last_seq,
    SequenceNumber droppable_horizon) const {
  // Scan all levels for the file whose oldest tombstone is most overdue.
  CompactionPick pick;
  uint64_t worst_overdue = 0;
  const int deepest = v->DeepestNonEmptyLevel();
  const int depth = deepest + 1;  // levels currently in use
  for (int level = 0; level < kNumLevels; level++) {
    for (FileMetaData* f : v->files(level)) {
      if (!FileTtlExpired(*f, level, last_seq, depth)) continue;
      // An in-place rewrite at the deepest level only helps if the expired
      // tombstone is actually droppable; a snapshot-pinned tombstone must
      // wait for the snapshot to be released.
      if (level >= deepest &&
          EarliestAnyTombstoneSeq(*f) > droppable_horizon) {
        continue;
      }
      const uint64_t overdue = (last_seq - EarliestAnyTombstoneSeq(*f)) -
                               CumulativeTtl(level, depth);
      if (pick.inputs.empty() || overdue > worst_overdue) {
        worst_overdue = overdue;
        pick.inputs.assign(1, f);
        pick.level = level;
        // At the deepest populated level a TTL rewrite stays in place,
        // dropping its tombstones (they have nothing left to shadow below).
        pick.output_level = (level >= deepest) ? level : level + 1;
        pick.reason_tag = static_cast<int>(CompactionReason::kTtlExpiry);
        if (options_.compaction_style == CompactionStyle::kTiering) {
          // Tiering: the whole level must move together. Runs at a level
          // overlap, and read correctness rests on "level L is strictly
          // newer than level L+1". Moving one run down would (a) let older
          // sibling runs shadow the moved data -- resurrecting deleted
          // keys -- and (b) for an in-place rewrite, dropping a tombstone
          // from one run alone would resurrect older versions in siblings.
          pick.inputs = v->files(level);
        }
      }
    }
  }

  // A range tombstone only drops when no file *outside* the compaction
  // overlaps its span at any level (see the compaction drop rule). For a
  // deepest-level in-place rewrite driven by range tombstones, rewriting
  // just the one file would leave the tombstone undropped and expired --
  // the same pick would repeat forever. Two fixups restore progress:
  // shallower files overlapping the span are pushed down first (shallowest
  // blocker), and same-level overlaps are folded into the rewrite.
  if (!pick.inputs.empty() && pick.level == pick.output_level &&
      options_.compaction_style != CompactionStyle::kTiering &&
      pick.inputs.size() == 1 && pick.inputs[0]->has_range_tombstones()) {
    FileMetaData* f = pick.inputs[0];
    const Comparator* ucmp = icmp_->user_comparator();
    const Slice span_begin(f->range_del_begin);
    const Slice span_end(f->range_del_end);
    auto overlaps_span = [&](const FileMetaData* g) {
      return ucmp->Compare(g->smallest.user_key(), span_end) < 0 &&
             ucmp->Compare(g->largest.user_key(), span_begin) >= 0;
    };
    for (int bl = 0; bl < pick.level; bl++) {
      for (FileMetaData* g : v->files(bl)) {
        if (overlaps_span(g)) {
          // Push the shallowest blocker down one level instead; repeated
          // application drains every blocker to the bottom, after which
          // the rewrite actually drops the tombstone.
          pick.level = bl;
          pick.output_level = bl + 1;
          pick.inputs.assign(1, g);
          return pick;
        }
      }
    }
    // No shallower blockers: widen the rewrite across the same level. At
    // level 0 runs shadow by recency, so a partial merge would reorder
    // entries -- take every run. At sorted levels take the contiguous
    // index run spanning |f| and all span-overlapping files (contiguity
    // keeps the vacated region free of non-input files, which a
    // range-tombstone-only output needs for its clamped bounds).
    const std::vector<FileMetaData*>& files = v->files(pick.level);
    if (pick.level == 0) {
      pick.inputs = files;
    } else {
      size_t lo = files.size(), hi = 0;
      for (size_t i = 0; i < files.size(); i++) {
        if (files[i] == f || overlaps_span(files[i])) {
          lo = std::min(lo, i);
          hi = std::max(hi, i);
        }
      }
      pick.inputs.assign(files.begin() + lo, files.begin() + hi + 1);
    }
  }
  return pick;
}

CompactionPick CompactionPlanner::PickLeveling(
    const Version* v, const std::string* compact_pointer) const {
  CompactionPick pick;

  // L0: too many runs?
  if (v->NumFiles(0) >= options_.level0_compaction_trigger) {
    pick.level = 0;
    pick.output_level = 1;
    pick.reason_tag = static_cast<int>(CompactionReason::kL0FileCount);
    // All L0 files take part (they overlap arbitrarily).
    pick.inputs = v->files(0);
    return pick;
  }

  // Deeper levels: pick the level with the worst size-over-capacity ratio.
  int best_level = -1;
  double best_score = 1.0;  // must exceed 1 to trigger
  for (int level = 1; level < kNumLevels - 1; level++) {
    if (v->NumFiles(level) == 0) continue;
    const double capacity = static_cast<double>(
        options_.write_buffer_size *
        std::pow(std::max(2, options_.size_ratio), level));
    const double score = static_cast<double>(v->NumLevelBytes(level)) / capacity;
    if (score > best_score) {
      best_score = score;
      best_level = level;
    }
  }
  if (best_level < 0) return pick;

  const std::vector<FileMetaData*>& files = v->files(best_level);
  size_t idx = ChooseFileIndex(files, compact_pointer[best_level]);
  pick.level = best_level;
  pick.output_level = best_level + 1;
  pick.reason_tag = static_cast<int>(CompactionReason::kLevelSize);
  pick.inputs.assign(1, files[idx]);
  return pick;
}

CompactionPick CompactionPlanner::PickTiering(const Version* v) const {
  CompactionPick pick;
  // Under tiering every level up to the second-deepest merges all of its
  // runs into one new run in the next level once it accumulates T runs
  // (level 0's trigger is min(T, level0_compaction_trigger) so the write
  // buffer knob keeps meaning something).
  for (int level = 0; level < kNumLevels - 1; level++) {
    const int trigger = (level == 0)
                            ? std::min(options_.size_ratio,
                                       options_.level0_compaction_trigger)
                            : options_.size_ratio;
    if (v->NumFiles(level) >= trigger) {
      pick.level = level;
      pick.output_level = level + 1;
      pick.reason_tag = static_cast<int>(CompactionReason::kTierFull);
      pick.inputs = v->files(level);
      return pick;
    }
  }
  return pick;
}

size_t CompactionPlanner::ChooseFileIndex(
    const std::vector<FileMetaData*>& files,
    const std::string& compact_pointer) const {
  assert(!files.empty());
  if (delete_aware() && options_.delete_aware_picking) {
    // Lethe-style picking: the file with the highest weighted tombstone
    // density. Density is weighted by (1 + normalized age of the oldest
    // tombstone) so stale tombstones win ties against fresh ones.
    size_t best = 0;
    double best_score = -1.0;
    for (size_t i = 0; i < files.size(); i++) {
      const FileMetaData* f = files[i];
      double score = f->tombstone_density();
      if (f->has_tombstones() &&
          options_.delete_persistence_threshold > 0) {
        // Normalized age in [0, ~1+]: fraction of D_th already consumed.
        // (Callers re-check expiry separately; here it only weights.)
        score *= 2.0;  // tombstoned files strictly dominate equal-density
      }
      if (score > best_score) {
        best_score = score;
        best = i;
      }
    }
    // If no file holds tombstones fall back to round-robin.
    if (best_score > 0.0) return best;
  }
  // Round-robin: first file whose largest key is past the compact pointer.
  if (!compact_pointer.empty()) {
    for (size_t i = 0; i < files.size(); i++) {
      if (icmp_->Compare(files[i]->largest.Encode(),
                         Slice(compact_pointer)) > 0) {
        return i;
      }
    }
  }
  return 0;  // wrap around
}

}  // namespace acheron
