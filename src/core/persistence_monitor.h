// DeletePersistenceMonitor: observes the life cycle of tombstones and
// reports delete-persistence statistics -- the headline metric of Acheron.
//
// A delete becomes *persistent* when its tombstone is dropped at the
// bottommost level: at that instant no older version of the key can ever be
// read again (nothing below remains to shadow). The monitor records, for
// every persisted tombstone, the latency between tombstone creation and that
// drop, measured on the logical clock (sequence numbers == operations
// ingested). With a delete persistence threshold D_th configured, the
// invariant under FADE is max latency <= D_th (modulo in-flight compactions
// and snapshot pins).
#ifndef ACHERON_CORE_PERSISTENCE_MONITOR_H_
#define ACHERON_CORE_PERSISTENCE_MONITOR_H_

#include <cstdint>
#include <string>

#include "src/lsm/dbformat.h"
#include "src/util/histogram.h"
#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace acheron {

// Aggregate snapshot of delete-persistence state, returned by
// DB::GetDeleteStats().
struct DeleteStats {
  // Tombstones written since open.
  uint64_t tombstones_written = 0;
  // Tombstones persisted (dropped at the bottommost level).
  uint64_t tombstones_persisted = 0;
  // Tombstones superseded before persisting (e.g. the key was re-inserted,
  // making the tombstone obsolete; the delete never became observable).
  uint64_t tombstones_superseded = 0;
  // Live tombstones currently in the tree (memtable excluded).
  uint64_t tombstones_live = 0;
  // Age (in logical ops) of the oldest live tombstone in the tree.
  uint64_t oldest_live_tombstone_age = 0;

  // Persistence latency distribution in logical ops (seq delta between
  // tombstone creation and its drop at the bottom level).
  double persistence_latency_p50 = 0;
  double persistence_latency_p90 = 0;
  double persistence_latency_p99 = 0;
  double persistence_latency_max = 0;
  double persistence_latency_avg = 0;

  // ---- Range-delete (kTypeRangeDeletion) counterparts ----
  // Tracked separately: one range tombstone may cover many keys, so mixing
  // the two populations would skew both latency distributions.
  uint64_t range_deletes_written = 0;
  uint64_t range_deletes_persisted = 0;
  uint64_t range_deletes_superseded = 0;
  uint64_t range_deletes_live = 0;
  double range_persistence_latency_p50 = 0;
  double range_persistence_latency_p90 = 0;
  double range_persistence_latency_p99 = 0;
  double range_persistence_latency_max = 0;
  double range_persistence_latency_avg = 0;

  // ---- Value-purge (key-value separation) counterparts ----
  // A deleted key's value bytes in the vLog are only reclaimed when GC
  // rewrites (or drops) the segment holding them; delete-compliant GC
  // requires that to happen within D_th of the key purge. The latency here
  // is key-purge seq -> value-purge seq, in logical ops.
  uint64_t values_purged = 0;
  // Deleted keys whose value bytes are still waiting in the vLog.
  uint64_t value_purge_backlog = 0;
  double value_purge_latency_p50 = 0;
  double value_purge_latency_p90 = 0;
  double value_purge_latency_p99 = 0;
  double value_purge_latency_max = 0;
  double value_purge_latency_avg = 0;

  // True while a background-error episode (see DBImpl::RecordBackgroundError)
  // is delaying compactions past a due tombstone TTL deadline: the FADE
  // D_th bound is at risk until the episode recovers. Not journaled -- it
  // describes the live engine, not tombstone history.
  bool dth_at_risk = false;

  std::string ToString() const;
};

class DeletePersistenceMonitor {
 public:
  DeletePersistenceMonitor() = default;

  DeletePersistenceMonitor(const DeletePersistenceMonitor&) = delete;
  DeletePersistenceMonitor& operator=(const DeletePersistenceMonitor&) =
      delete;

  // A tombstone entered the system (Delete() was written).
  void OnTombstoneWritten(uint64_t n = 1);

  // A tombstone created at |created_seq| was dropped at the bottommost
  // level at logical time |now_seq|: the delete is now persistent.
  void OnTombstonePersisted(SequenceNumber created_seq,
                            SequenceNumber now_seq);

  // A tombstone was dropped because a newer entry for the same key shadows
  // it (it no longer represented the live state of the key).
  void OnTombstoneSuperseded(uint64_t n = 1);

  // Cumulative tombstones-written count; captured at memtable swap so flush
  // edits can journal it into the MANIFEST (see version_edit.h).
  uint64_t WrittenCount() const;

  // Fold one compaction's outcome into the counters. The compaction merge
  // loop accumulates persisted/superseded counts and latency samples locally
  // (mutex released) and applies them here only after the version edit that
  // carries the same delta is durably installed, so the live monitor and the
  // journaled state advance in lock step.
  void ApplyDelta(uint64_t persisted, uint64_t superseded,
                  const Histogram& latency);

  // Reset the monitor to journaled state at recovery time. |written| is the
  // journaled cumulative count plus deletes re-counted during WAL replay;
  // the rest comes verbatim from the MANIFEST journal, so the recovered
  // clock is exact -- bit-identical latency percentiles included.
  void Restore(uint64_t written, uint64_t persisted, uint64_t superseded,
               const Histogram& latency);

  // ---- Range-delete counterparts ----
  // Same life cycle, separate population: a range tombstone persists when
  // it is dropped at the bottommost level with nothing left to cover.
  void OnRangeTombstoneWritten(uint64_t n = 1);
  void OnRangeTombstonePersisted(SequenceNumber created_seq,
                                 SequenceNumber now_seq);
  void OnRangeTombstoneSuperseded(uint64_t n = 1);
  uint64_t RangeWrittenCount() const;
  void ApplyRangeDelta(uint64_t persisted, uint64_t superseded,
                       const Histogram& latency);
  void RestoreRange(uint64_t written, uint64_t persisted, uint64_t superseded,
                    const Histogram& latency);

  // ---- Value-purge (key-value separation) counterparts ----
  // vLog GC reclaimed the value bytes of deleted keys; same install-then-
  // apply discipline as ApplyDelta (the delta rides the GC's version edit).
  void ApplyVlogDelta(uint64_t purged, const Histogram& latency);
  void RestoreVlog(uint64_t purged, const Histogram& latency);

  // Fill |*stats| with the current aggregate; live-tombstone numbers are
  // supplied by the caller (they come from the current Version), as is the
  // value-purge backlog (it comes from the vLog segment registry).
  void Snapshot(DeleteStats* stats, uint64_t tombstones_live,
                uint64_t oldest_live_age, uint64_t range_tombstones_live = 0,
                uint64_t value_purge_backlog = 0) const;

  // Flag (or clear) the D_th-at-risk condition: set by the engine when a
  // background-error episode stalls compactions while a tombstone TTL
  // deadline is already due, cleared when the episode recovers.
  void SetDthAtRisk(bool at_risk);
  bool DthAtRisk() const;

  // Raw access to the latency histograms (benchmark reporting).
  Histogram LatencyHistogram() const;
  Histogram RangeLatencyHistogram() const;
  Histogram VlogLatencyHistogram() const;

 private:
  // mu_ is the innermost lock of the engine (see DESIGN.md "Locking
  // discipline"): no lock is acquired while holding it, and it is never
  // held while acquiring DBImpl::mutex_. Since the background pipeline,
  // callers are on both sides of that mutex: the write path records
  // OnTombstoneWritten under DBImpl::mutex_, while compaction's merge loop
  // reports OnTombstonePersisted/OnTombstoneSuperseded with the mutex
  // *released* -- mu_ alone is what makes those updates safe.
  mutable Mutex mu_;
  uint64_t written_ GUARDED_BY(mu_) = 0;
  uint64_t persisted_ GUARDED_BY(mu_) = 0;
  uint64_t superseded_ GUARDED_BY(mu_) = 0;
  Histogram latency_ GUARDED_BY(mu_);
  uint64_t range_written_ GUARDED_BY(mu_) = 0;
  uint64_t range_persisted_ GUARDED_BY(mu_) = 0;
  uint64_t range_superseded_ GUARDED_BY(mu_) = 0;
  Histogram range_latency_ GUARDED_BY(mu_);
  uint64_t vlog_purged_ GUARDED_BY(mu_) = 0;
  Histogram vlog_latency_ GUARDED_BY(mu_);
  bool dth_at_risk_ GUARDED_BY(mu_) = false;
};

}  // namespace acheron

#endif  // ACHERON_CORE_PERSISTENCE_MONITOR_H_
