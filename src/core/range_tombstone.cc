#include "src/core/range_tombstone.h"

#include <algorithm>

#include "src/util/coding.h"

namespace acheron {

void EncodeRangeTombstones(const std::vector<RangeTombstone>& tombstones,
                           std::string* dst) {
  PutVarint32(dst, static_cast<uint32_t>(tombstones.size()));
  for (const RangeTombstone& t : tombstones) {
    PutLengthPrefixedSlice(dst, t.begin);
    PutLengthPrefixedSlice(dst, t.end);
    PutVarint64(dst, t.seq);
  }
}

Status DecodeRangeTombstones(const Slice& input,
                             std::vector<RangeTombstone>* out) {
  out->clear();
  Slice in = input;
  uint32_t count;
  if (!GetVarint32(&in, &count)) {
    return Status::Corruption("range-tombstone block: bad count");
  }
  // A count implying more than one byte of payload per tombstone past the
  // remaining input is torn; reject before reserving memory for it.
  if (count > in.size()) {
    return Status::Corruption("range-tombstone block: count exceeds payload");
  }
  out->reserve(count);
  for (uint32_t i = 0; i < count; i++) {
    Slice begin, end;
    uint64_t seq;
    if (!GetLengthPrefixedSlice(&in, &begin) ||
        !GetLengthPrefixedSlice(&in, &end) || !GetVarint64(&in, &seq)) {
      out->clear();
      return Status::Corruption("range-tombstone block: truncated entry");
    }
    if (seq > kMaxSequenceNumber) {
      out->clear();
      return Status::Corruption("range-tombstone block: sequence out of range");
    }
    if (begin.compare(end) >= 0) {
      out->clear();
      return Status::Corruption("range-tombstone block: inverted range");
    }
    out->emplace_back(begin.ToString(), end.ToString(), seq);
  }
  if (!in.empty()) {
    out->clear();
    return Status::Corruption("range-tombstone block: trailing bytes");
  }
  return Status::OK();
}

void FragmentedRangeTombstoneList::Build(
    const Comparator* ucmp, const std::vector<RangeTombstone>& tombstones) {
  ucmp_ = ucmp;
  fragments_.clear();
  raw_.clear();
  raw_.reserve(tombstones.size());
  for (const RangeTombstone& t : tombstones) {
    if (ucmp->Compare(t.begin, t.end) < 0) raw_.push_back(t);
  }
  if (raw_.empty()) return;

  // Fragment boundaries: every begin and end key, deduplicated.
  std::vector<Slice> bounds;
  bounds.reserve(raw_.size() * 2);
  for (const RangeTombstone& t : raw_) {
    bounds.push_back(t.begin);
    bounds.push_back(t.end);
  }
  std::sort(bounds.begin(), bounds.end(),
            [ucmp](const Slice& a, const Slice& b) {
              return ucmp->Compare(a, b) < 0;
            });
  bounds.erase(std::unique(bounds.begin(), bounds.end(),
                           [ucmp](const Slice& a, const Slice& b) {
                             return ucmp->Compare(a, b) == 0;
                           }),
               bounds.end());

  // For each adjacent boundary pair, collect the seqs of covering
  // tombstones. Quadratic in tombstone count, which is fine at the scale a
  // single memtable/SSTable accumulates; fragments are built once per flush
  // or table open, never per read.
  for (size_t i = 0; i + 1 < bounds.size(); i++) {
    Fragment frag;
    for (const RangeTombstone& t : raw_) {
      if (ucmp->Compare(t.begin, bounds[i]) <= 0 &&
          ucmp->Compare(bounds[i + 1], t.end) <= 0) {
        frag.seqs.push_back(t.seq);
      }
    }
    if (frag.seqs.empty()) continue;
    std::sort(frag.seqs.begin(), frag.seqs.end());
    frag.begin.assign(bounds[i].data(), bounds[i].size());
    frag.end.assign(bounds[i + 1].data(), bounds[i + 1].size());
    // Merge with the previous fragment when contiguous and identical, so
    // abutting tombstones do not fracture into needless pieces.
    if (!fragments_.empty() && fragments_.back().end == frag.begin &&
        fragments_.back().seqs == frag.seqs) {
      fragments_.back().end = frag.end;
    } else {
      fragments_.push_back(std::move(frag));
    }
  }
}

SequenceNumber FragmentedRangeTombstoneList::MaxCoveringSeq(
    const Slice& user_key, SequenceNumber snapshot) const {
  if (fragments_.empty()) return 0;
  // First fragment whose end is past the key...
  auto it = std::upper_bound(
      fragments_.begin(), fragments_.end(), user_key,
      [this](const Slice& k, const Fragment& f) {
        return ucmp_->Compare(k, f.end) < 0;
      });
  if (it == fragments_.end()) return 0;
  // ...must also start at or before it.
  if (ucmp_->Compare(user_key, it->begin) < 0) return 0;
  // Largest covering seq visible at |snapshot|.
  auto sit = std::upper_bound(it->seqs.begin(), it->seqs.end(), snapshot);
  if (sit == it->seqs.begin()) return 0;
  return *(sit - 1);
}

}  // namespace acheron
