// CompactionPlanner: Acheron's delete-aware compaction policy (FADE) plus
// the vanilla leveling/tiering triggers it extends.
//
// The planner answers one question: "which compaction is most urgent right
// now?". Priorities, highest first:
//   1. TTL expiry (FADE): a file whose oldest tombstone has outlived the
//      cumulative TTL of its level must move down (or, at the bottommost
//      populated level, be rewritten in place to drop its tombstones). This
//      is what bounds delete persistence by D_th.
//   2. Structural triggers: L0 run count / level size (leveling) or runs
//      per level (tiering).
// Within a size-triggered level, file picking is round-robin by default; with
// Options::delete_aware_picking the file with the highest weighted tombstone
// density is chosen instead, so tombstones ride down the tree sooner.
#ifndef ACHERON_CORE_COMPACTION_PLANNER_H_
#define ACHERON_CORE_COMPACTION_PLANNER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/lsm/dbformat.h"
#include "src/lsm/options.h"
#include "src/lsm/version_edit.h"

namespace acheron {

class Version;
enum class CompactionReason;

// What the planner decided; the VersionSet turns this into a Compaction.
struct CompactionPick {
  // kNone when no compaction is needed.
  int level = -1;
  int output_level = -1;
  std::vector<FileMetaData*> inputs;  // files from |level|
  // Filled with the matching CompactionReason by the planner.
  int reason_tag = 0;
};

// Immutable after construction (the TTL schedule is precomputed), so it is
// safe to call concurrently; in practice Pick() runs under DBImpl::mutex_
// because it inspects the mutex-guarded current Version.
class CompactionPlanner {
 public:
  CompactionPlanner(const Options& options, const InternalKeyComparator* icmp);

  // --- TTL schedule (FADE) ---
  //
  // D_th is divided over the levels the tree *currently uses* (|depth|
  // levels, recomputed as the tree grows), mirroring Lethe's allocation
  // against actual level fill times: a 2-level tree gives its levels far
  // longer budgets than a hypothetical 7-level tree would, so FADE does not
  // over-compact shallow trees. Whatever the depth, the cumulative budget
  // of the deepest level is exactly D_th, preserving the bound.

  // Per-level TTL d_i in sequence-number (logical-op) units, for a tree
  // currently |depth| levels deep (depth >= 1).
  uint64_t LevelTtl(int level, int depth) const;
  // Cumulative TTL sum_{j<=level} d_j: the deadline, relative to tombstone
  // creation, by which a tombstone must have left |level|.
  uint64_t CumulativeTtl(int level, int depth) const;
  // Static-plan conveniences (depth = Options::num_levels).
  uint64_t LevelTtl(int level) const {
    return LevelTtl(level, options_.num_levels);
  }
  uint64_t CumulativeTtl(int level) const {
    return CumulativeTtl(level, options_.num_levels);
  }
  // True iff |f|, residing at |level| of a |depth|-deep tree, holds a
  // tombstone older than the level's cumulative TTL at logical |last_seq|.
  bool FileTtlExpired(const FileMetaData& f, int level, SequenceNumber last_seq,
                      int depth) const;
  bool FileTtlExpired(const FileMetaData& f, int level,
                      SequenceNumber last_seq) const {
    return FileTtlExpired(f, level, last_seq, options_.num_levels);
  }

  // Whether delete-aware machinery is active (D_th > 0).
  bool delete_aware() const {
    return options_.delete_persistence_threshold > 0;
  }

  // --- The pick ---

  // Inspect |v| and report the most urgent compaction, or an empty pick.
  // |compact_pointer| is the per-level round-robin cursor maintained by the
  // VersionSet (keys encoded as internal keys; empty = start of level).
  // |droppable_horizon| is the oldest sequence any reader may still need
  // (tombstones above it cannot be dropped yet); it gates in-place bottom-
  // level rewrites so a snapshot-pinned tombstone never causes a futile
  // rewrite loop.
  CompactionPick Pick(const Version* v, SequenceNumber last_seq,
                      SequenceNumber droppable_horizon,
                      const std::string* compact_pointer) const;

 private:
  CompactionPick PickTtlExpiry(const Version* v, SequenceNumber last_seq,
                               SequenceNumber droppable_horizon) const;
  CompactionPick PickLeveling(const Version* v,
                              const std::string* compact_pointer) const;
  CompactionPick PickTiering(const Version* v) const;

  // Among |files|, choose the index for a size-triggered compaction:
  // round-robin after |compact_pointer| by default, or highest weighted
  // tombstone density when delete-aware picking is on.
  size_t ChooseFileIndex(const std::vector<FileMetaData*>& files,
                         const std::string& compact_pointer) const;

  const Options& options_;
  const InternalKeyComparator* icmp_;
  // ttl_[d-1][i] = TTL of level i when the tree is d levels deep.
  uint64_t ttl_[kNumLevels][kNumLevels];
};

}  // namespace acheron

#endif  // ACHERON_CORE_COMPACTION_PLANNER_H_
