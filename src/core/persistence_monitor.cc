#include "src/core/persistence_monitor.h"

#include <cstdio>

namespace acheron {

std::string DeleteStats::ToString() const {
  char buf[1536];
  std::snprintf(
      buf, sizeof(buf),
      "tombstones: written=%llu persisted=%llu superseded=%llu live=%llu "
      "oldest_live_age=%llu | persistence latency (ops): avg=%.0f p50=%.0f "
      "p90=%.0f p99=%.0f max=%.0f | range deletes: written=%llu "
      "persisted=%llu superseded=%llu live=%llu | range latency (ops): "
      "avg=%.0f p50=%.0f p90=%.0f p99=%.0f max=%.0f | value purges: "
      "purged=%llu backlog=%llu latency avg=%.0f p50=%.0f p99=%.0f "
      "max=%.0f | dth_at_risk=%d",
      static_cast<unsigned long long>(tombstones_written),
      static_cast<unsigned long long>(tombstones_persisted),
      static_cast<unsigned long long>(tombstones_superseded),
      static_cast<unsigned long long>(tombstones_live),
      static_cast<unsigned long long>(oldest_live_tombstone_age),
      persistence_latency_avg, persistence_latency_p50,
      persistence_latency_p90, persistence_latency_p99,
      persistence_latency_max,
      static_cast<unsigned long long>(range_deletes_written),
      static_cast<unsigned long long>(range_deletes_persisted),
      static_cast<unsigned long long>(range_deletes_superseded),
      static_cast<unsigned long long>(range_deletes_live),
      range_persistence_latency_avg, range_persistence_latency_p50,
      range_persistence_latency_p90, range_persistence_latency_p99,
      range_persistence_latency_max,
      static_cast<unsigned long long>(values_purged),
      static_cast<unsigned long long>(value_purge_backlog),
      value_purge_latency_avg, value_purge_latency_p50,
      value_purge_latency_p99, value_purge_latency_max, dth_at_risk ? 1 : 0);
  return buf;
}

void DeletePersistenceMonitor::OnTombstoneWritten(uint64_t n) {
  MutexLock l(&mu_);
  written_ += n;
}

void DeletePersistenceMonitor::OnTombstonePersisted(SequenceNumber created_seq,
                                                    SequenceNumber now_seq) {
  MutexLock l(&mu_);
  persisted_++;
  const uint64_t latency = now_seq >= created_seq ? now_seq - created_seq : 0;
  latency_.Add(static_cast<double>(latency));
}

void DeletePersistenceMonitor::OnTombstoneSuperseded(uint64_t n) {
  MutexLock l(&mu_);
  superseded_ += n;
}

uint64_t DeletePersistenceMonitor::WrittenCount() const {
  MutexLock l(&mu_);
  return written_;
}

void DeletePersistenceMonitor::ApplyDelta(uint64_t persisted,
                                          uint64_t superseded,
                                          const Histogram& latency) {
  MutexLock l(&mu_);
  persisted_ += persisted;
  superseded_ += superseded;
  latency_.Merge(latency);
}

void DeletePersistenceMonitor::Restore(uint64_t written, uint64_t persisted,
                                       uint64_t superseded,
                                       const Histogram& latency) {
  MutexLock l(&mu_);
  written_ = written;
  persisted_ = persisted;
  superseded_ = superseded;
  latency_ = latency;
}

void DeletePersistenceMonitor::OnRangeTombstoneWritten(uint64_t n) {
  MutexLock l(&mu_);
  range_written_ += n;
}

void DeletePersistenceMonitor::OnRangeTombstonePersisted(
    SequenceNumber created_seq, SequenceNumber now_seq) {
  MutexLock l(&mu_);
  range_persisted_++;
  const uint64_t latency = now_seq >= created_seq ? now_seq - created_seq : 0;
  range_latency_.Add(static_cast<double>(latency));
}

void DeletePersistenceMonitor::OnRangeTombstoneSuperseded(uint64_t n) {
  MutexLock l(&mu_);
  range_superseded_ += n;
}

uint64_t DeletePersistenceMonitor::RangeWrittenCount() const {
  MutexLock l(&mu_);
  return range_written_;
}

void DeletePersistenceMonitor::ApplyRangeDelta(uint64_t persisted,
                                               uint64_t superseded,
                                               const Histogram& latency) {
  MutexLock l(&mu_);
  range_persisted_ += persisted;
  range_superseded_ += superseded;
  range_latency_.Merge(latency);
}

void DeletePersistenceMonitor::RestoreRange(uint64_t written,
                                            uint64_t persisted,
                                            uint64_t superseded,
                                            const Histogram& latency) {
  MutexLock l(&mu_);
  range_written_ = written;
  range_persisted_ = persisted;
  range_superseded_ = superseded;
  range_latency_ = latency;
}

void DeletePersistenceMonitor::ApplyVlogDelta(uint64_t purged,
                                              const Histogram& latency) {
  MutexLock l(&mu_);
  vlog_purged_ += purged;
  vlog_latency_.Merge(latency);
}

void DeletePersistenceMonitor::RestoreVlog(uint64_t purged,
                                           const Histogram& latency) {
  MutexLock l(&mu_);
  vlog_purged_ = purged;
  vlog_latency_ = latency;
}

void DeletePersistenceMonitor::Snapshot(DeleteStats* stats,
                                        uint64_t tombstones_live,
                                        uint64_t oldest_live_age,
                                        uint64_t range_tombstones_live,
                                        uint64_t value_purge_backlog) const {
  MutexLock l(&mu_);
  stats->tombstones_written = written_;
  stats->tombstones_persisted = persisted_;
  stats->tombstones_superseded = superseded_;
  stats->tombstones_live = tombstones_live;
  stats->oldest_live_tombstone_age = oldest_live_age;
  stats->persistence_latency_p50 = latency_.Percentile(50);
  stats->persistence_latency_p90 = latency_.Percentile(90);
  stats->persistence_latency_p99 = latency_.Percentile(99);
  stats->persistence_latency_max = latency_.Max();
  stats->persistence_latency_avg = latency_.Average();
  stats->range_deletes_written = range_written_;
  stats->range_deletes_persisted = range_persisted_;
  stats->range_deletes_superseded = range_superseded_;
  stats->range_deletes_live = range_tombstones_live;
  stats->range_persistence_latency_p50 = range_latency_.Percentile(50);
  stats->range_persistence_latency_p90 = range_latency_.Percentile(90);
  stats->range_persistence_latency_p99 = range_latency_.Percentile(99);
  stats->range_persistence_latency_max = range_latency_.Max();
  stats->range_persistence_latency_avg = range_latency_.Average();
  stats->values_purged = vlog_purged_;
  stats->value_purge_backlog = value_purge_backlog;
  stats->value_purge_latency_p50 = vlog_latency_.Percentile(50);
  stats->value_purge_latency_p90 = vlog_latency_.Percentile(90);
  stats->value_purge_latency_p99 = vlog_latency_.Percentile(99);
  stats->value_purge_latency_max = vlog_latency_.Max();
  stats->value_purge_latency_avg = vlog_latency_.Average();
  stats->dth_at_risk = dth_at_risk_;
}

void DeletePersistenceMonitor::SetDthAtRisk(bool at_risk) {
  MutexLock l(&mu_);
  dth_at_risk_ = at_risk;
}

bool DeletePersistenceMonitor::DthAtRisk() const {
  MutexLock l(&mu_);
  return dth_at_risk_;
}

Histogram DeletePersistenceMonitor::LatencyHistogram() const {
  MutexLock l(&mu_);
  return latency_;
}

Histogram DeletePersistenceMonitor::RangeLatencyHistogram() const {
  MutexLock l(&mu_);
  return range_latency_;
}

Histogram DeletePersistenceMonitor::VlogLatencyHistogram() const {
  MutexLock l(&mu_);
  return vlog_latency_;
}

}  // namespace acheron
