// Range tombstones: the kTypeRangeDeletion record, its SSTable block wire
// format, and the fragmented coverage structure the read path queries.
//
// A range tombstone [begin, end)@seq hides every entry for a user key in
// [begin, end) whose sequence number is below seq. Raw tombstones may
// overlap arbitrarily; FragmentedRangeTombstoneList splits them at every
// begin/end boundary into disjoint fragments, each carrying the sorted
// sequence numbers of the tombstones covering it, so a snapshot-aware
// coverage query is one binary search plus one bound lookup.
//
// Block wire format (written by TableBuilder behind the standard
// type+crc32c trailer, handle persisted in TableProperties):
//   num_tombstones: varint32
//   per tombstone:  begin varstring | end varstring | seq varint64
// Tombstones with begin >= end or seq > kMaxSequenceNumber are rejected at
// decode time; DecodeRangeTombstones never crashes on torn input.
#ifndef ACHERON_CORE_RANGE_TOMBSTONE_H_
#define ACHERON_CORE_RANGE_TOMBSTONE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/lsm/dbformat.h"
#include "src/util/comparator.h"
#include "src/util/slice.h"
#include "src/util/status.h"

namespace acheron {

// One raw range delete as written: [begin, end) at sequence seq.
struct RangeTombstone {
  std::string begin;  // inclusive
  std::string end;    // exclusive
  SequenceNumber seq = 0;

  RangeTombstone() = default;
  RangeTombstone(std::string b, std::string e, SequenceNumber s)
      : begin(std::move(b)), end(std::move(e)), seq(s) {}
};

// Serialize |tombstones| into the range-tombstone block wire format.
void EncodeRangeTombstones(const std::vector<RangeTombstone>& tombstones,
                           std::string* dst);

// Parse a range-tombstone block. Returns Corruption (never crashes) on
// truncated, torn, or semantically invalid input (begin >= end, seq out of
// range, trailing bytes, count mismatch).
Status DecodeRangeTombstones(const Slice& input,
                             std::vector<RangeTombstone>* out);

// Disjoint fragments built from a set of possibly-overlapping raw
// tombstones. Immutable after Build(); safe for concurrent readers.
class FragmentedRangeTombstoneList {
 public:
  struct Fragment {
    std::string begin;  // inclusive
    std::string end;    // exclusive
    // Ascending sequence numbers of every tombstone covering the fragment.
    std::vector<SequenceNumber> seqs;
  };

  FragmentedRangeTombstoneList() = default;

  // Fragment |tombstones| under |ucmp| (user-key order). Empty and inverted
  // inputs (begin >= end) are dropped.
  void Build(const Comparator* ucmp,
             const std::vector<RangeTombstone>& tombstones);

  bool empty() const { return fragments_.empty(); }
  const std::vector<Fragment>& fragments() const { return fragments_; }
  // The raw tombstones this list was built from (compaction re-emits them).
  const std::vector<RangeTombstone>& raw() const { return raw_; }

  // Largest tombstone sequence <= |snapshot| covering |user_key|, or 0 when
  // uncovered. An entry at sequence s is hidden iff the result exceeds s.
  SequenceNumber MaxCoveringSeq(const Slice& user_key,
                                SequenceNumber snapshot) const;

 private:
  const Comparator* ucmp_ = nullptr;
  std::vector<Fragment> fragments_;
  std::vector<RangeTombstone> raw_;
};

}  // namespace acheron

#endif  // ACHERON_CORE_RANGE_TOMBSTONE_H_
