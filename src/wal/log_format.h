// WAL record format, shared by writer and reader.
//
// The log is a sequence of 32 KiB blocks. Each record has a 7-byte header:
//   checksum: uint32  (crc32c of type + payload, masked)
//   length:   uint16
//   type:     uint8   (full / first / middle / last)
// A user record that does not fit in the remainder of a block is split into
// first/middle/last fragments. A block trailer of <7 bytes is zero-filled.
#ifndef ACHERON_WAL_LOG_FORMAT_H_
#define ACHERON_WAL_LOG_FORMAT_H_

namespace acheron {
namespace wal {

enum RecordType {
  // Zero is reserved for preallocated files.
  kZeroType = 0,
  kFullType = 1,
  kFirstType = 2,
  kMiddleType = 3,
  kLastType = 4
};
static const int kMaxRecordType = kLastType;

static const int kBlockSize = 32768;

// Header is checksum (4 bytes), length (2 bytes), type (1 byte).
static const int kHeaderSize = 4 + 2 + 1;

}  // namespace wal
}  // namespace acheron

#endif  // ACHERON_WAL_LOG_FORMAT_H_
