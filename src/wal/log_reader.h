// Reads records written by wal::Writer, detecting and skipping corruption.
#ifndef ACHERON_WAL_LOG_READER_H_
#define ACHERON_WAL_LOG_READER_H_

#include <cstdint>
#include <string>

#include "src/env/env.h"
#include "src/util/slice.h"
#include "src/util/status.h"
#include "src/wal/log_format.h"

namespace acheron {
namespace wal {

class Reader {
 public:
  // Interface for reporting errors found while parsing the log.
  class Reporter {
   public:
    virtual ~Reporter() = default;
    // |bytes| is the approximate number of bytes dropped due to corruption.
    virtual void Corruption(size_t bytes, const Status& status) = 0;
  };

  // The Reader extracts records from |*file| (which must stay live).
  // If |checksum| is true, verify record checksums. |*reporter| may be null.
  Reader(SequentialFile* file, Reporter* reporter, bool checksum);

  Reader(const Reader&) = delete;
  Reader& operator=(const Reader&) = delete;

  ~Reader();

  // Read the next record into *record. Returns true if read successfully,
  // false on EOF. *record may point into *scratch.
  bool ReadRecord(Slice* record, std::string* scratch);

 private:
  // Extended record types for internal error signalling.
  enum {
    kEof = kMaxRecordType + 1,
    kBadRecord = kMaxRecordType + 2,
  };

  // Return type, or one of the preceding special values.
  unsigned int ReadPhysicalRecord(Slice* result);

  void ReportCorruption(uint64_t bytes, const char* reason);
  void ReportDrop(uint64_t bytes, const Status& reason);

  SequentialFile* const file_;
  Reporter* const reporter_;
  bool const checksum_;
  char* const backing_store_;
  Slice buffer_;
  bool eof_;  // Last Read() indicated EOF by returning < kBlockSize
};

}  // namespace wal
}  // namespace acheron

#endif  // ACHERON_WAL_LOG_READER_H_
