// Appends length-prefixed, checksummed records to a WAL file.
#ifndef ACHERON_WAL_LOG_WRITER_H_
#define ACHERON_WAL_LOG_WRITER_H_

#include <cstdint>

#include "src/env/env.h"
#include "src/util/slice.h"
#include "src/util/status.h"
#include "src/wal/log_format.h"

namespace acheron {
namespace wal {

class Writer {
 public:
  // Create a writer that will append data to "*dest". "*dest" must remain
  // live while this Writer is in use.
  explicit Writer(WritableFile* dest);

  // Create a writer that appends to "*dest" which has initial length
  // "dest_length" (reopening an existing log).
  Writer(WritableFile* dest, uint64_t dest_length);

  Writer(const Writer&) = delete;
  Writer& operator=(const Writer&) = delete;

  Status AddRecord(const Slice& slice);

 private:
  Status EmitPhysicalRecord(RecordType type, const char* ptr, size_t length);

  WritableFile* dest_;
  int block_offset_;  // Current offset in block

  // crc32c values for all supported record types, precomputed to reduce the
  // overhead of computing the crc of the type stored in the header.
  uint32_t type_crc_[kMaxRecordType + 1];
};

}  // namespace wal
}  // namespace acheron

#endif  // ACHERON_WAL_LOG_WRITER_H_
