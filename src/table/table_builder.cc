#include "src/table/table_builder.h"

#include <cassert>
#include <vector>

#include "src/env/env.h"
#include "src/table/block_builder.h"
#include "src/table/format.h"
#include "src/util/bloom.h"
#include "src/util/coding.h"
#include "src/util/comparator.h"
#include "src/util/crc32c.h"

namespace acheron {

struct TableBuilder::Rep {
  Rep(const Options& opt, WritableFile* f)
      : options(opt),
        file(f),
        offset(0),
        data_block(opt.block_restart_interval),
        index_block(1),
        num_entries(0),
        closed(false),
        // Prefer the DB-wide shared policy; allocate a per-builder fallback
        // only for standalone builders whose Options carry none.
        owned_filter_policy(opt.filter_policy == nullptr &&
                                    opt.filter_bits_per_key > 0
                                ? NewBloomFilterPolicy(opt.filter_bits_per_key)
                                : nullptr),
        filter_policy(opt.filter_policy != nullptr ? opt.filter_policy
                                                   : owned_filter_policy),
        pending_index_entry(false) {}

  ~Rep() { delete owned_filter_policy; }

  Options options;
  WritableFile* file;
  uint64_t offset;
  Status status;
  BlockBuilder data_block;
  BlockBuilder index_block;
  std::string last_key;
  int64_t num_entries;
  bool closed;  // Either Finish() or Abandon() has been called.
  const FilterPolicy* owned_filter_policy;  // null when Options shares one
  const FilterPolicy* filter_policy;        // may alias owned_filter_policy
  // Keys accumulated for the full-file Bloom filter.
  std::vector<std::string> filter_keys;
  // Raw range tombstones, emitted as a dedicated block at Finish().
  std::vector<RangeTombstone> range_tombstones;
  TableProperties properties;

  // We do not emit the index entry for a block until we have seen the first
  // key for the next data block. This allows us to use shorter keys in the
  // index block.
  bool pending_index_entry;
  BlockHandle pending_handle;  // Handle to add to index block

  std::string compressed_output;
};

TableBuilder::TableBuilder(const Options& options, WritableFile* file)
    : rep_(new Rep(options, file)) {}

TableBuilder::~TableBuilder() {
  assert(rep_->closed);  // Catch errors where caller forgot to call Finish()
  delete rep_;
}

void TableBuilder::Add(const Slice& key, const Slice& value,
                       const Slice& filter_key) {
  Rep* r = rep_;
  assert(!r->closed);
  if (!ok()) return;
  const Comparator* cmp =
      r->options.comparator ? r->options.comparator : BytewiseComparator();
  if (r->num_entries > 0) {
    assert(cmp->Compare(key, Slice(r->last_key)) > 0);
  }

  if (r->pending_index_entry) {
    assert(r->data_block.empty());
    cmp->FindShortestSeparator(&r->last_key, key);
    std::string handle_encoding;
    r->pending_handle.EncodeTo(&handle_encoding);
    r->index_block.Add(r->last_key, Slice(handle_encoding));
    r->pending_index_entry = false;
  }

  if (r->filter_policy != nullptr) {
    r->filter_keys.push_back(filter_key.ToString());
  }

  r->last_key.assign(key.data(), key.size());
  r->num_entries++;
  r->properties.num_entries++;
  r->properties.raw_key_bytes += key.size();
  r->properties.raw_value_bytes += value.size();
  r->data_block.Add(key, value);

  const size_t estimated_block_size = r->data_block.CurrentSizeEstimate();
  if (estimated_block_size >= r->options.block_size) {
    Flush();
  }
}

void TableBuilder::AddRangeTombstone(const Slice& begin, const Slice& end,
                                     SequenceNumber seq,
                                     const Comparator* ucmp) {
  Rep* r = rep_;
  assert(!r->closed);
  if (!ok()) return;
  const Comparator* cmp = ucmp != nullptr ? ucmp : BytewiseComparator();
  if (cmp->Compare(begin, end) >= 0) return;  // covers nothing
  // Deliberately not added to the Bloom filter: range coverage queries go
  // straight to the decoded fragment list, never through the filter.
  r->range_tombstones.emplace_back(begin.ToString(), end.ToString(), seq);
  r->properties.num_range_tombstones++;
  if (seq < r->properties.earliest_range_tombstone_time) {
    r->properties.earliest_range_tombstone_time = seq;
  }
  if (r->properties.range_del_begin.empty() ||
      cmp->Compare(begin, r->properties.range_del_begin) < 0) {
    r->properties.range_del_begin = begin.ToString();
  }
  if (r->properties.range_del_end.empty() ||
      cmp->Compare(end, r->properties.range_del_end) > 0) {
    r->properties.range_del_end = end.ToString();
  }
}

void TableBuilder::Flush() {
  Rep* r = rep_;
  assert(!r->closed);
  if (!ok()) return;
  if (r->data_block.empty()) return;
  assert(!r->pending_index_entry);
  WriteBlock(&r->data_block, &r->pending_handle);
  if (ok()) {
    r->pending_index_entry = true;
    r->properties.num_data_blocks++;
    r->status = r->file->Flush();
  }
}

void TableBuilder::WriteBlock(BlockBuilder* block, BlockHandle* handle) {
  // File format contains a sequence of blocks where each block has:
  //    block_data: uint8[n]
  //    type: uint8 (0 = uncompressed)
  //    crc: uint32
  assert(ok());
  Slice raw = block->Finish();
  WriteRawBlock(raw, handle);
  block->Reset();
}

void TableBuilder::WriteRawBlock(const Slice& block_contents,
                                 BlockHandle* handle) {
  Rep* r = rep_;
  handle->set_offset(r->offset);
  handle->set_size(block_contents.size());
  r->status = r->file->Append(block_contents);
  if (r->status.ok()) {
    char trailer[kBlockTrailerSize];
    trailer[0] = 0;  // uncompressed
    uint32_t crc = crc32c::Value(block_contents.data(), block_contents.size());
    crc = crc32c::Extend(crc, trailer, 1);  // Extend crc to cover block type
    EncodeFixed32(trailer + 1, crc32c::Mask(crc));
    r->status = r->file->Append(Slice(trailer, kBlockTrailerSize));
    if (r->status.ok()) {
      r->offset += block_contents.size() + kBlockTrailerSize;
    }
  }
}

Status TableBuilder::status() const { return rep_->status; }

Status TableBuilder::Finish() {
  Rep* r = rep_;
  Flush();
  assert(!r->closed);
  r->closed = true;

  BlockHandle filter_block_handle, properties_block_handle, index_block_handle;

  // Write filter block (full-file Bloom over all filter keys).
  if (ok()) {
    std::string filter_contents;
    if (r->filter_policy != nullptr && !r->filter_keys.empty()) {
      std::vector<Slice> key_slices;
      key_slices.reserve(r->filter_keys.size());
      for (const auto& k : r->filter_keys) {
        key_slices.emplace_back(k);
      }
      r->filter_policy->CreateFilter(key_slices.data(),
                                     static_cast<int>(key_slices.size()),
                                     &filter_contents);
    }
    WriteRawBlock(Slice(filter_contents), &filter_block_handle);
  }

  // Write range-tombstone block (if any) and record its handle in the
  // properties, since the fixed three-handle footer has no slot for it.
  if (ok() && !r->range_tombstones.empty()) {
    std::string range_contents;
    EncodeRangeTombstones(r->range_tombstones, &range_contents);
    BlockHandle range_handle;
    WriteRawBlock(Slice(range_contents), &range_handle);
    if (ok()) {
      r->properties.range_del_block_offset = range_handle.offset();
      r->properties.range_del_block_size = range_handle.size();
    }
  }

  // Write properties block.
  if (ok()) {
    std::string props_contents;
    r->properties.EncodeTo(&props_contents);
    WriteRawBlock(Slice(props_contents), &properties_block_handle);
  }

  // Write index block.
  if (ok()) {
    if (r->pending_index_entry) {
      const Comparator* cmp =
          r->options.comparator ? r->options.comparator : BytewiseComparator();
      cmp->FindShortSuccessor(&r->last_key);
      std::string handle_encoding;
      r->pending_handle.EncodeTo(&handle_encoding);
      r->index_block.Add(r->last_key, Slice(handle_encoding));
      r->pending_index_entry = false;
    }
    WriteBlock(&r->index_block, &index_block_handle);
  }

  // Write footer.
  if (ok()) {
    Footer footer;
    footer.set_filter_handle(filter_block_handle);
    footer.set_properties_handle(properties_block_handle);
    footer.set_index_handle(index_block_handle);
    std::string footer_encoding;
    footer.EncodeTo(&footer_encoding);
    r->status = r->file->Append(footer_encoding);
    if (r->status.ok()) {
      r->offset += footer_encoding.size();
    }
  }
  return r->status;
}

void TableBuilder::Abandon() {
  Rep* r = rep_;
  assert(!r->closed);
  r->closed = true;
}

uint64_t TableBuilder::NumEntries() const { return rep_->num_entries; }

uint64_t TableBuilder::FileSize() const { return rep_->offset; }

TableProperties* TableBuilder::mutable_properties() {
  return &rep_->properties;
}

}  // namespace acheron
