// TableBuilder: constructs an SSTable from keys added in sorted order.
// Produces prefix-compressed data blocks, a full-file Bloom filter, a
// properties block (tombstone metadata for FADE), a fence-pointer index
// block, and the footer.
#ifndef ACHERON_TABLE_TABLE_BUILDER_H_
#define ACHERON_TABLE_TABLE_BUILDER_H_

#include <cstdint>

#include "src/core/range_tombstone.h"
#include "src/lsm/options.h"
#include "src/table/properties.h"
#include "src/util/status.h"

namespace acheron {

class BlockBuilder;
class BlockHandle;
class WritableFile;

class TableBuilder {
 public:
  // Create a builder that will store the contents of the table it is
  // building in *file. Does not close the file.
  TableBuilder(const Options& options, WritableFile* file);

  TableBuilder(const TableBuilder&) = delete;
  TableBuilder& operator=(const TableBuilder&) = delete;

  // REQUIRES: Either Finish() or Abandon() has been called.
  ~TableBuilder();

  // Add key,value to the table being constructed.
  // REQUIRES: key is after any previously added key in comparator order.
  // REQUIRES: Finish(), Abandon() have not been called.
  // |filter_key| is the key the Bloom filter indexes (the user key, when
  // the stored key is an internal key); pass the stored key if identical.
  void Add(const Slice& key, const Slice& value, const Slice& filter_key);

  // Record a range tombstone [begin, end)@seq for the table's
  // range-tombstone block. May be called in any order relative to Add();
  // the block is emitted at Finish() with its handle stored in the
  // properties block. Inverted ranges (begin >= end) are dropped.
  // |ucmp| orders the USER keys begin/end -- options.comparator cannot,
  // because inside the engine it is the internal-key comparator, which
  // misreads a bare user key's tail as a sequence tag.
  // REQUIRES: Finish(), Abandon() have not been called.
  void AddRangeTombstone(const Slice& begin, const Slice& end,
                         SequenceNumber seq, const Comparator* ucmp);

  // Advanced: flush any buffered key/value pairs to file, starting a new
  // data block.
  void Flush();

  Status status() const;

  // Finish building the table; stops using the file after this returns.
  Status Finish();

  // Abandon the table contents (e.g. the caller will remove the file).
  void Abandon();

  // Number of Add() calls so far.
  uint64_t NumEntries() const;

  // Size of the file generated so far.
  uint64_t FileSize() const;

  // Caller-visible properties, written to the properties block at Finish().
  // The LSM layer fills in tombstone statistics here while adding entries;
  // entry/block counters are maintained by the builder itself.
  TableProperties* mutable_properties();

 private:
  bool ok() const { return status().ok(); }
  void WriteBlock(BlockBuilder* block, BlockHandle* handle);
  void WriteRawBlock(const Slice& data, BlockHandle* handle);

  struct Rep;
  Rep* rep_;
};

}  // namespace acheron

#endif  // ACHERON_TABLE_TABLE_BUILDER_H_
