// Iterator: the engine-wide iteration interface, used both internally (block
// and merging iterators over internal keys) and by the public DB API (over
// user keys). Modeled on LevelDB's iterator contract.
#ifndef ACHERON_TABLE_ITERATOR_H_
#define ACHERON_TABLE_ITERATOR_H_

#include "src/util/slice.h"
#include "src/util/status.h"

namespace acheron {

class Iterator {
 public:
  Iterator();
  Iterator(const Iterator&) = delete;
  Iterator& operator=(const Iterator&) = delete;
  virtual ~Iterator();

  // An iterator is either positioned at a key/value pair, or not valid.
  virtual bool Valid() const = 0;

  // Position at the first/last key in the source.
  virtual void SeekToFirst() = 0;
  virtual void SeekToLast() = 0;

  // Position at the first key at or past |target|.
  virtual void Seek(const Slice& target) = 0;

  // REQUIRES: Valid()
  virtual void Next() = 0;
  virtual void Prev() = 0;

  // The returned slices are valid until the next modification of the
  // iterator. REQUIRES: Valid()
  virtual Slice key() const = 0;
  virtual Slice value() const = 0;

  // Non-ok iff an error was encountered.
  virtual Status status() const = 0;

  // Register a function to run when this iterator is destroyed (used to
  // release cache handles / owned blocks).
  using CleanupFunction = void (*)(void* arg1, void* arg2);
  void RegisterCleanup(CleanupFunction function, void* arg1, void* arg2);

 private:
  // Cleanup functions are stored in a singly-linked list; the head node is
  // inlined in the iterator.
  struct CleanupNode {
    bool IsEmpty() const { return function == nullptr; }
    void Run() { (*function)(arg1, arg2); }

    CleanupFunction function;
    void* arg1;
    void* arg2;
    CleanupNode* next;
  };
  CleanupNode cleanup_head_;
};

// An empty iterator with the specified status (OK by default).
Iterator* NewEmptyIterator();
Iterator* NewErrorIterator(const Status& status);

}  // namespace acheron

#endif  // ACHERON_TABLE_ITERATOR_H_
