// TableProperties: per-SSTable statistics persisted in the properties block.
// The tombstone fields are the metadata Acheron's delete-aware machinery
// relies on: how many tombstones a file holds and when the oldest of them
// was ingested (logical clock), from which the per-level TTL expiry is
// computed.
#ifndef ACHERON_TABLE_PROPERTIES_H_
#define ACHERON_TABLE_PROPERTIES_H_

#include <cstdint>
#include <string>

#include "src/util/slice.h"
#include "src/util/status.h"

namespace acheron {

struct TableProperties {
  uint64_t num_entries = 0;
  // Point-delete tombstones contained in the file.
  uint64_t num_tombstones = 0;
  // Logical-clock timestamp of the *oldest* tombstone in the file;
  // UINT64_MAX when the file holds no tombstones.
  uint64_t earliest_tombstone_time = UINT64_MAX;
  // Wall-clock (microseconds) counterpart, for reporting.
  uint64_t earliest_tombstone_wall_micros = UINT64_MAX;
  uint64_t raw_key_bytes = 0;
  uint64_t raw_value_bytes = 0;
  uint64_t num_data_blocks = 0;
  // Range of the secondary delete key (e.g. a timestamp embedded in values)
  // covered by this file; empty when no secondary-key extractor is
  // configured. Enables retention purges to drop files/blocks wholesale.
  std::string min_secondary_key;
  std::string max_secondary_key;

  // ---- Format version 2: range tombstones (kTypeRangeDeletion) ----
  // Range tombstones in the file's range-tombstone block.
  uint64_t num_range_tombstones = 0;
  // Logical-clock timestamp of the oldest range tombstone; UINT64_MAX when
  // the file holds none.
  uint64_t earliest_range_tombstone_time = UINT64_MAX;
  uint64_t earliest_range_tombstone_wall_micros = UINT64_MAX;
  // Handle of the range-tombstone block inside the file. A zero size means
  // the file carries no range-tombstone block (the footer has no fourth
  // handle slot, so the handle rides in the properties block instead).
  uint64_t range_del_block_offset = 0;
  uint64_t range_del_block_size = 0;
  // User-key span [range_del_begin, range_del_end) covered by the union of
  // the file's range tombstones; empty when there are none. Lets readers
  // and the compaction planner skip files without decoding the block.
  std::string range_del_begin;
  std::string range_del_end;

  bool has_tombstones() const { return num_tombstones > 0; }
  bool has_range_tombstones() const { return num_range_tombstones > 0; }

  void EncodeTo(std::string* dst) const;
  Status DecodeFrom(Slice input);
};

}  // namespace acheron

#endif  // ACHERON_TABLE_PROPERTIES_H_
