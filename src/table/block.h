// Block: reader for blocks produced by BlockBuilder, with a binary-searching
// iterator keyed on the restart array.
#ifndef ACHERON_TABLE_BLOCK_H_
#define ACHERON_TABLE_BLOCK_H_

#include <cstddef>
#include <cstdint>

#include "src/table/format.h"
#include "src/table/iterator.h"
#include "src/util/comparator.h"

namespace acheron {

class Block {
 public:
  // Initialize the block with the specified contents.
  explicit Block(const BlockContents& contents);

  Block(const Block&) = delete;
  Block& operator=(const Block&) = delete;

  ~Block();

  size_t size() const { return size_; }
  Iterator* NewIterator(const Comparator* comparator);

 private:
  class Iter;

  uint32_t NumRestarts() const;

  const char* data_;
  size_t size_;
  uint32_t restart_offset_;  // Offset in data_ of restart array
  bool owned_;               // Block owns data_[]
};

}  // namespace acheron

#endif  // ACHERON_TABLE_BLOCK_H_
