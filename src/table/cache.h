// Sharded LRU cache with reference counting, used as the block cache and the
// table (file handle) cache. Entries are pinned by Lookup/Insert handles and
// evicted strictly by LRU order of unpinned entries once the capacity
// (measured in caller-supplied "charge" units) is exceeded.
#ifndef ACHERON_TABLE_CACHE_H_
#define ACHERON_TABLE_CACHE_H_

#include <cstdint>

#include "src/util/slice.h"

namespace acheron {

class Cache {
 public:
  Cache() = default;
  Cache(const Cache&) = delete;
  Cache& operator=(const Cache&) = delete;

  // Destroys all existing entries by calling the "deleter" function that was
  // passed to the constructor.
  virtual ~Cache();

  // Opaque handle to an entry stored in the cache.
  struct Handle {};

  // Insert a mapping from key->value into the cache and assign it the
  // specified charge against the total cache capacity. Returns a handle that
  // corresponds to the mapping; the caller must call Release(handle) when
  // done. When the entry is no longer needed, key and value will be passed
  // to "deleter".
  virtual Handle* Insert(const Slice& key, void* value, size_t charge,
                         void (*deleter)(const Slice& key, void* value)) = 0;

  // Returns nullptr if the cache has no mapping for "key"; else a pinning
  // handle the caller must Release().
  virtual Handle* Lookup(const Slice& key) = 0;

  // Release a mapping returned by a previous Lookup/Insert.
  virtual void Release(Handle* handle) = 0;

  // Return the value in a handle returned by a successful Lookup/Insert.
  virtual void* Value(Handle* handle) = 0;

  // If the cache contains entry for key, erase it (the entry is dropped once
  // all existing handles are released).
  virtual void Erase(const Slice& key) = 0;

  // Return a new numeric id, used to partition the key space among multiple
  // clients sharing the same cache.
  virtual uint64_t NewId() = 0;

  // Remove all cache entries that are not actively in use.
  virtual void Prune() = 0;

  // An estimate of the combined charges of the elements in the cache.
  virtual size_t TotalCharge() const = 0;
};

// Create a new cache with a fixed size capacity, sharded 16 ways.
Cache* NewLRUCache(size_t capacity);

}  // namespace acheron

#endif  // ACHERON_TABLE_CACHE_H_
