// TwoLevelIterator: iterates over entries reachable through an index
// iterator whose values are decoded into data iterators by a caller-supplied
// block function. Used for table iteration (index block -> data blocks) and
// level iteration (file list -> table iterators).
#ifndef ACHERON_TABLE_TWO_LEVEL_ITERATOR_H_
#define ACHERON_TABLE_TWO_LEVEL_ITERATOR_H_

#include "src/lsm/options.h"
#include "src/table/iterator.h"

namespace acheron {

// Return a new two level iterator. A two-level iterator contains an index
// iterator whose values point to a sequence of blocks where each block is
// itself a sequence of key,value pairs. The returned two-level iterator
// yields the concatenation of all key/value pairs in the sequence of blocks.
// Takes ownership of "index_iter" and will delete it when no longer needed.
//
// Uses a supplied function to convert an index_iter value into an iterator
// over the contents of the corresponding block.
Iterator* NewTwoLevelIterator(
    Iterator* index_iter,
    Iterator* (*block_function)(void* arg, const ReadOptions& options,
                                const Slice& index_value),
    void* arg, const ReadOptions& options);

}  // namespace acheron

#endif  // ACHERON_TABLE_TWO_LEVEL_ITERATOR_H_
