#include "src/table/properties.h"

#include "src/util/coding.h"

namespace acheron {

// Properties are encoded as a fixed sequence of varints and length-prefixed
// strings preceded by a format version byte, so fields can be appended in
// future versions without breaking old readers.
// Version 2 appends the range-tombstone fields; version-1 blocks (written
// before range deletes existed) still decode, with those fields left at
// their "no range tombstones" defaults.
static const uint8_t kPropertiesFormatVersion = 2;

void TableProperties::EncodeTo(std::string* dst) const {
  dst->push_back(static_cast<char>(kPropertiesFormatVersion));
  PutVarint64(dst, num_entries);
  PutVarint64(dst, num_tombstones);
  PutVarint64(dst, earliest_tombstone_time);
  PutVarint64(dst, earliest_tombstone_wall_micros);
  PutVarint64(dst, raw_key_bytes);
  PutVarint64(dst, raw_value_bytes);
  PutVarint64(dst, num_data_blocks);
  PutLengthPrefixedSlice(dst, min_secondary_key);
  PutLengthPrefixedSlice(dst, max_secondary_key);
  PutVarint64(dst, num_range_tombstones);
  PutVarint64(dst, earliest_range_tombstone_time);
  PutVarint64(dst, earliest_range_tombstone_wall_micros);
  PutVarint64(dst, range_del_block_offset);
  PutVarint64(dst, range_del_block_size);
  PutLengthPrefixedSlice(dst, range_del_begin);
  PutLengthPrefixedSlice(dst, range_del_end);
}

Status TableProperties::DecodeFrom(Slice input) {
  if (input.empty()) {
    return Status::Corruption("empty properties block");
  }
  uint8_t version = static_cast<uint8_t>(input[0]);
  if (version < 1 || version > kPropertiesFormatVersion) {
    return Status::Corruption("unknown properties version");
  }
  input.remove_prefix(1);
  Slice min_sec, max_sec;
  if (!GetVarint64(&input, &num_entries) ||
      !GetVarint64(&input, &num_tombstones) ||
      !GetVarint64(&input, &earliest_tombstone_time) ||
      !GetVarint64(&input, &earliest_tombstone_wall_micros) ||
      !GetVarint64(&input, &raw_key_bytes) ||
      !GetVarint64(&input, &raw_value_bytes) ||
      !GetVarint64(&input, &num_data_blocks) ||
      !GetLengthPrefixedSlice(&input, &min_sec) ||
      !GetLengthPrefixedSlice(&input, &max_sec)) {
    return Status::Corruption("truncated properties block");
  }
  min_secondary_key = min_sec.ToString();
  max_secondary_key = max_sec.ToString();
  if (version >= 2) {
    Slice rd_begin, rd_end;
    if (!GetVarint64(&input, &num_range_tombstones) ||
        !GetVarint64(&input, &earliest_range_tombstone_time) ||
        !GetVarint64(&input, &earliest_range_tombstone_wall_micros) ||
        !GetVarint64(&input, &range_del_block_offset) ||
        !GetVarint64(&input, &range_del_block_size) ||
        !GetLengthPrefixedSlice(&input, &rd_begin) ||
        !GetLengthPrefixedSlice(&input, &rd_end)) {
      return Status::Corruption("truncated properties block");
    }
    range_del_begin = rd_begin.ToString();
    range_del_end = rd_end.ToString();
  }
  return Status::OK();
}

}  // namespace acheron
