// BlockBuilder generates blocks where keys are prefix-compressed against the
// previous key, with whole-key "restart points" every block_restart_interval
// entries so readers can binary-search.
//
// Entry layout:
//   shared_bytes:     varint32 (0 at restart points)
//   unshared_bytes:   varint32
//   value_length:     varint32
//   key_delta:        char[unshared_bytes]
//   value:            char[value_length]
// Block trailer: restarts: uint32[num_restarts]; num_restarts: uint32.
#ifndef ACHERON_TABLE_BLOCK_BUILDER_H_
#define ACHERON_TABLE_BLOCK_BUILDER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/slice.h"

namespace acheron {

class BlockBuilder {
 public:
  explicit BlockBuilder(int block_restart_interval);

  BlockBuilder(const BlockBuilder&) = delete;
  BlockBuilder& operator=(const BlockBuilder&) = delete;

  // Reset the contents as if the BlockBuilder was just constructed.
  void Reset();

  // REQUIRES: Finish() has not been called since the last call to Reset().
  // REQUIRES: key is larger than any previously added key.
  void Add(const Slice& key, const Slice& value);

  // Finish building the block and return a slice that refers to the block
  // contents. The returned slice remains valid until Reset() is called.
  Slice Finish();

  // Returns an estimate of the current (uncompressed) size of the block
  // being built.
  size_t CurrentSizeEstimate() const;

  bool empty() const { return buffer_.empty(); }

 private:
  const int block_restart_interval_;

  std::string buffer_;              // Destination buffer
  std::vector<uint32_t> restarts_;  // Restart points
  int counter_;                     // Number of entries emitted since restart
  bool finished_;                   // Has Finish() been called?
  std::string last_key_;
};

}  // namespace acheron

#endif  // ACHERON_TABLE_BLOCK_BUILDER_H_
