// On-disk SSTable framing: block handles, the footer, and checksummed block
// reads.
//
// Table layout:
//   [data block 1] ... [data block N]
//   [filter block]            (optional, full-file Bloom over filter keys)
//   [properties block]        (TableProperties, incl. tombstone statistics)
//   [index block]             (fence pointers: last-key -> data block handle)
//   [footer]                  (handles of filter/properties/index + magic)
// Every block is followed by a 5-byte trailer: 1-byte type + crc32c.
#ifndef ACHERON_TABLE_FORMAT_H_
#define ACHERON_TABLE_FORMAT_H_

#include <cstdint>
#include <string>

#include "src/env/env.h"
#include "src/util/slice.h"
#include "src/util/status.h"

namespace acheron {

// BlockHandle is a pointer to the extent of a file that stores a data
// block or a meta block.
class BlockHandle {
 public:
  // Maximum encoding length of a BlockHandle.
  enum { kMaxEncodedLength = 10 + 10 };

  BlockHandle();

  uint64_t offset() const { return offset_; }
  void set_offset(uint64_t offset) { offset_ = offset; }

  uint64_t size() const { return size_; }
  void set_size(uint64_t size) { size_ = size; }

  void EncodeTo(std::string* dst) const;
  Status DecodeFrom(Slice* input);

 private:
  uint64_t offset_;
  uint64_t size_;
};

// Footer encapsulates the fixed information stored at the tail of every
// table file.
class Footer {
 public:
  // Encoded length of a Footer: three max-length handles plus magic.
  enum { kEncodedLength = 3 * BlockHandle::kMaxEncodedLength + 8 };

  Footer() = default;

  const BlockHandle& filter_handle() const { return filter_handle_; }
  void set_filter_handle(const BlockHandle& h) { filter_handle_ = h; }
  const BlockHandle& properties_handle() const { return properties_handle_; }
  void set_properties_handle(const BlockHandle& h) { properties_handle_ = h; }
  const BlockHandle& index_handle() const { return index_handle_; }
  void set_index_handle(const BlockHandle& h) { index_handle_ = h; }

  void EncodeTo(std::string* dst) const;
  Status DecodeFrom(Slice* input);

 private:
  BlockHandle filter_handle_;
  BlockHandle properties_handle_;
  BlockHandle index_handle_;
};

// "ACHERON" spelled in hex-ish nibbles; identifies our table format.
static const uint64_t kTableMagicNumber = 0xac4e50u * 0x100000001ull + 0x70b5;

// 1-byte block type (0 = uncompressed; reserved for future codecs) followed
// by a 4-byte masked crc32c of contents+type.
static const size_t kBlockTrailerSize = 5;

struct BlockContents {
  Slice data;           // Actual contents of data
  bool cachable;        // True iff data can be cached
  bool heap_allocated;  // True iff caller should delete[] data.data()
};

// Read the block identified by |handle| from |file|, verifying the trailer
// checksum.
Status ReadBlock(RandomAccessFile* file, const BlockHandle& handle,
                 BlockContents* result);

// Shared tail of ReadBlock, also run by the async table-read completion
// hook: verifies the type/crc trailer of a completed read of
// |block_size| + kBlockTrailerSize bytes and classifies ownership (heap
// buffer vs file-backed view, e.g. mmap). |contents| is what the read
// returned; |buf| is the heap buffer it was issued into, freed on every
// path that does not hand it to |result|.
Status FinishBlockRead(uint64_t block_size, const Slice& contents, char* buf,
                       BlockContents* result);

}  // namespace acheron

#endif  // ACHERON_TABLE_FORMAT_H_
