#include "src/table/table.h"

#include <atomic>

#include "src/env/env.h"
#include "src/table/block.h"
#include "src/table/cache.h"
#include "src/table/format.h"
#include "src/table/two_level_iterator.h"
#include "src/util/bloom.h"
#include "src/util/coding.h"
#include "src/util/comparator.h"

namespace acheron {

static void DeleteCachedBlock(const Slice&, void* value);
static void DeleteCachedFilter(const Slice&, void* value);

struct Table::Rep {
  ~Rep() {
    // Metadata pinned in the block cache is released (the cache's deleter
    // frees it once it falls out of the LRU); un-cached metadata is owned
    // directly.
    if (index_cache_handle != nullptr) {
      options.block_cache->Release(index_cache_handle);
    } else {
      delete index_block;
    }
    if (filter_cache_handle != nullptr) {
      options.block_cache->Release(filter_cache_handle);
    } else {
      delete[] filter_data;
    }
    delete owned_filter_policy;
  }

  Options options;
  Status status;
  RandomAccessFile* file;
  uint64_t cache_id;
  // Normally aliases the DB-wide Options::filter_policy; standalone opens
  // (no policy in Options) fall back to a per-table owned policy so the
  // old behaviour is preserved for direct Table users.
  const FilterPolicy* filter_policy;        // may alias owned_filter_policy
  const FilterPolicy* owned_filter_policy;  // owned; null when shared
  const char* filter_data;  // filter block bytes; owned unless pinned/mapped
  Slice filter;             // view into the filter block contents
  TableProperties properties;
  Block* index_block;  // owned unless pinned in the block cache
  // Pinned cache handles for the index block and filter (null without a
  // block cache): the metadata every lookup touches stays resident for the
  // table's lifetime, and the cache's memory accounting covers it.
  Cache::Handle* index_cache_handle;
  Cache::Handle* filter_cache_handle;
  // Optional aggregate counter (TableCache's running total across all its
  // tables), bumped alongside the per-table filter_negatives.
  std::atomic<uint64_t>* filter_negatives_sink;
  std::atomic<uint64_t> filter_negatives{0};
  // Range tombstones decoded from the file's dedicated block at Open, and
  // their fragmented form (built once via BuildRangeFragments, immutable
  // and lock-free to query afterwards).
  std::vector<RangeTombstone> raw_range_dels;
  FragmentedRangeTombstoneList range_dels;
};

Status Table::Open(const Options& options, RandomAccessFile* file,
                   uint64_t size, Table** table) {
  *table = nullptr;
  if (size < Footer::kEncodedLength) {
    return Status::Corruption("file is too short to be an sstable");
  }

  char footer_space[Footer::kEncodedLength];
  Slice footer_input;
  Status s = file->Read(size - Footer::kEncodedLength, Footer::kEncodedLength,
                        &footer_input, footer_space);
  if (!s.ok()) return s;
  if (footer_input.size() < Footer::kEncodedLength) {
    return Status::Corruption("truncated sstable footer");
  }

  Footer footer;
  s = footer.DecodeFrom(&footer_input);
  if (!s.ok()) return s;

  // Read the index block.
  BlockContents index_block_contents;
  s = ReadBlock(file, footer.index_handle(), &index_block_contents);
  if (!s.ok()) return s;

  Rep* rep = new Table::Rep;
  rep->options = options;
  rep->file = file;
  rep->index_block = new Block(index_block_contents);
  rep->cache_id =
      (options.block_cache ? options.block_cache->NewId() : 0);
  rep->owned_filter_policy = nullptr;
  if (options.filter_policy != nullptr) {
    rep->filter_policy = options.filter_policy;
  } else if (options.filter_bits_per_key > 0) {
    rep->owned_filter_policy =
        NewBloomFilterPolicy(options.filter_bits_per_key);
    rep->filter_policy = rep->owned_filter_policy;
  } else {
    rep->filter_policy = nullptr;
  }
  rep->filter_data = nullptr;
  rep->index_cache_handle = nullptr;
  rep->filter_cache_handle = nullptr;
  rep->filter_negatives_sink = nullptr;

  // Read the filter block.
  if (rep->filter_policy != nullptr && footer.filter_handle().size() > 0) {
    BlockContents filter_contents;
    if (ReadBlock(file, footer.filter_handle(), &filter_contents).ok()) {
      if (filter_contents.heap_allocated) {
        rep->filter_data = filter_contents.data.data();
      }
      rep->filter = filter_contents.data;
    }
  }

  // Pin the index block (and the filter, when it was heap-allocated rather
  // than a view into the file, e.g. an mmap) in the block cache with a held
  // handle. Both are consulted on every lookup and live exactly as long as
  // the table either way; inserting them makes the cache's charge account
  // for their footprint instead of hiding it, without any per-read cache
  // lookups. Keys reuse the BlockReader scheme (cache_id, block offset) —
  // data blocks live at other offsets, so there is no collision.
  if (options.block_cache != nullptr) {
    char key_buffer[16];
    EncodeFixed64(key_buffer, rep->cache_id);
    EncodeFixed64(key_buffer + 8, footer.index_handle().offset());
    rep->index_cache_handle = options.block_cache->Insert(
        Slice(key_buffer, sizeof(key_buffer)), rep->index_block,
        rep->index_block->size(), &DeleteCachedBlock);
    if (rep->filter_data != nullptr) {
      EncodeFixed64(key_buffer + 8, footer.filter_handle().offset());
      rep->filter_cache_handle = options.block_cache->Insert(
          Slice(key_buffer, sizeof(key_buffer)),
          const_cast<char*>(rep->filter_data), rep->filter.size(),
          &DeleteCachedFilter);
    }
  }

  // Read the properties block.
  {
    BlockContents props_contents;
    Status ps = ReadBlock(file, footer.properties_handle(), &props_contents);
    if (ps.ok()) {
      ps = rep->properties.DecodeFrom(props_contents.data);
      if (props_contents.heap_allocated) {
        delete[] props_contents.data.data();
      }
    }
    if (!ps.ok() && options.paranoid_checks) {
      delete rep;
      return ps;
    }
  }

  // Read the range-tombstone block, if the properties advertise one. A bad
  // block fails the open even without paranoid checks: a silently dropped
  // range tombstone resurrects every key it covered.
  if (rep->properties.range_del_block_size > 0) {
    BlockHandle rd_handle;
    rd_handle.set_offset(rep->properties.range_del_block_offset);
    rd_handle.set_size(rep->properties.range_del_block_size);
    BlockContents rd_contents;
    Status rs = ReadBlock(file, rd_handle, &rd_contents);
    if (rs.ok()) {
      rs = DecodeRangeTombstones(rd_contents.data, &rep->raw_range_dels);
      if (rd_contents.heap_allocated) {
        delete[] rd_contents.data.data();
      }
    }
    if (!rs.ok()) {
      delete rep;
      return rs;
    }
  }

  *table = new Table(rep);
  return Status::OK();
}

Table::~Table() { delete rep_; }

static void DeleteBlock(void* arg, void*) {
  delete reinterpret_cast<Block*>(arg);
}

static void DeleteCachedBlock(const Slice&, void* value) {
  Block* block = reinterpret_cast<Block*>(value);
  delete block;
}

static void DeleteCachedFilter(const Slice&, void* value) {
  delete[] reinterpret_cast<char*>(value);
}

static void ReleaseBlock(void* arg, void* h) {
  Cache* cache = reinterpret_cast<Cache*>(arg);
  Cache::Handle* handle = reinterpret_cast<Cache::Handle*>(h);
  cache->Release(handle);
}

// Convert an index iterator value (an encoded BlockHandle) into an iterator
// over the contents of the corresponding block.
Iterator* Table::BlockReader(void* arg, const ReadOptions& options,
                             const Slice& index_value) {
  Table* table = reinterpret_cast<Table*>(arg);
  Cache* block_cache = table->rep_->options.block_cache;
  Block* block = nullptr;
  Cache::Handle* cache_handle = nullptr;

  BlockHandle handle;
  Slice input = index_value;
  Status s = handle.DecodeFrom(&input);
  // We intentionally allow extra stuff in index_value so that we can add
  // more features in the future.

  if (s.ok()) {
    BlockContents contents;
    if (block_cache != nullptr) {
      char cache_key_buffer[16];
      EncodeFixed64(cache_key_buffer, table->rep_->cache_id);
      EncodeFixed64(cache_key_buffer + 8, handle.offset());
      Slice key(cache_key_buffer, sizeof(cache_key_buffer));
      cache_handle = block_cache->Lookup(key);
      if (cache_handle != nullptr) {
        block = reinterpret_cast<Block*>(block_cache->Value(cache_handle));
      } else {
        s = ReadBlock(table->rep_->file, handle, &contents);
        if (s.ok()) {
          block = new Block(contents);
          // Cache the parsed Block even when its bytes are a view into an
          // mmap'd file (contents.cachable false): what the cache saves is
          // the per-read CRC + restart-array parse, not the bytes. A cached
          // view Block is unreachable once its Table dies -- cache ids are
          // never reused and live iterators pin the Table -- and its
          // deleter frees only the Block object, never unowned data.
          if (options.fill_cache) {
            cache_handle = block_cache->Insert(key, block, block->size(),
                                               &DeleteCachedBlock);
          }
        }
      }
    } else {
      s = ReadBlock(table->rep_->file, handle, &contents);
      if (s.ok()) {
        block = new Block(contents);
      }
    }
  }

  Iterator* iter;
  if (block != nullptr) {
    const Comparator* cmp = table->rep_->options.comparator
                                ? table->rep_->options.comparator
                                : BytewiseComparator();
    iter = block->NewIterator(cmp);
    if (cache_handle == nullptr) {
      iter->RegisterCleanup(&DeleteBlock, block, nullptr);
    } else {
      iter->RegisterCleanup(&ReleaseBlock, block_cache, cache_handle);
    }
  } else {
    iter = NewErrorIterator(s);
  }
  return iter;
}

Iterator* Table::NewIterator(const ReadOptions& options) const {
  const Comparator* cmp = rep_->options.comparator ? rep_->options.comparator
                                                   : BytewiseComparator();
  return NewTwoLevelIterator(rep_->index_block->NewIterator(cmp),
                             &Table::BlockReader, const_cast<Table*>(this),
                             options);
}

Status Table::InternalGet(const ReadOptions& options, const Slice& k,
                          const Slice& filter_key, void* arg,
                          void (*handle_result)(void*, const Slice&,
                                                const Slice&),
                          uint64_t* filter_negatives_out) {
  TableReadRequest req;
  const TablePrepare prep =
      PrepareGet(options, k, filter_key, &req, filter_negatives_out);
  if (prep == TablePrepare::kFilteredOut || prep == TablePrepare::kNoBlock) {
    return req.status;
  }
  if (prep == TablePrepare::kNeedsRead) {
    // Synchronous completion: run the read and the parse hook inline.
    req.io.status = req.io.file->Read(req.io.offset, req.io.n, &req.io.result,
                                      req.io.scratch);
    ParseBlockOnComplete(&req.io);
  }
  return ReadInBlock(&req, k, arg, handle_result);
}

TablePrepare Table::PrepareGet(const ReadOptions& options, const Slice& k,
                               const Slice& filter_key, TableReadRequest* req,
                               uint64_t* filter_negatives_out) {
  req->table = this;
  req->options = options;
  req->buf = nullptr;
  req->block = nullptr;
  req->cache_handle = nullptr;
  req->status = Status::OK();

  // Consult the full-file Bloom filter first.
  if (rep_->filter_policy != nullptr && !rep_->filter.empty() &&
      !rep_->filter_policy->KeyMayMatch(filter_key, rep_->filter)) {
    rep_->filter_negatives.fetch_add(1, std::memory_order_relaxed);
    if (filter_negatives_out != nullptr) {
      // Batched accounting: the caller flushes its local count to the
      // shared sink once per operation.
      (*filter_negatives_out)++;
    } else if (rep_->filter_negatives_sink != nullptr) {
      rep_->filter_negatives_sink->fetch_add(1, std::memory_order_relaxed);
    }
    return TablePrepare::kFilteredOut;
  }

  const Comparator* cmp = rep_->options.comparator ? rep_->options.comparator
                                                   : BytewiseComparator();
  Iterator* iiter = rep_->index_block->NewIterator(cmp);
  iiter->Seek(k);
  if (!iiter->Valid()) {
    // Past the last block, or an index error (kReady completes with it).
    req->status = iiter->status();
    delete iiter;
    return req->status.ok() ? TablePrepare::kNoBlock : TablePrepare::kReady;
  }
  Slice input = iiter->value();
  Status s = req->handle.DecodeFrom(&input);
  // Extra data after the handle in index values stays allowed, as in
  // BlockReader.
  delete iiter;
  if (!s.ok()) {
    req->status = s;
    return TablePrepare::kReady;
  }

  Cache* block_cache = rep_->options.block_cache;
  if (block_cache != nullptr) {
    char cache_key_buffer[16];
    EncodeFixed64(cache_key_buffer, rep_->cache_id);
    EncodeFixed64(cache_key_buffer + 8, req->handle.offset());
    Cache::Handle* h =
        block_cache->Lookup(Slice(cache_key_buffer, sizeof(cache_key_buffer)));
    if (h != nullptr) {
      req->block = reinterpret_cast<Block*>(block_cache->Value(h));
      req->cache_handle = h;
      return TablePrepare::kReady;
    }
  }

  // Needs IO: one read covering block + trailer. The completion hook
  // CRC-checks and parses it on whichever thread completes the read, so a
  // batch of lookups overlaps its parses too.
  const size_t n = static_cast<size_t>(req->handle.size());
  req->buf = new char[n + kBlockTrailerSize];
  req->io.file = rep_->file;
  req->io.offset = req->handle.offset();
  req->io.n = n + kBlockTrailerSize;
  req->io.scratch = req->buf;
  req->io.on_complete = &Table::ParseBlockOnComplete;
  req->io.arg = req;
  return TablePrepare::kNeedsRead;
}

void Table::ParseBlockOnComplete(ReadRequest* io) {
  auto* req = static_cast<TableReadRequest*>(io->arg);
  char* buf = req->buf;
  req->buf = nullptr;
  if (!io->status.ok()) {
    delete[] buf;
    req->status = io->status;
    return;
  }
  BlockContents contents;
  Status s = FinishBlockRead(req->handle.size(), io->result, buf, &contents);
  if (!s.ok()) {
    req->status = s;
    return;
  }
  req->block = new Block(contents);
  // Cache the parsed Block under the BlockReader key scheme (view-backed
  // bytes included -- see the rationale there), so later lookups of this
  // block resolve as kReady without IO.
  Cache* block_cache = req->table->rep_->options.block_cache;
  if (block_cache != nullptr && req->options.fill_cache) {
    char cache_key_buffer[16];
    EncodeFixed64(cache_key_buffer, req->table->rep_->cache_id);
    EncodeFixed64(cache_key_buffer + 8, req->handle.offset());
    req->cache_handle = block_cache->Insert(
        Slice(cache_key_buffer, sizeof(cache_key_buffer)), req->block,
        req->block->size(), &DeleteCachedBlock);
  }
}

Status Table::ReadInBlock(TableReadRequest* req, const Slice& k, void* arg,
                          void (*handle_result)(void*, const Slice&,
                                                const Slice&)) {
  if (req->block == nullptr) {
    // Read/parse failure (status set), or kNoBlock (status OK, no entry).
    return req->status;
  }
  const Comparator* cmp = rep_->options.comparator ? rep_->options.comparator
                                                   : BytewiseComparator();
  Iterator* block_iter = req->block->NewIterator(cmp);
  block_iter->Seek(k);
  if (block_iter->Valid()) {
    (*handle_result)(arg, block_iter->key(), block_iter->value());
  }
  Status s = block_iter->status();
  delete block_iter;
  if (req->cache_handle != nullptr) {
    rep_->options.block_cache->Release(req->cache_handle);
    req->cache_handle = nullptr;
  } else {
    delete req->block;
  }
  req->block = nullptr;
  return s;
}

uint64_t Table::ApproximateOffsetOf(const Slice& key) const {
  const Comparator* cmp = rep_->options.comparator ? rep_->options.comparator
                                                   : BytewiseComparator();
  Iterator* index_iter = rep_->index_block->NewIterator(cmp);
  index_iter->Seek(key);
  uint64_t result;
  if (index_iter->Valid()) {
    BlockHandle handle;
    Slice input = index_iter->value();
    Status s = handle.DecodeFrom(&input);
    if (s.ok()) {
      result = handle.offset();
    } else {
      // Strange: we can't decode the block handle in the index block.
      // We'll just return the offset of the properties block, which is
      // close to the whole file size for this case.
      result = 0;
    }
  } else {
    // key is past the last key in the file. Approximate the offset by
    // returning the offset of the properties block (which is right near the
    // end of the file).
    result = 0;
  }
  if (result == 0) {
    // Fallback: unknown; report "near end of data".
    result = rep_->properties.raw_key_bytes + rep_->properties.raw_value_bytes;
  }
  delete index_iter;
  return result;
}

const TableProperties& Table::properties() const { return rep_->properties; }

const std::vector<RangeTombstone>& Table::raw_range_tombstones() const {
  return rep_->raw_range_dels;
}

void Table::BuildRangeFragments(const Comparator* ucmp) {
  if (!rep_->raw_range_dels.empty()) {
    rep_->range_dels.Build(ucmp, rep_->raw_range_dels);
  }
}

const FragmentedRangeTombstoneList& Table::range_tombstones() const {
  return rep_->range_dels;
}

uint64_t Table::filter_negatives() const {
  return rep_->filter_negatives.load(std::memory_order_relaxed);
}

void Table::SetFilterNegativesSink(std::atomic<uint64_t>* sink) {
  rep_->filter_negatives_sink = sink;
}

}  // namespace acheron
