// Table: immutable, thread-safe SSTable reader with Bloom-filtered point
// lookups, block-cache integration, and access to the persisted
// TableProperties (tombstone metadata).
#ifndef ACHERON_TABLE_TABLE_H_
#define ACHERON_TABLE_TABLE_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "src/core/range_tombstone.h"
#include "src/env/env.h"
#include "src/lsm/options.h"
#include "src/table/cache.h"
#include "src/table/format.h"
#include "src/table/iterator.h"
#include "src/table/properties.h"
#include "src/util/status.h"

namespace acheron {

class Block;
class Footer;
class Table;

// Outcome of Table::PrepareGet.
enum class TablePrepare {
  kFilteredOut,  // Bloom filter ruled the key out: no entry in this table
  kNoBlock,      // index has no block at or past the key: no entry here
  kReady,        // block in hand (cache hit) or early error: ReadInBlock now
  kNeedsRead,    // submit &req->io via Env::SubmitReads, then ReadInBlock
};

// One point lookup split into prepare / (async) read / complete so a batch
// of lookups can keep several block reads in flight at once (MultiGet).
// PrepareGet fills it; the io request's completion hook verifies the block
// trailer and parses the Block on the completing thread; ReadInBlock runs
// the saver callback and releases the block. The struct must stay pinned
// (no moves) from PrepareGet until ReadInBlock.
struct TableReadRequest {
  Table* table = nullptr;
  ReadOptions options;
  BlockHandle handle;
  ReadRequest io;       // valid after PrepareGet returns kNeedsRead
  char* buf = nullptr;  // heap read buffer; owned until the parse consumes it
  Block* block = nullptr;                 // parsed block, set by the hook
  Cache::Handle* cache_handle = nullptr;  // held ref when |block| is cached
  Status status;
};

class Table {
 public:
  // Attempt to open the table that is stored in bytes [0..file_size) of
  // "file", and read the metadata entries necessary to allow retrieving data
  // from the table.
  //
  // If successful, returns ok and sets "*table" to the newly opened table.
  // The client should delete "*table" when no longer needed. If there was an
  // error while initializing the table, sets "*table" to nullptr and returns
  // a non-ok status. Does not take ownership of "*file", but the client must
  // ensure that "file" remains live for the duration of the returned table's
  // lifetime.
  static Status Open(const Options& options, RandomAccessFile* file,
                     uint64_t file_size, Table** table);

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  ~Table();

  // Returns a new iterator over the table contents.
  // The result of NewIterator() is initially invalid (caller must call one
  // of the Seek methods on the iterator before using it).
  Iterator* NewIterator(const ReadOptions&) const;

  // Given a key, return an approximate byte offset in the file where the
  // data for that key begins.
  uint64_t ApproximateOffsetOf(const Slice& key) const;

  // Statistics persisted at build time (incl. tombstone metadata).
  const TableProperties& properties() const;

  // Raw range tombstones decoded from the file's range-tombstone block
  // (empty when the file has none). A corrupt block fails Open outright —
  // silently dropping a range tombstone would resurrect covered keys.
  const std::vector<RangeTombstone>& raw_range_tombstones() const;

  // Fragment the raw range tombstones under |ucmp|. |ucmp| must be the
  // USER-key comparator: the table's own options carry the internal-key
  // comparator, which cannot compare bare user keys. Must be called before
  // the table is shared across threads (TableCache calls it right after
  // Open); a no-op for tables without range tombstones.
  void BuildRangeFragments(const Comparator* ucmp);

  // Fragmented coverage structure; empty until BuildRangeFragments runs.
  const FragmentedRangeTombstoneList& range_tombstones() const;

  // Calls (*handle_result)(arg, internal_key, value) for the first entry at
  // or past |key| in this table, after consulting the Bloom filter with
  // |filter_key|. No callback is made if the filter rules the key out or the
  // table has no entry >= key. A non-null |filter_negatives| batches the
  // bloom-negative accounting into the caller's local counter instead of
  // one shared-sink atomic RMW per miss (the caller flushes once per op).
  Status InternalGet(const ReadOptions&, const Slice& key,
                     const Slice& filter_key, void* arg,
                     void (*handle_result)(void* arg, const Slice& k,
                                           const Slice& v),
                     uint64_t* filter_negatives_out = nullptr);

  // First phase of an asynchronous InternalGet: consults the Bloom filter,
  // seeks the pinned index block, and checks the block cache -- no file IO.
  // On kNeedsRead the caller submits &req->io (batched with other lookups)
  // via Env::SubmitReads; the request's completion hook CRC-checks and
  // parses the block on the completing thread. On kReady, ReadInBlock can
  // run immediately. kFilteredOut/kNoBlock resolve the lookup with no
  // entry (req->status stays OK). |filter_negatives| as in InternalGet.
  TablePrepare PrepareGet(const ReadOptions&, const Slice& key,
                          const Slice& filter_key, TableReadRequest* req,
                          uint64_t* filter_negatives_out = nullptr);

  // Final phase: once req->io has posted (or immediately after kReady),
  // seeks |key| in the parsed block, invokes |handle_result| like
  // InternalGet, and releases the block / cache handle. Returns the read,
  // parse, or seek status.
  Status ReadInBlock(TableReadRequest* req, const Slice& key, void* arg,
                     void (*handle_result)(void* arg, const Slice& k,
                                           const Slice& v));

  // Number of point lookups answered negatively by the Bloom filter alone
  // (for cache/IO accounting in benchmarks).
  uint64_t filter_negatives() const;

 private:
  friend class TableCache;
  struct Rep;

  // Install an aggregate counter (e.g. the owning TableCache's running
  // total) that is bumped alongside the per-table filter_negatives. Must be
  // set before the table is shared across threads (TableCache sets it right
  // after Open); |sink| must outlive the table.
  void SetFilterNegativesSink(std::atomic<uint64_t>* sink);

  static Iterator* BlockReader(void*, const ReadOptions&, const Slice&);

  // ReadRequest::on_complete hook installed by PrepareGet: verifies the
  // trailer, parses the Block, and (fill_cache permitting) inserts it into
  // the block cache -- all off the submitting thread.
  static void ParseBlockOnComplete(ReadRequest* io);

  explicit Table(Rep* rep) : rep_(rep) {}

  Rep* const rep_;
};

}  // namespace acheron

#endif  // ACHERON_TABLE_TABLE_H_
