// Table: immutable, thread-safe SSTable reader with Bloom-filtered point
// lookups, block-cache integration, and access to the persisted
// TableProperties (tombstone metadata).
#ifndef ACHERON_TABLE_TABLE_H_
#define ACHERON_TABLE_TABLE_H_

#include <atomic>
#include <cstdint>

#include "src/lsm/options.h"
#include "src/table/iterator.h"
#include "src/table/properties.h"
#include "src/util/status.h"

namespace acheron {

class Block;
class BlockHandle;
class Footer;
class RandomAccessFile;

class Table {
 public:
  // Attempt to open the table that is stored in bytes [0..file_size) of
  // "file", and read the metadata entries necessary to allow retrieving data
  // from the table.
  //
  // If successful, returns ok and sets "*table" to the newly opened table.
  // The client should delete "*table" when no longer needed. If there was an
  // error while initializing the table, sets "*table" to nullptr and returns
  // a non-ok status. Does not take ownership of "*file", but the client must
  // ensure that "file" remains live for the duration of the returned table's
  // lifetime.
  static Status Open(const Options& options, RandomAccessFile* file,
                     uint64_t file_size, Table** table);

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  ~Table();

  // Returns a new iterator over the table contents.
  // The result of NewIterator() is initially invalid (caller must call one
  // of the Seek methods on the iterator before using it).
  Iterator* NewIterator(const ReadOptions&) const;

  // Given a key, return an approximate byte offset in the file where the
  // data for that key begins.
  uint64_t ApproximateOffsetOf(const Slice& key) const;

  // Statistics persisted at build time (incl. tombstone metadata).
  const TableProperties& properties() const;

  // Calls (*handle_result)(arg, internal_key, value) for the first entry at
  // or past |key| in this table, after consulting the Bloom filter with
  // |filter_key|. No callback is made if the filter rules the key out or the
  // table has no entry >= key.
  Status InternalGet(const ReadOptions&, const Slice& key,
                     const Slice& filter_key, void* arg,
                     void (*handle_result)(void* arg, const Slice& k,
                                           const Slice& v));

  // Number of point lookups answered negatively by the Bloom filter alone
  // (for cache/IO accounting in benchmarks).
  uint64_t filter_negatives() const;

 private:
  friend class TableCache;
  struct Rep;

  // Install an aggregate counter (e.g. the owning TableCache's running
  // total) that is bumped alongside the per-table filter_negatives. Must be
  // set before the table is shared across threads (TableCache sets it right
  // after Open); |sink| must outlive the table.
  void SetFilterNegativesSink(std::atomic<uint64_t>* sink);

  static Iterator* BlockReader(void*, const ReadOptions&, const Slice&);

  explicit Table(Rep* rep) : rep_(rep) {}

  Rep* const rep_;
};

}  // namespace acheron

#endif  // ACHERON_TABLE_TABLE_H_
