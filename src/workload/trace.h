// Workload trace files: persist a generated operation stream so experiments
// can be replayed bit-identically across engines and configurations (and
// real traces can be imported by writing this format).
//
// Format: little-endian records, one per op:
//   type: uint8 | key: varint-len bytes | value: varint-len bytes |
//   scan_length: varint32
// framed through the WAL record layer (checksummed, corruption-detecting).
#ifndef ACHERON_WORKLOAD_TRACE_H_
#define ACHERON_WORKLOAD_TRACE_H_

#include <memory>
#include <string>

#include "src/env/env.h"
#include "src/util/status.h"
#include "src/workload/workload.h"

namespace acheron {

namespace wal {
class Reader;
class Writer;
}

namespace workload {

// Streams ops into a trace file.
class TraceWriter {
 public:
  // Creates/truncates |path| on |env|.
  static Status Open(Env* env, const std::string& path,
                     std::unique_ptr<TraceWriter>* writer);
  ~TraceWriter();

  Status Append(const Op& op);
  Status Finish();

  uint64_t ops_written() const { return ops_written_; }

 private:
  TraceWriter() = default;

  std::unique_ptr<WritableFile> file_;
  std::unique_ptr<wal::Writer> log_;
  uint64_t ops_written_ = 0;
};

// Reads ops back from a trace file.
class TraceReader {
 public:
  static Status Open(Env* env, const std::string& path,
                     std::unique_ptr<TraceReader>* reader);
  ~TraceReader();

  // Returns false at end of trace (or unrecoverable corruption; check
  // status()).
  bool Next(Op* op);

  Status status() const { return status_; }

 private:
  TraceReader() = default;

  std::unique_ptr<SequentialFile> file_;
  std::unique_ptr<wal::Reader> log_;
  std::string scratch_;
  Status status_;
};

// Convenience: generate |n| ops from |gen| into |path|.
Status RecordTrace(Env* env, const std::string& path, Generator* gen,
                   uint64_t n);

}  // namespace workload
}  // namespace acheron

#endif  // ACHERON_WORKLOAD_TRACE_H_
