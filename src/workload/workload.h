// Workload generation for experiments: key distributions (uniform, Zipfian),
// op mixes (insert/update/point delete/point query/range query), and
// delete-arrival models, mirroring the knobs the delete-aware LSM line of
// work sweeps in its evaluations.
#ifndef ACHERON_WORKLOAD_WORKLOAD_H_
#define ACHERON_WORKLOAD_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/random.h"

namespace acheron {
namespace workload {

// Zipfian generator over [0, n) with parameter theta (0 = uniform-ish,
// 0.99 = heavily skewed), using the Gray et al. computation as in YCSB.
class ZipfianGenerator {
 public:
  ZipfianGenerator(uint64_t n, double theta, uint64_t seed);

  uint64_t Next();
  uint64_t n() const { return n_; }

 private:
  double Zeta(uint64_t n, double theta) const;

  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  Random rnd_;
};

enum class OpType : uint8_t {
  kInsert,       // Put of a (possibly) new key
  kUpdate,       // Put of an existing key
  kDelete,       // point delete
  kPointQuery,   // Get
  kRangeQuery,   // short scan
  kRangeDelete,  // DeleteRange over [key, end_key)
};

struct Op {
  OpType type;
  std::string key;
  std::string value;    // for puts
  std::string end_key;  // for range deletes (exclusive)
  int scan_length = 0;  // for range queries
};

enum class KeyDistribution { kUniform, kZipfian };

// How deletes pick their victim.
enum class DeleteModel {
  // Delete a uniformly random previously-inserted key.
  kUniform,
  // Delete keys in insertion order (oldest first) -- the retention /
  // sliding-window pattern of streaming systems.
  kFifo,
};

struct WorkloadSpec {
  uint64_t num_ops = 100000;
  uint64_t key_space = 10000;  // distinct keys
  size_t key_size = 16;        // bytes (zero-padded numeric keys)
  size_t value_size = 64;      // bytes

  // Op mix; must sum to <= 100. The remainder goes to inserts.
  int update_percent = 20;
  int delete_percent = 10;
  int point_query_percent = 10;
  int range_query_percent = 0;
  int range_delete_percent = 0;
  int range_scan_length = 32;
  int range_delete_span = 16;  // keys covered per range delete

  KeyDistribution distribution = KeyDistribution::kUniform;
  double zipfian_theta = 0.99;
  DeleteModel delete_model = DeleteModel::kUniform;

  uint64_t seed = 42;
};

// Streams operations for a spec. Values embed the op index so experiments
// can verify freshness; an optional timestamp prefix supports secondary
// (retention) delete experiments.
class Generator {
 public:
  explicit Generator(const WorkloadSpec& spec);

  // The i-th operation (deterministic for a given spec).
  Op Next();

  uint64_t ops_emitted() const { return ops_emitted_; }

  // Key for index |i| under this spec (zero-padded, prefixed).
  std::string KeyAt(uint64_t i) const;
  // Deterministic value body of spec.value_size bytes for op |op_index|.
  std::string ValueAt(uint64_t op_index) const;

 private:
  uint64_t NextKeyIndex();

  WorkloadSpec spec_;
  Random rnd_;
  ZipfianGenerator zipf_;
  uint64_t ops_emitted_;
  uint64_t fifo_delete_cursor_;  // next victim under kFifo
  uint64_t insert_cursor_;       // next fresh key for inserts
};

}  // namespace workload
}  // namespace acheron

#endif  // ACHERON_WORKLOAD_WORKLOAD_H_
