#include "src/workload/trace.h"

#include "src/util/coding.h"
#include "src/wal/log_reader.h"
#include "src/wal/log_writer.h"

namespace acheron {
namespace workload {

Status TraceWriter::Open(Env* env, const std::string& path,
                         std::unique_ptr<TraceWriter>* writer) {
  writer->reset(new TraceWriter());
  // io: unlocked -- trace files are workload-harness state, not DB state
  Status s = env->NewWritableFile(path, &(*writer)->file_);
  if (!s.ok()) {
    writer->reset();
    return s;
  }
  (*writer)->log_ = std::make_unique<wal::Writer>((*writer)->file_.get());
  return Status::OK();
}

TraceWriter::~TraceWriter() = default;

Status TraceWriter::Append(const Op& op) {
  std::string record;
  record.push_back(static_cast<char>(op.type));
  PutLengthPrefixedSlice(&record, op.key);
  PutLengthPrefixedSlice(&record, op.value);
  PutVarint32(&record, static_cast<uint32_t>(op.scan_length));
  Status s = log_->AddRecord(record);
  if (s.ok()) ops_written_++;
  return s;
}

Status TraceWriter::Finish() {
  Status s = file_->Flush();
  if (s.ok()) s = file_->Sync();
  if (s.ok()) s = file_->Close();
  return s;
}

Status TraceReader::Open(Env* env, const std::string& path,
                         std::unique_ptr<TraceReader>* reader) {
  reader->reset(new TraceReader());
  Status s = env->NewSequentialFile(path, &(*reader)->file_);  // io: unlocked
  if (!s.ok()) {
    reader->reset();
    return s;
  }
  (*reader)->log_ = std::make_unique<wal::Reader>((*reader)->file_.get(),
                                                  nullptr, true);
  return Status::OK();
}

TraceReader::~TraceReader() = default;

bool TraceReader::Next(Op* op) {
  Slice record;
  if (!log_->ReadRecord(&record, &scratch_)) {
    return false;
  }
  if (record.size() < 1) {
    status_ = Status::Corruption("trace record too small");
    return false;
  }
  op->type = static_cast<OpType>(record[0]);
  record.remove_prefix(1);
  Slice key, value;
  uint32_t scan_length;
  if (!GetLengthPrefixedSlice(&record, &key) ||
      !GetLengthPrefixedSlice(&record, &value) ||
      !GetVarint32(&record, &scan_length)) {
    status_ = Status::Corruption("malformed trace record");
    return false;
  }
  op->key = key.ToString();
  op->value = value.ToString();
  op->scan_length = static_cast<int>(scan_length);
  return true;
}

Status RecordTrace(Env* env, const std::string& path, Generator* gen,
                   uint64_t n) {
  std::unique_ptr<TraceWriter> writer;
  Status s = TraceWriter::Open(env, path, &writer);
  if (!s.ok()) return s;
  for (uint64_t i = 0; i < n && s.ok(); i++) {
    s = writer->Append(gen->Next());
  }
  if (s.ok()) s = writer->Finish();
  return s;
}

}  // namespace workload
}  // namespace acheron
