#include "src/workload/workload.h"

#include <cassert>
#include <cmath>
#include <cstdio>

namespace acheron {
namespace workload {

ZipfianGenerator::ZipfianGenerator(uint64_t n, double theta, uint64_t seed)
    : n_(n), theta_(theta), rnd_(seed) {
  assert(n > 0);
  zetan_ = Zeta(n, theta);
  const double zeta2 = Zeta(2, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
         (1.0 - zeta2 / zetan_);
}

double ZipfianGenerator::Zeta(uint64_t n, double theta) const {
  // O(n) once at construction; specs keep key spaces modest. For very large
  // n this could use the incremental approximation from YCSB.
  double sum = 0;
  for (uint64_t i = 1; i <= n; i++) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

uint64_t ZipfianGenerator::Next() {
  const double u = rnd_.NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  return static_cast<uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
}

Generator::Generator(const WorkloadSpec& spec)
    : spec_(spec),
      rnd_(spec.seed),
      zipf_(spec.key_space, spec.zipfian_theta, spec.seed ^ 0x5eedf00d),
      ops_emitted_(0),
      fifo_delete_cursor_(0),
      insert_cursor_(0) {
  assert(spec.update_percent + spec.delete_percent +
             spec.point_query_percent + spec.range_query_percent +
             spec.range_delete_percent <=
         100);
}

std::string Generator::KeyAt(uint64_t i) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%020llu",
                static_cast<unsigned long long>(i));
  std::string key = "key";
  key.append(buf);
  if (key.size() > spec_.key_size) {
    // Keep the distinguishing suffix.
    return key.substr(key.size() - spec_.key_size);
  }
  key.resize(spec_.key_size, '0');
  return key;
}

std::string Generator::ValueAt(uint64_t op_index) const {
  std::string value = "v" + std::to_string(op_index) + "_";
  if (value.size() < spec_.value_size) {
    value.resize(spec_.value_size, 'x');
  }
  return value;
}

uint64_t Generator::NextKeyIndex() {
  if (spec_.distribution == KeyDistribution::kZipfian) {
    uint64_t v = zipf_.Next();
    return v >= spec_.key_space ? spec_.key_space - 1 : v;
  }
  return rnd_.Uniform(spec_.key_space);
}

Op Generator::Next() {
  Op op;
  const uint64_t op_index = ops_emitted_++;
  const int dice = static_cast<int>(rnd_.Uniform(100));

  const int update_hi = spec_.update_percent;
  const int delete_hi = update_hi + spec_.delete_percent;
  const int point_hi = delete_hi + spec_.point_query_percent;
  const int range_hi = point_hi + spec_.range_query_percent;
  const int range_del_hi = range_hi + spec_.range_delete_percent;

  if (dice < update_hi) {
    op.type = OpType::kUpdate;
    op.key = KeyAt(NextKeyIndex());
    op.value = ValueAt(op_index);
  } else if (dice < delete_hi) {
    op.type = OpType::kDelete;
    if (spec_.delete_model == DeleteModel::kFifo) {
      op.key = KeyAt(fifo_delete_cursor_ % spec_.key_space);
      fifo_delete_cursor_++;
    } else {
      op.key = KeyAt(NextKeyIndex());
    }
  } else if (dice < point_hi) {
    op.type = OpType::kPointQuery;
    op.key = KeyAt(NextKeyIndex());
  } else if (dice < range_hi) {
    op.type = OpType::kRangeQuery;
    op.key = KeyAt(NextKeyIndex());
    op.scan_length = spec_.range_scan_length;
  } else if (dice < range_del_hi) {
    op.type = OpType::kRangeDelete;
    // [start, start + span) in index space; keys are zero-padded so index
    // order and lexicographic order agree.
    const uint64_t span =
        spec_.range_delete_span > 0
            ? static_cast<uint64_t>(spec_.range_delete_span)
            : 1;
    uint64_t start = NextKeyIndex();
    if (start + span > spec_.key_space) {
      start = spec_.key_space > span ? spec_.key_space - span : 0;
    }
    op.key = KeyAt(start);
    op.end_key = KeyAt(start + span);
  } else {
    op.type = OpType::kInsert;
    // Inserts walk fresh keys round-robin so the live set stays ~key_space.
    op.key = KeyAt(insert_cursor_ % spec_.key_space);
    insert_cursor_++;
    op.value = ValueAt(op_index);
  }
  return op;
}

}  // namespace workload
}  // namespace acheron
