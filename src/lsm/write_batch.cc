// WriteBatch::rep_ :=
//    sequence: fixed64
//    count: fixed32
//    data: record[count]
// record :=
//    kTypeValue varstring varstring         |
//    kTypeValuePointer varstring varstring  |
//    kTypeDeletion varstring                |
//    kTypeRangeDeletion varstring varstring
// varstring :=
//    len: varint32
//    data: uint8[len]
#include "src/lsm/write_batch.h"

#include "src/lsm/write_batch_internal.h"
#include "src/memtable/memtable.h"
#include "src/util/coding.h"

namespace acheron {

// WriteBatch header has an 8-byte sequence number followed by a 4-byte count.
static const size_t kHeader = 12;

WriteBatch::WriteBatch() { Clear(); }

void WriteBatch::Clear() {
  rep_.clear();
  rep_.resize(kHeader);
}

size_t WriteBatch::ApproximateSize() const { return rep_.size(); }

Status WriteBatch::Iterate(Handler* handler) const {
  Slice input(rep_);
  if (input.size() < kHeader) {
    return Status::Corruption("malformed WriteBatch (too small)");
  }

  input.remove_prefix(kHeader);
  Slice key, value;
  int found = 0;
  while (!input.empty()) {
    found++;
    char tag = input[0];
    input.remove_prefix(1);
    switch (tag) {
      case kTypeValue:
        if (GetLengthPrefixedSlice(&input, &key) &&
            GetLengthPrefixedSlice(&input, &value)) {
          handler->Put(key, value);
        } else {
          return Status::Corruption("bad WriteBatch Put");
        }
        break;
      case kTypeValuePointer:
        // The value slice is an encoded vlog::ValuePointer; framing only,
        // the pointer itself is validated by its consumers.
        if (GetLengthPrefixedSlice(&input, &key) &&
            GetLengthPrefixedSlice(&input, &value)) {
          handler->PutPointer(key, value);
        } else {
          return Status::Corruption("bad WriteBatch PutPointer");
        }
        break;
      case kTypeDeletion:
        if (GetLengthPrefixedSlice(&input, &key)) {
          handler->Delete(key);
        } else {
          return Status::Corruption("bad WriteBatch Delete");
        }
        break;
      case kTypeRangeDeletion:
        // Ordering of begin/end is a comparator-level question, so only the
        // framing is validated here; inverted ranges are dropped by the
        // consumers (memtable range store, fragmenter).
        if (GetLengthPrefixedSlice(&input, &key) &&
            GetLengthPrefixedSlice(&input, &value)) {
          handler->DeleteRange(key, value);
        } else {
          return Status::Corruption("bad WriteBatch DeleteRange");
        }
        break;
      default:
        return Status::Corruption("unknown WriteBatch tag");
    }
  }
  if (found != WriteBatchInternal::Count(this)) {
    return Status::Corruption("WriteBatch has wrong count");
  } else {
    return Status::OK();
  }
}

int WriteBatchInternal::Count(const WriteBatch* b) {
  return static_cast<int>(DecodeFixed32(b->rep_.data() + 8));
}

void WriteBatchInternal::SetCount(WriteBatch* b, int n) {
  EncodeFixed32(&b->rep_[8], n);
}

SequenceNumber WriteBatchInternal::Sequence(const WriteBatch* b) {
  return SequenceNumber(DecodeFixed64(b->rep_.data()));
}

void WriteBatchInternal::SetSequence(WriteBatch* b, SequenceNumber seq) {
  EncodeFixed64(&b->rep_[0], seq);
}

void WriteBatch::Put(const Slice& key, const Slice& value) {
  WriteBatchInternal::SetCount(this, WriteBatchInternal::Count(this) + 1);
  rep_.push_back(static_cast<char>(kTypeValue));
  PutLengthPrefixedSlice(&rep_, key);
  PutLengthPrefixedSlice(&rep_, value);
}

void WriteBatch::PutPointer(const Slice& key, const Slice& pointer) {
  WriteBatchInternal::SetCount(this, WriteBatchInternal::Count(this) + 1);
  rep_.push_back(static_cast<char>(kTypeValuePointer));
  PutLengthPrefixedSlice(&rep_, key);
  PutLengthPrefixedSlice(&rep_, pointer);
}

void WriteBatch::Delete(const Slice& key) {
  WriteBatchInternal::SetCount(this, WriteBatchInternal::Count(this) + 1);
  rep_.push_back(static_cast<char>(kTypeDeletion));
  PutLengthPrefixedSlice(&rep_, key);
}

void WriteBatch::DeleteRange(const Slice& begin, const Slice& end) {
  if (begin.compare(end) >= 0) return;  // covers nothing
  WriteBatchInternal::SetCount(this, WriteBatchInternal::Count(this) + 1);
  rep_.push_back(static_cast<char>(kTypeRangeDeletion));
  PutLengthPrefixedSlice(&rep_, begin);
  PutLengthPrefixedSlice(&rep_, end);
}

void WriteBatch::Append(const WriteBatch& source) {
  WriteBatchInternal::Append(this, &source);
}

int WriteBatch::Count() const { return WriteBatchInternal::Count(this); }

namespace {
class MemTableInserter : public WriteBatch::Handler {
 public:
  SequenceNumber sequence_;
  MemTable* mem_;

  void Put(const Slice& key, const Slice& value) override {
    mem_->Add(sequence_, kTypeValue, key, value);
    sequence_++;
  }
  void PutPointer(const Slice& key, const Slice& pointer) override {
    mem_->Add(sequence_, kTypeValuePointer, key, pointer);
    sequence_++;
  }
  void Delete(const Slice& key) override {
    mem_->Add(sequence_, kTypeDeletion, key, Slice());
    sequence_++;
  }
  void DeleteRange(const Slice& begin, const Slice& end) override {
    mem_->AddRange(sequence_, begin, end);
    sequence_++;
  }
};
}  // namespace

Status WriteBatchInternal::InsertInto(const WriteBatch* b, MemTable* memtable) {
  MemTableInserter inserter;
  inserter.sequence_ = WriteBatchInternal::Sequence(b);
  inserter.mem_ = memtable;
  return b->Iterate(&inserter);
}

void WriteBatchInternal::SetContents(WriteBatch* b, const Slice& contents) {
  assert(contents.size() >= kHeader);
  b->rep_.assign(contents.data(), contents.size());
}

void WriteBatchInternal::Append(WriteBatch* dst, const WriteBatch* src) {
  SetCount(dst, Count(dst) + Count(src));
  assert(src->rep_.size() >= kHeader);
  dst->rep_.append(src->rep_.data() + kHeader, src->rep_.size() - kHeader);
}

}  // namespace acheron
