// WriteBatch holds a collection of updates to apply atomically to a DB.
//
// The updates are applied in the order in which they are added. Multiple
// threads can invoke const methods without external synchronization, but if
// any thread may call a non-const method, all threads accessing the same
// WriteBatch must use external synchronization.
#ifndef ACHERON_LSM_WRITE_BATCH_H_
#define ACHERON_LSM_WRITE_BATCH_H_

#include <cstdint>
#include <string>

#include "src/util/slice.h"
#include "src/util/status.h"

namespace acheron {

class WriteBatch {
 public:
  class Handler {
   public:
    virtual ~Handler() = default;
    virtual void Put(const Slice& key, const Slice& value) = 0;
    // Key-value separation: |pointer| is an encoded vlog::ValuePointer, not
    // the user value. Pure virtual like DeleteRange: every handler must
    // decide whether it deals in pointers or needs the dereferenced value.
    virtual void PutPointer(const Slice& key, const Slice& pointer) = 0;
    virtual void Delete(const Slice& key) = 0;
    // Range delete of user keys in [begin, end). Pure virtual on purpose:
    // every handler must decide how ranges map onto its domain.
    virtual void DeleteRange(const Slice& begin, const Slice& end) = 0;
  };

  WriteBatch();

  // Intentionally copyable.
  WriteBatch(const WriteBatch&) = default;
  WriteBatch& operator=(const WriteBatch&) = default;

  ~WriteBatch() = default;

  // Store the mapping "key->value" in the database.
  void Put(const Slice& key, const Slice& value);

  // Store a vLog pointer record: key maps to a value living in the value
  // log at the encoded (segment, offset, size) address. Used by the write
  // path after separating large values; not part of the public API proper.
  void PutPointer(const Slice& key, const Slice& pointer);

  // If the database contains a mapping for "key", erase it. Else do nothing.
  void Delete(const Slice& key);

  // Erase every mapping with a key in [begin, end). A range with
  // begin >= end is dropped at batch-build time (it can cover nothing).
  void DeleteRange(const Slice& begin, const Slice& end);

  // Clear all updates buffered in this batch.
  void Clear();

  // The size of the database changes caused by this batch.
  size_t ApproximateSize() const;

  // Copies the operations in "source" to this batch.
  void Append(const WriteBatch& source);

  // Support for iterating over the contents of a batch.
  Status Iterate(Handler* handler) const;

  // Number of operations in the batch.
  int Count() const;

 private:
  friend class WriteBatchInternal;

  std::string rep_;  // See comment in write_batch.cc for the format of rep_
};

}  // namespace acheron

#endif  // ACHERON_LSM_WRITE_BATCH_H_
