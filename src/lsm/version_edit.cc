#include "src/lsm/version_edit.h"

#include <sstream>

#include "src/util/coding.h"
#include "src/util/crc32c.h"

namespace acheron {

// Tag numbers for serialized VersionEdit. These numbers are written to disk
// and should not be changed.
enum Tag {
  kComparator = 1,
  kLogNumber = 2,
  kNextFileNumber = 3,
  kLastSequence = 4,
  kCompactPointer = 5,
  kDeletedFile = 6,
  kNewFile = 7,
  // A full-version snapshot record: the tag is followed by a fixed32 CRC32C
  // of the remaining body, then the body itself (ordinary tag encoding).
  // The inner CRC makes snapshot validity independent of the WAL framing,
  // so a tolerant (checksum-off) MANIFEST scan in RepairDB can still tell a
  // good restart point from a torn one.
  kSnapshot = 8,
  // Persistence-monitor journal fields (see version_edit.h).
  kMonitorWritten = 9,
  kMonitorDelta = 10,
  // Range-delete counterparts of the monitor journal fields.
  kMonitorRangeWritten = 11,
  kMonitorRangeDelta = 12,
  // ---- vLog segment registry (key-value separation) ----
  // Upsert of one segment's full registry state (see vlog::SegmentInfo).
  kVlogSegment = 13,
  // Segment collected by GC: drop it from the registry.
  kVlogRemove = 14,
  // One compaction's garbage/pending-purge charge (see vlog::SegmentDelta).
  kVlogDelta = 15,
  // Value-purge monitor journal: purged count + latency histogram. Delta on
  // ordinary edits, cumulative on snapshot records (mirrors kMonitorDelta).
  kVlogMonitorDelta = 16,
};

void VersionEdit::Clear() {
  comparator_.clear();
  log_number_ = 0;
  next_file_number_ = 0;
  last_sequence_ = 0;
  has_comparator_ = false;
  has_log_number_ = false;
  has_next_file_number_ = false;
  has_last_sequence_ = false;
  is_snapshot_ = false;
  has_monitor_written_ = false;
  monitor_written_ = 0;
  has_monitor_delta_ = false;
  monitor_persisted_ = 0;
  monitor_superseded_ = 0;
  monitor_latency_.Clear();
  has_monitor_range_written_ = false;
  monitor_range_written_ = 0;
  has_monitor_range_delta_ = false;
  monitor_range_persisted_ = 0;
  monitor_range_superseded_ = 0;
  monitor_range_latency_.Clear();
  compact_pointers_.clear();
  deleted_files_.clear();
  new_files_.clear();
  vlog_segments_.clear();
  vlog_removed_segments_.clear();
  vlog_deltas_.clear();
  has_vlog_monitor_delta_ = false;
  vlog_monitor_purged_ = 0;
  vlog_monitor_latency_.Clear();
}

void VersionEdit::EncodeTo(std::string* dst) const {
  if (is_snapshot_) {
    std::string body;
    EncodeBodyTo(&body);
    PutVarint32(dst, kSnapshot);
    PutFixed32(dst, crc32c::Value(body.data(), body.size()));
    dst->append(body);
    return;
  }
  EncodeBodyTo(dst);
}

void VersionEdit::EncodeBodyTo(std::string* dst) const {
  if (has_comparator_) {
    PutVarint32(dst, kComparator);
    PutLengthPrefixedSlice(dst, comparator_);
  }
  if (has_log_number_) {
    PutVarint32(dst, kLogNumber);
    PutVarint64(dst, log_number_);
  }
  if (has_next_file_number_) {
    PutVarint32(dst, kNextFileNumber);
    PutVarint64(dst, next_file_number_);
  }
  if (has_last_sequence_) {
    PutVarint32(dst, kLastSequence);
    PutVarint64(dst, last_sequence_);
  }

  for (const auto& [level, key] : compact_pointers_) {
    PutVarint32(dst, kCompactPointer);
    PutVarint32(dst, level);
    PutLengthPrefixedSlice(dst, key.Encode());
  }

  for (const auto& [level, number] : deleted_files_) {
    PutVarint32(dst, kDeletedFile);
    PutVarint32(dst, level);
    PutVarint64(dst, number);
  }

  for (const auto& [level, f] : new_files_) {
    PutVarint32(dst, kNewFile);
    PutVarint32(dst, level);
    PutVarint64(dst, f.number);
    PutVarint64(dst, f.file_size);
    PutLengthPrefixedSlice(dst, f.smallest.Encode());
    PutLengthPrefixedSlice(dst, f.largest.Encode());
    PutVarint64(dst, f.num_entries);
    PutVarint64(dst, f.num_tombstones);
    PutVarint64(dst, f.earliest_tombstone_seq);
    PutVarint64(dst, f.earliest_tombstone_wall_micros);
    PutLengthPrefixedSlice(dst, f.min_secondary_key);
    PutLengthPrefixedSlice(dst, f.max_secondary_key);
    PutVarint64(dst, f.run_id);
    PutVarint64(dst, f.num_range_tombstones);
    PutVarint64(dst, f.earliest_range_tombstone_seq);
    PutVarint64(dst, f.earliest_range_tombstone_wall_micros);
    PutLengthPrefixedSlice(dst, f.range_del_begin);
    PutLengthPrefixedSlice(dst, f.range_del_end);
    PutVarint64(dst, f.min_vlog_segment);
    PutVarint64(dst, f.max_vlog_segment);
  }

  if (has_monitor_written_) {
    PutVarint32(dst, kMonitorWritten);
    PutVarint64(dst, monitor_written_);
  }
  if (has_monitor_delta_) {
    PutVarint32(dst, kMonitorDelta);
    PutVarint64(dst, monitor_persisted_);
    PutVarint64(dst, monitor_superseded_);
    std::string hist;
    monitor_latency_.EncodeTo(&hist);
    PutLengthPrefixedSlice(dst, hist);
  }
  if (has_monitor_range_written_) {
    PutVarint32(dst, kMonitorRangeWritten);
    PutVarint64(dst, monitor_range_written_);
  }
  if (has_monitor_range_delta_) {
    PutVarint32(dst, kMonitorRangeDelta);
    PutVarint64(dst, monitor_range_persisted_);
    PutVarint64(dst, monitor_range_superseded_);
    std::string hist;
    monitor_range_latency_.EncodeTo(&hist);
    PutLengthPrefixedSlice(dst, hist);
  }
  for (const vlog::SegmentInfo& info : vlog_segments_) {
    PutVarint32(dst, kVlogSegment);
    std::string enc;
    vlog::EncodeSegmentInfo(&enc, info);
    PutLengthPrefixedSlice(dst, enc);
  }
  for (uint64_t seg : vlog_removed_segments_) {
    PutVarint32(dst, kVlogRemove);
    PutVarint64(dst, seg);
  }
  for (const vlog::SegmentDelta& delta : vlog_deltas_) {
    PutVarint32(dst, kVlogDelta);
    std::string enc;
    vlog::EncodeSegmentDelta(&enc, delta);
    PutLengthPrefixedSlice(dst, enc);
  }
  if (has_vlog_monitor_delta_) {
    PutVarint32(dst, kVlogMonitorDelta);
    PutVarint64(dst, vlog_monitor_purged_);
    std::string hist;
    vlog_monitor_latency_.EncodeTo(&hist);
    PutLengthPrefixedSlice(dst, hist);
  }
}

static bool GetInternalKey(Slice* input, InternalKey* dst) {
  Slice str;
  if (GetLengthPrefixedSlice(input, &str)) {
    return dst->DecodeFrom(str);
  }
  return false;
}

static bool GetLevel(Slice* input, int* level) {
  uint32_t v;
  if (GetVarint32(input, &v) && v < static_cast<uint32_t>(kNumLevels)) {
    *level = v;
    return true;
  }
  return false;
}

Status VersionEdit::DecodeFrom(const Slice& src) {
  Clear();
  Slice input = src;
  const char* msg = nullptr;
  uint32_t tag;

  // Snapshot envelope: tag, inner CRC over the rest, then an ordinary tag
  // stream. A failed inner CRC still reports IsSnapshot()==true so recovery
  // can skip the record and keep the previously accumulated state.
  {
    Slice peek = input;
    uint32_t first_tag;
    if (GetVarint32(&peek, &first_tag) && first_tag == kSnapshot) {
      is_snapshot_ = true;
      input = peek;
      uint32_t expected_crc;
      if (!GetFixed32(&input, &expected_crc)) {
        return Status::Corruption("VersionEdit", "snapshot record too short");
      }
      if (crc32c::Value(input.data(), input.size()) != expected_crc) {
        return Status::Corruption("VersionEdit",
                                  "snapshot record checksum mismatch");
      }
    }
  }

  // Temporary storage for parsing
  int level;
  uint64_t number;
  FileMetaData f;
  Slice str;
  InternalKey key;

  while (msg == nullptr && GetVarint32(&input, &tag)) {
    switch (tag) {
      case kComparator:
        if (GetLengthPrefixedSlice(&input, &str)) {
          comparator_ = str.ToString();
          has_comparator_ = true;
        } else {
          msg = "comparator name";
        }
        break;

      case kLogNumber:
        if (GetVarint64(&input, &log_number_)) {
          has_log_number_ = true;
        } else {
          msg = "log number";
        }
        break;

      case kNextFileNumber:
        if (GetVarint64(&input, &next_file_number_)) {
          has_next_file_number_ = true;
        } else {
          msg = "next file number";
        }
        break;

      case kLastSequence:
        if (GetVarint64(&input, &last_sequence_)) {
          has_last_sequence_ = true;
        } else {
          msg = "last sequence number";
        }
        break;

      case kCompactPointer:
        if (GetLevel(&input, &level) && GetInternalKey(&input, &key)) {
          compact_pointers_.push_back(std::make_pair(level, key));
        } else {
          msg = "compaction pointer";
        }
        break;

      case kDeletedFile:
        if (GetLevel(&input, &level) && GetVarint64(&input, &number)) {
          deleted_files_.insert(std::make_pair(level, number));
        } else {
          msg = "deleted file";
        }
        break;

      case kNewFile: {
        Slice min_sec, max_sec, rd_begin, rd_end;
        if (GetLevel(&input, &level) && GetVarint64(&input, &f.number) &&
            GetVarint64(&input, &f.file_size) &&
            GetInternalKey(&input, &f.smallest) &&
            GetInternalKey(&input, &f.largest) &&
            GetVarint64(&input, &f.num_entries) &&
            GetVarint64(&input, &f.num_tombstones) &&
            GetVarint64(&input, &f.earliest_tombstone_seq) &&
            GetVarint64(&input, &f.earliest_tombstone_wall_micros) &&
            GetLengthPrefixedSlice(&input, &min_sec) &&
            GetLengthPrefixedSlice(&input, &max_sec) &&
            GetVarint64(&input, &f.run_id) &&
            GetVarint64(&input, &f.num_range_tombstones) &&
            GetVarint64(&input, &f.earliest_range_tombstone_seq) &&
            GetVarint64(&input, &f.earliest_range_tombstone_wall_micros) &&
            GetLengthPrefixedSlice(&input, &rd_begin) &&
            GetLengthPrefixedSlice(&input, &rd_end) &&
            GetVarint64(&input, &f.min_vlog_segment) &&
            GetVarint64(&input, &f.max_vlog_segment)) {
          f.min_secondary_key = min_sec.ToString();
          f.max_secondary_key = max_sec.ToString();
          f.range_del_begin = rd_begin.ToString();
          f.range_del_end = rd_end.ToString();
          new_files_.push_back(std::make_pair(level, f));
        } else {
          msg = "new-file entry";
        }
        break;
      }

      case kMonitorWritten:
        if (GetVarint64(&input, &monitor_written_)) {
          has_monitor_written_ = true;
        } else {
          msg = "monitor written count";
        }
        break;

      case kMonitorDelta: {
        Slice hist;
        if (GetVarint64(&input, &monitor_persisted_) &&
            GetVarint64(&input, &monitor_superseded_) &&
            GetLengthPrefixedSlice(&input, &hist) &&
            monitor_latency_.DecodeFrom(&hist) && hist.empty()) {
          has_monitor_delta_ = true;
        } else {
          msg = "monitor delta";
        }
        break;
      }

      case kMonitorRangeWritten:
        if (GetVarint64(&input, &monitor_range_written_)) {
          has_monitor_range_written_ = true;
        } else {
          msg = "monitor range written count";
        }
        break;

      case kMonitorRangeDelta: {
        Slice hist;
        if (GetVarint64(&input, &monitor_range_persisted_) &&
            GetVarint64(&input, &monitor_range_superseded_) &&
            GetLengthPrefixedSlice(&input, &hist) &&
            monitor_range_latency_.DecodeFrom(&hist) && hist.empty()) {
          has_monitor_range_delta_ = true;
        } else {
          msg = "monitor range delta";
        }
        break;
      }

      case kVlogSegment: {
        Slice enc;
        vlog::SegmentInfo info;
        if (GetLengthPrefixedSlice(&input, &enc) &&
            vlog::DecodeSegmentInfo(&enc, &info) && enc.empty()) {
          vlog_segments_.push_back(std::move(info));
        } else {
          msg = "vlog segment";
        }
        break;
      }

      case kVlogRemove:
        if (GetVarint64(&input, &number)) {
          vlog_removed_segments_.push_back(number);
        } else {
          msg = "vlog remove";
        }
        break;

      case kVlogDelta: {
        Slice enc;
        vlog::SegmentDelta delta;
        if (GetLengthPrefixedSlice(&input, &enc) &&
            vlog::DecodeSegmentDelta(&enc, &delta) && enc.empty()) {
          vlog_deltas_.push_back(delta);
        } else {
          msg = "vlog delta";
        }
        break;
      }

      case kVlogMonitorDelta: {
        Slice hist;
        if (GetVarint64(&input, &vlog_monitor_purged_) &&
            GetLengthPrefixedSlice(&input, &hist) &&
            vlog_monitor_latency_.DecodeFrom(&hist) && hist.empty()) {
          has_vlog_monitor_delta_ = true;
        } else {
          msg = "vlog monitor delta";
        }
        break;
      }

      default:
        msg = "unknown tag";
        break;
    }
  }

  if (msg == nullptr && !input.empty()) {
    msg = "invalid tag";
  }

  Status result;
  if (msg != nullptr) {
    result = Status::Corruption("VersionEdit", msg);
  }
  return result;
}

std::string VersionEdit::DebugString() const {
  std::ostringstream ss;
  ss << "VersionEdit {";
  if (is_snapshot_) ss << "\n  Snapshot";
  if (has_comparator_) ss << "\n  Comparator: " << comparator_;
  if (has_monitor_written_) ss << "\n  MonitorWritten: " << monitor_written_;
  if (has_monitor_delta_) {
    ss << "\n  MonitorDelta: persisted=" << monitor_persisted_
       << " superseded=" << monitor_superseded_;
  }
  if (has_monitor_range_written_) {
    ss << "\n  MonitorRangeWritten: " << monitor_range_written_;
  }
  if (has_monitor_range_delta_) {
    ss << "\n  MonitorRangeDelta: persisted=" << monitor_range_persisted_
       << " superseded=" << monitor_range_superseded_;
  }
  if (has_log_number_) ss << "\n  LogNumber: " << log_number_;
  if (has_next_file_number_) ss << "\n  NextFile: " << next_file_number_;
  if (has_last_sequence_) ss << "\n  LastSeq: " << last_sequence_;
  for (const auto& [level, key] : compact_pointers_) {
    ss << "\n  CompactPointer: " << level << " " << key.DebugString();
  }
  for (const auto& [level, number] : deleted_files_) {
    ss << "\n  RemoveFile: " << level << " " << number;
  }
  for (const auto& [level, f] : new_files_) {
    ss << "\n  AddFile: " << level << " " << f.number << " " << f.file_size
       << " " << f.smallest.DebugString() << " .. " << f.largest.DebugString()
       << " tombstones=" << f.num_tombstones
       << " range_tombstones=" << f.num_range_tombstones;
    if (f.has_vlog_pointers()) {
      ss << " vlog=[" << f.min_vlog_segment << "," << f.max_vlog_segment
         << "]";
    }
  }
  for (const vlog::SegmentInfo& info : vlog_segments_) {
    ss << "\n  VlogSegment: " << info.number
       << (info.sealed ? " sealed" : " head") << " bytes=" << info.total_bytes
       << " garbage=" << info.garbage_bytes
       << " pending=" << info.pending_count();
  }
  for (uint64_t seg : vlog_removed_segments_) {
    ss << "\n  VlogRemove: " << seg;
  }
  for (const vlog::SegmentDelta& d : vlog_deltas_) {
    ss << "\n  VlogDelta: segment=" << d.number << " garbage=" << d.garbage_bytes
       << " purges=" << d.purge_count;
  }
  if (has_vlog_monitor_delta_) {
    ss << "\n  VlogMonitorDelta: purged=" << vlog_monitor_purged_;
  }
  ss << "\n}\n";
  return ss.str();
}

}  // namespace acheron
