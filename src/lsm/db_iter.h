// DBIter: wraps an internal-key merging iterator and exposes user keys,
// suppressing tombstoned and superseded versions as of a read sequence.
#ifndef ACHERON_LSM_DB_ITER_H_
#define ACHERON_LSM_DB_ITER_H_

#include <atomic>
#include <cstdint>

#include "src/core/range_tombstone.h"
#include "src/lsm/dbformat.h"
#include "src/table/iterator.h"

namespace acheron {

// Return a new iterator that converts internal keys (yielded by
// "*internal_iter") that were live at the specified "sequence" number into
// appropriate user keys. Takes ownership of internal_iter.
// |tombstone_skips| may be null; when set, tombstones skipped during
// iteration are counted into it. It must be an atomic: iterators run outside
// the DB mutex, concurrently with writers and with each other.
// |range_dels| (may be null) is the fragmented union of every range
// tombstone visible to this iterator's sources; ownership transfers to the
// iterator. An entry whose sequence is below a covering fragment at or
// below |sequence| is suppressed exactly like a point deletion (and counted
// as a tombstone skip).
Iterator* NewDBIterator(const Comparator* user_key_comparator,
                        Iterator* internal_iter, SequenceNumber sequence,
                        std::atomic<uint64_t>* tombstone_skips,
                        FragmentedRangeTombstoneList* range_dels = nullptr);

}  // namespace acheron

#endif  // ACHERON_LSM_DB_ITER_H_
