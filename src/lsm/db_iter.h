// DBIter: wraps an internal-key merging iterator and exposes user keys,
// suppressing tombstoned and superseded versions as of a read sequence.
#ifndef ACHERON_LSM_DB_ITER_H_
#define ACHERON_LSM_DB_ITER_H_

#include <atomic>
#include <cstdint>

#include "src/core/range_tombstone.h"
#include "src/lsm/dbformat.h"
#include "src/table/iterator.h"
#include "src/vlog/vlog_reader.h"

namespace acheron {

// Return a new iterator that converts internal keys (yielded by
// "*internal_iter") that were live at the specified "sequence" number into
// appropriate user keys. Takes ownership of internal_iter.
// |tombstone_skips| may be null; when set, tombstones skipped during
// iteration are counted into it. It must be an atomic: iterators run outside
// the DB mutex, concurrently with writers and with each other.
// |range_dels| (may be null) is the fragmented union of every range
// tombstone visible to this iterator's sources; ownership transfers to the
// iterator. An entry whose sequence is below a covering fragment at or
// below |sequence| is suppressed exactly like a point deletion (and counted
// as a tombstone skip).
// |vlog_readers| (may be null when key-value separation is off) dereferences
// kTypeValuePointer entries: the iterator resolves the pointer when it
// accepts the entry, so value() always yields the user value. A failed
// dereference invalidates the iterator with the error in status().
// |vlog_reads| (nullable) counts resolved pointers, same contract as
// |tombstone_skips|.
Iterator* NewDBIterator(const Comparator* user_key_comparator,
                        Iterator* internal_iter, SequenceNumber sequence,
                        std::atomic<uint64_t>* tombstone_skips,
                        FragmentedRangeTombstoneList* range_dels = nullptr,
                        vlog::ReaderCache* vlog_readers = nullptr,
                        std::atomic<uint64_t>* vlog_reads = nullptr);

}  // namespace acheron

#endif  // ACHERON_LSM_DB_ITER_H_
