#include "src/lsm/db_iter.h"

#include "src/util/comparator.h"

namespace acheron {
namespace {

// Memtables and sstables that make the DB representation contain (userkey,
// seq, type) => uservalue entries. DBIter combines multiple entries for the
// same userkey found in the DB representation into a single entry while
// accounting for sequence numbers, deletion markers, overwrites, etc.
class DBIter : public Iterator {
 public:
  // Which direction is the iterator currently moving?
  // (1) When moving forward, the internal iterator is positioned at the
  //     exact entry that yields this->key(), this->value()
  // (2) When moving backwards, the internal iterator is positioned just
  //     before all entries whose user key == this->key().
  enum Direction { kForward, kReverse };

  DBIter(const Comparator* cmp, Iterator* iter, SequenceNumber s,
         std::atomic<uint64_t>* tombstone_skips,
         FragmentedRangeTombstoneList* range_dels,
         vlog::ReaderCache* vlog_readers, std::atomic<uint64_t>* vlog_reads)
      : user_comparator_(cmp),
        iter_(iter),
        sequence_(s),
        tombstone_skips_(tombstone_skips),
        range_dels_(range_dels),
        vlog_readers_(vlog_readers),
        vlog_reads_(vlog_reads),
        direction_(kForward),
        valid_(false) {}

  DBIter(const DBIter&) = delete;
  DBIter& operator=(const DBIter&) = delete;

  ~DBIter() override {
    FlushTombstoneSkips();
    delete range_dels_;
    delete iter_;
  }

  bool Valid() const override { return valid_; }
  Slice key() const override {
    assert(valid_);
    return (direction_ == kForward) ? ExtractUserKey(iter_->key()) : saved_key_;
  }
  Slice value() const override {
    assert(valid_);
    if (direction_ == kForward) {
      return forward_is_resolved_ ? Slice(resolved_value_) : iter_->value();
    }
    return saved_value_;
  }
  Status status() const override {
    if (status_.ok()) {
      return iter_->status();
    } else {
      return status_;
    }
  }

  void Next() override;
  void Prev() override;
  void Seek(const Slice& target) override;
  void SeekToFirst() override;
  void SeekToLast() override;

 private:
  void FindNextUserEntry(bool skipping, std::string* skip);
  void FindPrevUserEntry();
  bool ParseKey(ParsedInternalKey* key);

  // True when a range tombstone visible at sequence_ hides |ikey|: covered
  // entries behave exactly like entries below a point deletion.
  bool RangeCovered(const ParsedInternalKey& ikey) const {
    return range_dels_ != nullptr &&
           range_dels_->MaxCoveringSeq(ikey.user_key, sequence_) >
               ikey.sequence;
  }

  // Dereference an encoded vLog pointer into resolved_value_. On failure
  // sets status_ and returns false (the caller invalidates the iterator).
  bool ResolvePointer(const Slice& encoded, const Slice& user_key) {
    vlog::ValuePointer ptr;
    if (!vlog::DecodeValuePointerStrict(encoded, &ptr)) {
      status_ = Status::Corruption("bad vLog pointer in iterator");
      return false;
    }
    if (vlog_readers_ == nullptr) {
      status_ = Status::Corruption("vLog pointer but no value log attached");
      return false;
    }
    Status s = vlog_readers_->Get(ptr, user_key, &resolved_value_);
    if (!s.ok()) {
      status_ = s;
      return false;
    }
    if (vlog_reads_ != nullptr) {
      vlog_reads_->fetch_add(1, std::memory_order_relaxed);
    }
    return true;
  }

  inline void SaveKey(const Slice& k, std::string* dst) {
    dst->assign(k.data(), k.size());
  }

  inline void ClearSavedValue() {
    if (saved_value_.capacity() > 1048576) {
      std::string empty;
      swap(empty, saved_value_);
    } else {
      saved_value_.clear();
    }
  }

  // Skips are tallied in a plain local and flushed to the shared atomic
  // once per public operation (and at destruction), so a scan stepping
  // over a tombstone run costs one relaxed RMW per Next/Seek instead of
  // one per tombstone.
  void CountTombstoneSkip() { pending_tombstone_skips_++; }

  void FlushTombstoneSkips() {
    if (tombstone_skips_ != nullptr && pending_tombstone_skips_ > 0) {
      tombstone_skips_->fetch_add(pending_tombstone_skips_,
                                  std::memory_order_relaxed);
    }
    pending_tombstone_skips_ = 0;
  }

  const Comparator* const user_comparator_;
  Iterator* const iter_;
  SequenceNumber const sequence_;
  std::atomic<uint64_t>* const tombstone_skips_;
  FragmentedRangeTombstoneList* const range_dels_;  // owned; may be null
  vlog::ReaderCache* const vlog_readers_;           // not owned; may be null
  std::atomic<uint64_t>* const vlog_reads_;
  uint64_t pending_tombstone_skips_ = 0;
  Status status_;
  std::string saved_key_;    // == current key when direction_==kReverse
  std::string saved_value_;  // == current raw value when direction_==kReverse
  std::string resolved_value_;  // dereferenced vLog value (forward accept)
  // True when the forward-direction current entry is a resolved pointer, so
  // value() must serve resolved_value_ instead of the raw iterator payload.
  bool forward_is_resolved_ = false;
  Direction direction_;
  bool valid_;
};

inline bool DBIter::ParseKey(ParsedInternalKey* ikey) {
  if (!ParseInternalKey(iter_->key(), ikey)) {
    status_ = Status::Corruption("corrupted internal key in DBIter");
    return false;
  }
  return true;
}

void DBIter::Next() {
  assert(valid_);

  if (direction_ == kReverse) {  // Switch directions?
    direction_ = kForward;
    // iter_ is pointing just before the entries for this->key(), so advance
    // into the range of entries for this->key() and then use the normal
    // skipping code below.
    if (!iter_->Valid()) {
      iter_->SeekToFirst();
    } else {
      iter_->Next();
    }
    if (!iter_->Valid()) {
      valid_ = false;
      saved_key_.clear();
      return;
    }
    // saved_key_ already contains the key to skip past.
  } else {
    // Store in saved_key_ the current key so we skip it below.
    SaveKey(ExtractUserKey(iter_->key()), &saved_key_);

    // iter_ is pointing to current key. We can now safely move to the next
    // to avoid checking current key.
    iter_->Next();
    if (!iter_->Valid()) {
      valid_ = false;
      saved_key_.clear();
      return;
    }
  }

  FindNextUserEntry(true, &saved_key_);
  FlushTombstoneSkips();
}

void DBIter::FindNextUserEntry(bool skipping, std::string* skip) {
  // Loop until we hit an acceptable entry to yield
  assert(iter_->Valid());
  assert(direction_ == kForward);
  do {
    ParsedInternalKey ikey;
    if (ParseKey(&ikey) && ikey.sequence <= sequence_) {
      switch (ikey.type) {
        case kTypeDeletion:
          // Arrange to skip all upcoming entries for this key since
          // they are hidden by this deletion.
          SaveKey(ikey.user_key, skip);
          skipping = true;
          CountTombstoneSkip();
          break;
        case kTypeValue:
        case kTypeValuePointer:
          if (skipping &&
              user_comparator_->Compare(ikey.user_key, *skip) <= 0) {
            // Entry hidden
          } else if (RangeCovered(ikey)) {
            // Hidden by a range tombstone: behave exactly as if a point
            // deletion preceded it -- older versions of this key have
            // smaller sequences and are covered by the same fragment.
            SaveKey(ikey.user_key, skip);
            skipping = true;
            CountTombstoneSkip();
          } else {
            forward_is_resolved_ = (ikey.type == kTypeValuePointer);
            if (forward_is_resolved_ &&
                !ResolvePointer(iter_->value(), ikey.user_key)) {
              valid_ = false;
              saved_key_.clear();
              return;
            }
            valid_ = true;
            saved_key_.clear();
            return;
          }
          break;
      }
    }
    iter_->Next();
  } while (iter_->Valid());
  saved_key_.clear();
  valid_ = false;
}

void DBIter::Prev() {
  assert(valid_);

  if (direction_ == kForward) {  // Switch directions?
    // iter_ is pointing at the current entry. Scan backwards until the key
    // changes so we can use the normal reverse scanning code.
    assert(iter_->Valid());  // Otherwise valid_ would have been false
    SaveKey(ExtractUserKey(iter_->key()), &saved_key_);
    while (true) {
      iter_->Prev();
      if (!iter_->Valid()) {
        valid_ = false;
        saved_key_.clear();
        ClearSavedValue();
        return;
      }
      if (user_comparator_->Compare(ExtractUserKey(iter_->key()), saved_key_) <
          0) {
        break;
      }
    }
    direction_ = kReverse;
  }

  FindPrevUserEntry();
  FlushTombstoneSkips();
}

void DBIter::FindPrevUserEntry() {
  assert(direction_ == kReverse);

  ValueType value_type = kTypeDeletion;
  if (iter_->Valid()) {
    do {
      ParsedInternalKey ikey;
      if (ParseKey(&ikey) && ikey.sequence <= sequence_) {
        if ((value_type != kTypeDeletion) &&
            user_comparator_->Compare(ikey.user_key, saved_key_) < 0) {
          // We encountered a non-deleted value in entries for previous keys,
          break;
        }
        value_type = ikey.type;
        if ((value_type == kTypeValue || value_type == kTypeValuePointer) &&
            RangeCovered(ikey)) {
          // Hidden by a range tombstone: treat like a point deletion.
          value_type = kTypeDeletion;
        }
        if (value_type == kTypeDeletion) {
          saved_key_.clear();
          ClearSavedValue();
          CountTombstoneSkip();
        } else {
          Slice raw_value = iter_->value();
          if (saved_value_.capacity() > raw_value.size() + 1048576) {
            std::string empty;
            swap(empty, saved_value_);
          }
          SaveKey(ExtractUserKey(iter_->key()), &saved_key_);
          saved_value_.assign(raw_value.data(), raw_value.size());
        }
      }
      iter_->Prev();
    } while (iter_->Valid());
  }

  if (value_type == kTypeDeletion) {
    // End
    valid_ = false;
    saved_key_.clear();
    ClearSavedValue();
    direction_ = kForward;
  } else {
    // saved_value_ holds the raw payload of the winning entry; if that
    // entry was a pointer, dereference it once now (not per candidate).
    if (value_type == kTypeValuePointer) {
      if (!ResolvePointer(saved_value_, saved_key_)) {
        valid_ = false;
        saved_key_.clear();
        ClearSavedValue();
        direction_ = kForward;
        return;
      }
      saved_value_ = resolved_value_;
    }
    valid_ = true;
  }
}

void DBIter::Seek(const Slice& target) {
  direction_ = kForward;
  ClearSavedValue();
  saved_key_.clear();
  AppendInternalKey(&saved_key_,
                    ParsedInternalKey(target, sequence_, kValueTypeForSeek));
  iter_->Seek(saved_key_);
  if (iter_->Valid()) {
    FindNextUserEntry(false, &saved_key_ /* temporary storage */);
  } else {
    valid_ = false;
  }
  FlushTombstoneSkips();
}

void DBIter::SeekToFirst() {
  direction_ = kForward;
  ClearSavedValue();
  iter_->SeekToFirst();
  if (iter_->Valid()) {
    FindNextUserEntry(false, &saved_key_ /* temporary storage */);
  } else {
    valid_ = false;
  }
  FlushTombstoneSkips();
}

void DBIter::SeekToLast() {
  direction_ = kReverse;
  ClearSavedValue();
  iter_->SeekToLast();
  FindPrevUserEntry();
  FlushTombstoneSkips();
}

}  // namespace

Iterator* NewDBIterator(const Comparator* user_key_comparator,
                        Iterator* internal_iter, SequenceNumber sequence,
                        std::atomic<uint64_t>* tombstone_skips,
                        FragmentedRangeTombstoneList* range_dels,
                        vlog::ReaderCache* vlog_readers,
                        std::atomic<uint64_t>* vlog_reads) {
  return new DBIter(user_key_comparator, internal_iter, sequence,
                    tombstone_skips, range_dels, vlog_readers, vlog_reads);
}

}  // namespace acheron
