// Internal key format shared by the memtable, SSTables, and the DB core.
//
// An internal key packs [user_key | 8-byte trailer], trailer = (seq << 8) |
// type. Ordering: user key ascending, then sequence number *descending* so
// the newest version of a key sorts first.
//
// The sequence number doubles as Acheron's logical clock: a tombstone's age
// is (last_sequence - tombstone_seq), measured in ingested operations. This
// survives flushes and compactions for free because sequence numbers are
// preserved, and makes delete-persistence TTLs deterministic.
#ifndef ACHERON_LSM_DBFORMAT_H_
#define ACHERON_LSM_DBFORMAT_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "src/util/coding.h"
#include "src/util/comparator.h"
#include "src/util/slice.h"

namespace acheron {

class InternalKey;

// Value types encoded as the last component of internal keys.
// DO NOT CHANGE THESE ENUM VALUES: they are embedded in the on-disk
// data structures.
//
// kTypeRangeDeletion records live only in the WriteBatch/WAL stream and in
// dedicated range-tombstone blocks (begin key in the record, end key as the
// value); they never enter the point-key ordering of memtables or data
// blocks.
//
// kTypeValuePointer is a point entry (ordered like kTypeValue) whose payload
// is not the user value but an encoded (segment, offset, size) reference
// into the value log (src/vlog/vlog_format.h): key-value separation routes
// values >= Options::value_separation_threshold through the vLog, and the
// read paths dereference the pointer transparently.
enum ValueType {
  kTypeDeletion = 0x0,
  kTypeValue = 0x1,
  kTypeRangeDeletion = 0x2,
  kTypeValuePointer = 0x3
};

// kValueTypeForSeek defines the ValueType that should be passed when
// constructing a ParsedInternalKey object for seeking to a particular
// sequence number (since we sort sequence numbers in decreasing order
// and the value type is embedded as the low 8 bits in the sequence
// number in internal keys, we need to use the highest-numbered
// ValueType *among those in the point-key ordering*, not the lowest;
// kTypeRangeDeletion is stored out of band and does not participate, but
// kTypeValuePointer does -- it is an ordinary point entry).
static const ValueType kValueTypeForSeek = kTypeValuePointer;

typedef uint64_t SequenceNumber;

// We leave eight bits empty at the bottom so a type and sequence#
// can be packed together into 64-bits.
static const SequenceNumber kMaxSequenceNumber = ((0x1ull << 56) - 1);

struct ParsedInternalKey {
  Slice user_key;
  SequenceNumber sequence;
  ValueType type;

  ParsedInternalKey() {}  // Intentionally left uninitialized (for speed)
  ParsedInternalKey(const Slice& u, const SequenceNumber& seq, ValueType t)
      : user_key(u), sequence(seq), type(t) {}
  std::string DebugString() const;
};

// Return the length of the encoding of "key".
inline size_t InternalKeyEncodingLength(const ParsedInternalKey& key) {
  return key.user_key.size() + 8;
}

inline uint64_t PackSequenceAndType(uint64_t seq, ValueType t) {
  assert(seq <= kMaxSequenceNumber);
  return (seq << 8) | t;
}

// Append the serialization of "key" to *result.
void AppendInternalKey(std::string* result, const ParsedInternalKey& key);

// Attempt to parse an internal key from "internal_key". On success, stores
// the parsed data in "*result", and returns true. On error returns false
// and "*result" is undefined.
bool ParseInternalKey(const Slice& internal_key, ParsedInternalKey* result);

// Returns the user key portion of an internal key.
inline Slice ExtractUserKey(const Slice& internal_key) {
  assert(internal_key.size() >= 8);
  return Slice(internal_key.data(), internal_key.size() - 8);
}

inline uint64_t ExtractTag(const Slice& internal_key) {
  assert(internal_key.size() >= 8);
  return DecodeFixed64(internal_key.data() + internal_key.size() - 8);
}

inline SequenceNumber ExtractSequence(const Slice& internal_key) {
  return ExtractTag(internal_key) >> 8;
}

inline ValueType ExtractValueType(const Slice& internal_key) {
  return static_cast<ValueType>(ExtractTag(internal_key) & 0xff);
}

// A comparator for internal keys that uses a specified comparator for the
// user key portion and breaks ties by decreasing sequence number.
class InternalKeyComparator : public Comparator {
 public:
  explicit InternalKeyComparator(const Comparator* c) : user_comparator_(c) {}
  const char* Name() const override;
  int Compare(const Slice& a, const Slice& b) const override;
  void FindShortestSeparator(std::string* start,
                             const Slice& limit) const override;
  void FindShortSuccessor(std::string* key) const override;

  const Comparator* user_comparator() const { return user_comparator_; }

  int Compare(const InternalKey& a, const InternalKey& b) const;

 private:
  const Comparator* user_comparator_;
};

// Modules in this directory should keep internal keys wrapped inside the
// following class instead of plain strings so that we do not incorrectly use
// string comparisons instead of an InternalKeyComparator.
class InternalKey {
 public:
  InternalKey() {}  // Leave rep_ as empty to indicate it is invalid
  InternalKey(const Slice& user_key, SequenceNumber s, ValueType t) {
    AppendInternalKey(&rep_, ParsedInternalKey(user_key, s, t));
  }

  bool DecodeFrom(const Slice& s) {
    rep_.assign(s.data(), s.size());
    return !rep_.empty();
  }

  Slice Encode() const {
    assert(!rep_.empty());
    return rep_;
  }

  Slice user_key() const { return ExtractUserKey(rep_); }

  void SetFrom(const ParsedInternalKey& p) {
    rep_.clear();
    AppendInternalKey(&rep_, p);
  }

  void Clear() { rep_.clear(); }

  std::string DebugString() const;

 private:
  std::string rep_;
};

inline int InternalKeyComparator::Compare(const InternalKey& a,
                                          const InternalKey& b) const {
  return Compare(a.Encode(), b.Encode());
}

// A helper class useful for DB::Get().
class LookupKey {
 public:
  // Initialize *this for looking up user_key at a snapshot with the
  // specified sequence number.
  LookupKey(const Slice& user_key, SequenceNumber sequence);

  LookupKey(const LookupKey&) = delete;
  LookupKey& operator=(const LookupKey&) = delete;

  ~LookupKey();

  // Return a key suitable for lookup in a MemTable.
  Slice memtable_key() const { return Slice(start_, end_ - start_); }

  // Return an internal key (suitable for passing to an internal iterator).
  Slice internal_key() const { return Slice(kstart_, end_ - kstart_); }

  // Return the user key.
  Slice user_key() const { return Slice(kstart_, end_ - kstart_ - 8); }

 private:
  // We construct a char array of the form:
  //    klength  varint32               <-- start_
  //    userkey  char[klength]          <-- kstart_
  //    tag      uint64
  //                                    <-- end_
  // The array is a suitable MemTable key.
  // The suffix starting with "userkey" can be used as an InternalKey.
  const char* start_;
  const char* kstart_;
  const char* end_;
  char space_[200];  // Avoid allocation for short keys
};

inline LookupKey::~LookupKey() {
  if (start_ != space_) delete[] start_;
}

}  // namespace acheron

#endif  // ACHERON_LSM_DBFORMAT_H_
