#include "src/lsm/table_cache.h"

#include "src/env/env.h"
#include "src/lsm/filename.h"
#include "src/util/coding.h"

namespace acheron {

struct TableAndFile {
  RandomAccessFile* file;
  Table* table;
};

static void DeleteEntry(const Slice&, void* value) {
  TableAndFile* tf = reinterpret_cast<TableAndFile*>(value);
  delete tf->table;
  delete tf->file;
  delete tf;
}

static void UnrefEntry(void* arg1, void* arg2) {
  Cache* cache = reinterpret_cast<Cache*>(arg1);
  Cache::Handle* h = reinterpret_cast<Cache::Handle*>(arg2);
  cache->Release(h);
}

TableCache::TableCache(const std::string& dbname, const Options& options,
                       int entries, const Comparator* user_comparator)
    : env_(options.env),
      dbname_(dbname),
      options_(options),
      user_comparator_(user_comparator != nullptr ? user_comparator
                                                  : BytewiseComparator()),
      cache_(NewLRUCache(entries)) {}

TableCache::~TableCache() { delete cache_; }

Status TableCache::FindTable(uint64_t file_number, uint64_t file_size,
                             Cache::Handle** handle) {
  Status s;
  char buf[sizeof(file_number)];
  EncodeFixed64(buf, file_number);
  Slice key(buf, sizeof(buf));
  *handle = cache_->Lookup(key);
  if (*handle == nullptr) {
    std::string fname = TableFileName(dbname_, file_number);
    std::unique_ptr<RandomAccessFile> file;
    Table* table = nullptr;
    s = env_->NewRandomAccessFile(fname, &file);  // io: unlocked
    if (s.ok()) {
      s = Table::Open(options_, file.get(), file_size, &table);
    }

    if (!s.ok()) {
      assert(table == nullptr);
      // We do not cache error results so that if the error is transient,
      // or somebody repairs the file, we recover automatically.
    } else {
      table->SetFilterNegativesSink(&filter_negatives_total_);
      // Fragment range tombstones once, before the table is shared.
      table->BuildRangeFragments(user_comparator_);
      TableAndFile* tf = new TableAndFile;
      tf->file = file.release();
      tf->table = table;
      *handle = cache_->Insert(key, tf, 1, &DeleteEntry);
    }
  }
  return s;
}

Iterator* TableCache::NewIterator(const ReadOptions& options,
                                  uint64_t file_number, uint64_t file_size,
                                  Table** tableptr) {
  if (tableptr != nullptr) {
    *tableptr = nullptr;
  }

  Cache::Handle* handle = nullptr;
  Status s = FindTable(file_number, file_size, &handle);
  if (!s.ok()) {
    return NewErrorIterator(s);
  }

  Table* table = reinterpret_cast<TableAndFile*>(cache_->Value(handle))->table;
  Iterator* result = table->NewIterator(options);
  result->RegisterCleanup(&UnrefEntry, cache_, handle);
  if (tableptr != nullptr) {
    *tableptr = table;
  }
  return result;
}

Status TableCache::Get(const ReadOptions& options, uint64_t file_number,
                       uint64_t file_size, const Slice& k,
                       const Slice& user_key, void* arg,
                       void (*handle_result)(void*, const Slice&,
                                             const Slice&),
                       uint64_t* filter_negatives) {
  Cache::Handle* handle = nullptr;
  Status s = FindTable(file_number, file_size, &handle);
  if (s.ok()) {
    Table* t = reinterpret_cast<TableAndFile*>(cache_->Value(handle))->table;
    s = t->InternalGet(options, k, user_key, arg, handle_result,
                       filter_negatives);
    cache_->Release(handle);
  }
  return s;
}

SequenceNumber TableCache::MaxRangeCoveringSeq(uint64_t file_number,
                                               uint64_t file_size,
                                               const Slice& user_key,
                                               SequenceNumber snapshot) {
  Cache::Handle* handle = nullptr;
  Status s = FindTable(file_number, file_size, &handle);
  if (!s.ok()) return 0;
  Table* t = reinterpret_cast<TableAndFile*>(cache_->Value(handle))->table;
  SequenceNumber seq = t->range_tombstones().MaxCoveringSeq(user_key, snapshot);
  cache_->Release(handle);
  return seq;
}

Status TableCache::GetRangeTombstones(uint64_t file_number, uint64_t file_size,
                                      std::vector<RangeTombstone>* out) {
  Cache::Handle* handle = nullptr;
  Status s = FindTable(file_number, file_size, &handle);
  if (!s.ok()) return s;
  Table* t = reinterpret_cast<TableAndFile*>(cache_->Value(handle))->table;
  const std::vector<RangeTombstone>& raw = t->raw_range_tombstones();
  out->insert(out->end(), raw.begin(), raw.end());
  cache_->Release(handle);
  return s;
}

Status TableCache::PinTable(uint64_t file_number, uint64_t file_size,
                            Table** table, Cache::Handle** handle) {
  *table = nullptr;
  *handle = nullptr;
  Status s = FindTable(file_number, file_size, handle);
  if (s.ok()) {
    *table = reinterpret_cast<TableAndFile*>(cache_->Value(*handle))->table;
  }
  return s;
}

void TableCache::Unpin(Cache::Handle* handle) { cache_->Release(handle); }

void TableCache::Evict(uint64_t file_number) {
  char buf[sizeof(file_number)];
  EncodeFixed64(buf, file_number);
  cache_->Erase(Slice(buf, sizeof(buf)));
}

}  // namespace acheron
