// TableCache: LRU cache of open Table readers keyed by file number.
//
// Thread-safe without external locking: every member is either immutable
// after construction or the internally sharded+locked Cache (see
// src/table/cache.cc); callers (reads that dropped DBImpl::mutex_,
// compactions that hold it) may use it concurrently.
#ifndef ACHERON_LSM_TABLE_CACHE_H_
#define ACHERON_LSM_TABLE_CACHE_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "src/lsm/dbformat.h"
#include "src/lsm/options.h"
#include "src/table/cache.h"
#include "src/table/table.h"

namespace acheron {

class Env;

class TableCache {
 public:
  // |user_comparator| orders bare user keys and drives range-tombstone
  // fragmentation on open (the Options comparator is the internal-key
  // comparator, which cannot compare user keys); nullptr selects the
  // bytewise comparator.
  TableCache(const std::string& dbname, const Options& options, int entries,
             const Comparator* user_comparator = nullptr);

  TableCache(const TableCache&) = delete;
  TableCache& operator=(const TableCache&) = delete;

  ~TableCache();

  // Return an iterator for the specified file number (the corresponding
  // file length must be exactly "file_size" bytes). If "tableptr" is
  // non-null, also sets "*tableptr" to point to the Table object underlying
  // the returned iterator, or to nullptr if no Table object underlies the
  // returned iterator. The returned "*tableptr" object is owned by the
  // cache and should not be deleted, and is valid for as long as the
  // returned iterator is live.
  Iterator* NewIterator(const ReadOptions& options, uint64_t file_number,
                        uint64_t file_size, Table** tableptr = nullptr);

  // If a seek to internal key "k" in specified file finds an entry, call
  // (*handle_result)(arg, found_key, found_value). |user_key| feeds the
  // Bloom filter. A non-null |filter_negatives| batches bloom-negative
  // accounting into the caller's local counter (flushed once per op via
  // AddFilterNegatives) instead of one shared atomic RMW per miss.
  Status Get(const ReadOptions& options, uint64_t file_number,
             uint64_t file_size, const Slice& k, const Slice& user_key,
             void* arg,
             void (*handle_result)(void*, const Slice&, const Slice&),
             uint64_t* filter_negatives = nullptr);

  // Largest range-tombstone sequence <= |snapshot| covering |user_key| in
  // the specified file, or 0 when uncovered (also on open errors: the point
  // read against the same file reports them; coverage degrades to "none").
  SequenceNumber MaxRangeCoveringSeq(uint64_t file_number, uint64_t file_size,
                                     const Slice& user_key,
                                     SequenceNumber snapshot);

  // Append the specified file's raw range tombstones to |*out|.
  Status GetRangeTombstones(uint64_t file_number, uint64_t file_size,
                            std::vector<RangeTombstone>* out);

  // Pin the Table for |file_number| with a held cache handle so a caller
  // can run PrepareGet / batched Env::SubmitReads across several tables
  // before completing any lookup (the MultiGet fan-out). Unpin releases
  // the handle; *table is valid until then.
  Status PinTable(uint64_t file_number, uint64_t file_size, Table** table,
                  Cache::Handle** handle);
  void Unpin(Cache::Handle* handle);

  // Flush a batch of locally-counted bloom negatives into the aggregate
  // (the batched counterpart of the per-miss sink bump).
  void AddFilterNegatives(uint64_t n) {
    if (n > 0) filter_negatives_total_.fetch_add(n, std::memory_order_relaxed);
  }

  // Evict any entry for the specified file number.
  void Evict(uint64_t file_number);

  // Point lookups answered negatively by a Bloom filter alone, totalled
  // across every table this cache has opened (including since-evicted
  // ones). Feeds InternalStats::bloom_useful.
  uint64_t filter_negatives_total() const {
    return filter_negatives_total_.load(std::memory_order_relaxed);
  }

 private:
  Status FindTable(uint64_t file_number, uint64_t file_size, Cache::Handle**);

  Env* const env_;
  const std::string dbname_;
  const Options& options_;
  const Comparator* const user_comparator_;
  Cache* cache_;
  // Aggregate sink installed on every table right after Table::Open.
  std::atomic<uint64_t> filter_negatives_total_{0};
};

}  // namespace acheron

#endif  // ACHERON_LSM_TABLE_CACHE_H_
