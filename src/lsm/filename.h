// File naming scheme inside a DB directory:
//   <number>.log       -- write-ahead log
//   <number>.sst       -- sorted table
//   MANIFEST-<number>  -- version-edit log
//   CURRENT            -- names the current MANIFEST
//   LOCK               -- advisory lock marker
//   <number>.tmp       -- temporary (descriptor swap)
//   <number>.vlog      -- value-log segment (key-value separation)
#ifndef ACHERON_LSM_FILENAME_H_
#define ACHERON_LSM_FILENAME_H_

#include <cstdint>
#include <string>

#include "src/util/slice.h"
#include "src/util/status.h"

namespace acheron {

class Env;

enum FileType {
  kLogFile,
  kDBLockFile,
  kTableFile,
  kDescriptorFile,
  kCurrentFile,
  kTempFile,
  kVlogFile,
};

std::string LogFileName(const std::string& dbname, uint64_t number);
std::string TableFileName(const std::string& dbname, uint64_t number);
std::string DescriptorFileName(const std::string& dbname, uint64_t number);
std::string CurrentFileName(const std::string& dbname);
std::string LockFileName(const std::string& dbname);
std::string TempFileName(const std::string& dbname, uint64_t number);
std::string VlogFileName(const std::string& dbname, uint64_t number);

// If filename is an acheron file, store the type of the file in *type.
// The number encoded in the filename is stored in *number. If the filename
// was successfully parsed, returns true. Else return false.
bool ParseFileName(const std::string& filename, uint64_t* number,
                   FileType* type);

// Make the CURRENT file point to the descriptor file with the specified
// number.
Status SetCurrentFile(Env* env, const std::string& dbname,
                      uint64_t descriptor_number);

}  // namespace acheron

#endif  // ACHERON_LSM_FILENAME_H_
