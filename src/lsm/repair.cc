// RepairDB: best-effort recovery of a database whose MANIFEST/CURRENT is
// lost or corrupted. The repairer
//   (1) replays any WAL files into fresh L0 tables,
//   (2) inspects every table file, re-deriving its key range and tombstone
//       metadata from the file itself (the properties block, falling back
//       to a full scan),
//   (3) writes a new MANIFEST placing every surviving table in level 0
//       (conservatively correct: L0 runs may overlap; subsequent
//       compactions restructure the tree), and
//   (4) leaves undecodable files in place but outside the new version.
//
// Sequence numbers embedded in the tables are preserved, so snapshots of
// logical time -- and with them Acheron's delete-persistence clock --
// survive the repair.
#include <string>
#include <vector>

#include "src/env/env.h"
#include "src/lsm/db.h"
#include "src/lsm/dbformat.h"
#include "src/lsm/filename.h"
#include "src/lsm/version_edit.h"
#include "src/lsm/write_batch_internal.h"
#include "src/memtable/memtable.h"
#include "src/table/table.h"
#include "src/table/table_builder.h"
#include "src/wal/log_reader.h"
#include "src/wal/log_writer.h"

namespace acheron {
namespace {

class Repairer {
 public:
  Repairer(const std::string& dbname, const Options& options)
      : dbname_(dbname),
        env_(options.env ? options.env : DefaultEnv()),
        icmp_(options.comparator ? options.comparator
                                 : BytewiseComparator()),
        options_(options),
        next_file_number_(1) {
    options_.comparator = &icmp_;
    options_.env = env_;
    options_.block_cache = nullptr;  // tables opened once, uncached
  }

  Status Run() {
    Status status = FindFiles();
    if (status.ok()) {
      ConvertLogFilesToTables();
      ExtractMetaData();
      status = WriteDescriptor();
    }
    return status;
  }

 private:
  struct TableInfo {
    FileMetaData meta;
    SequenceNumber max_sequence;
  };

  Status FindFiles() {
    std::vector<std::string> filenames;
    Status status = env_->GetChildren(dbname_, &filenames);
    if (!status.ok()) return status;
    if (filenames.empty()) {
      return Status::IOError(dbname_, "repair found no files");
    }

    uint64_t number;
    FileType type;
    for (const std::string& filename : filenames) {
      if (ParseFileName(filename, &number, &type)) {
        if (type == kDescriptorFile) {
          manifests_.push_back(filename);
        } else {
          if (number + 1 > next_file_number_) {
            next_file_number_ = number + 1;
          }
          if (type == kLogFile) {
            logs_.push_back(number);
          } else if (type == kTableFile) {
            table_numbers_.push_back(number);
          } else {
            // Ignore other files
          }
        }
      }
    }
    return status;
  }

  void ConvertLogFilesToTables() {
    for (uint64_t log_number : logs_) {
      (void)ConvertLogToTable(log_number);
      // The log is fully captured in a table now (or it was unreadable);
      // either way it is not consulted again. Leave it on disk -- the next
      // DB::Open garbage-collects files below the recovered log number.
    }
  }

  Status ConvertLogToTable(uint64_t log) {
    struct LogReporter : public wal::Reader::Reporter {
      void Corruption(size_t, const Status&) override {
        // Keep going: salvage as many records as possible.
      }
    };

    std::string logname = LogFileName(dbname_, log);
    std::unique_ptr<SequentialFile> lfile;
    Status status = env_->NewSequentialFile(logname, &lfile);
    if (!status.ok()) return status;

    LogReporter reporter;
    wal::Reader reader(lfile.get(), &reporter, false /*do not checksum*/);

    std::string scratch;
    Slice record;
    WriteBatch batch;
    MemTable* mem = new MemTable(icmp_);
    mem->Ref();
    int counter = 0;
    while (reader.ReadRecord(&record, &scratch)) {
      if (record.size() < 12) continue;
      WriteBatchInternal::SetContents(&batch, record);
      Status s = WriteBatchInternal::InsertInto(&batch, mem);
      if (s.ok()) {
        counter += WriteBatchInternal::Count(&batch);
      }
      // Ignore per-batch errors: salvage what parses.
    }

    if (mem->num_entries() > 0) {
      uint64_t number = next_file_number_++;
      status = BuildTableFromMemTable(mem, number);
      if (status.ok()) {
        table_numbers_.push_back(number);
      }
    }
    mem->Unref();
    (void)counter;
    return status;
  }

  Status BuildTableFromMemTable(MemTable* mem, uint64_t number) {
    std::string fname = TableFileName(dbname_, number);
    std::unique_ptr<WritableFile> file;
    Status s = env_->NewWritableFile(fname, &file);
    if (!s.ok()) return s;
    TableBuilder builder(options_, file.get());
    std::unique_ptr<Iterator> iter(mem->NewIterator());
    for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
      builder.Add(iter->key(), iter->value(), ExtractUserKey(iter->key()));
    }
    TableProperties* props = builder.mutable_properties();
    props->num_tombstones = mem->num_tombstones();
    props->earliest_tombstone_time = mem->earliest_tombstone_seq();
    s = builder.Finish();
    if (s.ok()) s = file->Sync();
    if (s.ok()) s = file->Close();
    if (!s.ok()) (void)env_->RemoveFile(fname);  // best-effort cleanup
    return s;
  }

  void ExtractMetaData() {
    for (uint64_t number : table_numbers_) {
      TableInfo t;
      t.meta.number = number;
      Status status = ScanTable(&t);
      if (!status.ok()) {
        // Unreadable table: exclude from the repaired version. The file is
        // left on disk for forensics; DB::Open's garbage collection will
        // not see it as live and removes it.
        continue;
      }
      tables_.push_back(t);
    }
  }

  Status ScanTable(TableInfo* t) {
    std::string fname = TableFileName(dbname_, t->meta.number);
    Status status = env_->GetFileSize(fname, &t->meta.file_size);
    if (!status.ok()) return status;

    std::unique_ptr<RandomAccessFile> file;
    status = env_->NewRandomAccessFile(fname, &file);
    if (!status.ok()) return status;
    Table* table = nullptr;
    status = Table::Open(options_, file.get(), t->meta.file_size, &table);
    if (!status.ok()) return status;

    // Re-derive the key range, counts, and tombstone metadata by scanning;
    // per-entry data beats a possibly stale properties block and validates
    // every block checksum along the way.
    std::unique_ptr<Iterator> iter(table->NewIterator(ReadOptions()));
    bool empty = true;
    bool bad_key = false;
    t->max_sequence = 0;
    ParsedInternalKey parsed;
    for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
      Slice key = iter->key();
      if (!ParseInternalKey(key, &parsed)) {
        bad_key = true;
        continue;
      }
      if (empty) {
        empty = false;
        t->meta.smallest.DecodeFrom(key);
      }
      t->meta.largest.DecodeFrom(key);
      t->meta.num_entries++;
      if (parsed.sequence > t->max_sequence) {
        t->max_sequence = parsed.sequence;
      }
      if (parsed.type == kTypeDeletion) {
        t->meta.num_tombstones++;
        if (parsed.sequence < t->meta.earliest_tombstone_seq) {
          t->meta.earliest_tombstone_seq = parsed.sequence;
        }
      }
    }
    Status iter_status = iter->status();
    iter.reset();
    delete table;

    if (!iter_status.ok()) return iter_status;
    if (empty) return Status::Corruption("table holds no decodable entries");
    if (bad_key && options_.paranoid_checks) {
      return Status::Corruption("table holds undecodable keys");
    }
    t->meta.run_id = t->meta.number;
    return Status::OK();
  }

  Status WriteDescriptor() {
    // Highest sequence across all salvaged tables.
    SequenceNumber max_sequence = 0;
    for (const TableInfo& t : tables_) {
      if (t.max_sequence > max_sequence) max_sequence = t.max_sequence;
    }

    VersionEdit edit;
    edit.SetComparatorName(icmp_.user_comparator()->Name());
    edit.SetLogNumber(next_file_number_);  // beyond every salvaged log
    edit.SetNextFile(next_file_number_ + 1);
    edit.SetLastSequence(max_sequence);
    for (const TableInfo& t : tables_) {
      edit.AddFile(0, t.meta);
    }

    const uint64_t manifest_number = next_file_number_ + 2;
    std::string manifest_name = DescriptorFileName(dbname_, manifest_number);
    std::unique_ptr<WritableFile> manifest_file;
    Status status = env_->NewWritableFile(manifest_name, &manifest_file);
    if (!status.ok()) return status;
    {
      wal::Writer manifest_log(manifest_file.get());
      std::string record;
      edit.EncodeTo(&record);
      status = manifest_log.AddRecord(record);
    }
    if (status.ok()) status = manifest_file->Sync();
    if (status.ok()) status = manifest_file->Close();
    if (!status.ok()) {
      (void)env_->RemoveFile(manifest_name);  // best-effort cleanup
      return status;
    }
    // Point CURRENT at the repaired manifest *before* discarding the old
    // ones: if we crash between the two steps the DB still opens from a
    // manifest CURRENT actually names. (The reverse order left a window
    // where CURRENT referenced an already-unlinked file.)
    status = SetCurrentFile(env_, dbname_, manifest_number);
    if (status.ok()) {
      // Discard older manifests: the repaired one supersedes them.
      for (const std::string& old_manifest : manifests_) {
        (void)env_->RemoveFile(dbname_ + "/" + old_manifest);
      }
    }
    return status;
  }

  const std::string dbname_;
  Env* const env_;
  InternalKeyComparator const icmp_;
  Options options_;

  std::vector<std::string> manifests_;
  std::vector<uint64_t> table_numbers_;
  std::vector<uint64_t> logs_;
  std::vector<TableInfo> tables_;
  uint64_t next_file_number_;
};

}  // namespace

Status RepairDB(const std::string& dbname, const Options& options) {
  Repairer repairer(dbname, options);
  return repairer.Run();
}

}  // namespace acheron
