// RepairDB: best-effort recovery of a database whose MANIFEST/CURRENT is
// lost or corrupted. Repair runs in two tiers:
//
// Bounded repair (tried first): replay the newest MANIFEST whose record
// stream yields a consistent picture -- seek to the last valid snapshot
// record (each carries an inner CRC32C over its body, so validity is
// independent of WAL framing and survives the tolerant checksum-off read),
// apply the edit suffix, stop at the first torn record, and verify every
// referenced table actually exists at (at least) its recorded size. On
// success a fresh descriptor is written that preserves the level structure
// and the persistence-monitor journal, and the original log number, so the
// subsequent DB::Open replays the surviving WALs itself.
//
// Full salvage (fallback): the classic leveldb-style repair. The repairer
//   (1) replays any WAL files into fresh L0 tables,
//   (2) inspects every table file, re-deriving its key range and tombstone
//       metadata from the file itself (the properties block, falling back
//       to a full scan),
//   (3) salvages orphaned vLog segments: every .vlog file is CRC-scanned
//       and re-registered, sealed at its valid prefix, so surviving value
//       pointers dereference again (pointers into lost bytes fail cleanly
//       at read time -- the record CRC and keyed back-check reject them),
//   (4) writes a new MANIFEST placing every surviving table in level 0
//       (conservatively correct: L0 runs may overlap; subsequent
//       compactions restructure the tree), and
//   (5) leaves undecodable files in place but outside the new version.
//
// Sequence numbers embedded in the tables are preserved, so snapshots of
// logical time -- and with them Acheron's delete-persistence clock --
// survive the repair.
#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "src/env/env.h"
#include "src/lsm/db.h"
#include "src/lsm/dbformat.h"
#include "src/lsm/filename.h"
#include "src/lsm/version_edit.h"
#include "src/lsm/write_batch_internal.h"
#include "src/memtable/memtable.h"
#include "src/table/table.h"
#include "src/table/table_builder.h"
#include "src/vlog/vlog_format.h"
#include "src/vlog/vlog_reader.h"
#include "src/wal/log_reader.h"
#include "src/wal/log_writer.h"

namespace acheron {
namespace {

class Repairer {
 public:
  Repairer(const std::string& dbname, const Options& options)
      : dbname_(dbname),
        env_(options.env ? options.env : DefaultEnv()),
        icmp_(options.comparator ? options.comparator
                                 : BytewiseComparator()),
        options_(options),
        next_file_number_(1) {
    options_.comparator = &icmp_;
    options_.env = env_;
    options_.block_cache = nullptr;  // tables opened once, uncached
  }

  Status Run() {
    Status status = FindFiles();
    if (status.ok()) {
      // Tier 1: bounded repair from the newest consistent MANIFEST. Falls
      // through to the full salvage on any inconsistency -- a missing or
      // undersized table, a corrupt head record, no manifest at all.
      if (BoundedRepair().ok()) {
        return Status::OK();
      }
      ConvertLogFilesToTables();
      ExtractMetaData();
      SalvageVlogSegments();
      status = WriteDescriptor();
    }
    return status;
  }

 private:
  struct TableInfo {
    FileMetaData meta;
    SequenceNumber max_sequence;
  };

  // Accumulated state of one MANIFEST's tolerant replay: the file set per
  // level plus the persistence-monitor journal, exactly as
  // VersionSet::Recover would have built them.
  struct ReplayedVersion {
    std::map<int, std::map<uint64_t, FileMetaData>> levels;
    uint64_t log_number = 0;
    uint64_t next_file = 0;
    SequenceNumber last_sequence = 0;
    bool have_log = false;
    bool have_next = false;
    bool have_last = false;
    uint64_t journal_written = 0;
    uint64_t journal_persisted = 0;
    uint64_t journal_superseded = 0;
    Histogram journal_latency;
    uint64_t journal_range_written = 0;
    uint64_t journal_range_persisted = 0;
    uint64_t journal_range_superseded = 0;
    Histogram journal_range_latency;
    vlog::Registry vlog_registry;
    uint64_t journal_vlog_purged = 0;
    Histogram journal_vlog_latency;
  };

  Status BoundedRepair() {
    if (manifests_.empty()) {
      return Status::NotFound(dbname_, "no MANIFEST to replay");
    }
    // Newest incarnation first: a higher-numbered manifest supersedes the
    // ones before it, so fall back down the list only when replay or table
    // verification fails.
    std::vector<std::pair<uint64_t, std::string>> ordered;
    uint64_t number;
    FileType type;
    for (const std::string& m : manifests_) {
      if (ParseFileName(m, &number, &type)) {
        ordered.emplace_back(number, m);
      }
    }
    if (ordered.empty()) {
      return Status::NotFound(dbname_, "no parsable MANIFEST name");
    }
    std::sort(ordered.begin(), ordered.end(),
              [](const std::pair<uint64_t, std::string>& a,
                 const std::pair<uint64_t, std::string>& b) {
                return a.first > b.first;
              });
    // Floor for the repaired manifest's own number: above every existing
    // manifest (never truncate one we might still fall back to) and above
    // every salvageable log/table number.
    const uint64_t min_new_number =
        std::max(ordered.front().first + 1, next_file_number_);

    Status status = Status::Corruption(dbname_, "no consistent MANIFEST");
    for (const auto& entry : ordered) {
      ReplayedVersion v;
      status = ReplayManifest(entry.second, &v);
      if (status.ok()) status = VerifyTables(v);
      if (status.ok()) status = VerifyVlogSegments(&v);
      if (status.ok()) return WriteBoundedDescriptor(min_new_number, v);
    }
    return status;
  }

  Status ReplayManifest(const std::string& fname, ReplayedVersion* v) {
    struct SilentReporter : public wal::Reader::Reporter {
      void Corruption(size_t, const Status&) override {}
    };
    std::unique_ptr<SequentialFile> file;
    Status status =
        env_->NewSequentialFile(dbname_ + "/" + fname, &file);  // io: repair
    if (!status.ok()) return status;
    SilentReporter reporter;
    // Framing checksums off: after a torn append the tail record's WAL CRC
    // is garbage but the prefix still parses. Restart points are still
    // never trusted blindly -- snapshot records carry their own inner
    // CRC32C, which DecodeFrom verifies.
    wal::Reader reader(file.get(), &reporter, false /*checksum*/);

    std::string scratch;
    Slice record;
    int records = 0;
    while (reader.ReadRecord(&record, &scratch)) {
      VersionEdit edit;
      Status s = edit.DecodeFrom(record);
      if (!s.ok()) {
        // An undecodable head record leaves nothing to build on. A torn
        // record later on (snapshot or ordinary edit) just ends the useful
        // prefix: everything before it is a consistent version.
        if (records == 0) return s;
        break;
      }
      records++;
      if (edit.IsSnapshot()) {
        // Self-describing restart point: discard the replay so far. The
        // snapshot's own content re-populates it below (its monitor fields
        // carry cumulative state, i.e. deltas from zero).
        v->levels.clear();
        v->journal_written = 0;
        v->journal_persisted = 0;
        v->journal_superseded = 0;
        v->journal_latency.Clear();
        v->journal_range_written = 0;
        v->journal_range_persisted = 0;
        v->journal_range_superseded = 0;
        v->journal_range_latency.Clear();
        v->vlog_registry.clear();
        v->journal_vlog_purged = 0;
        v->journal_vlog_latency.Clear();
      }
      for (const auto& dead : edit.deleted_files()) {
        v->levels[dead.first].erase(dead.second);
      }
      for (const auto& added : edit.new_files()) {
        v->levels[added.first][added.second.number] = added.second;
      }
      if (edit.has_log_number()) {
        v->log_number = edit.log_number();
        v->have_log = true;
      }
      if (edit.has_next_file_number()) {
        v->next_file = edit.next_file_number();
        v->have_next = true;
      }
      if (edit.has_last_sequence()) {
        v->last_sequence = edit.last_sequence();
        v->have_last = true;
      }
      if (edit.has_monitor_written()) {
        v->journal_written = edit.monitor_written();
      }
      if (edit.has_monitor_delta()) {
        v->journal_persisted += edit.monitor_persisted();
        v->journal_superseded += edit.monitor_superseded();
        v->journal_latency.Merge(edit.monitor_latency());
      }
      if (edit.has_monitor_range_written()) {
        v->journal_range_written = edit.monitor_range_written();
      }
      if (edit.has_monitor_range_delta()) {
        v->journal_range_persisted += edit.monitor_range_persisted();
        v->journal_range_superseded += edit.monitor_range_superseded();
        v->journal_range_latency.Merge(edit.monitor_range_latency());
      }
      if (edit.has_vlog_monitor_delta()) {
        v->journal_vlog_purged += edit.vlog_monitor_purged();
        v->journal_vlog_latency.Merge(edit.vlog_monitor_latency());
      }
      // vLog registry replay, same fold-in as VersionSet::Recover.
      for (const vlog::SegmentInfo& info : edit.vlog_segments()) {
        v->vlog_registry[info.number] = info;
      }
      for (uint64_t seg : edit.vlog_removed_segments()) {
        v->vlog_registry.erase(seg);
      }
      for (const vlog::SegmentDelta& delta : edit.vlog_deltas()) {
        vlog::ApplyDelta(&v->vlog_registry, delta);
      }
    }
    if (records == 0) {
      return Status::Corruption(fname, "empty MANIFEST");
    }
    if (!v->have_log || !v->have_next || !v->have_last) {
      return Status::Corruption(fname, "MANIFEST missing meta fields");
    }
    return Status::OK();
  }

  Status VerifyTables(const ReplayedVersion& v) {
    // Every table the replayed version references must exist at no less
    // than its recorded size; a shorter file would fail at read time (the
    // footer offset comes from file_size), so reject it here and let the
    // salvage tier rebuild from what is actually on disk.
    for (const auto& level : v.levels) {
      for (const auto& f : level.second) {
        const std::string fname = TableFileName(dbname_, f.first);
        uint64_t size = 0;
        Status s = env_->GetFileSize(fname, &size);  // io: repair
        if (!s.ok()) return s;
        if (size < f.second.file_size) {
          return Status::Corruption(fname, "table shorter than recorded");
        }
      }
    }
    return Status::OK();
  }

  // Mirror of DBImpl::RecoverVlog for the bounded tier. A sealed segment
  // with values must exist at no less than its recorded extent (pointers
  // into it would dangle otherwise -- fall back to salvage). The unsealed
  // head (or an empty sealed segment) that never made it to disk is simply
  // dropped; a present unsealed head is CRC-scanned and sealed at its valid
  // prefix, exactly like a torn WAL tail.
  Status VerifyVlogSegments(ReplayedVersion* v) {
    for (auto it = v->vlog_registry.begin(); it != v->vlog_registry.end();) {
      vlog::SegmentInfo& info = it->second;
      const std::string fname = VlogFileName(dbname_, info.number);
      uint64_t size = 0;
      Status s = env_->GetFileSize(fname, &size);  // io: repair
      if (!s.ok()) {
        if (info.sealed && info.value_count > 0) {
          return Status::Corruption(fname, "missing value log segment");
        }
        it = v->vlog_registry.erase(it);
        continue;
      }
      if (info.sealed) {
        if (size < info.total_bytes) {
          return Status::Corruption(fname, "value log shorter than recorded");
        }
      } else {
        uint64_t valid_bytes = 0;
        uint64_t value_count = 0;
        // io: repair -- torn-tail scan of the crash-time head
        s = vlog::ScanSegment(env_, fname, &valid_bytes, &value_count);
        if (!s.ok()) return s;
        info.sealed = true;
        info.total_bytes = valid_bytes;
        info.value_count = value_count;
      }
      ++it;
    }
    return Status::OK();
  }

  Status WriteBoundedDescriptor(uint64_t min_new_number,
                                const ReplayedVersion& v) {
    // The descriptor's recorded next_file must exceed its own number, or
    // the next Open would allocate the same number for its manifest and
    // truncate this one (same ordering constraint as rotation in
    // VersionSet::LogAndApply).
    const uint64_t manifest_number = std::max(v.next_file, min_new_number);

    VersionEdit edit;
    edit.SetSnapshot();
    edit.SetComparatorName(icmp_.user_comparator()->Name());
    // Preserve the log number: DB::Open replays the surviving WALs itself,
    // so unflushed writes are not lost by the repair.
    edit.SetLogNumber(v.log_number);
    edit.SetNextFile(manifest_number + 1);
    edit.SetLastSequence(v.last_sequence);
    edit.SetMonitorWritten(v.journal_written);
    edit.SetMonitorDelta(v.journal_persisted, v.journal_superseded,
                         v.journal_latency);
    edit.SetMonitorRangeWritten(v.journal_range_written);
    edit.SetMonitorRangeDelta(v.journal_range_persisted,
                              v.journal_range_superseded,
                              v.journal_range_latency);
    if (v.journal_vlog_purged > 0) {
      edit.SetVlogMonitorDelta(v.journal_vlog_purged, v.journal_vlog_latency);
    }
    for (const auto& seg : v.vlog_registry) {
      edit.AddVlogSegment(seg.second);
    }
    for (const auto& level : v.levels) {
      for (const auto& f : level.second) {
        edit.AddFile(level.first, f.second);
      }
    }

    std::string manifest_name = DescriptorFileName(dbname_, manifest_number);
    std::unique_ptr<WritableFile> manifest_file;
    Status status =
        env_->NewWritableFile(manifest_name, &manifest_file);  // io: repair
    if (!status.ok()) return status;
    {
      wal::Writer manifest_log(manifest_file.get());
      std::string record;
      edit.EncodeTo(&record);
      status = manifest_log.AddRecord(record);
    }
    if (status.ok()) status = manifest_file->Sync();
    if (status.ok()) status = manifest_file->Close();
    if (!status.ok()) {
      (void)env_->RemoveFile(manifest_name);  // io: repair cleanup
      return status;
    }
    // Point CURRENT at the repaired manifest *before* discarding the old
    // ones (same crash-ordering argument as the salvage tier).
    status = SetCurrentFile(env_, dbname_, manifest_number);
    if (status.ok()) {
      RemoveSupersededManifests(manifest_number);
    }
    return status;
  }

  // Discard the manifests found at startup; the repaired descriptor
  // supersedes them. Never touches the descriptor just written, even if a
  // stale file of the same name was in the startup listing.
  void RemoveSupersededManifests(uint64_t new_manifest_number) {
    uint64_t number;
    FileType type;
    for (const std::string& old_manifest : manifests_) {
      if (ParseFileName(old_manifest, &number, &type) &&
          number == new_manifest_number) {
        continue;
      }
      (void)env_->RemoveFile(dbname_ + "/" + old_manifest);  // io: repair
    }
  }

  Status FindFiles() {
    std::vector<std::string> filenames;
    Status status = env_->GetChildren(dbname_, &filenames);  // io: repair
    if (!status.ok()) return status;
    if (filenames.empty()) {
      return Status::IOError(dbname_, "repair found no files");
    }

    uint64_t number;
    FileType type;
    for (const std::string& filename : filenames) {
      if (ParseFileName(filename, &number, &type)) {
        // Descriptors count toward next_file_number_ too: a crashed earlier
        // repair can leave a (possibly empty) MANIFEST behind, and reusing
        // its number would truncate it -- and then the old-manifest cleanup
        // below would unlink the descriptor we just wrote under that name.
        if (number + 1 > next_file_number_) {
          next_file_number_ = number + 1;
        }
        if (type == kDescriptorFile) {
          manifests_.push_back(filename);
        } else {
          if (type == kLogFile) {
            logs_.push_back(number);
          } else if (type == kTableFile) {
            table_numbers_.push_back(number);
          } else if (type == kVlogFile) {
            vlog_numbers_.push_back(number);
          } else {
            // Ignore other files
          }
        }
      }
    }
    return status;
  }

  void ConvertLogFilesToTables() {
    for (uint64_t log_number : logs_) {
      (void)ConvertLogToTable(log_number);
      // The log is fully captured in a table now (or it was unreadable);
      // either way it is not consulted again. Leave it on disk -- the next
      // DB::Open garbage-collects files below the recovered log number.
    }
  }

  Status ConvertLogToTable(uint64_t log) {
    struct LogReporter : public wal::Reader::Reporter {
      void Corruption(size_t, const Status&) override {
        // Keep going: salvage as many records as possible.
      }
    };

    std::string logname = LogFileName(dbname_, log);
    std::unique_ptr<SequentialFile> lfile;
    Status status = env_->NewSequentialFile(logname, &lfile);  // io: repair
    if (!status.ok()) return status;

    LogReporter reporter;
    wal::Reader reader(lfile.get(), &reporter, false /*do not checksum*/);

    std::string scratch;
    Slice record;
    WriteBatch batch;
    MemTable* mem = new MemTable(icmp_);
    mem->Ref();
    int counter = 0;
    while (reader.ReadRecord(&record, &scratch)) {
      if (record.size() < 12) continue;
      WriteBatchInternal::SetContents(&batch, record);
      Status s = WriteBatchInternal::InsertInto(&batch, mem);
      if (s.ok()) {
        counter += WriteBatchInternal::Count(&batch);
      }
      // Ignore per-batch errors: salvage what parses.
    }

    if (mem->num_entries() > 0 || mem->num_range_tombstones() > 0) {
      uint64_t number = next_file_number_++;
      status = BuildTableFromMemTable(mem, number);
      if (status.ok()) {
        table_numbers_.push_back(number);
      }
    }
    mem->Unref();
    (void)counter;
    return status;
  }

  Status BuildTableFromMemTable(MemTable* mem, uint64_t number) {
    std::string fname = TableFileName(dbname_, number);
    std::unique_ptr<WritableFile> file;
    Status s = env_->NewWritableFile(fname, &file);  // io: repair
    if (!s.ok()) return s;
    TableBuilder builder(options_, file.get());
    std::unique_ptr<Iterator> iter(mem->NewIterator());
    for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
      builder.Add(iter->key(), iter->value(), ExtractUserKey(iter->key()));
    }
    std::vector<RangeTombstone> range_dels;
    mem->CollectRangeTombstones(&range_dels);
    for (const RangeTombstone& t : range_dels) {
      builder.AddRangeTombstone(t.begin, t.end, t.seq,
                                icmp_.user_comparator());
    }
    TableProperties* props = builder.mutable_properties();
    props->num_tombstones = mem->num_tombstones();
    props->earliest_tombstone_time = mem->earliest_tombstone_seq();
    s = builder.Finish();
    if (s.ok()) s = file->Sync();
    if (s.ok()) s = file->Close();
    if (!s.ok()) (void)env_->RemoveFile(fname);  // io: repair cleanup
    return s;
  }

  void ExtractMetaData() {
    for (uint64_t number : table_numbers_) {
      TableInfo t;
      t.meta.number = number;
      Status status = ScanTable(&t);
      if (!status.ok()) {
        // Unreadable table: exclude from the repaired version. The file is
        // left on disk for forensics; DB::Open's garbage collection will
        // not see it as live and removes it.
        continue;
      }
      tables_.push_back(t);
    }
  }

  Status ScanTable(TableInfo* t) {
    std::string fname = TableFileName(dbname_, t->meta.number);
    Status status = env_->GetFileSize(fname, &t->meta.file_size);  // io: repair
    if (!status.ok()) return status;

    std::unique_ptr<RandomAccessFile> file;
    status = env_->NewRandomAccessFile(fname, &file);  // io: repair
    if (!status.ok()) return status;
    Table* table = nullptr;
    status = Table::Open(options_, file.get(), t->meta.file_size, &table);
    if (!status.ok()) return status;

    // Re-derive the key range, counts, and tombstone metadata by scanning;
    // per-entry data beats a possibly stale properties block and validates
    // every block checksum along the way.
    std::unique_ptr<Iterator> iter(table->NewIterator(ReadOptions()));
    bool empty = true;
    bool bad_key = false;
    t->max_sequence = 0;
    ParsedInternalKey parsed;
    for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
      Slice key = iter->key();
      if (!ParseInternalKey(key, &parsed)) {
        bad_key = true;
        continue;
      }
      if (empty) {
        empty = false;
        t->meta.smallest.DecodeFrom(key);
      }
      t->meta.largest.DecodeFrom(key);
      t->meta.num_entries++;
      if (parsed.sequence > t->max_sequence) {
        t->max_sequence = parsed.sequence;
      }
      if (parsed.type == kTypeDeletion) {
        t->meta.num_tombstones++;
        if (parsed.sequence < t->meta.earliest_tombstone_seq) {
          t->meta.earliest_tombstone_seq = parsed.sequence;
        }
      } else if (parsed.type == kTypeValuePointer) {
        // Re-derive the table's vLog span so obsolete-file collection keeps
        // the referenced segments alive after the repair.
        vlog::FoldVlogSpan(iter->value(), &t->meta.min_vlog_segment,
                           &t->meta.max_vlog_segment);
      }
    }
    Status iter_status = iter->status();
    iter.reset();

    // Range tombstones live in their own block; re-derive their metadata
    // too. (A table whose range-del block failed to decode never passed
    // Table::Open, so raw_range_tombstones() here is trustworthy.)
    const std::vector<RangeTombstone>& range_dels =
        table->raw_range_tombstones();
    const Comparator* ucmp = icmp_.user_comparator();
    SequenceNumber max_range_seq = 0;
    for (const RangeTombstone& rt : range_dels) {
      t->meta.num_range_tombstones++;
      t->meta.earliest_range_tombstone_seq =
          std::min(t->meta.earliest_range_tombstone_seq, rt.seq);
      max_range_seq = std::max(max_range_seq, rt.seq);
      if (rt.seq > t->max_sequence) t->max_sequence = rt.seq;
      if (t->meta.range_del_begin.empty() ||
          ucmp->Compare(Slice(rt.begin), Slice(t->meta.range_del_begin)) < 0) {
        t->meta.range_del_begin = rt.begin;
      }
      if (t->meta.range_del_end.empty() ||
          ucmp->Compare(Slice(rt.end), Slice(t->meta.range_del_end)) > 0) {
        t->meta.range_del_end = rt.end;
      }
    }
    if (t->meta.num_range_tombstones > 0) {
      t->meta.earliest_range_tombstone_wall_micros =
          table->properties().earliest_range_tombstone_wall_micros;
    }
    delete table;

    if (!iter_status.ok()) return iter_status;
    if (empty && range_dels.empty()) {
      return Status::Corruption("table holds no decodable entries");
    }
    if (empty) {
      // A range-tombstone-only table: derive bounds from the tombstone
      // span. Salvaged tables all land in level 0, where overlap is legal.
      t->meta.smallest = InternalKey(Slice(t->meta.range_del_begin),
                                     max_range_seq, kValueTypeForSeek);
      t->meta.largest =
          InternalKey(Slice(t->meta.range_del_end), 0, kTypeDeletion);
    }
    if (bad_key && options_.paranoid_checks) {
      return Status::Corruption("table holds undecodable keys");
    }
    t->meta.run_id = t->meta.number;
    return Status::OK();
  }

  // Full-salvage counterpart of VerifyVlogSegments: with the MANIFEST gone,
  // the registry is rebuilt from the .vlog files themselves. Each segment is
  // CRC-scanned and re-registered sealed at its valid prefix; garbage/
  // pending-purge accounting is lost (conservatively zero -- GC re-learns
  // garbage as compactions drop pointers). Unreadable or empty segments are
  // left on disk but outside the new version; the next Open's obsolete-file
  // pass removes them if no surviving table references their span.
  void SalvageVlogSegments() {
    for (uint64_t number : vlog_numbers_) {
      uint64_t valid_bytes = 0;
      uint64_t value_count = 0;
      // io: repair -- CRC scan of one orphaned segment
      Status s = vlog::ScanSegment(env_, VlogFileName(dbname_, number),
                                   &valid_bytes, &value_count);
      if (!s.ok() || value_count == 0) continue;
      vlog::SegmentInfo info;
      info.number = number;
      info.sealed = true;
      info.total_bytes = valid_bytes;
      info.value_count = value_count;
      salvaged_vlog_.push_back(info);
    }
  }

  Status WriteDescriptor() {
    // Highest sequence across all salvaged tables.
    SequenceNumber max_sequence = 0;
    for (const TableInfo& t : tables_) {
      if (t.max_sequence > max_sequence) max_sequence = t.max_sequence;
    }

    VersionEdit edit;
    edit.SetComparatorName(icmp_.user_comparator()->Name());
    edit.SetLogNumber(next_file_number_);  // beyond every salvaged log
    edit.SetNextFile(next_file_number_ + 1);
    edit.SetLastSequence(max_sequence);
    for (const TableInfo& t : tables_) {
      edit.AddFile(0, t.meta);
    }
    for (const vlog::SegmentInfo& info : salvaged_vlog_) {
      edit.AddVlogSegment(info);
    }

    const uint64_t manifest_number = next_file_number_ + 2;
    std::string manifest_name = DescriptorFileName(dbname_, manifest_number);
    std::unique_ptr<WritableFile> manifest_file;
    Status status =
        env_->NewWritableFile(manifest_name, &manifest_file);  // io: repair
    if (!status.ok()) return status;
    {
      wal::Writer manifest_log(manifest_file.get());
      std::string record;
      edit.EncodeTo(&record);
      status = manifest_log.AddRecord(record);
    }
    if (status.ok()) status = manifest_file->Sync();
    if (status.ok()) status = manifest_file->Close();
    if (!status.ok()) {
      (void)env_->RemoveFile(manifest_name);  // io: repair cleanup
      return status;
    }
    // Point CURRENT at the repaired manifest *before* discarding the old
    // ones: if we crash between the two steps the DB still opens from a
    // manifest CURRENT actually names. (The reverse order left a window
    // where CURRENT referenced an already-unlinked file.)
    status = SetCurrentFile(env_, dbname_, manifest_number);
    if (status.ok()) {
      RemoveSupersededManifests(manifest_number);
    }
    return status;
  }

  const std::string dbname_;
  Env* const env_;
  InternalKeyComparator const icmp_;
  Options options_;

  std::vector<std::string> manifests_;
  std::vector<uint64_t> table_numbers_;
  std::vector<uint64_t> logs_;
  std::vector<uint64_t> vlog_numbers_;
  std::vector<TableInfo> tables_;
  std::vector<vlog::SegmentInfo> salvaged_vlog_;
  uint64_t next_file_number_;
};

}  // namespace

Status RepairDB(const std::string& dbname, const Options& options) {
  Repairer repairer(dbname, options);
  return repairer.Run();
}

}  // namespace acheron
