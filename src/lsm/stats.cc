#include "src/lsm/stats.h"

#include <cstdio>

namespace acheron {

std::string InternalStats::ToString() const {
  char buf[768];
  std::snprintf(
      buf, sizeof(buf),
      "writes: user=%llu wal=%llu | flush: n=%llu bytes=%llu | "
      "compaction: n=%llu read=%llu written=%llu trivial=%llu | "
      "dropped: shadowed=%llu tombstones_bottom=%llu | "
      "reads: gets=%llu found=%llu bloom_useful=%llu iter_ts_skip=%llu | "
      "WA=%.2f",
      static_cast<unsigned long long>(user_bytes_written),
      static_cast<unsigned long long>(wal_bytes_written),
      static_cast<unsigned long long>(flush_count),
      static_cast<unsigned long long>(flush_bytes_written),
      static_cast<unsigned long long>(compaction_count),
      static_cast<unsigned long long>(compaction_bytes_read),
      static_cast<unsigned long long>(compaction_bytes_written),
      static_cast<unsigned long long>(trivial_move_count),
      static_cast<unsigned long long>(entries_shadowed_dropped),
      static_cast<unsigned long long>(tombstones_dropped_bottom),
      static_cast<unsigned long long>(gets),
      static_cast<unsigned long long>(gets_found),
      static_cast<unsigned long long>(bloom_useful),
      static_cast<unsigned long long>(iter_tombstones_skipped),
      WriteAmplification());
  return buf;
}

}  // namespace acheron
