#include "src/lsm/stats.h"

#include <cstdio>

namespace acheron {

std::string InternalStats::ToString() const {
  char buf[2048];
  std::snprintf(
      buf, sizeof(buf),
      "writes: user=%llu wal=%llu | flush: n=%llu bytes=%llu | "
      "compaction: n=%llu read=%llu written=%llu trivial=%llu | "
      "dropped: shadowed=%llu tombstones_bottom=%llu | "
      "reads: gets=%llu found=%llu bloom_useful=%llu iter_ts_skip=%llu | "
      "stalls: slowdown=%llu stop=%llu imm_wait=%llu ttl_wait=%llu "
      "micros=%llu | bg: jobs=%llu swaps=%llu | "
      "commit: wal_syncs=%llu groups=%llu grouped_writes=%llu | "
      "recovery: edits_replayed=%llu snapshots=%llu rotations=%llu "
      "torn_skipped=%llu | "
      "errors: transient=%llu retried=%llu fatal=%llu resumes=%llu | "
      "vlog: bytes=%llu values=%llu segments=%llu gc_runs=%llu "
      "relocated=%llu relocated_bytes=%llu reads=%llu | "
      "WA=%.2f",
      static_cast<unsigned long long>(user_bytes_written),
      static_cast<unsigned long long>(wal_bytes_written),
      static_cast<unsigned long long>(flush_count),
      static_cast<unsigned long long>(flush_bytes_written),
      static_cast<unsigned long long>(compaction_count),
      static_cast<unsigned long long>(compaction_bytes_read),
      static_cast<unsigned long long>(compaction_bytes_written),
      static_cast<unsigned long long>(trivial_move_count),
      static_cast<unsigned long long>(entries_shadowed_dropped),
      static_cast<unsigned long long>(tombstones_dropped_bottom),
      static_cast<unsigned long long>(gets),
      static_cast<unsigned long long>(gets_found),
      static_cast<unsigned long long>(bloom_useful),
      static_cast<unsigned long long>(iter_tombstones_skipped),
      static_cast<unsigned long long>(stall_slowdown_writes),
      static_cast<unsigned long long>(stall_stop_writes),
      static_cast<unsigned long long>(stall_memtable_waits),
      static_cast<unsigned long long>(stall_ttl_waits),
      static_cast<unsigned long long>(stall_micros),
      static_cast<unsigned long long>(background_jobs_scheduled),
      static_cast<unsigned long long>(memtable_swaps),
      static_cast<unsigned long long>(wal_syncs),
      static_cast<unsigned long long>(group_commits),
      static_cast<unsigned long long>(writes_grouped),
      static_cast<unsigned long long>(manifest_edits_replayed),
      static_cast<unsigned long long>(manifest_snapshots_written),
      static_cast<unsigned long long>(manifest_rotations),
      static_cast<unsigned long long>(torn_snapshots_skipped),
      static_cast<unsigned long long>(errors_transient),
      static_cast<unsigned long long>(errors_retried),
      static_cast<unsigned long long>(errors_fatal),
      static_cast<unsigned long long>(resume_count),
      static_cast<unsigned long long>(vlog_bytes_written),
      static_cast<unsigned long long>(vlog_values_written),
      static_cast<unsigned long long>(vlog_segments_created),
      static_cast<unsigned long long>(vlog_gc_runs),
      static_cast<unsigned long long>(vlog_gc_values_relocated),
      static_cast<unsigned long long>(vlog_gc_bytes_relocated),
      static_cast<unsigned long long>(vlog_reads),
      WriteAmplification());
  return buf;
}

}  // namespace acheron
