#include "src/lsm/db_impl.h"

#include <algorithm>
#include <cstdlib>
#include <set>
#include <vector>

#include "src/env/env.h"
#include "src/lsm/db_iter.h"
#include "src/lsm/filename.h"
#include "src/lsm/merger.h"
#include "src/lsm/table_cache.h"
#include "src/lsm/write_batch_internal.h"
#include "src/memtable/memtable.h"
#include "src/table/table_builder.h"
#include "src/util/bloom.h"
#include "src/util/clock.h"
#include "src/wal/log_reader.h"

namespace acheron {

// Per-compaction working state.
struct DBImpl::CompactionState {
  // Files produced by compaction
  struct Output {
    uint64_t number;
    uint64_t file_size;
    InternalKey smallest, largest;
    uint64_t num_entries = 0;
    uint64_t num_tombstones = 0;
    SequenceNumber earliest_tombstone_seq = kMaxSequenceNumber;
    uint64_t earliest_tombstone_wall_micros = UINT64_MAX;
    uint64_t num_range_tombstones = 0;
    SequenceNumber earliest_range_tombstone_seq = kMaxSequenceNumber;
    uint64_t earliest_range_tombstone_wall_micros = UINT64_MAX;
    std::string range_del_begin;
    std::string range_del_end;
    std::string min_secondary_key;
    std::string max_secondary_key;
    // [min,max] vLog segment span of kTypeValuePointer entries (0 = none);
    // feeds FileMetaData so segment liveness tracking survives compaction.
    uint64_t min_vlog_segment = 0;
    uint64_t max_vlog_segment = 0;
  };

  Output* current_output() { return &outputs[outputs.size() - 1]; }

  explicit CompactionState(Compaction* c)
      : compaction(c), smallest_snapshot(0), total_bytes(0) {}

  Compaction* const compaction;

  // Sequence numbers < smallest_snapshot are not significant since we will
  // never have to service a snapshot below smallest_snapshot. Therefore if
  // we have seen a sequence number S <= smallest_snapshot, we can drop all
  // entries for the same key with sequence numbers < S.
  SequenceNumber smallest_snapshot;

  std::vector<Output> outputs;

  // State kept for output being generated
  std::unique_ptr<WritableFile> outfile;
  std::unique_ptr<TableBuilder> builder;

  uint64_t total_bytes;
};

// One queued write. The owning thread sleeps on |cv| until a group leader
// completes the write on its behalf (or it reaches the queue front itself).
struct DBImpl::Writer {
  explicit Writer(Mutex* mu) : batch(nullptr), sync(false), done(false),
                               cv(mu) {}

  Status status;
  WriteBatch* batch;
  bool sync;
  bool done;
  CondVar cv;
};

Options SanitizeOptions(const std::string&, const Options& src) {
  Options result = src;
  if (result.comparator == nullptr) result.comparator = BytewiseComparator();
  if (result.env == nullptr) result.env = DefaultEnv();
  auto clamp = [](auto v, auto lo, auto hi) {
    return v < lo ? lo : (v > hi ? hi : v);
  };
  result.write_buffer_size =
      clamp(result.write_buffer_size, size_t{4 << 10}, size_t{1} << 30);
  result.max_file_size =
      clamp(result.max_file_size, size_t{16 << 10}, size_t{1} << 30);
  result.block_size = clamp(result.block_size, size_t{512}, size_t{4} << 20);
  result.size_ratio = clamp(result.size_ratio, 2, 64);
  result.num_levels = clamp(result.num_levels, 1, kNumLevels);
  result.level0_compaction_trigger =
      clamp(result.level0_compaction_trigger, 1, 64);
  // The pipeline currently runs a single background worker.
  result.max_background_jobs = clamp(result.max_background_jobs, 1, 1);
  result.level0_slowdown_writes_trigger =
      clamp(result.level0_slowdown_writes_trigger, 1, 1 << 20);
  // A stop trigger below the slowdown trigger would block writers before
  // the soft throttle ever fires; keep them ordered.
  result.level0_stop_writes_trigger =
      clamp(result.level0_stop_writes_trigger,
            result.level0_slowdown_writes_trigger, 1 << 20);
  result.vlog_segment_size =
      clamp(result.vlog_segment_size, uint64_t{64} << 10, uint64_t{1} << 30);
  result.vlog_gc_live_ratio = clamp(result.vlog_gc_live_ratio, 0.0, 1.0);
  // Test hook: ACHERON_BACKGROUND_COMPACTIONS=0|1 forces the scheduling
  // mode, letting unchanged test binaries (delete_persistence_test) run
  // against both pipelines without recompilation.
  if (const char* mode = std::getenv("ACHERON_BACKGROUND_COMPACTIONS")) {
    result.background_compactions = (mode[0] == '1');
  }
  return result;
}

DBImpl::DBImpl(const Options& raw_options, const std::string& dbname)
    : env_(raw_options.env ? raw_options.env : DefaultEnv()),
      internal_comparator_(raw_options.comparator ? raw_options.comparator
                                                  : BytewiseComparator()),
      options_(SanitizeOptions(dbname, raw_options)),
      owns_cache_(options_.block_cache == nullptr),
      owns_filter_policy_(options_.filter_policy == nullptr &&
                          options_.filter_bits_per_key > 0),
      dbname_(dbname),
      mem_(nullptr),
      imm_(nullptr),
      logfile_number_(0),
      wal_sync_done_(&mutex_),
      compaction_active_(false),
      bg_compaction_scheduled_(false),
      background_work_finished_signal_(&mutex_),
      planner_(options_, &internal_comparator_),
      vlog_readers_(env_, dbname) {
  // The Options copy held by the DB (and handed to tables) always carries a
  // usable block cache; build a private one when the caller didn't.
  Options* mutable_options = const_cast<Options*>(&options_);
  mutable_options->comparator = &internal_comparator_;
  if (owns_cache_) {
    mutable_options->block_cache = NewLRUCache(8 << 20);
  }
  // One filter policy shared by every table this DB opens or builds
  // (Table::Open used to allocate one per table).
  if (owns_filter_policy_) {
    mutable_options->filter_policy =
        NewBloomFilterPolicy(options_.filter_bits_per_key);
  }
  table_cache_ = std::make_unique<TableCache>(
      dbname_, options_, options_.max_open_files,
      internal_comparator_.user_comparator());
  versions_ = std::make_unique<VersionSet>(dbname_, &options_,
                                           table_cache_.get(),
                                           &internal_comparator_);
  version_set_lockfree_ = versions_.get();
}

DBImpl::~DBImpl() {
  // Flag shutdown, then wait for any queued/running background round and
  // any slot holder to drain before tearing state down.
  MutexLock l(&mutex_);
  shutting_down_.store(true, std::memory_order_release);
  while (bg_compaction_scheduled_ || compaction_active_ ||
         space_watcher_scheduled_) {
    background_work_finished_signal_.Wait();
  }
  // Unpublish and tear down the ReadState chain. The DB contract requires
  // all reads/iterators to have finished before the destructor runs, so
  // every retired node's refcount is (or is about to be) zero.
  ReadState* last = read_state_.exchange(nullptr, std::memory_order_acq_rel);
  if (last != nullptr) {
    retired_read_states_.push_back(last);
    last->refs.fetch_sub(1, std::memory_order_release);  // publication ref
  }
  DrainRetiredReadStates();
  assert(retired_read_states_.empty());
  for (ReadState* s : free_read_states_) delete s;
  free_read_states_.clear();
  if (mem_ != nullptr) mem_->Unref();
  if (imm_ != nullptr) imm_->Unref();
  // Close the WAL explicitly: sync-acked records are already durable and
  // unsynced ones were never promised, so a failed close here loses
  // nothing -- but dropping the status is a conscious choice, not a silent
  // one in the WritableFile destructor.
  log_.reset();
  if (logfile_ != nullptr) {
    // io: mutex-held -- clean close, no concurrent writers remain
    (void)logfile_->Close();
    logfile_.reset();
  }
  // Same contract for the value-log head: every acked value was already
  // individually synced, so a best-effort flush+close loses nothing. The
  // head stays "unsealed" in the MANIFEST; the next Open CRC-scans it and
  // seals it logically at its valid extent.
  if (vlog_ != nullptr) {
    // io: mutex-held -- clean close, no concurrent writers remain
    (void)vlog_->Flush();
    (void)vlog_->Close();
    vlog_.reset();
  }
  // Best-effort clean-close snapshot: the next Open seeks to it and replays
  // zero edits. Failure is harmless -- recovery replays the edit suffix.
  // io: mutex-held -- clean close, no concurrent writers remain
  (void)versions_->WriteCleanCloseSnapshot();
  versions_.reset();
  table_cache_.reset();
  if (owns_cache_) {
    delete options_.block_cache;
  }
  if (owns_filter_policy_) {
    delete options_.filter_policy;
  }
}

// ---------------------------------------------------------------------------
// ReadState: the lock-free read-path snapshot.
//
// Invariants (see DESIGN.md "Read path" for the full argument):
//  * read_state_ always points at a node whose refcount includes one
//    "publication" reference; fields of a published node never change.
//  * Nodes are type-stable: never freed while the DB is open, only moved
//    retired list -> freelist -> reuse. A reader may therefore bump the
//    refcount of a stale (even recycled) node safely; the recheck below
//    ensures it only *uses* the node it actually pinned.
//  * Teardown (Unref of mem/imm/current) happens only in
//    DrainRetiredReadStates, always under mutex_, on nodes with zero refs.
// ---------------------------------------------------------------------------

DBImpl::ReadState* DBImpl::AcquireReadState() {
  while (true) {
    ReadState* s = read_state_.load(std::memory_order_acquire);
    assert(s != nullptr);  // published before the DB is handed out
    s->refs.fetch_add(1, std::memory_order_relaxed);
    // Recheck: if s is still published, our reference is guaranteed to be
    // counted before the publisher's retire-side fetch_sub can drop the
    // node to zero, so the drain cannot tear it down under us. The acquire
    // reload synchronizes with the release publication, making the node's
    // fields (set before publish) visible. If s was swapped out (or even
    // recycled) between load and ref, retry; the stray ref we drop only
    // touched the atomic counter of a type-stable node.
    if (read_state_.load(std::memory_order_acquire) == s) {
      return s;
    }
    s->refs.fetch_sub(1, std::memory_order_release);
  }
}

void DBImpl::UnrefReadState(void* arg1, void* arg2) {
  // Readers only drop their count; teardown is the writer side's job. The
  // release order makes the reader's memtable/version accesses visible to
  // the drain that observes the zero.
  DBImpl* db = reinterpret_cast<DBImpl*>(arg1);
  ReadState* state = reinterpret_cast<ReadState*>(arg2);
  (void)db;
  state->refs.fetch_sub(1, std::memory_order_release);
}

void DBImpl::PublishReadState() {
  mutex_.AssertHeld();
  ReadState* s;
  if (!free_read_states_.empty()) {
    s = free_read_states_.back();
    free_read_states_.pop_back();
  } else {
    s = new ReadState();
  }
  s->mem = mem_;
  s->imm = imm_;
  s->current = versions_->current();
  s->mem->Ref();
  if (s->imm != nullptr) s->imm->Ref();
  s->current->Ref();
  // fetch_add rather than store(1): a racing reader may already have bumped
  // a recycled node's count (its recheck will fail and it will decrement);
  // overwriting the count would lose that transient and later underflow.
  s->refs.fetch_add(1, std::memory_order_relaxed);  // publication ref
  ReadState* old =
      read_state_.exchange(s, std::memory_order_acq_rel);  // release s
  if (old != nullptr) {
    retired_read_states_.push_back(old);
    old->refs.fetch_sub(1, std::memory_order_release);  // publication ref
  }
  DrainRetiredReadStates();
}

void DBImpl::DrainRetiredReadStates() {
  mutex_.AssertHeld();
  size_t kept = 0;
  for (size_t i = 0; i < retired_read_states_.size(); i++) {
    ReadState* s = retired_read_states_[i];
    if (s->refs.load(std::memory_order_acquire) == 0) {
      // No reader holds s, and none can complete a new acquisition of it:
      // it is no longer published, so any racing fetch_add fails its
      // recheck and backs out having touched only the counter.
      s->mem->Unref();
      if (s->imm != nullptr) s->imm->Unref();
      s->current->Unref();
      s->mem = nullptr;
      s->imm = nullptr;
      s->current = nullptr;
      free_read_states_.push_back(s);
    } else {
      retired_read_states_[kept++] = s;
    }
  }
  retired_read_states_.resize(kept);
}

Status DBImpl::NewDB() {
  VersionEdit new_db;
  new_db.SetComparatorName(internal_comparator_.user_comparator()->Name());
  new_db.SetLogNumber(0);
  new_db.SetNextFile(2);
  new_db.SetLastSequence(0);

  const std::string manifest = DescriptorFileName(dbname_, 1);
  std::unique_ptr<WritableFile> file;
  Status s = env_->NewWritableFile(manifest, &file);  // io: open/recovery
  if (!s.ok()) {
    return s;
  }
  {
    wal::Writer log(file.get());
    std::string record;
    new_db.EncodeTo(&record);
    s = log.AddRecord(record);
    if (s.ok()) {
      s = file->Sync();
    }
    if (s.ok()) {
      s = file->Close();
    }
  }
  if (s.ok()) {
    // Make "CURRENT" file that points to the new manifest file.
    s = SetCurrentFile(env_, dbname_, 1);
  } else {
    (void)env_->RemoveFile(manifest);  // io: open/recovery cleanup
  }
  return s;
}

void DBImpl::RemoveObsoleteFiles() {
  if (bg_error_state_ != BackgroundErrorState::kOk) {
    // Mid-episode we don't know whether a failed MANIFEST write may still
    // be readable on disk (a torn-but-valid tail could reference files the
    // in-memory version discarded), so we cannot safely garbage collect.
    // GC resumes once the episode recovers -- the retry's fresh
    // snapshot-headed MANIFEST supersedes any torn tail (see
    // VersionSet::LogAndApply's failure path).
    return;
  }

  // Make a set of all of the live files
  std::set<uint64_t> live = pending_outputs_;
  versions_->AddLiveFiles(&live);
  // vLog liveness: a segment is live while the registry lists it OR while
  // any file in ANY live version spans it (old versions keep segments
  // readable for their iterators/snapshots until they die), OR while GC is
  // building it (pending_outputs_, folded into |live| above).
  std::set<uint64_t> live_vlog;
  versions_->AddLiveVlogSegments(&live_vlog);

  std::vector<std::string> filenames;
  // io: mutex-held -- the listing must be classified against a stable
  // pending_outputs_/versions_ snapshot; only the unlink loop drops the lock.
  (void)env_->GetChildren(dbname_, &filenames);  // errors ignored on purpose
  uint64_t number;
  FileType type;
  struct Doomed {
    std::string filename;
    bool is_table;
    int level;  // former level if recorded, else -1
    uint64_t number;
  };
  std::vector<Doomed> files_to_delete;
  for (std::string& filename : filenames) {
    if (ParseFileName(filename, &number, &type)) {
      bool keep = true;
      switch (type) {
        case kLogFile:
          keep = (number >= versions_->LogNumber());
          break;
        case kDescriptorFile:
          // Keep my manifest file, and any newer incarnations'.
          keep = (number >= versions_->ManifestFileNumber());
          break;
        case kTableFile:
          keep = (live.find(number) != live.end());
          break;
        case kTempFile:
          // Any temp files that are currently being written to must be
          // recorded in pending_outputs_, which is inserted into "live".
          keep = (live.find(number) != live.end());
          break;
        case kVlogFile:
          keep = (live_vlog.find(number) != live_vlog.end() ||
                  live.find(number) != live.end());
          break;
        case kCurrentFile:
        case kDBLockFile:
          keep = true;
          break;
      }

      if (!keep) {
        int dead_level = -1;
        if (type == kTableFile) {
          auto it = dead_table_levels_.find(number);
          if (it != dead_table_levels_.end()) dead_level = it->second;
          table_cache_->Evict(number);
        }
        if (type == kVlogFile) {
          // Drop the cached read handle before the unlink below.
          vlog_readers_.Evict(number);
        }
        files_to_delete.push_back(
            Doomed{std::move(filename), type == kTableFile, dead_level, number});
      }
    }
  }

  // Unlink order is part of the crash-safety contract: if we die mid-loop,
  // RepairDB rebuilds the DB from whatever files remain, and an entry is
  // only ever shadowed by an entry in a *shallower* file (or a newer run of
  // the same level). Removing non-table files first, then tables deepest
  // level first and oldest run (smallest number) first within a level,
  // keeps every prefix of the removals resurrection-free: a tombstone file
  // is never unlinked while a value it masks is still on disk. Tables with
  // no recorded level (orphans from a previous incarnation, seen only
  // during Open) were never live and go last.
  std::stable_sort(files_to_delete.begin(), files_to_delete.end(),
                   [](const Doomed& a, const Doomed& b) {
                     if (a.is_table != b.is_table) return !a.is_table;
                     if (a.level != b.level) return a.level > b.level;
                     return a.number < b.number;
                   });

  // Unlink outside the lock: only dead files are in the list, and files
  // created concurrently (by the writer rotating the WAL) carry numbers
  // this pass never classified, so they cannot be removed by mistake.
  mutex_.Unlock();
  for (const Doomed& doomed : files_to_delete) {
    (void)env_->RemoveFile(dbname_ + "/" + doomed.filename);  // io: unlocked
  }
  mutex_.Lock();
  for (const Doomed& doomed : files_to_delete) {
    if (doomed.is_table) dead_table_levels_.erase(doomed.number);
  }
}

void DBImpl::RecordDeadTableLevels(const VersionEdit& edit) {
  for (const auto& dead : edit.deleted_files()) {
    bool readded = false;
    for (const auto& added : edit.new_files()) {
      if (added.second.number == dead.second) {  // trivial move: still live
        readded = true;
        break;
      }
    }
    if (!readded) dead_table_levels_[dead.second] = dead.first;
  }
}

namespace {
// Counts the tombstones in a batch for the persistence monitor. Shared by
// the write path and WAL replay so live and recovered counts agree exactly.
class DeleteCounter : public WriteBatch::Handler {
 public:
  uint64_t deletes = 0;
  uint64_t range_deletes = 0;
  uint64_t bytes = 0;
  void Put(const Slice& key, const Slice& value) override {
    bytes += key.size() + value.size();
  }
  void PutPointer(const Slice& key, const Slice& pointer) override {
    // Only seen during WAL replay (separation happens after the batch is
    // counted on the live path); the value bytes live in the vLog.
    bytes += key.size() + pointer.size();
  }
  void Delete(const Slice& key) override {
    deletes++;
    bytes += key.size();
  }
  void DeleteRange(const Slice& begin, const Slice& end) override {
    range_deletes++;
    bytes += begin.size() + end.size();
  }
};

// Rewrites a write group so values at or above the separation threshold go
// to the value log and the batch carries (segment, offset, size) pointers
// instead. Runs in the leader's unlocked section; the single-leader group
// commit protocol is what serializes appends to the shared head writer.
class ValueSeparator : public WriteBatch::Handler {
 public:
  ValueSeparator(WriteBatch* out, vlog::Writer* vlog, size_t threshold)
      : out_(out), vlog_(vlog), threshold_(threshold) {}
  Status status;
  uint64_t separated = 0;
  uint64_t bytes_appended = 0;
  void Put(const Slice& key, const Slice& value) override {
    if (!status.ok()) return;
    if (value.size() < threshold_) {
      out_->Put(key, value);
      return;
    }
    vlog::ValuePointer ptr;
    status = vlog_->Add(key, value, &ptr);
    if (!status.ok()) return;
    encoded_.clear();
    vlog::EncodeValuePointer(&encoded_, ptr);
    out_->PutPointer(key, encoded_);
    separated++;
    bytes_appended += ptr.size;
  }
  void PutPointer(const Slice& key, const Slice& pointer) override {
    out_->PutPointer(key, pointer);
  }
  void Delete(const Slice& key) override { out_->Delete(key); }
  void DeleteRange(const Slice& begin, const Slice& end) override {
    out_->DeleteRange(begin, end);
  }

 private:
  WriteBatch* const out_;
  vlog::Writer* const vlog_;
  const size_t threshold_;
  std::string encoded_;
};

/// WAL-replay guard: a pointer referencing bytes beyond a segment's durable
// extent (or an unknown segment) belongs to a record that was never acked --
// the vLog syncs strictly before the WAL on the ack path -- so replay stops
// at the first such batch, torn-tail style.
class VlogPointerCheck : public WriteBatch::Handler {
 public:
  explicit VlogPointerCheck(const std::map<uint64_t, uint64_t>* extents)
      : extents_(extents) {}
  bool ok = true;
  void Put(const Slice&, const Slice&) override {}
  void PutPointer(const Slice&, const Slice& pointer) override {
    vlog::ValuePointer ptr;
    if (!vlog::DecodeValuePointerStrict(pointer, &ptr)) {
      ok = false;
      return;
    }
    auto it = extents_->find(ptr.segment);
    if (it == extents_->end() || ptr.offset + ptr.size > it->second) {
      ok = false;
    }
  }
  void Delete(const Slice&) override {}
  void DeleteRange(const Slice&, const Slice&) override {}

 private:
  const std::map<uint64_t, uint64_t>* const extents_;
};
}  // namespace

Status DBImpl::Recover(VersionEdit* edit, bool* save_manifest) {
  (void)env_->CreateDir(dbname_);  // io: open/recovery (may already exist)

  if (!env_->FileExists(CurrentFileName(dbname_))) {  // io: open/recovery
    if (options_.create_if_missing) {
      Status s = NewDB();
      if (!s.ok()) {
        return s;
      }
    } else {
      return Status::InvalidArgument(
          dbname_, "does not exist (create_if_missing is false)");
    }
  } else {
    if (options_.error_if_exists) {
      return Status::InvalidArgument(dbname_,
                                     "exists (error_if_exists is true)");
    }
  }

  Status s = versions_->Recover(save_manifest);
  if (!s.ok()) {
    return s;
  }
  SequenceNumber max_sequence(0);

  // Recover from all newer log files than the ones named in the descriptor
  // (new log files may have been added by the previous incarnation without
  // registering them in the descriptor).
  const uint64_t min_log = versions_->LogNumber();
  std::vector<std::string> filenames;
  s = env_->GetChildren(dbname_, &filenames);  // io: open/recovery
  if (!s.ok()) {
    return s;
  }
  std::set<uint64_t> expected;
  versions_->AddLiveFiles(&expected);
  uint64_t number;
  FileType type;
  std::vector<uint64_t> logs;
  for (size_t i = 0; i < filenames.size(); i++) {
    if (ParseFileName(filenames[i], &number, &type)) {
      expected.erase(number);
      if (type == kLogFile && number >= min_log) logs.push_back(number);
    }
  }
  if (!expected.empty()) {
    char buf[50];
    std::snprintf(buf, sizeof(buf), "%d missing table files",
                  static_cast<int>(expected.size()));
    return Status::Corruption(buf, TableFileName(dbname_, *expected.begin()));
  }

  // Seal the previous incarnation's value-log head at its valid CRC prefix
  // and collect per-segment durable extents before WAL replay needs them to
  // validate pointers.
  s = RecoverVlog(edit, save_manifest);
  if (!s.ok()) {
    return s;
  }

  // Recover in the order in which the logs were generated
  std::sort(logs.begin(), logs.end());
  uint64_t replayed_deletes = 0;
  uint64_t replayed_range_deletes = 0;
  for (size_t i = 0; i < logs.size(); i++) {
    s = RecoverLogFile(logs[i], (i == logs.size() - 1), save_manifest, edit,
                       &max_sequence, &replayed_deletes,
                       &replayed_range_deletes);
    if (!s.ok()) {
      return s;
    }

    // The previous incarnation may not have written any MANIFEST records
    // after allocating this log number. So we manually update the file
    // number allocation counter in VersionSet.
    versions_->MarkFileNumberUsed(logs[i]);
  }

  if (versions_->LastSequence() < max_sequence) {
    versions_->SetLastSequence(max_sequence);
  }

  // Restore the persistence monitor from the MANIFEST journal plus the WAL
  // suffix just replayed. The journaled written count was captured at each
  // memtable swap, i.e. it covers exactly the tombstones in WALs older than
  // the descriptor's log_number; the surviving WALs contribute the rest, so
  // the recovered FADE clock is exact, not conservative.
  const VersionSet::MonitorJournal& journal = versions_->monitor_journal();
  monitor_.Restore(journal.written + replayed_deletes, journal.persisted,
                   journal.superseded, journal.latency);
  monitor_.RestoreRange(journal.range_written + replayed_range_deletes,
                        journal.range_persisted, journal.range_superseded,
                        journal.range_latency);
  monitor_.RestoreVlog(journal.vlog_purged, journal.vlog_latency);
  stats_.manifest_edits_replayed = versions_->manifest_edits_replayed();

  recovered_vlog_extents_.clear();  // only needed during replay
  return Status::OK();
}

Status DBImpl::RecoverVlog(VersionEdit* edit, bool* save_manifest) {
  recovered_vlog_extents_.clear();
  for (const auto& entry : versions_->vlog_registry()) {
    const vlog::SegmentInfo& info = entry.second;
    const std::string fname = VlogFileName(dbname_, info.number);
    if (!env_->FileExists(fname)) {  // io: open/recovery
      if (info.sealed && info.value_count > 0) {
        // A sealed segment was synced before its seal installed; it cannot
        // legitimately vanish while the registry still lists it.
        return Status::Corruption("missing value log file", fname);
      }
      // A registered-but-never-written head (crash inside rotation, before
      // the first append was flushed): drop the registry entry.
      edit->RemoveVlogSegment(info.number);
      *save_manifest = true;
      continue;
    }
    if (info.sealed) {
      // Sealed extents were durable before the seal installed
      // (sync-before-install); trust the journaled byte count.
      recovered_vlog_extents_[info.number] = info.total_bytes;
      continue;
    }
    // The previous incarnation's head. Append-only writes plus a per-record
    // CRC make the valid prefix exact; seal the segment logically there.
    // Bytes past the scan point (a torn tail) were never sync-acked.
    uint64_t valid_bytes = 0;
    uint64_t value_count = 0;
    Status s = vlog::ScanSegment(env_, fname, &valid_bytes,
                                 &value_count);  // io: open/recovery
    if (!s.ok()) {
      return s;
    }
    vlog::SegmentInfo sealed = info;
    sealed.sealed = true;
    sealed.total_bytes = valid_bytes;
    sealed.value_count = value_count;
    edit->AddVlogSegment(sealed);
    *save_manifest = true;
    recovered_vlog_extents_[sealed.number] = valid_bytes;
  }
  return Status::OK();
}

Status DBImpl::RecoverLogFile(uint64_t log_number, bool, bool* save_manifest,
                              VersionEdit* edit, SequenceNumber* max_sequence,
                              uint64_t* replayed_deletes,
                              uint64_t* replayed_range_deletes) {
  struct LogReporter : public wal::Reader::Reporter {
    Status* status;
    void Corruption(size_t, const Status& s) override {
      if (this->status != nullptr && this->status->ok()) *this->status = s;
    }
  };

  // Open the log file
  std::string fname = LogFileName(dbname_, log_number);
  std::unique_ptr<SequentialFile> file;
  Status status = env_->NewSequentialFile(fname, &file);  // io: open/recovery
  if (!status.ok()) {
    return status;
  }

  // Create the log reader.
  LogReporter reporter;
  reporter.status = (options_.paranoid_checks ? &status : nullptr);
  // We intentionally make the reader checksum mismatches tolerant unless
  // paranoid_checks is on, matching the common recovery posture.
  wal::Reader reader(file.get(), &reporter, true /*checksum*/);

  // Read all the records and add to a memtable
  std::string scratch;
  Slice record;
  WriteBatch batch;
  int compactions = 0;
  MemTable* mem = nullptr;
  while (reader.ReadRecord(&record, &scratch) && status.ok()) {
    if (record.size() < 12) {
      reporter.Corruption(record.size(),
                          Status::Corruption("log record too small"));
      continue;
    }
    WriteBatchInternal::SetContents(&batch, record);

    if (!recovered_vlog_extents_.empty()) {
      // Pointers are only acked after their value bytes are synced, so a
      // pointer past its segment's durable extent marks the unacked suffix
      // of the final WAL: stop replaying here. (Only the crash-time head
      // can have a short extent, and only the last WAL references it --
      // rotation seals the head before a new WAL accepts records.)
      VlogPointerCheck check(&recovered_vlog_extents_);
      (void)batch.Iterate(&check);
      if (!check.ok) {
        break;
      }
    }

    if (mem == nullptr) {
      mem = new MemTable(internal_comparator_);
      mem->Ref();
    }
    status = WriteBatchInternal::InsertInto(&batch, mem);
    if (!status.ok()) {
      break;
    }
    DeleteCounter counter;
    (void)batch.Iterate(&counter);  // the batch just applied; cannot fail
    *replayed_deletes += counter.deletes;
    *replayed_range_deletes += counter.range_deletes;
    const SequenceNumber last_seq = WriteBatchInternal::Sequence(&batch) +
                                    WriteBatchInternal::Count(&batch) - 1;
    if (last_seq > *max_sequence) {
      *max_sequence = last_seq;
    }

    if (mem->ApproximateMemoryUsage() > options_.write_buffer_size) {
      compactions++;
      *save_manifest = true;
      status = WriteLevel0Table(mem, edit);
      mem->Unref();
      mem = nullptr;
      if (!status.ok()) {
        // Reflect errors immediately so that conditions like full
        // file-systems cause the DB::Open() to fail.
        break;
      }
    }
  }

  if (status.ok() && mem != nullptr) {
    *save_manifest = true;
    status = WriteLevel0Table(mem, edit);
  }
  if (mem != nullptr) mem->Unref();
  (void)compactions;
  return status;
}

Status DBImpl::WriteLevel0Table(MemTable* mem, VersionEdit* edit) {
  const uint64_t start_micros = SystemClock::NowMicros();
  FileMetaData meta;
  meta.number = versions_->NewFileNumber();
  pending_outputs_.insert(meta.number);
  Iterator* iter = mem->NewIterator();
  const std::string fname = TableFileName(dbname_, meta.number);

  Status s;
  // Build the table with the mutex released. |mem| is frozen -- it is
  // either imm_ (no writer touches it again) or a recovery-time memtable
  // before any concurrency exists -- and the file number is protected from
  // GC by pending_outputs_.
  mutex_.Unlock();
  {
    std::unique_ptr<WritableFile> file;
    s = env_->NewWritableFile(fname, &file);  // io: unlocked
    if (s.ok()) {
      TableBuilder builder(options_, file.get());
      // |mem| is frozen, so the push-front range-tombstone list is stable.
      std::vector<RangeTombstone> range_dels;
      mem->CollectRangeTombstones(&range_dels);
      iter->SeekToFirst();
      const bool has_data = iter->Valid();
      if (has_data || !range_dels.empty()) {
        if (has_data) {
          meta.smallest.DecodeFrom(iter->key());
          for (; iter->Valid(); iter->Next()) {
            Slice key = iter->key();
            meta.largest.DecodeFrom(key);
            const Slice user_key = ExtractUserKey(key);
            builder.Add(key, iter->value(), user_key);
            ParsedInternalKey parsed;
            if (ParseInternalKey(key, &parsed)) {
              if (parsed.type == kTypeValuePointer) {
                // Track the [min,max] vLog segment span: RemoveObsoleteFiles
                // keeps every segment inside a live file's span alive.
                vlog::FoldVlogSpan(iter->value(), &meta.min_vlog_segment,
                                   &meta.max_vlog_segment);
              } else if (parsed.type == kTypeValue &&
                  options_.secondary_key_extractor) {
                std::string sec =
                    options_.secondary_key_extractor(user_key, iter->value());
                if (!sec.empty()) {
                  if (meta.min_secondary_key.empty() ||
                      sec < meta.min_secondary_key) {
                    meta.min_secondary_key = sec;
                  }
                  if (meta.max_secondary_key.empty() ||
                      sec > meta.max_secondary_key) {
                    meta.max_secondary_key = sec;
                  }
                }
              }
            }
          }
        }
        if (!range_dels.empty()) {
          const Comparator* ucmp = internal_comparator_.user_comparator();
          std::string span_begin, span_end;
          SequenceNumber max_seq = 0;
          for (const RangeTombstone& t : range_dels) {
            builder.AddRangeTombstone(t.begin, t.end, t.seq, ucmp);
            if (span_begin.empty() ||
                ucmp->Compare(t.begin, span_begin) < 0) {
              span_begin = t.begin;
            }
            if (span_end.empty() || ucmp->Compare(t.end, span_end) > 0) {
              span_end = t.end;
            }
            max_seq = std::max(max_seq, t.seq);
          }
          meta.num_range_tombstones = mem->num_range_tombstones();
          meta.earliest_range_tombstone_seq =
              mem->earliest_range_tombstone_seq();
          meta.earliest_range_tombstone_wall_micros =
              mem->earliest_range_tombstone_wall_micros();
          meta.range_del_begin = span_begin;
          meta.range_del_end = span_end;
          if (!has_data) {
            // A range-only memtable must still become an L0 file (the
            // tombstones have to reach the tree to age and drop). L0 files
            // may overlap freely, so span-derived bounds are safe here.
            meta.smallest =
                InternalKey(span_begin, max_seq, kValueTypeForSeek);
            meta.largest = InternalKey(span_end, 0, kTypeDeletion);
          }
        }
        meta.num_entries = builder.NumEntries();
        meta.num_tombstones = mem->num_tombstones();
        meta.earliest_tombstone_seq = mem->earliest_tombstone_seq();
        meta.earliest_tombstone_wall_micros =
            mem->earliest_tombstone_wall_micros();
        // Mirror the metadata into the table's own properties block.
        // (AddRangeTombstone already maintained the range span/count/seq
        // fields; only the wall stamp needs the memtable's clock.)
        TableProperties* props = builder.mutable_properties();
        props->num_tombstones = meta.num_tombstones;
        props->earliest_tombstone_time = meta.earliest_tombstone_seq;
        props->earliest_tombstone_wall_micros =
            meta.earliest_tombstone_wall_micros;
        props->earliest_range_tombstone_wall_micros =
            meta.earliest_range_tombstone_wall_micros;
        props->min_secondary_key = meta.min_secondary_key;
        props->max_secondary_key = meta.max_secondary_key;
        bool close_attempted = false;
        s = builder.Finish();
        if (s.ok()) {
          meta.file_size = builder.FileSize();
          // Always sync, independent of Options::sync_writes: the manifest
          // record that makes this table live is synced at install, so the
          // table data must be durable first or a crash could leave a live
          // version pointing at a torn file.
          s = file->Sync();
          if (s.ok()) {
            s = file->Close();
            close_attempted = true;
          }
        }
        if (!close_attempted) {
          // The output cannot be installed (build or sync failed); it is
          // removed below. Close deliberately -- the dropped status is a
          // conscious choice here, not a silent one in the destructor.
          (void)file->Close();  // io: unlocked -- abandoned flush output
        }
      } else {
        builder.Abandon();
        (void)file->Close();  // io: unlocked -- abandoned empty output
      }
    }
  }

  if (!iter->status().ok()) {
    s = iter->status();
  }
  delete iter;

  // Note that if file_size is zero, the file has been deleted and should
  // not be added to the manifest.
  const bool keep = s.ok() && meta.file_size > 0;
  if (!keep) {
    (void)env_->RemoveFile(fname);  // io: unlocked
  }
  mutex_.Lock();
  pending_outputs_.erase(meta.number);

  if (keep) {
    meta.run_id = meta.number;
    edit->AddFile(0, meta);
    stats_.flush_count++;
    stats_.flush_bytes_written += meta.file_size;
  }
  (void)start_micros;
  return s;
}

Status DBImpl::CompactMemTable() {
  assert(compaction_active_);
  assert(imm_ != nullptr);

  VersionEdit edit;
  Status s = WriteLevel0Table(imm_, &edit);
  ErrorSubsystem failed_in = ErrorSubsystem::kFlush;

  if (s.ok()) {
    // The WAL was already rotated when mem_ moved to imm_; advancing the
    // manifest's log number to the swap-time log retires every log older
    // than it now that their contents are durable in L0. (Not the current
    // logfile_number_: a WAL-recovery rotation may have advanced it while
    // this flush was pending, and mem_'s acked records in the swap-time
    // log must keep replaying until mem_ itself flushes.)
    edit.SetLogNumber(pending_log_number_at_swap_);
    // Journal the FADE clock checkpoint captured at the swap: the written
    // count as of the moment the retiring WALs stopped receiving writes.
    // Recovery adds the replayed suffix of surviving WALs to this value to
    // reconstruct the exact (not conservative) count.
    edit.SetMonitorWritten(pending_written_at_swap_);
    edit.SetMonitorRangeWritten(pending_range_written_at_swap_);
    failed_in = ErrorSubsystem::kManifest;
    s = versions_->LogAndApply(&edit, &mutex_);
  }
  if (s.ok()) {
    imm_->Unref();
    imm_ = nullptr;
    // The flush installed; its TTL deadline (if any) is now visible to
    // ComputeNextTtlDeadline, so the conservative floor retires.
    pending_ttl_floor_ = UINT64_MAX;
    // Readers switch to {mem_, no imm, flushed version}; the superseded
    // state keeps the old version's files live until its readers drain.
    PublishReadState();
    RemoveObsoleteFiles();
  } else {
    // The flush retries with imm_, its TTL floor, and its journaled swap
    // checkpoint all intact -- a successful retry installs exactly what
    // this attempt would have (orphan outputs of failed attempts are
    // collected by RemoveObsoleteFiles once the episode recovers).
    RecordBackgroundError(s, failed_in);
  }
  return s;
}

Status DBImpl::NewVlogHead(VersionEdit* edit) {
  const uint64_t number = versions_->NewFileNumber();
  std::unique_ptr<WritableFile> file;
  // io: mutex-held -- vLog head rotation; the segment must exist before the
  // next leader's unlocked section appends (same contract as WAL rotation)
  Status s = env_->NewWritableFile(VlogFileName(dbname_, number), &file);
  if (!s.ok()) {
    return s;
  }
  vlog_ = std::make_unique<vlog::Writer>(std::move(file), number);
  // Sync the empty segment before its (unsealed) registration installs:
  // the registry entry then always names a file that exists durably, and
  // the sync-before-install invariant holds for vLog outputs uniformly.
  s = vlog_->Sync();  // io: mutex-held -- empty-file sync at head creation
  if (!s.ok()) {
    vlog_.reset();
    return s;
  }
  vlog_rotation_pending_ = false;
  vlog::SegmentInfo info;
  info.number = number;
  info.sealed = false;
  edit->AddVlogSegment(info);
  stats_.vlog_segments_created++;
  return s;
}

Status DBImpl::SealVlogHead(VersionEdit* edit) {
  if (vlog_ == nullptr) {
    return Status::OK();
  }
  const uint64_t number = vlog_->segment_number();
  const bool poisoned = vlog_rotation_pending_;
  // io: mutex-held -- sealing the head; rotation must not interleave with a
  // leader's unlocked appends, and no leader is out while we hold the mutex
  Status s = vlog_->Flush();
  if (s.ok()) s = vlog_->Sync();
  if (s.ok()) s = vlog_->Close();
  if (!s.ok() && !poisoned) {
    // A healthy head must seal durably before its extent can be journaled
    // (sync-before-install); let the caller retry the whole rotation.
    return s;
  }
  vlog::SegmentInfo info;
  info.number = number;
  info.sealed = true;
  info.total_bytes = vlog_->offset();
  info.value_count = vlog_->value_count();
  if (poisoned) {
    // After an append/sync error the writer's own arithmetic is untrusted;
    // re-derive the extent from the file's valid CRC prefix. Every acked
    // value was individually synced before its ack, so it lies inside that
    // prefix by construction; the failed suffix was never acked.
    uint64_t valid_bytes = 0;
    uint64_t value_count = 0;
    // io: mutex-held -- bounded by one segment; only runs on the error path
    Status scan = vlog::ScanSegment(env_, VlogFileName(dbname_, number),
                                    &valid_bytes, &value_count);
    if (!scan.ok()) {
      return scan;
    }
    info.total_bytes = valid_bytes;
    info.value_count = value_count;
  }
  edit->AddVlogSegment(info);
  vlog_.reset();
  return Status::OK();
}

Status DBImpl::RotateVlogHead() {
  VersionEdit edit;
  Status s = SealVlogHead(&edit);
  if (s.ok() && VlogEnabled()) {
    s = NewVlogHead(&edit);
  }
  if (s.ok()) {
    // Install immediately: the next leader appends to the new head as soon
    // as the write queue advances, and its WAL records name the new segment
    // number -- replay validation rejects pointers into unregistered
    // segments, so registration must be durable before any ack.
    s = versions_->LogAndApply(&edit, &mutex_);
  }
  if (!s.ok()) {
    // Force a retry before any further separation: a head that is sealed
    // but unregistered (or not sealed at all) must not accept appends.
    vlog_rotation_pending_ = true;
  }
  return s;
}

void DBImpl::ComputeNextVlogGcDeadline() {
  next_vlog_gc_deadline_ = UINT64_MAX;
  const uint64_t dth = options_.delete_persistence_threshold;
  if (dth == 0) return;
  for (const auto& entry : versions_->vlog_registry()) {
    const vlog::SegmentInfo& info = entry.second;
    if (!info.sealed || info.pending.empty()) continue;
    // Collect at half the delete-persistence budget: the key purge already
    // spent up to ~D_th reaching the bottom level, and the *value* purge
    // must land within D_th of that key purge, not of the original delete.
    next_vlog_gc_deadline_ =
        std::min(next_vlog_gc_deadline_,
                 info.earliest_pending_seq() + dth / 2);
  }
}

Status DBImpl::MaybeVlogGc() {
  assert(compaction_active_);
  Status s;
  // A few segments can come due at once (e.g. after a large range delete
  // compacts); collect until no victim qualifies. The registry shrinks by
  // one segment per iteration, so this terminates.
  while (s.ok() && !shutting_down_.load(std::memory_order_acquire)) {
    const vlog::Registry& registry = versions_->vlog_registry();
    const SequenceNumber now = versions_->LastSequence();
    const uint64_t dth = options_.delete_persistence_threshold;
    const uint64_t head =
        (vlog_ != nullptr) ? vlog_->segment_number() : 0;
    uint64_t victim = 0;
    uint64_t best_deadline = UINT64_MAX;
    double best_ratio = 2.0;
    for (const auto& entry : registry) {
      const vlog::SegmentInfo& info = entry.second;
      if (!info.sealed || info.number == head) continue;
      bool eligible = false;
      uint64_t deadline = UINT64_MAX;
      if (info.value_count == 0 && info.pending.empty()) {
        // Empty segment (aborted rotation, or all values relocated):
        // nothing can reference it; reclaim immediately.
        eligible = true;
        deadline = 0;
      }
      if (dth > 0 && !info.pending.empty()) {
        // FADE trigger: the oldest key purge charged to this segment is
        // waiting on its value bytes.
        deadline = info.earliest_pending_seq() + dth / 2;
        eligible = eligible || now >= deadline;
      }
      if (!eligible && info.garbage_bytes > 0 &&
          info.live_ratio() <= options_.vlog_gc_live_ratio) {
        // Space trigger (Scavenger-style), independent of the delete clock.
        eligible = true;
      }
      if (!eligible) continue;
      // Earliest purge deadline wins; live-byte ratio breaks ties (and
      // orders the space-triggered victims, which all carry UINT64_MAX).
      if (deadline < best_deadline ||
          (deadline == best_deadline && info.live_ratio() < best_ratio)) {
        victim = info.number;
        best_deadline = deadline;
        best_ratio = info.live_ratio();
      }
    }
    if (victim == 0) break;
    s = CollectVlogSegment(victim);
  }
  if (!s.ok()) {
    RecordBackgroundError(s, ErrorSubsystem::kCompaction);
  }
  ComputeNextVlogGcDeadline();
  return s;
}

Status DBImpl::CollectVlogSegment(uint64_t segment) {
  assert(compaction_active_);
  const vlog::Registry& registry = versions_->vlog_registry();
  auto reg_it = registry.find(segment);
  if (reg_it == registry.end()) {
    return Status::OK();
  }
  // Copy: LogAndApply below replaces the registry entry set.
  const vlog::SegmentInfo victim_info = reg_it->second;
  const SequenceNumber now_seq = versions_->LastSequence();

  // Files in the current version whose segment span admits the victim.
  // Rotation-at-swap confines a sealed segment's pointers to one memtable
  // generation, and a segment only becomes eligible (garbage, purges, or
  // emptiness) after that generation flushed -- so scanning tables covers
  // every live pointer; no memtable can hold one.
  Version* base = versions_->current();
  base->Ref();
  struct Target {
    FileMetaData* f;
    int level;
  };
  std::vector<Target> targets;
  for (int level = 0; level < kNumLevels; level++) {
    for (FileMetaData* f : base->files(level)) {
      if (f->has_vlog_pointers() && f->min_vlog_segment <= segment &&
          segment <= f->max_vlog_segment) {
        targets.push_back({f, level});
      }
    }
  }

  VersionEdit edit;
  Status s;

  // Live values relocate into a fresh sealed segment. Its number rides
  // pending_outputs_ until the edit installs so RemoveObsoleteFiles cannot
  // unlink the half-built file.
  std::unique_ptr<vlog::Writer> reloc;
  uint64_t reloc_number = 0;
  if (!targets.empty()) {
    reloc_number = versions_->NewFileNumber();
    pending_outputs_.insert(reloc_number);
    std::unique_ptr<WritableFile> file;
    // io: mutex-held -- GC relocation segment creation (slot held; cheap)
    s = env_->NewWritableFile(VlogFileName(dbname_, reloc_number), &file);
    if (s.ok()) {
      reloc = std::make_unique<vlog::Writer>(std::move(file), reloc_number);
    } else {
      pending_outputs_.erase(reloc_number);
    }
  }

  uint64_t relocated_values = 0;
  uint64_t relocated_bytes = 0;
  for (const Target& t : targets) {
    if (!s.ok()) break;
    s = RewriteFileForVlogGc(t.f, t.level, segment, reloc.get(), &edit,
                             &relocated_values, &relocated_bytes);
  }

  if (s.ok() && reloc != nullptr) {
    if (reloc->value_count() > 0) {
      // Sync-before-install: the relocated bytes must be durable before
      // the manifest edit that points rewritten tables at them.
      // io: mutex-held -- sealing the GC relocation segment
      s = reloc->Flush();
      if (s.ok()) s = reloc->Sync();
      if (s.ok()) s = reloc->Close();
      if (s.ok()) {
        vlog::SegmentInfo rinfo;
        rinfo.number = reloc_number;
        rinfo.sealed = true;
        rinfo.total_bytes = reloc->offset();
        rinfo.value_count = reloc->value_count();
        edit.AddVlogSegment(rinfo);
      }
    } else {
      (void)reloc->Close();
      // io: mutex-held -- discarding an unused relocation segment
      (void)env_->RemoveFile(VlogFileName(dbname_, reloc_number));
      reloc_number = 0;
    }
  }

  // The victim's pending purges complete the moment the edit that drops the
  // segment installs: only then are the value bytes provably unreachable
  // and the file reclaimable. Latency = value-purge time - key-purge time,
  // on the same logical clock as the tombstone persistence bound.
  uint64_t purged = 0;
  Histogram purge_latency;
  for (const auto& p : victim_info.pending) {
    purged += p.count;
    const double latency =
        now_seq >= p.purge_seq
            ? static_cast<double>(now_seq - p.purge_seq)
            : 0.0;
    for (uint64_t i = 0; i < p.count; i++) purge_latency.Add(latency);
  }

  if (s.ok()) {
    edit.RemoveVlogSegment(segment);
    if (purged > 0) {
      edit.SetVlogMonitorDelta(purged, purge_latency);
    }
    s = versions_->LogAndApply(&edit, &mutex_);
  }
  if (s.ok()) {
    if (purged > 0) {
      monitor_.ApplyVlogDelta(purged, purge_latency);
    }
    stats_.vlog_gc_runs++;
    stats_.vlog_gc_values_relocated += relocated_values;
    stats_.vlog_gc_bytes_relocated += relocated_bytes;
    // Relocation writes count toward write amplification like any other
    // vLog append; GC is not free and the WA metric must say so.
    stats_.vlog_bytes_written += relocated_bytes;
    RecordDeadTableLevels(edit);
    PublishReadState();
    RemoveObsoleteFiles();
  }
  if (reloc_number != 0) pending_outputs_.erase(reloc_number);
  base->Unref();
  return s;
}

Status DBImpl::RewriteFileForVlogGc(const FileMetaData* f, int level,
                                    uint64_t victim, vlog::Writer* reloc,
                                    VersionEdit* edit,
                                    uint64_t* relocated_values,
                                    uint64_t* relocated_bytes) {
  // Rewrites |f|, relocating every pointer into |victim| to |reloc| (all
  // other entries are carried verbatim, sequences included, so snapshot
  // reads through the replacement are unchanged).
  const uint64_t new_number = versions_->NewFileNumber();
  pending_outputs_.insert(new_number);

  // The rewrite I/O runs unlocked; the caller holds the compaction slot and
  // a reference on |f|'s version, so the input cannot be deleted.
  mutex_.Unlock();
  ReadOptions ropts;
  ropts.fill_cache = false;
  std::unique_ptr<Iterator> it(
      table_cache_->NewIterator(ropts, f->number, f->file_size));
  std::vector<RangeTombstone> range_dels;
  Status s;
  if (f->has_range_tombstones()) {
    s = table_cache_->GetRangeTombstones(f->number, f->file_size,
                                         &range_dels);
  }
  std::unique_ptr<WritableFile> file;
  if (s.ok()) {
    s = env_->NewWritableFile(TableFileName(dbname_, new_number),
                              &file);  // io: unlocked
  }
  if (!s.ok()) {
    mutex_.Lock();
    pending_outputs_.erase(new_number);
    return s;
  }

  FileMetaData meta;
  meta.number = new_number;
  TableBuilder builder(options_, file.get());
  std::string relocated_value;
  std::string pointer_scratch;
  for (it->SeekToFirst(); s.ok() && it->Valid(); it->Next()) {
    Slice key = it->key();
    Slice value = it->value();
    ParsedInternalKey parsed;
    const bool is_pointer =
        ParseInternalKey(key, &parsed) && parsed.type == kTypeValuePointer;
    vlog::ValuePointer ptr;
    if (is_pointer) {
      if (!vlog::DecodeValuePointerStrict(value, &ptr)) {
        s = Status::Corruption("bad value pointer in table",
                               TableFileName(dbname_, f->number));
        break;
      }
      if (ptr.segment == victim) {
        // Keyed back-check: the record must still carry this user key, or
        // the pointer and segment disagree and relocating would graft the
        // wrong bytes under the key. ReaderCache::Get enforces it.
        relocated_value.clear();
        s = vlog_readers_.Get(ptr, parsed.user_key, &relocated_value);
        if (!s.ok()) break;
        vlog::ValuePointer moved;
        s = reloc->Add(parsed.user_key, relocated_value, &moved);
        if (!s.ok()) break;
        pointer_scratch.clear();
        vlog::EncodeValuePointer(&pointer_scratch, moved);
        value = Slice(pointer_scratch);
        ptr = moved;
        (*relocated_values)++;
        *relocated_bytes += moved.size;
      }
    }
    if (builder.NumEntries() == 0) meta.smallest.DecodeFrom(key);
    meta.largest.DecodeFrom(key);
    builder.Add(key, value, ExtractUserKey(key));
    if (ParseInternalKey(key, &parsed)) {
      if (parsed.type == kTypeDeletion) {
        meta.num_tombstones++;
        meta.earliest_tombstone_seq =
            std::min(meta.earliest_tombstone_seq, parsed.sequence);
        meta.earliest_tombstone_wall_micros =
            std::min(meta.earliest_tombstone_wall_micros,
                     f->earliest_tombstone_wall_micros);
      } else if (is_pointer) {
        if (meta.min_vlog_segment == 0 ||
            ptr.segment < meta.min_vlog_segment) {
          meta.min_vlog_segment = ptr.segment;
        }
        meta.max_vlog_segment = std::max(meta.max_vlog_segment, ptr.segment);
      } else if (parsed.type == kTypeValue &&
                 options_.secondary_key_extractor) {
        std::string sec =
            options_.secondary_key_extractor(parsed.user_key, it->value());
        if (!sec.empty()) {
          if (meta.min_secondary_key.empty() ||
              sec < meta.min_secondary_key) {
            meta.min_secondary_key = sec;
          }
          if (meta.max_secondary_key.empty() ||
              sec > meta.max_secondary_key) {
            meta.max_secondary_key = sec;
          }
        }
      }
    }
  }
  if (s.ok() && !it->status().ok()) {
    s = it->status();
  }

  if (s.ok() && !range_dels.empty()) {
    // Carried verbatim, same as the secondary purge rewrite: losing them
    // would resurrect every key they cover.
    for (const RangeTombstone& t : range_dels) {
      builder.AddRangeTombstone(t.begin, t.end, t.seq,
                                internal_comparator_.user_comparator());
      meta.num_range_tombstones++;
      meta.earliest_range_tombstone_seq =
          std::min(meta.earliest_range_tombstone_seq, t.seq);
    }
    meta.earliest_range_tombstone_wall_micros =
        f->earliest_range_tombstone_wall_micros;
    meta.range_del_begin = f->range_del_begin;
    meta.range_del_end = f->range_del_end;
  }

  if (s.ok()) {
    meta.num_entries = builder.NumEntries();
    TableProperties* props = builder.mutable_properties();
    props->num_tombstones = meta.num_tombstones;
    props->earliest_tombstone_time = meta.earliest_tombstone_seq;
    if (meta.num_range_tombstones > 0) {
      props->earliest_range_tombstone_wall_micros =
          meta.earliest_range_tombstone_wall_micros;
    }
    props->min_secondary_key = meta.min_secondary_key;
    props->max_secondary_key = meta.max_secondary_key;
    s = builder.Finish();
    if (s.ok()) {
      meta.file_size = builder.FileSize();
      meta.run_id = f->run_id;  // preserve recency ordering within the level
      // Durable before the (synced) manifest record references it.
      s = file->Sync();
      if (s.ok()) s = file->Close();
    }
  } else {
    builder.Abandon();
    (void)file->Close();  // io: unlocked -- abandoned GC rewrite output
  }

  mutex_.Lock();
  if (s.ok()) {
    edit->RemoveFile(level, f->number);
    edit->AddFile(level, meta);
  }
  pending_outputs_.erase(new_number);
  return s;
}

void DBImpl::AcquireCompactionSlot() {
  while (compaction_active_) {
    background_work_finished_signal_.Wait();
  }
  compaction_active_ = true;
}

void DBImpl::ReleaseCompactionSlot() {
  assert(compaction_active_);
  compaction_active_ = false;
  background_work_finished_signal_.SignalAll();
}

Status DBImpl::RunCompactions() {
  AcquireCompactionSlot();
  Status s;
  // A round that flushes replays the swap point: every pick and drop in it
  // uses the horizon captured when the memtable rotated, not wherever the
  // writers' clock has moved to since.
  SequenceNumber horizon = versions_->LastSequence();
  if (imm_ != nullptr) {
    horizon = pending_flush_horizon_;
    s = CompactMemTable();
    // Unthrottle writers waiting for the imm_ slot as soon as it clears,
    // not only when the whole round finishes.
    background_work_finished_signal_.SignalAll();
  }
  if (s.ok()) {
    s = MaybeCompact(horizon);
  }
  if (s.ok()) {
    // Value-log GC rides the compaction slot: compactions above may have
    // charged new garbage/pending purges, and the FADE deadline check
    // inside picks up exactly that state.
    s = MaybeVlogGc();
  }
  ReleaseCompactionSlot();
  return s;
}

void DBImpl::MaybeScheduleCompaction() {
  if (!options_.background_compactions) return;  // synchronous mode
  if (bg_compaction_scheduled_) return;          // one round in flight max
  if (shutting_down_.load(std::memory_order_acquire)) return;
  if (!BackgroundWorkAllowed()) return;  // fatal or degraded: work is paused
  // Rounds are flush-driven, with one exception: while an error episode is
  // retrying, the failed round must be re-queued even if its flush already
  // landed (the failure may have been mid-compaction).
  if (imm_ == nullptr &&
      bg_error_state_ != BackgroundErrorState::kRetrying) {
    return;
  }
  bg_compaction_scheduled_ = true;
  stats_.background_jobs_scheduled++;
  env_->Schedule(&DBImpl::BGWork, this);  // io: mutex-held -- thread handoff
                                          // only, no file I/O
}

void DBImpl::BGWork(void* db) { static_cast<DBImpl*>(db)->BackgroundCall(); }

void DBImpl::BackgroundCall() {
  MutexLock l(&mutex_);
  assert(bg_compaction_scheduled_);
  // If this round is an error retry, serve its backoff first, with the
  // mutex released (bg_compaction_scheduled_ stays true, so no second
  // round can be queued underneath the sleep). Jitterless by design:
  // fault-injection runs must be deterministic.
  const uint64_t backoff = retry_backoff_micros_;
  retry_backoff_micros_ = 0;
  if (backoff > 0 && !shutting_down_.load(std::memory_order_acquire)) {
    mutex_.Unlock();
    env_->SleepForMicroseconds(static_cast<int>(backoff));  // io: unlocked
    mutex_.Lock();
  }
  if (!shutting_down_.load(std::memory_order_acquire) &&
      BackgroundWorkAllowed()) {
    // Errors are recorded by the callees (advancing the error state
    // machine); a successful round while kRetrying ends the episode. The
    // status itself has no caller to return to.
    Status s = RunCompactions();
    if (s.ok()) ClearBackgroundError();
  }
  bg_compaction_scheduled_ = false;
  // The round above may have created new work (e.g. an L0->L1 merge that
  // overfilled L1), failed and scheduled a retry, or a writer may have
  // queued an imm_ meanwhile.
  MaybeScheduleCompaction();
  background_work_finished_signal_.SignalAll();
}

SequenceNumber DBImpl::SmallestSnapshot() const {
  return snapshots_.empty() ? versions_->LastSequence()
                            : snapshots_.oldest()->sequence_number();
}

Status DBImpl::MakeRoomForWrite(bool force) {
  assert(!writers_.empty());
  bool allow_delay = !force;
  Status s;
  while (true) {
    if (bg_error_state_ == BackgroundErrorState::kFatal) {
      s = bg_error_;
      break;
    }
    if (bg_error_state_ == BackgroundErrorState::kDegradedReadOnly) {
      // Degraded read-only (ENOSPC): probe inline -- if space has come
      // back this very write proceeds; otherwise it fails with NoSpace
      // while reads and iterators stay fully live.
      s = TryResumeFromNoSpace();
      if (!s.ok()) break;
      continue;
    }

    // A WAL append/sync failure leaves the wal::Writer's block arithmetic
    // possibly out of step with the file, so the next record must open a
    // fresh log -- retrying in place could emit records recovery
    // mis-parses. mem_'s live records may then span two logs; recovery
    // handles that (it replays every log >= the flush edit's swap-time log
    // number, in order), and the flush that eventually swaps mem_ retires
    // both.
    if (wal_rotation_pending_ && !options_.disable_wal) {
      // Async syncs still in flight target the outgoing file; drain them
      // before retiring it (their leaders are off the mutex in WaitFor).
      while (wal_syncs_inflight_ > 0) {
        wal_sync_done_.Wait();
      }
      if (logfile_ != nullptr) {
        // Make the old log's acked prefix durable before any ack can land
        // in its successor (the same rotation-gap argument as the swap
        // path below); this doubles as the retry of a failed sync.
        s = logfile_->Sync();
        if (!s.ok()) {
          // A failed rotation step re-enters the loop: the loop head
          // retries the rotation after backoff (kRetrying), probes for
          // space (kDegradedReadOnly), or stops for good (kFatal) -- the
          // retry budget bounds the iterations either way.
          RecordBackgroundError(s, ErrorSubsystem::kWalSync);
          if (bg_error_state_ == BackgroundErrorState::kFatal) break;
          (void)BackoffForRetry();
          continue;
        }
        s = logfile_->Close();
        if (!s.ok()) {
          RecordBackgroundError(s, ErrorSubsystem::kWalSync);
          if (bg_error_state_ == BackgroundErrorState::kFatal) break;
          (void)BackoffForRetry();
          continue;
        }
        log_.reset();
        logfile_.reset();
      }
      const uint64_t rotated_log_number = versions_->NewFileNumber();
      std::unique_ptr<WritableFile> nfile;
      // io: mutex-held -- WAL recovery rotation
      s = env_->NewWritableFile(LogFileName(dbname_, rotated_log_number),
                                &nfile);
      if (!s.ok()) {
        RecordBackgroundError(s, ErrorSubsystem::kWalSync);
        if (bg_error_state_ == BackgroundErrorState::kFatal) break;
        (void)BackoffForRetry();
        continue;
      }
      logfile_ = std::move(nfile);
      log_ = std::make_unique<wal::Writer>(logfile_.get());
      logfile_number_ = rotated_log_number;
      wal_rotation_pending_ = false;
      ClearBackgroundError();
      continue;
    }

    // Value-log head rotation: poisoned by an append/sync error (the
    // writer's arithmetic is untrusted, exactly like the WAL case above),
    // or simply past the segment size cap. Must complete before the next
    // leader's unlocked section can separate values.
    if ((vlog_rotation_pending_ && VlogEnabled()) ||
        (vlog_ != nullptr &&
         vlog_->offset() >= options_.vlog_segment_size)) {
      s = RotateVlogHead();
      if (!s.ok()) {
        RecordBackgroundError(s, ErrorSubsystem::kFlush);
        if (bg_error_state_ == BackgroundErrorState::kFatal) break;
        (void)BackoffForRetry();
        continue;
      }
    }

    // An empty memtable never flushes: it would emit no L0 file, and with a
    // write_buffer_size at the arena's block granularity a fresh (empty)
    // memtable can already sit at the usage threshold -- flushing it would
    // spin this loop forever.
    // Range tombstones live outside the skiplist, so "non-empty" means
    // point entries OR range tombstones (a range-only memtable must still
    // flush to an L0 file, or its tombstones would never age in the tree).
    const bool mem_nonempty =
        mem_->num_entries() > 0 || mem_->num_range_tombstones() > 0;
    bool flush;
    if (force) {
      flush = mem_nonempty;
    } else {
      flush = mem_nonempty &&
              mem_->ApproximateMemoryUsage() >= options_.write_buffer_size;
      // FADE also bounds how long a tombstone may sit in the *memtable*:
      // flush once the oldest buffered tombstone has consumed half of level
      // 0's TTL budget (the other half covers its L0 residency).
      //
      // This trigger is depth-dependent, and with rounds in flight the live
      // tree lags the synchronous schedule (DeepestNonEmptyLevel() may be
      // shallower than it would be in sync mode at this write position).
      // Depth is monotone under pending rounds and a deeper tree only
      // *shrinks* the L0 TTL, so: firing at the live depth is always
      // replay-exact, and not firing even at the maximum possible depth is
      // always replay-exact. Only the band in between is ambiguous -- drain
      // the pending rounds (the writer runs them inline, horizons captured,
      // so the work is identical) and re-evaluate against the fresh tree.
      if (!flush && planner_.delete_aware() &&
          (mem_->num_tombstones() > 0 || mem_->num_range_tombstones() > 0)) {
        const int depth = versions_->current()->DeepestNonEmptyLevel() + 1;
        // Range tombstones age on the same clock; the trigger fires on the
        // oldest buffered tombstone of either kind (the unset side reads
        // kMaxSequenceNumber, so min() ignores it).
        const SequenceNumber earliest_any =
            std::min(mem_->earliest_tombstone_seq(),
                     mem_->earliest_range_tombstone_seq());
        const uint64_t age = versions_->LastSequence() - earliest_any;
        if (age > planner_.LevelTtl(0, depth) / 2) {
          flush = true;
        } else if ((imm_ != nullptr || compaction_active_) &&
                   age > planner_.LevelTtl(0, options_.num_levels) / 2) {
          // (A scheduled-but-idle BGWork with no imm_ is a stale wakeup;
          // the tree is already current, so it is excluded above -- waiting
          // on it here would spin without releasing the mutex.)
          Status ds = RunCompactionsWithRetry();
          if (!ds.ok()) {
            s = ds;
            break;
          }
          background_work_finished_signal_.SignalAll();
          continue;  // decide against the now-current depth
        }
      }
    }

    if (allow_delay && options_.background_compactions &&
        versions_->NumLevelFiles(0) >=
            options_.level0_slowdown_writes_trigger) {
      // Soft backpressure: L0 is close to the stop trigger. Delay this
      // write group ~1ms (at most once) so the background worker gets CPU,
      // smearing the latency over many writes instead of stalling one
      // write for a whole compaction.
      const uint64_t t0 = SystemClock::NowMicros();
      mutex_.Unlock();
      env_->SleepForMicroseconds(1000);  // io: unlocked
      mutex_.Lock();
      stats_.stall_slowdown_writes++;
      stats_.stall_micros += SystemClock::NowMicros() - t0;
      allow_delay = false;  // do not delay a single write more than once
      MaybeScheduleCompaction();
      continue;
    }

    if (!flush) break;  // there is room in mem_

    if (imm_ != nullptr) {
      // The previous memtable is still being flushed.
      if (options_.background_compactions) {
        stats_.stall_memtable_waits++;
        const uint64_t t0 = SystemClock::NowMicros();
        MaybeScheduleCompaction();
        background_work_finished_signal_.Wait();
        stats_.stall_micros += SystemClock::NowMicros() - t0;
      } else {
        // Synchronous mode only reaches here via manual compaction paths
        // that left imm_ populated; flush it inline.
        s = RunCompactionsWithRetry();
        if (!s.ok()) break;
      }
      continue;
    }

    if (options_.background_compactions &&
        versions_->NumLevelFiles(0) >= options_.level0_stop_writes_trigger &&
        (bg_compaction_scheduled_ || compaction_active_)) {
      // Hard backpressure: block until the in-flight round thins out L0.
      // Only applied while a round is actually running -- if the planner
      // tolerates this many L0 files (its own trigger is configured higher)
      // there is nothing to wait for.
      stats_.stall_stop_writes++;
      const uint64_t t0 = SystemClock::NowMicros();
      background_work_finished_signal_.Wait();
      stats_.stall_micros += SystemClock::NowMicros() - t0;
      continue;
    }

    // Rotate the value-log head with the memtable: every pointer into the
    // segment being sealed lives in the outgoing memtable (or in already
    // flushed tables), never in the new one. This is the invariant vLog GC
    // relies on to prove a collectable segment is memtable-free -- a
    // segment only accrues garbage or pending purges after a compaction
    // drops one of its pointers, which requires this generation's flush to
    // have installed first. Runs before the WAL rotation so a failure here
    // retries without burning a log file per attempt.
    if (vlog_ != nullptr && vlog_->value_count() > 0) {
      s = RotateVlogHead();
      if (!s.ok()) {
        RecordBackgroundError(s, ErrorSubsystem::kFlush);
        if (bg_error_state_ == BackgroundErrorState::kFatal) break;
        (void)BackoffForRetry();
        continue;
      }
    }

    // Rotate the WAL and swap mem_ into the immutable slot. The new log
    // file must exist before any write lands in the new memtable, so this
    // one Env call stays under the mutex by design.
    //
    // Async group syncs submitted by earlier leaders may still be in flight
    // on the outgoing log file; destroying it under them would hand the
    // completion thread a dangling WritableFile. Drain them first (their
    // leaders are off the mutex in WaitFor, so this cannot deadlock).
    while (wal_syncs_inflight_ > 0) {
      wal_sync_done_.Wait();
    }
    const uint64_t new_log_number = versions_->NewFileNumber();
    std::unique_ptr<WritableFile> lfile;
    if (!options_.disable_wal) {
      if (logfile_ != nullptr) {
        // Sync the outgoing WAL before any write can land in its
        // successor: a Sync() ack in the new log must not outlive unsynced
        // records of the old one across a machine crash, or recovery would
        // replay a sequence with a hole in it (the classic rotation gap).
        s = logfile_->Sync();
        if (!s.ok()) {
          // Recording the error sets wal_rotation_pending_, so re-entering
          // the loop routes through the recovery-rotation block above,
          // which retries (with backoff), degrades, or goes fatal.
          RecordBackgroundError(s, ErrorSubsystem::kWalSync);
          if (bg_error_state_ == BackgroundErrorState::kFatal) break;
          (void)BackoffForRetry();
          continue;
        }
        // Close the outgoing log explicitly so a failed close surfaces
        // instead of being swallowed by the destructor at the move-assign
        // below. The synced prefix is already durable, but a close error
        // still marks the file handle unhealthy -- treat it like a sync
        // failure.
        s = logfile_->Close();
        if (!s.ok()) {
          RecordBackgroundError(s, ErrorSubsystem::kWalSync);
          if (bg_error_state_ == BackgroundErrorState::kFatal) break;
          (void)BackoffForRetry();
          continue;
        }
        log_.reset();
        logfile_.reset();
      }
      s = env_->NewWritableFile(LogFileName(dbname_, new_log_number),
                                &lfile);  // io: mutex-held -- WAL rotation
      if (!s.ok()) {
        RecordBackgroundError(s, ErrorSubsystem::kWalSync);
        if (bg_error_state_ == BackgroundErrorState::kFatal) break;
        (void)BackoffForRetry();
        continue;
      }
      logfile_ = std::move(lfile);
      log_ = std::make_unique<wal::Writer>(logfile_.get());
    }
    logfile_number_ = new_log_number;
    // The swap also satisfies any pending WAL-recovery rotation, and the
    // flush edit must retire exactly the logs older than *this* log --
    // capture it now; logfile_number_ itself may advance again (recovery
    // rotation) before the flush runs.
    wal_rotation_pending_ = false;
    pending_log_number_at_swap_ = new_log_number;
    imm_ = mem_;
    // Capture the replay horizon: the round that flushes this memtable
    // picks and drops as of now, no matter when it actually runs.
    pending_flush_horizon_ = versions_->LastSequence();
    // Journal checkpoint for the FADE clock: at this instant the new WAL is
    // empty, so the monitor's written count equals exactly the tombstones
    // in WALs older than new_log_number. The flush edit that retires those
    // WALs carries this value (the edit's log number is the swap-time
    // capture above, so a later WAL-recovery rotation cannot widen the set
    // of logs it retires).
    pending_written_at_swap_ = monitor_.WrittenCount();
    pending_range_written_at_swap_ = monitor_.RangeWrittenCount();
    if (planner_.delete_aware() &&
        (imm_->num_tombstones() > 0 || imm_->num_range_tombstones() > 0)) {
      // Until the flush installs, next_ttl_deadline_ cannot see the L0
      // file it will create; bound it conservatively so writers cannot
      // race past that deadline in the meantime. Adding an L0 file never
      // deepens the tree (DeepestNonEmptyLevel is 0 for an empty one), so
      // the current depth is the post-install depth.
      const int depth = versions_->current()->DeepestNonEmptyLevel() + 1;
      pending_ttl_floor_ =
          std::min(pending_ttl_floor_,
                   std::min(imm_->earliest_tombstone_seq(),
                            imm_->earliest_range_tombstone_seq()) +
                       planner_.CumulativeTtl(0, depth));
    }
    mem_ = new MemTable(internal_comparator_);
    mem_->Ref();
    stats_.memtable_swaps++;
    // Publish {new mem_, imm_, current} before the leader's batch lands in
    // the new memtable: a reader acquiring the pre-swap state still covers
    // every acked sequence (the swapped memtable is its mem), and readers
    // from here on see the swap atomically.
    PublishReadState();
    force = false;  // the swap satisfied the forced flush
    if (options_.background_compactions) {
      MaybeScheduleCompaction();
    } else {
      // Synchronous mode: flush + compactions complete before the write
      // proceeds, preserving the deterministic pre-pipeline behaviour.
      s = RunCompactionsWithRetry();
      if (!s.ok()) break;
    }
  }
  return s;
}

void DBImpl::ComputeNextTtlDeadline() {
  next_ttl_deadline_ = UINT64_MAX;
  if (!planner_.delete_aware()) return;
  Version* v = versions_->current();
  const int depth = v->DeepestNonEmptyLevel() + 1;
  for (int level = 0; level < kNumLevels; level++) {
    for (FileMetaData* f : v->files(level)) {
      if (!f->has_tombstones() && !f->has_range_tombstones()) continue;
      // Oldest tombstone of either kind: the unset side reads
      // kMaxSequenceNumber, so min() ignores it.
      const SequenceNumber earliest = std::min(
          f->earliest_tombstone_seq, f->earliest_range_tombstone_seq);
      const uint64_t deadline =
          earliest + planner_.CumulativeTtl(level, depth);
      next_ttl_deadline_ = std::min(next_ttl_deadline_, deadline);
    }
  }
}

Status DBImpl::MaybeCompact(SequenceNumber horizon) {
  assert(compaction_active_);
  // Run compactions until the planner is satisfied. The loop
  // terminates because every compaction either reduces the trigger that
  // caused it (run counts, level sizes) or eliminates expired tombstones.
  // Snapshots can only pin the horizon below the round's captured value.
  const SequenceNumber effective = std::min(horizon, SmallestSnapshot());
  // A retrying episode resumes the loop (that is the retry); only a fatal
  // or degraded state refuses to run.
  Status s = BackgroundWorkAllowed() ? Status::OK() : bg_error_;
  int safety = 0;
  while (s.ok()) {
    if (++safety > 10000) {
      s = Status::Corruption("compaction loop failed to converge");
      RecordBackgroundError(s, ErrorSubsystem::kCompaction);
      break;
    }
    if (shutting_down_.load(std::memory_order_acquire)) break;
    std::unique_ptr<Compaction> c(
        versions_->PickCompaction(planner_, effective));
    if (c == nullptr) break;

    stats_.compaction_count++;
    size_t reason_idx = static_cast<size_t>(c->reason());
    if (reason_idx < stats_.compactions_by_reason.size()) {
      stats_.compactions_by_reason[reason_idx]++;
    }

    if (c->IsTrivialMove()) {
      // Move file to next level
      assert(c->num_input_files(0) == 1);
      FileMetaData* f = c->input(0, 0);
      c->edit()->RemoveFile(c->level(), f->number);
      FileMetaData moved = *f;
      moved.refs = 0;
      c->edit()->AddFile(c->output_level(), moved);
      s = versions_->LogAndApply(c->edit(), &mutex_);
      if (!s.ok()) {
        RecordBackgroundError(s, ErrorSubsystem::kManifest);
      } else {
        PublishReadState();
      }
      stats_.trivial_move_count++;
    } else {
      CompactionState* compact = new CompactionState(c.get());
      s = DoCompactionWork(compact, horizon);
      if (!s.ok()) {
        RecordBackgroundError(s, ErrorSubsystem::kCompaction);
      }
      CleanupCompaction(compact);
      c->ReleaseInputs();
      RemoveObsoleteFiles();
    }
  }
  ComputeNextTtlDeadline();
  return s;
}

Status DBImpl::OpenCompactionOutputFile(CompactionState* compact) {
  assert(compact != nullptr);
  assert(compact->builder == nullptr);
  uint64_t file_number;
  {
    // Called from the unlocked merge loop: take the mutex only for the
    // number allocation and GC protection.
    MutexLock l(&mutex_);
    file_number = versions_->NewFileNumber();
    pending_outputs_.insert(file_number);
    CompactionState::Output out;
    out.number = file_number;
    out.smallest.Clear();
    out.largest.Clear();
    compact->outputs.push_back(out);
  }

  std::string fname = TableFileName(dbname_, file_number);
  Status s = env_->NewWritableFile(fname, &compact->outfile);  // io: unlocked
  if (s.ok()) {
    compact->builder = std::make_unique<TableBuilder>(options_,
                                                      compact->outfile.get());
  }
  return s;
}

Status DBImpl::FinishCompactionOutputFile(CompactionState* compact,
                                          Iterator* input) {
  assert(compact != nullptr);
  assert(compact->outfile != nullptr);
  assert(compact->builder != nullptr);

  const uint64_t output_number = compact->current_output()->number;
  assert(output_number != 0);

  // Check for iterator errors
  Status s = input->status();
  const uint64_t current_entries = compact->builder->NumEntries();

  // Mirror tombstone metadata into the table's properties block.
  CompactionState::Output* out = compact->current_output();
  TableProperties* props = compact->builder->mutable_properties();
  props->num_tombstones = out->num_tombstones;
  props->earliest_tombstone_time = out->earliest_tombstone_seq;
  props->earliest_tombstone_wall_micros = out->earliest_tombstone_wall_micros;
  // AddRangeTombstone maintains the count/seq/span properties itself; only
  // the inherited wall stamp needs mirroring.
  if (out->num_range_tombstones > 0) {
    props->earliest_range_tombstone_wall_micros =
        out->earliest_range_tombstone_wall_micros;
  }
  props->min_secondary_key = out->min_secondary_key;
  props->max_secondary_key = out->max_secondary_key;

  if (s.ok()) {
    s = compact->builder->Finish();
  } else {
    compact->builder->Abandon();
  }
  const uint64_t current_bytes = compact->builder->FileSize();
  out->file_size = current_bytes;
  out->num_entries = current_entries;
  compact->total_bytes += current_bytes;
  compact->builder.reset();

  // Finish and check for file errors. Always sync: like flushed L0 tables,
  // compaction outputs become live via a synced manifest record and must
  // not be torn behind it after a crash.
  if (s.ok()) {
    s = compact->outfile->Sync();
  }
  if (s.ok()) {
    s = compact->outfile->Close();
  } else {
    // The output is already doomed (iterator, build, or sync error) and
    // will be removed; close deliberately -- the dropped status is a
    // conscious choice, not a silent one in the destructor.
    (void)compact->outfile->Close();  // io: unlocked -- abandoned output
  }
  compact->outfile.reset();

  if (s.ok() && current_entries == 0 && out->num_range_tombstones == 0) {
    // An empty output: delete it and forget it. (A file holding only range
    // tombstones is NOT empty -- dropping it would resurrect covered keys.)
    (void)env_->RemoveFile(
        TableFileName(dbname_, output_number));  // io: unlocked
    MutexLock l(&mutex_);
    pending_outputs_.erase(output_number);
    compact->outputs.pop_back();
  }
  return s;
}

Status DBImpl::InstallCompactionResults(CompactionState* compact) {
  // Add compaction outputs
  compact->compaction->AddInputDeletions(compact->compaction->edit());
  const int output_level = compact->compaction->output_level();
  for (size_t i = 0; i < compact->outputs.size(); i++) {
    const CompactionState::Output& out = compact->outputs[i];
    FileMetaData meta;
    meta.number = out.number;
    meta.file_size = out.file_size;
    meta.smallest = out.smallest;
    meta.largest = out.largest;
    meta.num_entries = out.num_entries;
    meta.num_tombstones = out.num_tombstones;
    meta.earliest_tombstone_seq = out.earliest_tombstone_seq;
    meta.earliest_tombstone_wall_micros = out.earliest_tombstone_wall_micros;
    meta.num_range_tombstones = out.num_range_tombstones;
    meta.earliest_range_tombstone_seq = out.earliest_range_tombstone_seq;
    meta.earliest_range_tombstone_wall_micros =
        out.earliest_range_tombstone_wall_micros;
    meta.range_del_begin = out.range_del_begin;
    meta.range_del_end = out.range_del_end;
    meta.min_secondary_key = out.min_secondary_key;
    meta.max_secondary_key = out.max_secondary_key;
    meta.min_vlog_segment = out.min_vlog_segment;
    meta.max_vlog_segment = out.max_vlog_segment;
    meta.run_id = out.number;
    compact->compaction->edit()->AddFile(output_level, meta);
  }
  Status s = versions_->LogAndApply(compact->compaction->edit(), &mutex_);
  if (s.ok()) {
    RecordDeadTableLevels(*compact->compaction->edit());
  }
  return s;
}

namespace {
// Keeps the next chunks of the compaction's input files in flight while the
// merge loop drains the current ones. The chunk reads go through the Env's
// asynchronous submission path and their bytes are discarded: the value is
// the overlapped IO / warmed page cache ahead of the table iterators, not
// the data. Reads are non-mutating, so the crash matrix's op numbering and
// synced-prefix guarantees are untouched.
class CompactionPrefetcher {
 public:
  static constexpr size_t kChunkSize = 256 * 1024;
  static constexpr size_t kMaxInflight = 4;

  CompactionPrefetcher(Env* env, const std::string& dbname, Compaction* c)
      : env_(env) {
    for (int which = 0; which < 2; which++) {
      for (int i = 0; i < c->num_input_files(which); i++) {
        const FileMetaData* f = c->input(which, i);
        if (f->file_size == 0) continue;
        Input in;
        in.size = f->file_size;
        // The input version is pinned for the whole compaction, so the
        // file cannot be unlinked while this handle is open. A failed open
        // just means no read-ahead for that file.
        if (env_->NewRandomAccessFile(TableFileName(dbname, f->number),
                                      &in.file)  // io: unlocked
                .ok()) {
          inputs_.push_back(std::move(in));
        }
      }
    }
    for (Slot& slot : slots_) {
      slot.buf = std::make_unique<char[]>(kChunkSize);
    }
    Pump();
  }

  CompactionPrefetcher(const CompactionPrefetcher&) = delete;
  CompactionPrefetcher& operator=(const CompactionPrefetcher&) = delete;

  ~CompactionPrefetcher() {
    // Every slot's reads must have posted before the files close.
    for (Slot& slot : slots_) {
      slot.cq.WaitFor(slot.submits);
    }
  }

  // Top the in-flight window back up to kMaxInflight. Non-blocking: a slot
  // is reusable only once its previous read posted (checked through the
  // slot's own completion count), so the merge loop never waits here.
  void Pump() {
    for (Slot& slot : slots_) {
      if (cur_ >= inputs_.size()) return;  // all input bytes staged
      if (slot.cq.completed() < slot.submits) continue;  // still in flight
      Input& in = inputs_[cur_];
      slot.req = ReadRequest();
      slot.req.file = in.file.get();
      slot.req.offset = offset_;
      slot.req.n = static_cast<size_t>(
          std::min<uint64_t>(kChunkSize, in.size - offset_));
      slot.req.scratch = slot.buf.get();
      ReadRequest* r = &slot.req;
      env_->SubmitReads(&r, 1, &slot.cq);  // io: unlocked
      slot.submits++;
      offset_ += slot.req.n;
      if (offset_ >= in.size) {
        offset_ = 0;
        cur_++;
      }
    }
  }

 private:
  struct Input {
    std::unique_ptr<RandomAccessFile> file;
    uint64_t size = 0;
  };
  struct Slot {
    std::unique_ptr<char[]> buf;
    ReadRequest req;
    CompletionQueue cq;
    uint64_t submits = 0;
  };

  Env* const env_;
  std::vector<Input> inputs_;
  Slot slots_[kMaxInflight];
  size_t cur_ = 0;       // index into inputs_ of the next chunk's file
  uint64_t offset_ = 0;  // next chunk offset within inputs_[cur_]
};
}  // namespace

Status DBImpl::DoCompactionWork(CompactionState* compact,
                                SequenceNumber horizon) {
  assert(compaction_active_);
  assert(versions_->NumLevelFiles(compact->compaction->level()) > 0);
  assert(compact->builder == nullptr);
  assert(compact->outfile == nullptr);

  // Both the drop horizon and the monitor's "persisted at" clock use the
  // round's captured horizon so a background round records exactly what a
  // synchronous one would have.
  compact->smallest_snapshot = std::min(horizon, SmallestSnapshot());
  stats_.compaction_bytes_read += compact->compaction->TotalInputBytes();
  const SequenceNumber now_seq = horizon;

  Iterator* input = versions_->MakeInputIterator(compact->compaction);

  // The merge loop runs with the mutex released: the input version is
  // pinned, output numbers are in pending_outputs_, and the compaction
  // slot keeps rival compactions out. Guarded counters are accumulated
  // locally and folded back in after relocking.
  mutex_.Unlock();
  auto prefetcher = std::make_unique<CompactionPrefetcher>(
      env_, dbname_, compact->compaction);

  // Range tombstones ride in dedicated blocks, not the merged key stream:
  // load every input file's raw tombstones up front. Queried at
  // smallest_snapshot, their fragmented union drives covered-entry drops
  // inside the merge loop; the tombstones' own disposition is decided after
  // it. The input version is pinned, so the reads are safe off the mutex.
  std::vector<RangeTombstone> input_range_dels;
  Status range_status;
  for (int which = 0; which < 2 && range_status.ok(); which++) {
    for (int i = 0; i < compact->compaction->num_input_files(which); i++) {
      const FileMetaData* f = compact->compaction->input(which, i);
      if (!f->has_range_tombstones()) continue;
      range_status = table_cache_->GetRangeTombstones(
          f->number, f->file_size, &input_range_dels);  // io: unlocked
      if (!range_status.ok()) break;
    }
  }
  FragmentedRangeTombstoneList range_cover;
  if (!input_range_dels.empty()) {
    range_cover.Build(internal_comparator_.user_comparator(),
                      input_range_dels);
  }

  uint64_t merge_steps = 0;
  uint64_t shadowed_dropped = 0;
  uint64_t tombstones_dropped = 0;
  // Monitor deltas are accumulated locally and journaled on the compaction's
  // version edit; the live monitor advances only after the edit durably
  // installs, so the journal and the monitor move in lock step and recovery
  // replays the identical Merge sequence (bit-identical percentiles).
  uint64_t persisted_delta = 0;
  uint64_t superseded_delta = 0;
  Histogram latency_delta;
  uint64_t range_persisted_delta = 0;
  Histogram range_latency_delta;
  // Per-segment vLog charges for pointer entries this compaction drops:
  // garbage bytes always; additionally a pending purge (the FADE clock for
  // value bytes) when the drop is deletion-driven. Journaled as kVlogDelta
  // on the compaction's edit, same install discipline as the monitor
  // deltas above.
  std::map<uint64_t, vlog::SegmentDelta> vlog_deltas;

  input->SeekToFirst();
  Status status = range_status;
  ParsedInternalKey ikey;
  std::string current_user_key;
  bool has_current_user_key = false;
  SequenceNumber last_sequence_for_key = kMaxSequenceNumber;
  ValueType last_type_for_key = kTypeValue;

  while (status.ok() && input->Valid()) {
    // A memtable swapped out mid-merge stays queued until this round ends:
    // flushing it here would install its L0 file between this round's
    // picks, diverging from the synchronous schedule (which flushes only
    // at round boundaries). BackgroundCall reschedules for it.
    if ((merge_steps++ & 63) == 0) {
      // Keep the next input blocks in flight while this one merges.
      prefetcher->Pump();
    }
    Slice key = input->key();
    bool drop = false;
    if (!ParseInternalKey(key, &ikey)) {
      // Do not hide error keys
      current_user_key.clear();
      has_current_user_key = false;
      last_sequence_for_key = kMaxSequenceNumber;
      last_type_for_key = kTypeValue;
    } else {
      if (!has_current_user_key ||
          internal_comparator_.user_comparator()->Compare(
              ikey.user_key, Slice(current_user_key)) != 0) {
        // First occurrence of this user key
        current_user_key.assign(ikey.user_key.data(), ikey.user_key.size());
        has_current_user_key = true;
        last_sequence_for_key = kMaxSequenceNumber;
        last_type_for_key = kTypeValue;
      }

      bool deletion_driven = false;
      if (last_sequence_for_key <= compact->smallest_snapshot) {
        // Hidden by an newer entry for same user key
        drop = true;  // (A)
        shadowed_dropped++;
        if (ikey.type == kTypeDeletion) {
          // A newer write replaced this tombstone before it could persist.
          superseded_delta++;
        }
        // A pointer hidden by a *tombstone* is a deleted value: its bytes
        // join the segment's pending-purge clock. Hidden by a newer value
        // it is mere overwrite garbage (space trigger only).
        deletion_driven = (last_type_for_key == kTypeDeletion);
      } else if (ikey.type == kTypeDeletion &&
                 ikey.sequence <= compact->smallest_snapshot &&
                 compact->compaction->IsBaseLevelForKey(ikey.user_key)) {
        // For this user key:
        // (1) there is no data in higher levels
        // (2) data in lower levels will have larger sequence numbers
        // (3) data in layers that are being compacted here and have
        //     smaller sequence numbers will be dropped in the next
        //     few iterations of this loop (by rule (A) above).
        // Therefore this deletion marker is obsolete and can be dropped:
        // the delete is now *persistent*.
        drop = true;
        tombstones_dropped++;
        persisted_delta++;
        latency_delta.Add(static_cast<double>(
            now_seq >= ikey.sequence ? now_seq - ikey.sequence : 0));
      } else if (!input_range_dels.empty() &&
                 range_cover.MaxCoveringSeq(ikey.user_key,
                                            compact->smallest_snapshot) >
                     ikey.sequence) {
        // Covered by a range tombstone visible to every live snapshot: no
        // reader can observe this entry again. A covered point tombstone is
        // superseded -- the range tombstone took over its job (and keeps
        // shadowing deeper levels until it drops itself).
        drop = true;
        shadowed_dropped++;
        if (ikey.type == kTypeDeletion) {
          superseded_delta++;
        }
        // Range-covered values are deletion-driven by definition.
        deletion_driven = true;
      }

      if (drop && ikey.type == kTypeValuePointer) {
        vlog::ValuePointer ptr;
        if (vlog::DecodeValuePointerStrict(input->value(), &ptr)) {
          vlog::SegmentDelta& d = vlog_deltas[ptr.segment];
          d.number = ptr.segment;
          d.garbage_bytes += ptr.size;
          d.dead_count++;
          if (deletion_driven) {
            // Key purge happens when this edit installs; stamp the round's
            // horizon as the purge time (one clock for the whole round,
            // so background and synchronous schedules agree).
            d.purge_count++;
            d.purge_seq = now_seq;
          }
        }
      }

      last_sequence_for_key = ikey.sequence;
      last_type_for_key = ikey.type;
    }

    if (!drop) {
      // Open output file if necessary
      if (compact->builder == nullptr) {
        status = OpenCompactionOutputFile(compact);
        if (!status.ok()) {
          break;
        }
      }
      CompactionState::Output* out = compact->current_output();
      if (compact->builder->NumEntries() == 0) {
        out->smallest.DecodeFrom(key);
      }
      out->largest.DecodeFrom(key);
      compact->builder->Add(key, input->value(), ExtractUserKey(key));

      // Maintain Acheron per-output metadata.
      if (ikey.type == kTypeDeletion) {
        out->num_tombstones++;
        if (ikey.sequence < out->earliest_tombstone_seq) {
          out->earliest_tombstone_seq = ikey.sequence;
          // Approximate: inherit the earliest wall stamp among inputs.
          for (int which = 0; which < 2; which++) {
            for (int i = 0; i < compact->compaction->num_input_files(which);
                 i++) {
              out->earliest_tombstone_wall_micros =
                  std::min(out->earliest_tombstone_wall_micros,
                           compact->compaction->input(which, i)
                               ->earliest_tombstone_wall_micros);
            }
          }
        }
      } else if (ikey.type == kTypeValuePointer) {
        // The extractor must never run on a pointer payload; track the
        // segment span instead (liveness for RemoveObsoleteFiles).
        vlog::FoldVlogSpan(input->value(), &out->min_vlog_segment,
                           &out->max_vlog_segment);
      } else if (options_.secondary_key_extractor) {
        std::string sec = options_.secondary_key_extractor(ikey.user_key,
                                                           input->value());
        if (!sec.empty()) {
          if (out->min_secondary_key.empty() || sec < out->min_secondary_key) {
            out->min_secondary_key = sec;
          }
          if (out->max_secondary_key.empty() || sec > out->max_secondary_key) {
            out->max_secondary_key = sec;
          }
        }
      }

      // Close output file if it is big enough
      if (compact->builder->FileSize() >=
          compact->compaction->MaxOutputFileSize()) {
        status = FinishCompactionOutputFile(compact, input);
        if (!status.ok()) {
          break;
        }
      }
    }

    input->Next();
  }

  // Decide the fate of every input range tombstone. [b,e)@S drops -- the
  // range delete becomes persistent -- only when every live snapshot sees
  // it (S <= smallest_snapshot) and no file OUTSIDE this compaction
  // overlaps its span at any level: entries it covers that are not merged
  // here would otherwise resurrect. (Memtable data is always newer than a
  // flushed tombstone, so only files can resurrect.) Survivors are carried
  // forward into the last output.
  if (status.ok() && !input_range_dels.empty()) {
    const Comparator* ucmp = internal_comparator_.user_comparator();
    const Version* base = compact->compaction->input_version();
    std::set<uint64_t> input_numbers;
    for (int which = 0; which < 2; which++) {
      for (int i = 0; i < compact->compaction->num_input_files(which); i++) {
        input_numbers.insert(compact->compaction->input(which, i)->number);
      }
    }
    auto blocked = [&](const RangeTombstone& t) {
      for (int level = 0; level < kNumLevels; level++) {
        for (const FileMetaData* g : base->files(level)) {
          if (input_numbers.count(g->number) != 0) continue;
          if (ucmp->Compare(g->smallest.user_key(), Slice(t.end)) < 0 &&
              ucmp->Compare(g->largest.user_key(), Slice(t.begin)) >= 0) {
            return true;
          }
        }
      }
      return false;
    };
    std::vector<RangeTombstone> survivors;
    for (const RangeTombstone& t : input_range_dels) {
      if (t.seq <= compact->smallest_snapshot && !blocked(t)) {
        range_persisted_delta++;
        range_latency_delta.Add(
            static_cast<double>(now_seq >= t.seq ? now_seq - t.seq : 0));
      } else {
        survivors.push_back(t);
      }
    }
    if (!survivors.empty()) {
      const bool fresh_output = compact->builder == nullptr;
      if (fresh_output) {
        status = OpenCompactionOutputFile(compact);
      }
      if (status.ok()) {
        CompactionState::Output* out = compact->current_output();
        for (const RangeTombstone& t : survivors) {
          compact->builder->AddRangeTombstone(t.begin, t.end, t.seq, ucmp);
          out->num_range_tombstones++;
          out->earliest_range_tombstone_seq =
              std::min(out->earliest_range_tombstone_seq, t.seq);
          if (out->range_del_begin.empty() ||
              ucmp->Compare(Slice(t.begin), Slice(out->range_del_begin)) < 0) {
            out->range_del_begin = t.begin;
          }
          if (out->range_del_end.empty() ||
              ucmp->Compare(Slice(t.end), Slice(out->range_del_end)) > 0) {
            out->range_del_end = t.end;
          }
        }
        // Oldest wall stamp among the inputs that contributed tombstones.
        for (int which = 0; which < 2; which++) {
          for (int i = 0; i < compact->compaction->num_input_files(which);
               i++) {
            const FileMetaData* f = compact->compaction->input(which, i);
            if (f->has_range_tombstones()) {
              out->earliest_range_tombstone_wall_micros =
                  std::min(out->earliest_range_tombstone_wall_micros,
                           f->earliest_range_tombstone_wall_micros);
            }
          }
        }
        if (fresh_output) {
          // A range-tombstone-only output has no point entries to derive
          // bounds from. Clamp to the union internal-key range of the
          // inputs: the compaction owns that region at the output level
          // (SetupOtherInputs pulled in every overlapping file, and the
          // planner's same-level widening keeps its input run contiguous),
          // so sorted-level disjointness holds. If earlier outputs already
          // cover a prefix of the region, start just past the last one --
          // same user key at the next-lower sequence sorts strictly after,
          // and that exact (key, seq) pair exists nowhere else.
          InternalKey lo, hi;
          bool first = true;
          for (int which = 0; which < 2; which++) {
            for (int i = 0; i < compact->compaction->num_input_files(which);
                 i++) {
              const FileMetaData* f = compact->compaction->input(which, i);
              if (first || internal_comparator_.Compare(
                               f->smallest.Encode(), lo.Encode()) < 0) {
                lo = f->smallest;
              }
              if (first || internal_comparator_.Compare(
                               f->largest.Encode(), hi.Encode()) > 0) {
                hi = f->largest;
              }
              first = false;
            }
          }
          if (compact->outputs.size() > 1) {
            const CompactionState::Output& prev =
                compact->outputs[compact->outputs.size() - 2];
            ParsedInternalKey pk;
            if (ParseInternalKey(prev.largest.Encode(), &pk)) {
              lo = InternalKey(pk.user_key,
                               pk.sequence > 0 ? pk.sequence - 1 : 0,
                               pk.type);
              if (internal_comparator_.Compare(hi.Encode(), lo.Encode()) <
                  0) {
                hi = lo;
              }
            }
          }
          out->smallest = lo;
          out->largest = hi;
        }
      }
    }
  }

  if (status.ok() && compact->builder != nullptr) {
    status = FinishCompactionOutputFile(compact, input);
  }
  if (status.ok()) {
    status = input->status();
  }
  delete input;
  input = nullptr;
  // Drain the read-ahead window (and close its file handles) while still
  // off the mutex; the waits must not run under the lock.
  prefetcher.reset();

  mutex_.Lock();
  stats_.compaction_bytes_written += compact->total_bytes;
  stats_.entries_shadowed_dropped += shadowed_dropped;
  stats_.tombstones_dropped_bottom += tombstones_dropped;

  if (status.ok()) {
    if (persisted_delta > 0 || superseded_delta > 0) {
      compact->compaction->edit()->SetMonitorDelta(
          persisted_delta, superseded_delta, latency_delta);
    }
    if (range_persisted_delta > 0) {
      compact->compaction->edit()->SetMonitorRangeDelta(
          range_persisted_delta, 0, range_latency_delta);
    }
    for (const auto& entry : vlog_deltas) {
      compact->compaction->edit()->AddVlogDelta(entry.second);
    }
    status = InstallCompactionResults(compact);
    if (status.ok()) {
      PublishReadState();
    }
    if (status.ok() && (persisted_delta > 0 || superseded_delta > 0)) {
      // The edit carrying this delta is durable; now (and only now) fold it
      // into the live monitor so journal and monitor agree at every crash
      // point.
      monitor_.ApplyDelta(persisted_delta, superseded_delta, latency_delta);
    }
    if (status.ok() && range_persisted_delta > 0) {
      monitor_.ApplyRangeDelta(range_persisted_delta, 0, range_latency_delta);
    }
  }
  return status;
}

void DBImpl::CleanupCompaction(CompactionState* compact) {
  if (compact->builder != nullptr) {
    // May happen if we get a shutdown call in the middle of compaction
    compact->builder->Abandon();
    compact->builder.reset();
  }
  if (compact->outfile != nullptr) {
    // An in-progress output that was never installed (error or shutdown
    // mid-compaction); close deliberately -- the dropped status is a
    // conscious choice, not a silent one in the destructor.
    (void)compact->outfile->Close();  // io: mutex-held -- abandoned output
    compact->outfile.reset();
  }
  for (size_t i = 0; i < compact->outputs.size(); i++) {
    const CompactionState::Output& out = compact->outputs[i];
    pending_outputs_.erase(out.number);
  }
  delete compact;
}

// ---------------- Background-error state machine ----------------
//
// All transitions run under mutex_ and only through the three functions
// below (tools/acheron_check.py enforces the locking half of that).

void DBImpl::RecordBackgroundError(const Status& s, ErrorSubsystem subsystem) {
  assert(!s.ok());
  if (bg_error_state_ == BackgroundErrorState::kFatal) {
    return;  // terminal; keep the first fatal error
  }
  bg_error_ = s;
  bg_error_subsystem_ = subsystem;
  if (subsystem == ErrorSubsystem::kWalSync) {
    // Whatever happens next, the wal::Writer's block arithmetic may have
    // diverged from the file; the next record must open a fresh log.
    wal_rotation_pending_ = true;
  }
  if (s.IsCorruption() || options_.max_background_retries <= 0) {
    // Corruption never retries (re-running the same work re-reads the same
    // bad bytes); retries disabled reproduces the old sticky behavior.
    bg_error_state_ = BackgroundErrorState::kFatal;
    stats_.errors_fatal++;
  } else if (s.IsNoSpace()) {
    // Space exhaustion: no retry budget to burn -- writing cannot succeed
    // until space returns. Degrade to read-only and watch for space.
    stats_.errors_transient++;
    bg_error_state_ = BackgroundErrorState::kDegradedReadOnly;
    MaybeStartSpaceWatcher();
  } else {
    stats_.errors_transient++;
    // WAL and MANIFEST failures escalate twice as fast: they sit on the
    // durability path of *acked* writes, where burning the full budget
    // means a long window of un-synced acks.
    const int cost = (subsystem == ErrorSubsystem::kWalSync ||
                      subsystem == ErrorSubsystem::kManifest)
                         ? 2
                         : 1;
    bg_error_attempts_ += cost;
    if (bg_error_attempts_ > options_.max_background_retries) {
      bg_error_state_ = BackgroundErrorState::kFatal;
      stats_.errors_fatal++;
    } else {
      bg_error_state_ = BackgroundErrorState::kRetrying;
      // Exponential, jitterless (deterministic under fault injection),
      // capped so a large budget cannot produce absurd sleeps.
      const int shift = std::min(bg_error_attempts_ - 1, 20);
      retry_backoff_micros_ =
          std::min<uint64_t>(options_.retry_backoff_base_micros << shift,
                             10 * 1000 * 1000);
    }
  }
  // FADE health: a background failure stalls the very compactions the
  // delete-persistence bound depends on. Flag the monitor when a tombstone
  // TTL deadline is already due while the engine is erroring; the property
  // and delete-stats surface it as dth_at_risk.
  const uint64_t deadline = std::min(next_ttl_deadline_, pending_ttl_floor_);
  if (deadline != UINT64_MAX && versions_->LastSequence() >= deadline) {
    monitor_.SetDthAtRisk(true);
  }
}

void DBImpl::ClearBackgroundError() {
  if (bg_error_state_ != BackgroundErrorState::kRetrying) {
    return;  // nothing in flight, or a state only Resume/space can clear
  }
  bg_error_state_ = BackgroundErrorState::kOk;
  bg_error_ = Status::OK();
  bg_error_attempts_ = 0;
  retry_backoff_micros_ = 0;
  stats_.errors_retried++;
  monitor_.SetDthAtRisk(false);
}

Status DBImpl::RunCompactionsWithRetry() {
  Status s = RunCompactions();
  while (!s.ok() && bg_error_state_ == BackgroundErrorState::kRetrying &&
         !shutting_down_.load(std::memory_order_acquire)) {
    const uint64_t backoff = retry_backoff_micros_;
    retry_backoff_micros_ = 0;
    if (backoff > 0) {
      mutex_.Unlock();
      env_->SleepForMicroseconds(static_cast<int>(backoff));  // io: unlocked
      mutex_.Lock();
    }
    s = RunCompactions();
  }
  if (s.ok()) {
    ClearBackgroundError();
  }
  return s;
}

bool DBImpl::BackoffForRetry() {
  if (bg_error_state_ != BackgroundErrorState::kRetrying) return false;
  const uint64_t backoff = retry_backoff_micros_;
  retry_backoff_micros_ = 0;
  if (backoff > 0 && !shutting_down_.load(std::memory_order_acquire)) {
    mutex_.Unlock();
    env_->SleepForMicroseconds(static_cast<int>(backoff));  // io: unlocked
    mutex_.Lock();
  }
  return bg_error_state_ == BackgroundErrorState::kRetrying;
}

Status DBImpl::TryResumeFromNoSpace() {
  if (bg_error_state_ != BackgroundErrorState::kDegradedReadOnly) {
    return bg_error_state_ == BackgroundErrorState::kFatal ? bg_error_
                                                           : Status::OK();
  }
  if (resume_probe_active_) {
    // Another thread's probe is in flight (its I/O dropped the mutex);
    // report still-degraded rather than stacking probes.
    return bg_error_;
  }
  resume_probe_active_ = true;
  const std::string probe_name = dbname_ + "/SPACE_PROBE";
  mutex_.Unlock();
  Status probe;
  {
    std::unique_ptr<WritableFile> f;
    probe = env_->NewWritableFile(probe_name, &f);  // io: unlocked -- probe
    if (probe.ok()) probe = f->Append("acheron-space-probe");
    if (probe.ok()) probe = f->Sync();
    if (probe.ok()) probe = f->Close();
  }
  // Best-effort: under real ENOSPC unlink still works and keeps the probe
  // from occupying the space it just proved exists.
  (void)env_->RemoveFile(probe_name);  // io: unlocked -- probe cleanup
  mutex_.Lock();
  resume_probe_active_ = false;
  if (!probe.ok()) {
    return bg_error_;  // still out of space (or worse); stay degraded
  }
  if (bg_error_state_ == BackgroundErrorState::kDegradedReadOnly) {
    bg_error_state_ = BackgroundErrorState::kOk;
    bg_error_ = Status::OK();
    bg_error_attempts_ = 0;
    retry_backoff_micros_ = 0;
    stats_.resume_count++;
    monitor_.SetDthAtRisk(false);
    // Anything that stalled while degraded (a pending imm_, planner debt)
    // resumes now.
    MaybeScheduleCompaction();
    background_work_finished_signal_.SignalAll();
  }
  return Status::OK();
}

void DBImpl::MaybeStartSpaceWatcher() {
  if (options_.space_probe_interval_micros == 0) return;
  if (space_watcher_scheduled_) return;
  if (shutting_down_.load(std::memory_order_acquire)) return;
  space_watcher_scheduled_ = true;
  // io: mutex-held -- thread handoff only, no file I/O
  env_->Schedule(&DBImpl::SpaceWatcherWork, this);
}

void DBImpl::SpaceWatcherWork(void* db) {
  static_cast<DBImpl*>(db)->SpaceWatcherCall();
}

void DBImpl::SpaceWatcherCall() {
  // Sleep in small chunks so shutdown is never held up by a long interval.
  uint64_t remaining = options_.space_probe_interval_micros;
  while (remaining > 0 && !shutting_down_.load(std::memory_order_acquire)) {
    const uint64_t chunk = std::min<uint64_t>(remaining, 10 * 1000);
    env_->SleepForMicroseconds(static_cast<int>(chunk));  // io: unlocked
    remaining -= chunk;
  }
  MutexLock l(&mutex_);
  if (!shutting_down_.load(std::memory_order_acquire) &&
      bg_error_state_ == BackgroundErrorState::kDegradedReadOnly) {
    (void)TryResumeFromNoSpace();  // on failure we simply watch again
  }
  if (!shutting_down_.load(std::memory_order_acquire) &&
      bg_error_state_ == BackgroundErrorState::kDegradedReadOnly) {
    // Still degraded: keep watching. The scheduled flag stays set across
    // the handoff so the destructor keeps waiting for us.
    // io: mutex-held -- thread handoff only, no file I/O
    env_->Schedule(&DBImpl::SpaceWatcherWork, this);
    return;
  }
  space_watcher_scheduled_ = false;
  background_work_finished_signal_.SignalAll();
}

Status DBImpl::Resume() {
  MutexLock l(&mutex_);
  switch (bg_error_state_) {
    case BackgroundErrorState::kOk:
    case BackgroundErrorState::kRetrying:
      // Healthy, or the engine is already retrying on its own.
      return Status::OK();
    case BackgroundErrorState::kDegradedReadOnly:
      return TryResumeFromNoSpace();
    case BackgroundErrorState::kFatal:
      return bg_error_;  // past recovery; reopen the DB
  }
  return Status::OK();  // unreachable
}

// ---------------- Reads ----------------

Status DBImpl::DerefValuePointer(const Slice& encoded, const Slice& user_key,
                                 std::string* value) {
  vlog::ValuePointer ptr;
  if (!vlog::DecodeValuePointerStrict(encoded, &ptr)) {
    return Status::Corruption("bad vLog value pointer");
  }
  Status s = vlog_readers_.Get(ptr, user_key, value);
  if (s.ok()) vlog_reads_.fetch_add(1, std::memory_order_relaxed);
  return s;
}

Status DBImpl::Get(const ReadOptions& options, const Slice& key,
                   std::string* value) {
  Status s;
  // Lock-free fast path: pin the published ReadState, then read the snapshot
  // sequence. Order matters for read-your-writes — a completed write W both
  // (a) landed in a memtable that is part of every state published at or
  // after W and (b) advanced last_sequence with a release store, so a state
  // acquired *before* the acquire-load of the sequence covers everything
  // the sequence admits.
  ReadState* state = AcquireReadState();
  SequenceNumber snapshot;
  if (options.snapshot != nullptr) {
    snapshot =
        static_cast<const SnapshotImpl*>(options.snapshot)->sequence_number();
  } else {
    snapshot = version_set_lockfree_->LastSequenceAcquire();
  }
  // Look in the active memtable, then the flushing one, then the tables.
  // Counter accounting runs on locals flushed once at the end: the shared
  // relaxed atomics are touched a bounded number of times per op (not once
  // per bloom-filtered table), which is what keeps single-thread readrandom
  // at its pre-counter throughput.
  uint64_t filter_negatives = 0;
  LookupKey lkey(key, snapshot);
  SequenceNumber found_seq = 0;
  bool is_pointer = false;
  if (state->mem->Get(lkey, value, &s, &found_seq, &is_pointer)) {
    // Done
  } else if (state->imm != nullptr &&
             state->imm->Get(lkey, value, &s, &found_seq, &is_pointer)) {
    // Done
  } else {
    s = state->current->Get(options, lkey, value, &filter_negatives,
                            &found_seq, &is_pointer);
  }

  // Range-tombstone coverage. Sequence numbers are global, so one coverage
  // test after point resolution is enough: any entry the point lookup could
  // have found below the deciding one has a smaller sequence and is hidden
  // by the same covering tombstone. Only a found value needs the test (a
  // point deletion stays NotFound either way).
  if (s.ok()) {
    SequenceNumber rcov = state->mem->MaxRangeCoveringSeq(key, snapshot);
    if (state->imm != nullptr) {
      rcov = std::max(rcov, state->imm->MaxRangeCoveringSeq(key, snapshot));
    }
    rcov = std::max(rcov,
                    state->current->MaxRangeCoveringSeq(key, snapshot));
    if (rcov > found_seq) {
      value->clear();
      s = Status::NotFound(Slice());
    } else if (is_pointer) {
      // The raw hit is an encoded vLog pointer; swap in the value bytes.
      // Safe off the mutex: the pinned ReadState keeps the deciding
      // version alive, and its file's segment span keeps the segment file
      // on disk (RemoveObsoleteFiles' liveness rule).
      std::string encoded;
      encoded.swap(*value);
      s = DerefValuePointer(encoded, key, value);
    }
  }

  gets_.fetch_add(1, std::memory_order_relaxed);
  if (s.ok()) gets_found_.fetch_add(1, std::memory_order_relaxed);
  table_cache_->AddFilterNegatives(filter_negatives);
  ReleaseReadState(state);
  return s;
}

std::vector<Status> DBImpl::MultiGet(const ReadOptions& options,
                                     std::span<const Slice> keys,
                                     std::vector<std::string>* values) {
  const size_t n = keys.size();
  std::vector<Status> statuses(n);
  values->clear();
  values->resize(n);
  if (n == 0) return statuses;

  // Same lock-free snapshot protocol as Get: pin the ReadState, then read
  // the sequence, and the whole batch observes one consistent snapshot
  // without ever touching mutex_.
  ReadState* state = AcquireReadState();
  SequenceNumber snapshot;
  if (options.snapshot != nullptr) {
    snapshot =
        static_cast<const SnapshotImpl*>(options.snapshot)->sequence_number();
  } else {
    snapshot = version_set_lockfree_->LastSequenceAcquire();
  }

  // Memtable probes are memory-only and run synchronously; only the keys
  // they miss go to the table fan-out.
  std::vector<std::unique_ptr<LookupKey>> lkeys;
  lkeys.reserve(n);
  std::vector<Version::MultiGetItem> items(n);
  size_t unresolved = 0;
  for (size_t i = 0; i < n; i++) {
    lkeys.push_back(std::make_unique<LookupKey>(keys[i], snapshot));
    items[i].key = lkeys.back().get();
    items[i].value = &(*values)[i];
    Status s;
    if (state->mem->Get(*lkeys[i], items[i].value, &s, &items[i].seq,
                        &items[i].is_pointer)) {
      items[i].status = s;
      items[i].done = true;
    } else if (state->imm != nullptr &&
               state->imm->Get(*lkeys[i], items[i].value, &s, &items[i].seq,
                               &items[i].is_pointer)) {
      items[i].status = s;
      items[i].done = true;
    } else {
      unresolved++;
    }
  }

  uint64_t filter_negatives = 0;
  if (unresolved > 0) {
    // Fan the remaining lookups out level by level; within a level every
    // needed table-block read of a probe round goes down as one
    // Env::SubmitReads batch (io_uring or the thread pool).
    state->current->MultiGet(options, items.data(), n, &filter_negatives);
  }

  for (size_t i = 0; i < n; i++) {
    // Same global coverage test as Get: a found value whose sequence is
    // below a covering range tombstone (<= the batch snapshot) is hidden.
    if (items[i].status.ok()) {
      SequenceNumber rcov =
          state->mem->MaxRangeCoveringSeq(keys[i], snapshot);
      if (state->imm != nullptr) {
        rcov = std::max(rcov,
                        state->imm->MaxRangeCoveringSeq(keys[i], snapshot));
      }
      rcov = std::max(
          rcov, state->current->MaxRangeCoveringSeq(keys[i], snapshot));
      if (rcov > items[i].seq) {
        items[i].value->clear();
        items[i].status = Status::NotFound(Slice());
        items[i].is_pointer = false;
      }
    }
  }

  // Batch-dereference every surviving pointer hit through one SubmitReads
  // round: vLog resolution pipelines exactly like the table reads above.
  std::vector<vlog::ReadItem> deref;
  std::vector<size_t> deref_idx;
  for (size_t i = 0; i < n; i++) {
    if (!items[i].status.ok() || !items[i].is_pointer) continue;
    vlog::ValuePointer ptr;
    if (!vlog::DecodeValuePointerStrict(Slice(*items[i].value), &ptr)) {
      items[i].status = Status::Corruption("bad value pointer");
      items[i].value->clear();
      continue;
    }
    vlog::ReadItem r;
    r.ptr = ptr;  // decoded by value: overwriting *value below is safe
    r.expected_key = keys[i];
    r.value = items[i].value;
    deref.push_back(r);
    deref_idx.push_back(i);
  }
  if (!deref.empty()) {
    vlog_readers_.MultiGet(deref.data(), deref.size());
    vlog_reads_.fetch_add(deref.size(), std::memory_order_relaxed);
    for (size_t j = 0; j < deref.size(); j++) {
      if (!deref[j].status.ok()) {
        items[deref_idx[j]].status = deref[j].status;
        items[deref_idx[j]].value->clear();
      }
    }
  }

  uint64_t found = 0;
  for (size_t i = 0; i < n; i++) {
    statuses[i] = items[i].status;
    if (statuses[i].ok()) found++;
  }
  // One batched counter flush for the whole call.
  gets_.fetch_add(n, std::memory_order_relaxed);
  if (found > 0) gets_found_.fetch_add(found, std::memory_order_relaxed);
  table_cache_->AddFilterNegatives(filter_negatives);
  ReleaseReadState(state);
  return statuses;
}

// Portable default for DB subclasses that do not override MultiGet: the
// same results, one synchronous Get per key, pinned to one snapshot so the
// batch-consistency contract still holds.
std::vector<Status> DB::MultiGet(const ReadOptions& options,
                                 std::span<const Slice> keys,
                                 std::vector<std::string>* values) {
  std::vector<Status> statuses(keys.size());
  values->clear();
  values->resize(keys.size());
  ReadOptions ro = options;
  const Snapshot* owned = nullptr;
  if (ro.snapshot == nullptr) {
    owned = GetSnapshot();
    ro.snapshot = owned;
  }
  for (size_t i = 0; i < keys.size(); i++) {
    statuses[i] = Get(ro, keys[i], &(*values)[i]);
  }
  if (owned != nullptr) ReleaseSnapshot(owned);
  return statuses;
}

Iterator* DBImpl::NewInternalIterator(const ReadOptions& options,
                                      SequenceNumber* latest_snapshot,
                                      ReadState** state_out) {
  // Same lock-free acquisition as Get: pin the state first, then read the
  // sequence, so the snapshot never admits writes the pinned memtables
  // missed. The ReadState's references back the iterator for its whole
  // lifetime; cleanup is a single lock-free unref (the writer-side drain
  // does the actual teardown), so iterator destruction never blocks on or
  // contends for mutex_ either.
  ReadState* state = AcquireReadState();
  *latest_snapshot = version_set_lockfree_->LastSequenceAcquire();

  // Collect together all needed child iterators
  std::vector<Iterator*> list;
  list.push_back(state->mem->NewIterator());
  if (state->imm != nullptr) {
    list.push_back(state->imm->NewIterator());
  }
  state->current->AddIterators(options, &list);
  Iterator* internal_iter = NewMergingIterator(
      &internal_comparator_, list.data(), static_cast<int>(list.size()));

  internal_iter->RegisterCleanup(&DBImpl::UnrefReadState, this, state);
  if (state_out != nullptr) *state_out = state;
  return internal_iter;
}

Iterator* DBImpl::TEST_NewInternalIterator() {
  SequenceNumber ignored;
  return NewInternalIterator(ReadOptions(), &ignored);
}

Iterator* DBImpl::NewIterator(const ReadOptions& options) {
  SequenceNumber latest_snapshot;
  ReadState* state = nullptr;
  Iterator* iter = NewInternalIterator(options, &latest_snapshot, &state);
  SequenceNumber seq =
      (options.snapshot != nullptr
           ? static_cast<const SnapshotImpl*>(options.snapshot)
                 ->sequence_number()
           : latest_snapshot);
  // Materialize every range tombstone visible to this iterator's snapshot
  // into one fragmented list (snapshot filtering happens at query time in
  // MaxCoveringSeq). The pinned ReadState keeps all sources stable; the
  // list is built once here so iteration itself never touches the tree.
  std::vector<RangeTombstone> raw;
  state->mem->CollectRangeTombstones(&raw);
  if (state->imm != nullptr) {
    state->imm->CollectRangeTombstones(&raw);
  }
  Status rs = state->current->CollectRangeTombstones(&raw);
  if (!rs.ok()) {
    // Dropping tombstones would resurrect deleted keys; fail the iterator.
    delete iter;
    return NewErrorIterator(rs);
  }
  FragmentedRangeTombstoneList* range_dels = nullptr;
  if (!raw.empty()) {
    range_dels = new FragmentedRangeTombstoneList();
    range_dels->Build(internal_comparator_.user_comparator(), raw);
  }
  return NewDBIterator(internal_comparator_.user_comparator(), iter, seq,
                       &iter_tombstones_skipped_, range_dels, &vlog_readers_,
                       &vlog_reads_);
}

const Snapshot* DBImpl::GetSnapshot() {
  MutexLock l(&mutex_);
  return snapshots_.New(versions_->LastSequence());
}

void DBImpl::ReleaseSnapshot(const Snapshot* snapshot) {
  MutexLock l(&mutex_);
  snapshots_.Delete(static_cast<const SnapshotImpl*>(snapshot));
}

// ---------------- Writes ----------------

Status DBImpl::Put(const WriteOptions& o, const Slice& key,
                   const Slice& val) {
  WriteBatch batch;
  batch.Put(key, val);
  return Write(o, &batch);
}

Status DBImpl::Delete(const WriteOptions& options, const Slice& key) {
  WriteBatch batch;
  batch.Delete(key);
  return Write(options, &batch);
}

Status DBImpl::DeleteRange(const WriteOptions& options, const Slice& begin,
                           const Slice& end) {
  WriteBatch batch;
  batch.DeleteRange(begin, end);
  return Write(options, &batch);
}

Status DBImpl::Write(const WriteOptions& options, WriteBatch* updates) {
  Writer w(&mutex_);
  w.batch = updates;
  w.sync = options.sync || options_.sync_writes;
  w.done = false;

  MutexLock l(&mutex_);
  writers_.push_back(&w);
  while (!w.done && &w != writers_.front()) {
    w.cv.Wait();
  }
  if (w.done) {
    return w.status;  // a leader wrote this batch as part of its group
  }

  // This thread is now the group leader.
  Status status = MakeRoomForWrite(updates == nullptr);
  SequenceNumber last_sequence = versions_->LastSequence();
  Writer* last_writer = &w;
  bool async_sync = false;
  CompletionQueue sync_cq;
  SyncRequest sync_req;
  if (status.ok() && updates != nullptr) {
    WriteBatch* write_batch = BuildBatchGroup(&last_writer);
    WriteBatchInternal::SetSequence(write_batch, last_sequence + 1);
    last_sequence += WriteBatchInternal::Count(write_batch);

    DeleteCounter counter;
    uint64_t wal_bytes = 0;
    uint64_t wal_syncs = 0;
    uint64_t vlog_appended_bytes = 0;
    uint64_t vlog_appended_values = 0;
    bool sync_error = false;
    bool vlog_error = false;
    {
      // Apply the group to the WAL and memtable with the mutex released:
      // the leader is the only awake writer (followers sleep on their cv),
      // and the skiplist supports one writer with concurrent readers. The
      // pointers are captured under the lock; nothing rotates them while
      // this write group is in flight (MakeRoomForWrite already ran).
      MemTable* mem = mem_;
      wal::Writer* log = log_.get();
      WritableFile* logfile = logfile_.get();
      vlog::Writer* vlog = vlog_.get();
      WriteBatch* applied = write_batch;
      if (vlog != nullptr && options_.value_separation_threshold > 0) {
        separated_batch_.Clear();
      }
      mutex_.Unlock();
      if (vlog != nullptr && options_.value_separation_threshold > 0) {
        // Key-value separation: route large values into the vLog head and
        // rewrite their entries into pointers. The WAL and memtable see the
        // transformed batch; the stats/monitor accounting below keeps using
        // the original batch so user byte counts stay honest.
        ValueSeparator sep(&separated_batch_, vlog,
                           options_.value_separation_threshold);
        status = write_batch->Iterate(&sep);
        if (status.ok()) status = sep.status;
        if (status.ok() && sep.separated > 0) {
          // Push the appended records to the OS so the lock-free read path
          // (pread on the segment) can see them the moment the memtable
          // pointers become visible.
          status = vlog->Flush();  // io: unlocked
        }
        if (!status.ok()) {
          // The head's write arithmetic is now untrusted; the next leader
          // seals it (scan-derived extent) and opens a fresh segment. This
          // group was never applied or acked.
          vlog_error = true;
        } else if (sep.separated > 0) {
          WriteBatchInternal::SetSequence(
              &separated_batch_, WriteBatchInternal::Sequence(write_batch));
          applied = &separated_batch_;
          vlog_appended_bytes = sep.bytes_appended;
          vlog_appended_values = sep.separated;
        }
      }
      if (status.ok() && !options_.disable_wal) {
        Slice contents = WriteBatchInternal::Contents(applied);
        status = log->AddRecord(contents);
        wal_bytes = contents.size();
        if (status.ok() && w.sync && vlog_appended_values > 0) {
          // Durability ordering: the vLog record must be durable before the
          // WAL record that points at it -- recovery trusts any pointer
          // inside a segment's synced extent. A failure here is a vLog
          // failure (poison the head), not a WAL failure.
          status = vlog->Sync();  // io: unlocked
          if (!status.ok()) vlog_error = true;
        }
        if (status.ok() && w.sync) {
          // Group commit's payoff: ONE fsync covers every batch in the
          // group (followers piggyback on the leader's sync; BuildBatchGroup
          // never puts a sync batch under a non-sync leader).
          if (options_.async_wal_sync) {
            // Asynchronous variant: push the buffered record to the OS now
            // (SyncDurable never touches the user-space buffer), then
            // submit the fsync and keep going -- the leader applies the
            // batch, hands off leadership, and only waits for this
            // completion right before returning.
            status = logfile->Flush();
            if (status.ok()) {
              sync_req.file = logfile;
              env_->SubmitSync(&sync_req, &sync_cq);  // io: unlocked
              wal_syncs++;
              async_sync = true;
              if (sync_cq.completed() >= 1 && !sync_req.status.ok()) {
                // Completed inline with an error (e.g. a FaultInjectionEnv
                // crash at submit): honor it exactly like a blocking sync
                // failure -- skip the memtable apply.
                status = sync_req.status;
                sync_error = true;
                async_sync = false;
              }
            } else {
              sync_error = true;
            }
          } else {
            status = logfile->Sync();
            wal_syncs++;
            if (!status.ok()) sync_error = true;
          }
        }
      }
      if (status.ok()) {
        status = WriteBatchInternal::InsertInto(applied, mem);
      }
      if (status.ok()) {
        // Count deletes/bytes from the ORIGINAL batch (pre-separation), so
        // user_bytes_written reflects what the user wrote, not pointer
        // sizes. The batch was just applied, so re-iterating cannot fail.
        (void)write_batch->Iterate(&counter);
      }
      mutex_.Lock();
    }
    if (vlog_error) {
      // Force the next leader through RotateVlogHead before any further
      // separation: the current head is poisoned (unknown tail state).
      vlog_rotation_pending_ = true;
    }
    if (async_sync) {
      // Claimed before any successor leader can run MakeRoomForWrite: a WAL
      // rotation must not destroy logfile_ while the submitted fsync is in
      // flight on it (the rotation path drains this counter).
      wal_syncs_inflight_++;
    }
    stats_.wal_bytes_written += wal_bytes;
    stats_.wal_syncs += wal_syncs;

    if (status.ok()) {
      versions_->SetLastSequence(last_sequence);
      stats_.user_bytes_written += counter.bytes;
      stats_.vlog_bytes_written += vlog_appended_bytes;
      stats_.vlog_values_written += vlog_appended_values;
      if (counter.deletes > 0) {
        monitor_.OnTombstoneWritten(counter.deletes);
      }
      if (counter.range_deletes > 0) {
        monitor_.OnRangeTombstoneWritten(counter.range_deletes);
      }
    } else {
      // A WAL append/sync error leaves the tail of the log -- and the
      // wal::Writer's block arithmetic -- in an unknown state. Classify as
      // a WAL failure: with retries enabled the next write opens a fresh
      // log and continues (the failed group was never acked and never
      // reached the memtable); with retries disabled this poisons the DB
      // exactly as before.
      (void)sync_error;
      RecordBackgroundError(status, ErrorSubsystem::kWalSync);
    }
    if (write_batch == &tmp_batch_) tmp_batch_.Clear();

    // FADE: the logical clock just advanced; fire the compaction machinery
    // the moment a file's tombstone TTL lapses, independent of flushes.
    // This runs *inline* even in background mode: the persistence bound
    // means this write may not complete until the expired tombstone has
    // moved, so there is nothing to gain from handing the work to the
    // background thread -- and picking the compaction here, at the exact
    // deadline-crossing sequence number, keeps the TTL schedule identical
    // to synchronous mode instead of racing the writer's clock.
    // pending_ttl_floor_ covers the deadline a still-queued flush is about
    // to introduce; if the floor (not the installed deadline) fired, the
    // first round flushes and exposes the real deadline, so loop once more.
    while (status.ok() &&
           versions_->LastSequence() >=
               std::min({next_ttl_deadline_, pending_ttl_floor_,
                         next_vlog_gc_deadline_})) {
      const bool flush_pending = (imm_ != nullptr);
      stats_.stall_ttl_waits++;
      const uint64_t t0 = SystemClock::NowMicros();
      status = RunCompactionsWithRetry();
      stats_.stall_micros += SystemClock::NowMicros() - t0;
      if (!flush_pending) {
        // The round ran at the current horizon and the deadline is still
        // in the past: the tombstone is snapshot-pinned. Do not spin.
        break;
      }
    }
  }

  // Wake the followers whose batches were bundled into this group, and
  // promote the next queued writer (if any) to leader.
  while (true) {
    Writer* ready = writers_.front();
    writers_.pop_front();
    if (ready != &w) {
      ready->status = status;
      ready->done = true;
      ready->cv.Signal();
    }
    if (ready == last_writer) break;
  }
  if (!writers_.empty()) {
    writers_.front()->cv.Signal();
  }

  if (async_sync) {
    // Async WAL sync epilogue: the group is applied, its followers are
    // awake, and the next leader is already running -- only now does this
    // thread block on its own fsync completion, off the mutex. A failure
    // here poisons the DB (like any sync error) and is returned to the
    // caller; followers of this group were released with the pre-sync
    // status, which is the documented async_wal_sync relaxation.
    mutex_.Unlock();
    sync_cq.WaitFor(1);
    Status sync_status = sync_req.status;
    if (!sync_status.ok() && options_.max_background_retries > 0) {
      // Completion-path sync failed. Before acking, fall back to one
      // blocking Sync() on the same file: the record already reached the
      // OS (Flush succeeded before submit), so a transient completion
      // failure is usually recovered by a plain fsync. This must happen
      // BEFORE the inflight count drops -- that count is what keeps
      // logfile_ alive against a concurrent rotation.
      sync_status = sync_req.file->Sync();
    }
    mutex_.Lock();
    wal_syncs_inflight_--;
    if (wal_syncs_inflight_ == 0) {
      wal_sync_done_.SignalAll();
    }
    if (!sync_status.ok()) {
      status = sync_status;
      RecordBackgroundError(status, ErrorSubsystem::kWalSync);
    } else if (!sync_req.status.ok()) {
      // The fallback recovered what the completion path could not: the
      // group is durable and acked. Count the episode.
      stats_.errors_transient++;
      stats_.errors_retried++;
    }
  }
  return status;
}

// REQUIRES: mutex_ held, writers_ non-empty, first writer has a non-null
// batch.
WriteBatch* DBImpl::BuildBatchGroup(Writer** last_writer) {
  assert(!writers_.empty());
  Writer* first = writers_.front();
  WriteBatch* result = first->batch;
  assert(result != nullptr);

  size_t size = WriteBatchInternal::ByteSize(first->batch);

  // Allow the group to grow up to a maximum size, but if the original
  // write is small, limit the growth so we do not slow down the small
  // write too much.
  size_t max_size = 1 << 20;
  if (size <= (128 << 10)) {
    max_size = size + (128 << 10);
  }

  int absorbed = 0;
  *last_writer = first;
  auto iter = writers_.begin();
  ++iter;  // advance past "first"
  for (; iter != writers_.end(); ++iter) {
    Writer* w = *iter;
    if (w->sync && !first->sync) {
      // A sync write must not ride a group whose leader will skip Sync().
      break;
    }
    if (w->batch == nullptr) {
      // A forced-flush sentinel (FlushMemTable); it needs its own
      // MakeRoomForWrite pass, so it must become a leader itself.
      break;
    }
    size += WriteBatchInternal::ByteSize(w->batch);
    if (size > max_size) {
      break;  // do not make the group too large
    }
    // Append to *result
    if (result == first->batch) {
      // Switch to temporary batch instead of disturbing caller's batch
      result = &tmp_batch_;
      assert(WriteBatchInternal::Count(result) == 0);
      WriteBatchInternal::Append(result, first->batch);
    }
    WriteBatchInternal::Append(result, w->batch);
    absorbed++;
    *last_writer = w;
  }
  if (absorbed > 0) {
    stats_.group_commits++;
    stats_.writes_grouped += static_cast<uint64_t>(absorbed);
  }
  return result;
}

Status DBImpl::FlushMemTable() {
  // A null batch forces MakeRoomForWrite(force=true): swap mem_ out (if
  // non-empty) and, in sync mode, flush+compact inline.
  Status s = Write(WriteOptions(), nullptr);
  if (s.ok()) {
    s = WaitForCompactions();
  }
  return s;
}

Status DBImpl::WaitForCompactions() {
  MutexLock l(&mutex_);
  // Drain to quiescence: wait out any in-flight background round, then run
  // rounds inline until there is no pending flush and the planner is
  // satisfied at the current horizon. Snapshot-pinned TTL work is not
  // pickable, so this terminates. A kRetrying episode does not stop the
  // drain -- the inline retry loop (or the scheduled background retry)
  // either recovers it or escalates to kFatal, and the retry budget bounds
  // how long that takes.
  while (!shutting_down_.load(std::memory_order_acquire)) {
    if (bg_compaction_scheduled_ || compaction_active_) {
      background_work_finished_signal_.Wait();
      continue;
    }
    if (!BackgroundWorkAllowed()) {
      return bg_error_;  // fatal or degraded: nothing will run
    }
    if (imm_ != nullptr ||
        versions_->NeedsCompaction(planner_, SmallestSnapshot()) ||
        bg_error_state_ == BackgroundErrorState::kRetrying) {
      Status s = RunCompactionsWithRetry();
      if (!s.ok()) return s;
      continue;
    }
    break;  // quiescent
  }
  return bg_error_;
}

void DBImpl::CompactRange(const Slice* begin, const Slice* end) {
  int max_level_with_files = 1;
  {
    MutexLock l(&mutex_);
    Version* base = versions_->current();
    for (int level = 1; level < kNumLevels; level++) {
      if (base->OverlapInLevel(level, begin, end)) {
        max_level_with_files = level;
      }
    }
  }
  // Best-effort: a failed flush is recorded in the background-error state
  // machine (retried, or surfacing on a later write once fatal);
  // CompactRange itself is void by API.
  (void)FlushMemTable();
  for (int level = 0; level <= max_level_with_files; level++) {
    TEST_CompactRange(level, begin, end);
  }
}

void DBImpl::TEST_CompactRange(int level, const Slice* begin,
                               const Slice* end) {
  assert(level >= 0);
  assert(level < kNumLevels);

  InternalKey begin_storage, end_storage;
  InternalKey* begin_key = nullptr;
  InternalKey* end_key = nullptr;
  if (begin != nullptr) {
    begin_storage = InternalKey(*begin, kMaxSequenceNumber, kValueTypeForSeek);
    begin_key = &begin_storage;
  }
  if (end != nullptr) {
    end_storage = InternalKey(*end, 0, static_cast<ValueType>(0));
    end_key = &end_storage;
  }

  MutexLock l(&mutex_);
  // Exclusive slot: a background round must not pick inputs that overlap
  // this manual compaction once the mutex drops for the merge I/O.
  AcquireCompactionSlot();
  std::unique_ptr<Compaction> c(
      versions_->CompactRange(level, begin_key, end_key));
  if (c != nullptr) {
    stats_.compaction_count++;
    stats_.compactions_by_reason[static_cast<size_t>(
        CompactionReason::kManual)]++;

    CompactionState* compact = new CompactionState(c.get());
    Status s = DoCompactionWork(compact, versions_->LastSequence());
    if (!s.ok()) {
      RecordBackgroundError(s, ErrorSubsystem::kCompaction);
    }
    CleanupCompaction(compact);
    c->ReleaseInputs();
    RemoveObsoleteFiles();
  }
  ReleaseCompactionSlot();
}

// ---------------- Properties & stats ----------------

bool DBImpl::GetProperty(const Slice& property, std::string* value) {
  value->clear();
  MutexLock l(&mutex_);
  Slice in = property;
  Slice prefix("acheron.");
  if (!in.starts_with(prefix)) return false;
  in.remove_prefix(prefix.size());

  if (in.starts_with("num-files-at-level")) {
    in.remove_prefix(strlen("num-files-at-level"));
    uint64_t level = 0;
    bool ok = !in.empty();
    for (size_t i = 0; ok && i < in.size(); i++) {
      if (in[i] < '0' || in[i] > '9') {
        ok = false;
      } else {
        level = level * 10 + (in[i] - '0');
      }
    }
    if (!ok || level >= static_cast<uint64_t>(kNumLevels)) {
      return false;
    }
    *value = std::to_string(versions_->NumLevelFiles(static_cast<int>(level)));
    return true;
  } else if (in == "stats") {
    InternalStats merged = stats_;
    MergeReadPathCounters(&merged);
    merged.manifest_snapshots_written = versions_->manifest_snapshots_written();
    merged.manifest_rotations = versions_->manifest_rotations();
    merged.torn_snapshots_skipped = versions_->torn_snapshots_skipped();
    *value = merged.ToString();
    return true;
  } else if (in == "mutex-acquisitions") {
    // Diagnostic for the lock-free read path: total acquisitions of the DB
    // mutex since open. A quiesced DB doing N Gets must move this by
    // exactly 1 (this property call's own lock) regardless of N.
    *value = std::to_string(mutex_.acquisitions());
    return true;
  } else if (in == "manifest-edits-replayed") {
    // Edits applied after the last valid snapshot in the last Recover; the
    // bounded-replay tests assert this stays O(snapshot interval).
    *value = std::to_string(versions_->manifest_edits_replayed());
    return true;
  } else if (in == "next-ttl-deadline") {
    // The recovered FADE clock: sequence number at which the next tombstone
    // TTL lapses (UINT64_MAX when none is armed). The recovery-journal
    // tests assert this is exactly equal across a crash.
    *value = std::to_string(next_ttl_deadline_);
    return true;
  } else if (in == "sstables") {
    *value = versions_->current()->DebugString();
    return true;
  } else if (in == "level-summary") {
    // One line per populated level: "level files bytes tombstones".
    Version* v = versions_->current();
    for (int level = 0; level < kNumLevels; level++) {
      if (v->files(level).empty()) continue;
      uint64_t tombstones = 0;
      for (FileMetaData* f : v->files(level)) tombstones += f->num_tombstones;
      char buf[128];
      std::snprintf(buf, sizeof(buf), "%d %d %lld %llu\n", level,
                    v->NumFiles(level),
                    static_cast<long long>(v->NumLevelBytes(level)),
                    static_cast<unsigned long long>(tombstones));
      value->append(buf);
    }
    return true;
  } else if (in == "total-bytes") {
    int64_t total = 0;
    for (int level = 0; level < kNumLevels; level++) {
      total += versions_->NumLevelBytes(level);
    }
    *value = std::to_string(total);
    return true;
  } else if (in == "total-tombstones") {
    uint64_t total = versions_->current()->TotalTombstones() +
                     mem_->num_tombstones();
    if (imm_ != nullptr) total += imm_->num_tombstones();
    *value = std::to_string(total);
    return true;
  } else if (in == "total-range-tombstones") {
    uint64_t total = versions_->current()->TotalRangeTombstones() +
                     mem_->num_range_tombstones();
    if (imm_ != nullptr) total += imm_->num_range_tombstones();
    *value = std::to_string(total);
    return true;
  } else if (in == "max-tombstone-age") {
    uint64_t age = std::max(
        versions_->current()->MaxTombstoneAge(versions_->LastSequence()),
        versions_->current()->MaxRangeTombstoneAge(versions_->LastSequence()));
    if (mem_->num_tombstones() > 0) {
      age = std::max(age, versions_->LastSequence() -
                              mem_->earliest_tombstone_seq());
    }
    if (mem_->num_range_tombstones() > 0) {
      age = std::max(age, versions_->LastSequence() -
                              mem_->earliest_range_tombstone_seq());
    }
    if (imm_ != nullptr && imm_->num_tombstones() > 0) {
      age = std::max(age, versions_->LastSequence() -
                              imm_->earliest_tombstone_seq());
    }
    if (imm_ != nullptr && imm_->num_range_tombstones() > 0) {
      age = std::max(age, versions_->LastSequence() -
                              imm_->earliest_range_tombstone_seq());
    }
    *value = std::to_string(age);
    return true;
  } else if (in == "delete-stats") {
    DeleteStats ds;
    uint64_t live = versions_->current()->TotalTombstones() +
                    mem_->num_tombstones();
    uint64_t range_live = versions_->current()->TotalRangeTombstones() +
                          mem_->num_range_tombstones();
    if (imm_ != nullptr) {
      live += imm_->num_tombstones();
      range_live += imm_->num_range_tombstones();
    }
    uint64_t age =
        versions_->current()->MaxTombstoneAge(versions_->LastSequence());
    uint64_t backlog = 0;
    for (const auto& entry : versions_->vlog_registry()) {
      backlog += entry.second.pending_count();
    }
    monitor_.Snapshot(&ds, live, age, range_live, backlog);
    *value = ds.ToString();
    return true;
  } else if (in == "vlog-stats") {
    // Key-value separation observability: the segment registry plus the GC
    // and read counters. max_pending_age is the per-segment FADE clock --
    // the logical age of the oldest key purge whose value bytes are still
    // waiting for GC (must stay <= D_th under delete-compliant GC).
    const vlog::Registry& registry = versions_->vlog_registry();
    const SequenceNumber now = versions_->LastSequence();
    uint64_t segments = 0, sealed = 0, total_bytes = 0, garbage_bytes = 0;
    uint64_t backlog = 0, max_pending_age = 0;
    for (const auto& entry : registry) {
      const vlog::SegmentInfo& info = entry.second;
      segments++;
      if (info.sealed) sealed++;
      total_bytes += info.total_bytes;
      garbage_bytes += info.garbage_bytes;
      backlog += info.pending_count();
      if (!info.pending.empty()) {
        SequenceNumber earliest = info.earliest_pending_seq();
        if (now > earliest) {
          max_pending_age = std::max(max_pending_age, now - earliest);
        }
      }
    }
    const double live_ratio =
        total_bytes == 0
            ? 1.0
            : 1.0 - static_cast<double>(garbage_bytes) / total_bytes;
    char buf[320];
    std::snprintf(
        buf, sizeof(buf),
        "segments=%llu sealed=%llu total_bytes=%llu garbage_bytes=%llu "
        "live_ratio=%.3f value_purge_backlog=%llu max_pending_age=%llu "
        "gc_runs=%llu gc_values_relocated=%llu gc_bytes_relocated=%llu "
        "reads=%llu next_gc_deadline=%llu",
        static_cast<unsigned long long>(segments),
        static_cast<unsigned long long>(sealed),
        static_cast<unsigned long long>(total_bytes),
        static_cast<unsigned long long>(garbage_bytes), live_ratio,
        static_cast<unsigned long long>(backlog),
        static_cast<unsigned long long>(max_pending_age),
        static_cast<unsigned long long>(stats_.vlog_gc_runs),
        static_cast<unsigned long long>(stats_.vlog_gc_values_relocated),
        static_cast<unsigned long long>(stats_.vlog_gc_bytes_relocated),
        static_cast<unsigned long long>(
            vlog_reads_.load(std::memory_order_relaxed)),
        static_cast<unsigned long long>(next_vlog_gc_deadline_));
    value->assign(buf);
    return true;
  } else if (in == "background-error") {
    const char* state = nullptr;
    switch (bg_error_state_) {
      case BackgroundErrorState::kOk:
        state = "ok";
        break;
      case BackgroundErrorState::kRetrying:
        state = "retrying";
        break;
      case BackgroundErrorState::kDegradedReadOnly:
        state = "degraded-read-only";
        break;
      case BackgroundErrorState::kFatal:
        state = "fatal";
        break;
    }
    const char* subsystem = nullptr;
    switch (bg_error_subsystem_) {
      case ErrorSubsystem::kFlush:
        subsystem = "flush";
        break;
      case ErrorSubsystem::kCompaction:
        subsystem = "compaction";
        break;
      case ErrorSubsystem::kWalSync:
        subsystem = "wal-sync";
        break;
      case ErrorSubsystem::kManifest:
        subsystem = "manifest";
        break;
    }
    char buf[200];
    std::snprintf(buf, sizeof(buf),
                  "state=%s subsystem=%s attempts=%d budget=%d "
                  "dth_at_risk=%d error=",
                  state,
                  bg_error_state_ == BackgroundErrorState::kOk ? "none"
                                                               : subsystem,
                  bg_error_attempts_, options_.max_background_retries,
                  monitor_.DthAtRisk() ? 1 : 0);
    value->assign(buf);
    value->append(bg_error_.ToString());
    return true;
  }
  return false;
}

DeleteStats DBImpl::GetDeleteStats() {
  MutexLock l(&mutex_);
  DeleteStats ds;
  uint64_t live =
      versions_->current()->TotalTombstones() + mem_->num_tombstones();
  uint64_t range_live = versions_->current()->TotalRangeTombstones() +
                        mem_->num_range_tombstones();
  uint64_t age =
      versions_->current()->MaxTombstoneAge(versions_->LastSequence());
  if (mem_->num_tombstones() > 0) {
    age = std::max(age,
                   versions_->LastSequence() - mem_->earliest_tombstone_seq());
  }
  if (imm_ != nullptr) {
    live += imm_->num_tombstones();
    range_live += imm_->num_range_tombstones();
    if (imm_->num_tombstones() > 0) {
      age = std::max(age, versions_->LastSequence() -
                              imm_->earliest_tombstone_seq());
    }
  }
  uint64_t backlog = 0;
  for (const auto& entry : versions_->vlog_registry()) {
    backlog += entry.second.pending_count();
  }
  monitor_.Snapshot(&ds, live, age, range_live, backlog);
  return ds;
}

void DBImpl::MergeReadPathCounters(InternalStats* merged) const {
  merged->iter_tombstones_skipped =
      iter_tombstones_skipped_.load(std::memory_order_relaxed);
  merged->gets = gets_.load(std::memory_order_relaxed);
  merged->gets_found = gets_found_.load(std::memory_order_relaxed);
  merged->bloom_useful = table_cache_->filter_negatives_total();
  merged->vlog_reads = vlog_reads_.load(std::memory_order_relaxed);
}

InternalStats DBImpl::GetStats() {
  MutexLock l(&mutex_);
  InternalStats merged = stats_;
  MergeReadPathCounters(&merged);
  merged.manifest_snapshots_written = versions_->manifest_snapshots_written();
  merged.manifest_rotations = versions_->manifest_rotations();
  merged.torn_snapshots_skipped = versions_->torn_snapshots_skipped();
  return merged;
}

// ---------------- Secondary (retention) purge, KiWi-lite ----------------

Status DBImpl::RewriteFileForPurge(FileMetaData* f, int level,
                                   const Slice& threshold,
                                   VersionEdit* edit) {
  // Rewrites |f| skipping every value entry whose secondary
  // key sorts below |threshold|. Tombstones are preserved.
  const uint64_t new_number = versions_->NewFileNumber();
  pending_outputs_.insert(new_number);

  // The rewrite I/O runs unlocked; the caller holds the compaction slot,
  // which pins |f| (its version is referenced and no rival compaction can
  // delete it) for the duration.
  mutex_.Unlock();
  ReadOptions ropts;
  ropts.fill_cache = false;
  std::unique_ptr<Iterator> it(
      table_cache_->NewIterator(ropts, f->number, f->file_size));

  // Range tombstones are orthogonal to the secondary purge and must be
  // carried into the replacement verbatim: losing them would resurrect
  // every key they cover.
  std::vector<RangeTombstone> range_dels;
  Status s;
  if (f->has_range_tombstones()) {
    s = table_cache_->GetRangeTombstones(f->number, f->file_size,
                                         &range_dels);
  }
  std::unique_ptr<WritableFile> file;
  if (s.ok()) {
    s = env_->NewWritableFile(TableFileName(dbname_, new_number),
                              &file);  // io: unlocked
  }
  if (!s.ok()) {
    mutex_.Lock();
    pending_outputs_.erase(new_number);
    return s;
  }

  FileMetaData meta;
  meta.number = new_number;
  TableBuilder builder(options_, file.get());
  uint64_t dropped = 0;
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    Slice key = it->key();
    ParsedInternalKey parsed;
    bool keep = true;
    std::string sec;
    if (ParseInternalKey(key, &parsed) && parsed.type == kTypeValue) {
      sec = options_.secondary_key_extractor(parsed.user_key, it->value());
      if (!sec.empty() && Slice(sec).compare(threshold) < 0) {
        keep = false;
        dropped++;
      }
    }
    if (!keep) continue;
    if (builder.NumEntries() == 0) meta.smallest.DecodeFrom(key);
    meta.largest.DecodeFrom(key);
    builder.Add(key, it->value(), ExtractUserKey(key));
    if (ParseInternalKey(key, &parsed)) {
      if (parsed.type == kTypeDeletion) {
        meta.num_tombstones++;
        meta.earliest_tombstone_seq =
            std::min(meta.earliest_tombstone_seq, parsed.sequence);
        meta.earliest_tombstone_wall_micros = std::min(
            meta.earliest_tombstone_wall_micros,
            f->earliest_tombstone_wall_micros);
      } else if (parsed.type == kTypeValuePointer) {
        // Pointer entries ride through the purge verbatim (the extractor
        // never sees them); the replacement must keep their segment span or
        // RemoveObsoleteFiles could unlink a segment they still reference.
        vlog::FoldVlogSpan(it->value(), &meta.min_vlog_segment,
                           &meta.max_vlog_segment);
      } else if (!sec.empty()) {
        if (meta.min_secondary_key.empty() || sec < meta.min_secondary_key) {
          meta.min_secondary_key = sec;
        }
        if (meta.max_secondary_key.empty() || sec > meta.max_secondary_key) {
          meta.max_secondary_key = sec;
        }
      }
    }
  }
  if (!it->status().ok()) {
    s = it->status();
  }

  if (s.ok() && !range_dels.empty()) {
    for (const RangeTombstone& t : range_dels) {
      builder.AddRangeTombstone(t.begin, t.end, t.seq,
                                internal_comparator_.user_comparator());
      meta.num_range_tombstones++;
      meta.earliest_range_tombstone_seq =
          std::min(meta.earliest_range_tombstone_seq, t.seq);
    }
    meta.earliest_range_tombstone_wall_micros =
        f->earliest_range_tombstone_wall_micros;
    meta.range_del_begin = f->range_del_begin;
    meta.range_del_end = f->range_del_end;
  }

  bool emit_replacement = false;
  if (s.ok() && (builder.NumEntries() > 0 || meta.num_range_tombstones > 0)) {
    meta.num_entries = builder.NumEntries();
    if (builder.NumEntries() == 0) {
      // Every point entry purged but range tombstones remain: keep the old
      // file's bounds (the replacement fills the same slot in the level).
      meta.smallest = f->smallest;
      meta.largest = f->largest;
    }
    TableProperties* props = builder.mutable_properties();
    props->num_tombstones = meta.num_tombstones;
    props->earliest_tombstone_time = meta.earliest_tombstone_seq;
    if (meta.num_range_tombstones > 0) {
      props->earliest_range_tombstone_wall_micros =
          meta.earliest_range_tombstone_wall_micros;
    }
    props->min_secondary_key = meta.min_secondary_key;
    props->max_secondary_key = meta.max_secondary_key;
    s = builder.Finish();
    if (s.ok()) {
      meta.file_size = builder.FileSize();
      meta.run_id = f->run_id;  // preserve recency ordering within the level
      // Durable before the (synced) manifest record references it.
      s = file->Sync();
      if (s.ok()) s = file->Close();
    }
    emit_replacement = s.ok();
  } else {
    builder.Abandon();
    if (s.ok()) {
      // Everything in the file was purged.
      (void)env_->RemoveFile(
          TableFileName(dbname_, new_number));  // io: unlocked
    }
  }

  mutex_.Lock();
  if (s.ok()) {
    edit->RemoveFile(level, f->number);
    if (emit_replacement) {
      edit->AddFile(level, meta);
    }
    stats_.blocks_purged_secondary += dropped;
  }
  pending_outputs_.erase(new_number);
  return s;
}

Status DBImpl::PurgeSecondaryRange(const Slice& threshold) {
  if (!options_.secondary_key_extractor) {
    return Status::NotSupported(
        "PurgeSecondaryRange requires Options::secondary_key_extractor");
  }
  // Flush so the memtable participates (simplest correct semantics).
  Status s = FlushMemTable();
  if (!s.ok()) return s;

  MutexLock l(&mutex_);
  // The rewrite loop releases the mutex per file; holding the compaction
  // slot keeps background compactions from rewriting the same files.
  AcquireCompactionSlot();
  VersionEdit edit;
  Version* base = versions_->current();
  base->Ref();
  for (int level = 0; level < kNumLevels && s.ok(); level++) {
    for (FileMetaData* f : base->files(level)) {
      if (f->max_secondary_key.empty()) {
        // File holds no secondary-keyed values (e.g. all tombstones); skip.
        continue;
      }
      if (Slice(f->max_secondary_key).compare(threshold) < 0 &&
          !f->has_range_tombstones()) {
        // Whole file is dead: drop it without reading a byte (this is the
        // KiWi-style wholesale drop the experiment measures). A file also
        // carrying range tombstones must be rewritten instead -- dropping
        // it wholesale would resurrect everything the tombstones cover.
        edit.RemoveFile(level, f->number);
        continue;
      }
      if (Slice(f->min_secondary_key).compare(threshold) < 0) {
        // Straddles the threshold: rewrite, skipping dead entries.
        s = RewriteFileForPurge(f, level, threshold, &edit);
        if (!s.ok()) break;
      }
    }
  }
  base->Unref();
  if (s.ok()) {
    s = versions_->LogAndApply(&edit, &mutex_);
  }
  if (s.ok()) {
    PublishReadState();
    RecordDeadTableLevels(edit);
    RemoveObsoleteFiles();
  }
  ReleaseCompactionSlot();
  return s;
}

// ---------------- Open / Destroy ----------------

Status DB::Open(const Options& options, const std::string& dbname, DB** dbptr) {
  *dbptr = nullptr;

  DBImpl* impl = new DBImpl(options, dbname);
  impl->mutex_.Lock();
  VersionEdit edit;
  // Recover handles create_if_missing, error_if_exists
  bool save_manifest = false;
  Status s = impl->Recover(&edit, &save_manifest);
  if (s.ok() && impl->mem_ == nullptr) {
    // Create new log and a corresponding memtable.
    uint64_t new_log_number = impl->versions_->NewFileNumber();
    if (!impl->options_.disable_wal) {
      std::unique_ptr<WritableFile> lfile;
      s = impl->env_->NewWritableFile(LogFileName(dbname, new_log_number),
                                      &lfile);  // io: open/recovery
      if (s.ok()) {
        impl->logfile_ = std::move(lfile);
        impl->log_ = std::make_unique<wal::Writer>(impl->logfile_.get());
      }
    }
    if (s.ok()) {
      edit.SetLogNumber(new_log_number);
      impl->logfile_number_ = new_log_number;
      impl->mem_ = new MemTable(impl->internal_comparator_);
      impl->mem_->Ref();
    }
  }
  if (s.ok() && impl->VlogEnabled()) {
    // Every Open starts a fresh vLog head (the previous head was sealed at
    // its recovered extent by RecoverVlog). Registering it rides the same
    // edit that retires the replayed WALs, so the head is journaled before
    // the first write can put a pointer to it anywhere durable.
    s = impl->NewVlogHead(&edit);
    save_manifest = true;
  }
  if (s.ok() && save_manifest) {
    edit.SetLogNumber(impl->logfile_number_);
    // This edit retires the replayed WALs; journal the fully-restored
    // written count so a crash after this point recovers it from the
    // MANIFEST alone (the fresh WAL holds no tombstones yet).
    edit.SetMonitorWritten(impl->monitor_.WrittenCount());
    edit.SetMonitorRangeWritten(impl->monitor_.RangeWrittenCount());
    s = impl->versions_->LogAndApply(&edit, &impl->mutex_);
  }
  if (s.ok()) {
    // First publication: reads become possible the moment Open returns.
    // Recovery's installs above happened before any reader exists, so they
    // did not need to publish individually.
    impl->PublishReadState();
    impl->RemoveObsoleteFiles();
    s = impl->RunCompactionsWithRetry();
  }
  impl->mutex_.Unlock();
  if (s.ok()) {
    assert(impl->mem_ != nullptr);
    *dbptr = impl;
  } else {
    delete impl;
  }
  return s;
}

Status DestroyDB(const std::string& dbname, const Options& options) {
  Env* env = options.env ? options.env : DefaultEnv();
  std::vector<std::string> filenames;
  // io: unlocked -- DestroyDB runs with no DB open, so no DB mutex exists
  Status result = env->GetChildren(dbname, &filenames);
  if (!result.ok()) {
    // Ignore error in case directory does not exist
    return Status::OK();
  }

  uint64_t number;
  FileType type;
  for (size_t i = 0; i < filenames.size(); i++) {
    if (ParseFileName(filenames[i], &number, &type)) {
      Status del =
          env->RemoveFile(dbname + "/" + filenames[i]);  // io: unlocked
      if (result.ok() && !del.ok()) {
        result = del;
      }
    }
  }
  // Ignore error in case dir contains other files.
  (void)env->RemoveDir(dbname);  // io: unlocked
  return result;
}

}  // namespace acheron
