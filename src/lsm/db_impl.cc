#include "src/lsm/db_impl.h"

#include <algorithm>
#include <vector>

#include "src/env/env.h"
#include "src/lsm/db_iter.h"
#include "src/lsm/filename.h"
#include "src/lsm/merger.h"
#include "src/lsm/table_cache.h"
#include "src/lsm/write_batch_internal.h"
#include "src/memtable/memtable.h"
#include "src/table/table_builder.h"
#include "src/util/clock.h"
#include "src/wal/log_reader.h"

namespace acheron {

// Per-compaction working state.
struct DBImpl::CompactionState {
  // Files produced by compaction
  struct Output {
    uint64_t number;
    uint64_t file_size;
    InternalKey smallest, largest;
    uint64_t num_entries = 0;
    uint64_t num_tombstones = 0;
    SequenceNumber earliest_tombstone_seq = kMaxSequenceNumber;
    uint64_t earliest_tombstone_wall_micros = UINT64_MAX;
    std::string min_secondary_key;
    std::string max_secondary_key;
  };

  Output* current_output() { return &outputs[outputs.size() - 1]; }

  explicit CompactionState(Compaction* c)
      : compaction(c), smallest_snapshot(0), total_bytes(0) {}

  Compaction* const compaction;

  // Sequence numbers < smallest_snapshot are not significant since we will
  // never have to service a snapshot below smallest_snapshot. Therefore if
  // we have seen a sequence number S <= smallest_snapshot, we can drop all
  // entries for the same key with sequence numbers < S.
  SequenceNumber smallest_snapshot;

  std::vector<Output> outputs;

  // State kept for output being generated
  std::unique_ptr<WritableFile> outfile;
  std::unique_ptr<TableBuilder> builder;

  uint64_t total_bytes;
};

Options SanitizeOptions(const std::string&, const Options& src) {
  Options result = src;
  if (result.comparator == nullptr) result.comparator = BytewiseComparator();
  if (result.env == nullptr) result.env = DefaultEnv();
  auto clamp = [](auto v, auto lo, auto hi) {
    return v < lo ? lo : (v > hi ? hi : v);
  };
  result.write_buffer_size =
      clamp(result.write_buffer_size, size_t{4 << 10}, size_t{1} << 30);
  result.max_file_size =
      clamp(result.max_file_size, size_t{16 << 10}, size_t{1} << 30);
  result.block_size = clamp(result.block_size, size_t{512}, size_t{4} << 20);
  result.size_ratio = clamp(result.size_ratio, 2, 64);
  result.num_levels = clamp(result.num_levels, 1, kNumLevels);
  result.level0_compaction_trigger =
      clamp(result.level0_compaction_trigger, 1, 64);
  return result;
}

DBImpl::DBImpl(const Options& raw_options, const std::string& dbname)
    : env_(raw_options.env ? raw_options.env : DefaultEnv()),
      internal_comparator_(raw_options.comparator ? raw_options.comparator
                                                  : BytewiseComparator()),
      options_(SanitizeOptions(dbname, raw_options)),
      owns_cache_(options_.block_cache == nullptr),
      dbname_(dbname),
      mem_(nullptr),
      logfile_number_(0),
      planner_(options_, &internal_comparator_) {
  // The Options copy held by the DB (and handed to tables) always carries a
  // usable block cache; build a private one when the caller didn't.
  Options* mutable_options = const_cast<Options*>(&options_);
  mutable_options->comparator = &internal_comparator_;
  if (owns_cache_) {
    mutable_options->block_cache = NewLRUCache(8 << 20);
  }
  table_cache_ = std::make_unique<TableCache>(dbname_, options_,
                                              options_.max_open_files);
  versions_ = std::make_unique<VersionSet>(dbname_, &options_,
                                           table_cache_.get(),
                                           &internal_comparator_);
}

DBImpl::~DBImpl() {
  MutexLock l(&mutex_);
  if (mem_ != nullptr) mem_->Unref();
  versions_.reset();
  table_cache_.reset();
  if (owns_cache_) {
    delete options_.block_cache;
  }
}

Status DBImpl::NewDB() {
  VersionEdit new_db;
  new_db.SetComparatorName(internal_comparator_.user_comparator()->Name());
  new_db.SetLogNumber(0);
  new_db.SetNextFile(2);
  new_db.SetLastSequence(0);

  const std::string manifest = DescriptorFileName(dbname_, 1);
  std::unique_ptr<WritableFile> file;
  Status s = env_->NewWritableFile(manifest, &file);
  if (!s.ok()) {
    return s;
  }
  {
    wal::Writer log(file.get());
    std::string record;
    new_db.EncodeTo(&record);
    s = log.AddRecord(record);
    if (s.ok()) {
      s = file->Sync();
    }
    if (s.ok()) {
      s = file->Close();
    }
  }
  if (s.ok()) {
    // Make "CURRENT" file that points to the new manifest file.
    s = SetCurrentFile(env_, dbname_, 1);
  } else {
    (void)env_->RemoveFile(manifest);  // best-effort cleanup
  }
  return s;
}

void DBImpl::RemoveObsoleteFiles() {
  if (!bg_error_.ok()) {
    // After a background error, we don't know whether a new version may
    // or may not have been committed, so we cannot safely garbage collect.
    return;
  }

  // Make a set of all of the live files
  std::set<uint64_t> live = pending_outputs_;
  versions_->AddLiveFiles(&live);

  std::vector<std::string> filenames;
  (void)env_->GetChildren(dbname_, &filenames);  // errors ignored on purpose
  uint64_t number;
  FileType type;
  std::vector<std::string> files_to_delete;
  for (std::string& filename : filenames) {
    if (ParseFileName(filename, &number, &type)) {
      bool keep = true;
      switch (type) {
        case kLogFile:
          keep = (number >= versions_->LogNumber());
          break;
        case kDescriptorFile:
          // Keep my manifest file, and any newer incarnations'.
          keep = (number >= versions_->ManifestFileNumber());
          break;
        case kTableFile:
          keep = (live.find(number) != live.end());
          break;
        case kTempFile:
          // Any temp files that are currently being written to must be
          // recorded in pending_outputs_, which is inserted into "live".
          keep = (live.find(number) != live.end());
          break;
        case kCurrentFile:
        case kDBLockFile:
          keep = true;
          break;
      }

      if (!keep) {
        files_to_delete.push_back(std::move(filename));
        if (type == kTableFile) {
          table_cache_->Evict(number);
        }
      }
    }
  }

  for (const std::string& filename : files_to_delete) {
    (void)env_->RemoveFile(dbname_ + "/" + filename);  // retried next pass
  }
}

Status DBImpl::Recover(VersionEdit* edit, bool* save_manifest) {
  (void)env_->CreateDir(dbname_);  // may already exist; Open fails later if not

  if (!env_->FileExists(CurrentFileName(dbname_))) {
    if (options_.create_if_missing) {
      Status s = NewDB();
      if (!s.ok()) {
        return s;
      }
    } else {
      return Status::InvalidArgument(
          dbname_, "does not exist (create_if_missing is false)");
    }
  } else {
    if (options_.error_if_exists) {
      return Status::InvalidArgument(dbname_,
                                     "exists (error_if_exists is true)");
    }
  }

  Status s = versions_->Recover(save_manifest);
  if (!s.ok()) {
    return s;
  }
  SequenceNumber max_sequence(0);

  // Recover from all newer log files than the ones named in the descriptor
  // (new log files may have been added by the previous incarnation without
  // registering them in the descriptor).
  const uint64_t min_log = versions_->LogNumber();
  std::vector<std::string> filenames;
  s = env_->GetChildren(dbname_, &filenames);
  if (!s.ok()) {
    return s;
  }
  std::set<uint64_t> expected;
  versions_->AddLiveFiles(&expected);
  uint64_t number;
  FileType type;
  std::vector<uint64_t> logs;
  for (size_t i = 0; i < filenames.size(); i++) {
    if (ParseFileName(filenames[i], &number, &type)) {
      expected.erase(number);
      if (type == kLogFile && number >= min_log) logs.push_back(number);
    }
  }
  if (!expected.empty()) {
    char buf[50];
    std::snprintf(buf, sizeof(buf), "%d missing table files",
                  static_cast<int>(expected.size()));
    return Status::Corruption(buf, TableFileName(dbname_, *expected.begin()));
  }

  // Recover in the order in which the logs were generated
  std::sort(logs.begin(), logs.end());
  for (size_t i = 0; i < logs.size(); i++) {
    s = RecoverLogFile(logs[i], (i == logs.size() - 1), save_manifest, edit,
                       &max_sequence);
    if (!s.ok()) {
      return s;
    }

    // The previous incarnation may not have written any MANIFEST records
    // after allocating this log number. So we manually update the file
    // number allocation counter in VersionSet.
    versions_->MarkFileNumberUsed(logs[i]);
  }

  if (versions_->LastSequence() < max_sequence) {
    versions_->SetLastSequence(max_sequence);
  }

  return Status::OK();
}

Status DBImpl::RecoverLogFile(uint64_t log_number, bool, bool* save_manifest,
                              VersionEdit* edit,
                              SequenceNumber* max_sequence) {
  struct LogReporter : public wal::Reader::Reporter {
    Status* status;
    void Corruption(size_t, const Status& s) override {
      if (this->status != nullptr && this->status->ok()) *this->status = s;
    }
  };

  // Open the log file
  std::string fname = LogFileName(dbname_, log_number);
  std::unique_ptr<SequentialFile> file;
  Status status = env_->NewSequentialFile(fname, &file);
  if (!status.ok()) {
    return status;
  }

  // Create the log reader.
  LogReporter reporter;
  reporter.status = (options_.paranoid_checks ? &status : nullptr);
  // We intentionally make the reader checksum mismatches tolerant unless
  // paranoid_checks is on, matching the common recovery posture.
  wal::Reader reader(file.get(), &reporter, true /*checksum*/);

  // Read all the records and add to a memtable
  std::string scratch;
  Slice record;
  WriteBatch batch;
  int compactions = 0;
  MemTable* mem = nullptr;
  while (reader.ReadRecord(&record, &scratch) && status.ok()) {
    if (record.size() < 12) {
      reporter.Corruption(record.size(),
                          Status::Corruption("log record too small"));
      continue;
    }
    WriteBatchInternal::SetContents(&batch, record);

    if (mem == nullptr) {
      mem = new MemTable(internal_comparator_);
      mem->Ref();
    }
    status = WriteBatchInternal::InsertInto(&batch, mem);
    if (!status.ok()) {
      break;
    }
    const SequenceNumber last_seq = WriteBatchInternal::Sequence(&batch) +
                                    WriteBatchInternal::Count(&batch) - 1;
    if (last_seq > *max_sequence) {
      *max_sequence = last_seq;
    }

    if (mem->ApproximateMemoryUsage() > options_.write_buffer_size) {
      compactions++;
      *save_manifest = true;
      status = WriteLevel0Table(mem, edit);
      mem->Unref();
      mem = nullptr;
      if (!status.ok()) {
        // Reflect errors immediately so that conditions like full
        // file-systems cause the DB::Open() to fail.
        break;
      }
    }
  }

  if (status.ok() && mem != nullptr) {
    *save_manifest = true;
    status = WriteLevel0Table(mem, edit);
  }
  if (mem != nullptr) mem->Unref();
  (void)compactions;
  return status;
}

Status DBImpl::WriteLevel0Table(MemTable* mem, VersionEdit* edit) {
  const uint64_t start_micros = SystemClock::NowMicros();
  FileMetaData meta;
  meta.number = versions_->NewFileNumber();
  pending_outputs_.insert(meta.number);
  Iterator* iter = mem->NewIterator();

  Status s;
  {
    // Build the table. The mutex stays held: the engine flushes the *active*
    // memtable (there is no immutable memtable in this synchronous design),
    // so a concurrent writer must not mutate it mid-flush. Writers simply
    // stall behind the flush, which is the intended write-stall behaviour.
    std::string fname = TableFileName(dbname_, meta.number);
    std::unique_ptr<WritableFile> file;
    s = env_->NewWritableFile(fname, &file);
    if (s.ok()) {
      TableBuilder builder(options_, file.get());
      iter->SeekToFirst();
      if (iter->Valid()) {
        meta.smallest.DecodeFrom(iter->key());
        Slice prev_key;
        for (; iter->Valid(); iter->Next()) {
          Slice key = iter->key();
          meta.largest.DecodeFrom(key);
          const Slice user_key = ExtractUserKey(key);
          builder.Add(key, iter->value(), user_key);
          ParsedInternalKey parsed;
          if (ParseInternalKey(key, &parsed)) {
            if (parsed.type == kTypeValue &&
                options_.secondary_key_extractor) {
              std::string sec =
                  options_.secondary_key_extractor(user_key, iter->value());
              if (!sec.empty()) {
                if (meta.min_secondary_key.empty() ||
                    sec < meta.min_secondary_key) {
                  meta.min_secondary_key = sec;
                }
                if (meta.max_secondary_key.empty() ||
                    sec > meta.max_secondary_key) {
                  meta.max_secondary_key = sec;
                }
              }
            }
          }
        }
        meta.num_entries = builder.NumEntries();
        meta.num_tombstones = mem->num_tombstones();
        meta.earliest_tombstone_seq = mem->earliest_tombstone_seq();
        meta.earliest_tombstone_wall_micros =
            mem->earliest_tombstone_wall_micros();
        // Mirror the metadata into the table's own properties block.
        TableProperties* props = builder.mutable_properties();
        props->num_tombstones = meta.num_tombstones;
        props->earliest_tombstone_time = meta.earliest_tombstone_seq;
        props->earliest_tombstone_wall_micros =
            meta.earliest_tombstone_wall_micros;
        props->min_secondary_key = meta.min_secondary_key;
        props->max_secondary_key = meta.max_secondary_key;
        s = builder.Finish();
        if (s.ok()) {
          meta.file_size = builder.FileSize();
          if (options_.sync_writes) s = file->Sync();
          if (s.ok()) s = file->Close();
        }
      } else {
        builder.Abandon();
      }
    }
  }

  if (!iter->status().ok()) {
    s = iter->status();
  }
  delete iter;
  pending_outputs_.erase(meta.number);

  // Note that if file_size is zero, the file has been deleted and should
  // not be added to the manifest.
  if (s.ok() && meta.file_size > 0) {
    meta.run_id = meta.number;
    edit->AddFile(0, meta);
    stats_.flush_count++;
    stats_.flush_bytes_written += meta.file_size;
  } else {
    (void)env_->RemoveFile(TableFileName(dbname_, meta.number));
  }
  (void)start_micros;
  return s;
}

Status DBImpl::CompactMemTable() {
  assert(mem_ != nullptr);
  if (mem_->num_entries() == 0) return Status::OK();

  VersionEdit edit;
  Status s = WriteLevel0Table(mem_, &edit);

  // Replace memtable and log file.
  if (s.ok()) {
    const uint64_t new_log_number = versions_->NewFileNumber();
    std::unique_ptr<WritableFile> lfile;
    if (!options_.disable_wal) {
      s = env_->NewWritableFile(LogFileName(dbname_, new_log_number), &lfile);
    }
    if (s.ok()) {
      edit.SetLogNumber(new_log_number);
      s = versions_->LogAndApply(&edit, &mutex_);
    }
    if (s.ok()) {
      if (!options_.disable_wal) {
        logfile_ = std::move(lfile);
        log_ = std::make_unique<wal::Writer>(logfile_.get());
      }
      logfile_number_ = new_log_number;
      mem_->Unref();
      mem_ = new MemTable(internal_comparator_);
      mem_->Ref();
      RemoveObsoleteFiles();
    }
  }

  if (!s.ok()) {
    RecordBackgroundError(s);
  }
  return s;
}

SequenceNumber DBImpl::SmallestSnapshot() const {
  return snapshots_.empty() ? versions_->LastSequence()
                            : snapshots_.oldest()->sequence_number();
}

Status DBImpl::MakeRoomForWrite() {
  if (!bg_error_.ok()) return bg_error_;

  bool flush = mem_->ApproximateMemoryUsage() >= options_.write_buffer_size;

  // FADE also bounds how long a tombstone may sit in the *memtable*: flush
  // once the oldest buffered tombstone has consumed half of level 0's TTL
  // budget (the other half covers its L0 residency).
  if (!flush && planner_.delete_aware() && mem_->num_tombstones() > 0) {
    const int depth = versions_->current()->DeepestNonEmptyLevel() + 1;
    const uint64_t age =
        versions_->LastSequence() - mem_->earliest_tombstone_seq();
    if (age > planner_.LevelTtl(0, depth) / 2) {
      flush = true;
    }
  }

  if (flush) {
    Status s = CompactMemTable();
    if (!s.ok()) return s;
    return MaybeCompact();
  }
  return Status::OK();
}

void DBImpl::ComputeNextTtlDeadline() {
  next_ttl_deadline_ = UINT64_MAX;
  if (!planner_.delete_aware()) return;
  Version* v = versions_->current();
  const int depth = v->DeepestNonEmptyLevel() + 1;
  for (int level = 0; level < kNumLevels; level++) {
    for (FileMetaData* f : v->files(level)) {
      if (!f->has_tombstones()) continue;
      const uint64_t deadline =
          f->earliest_tombstone_seq + planner_.CumulativeTtl(level, depth);
      next_ttl_deadline_ = std::min(next_ttl_deadline_, deadline);
    }
  }
}

Status DBImpl::MaybeCompact() {
  // Run compactions until the planner is satisfied. The loop
  // terminates because every compaction either reduces the trigger that
  // caused it (run counts, level sizes) or eliminates expired tombstones.
  Status s = bg_error_;
  int safety = 0;
  while (s.ok()) {
    if (++safety > 10000) {
      s = Status::Corruption("compaction loop failed to converge");
      RecordBackgroundError(s);
      break;
    }
    std::unique_ptr<Compaction> c(
        versions_->PickCompaction(planner_, SmallestSnapshot()));
    if (c == nullptr) break;

    stats_.compaction_count++;
    size_t reason_idx = static_cast<size_t>(c->reason());
    if (reason_idx < stats_.compactions_by_reason.size()) {
      stats_.compactions_by_reason[reason_idx]++;
    }

    if (c->IsTrivialMove()) {
      // Move file to next level
      assert(c->num_input_files(0) == 1);
      FileMetaData* f = c->input(0, 0);
      c->edit()->RemoveFile(c->level(), f->number);
      FileMetaData moved = *f;
      moved.refs = 0;
      c->edit()->AddFile(c->output_level(), moved);
      s = versions_->LogAndApply(c->edit(), &mutex_);
      if (!s.ok()) {
        RecordBackgroundError(s);
      }
      stats_.trivial_move_count++;
    } else {
      CompactionState* compact = new CompactionState(c.get());
      s = DoCompactionWork(compact);
      if (!s.ok()) {
        RecordBackgroundError(s);
      }
      CleanupCompaction(compact);
      c->ReleaseInputs();
      RemoveObsoleteFiles();
    }
  }
  ComputeNextTtlDeadline();
  return s;
}

Status DBImpl::OpenCompactionOutputFile(CompactionState* compact) {
  assert(compact != nullptr);
  assert(compact->builder == nullptr);
  uint64_t file_number;
  {
    file_number = versions_->NewFileNumber();
    pending_outputs_.insert(file_number);
    CompactionState::Output out;
    out.number = file_number;
    out.smallest.Clear();
    out.largest.Clear();
    compact->outputs.push_back(out);
  }

  // Make the output file (IO under mutex: acceptable for the synchronous
  // compaction model, the writer is the only active thread).
  std::string fname = TableFileName(dbname_, file_number);
  Status s = env_->NewWritableFile(fname, &compact->outfile);
  if (s.ok()) {
    compact->builder = std::make_unique<TableBuilder>(options_,
                                                      compact->outfile.get());
  }
  return s;
}

Status DBImpl::FinishCompactionOutputFile(CompactionState* compact,
                                          Iterator* input) {
  assert(compact != nullptr);
  assert(compact->outfile != nullptr);
  assert(compact->builder != nullptr);

  const uint64_t output_number = compact->current_output()->number;
  assert(output_number != 0);

  // Check for iterator errors
  Status s = input->status();
  const uint64_t current_entries = compact->builder->NumEntries();

  // Mirror tombstone metadata into the table's properties block.
  CompactionState::Output* out = compact->current_output();
  TableProperties* props = compact->builder->mutable_properties();
  props->num_tombstones = out->num_tombstones;
  props->earliest_tombstone_time = out->earliest_tombstone_seq;
  props->earliest_tombstone_wall_micros = out->earliest_tombstone_wall_micros;
  props->min_secondary_key = out->min_secondary_key;
  props->max_secondary_key = out->max_secondary_key;

  if (s.ok()) {
    s = compact->builder->Finish();
  } else {
    compact->builder->Abandon();
  }
  const uint64_t current_bytes = compact->builder->FileSize();
  out->file_size = current_bytes;
  out->num_entries = current_entries;
  compact->total_bytes += current_bytes;
  compact->builder.reset();

  // Finish and check for file errors
  if (s.ok() && options_.sync_writes) {
    s = compact->outfile->Sync();
  }
  if (s.ok()) {
    s = compact->outfile->Close();
  }
  compact->outfile.reset();

  if (s.ok() && current_entries == 0) {
    // An empty output: delete it and forget it.
    (void)env_->RemoveFile(TableFileName(dbname_, output_number));
    pending_outputs_.erase(output_number);
    compact->outputs.pop_back();
  }
  return s;
}

Status DBImpl::InstallCompactionResults(CompactionState* compact) {
  // Add compaction outputs
  compact->compaction->AddInputDeletions(compact->compaction->edit());
  const int output_level = compact->compaction->output_level();
  for (size_t i = 0; i < compact->outputs.size(); i++) {
    const CompactionState::Output& out = compact->outputs[i];
    FileMetaData meta;
    meta.number = out.number;
    meta.file_size = out.file_size;
    meta.smallest = out.smallest;
    meta.largest = out.largest;
    meta.num_entries = out.num_entries;
    meta.num_tombstones = out.num_tombstones;
    meta.earliest_tombstone_seq = out.earliest_tombstone_seq;
    meta.earliest_tombstone_wall_micros = out.earliest_tombstone_wall_micros;
    meta.min_secondary_key = out.min_secondary_key;
    meta.max_secondary_key = out.max_secondary_key;
    meta.run_id = out.number;
    compact->compaction->edit()->AddFile(output_level, meta);
  }
  return versions_->LogAndApply(compact->compaction->edit(), &mutex_);
}

Status DBImpl::DoCompactionWork(CompactionState* compact) {
  assert(versions_->NumLevelFiles(compact->compaction->level()) > 0);
  assert(compact->builder == nullptr);
  assert(compact->outfile == nullptr);

  compact->smallest_snapshot = SmallestSnapshot();
  stats_.compaction_bytes_read += compact->compaction->TotalInputBytes();

  Iterator* input = versions_->MakeInputIterator(compact->compaction);
  input->SeekToFirst();
  Status status;
  ParsedInternalKey ikey;
  std::string current_user_key;
  bool has_current_user_key = false;
  SequenceNumber last_sequence_for_key = kMaxSequenceNumber;
  const SequenceNumber now_seq = versions_->LastSequence();

  while (input->Valid()) {
    Slice key = input->key();
    bool drop = false;
    if (!ParseInternalKey(key, &ikey)) {
      // Do not hide error keys
      current_user_key.clear();
      has_current_user_key = false;
      last_sequence_for_key = kMaxSequenceNumber;
    } else {
      if (!has_current_user_key ||
          internal_comparator_.user_comparator()->Compare(
              ikey.user_key, Slice(current_user_key)) != 0) {
        // First occurrence of this user key
        current_user_key.assign(ikey.user_key.data(), ikey.user_key.size());
        has_current_user_key = true;
        last_sequence_for_key = kMaxSequenceNumber;
      }

      if (last_sequence_for_key <= compact->smallest_snapshot) {
        // Hidden by an newer entry for same user key
        drop = true;  // (A)
        stats_.entries_shadowed_dropped++;
        if (ikey.type == kTypeDeletion) {
          // A newer write replaced this tombstone before it could persist.
          monitor_.OnTombstoneSuperseded();
        }
      } else if (ikey.type == kTypeDeletion &&
                 ikey.sequence <= compact->smallest_snapshot &&
                 compact->compaction->IsBaseLevelForKey(ikey.user_key)) {
        // For this user key:
        // (1) there is no data in higher levels
        // (2) data in lower levels will have larger sequence numbers
        // (3) data in layers that are being compacted here and have
        //     smaller sequence numbers will be dropped in the next
        //     few iterations of this loop (by rule (A) above).
        // Therefore this deletion marker is obsolete and can be dropped:
        // the delete is now *persistent*.
        drop = true;
        stats_.tombstones_dropped_bottom++;
        monitor_.OnTombstonePersisted(ikey.sequence, now_seq);
      }

      last_sequence_for_key = ikey.sequence;
    }

    if (!drop) {
      // Open output file if necessary
      if (compact->builder == nullptr) {
        status = OpenCompactionOutputFile(compact);
        if (!status.ok()) {
          break;
        }
      }
      CompactionState::Output* out = compact->current_output();
      if (compact->builder->NumEntries() == 0) {
        out->smallest.DecodeFrom(key);
      }
      out->largest.DecodeFrom(key);
      compact->builder->Add(key, input->value(), ExtractUserKey(key));

      // Maintain Acheron per-output metadata.
      if (ikey.type == kTypeDeletion) {
        out->num_tombstones++;
        if (ikey.sequence < out->earliest_tombstone_seq) {
          out->earliest_tombstone_seq = ikey.sequence;
          // Approximate: inherit the earliest wall stamp among inputs.
          for (int which = 0; which < 2; which++) {
            for (int i = 0; i < compact->compaction->num_input_files(which);
                 i++) {
              out->earliest_tombstone_wall_micros =
                  std::min(out->earliest_tombstone_wall_micros,
                           compact->compaction->input(which, i)
                               ->earliest_tombstone_wall_micros);
            }
          }
        }
      } else if (options_.secondary_key_extractor) {
        std::string sec = options_.secondary_key_extractor(ikey.user_key,
                                                           input->value());
        if (!sec.empty()) {
          if (out->min_secondary_key.empty() || sec < out->min_secondary_key) {
            out->min_secondary_key = sec;
          }
          if (out->max_secondary_key.empty() || sec > out->max_secondary_key) {
            out->max_secondary_key = sec;
          }
        }
      }

      // Close output file if it is big enough
      if (compact->builder->FileSize() >=
          compact->compaction->MaxOutputFileSize()) {
        status = FinishCompactionOutputFile(compact, input);
        if (!status.ok()) {
          break;
        }
      }
    }

    input->Next();
  }

  if (status.ok() && compact->builder != nullptr) {
    status = FinishCompactionOutputFile(compact, input);
  }
  if (status.ok()) {
    status = input->status();
  }
  delete input;
  input = nullptr;

  stats_.compaction_bytes_written += compact->total_bytes;

  if (status.ok()) {
    status = InstallCompactionResults(compact);
  }
  return status;
}

void DBImpl::CleanupCompaction(CompactionState* compact) {
  if (compact->builder != nullptr) {
    // May happen if we get a shutdown call in the middle of compaction
    compact->builder->Abandon();
    compact->builder.reset();
  }
  compact->outfile.reset();
  for (size_t i = 0; i < compact->outputs.size(); i++) {
    const CompactionState::Output& out = compact->outputs[i];
    pending_outputs_.erase(out.number);
  }
  delete compact;
}

void DBImpl::RecordBackgroundError(const Status& s) {
  if (bg_error_.ok()) {
    bg_error_ = s;
  }
}

// ---------------- Reads ----------------

Status DBImpl::Get(const ReadOptions& options, const Slice& key,
                   std::string* value) {
  Status s;
  MutexLock l(&mutex_);
  SequenceNumber snapshot;
  if (options.snapshot != nullptr) {
    snapshot =
        static_cast<const SnapshotImpl*>(options.snapshot)->sequence_number();
  } else {
    snapshot = versions_->LastSequence();
  }

  MemTable* mem = mem_;
  mem->Ref();
  Version* current = versions_->current();
  current->Ref();
  stats_.gets++;

  // Unlock while reading from files and memtables
  {
    mutex_.Unlock();
    // First look in the memtable, then in the SSTables.
    LookupKey lkey(key, snapshot);
    if (mem->Get(lkey, value, &s)) {
      // Done
    } else {
      s = current->Get(options, lkey, value);
    }
    mutex_.Lock();
  }

  if (s.ok()) stats_.gets_found++;
  mem->Unref();
  current->Unref();
  return s;
}

namespace {
// Pinned state for a live internal iterator. Ref counts (and the version
// list) are protected by the DB mutex, and an iterator can be destroyed by
// any thread at any time, so the cleanup must re-acquire the mutex.
struct IterState {
  Mutex* const mu;
  MemTable* const mem GUARDED_BY(mu);
  Version* const version GUARDED_BY(mu);

  IterState(Mutex* mutex, MemTable* m, Version* v)
      : mu(mutex), mem(m), version(v) {}
};

void CleanupIteratorState(void* arg1, void* /*arg2*/) {
  IterState* state = reinterpret_cast<IterState*>(arg1);
  state->mu->Lock();
  state->mem->Unref();
  state->version->Unref();
  state->mu->Unlock();
  delete state;
}
}  // anonymous namespace

Iterator* DBImpl::NewInternalIterator(const ReadOptions& options,
                                      SequenceNumber* latest_snapshot) {
  MutexLock l(&mutex_);
  *latest_snapshot = versions_->LastSequence();

  // Collect together all needed child iterators
  std::vector<Iterator*> list;
  list.push_back(mem_->NewIterator());
  mem_->Ref();
  versions_->current()->AddIterators(options, &list);
  Iterator* internal_iter = NewMergingIterator(
      &internal_comparator_, list.data(), static_cast<int>(list.size()));
  Version* current = versions_->current();
  current->Ref();

  IterState* cleanup = new IterState(&mutex_, mem_, current);
  internal_iter->RegisterCleanup(CleanupIteratorState, cleanup, nullptr);
  return internal_iter;
}

Iterator* DBImpl::TEST_NewInternalIterator() {
  SequenceNumber ignored;
  return NewInternalIterator(ReadOptions(), &ignored);
}

Iterator* DBImpl::NewIterator(const ReadOptions& options) {
  SequenceNumber latest_snapshot;
  Iterator* iter = NewInternalIterator(options, &latest_snapshot);
  SequenceNumber seq =
      (options.snapshot != nullptr
           ? static_cast<const SnapshotImpl*>(options.snapshot)
                 ->sequence_number()
           : latest_snapshot);
  return NewDBIterator(internal_comparator_.user_comparator(), iter, seq,
                       &iter_tombstones_skipped_);
}

const Snapshot* DBImpl::GetSnapshot() {
  MutexLock l(&mutex_);
  return snapshots_.New(versions_->LastSequence());
}

void DBImpl::ReleaseSnapshot(const Snapshot* snapshot) {
  MutexLock l(&mutex_);
  snapshots_.Delete(static_cast<const SnapshotImpl*>(snapshot));
}

// ---------------- Writes ----------------

Status DBImpl::Put(const WriteOptions& o, const Slice& key,
                   const Slice& val) {
  WriteBatch batch;
  batch.Put(key, val);
  return Write(o, &batch);
}

Status DBImpl::Delete(const WriteOptions& options, const Slice& key) {
  WriteBatch batch;
  batch.Delete(key);
  return Write(options, &batch);
}

namespace {
// Counts the tombstones in a batch for the persistence monitor.
class DeleteCounter : public WriteBatch::Handler {
 public:
  uint64_t deletes = 0;
  uint64_t bytes = 0;
  void Put(const Slice& key, const Slice& value) override {
    bytes += key.size() + value.size();
  }
  void Delete(const Slice& key) override {
    deletes++;
    bytes += key.size();
  }
};
}  // namespace

Status DBImpl::Write(const WriteOptions& options, WriteBatch* updates) {
  MutexLock l(&mutex_);
  Status status = MakeRoomForWrite();
  if (!status.ok()) return status;

  const SequenceNumber last_sequence = versions_->LastSequence();
  WriteBatchInternal::SetSequence(updates, last_sequence + 1);
  const int count = WriteBatchInternal::Count(updates);

  // Append to WAL, then apply to the memtable.
  if (!options_.disable_wal) {
    Slice contents = WriteBatchInternal::Contents(updates);
    status = log_->AddRecord(contents);
    stats_.wal_bytes_written += contents.size();
    if (status.ok() && (options.sync || options_.sync_writes)) {
      status = logfile_->Sync();
    }
  }
  if (status.ok()) {
    status = WriteBatchInternal::InsertInto(updates, mem_);
  }
  if (status.ok()) {
    versions_->SetLastSequence(last_sequence + count);
    DeleteCounter counter;
    // The batch was just applied, so re-iterating it cannot fail.
    (void)updates->Iterate(&counter);
    stats_.user_bytes_written += counter.bytes;
    if (counter.deletes > 0) {
      monitor_.OnTombstoneWritten(counter.deletes);
    }
    // FADE: the logical clock just advanced; fire the compaction loop the
    // moment a file's tombstone TTL lapses, independent of flush activity.
    if (versions_->LastSequence() >= next_ttl_deadline_) {
      status = MaybeCompact();
    }
  } else {
    RecordBackgroundError(status);
  }
  return status;
}

Status DBImpl::FlushMemTable() {
  MutexLock l(&mutex_);
  Status s = CompactMemTable();
  if (s.ok()) s = MaybeCompact();
  return s;
}

Status DBImpl::WaitForCompactions() {
  MutexLock l(&mutex_);
  return MaybeCompact();
}

void DBImpl::CompactRange(const Slice* begin, const Slice* end) {
  int max_level_with_files = 1;
  {
    MutexLock l(&mutex_);
    Version* base = versions_->current();
    for (int level = 1; level < kNumLevels; level++) {
      if (base->OverlapInLevel(level, begin, end)) {
        max_level_with_files = level;
      }
    }
  }
  // Best-effort: a failed flush is recorded as the sticky background error
  // and surfaces on the next write; CompactRange itself is void by API.
  (void)FlushMemTable();
  for (int level = 0; level <= max_level_with_files; level++) {
    TEST_CompactRange(level, begin, end);
  }
}

void DBImpl::TEST_CompactRange(int level, const Slice* begin,
                               const Slice* end) {
  assert(level >= 0);
  assert(level < kNumLevels);

  InternalKey begin_storage, end_storage;
  InternalKey* begin_key = nullptr;
  InternalKey* end_key = nullptr;
  if (begin != nullptr) {
    begin_storage = InternalKey(*begin, kMaxSequenceNumber, kValueTypeForSeek);
    begin_key = &begin_storage;
  }
  if (end != nullptr) {
    end_storage = InternalKey(*end, 0, static_cast<ValueType>(0));
    end_key = &end_storage;
  }

  MutexLock l(&mutex_);
  std::unique_ptr<Compaction> c(
      versions_->CompactRange(level, begin_key, end_key));
  if (c == nullptr) return;

  stats_.compaction_count++;
  stats_.compactions_by_reason[static_cast<size_t>(
      CompactionReason::kManual)]++;

  CompactionState* compact = new CompactionState(c.get());
  Status s = DoCompactionWork(compact);
  if (!s.ok()) {
    RecordBackgroundError(s);
  }
  CleanupCompaction(compact);
  c->ReleaseInputs();
  RemoveObsoleteFiles();
}

// ---------------- Properties & stats ----------------

bool DBImpl::GetProperty(const Slice& property, std::string* value) {
  value->clear();
  MutexLock l(&mutex_);
  Slice in = property;
  Slice prefix("acheron.");
  if (!in.starts_with(prefix)) return false;
  in.remove_prefix(prefix.size());

  if (in.starts_with("num-files-at-level")) {
    in.remove_prefix(strlen("num-files-at-level"));
    uint64_t level = 0;
    bool ok = !in.empty();
    for (size_t i = 0; ok && i < in.size(); i++) {
      if (in[i] < '0' || in[i] > '9') {
        ok = false;
      } else {
        level = level * 10 + (in[i] - '0');
      }
    }
    if (!ok || level >= static_cast<uint64_t>(kNumLevels)) {
      return false;
    }
    *value = std::to_string(versions_->NumLevelFiles(static_cast<int>(level)));
    return true;
  } else if (in == "stats") {
    InternalStats merged = stats_;
    merged.iter_tombstones_skipped =
        iter_tombstones_skipped_.load(std::memory_order_relaxed);
    *value = merged.ToString();
    return true;
  } else if (in == "sstables") {
    *value = versions_->current()->DebugString();
    return true;
  } else if (in == "level-summary") {
    // One line per populated level: "level files bytes tombstones".
    Version* v = versions_->current();
    for (int level = 0; level < kNumLevels; level++) {
      if (v->files(level).empty()) continue;
      uint64_t tombstones = 0;
      for (FileMetaData* f : v->files(level)) tombstones += f->num_tombstones;
      char buf[128];
      std::snprintf(buf, sizeof(buf), "%d %d %lld %llu\n", level,
                    v->NumFiles(level),
                    static_cast<long long>(v->NumLevelBytes(level)),
                    static_cast<unsigned long long>(tombstones));
      value->append(buf);
    }
    return true;
  } else if (in == "total-bytes") {
    int64_t total = 0;
    for (int level = 0; level < kNumLevels; level++) {
      total += versions_->NumLevelBytes(level);
    }
    *value = std::to_string(total);
    return true;
  } else if (in == "total-tombstones") {
    *value = std::to_string(versions_->current()->TotalTombstones() +
                            mem_->num_tombstones());
    return true;
  } else if (in == "max-tombstone-age") {
    uint64_t age =
        versions_->current()->MaxTombstoneAge(versions_->LastSequence());
    if (mem_->num_tombstones() > 0) {
      age = std::max(age, versions_->LastSequence() -
                              mem_->earliest_tombstone_seq());
    }
    *value = std::to_string(age);
    return true;
  } else if (in == "delete-stats") {
    DeleteStats ds;
    uint64_t live = versions_->current()->TotalTombstones() +
                    mem_->num_tombstones();
    uint64_t age =
        versions_->current()->MaxTombstoneAge(versions_->LastSequence());
    monitor_.Snapshot(&ds, live, age);
    *value = ds.ToString();
    return true;
  }
  return false;
}

DeleteStats DBImpl::GetDeleteStats() {
  MutexLock l(&mutex_);
  DeleteStats ds;
  uint64_t live =
      versions_->current()->TotalTombstones() + mem_->num_tombstones();
  uint64_t age =
      versions_->current()->MaxTombstoneAge(versions_->LastSequence());
  if (mem_->num_tombstones() > 0) {
    age = std::max(age,
                   versions_->LastSequence() - mem_->earliest_tombstone_seq());
  }
  monitor_.Snapshot(&ds, live, age);
  return ds;
}

InternalStats DBImpl::GetStats() {
  MutexLock l(&mutex_);
  InternalStats merged = stats_;
  merged.iter_tombstones_skipped =
      iter_tombstones_skipped_.load(std::memory_order_relaxed);
  return merged;
}

// ---------------- Secondary (retention) purge, KiWi-lite ----------------

Status DBImpl::RewriteFileForPurge(FileMetaData* f, int level,
                                   const Slice& threshold,
                                   VersionEdit* edit) {
  // Rewrites |f| skipping every value entry whose secondary
  // key sorts below |threshold|. Tombstones are preserved.
  ReadOptions ropts;
  ropts.fill_cache = false;
  std::unique_ptr<Iterator> it(
      table_cache_->NewIterator(ropts, f->number, f->file_size));

  const uint64_t new_number = versions_->NewFileNumber();
  pending_outputs_.insert(new_number);
  std::unique_ptr<WritableFile> file;
  Status s = env_->NewWritableFile(TableFileName(dbname_, new_number), &file);
  if (!s.ok()) {
    pending_outputs_.erase(new_number);
    return s;
  }

  FileMetaData meta;
  meta.number = new_number;
  TableBuilder builder(options_, file.get());
  uint64_t dropped = 0;
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    Slice key = it->key();
    ParsedInternalKey parsed;
    bool keep = true;
    std::string sec;
    if (ParseInternalKey(key, &parsed) && parsed.type == kTypeValue) {
      sec = options_.secondary_key_extractor(parsed.user_key, it->value());
      if (!sec.empty() && Slice(sec).compare(threshold) < 0) {
        keep = false;
        dropped++;
      }
    }
    if (!keep) continue;
    if (builder.NumEntries() == 0) meta.smallest.DecodeFrom(key);
    meta.largest.DecodeFrom(key);
    builder.Add(key, it->value(), ExtractUserKey(key));
    if (ParseInternalKey(key, &parsed)) {
      if (parsed.type == kTypeDeletion) {
        meta.num_tombstones++;
        meta.earliest_tombstone_seq =
            std::min(meta.earliest_tombstone_seq, parsed.sequence);
        meta.earliest_tombstone_wall_micros = std::min(
            meta.earliest_tombstone_wall_micros,
            f->earliest_tombstone_wall_micros);
      } else if (!sec.empty()) {
        if (meta.min_secondary_key.empty() || sec < meta.min_secondary_key) {
          meta.min_secondary_key = sec;
        }
        if (meta.max_secondary_key.empty() || sec > meta.max_secondary_key) {
          meta.max_secondary_key = sec;
        }
      }
    }
  }
  if (!it->status().ok()) {
    s = it->status();
  }

  if (s.ok() && builder.NumEntries() > 0) {
    meta.num_entries = builder.NumEntries();
    TableProperties* props = builder.mutable_properties();
    props->num_tombstones = meta.num_tombstones;
    props->earliest_tombstone_time = meta.earliest_tombstone_seq;
    props->min_secondary_key = meta.min_secondary_key;
    props->max_secondary_key = meta.max_secondary_key;
    s = builder.Finish();
    if (s.ok()) {
      meta.file_size = builder.FileSize();
      meta.run_id = f->run_id;  // preserve recency ordering within the level
      s = file->Close();
    }
    if (s.ok()) {
      edit->RemoveFile(level, f->number);
      edit->AddFile(level, meta);
      stats_.blocks_purged_secondary += dropped;
    }
  } else {
    builder.Abandon();
    if (s.ok()) {
      // Everything in the file was purged.
      (void)env_->RemoveFile(TableFileName(dbname_, new_number));
      edit->RemoveFile(level, f->number);
      stats_.blocks_purged_secondary += dropped;
    }
  }
  pending_outputs_.erase(new_number);
  return s;
}

Status DBImpl::PurgeSecondaryRange(const Slice& threshold) {
  if (!options_.secondary_key_extractor) {
    return Status::NotSupported(
        "PurgeSecondaryRange requires Options::secondary_key_extractor");
  }
  // Flush so the memtable participates (simplest correct semantics).
  Status s = FlushMemTable();
  if (!s.ok()) return s;

  MutexLock l(&mutex_);
  VersionEdit edit;
  Version* base = versions_->current();
  base->Ref();
  for (int level = 0; level < kNumLevels && s.ok(); level++) {
    for (FileMetaData* f : base->files(level)) {
      if (f->max_secondary_key.empty()) {
        // File holds no secondary-keyed values (e.g. all tombstones); skip.
        continue;
      }
      if (Slice(f->max_secondary_key).compare(threshold) < 0) {
        // Whole file is dead: drop it without reading a byte (this is the
        // KiWi-style wholesale drop the experiment measures).
        edit.RemoveFile(level, f->number);
        continue;
      }
      if (Slice(f->min_secondary_key).compare(threshold) < 0) {
        // Straddles the threshold: rewrite, skipping dead entries.
        s = RewriteFileForPurge(f, level, threshold, &edit);
        if (!s.ok()) break;
      }
    }
  }
  base->Unref();
  if (s.ok()) {
    s = versions_->LogAndApply(&edit, &mutex_);
  }
  if (s.ok()) {
    RemoveObsoleteFiles();
  }
  return s;
}

// ---------------- Open / Destroy ----------------

Status DB::Open(const Options& options, const std::string& dbname, DB** dbptr) {
  *dbptr = nullptr;

  DBImpl* impl = new DBImpl(options, dbname);
  impl->mutex_.Lock();
  VersionEdit edit;
  // Recover handles create_if_missing, error_if_exists
  bool save_manifest = false;
  Status s = impl->Recover(&edit, &save_manifest);
  if (s.ok() && impl->mem_ == nullptr) {
    // Create new log and a corresponding memtable.
    uint64_t new_log_number = impl->versions_->NewFileNumber();
    if (!impl->options_.disable_wal) {
      std::unique_ptr<WritableFile> lfile;
      s = impl->env_->NewWritableFile(LogFileName(dbname, new_log_number),
                                      &lfile);
      if (s.ok()) {
        impl->logfile_ = std::move(lfile);
        impl->log_ = std::make_unique<wal::Writer>(impl->logfile_.get());
      }
    }
    if (s.ok()) {
      edit.SetLogNumber(new_log_number);
      impl->logfile_number_ = new_log_number;
      impl->mem_ = new MemTable(impl->internal_comparator_);
      impl->mem_->Ref();
    }
  }
  if (s.ok() && save_manifest) {
    edit.SetLogNumber(impl->logfile_number_);
    s = impl->versions_->LogAndApply(&edit, &impl->mutex_);
  }
  if (s.ok()) {
    impl->RemoveObsoleteFiles();
    s = impl->MaybeCompact();
  }
  impl->mutex_.Unlock();
  if (s.ok()) {
    assert(impl->mem_ != nullptr);
    *dbptr = impl;
  } else {
    delete impl;
  }
  return s;
}

Status DestroyDB(const std::string& dbname, const Options& options) {
  Env* env = options.env ? options.env : DefaultEnv();
  std::vector<std::string> filenames;
  Status result = env->GetChildren(dbname, &filenames);
  if (!result.ok()) {
    // Ignore error in case directory does not exist
    return Status::OK();
  }

  uint64_t number;
  FileType type;
  for (size_t i = 0; i < filenames.size(); i++) {
    if (ParseFileName(filenames[i], &number, &type)) {
      Status del = env->RemoveFile(dbname + "/" + filenames[i]);
      if (result.ok() && !del.ok()) {
        result = del;
      }
    }
  }
  // Ignore error in case dir contains other files.
  (void)env->RemoveDir(dbname);
  return result;
}

}  // namespace acheron
