// acheron::DB -- the public interface of the Acheron storage engine.
//
// Acheron is an LSM key-value store with first-class *persistent deletes*:
// with Options::delete_persistence_threshold = D_th, every Delete() is
// guaranteed to become physically persistent (its tombstone dropped at the
// bottommost level, all shadowed versions gone) within D_th subsequently
// ingested operations, enforced by delete-aware (FADE) compaction.
//
// Usage:
//   acheron::Options opt;
//   opt.delete_persistence_threshold = 1'000'000;
//   acheron::DB* db;
//   auto s = acheron::DB::Open(opt, "/tmp/db", &db);
//   db->Put(acheron::WriteOptions(), "k", "v");
//   db->Delete(acheron::WriteOptions(), "k");
//   delete db;
#ifndef ACHERON_LSM_DB_H_
#define ACHERON_LSM_DB_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/core/persistence_monitor.h"
#include "src/lsm/options.h"
#include "src/lsm/stats.h"
#include "src/lsm/write_batch.h"
#include "src/table/iterator.h"
#include "src/util/status.h"

namespace acheron {

class Snapshot;

class DB {
 public:
  // Open the database with the specified "name". Stores a pointer to a
  // heap-allocated database in *dbptr and returns OK on success. Caller
  // should delete *dbptr when it is no longer needed.
  static Status Open(const Options& options, const std::string& name,
                     DB** dbptr);

  DB() = default;
  DB(const DB&) = delete;
  DB& operator=(const DB&) = delete;

  virtual ~DB() = default;

  // Set the database entry for "key" to "value".
  virtual Status Put(const WriteOptions& options, const Slice& key,
                     const Slice& value) = 0;

  // Remove the database entry (if any) for "key". It is not an error if
  // "key" did not exist. With a delete persistence threshold configured the
  // physical removal of all versions of "key" is bounded by D_th ingested
  // operations.
  virtual Status Delete(const WriteOptions& options, const Slice& key) = 0;

  // Remove every database entry with a key in the range [begin, end) --
  // begin inclusive, end exclusive -- as a single atomic write. Implemented
  // as one range tombstone (kTypeRangeDeletion), not one tombstone per key,
  // so the cost is independent of how many keys the span covers. An
  // inverted range (begin >= end) is a no-op. Like point deletes, range
  // tombstones age under FADE: with a delete persistence threshold D_th the
  // covered versions are physically gone within D_th ingested operations.
  virtual Status DeleteRange(const WriteOptions& options, const Slice& begin,
                             const Slice& end) = 0;

  // Apply the specified updates to the database atomically.
  virtual Status Write(const WriteOptions& options, WriteBatch* updates) = 0;

  // If the database contains an entry for "key" store the corresponding
  // value in *value and return OK. If there is no entry for "key" return a
  // status for which Status::IsNotFound() returns true.
  virtual Status Get(const ReadOptions& options, const Slice& key,
                     std::string* value) = 0;

  // Look up a batch of keys in one call. values is resized to keys.size();
  // the returned vector holds one status per key, aligned with |keys| (OK =
  // found, NotFound, or an error). All lookups observe the same snapshot.
  // The default implementation loops over Get; DBImpl overrides it to fan
  // the table-block reads of the whole batch out through the Env's
  // asynchronous submission path, so large cold-read batches overlap their
  // IO instead of paying one synchronous round trip per key.
  virtual std::vector<Status> MultiGet(const ReadOptions& options,
                                       std::span<const Slice> keys,
                                       std::vector<std::string>* values);

  // Return a heap-allocated iterator over the contents of the database.
  // The result of NewIterator() is initially invalid (caller must call one
  // of the Seek methods on the iterator before using it). Caller should
  // delete the iterator when it is no longer needed before this db is
  // deleted.
  virtual Iterator* NewIterator(const ReadOptions& options) = 0;

  // Return a handle to the current DB state. Iterators created with this
  // handle will all observe a stable snapshot of the current DB state. The
  // caller must call ReleaseSnapshot(result) when the snapshot is no longer
  // needed. NOTE: a live snapshot pins tombstones (they cannot persist past
  // it), so long-lived snapshots extend delete-persistence latency.
  virtual const Snapshot* GetSnapshot() = 0;
  virtual void ReleaseSnapshot(const Snapshot* snapshot) = 0;

  // DB implementations can export properties about their state via this
  // method. If "property" is a valid property understood by this DB
  // implementation, fills "*value" with its current value and returns true.
  //
  //   "acheron.num-files-at-level<N>"  -- file count at level N
  //   "acheron.stats"                  -- engine statistics
  //   "acheron.sstables"               -- per-level file listing
  //   "acheron.total-bytes"            -- bytes across all table files
  //   "acheron.total-tombstones"       -- live tombstones in the tree
  //   "acheron.max-tombstone-age"      -- age (ops) of oldest live tombstone
  //   "acheron.delete-stats"           -- delete-persistence summary
  //   "acheron.background-error"       -- background-error state machine
  //                                       (state, subsystem, attempts,
  //                                       retry budget, D_th-at-risk flag,
  //                                       last error)
  virtual bool GetProperty(const Slice& property, std::string* value) = 0;

  // Compact the underlying storage for the key range [*begin,*end].
  // begin==nullptr is treated as a key before all keys; end==nullptr as a
  // key after all keys. To compact the entire database: CompactRange(nullptr,
  // nullptr).
  virtual void CompactRange(const Slice* begin, const Slice* end) = 0;

  // Force the current memtable to be flushed to an L0 SSTable (test and
  // benchmark hook; also triggers any pending compactions).
  virtual Status FlushMemTable() = 0;

  // Run compactions until no trigger (size, run count, or TTL expiry)
  // remains outstanding. Useful to settle the tree before measuring.
  virtual Status WaitForCompactions() = 0;

  // Attempt to recover from degraded read-only mode (entered on a space
  // error, see Options::max_background_retries): probes the filesystem
  // and, if space has returned, clears the error state and resumes
  // background work. Returns OK once the DB is writable again, the space
  // error while still degraded, and the fatal error if the DB is past
  // recovery. The default implementation (a DB with no background-error
  // machinery) is trivially resumed.
  virtual Status Resume() { return Status::OK(); }

  // ---- Acheron-specific observability ----

  // Aggregate delete-persistence statistics (see DeleteStats).
  virtual DeleteStats GetDeleteStats() = 0;

  // Engine counters (write amplification, compaction breakdown, ...).
  virtual InternalStats GetStats() = 0;

  // ---- Secondary (retention) deletes, KiWi-lite ----

  // Physically drop every entry whose secondary delete key (as produced by
  // Options::secondary_key_extractor) is < |threshold|. Files entirely
  // below the threshold are deleted outright; straddling files are
  // rewritten, skipping dead entries. Returns NotSupported when no
  // extractor is configured.
  //
  // Retention semantics assumption: for any user key, newer versions carry
  // secondary keys >= older versions' (true for the intended use, where
  // the secondary key is a monotonically assigned timestamp). Purging a
  // newer version can then only expose older versions that also qualify
  // and are purged in the same pass.
  virtual Status PurgeSecondaryRange(const Slice& threshold) = 0;
};

// Destroy the contents of the specified database. Be very careful using
// this method.
Status DestroyDB(const std::string& name, const Options& options);

// Best-effort reconstruction of a database whose MANIFEST/CURRENT was lost
// or corrupted: salvages WAL records into tables, re-derives every table's
// metadata (including tombstone-age state, so the delete-persistence clock
// survives), and writes a fresh descriptor. Some data may be lost, and the
// recovered tree is flat (everything in level 0) until compactions
// restructure it.
Status RepairDB(const std::string& dbname, const Options& options);

}  // namespace acheron

#endif  // ACHERON_LSM_DB_H_
