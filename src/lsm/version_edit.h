// VersionEdit: a delta between two versions of the LSM file set, logged to
// the MANIFEST. FileMetaData carries Acheron's per-file tombstone metadata
// so delete-persistence state survives restarts.
#ifndef ACHERON_LSM_VERSION_EDIT_H_
#define ACHERON_LSM_VERSION_EDIT_H_

#include <set>
#include <utility>
#include <vector>

#include "src/lsm/dbformat.h"
#include "src/util/histogram.h"
#include "src/util/status.h"
#include "src/vlog/vlog_registry.h"

namespace acheron {

class VersionSet;

// Maximum number of levels the tree may physically use.
static const int kNumLevels = 12;

struct FileMetaData {
  FileMetaData() = default;

  int refs = 0;
  uint64_t number = 0;
  uint64_t file_size = 0;    // File size in bytes
  InternalKey smallest;      // Smallest internal key served by table
  InternalKey largest;       // Largest internal key served by table
  uint64_t num_entries = 0;  // Total entries in the table

  // ---- Acheron delete-persistence metadata ----
  // Point tombstones contained in the file.
  uint64_t num_tombstones = 0;
  // Sequence number (== logical timestamp) of the oldest tombstone;
  // kMaxSequenceNumber when the file has none.
  SequenceNumber earliest_tombstone_seq = kMaxSequenceNumber;
  // Wall-clock microseconds when the oldest tombstone was created.
  uint64_t earliest_tombstone_wall_micros = UINT64_MAX;
  // Secondary delete-key range covered by the file (empty when unused).
  std::string min_secondary_key;
  std::string max_secondary_key;

  // For tiering: id of the sorted run within its level this file belongs
  // to. Files of the same run are non-overlapping; distinct runs overlap.
  // Runs are ordered by recency: higher run_id == newer data.
  uint64_t run_id = 0;

  // ---- Range tombstones (kTypeRangeDeletion) ----
  // Count of range tombstones in the file's dedicated block.
  uint64_t num_range_tombstones = 0;
  // Oldest range tombstone's sequence number / wall clock; defaults mirror
  // the point-tombstone fields above.
  SequenceNumber earliest_range_tombstone_seq = kMaxSequenceNumber;
  uint64_t earliest_range_tombstone_wall_micros = UINT64_MAX;
  // User-key span covered by the union of the file's range tombstones
  // (empty when none): a cheap containment test before opening the table.
  std::string range_del_begin;
  std::string range_del_end;

  // ---- Key-value separation (vLog pointers) ----
  // Range of vLog segment numbers referenced by kTypeValuePointer entries
  // in this file; 0 when the file holds no pointers. The range is the
  // liveness anchor for segment files (RemoveObsoleteFiles) and the
  // file-selection filter for vLog GC rewrites.
  uint64_t min_vlog_segment = 0;
  uint64_t max_vlog_segment = 0;

  bool has_vlog_pointers() const { return max_vlog_segment != 0; }

  bool has_tombstones() const { return num_tombstones > 0; }
  bool has_range_tombstones() const { return num_range_tombstones > 0; }
  double tombstone_density() const {
    return num_entries == 0
               ? 0.0
               : static_cast<double>(num_tombstones) / num_entries;
  }
};

class VersionEdit {
 public:
  VersionEdit() { Clear(); }
  ~VersionEdit() = default;

  void Clear();

  void SetComparatorName(const Slice& name) {
    has_comparator_ = true;
    comparator_ = name.ToString();
  }
  void SetLogNumber(uint64_t num) {
    has_log_number_ = true;
    log_number_ = num;
  }
  void SetNextFile(uint64_t num) {
    has_next_file_number_ = true;
    next_file_number_ = num;
  }
  void SetLastSequence(SequenceNumber seq) {
    has_last_sequence_ = true;
    last_sequence_ = seq;
  }
  void SetCompactPointer(int level, const InternalKey& key) {
    compact_pointers_.push_back(std::make_pair(level, key));
  }

  // Add the specified file at the specified level.
  // REQUIRES: This version has not been saved (see VersionSet::SaveTo)
  void AddFile(int level, const FileMetaData& f) {
    new_files_.push_back(std::make_pair(level, f));
  }

  // Delete the specified "file" from the specified "level".
  void RemoveFile(int level, uint64_t file) {
    deleted_files_.insert(std::make_pair(level, file));
  }

  typedef std::set<std::pair<int, uint64_t>> DeletedFileSet;

  // Read-only views, used by DBImpl to order obsolete-file unlinks by the
  // level each dead table formerly occupied.
  const DeletedFileSet& deleted_files() const { return deleted_files_; }
  const std::vector<std::pair<int, FileMetaData>>& new_files() const {
    return new_files_;
  }

  // Read-only accessors used by RepairDB's bounded manifest replay.
  bool has_log_number() const { return has_log_number_; }
  uint64_t log_number() const { return log_number_; }
  bool has_next_file_number() const { return has_next_file_number_; }
  uint64_t next_file_number() const { return next_file_number_; }
  bool has_last_sequence() const { return has_last_sequence_; }
  SequenceNumber last_sequence() const { return last_sequence_; }

  // Mark this edit as a full-version *snapshot record*. Snapshot records are
  // self-describing restart points in the MANIFEST: they carry the complete
  // file set plus log/next-file/last-sequence and the cumulative
  // persistence-monitor journal state, and are encoded with an inner CRC32C
  // over the whole body. Recovery resets its replay state whenever it reads a
  // valid snapshot record, so only the suffix after the last valid snapshot
  // is actually applied.
  void SetSnapshot() { is_snapshot_ = true; }
  // True after DecodeFrom even when the record failed its inner CRC, so
  // recovery can distinguish "torn snapshot -- keep prior state" from a
  // corrupt ordinary edit (which is fatal).
  bool IsSnapshot() const { return is_snapshot_; }

  // ---- Persistence-monitor journal (piggybacked on the edit stream) ----
  // Cumulative count of tombstones ever written, captured at memtable swap
  // for flush edits (covers exactly the WALs older than this edit's
  // log_number; deletes in newer WALs are recounted during WAL replay).
  void SetMonitorWritten(uint64_t written) {
    has_monitor_written_ = true;
    monitor_written_ = written;
  }
  bool has_monitor_written() const { return has_monitor_written_; }
  uint64_t monitor_written() const { return monitor_written_; }

  // Per-compaction monitor delta: tombstones persisted (reached the bottom
  // level) and superseded, plus the persistence-latency samples of this
  // compaction. Snapshot records reuse the same field with delta-from-zero
  // (i.e. cumulative) semantics.
  void SetMonitorDelta(uint64_t persisted, uint64_t superseded,
                       const Histogram& latency) {
    has_monitor_delta_ = true;
    monitor_persisted_ = persisted;
    monitor_superseded_ = superseded;
    monitor_latency_ = latency;
  }
  bool has_monitor_delta() const { return has_monitor_delta_; }
  uint64_t monitor_persisted() const { return monitor_persisted_; }
  uint64_t monitor_superseded() const { return monitor_superseded_; }
  const Histogram& monitor_latency() const { return monitor_latency_; }

  // Range-delete counterparts of the two fields above, journaled with their
  // own tags so point and range histograms recover independently.
  void SetMonitorRangeWritten(uint64_t written) {
    has_monitor_range_written_ = true;
    monitor_range_written_ = written;
  }
  bool has_monitor_range_written() const { return has_monitor_range_written_; }
  uint64_t monitor_range_written() const { return monitor_range_written_; }

  void SetMonitorRangeDelta(uint64_t persisted, uint64_t superseded,
                            const Histogram& latency) {
    has_monitor_range_delta_ = true;
    monitor_range_persisted_ = persisted;
    monitor_range_superseded_ = superseded;
    monitor_range_latency_ = latency;
  }
  bool has_monitor_range_delta() const { return has_monitor_range_delta_; }
  uint64_t monitor_range_persisted() const { return monitor_range_persisted_; }
  uint64_t monitor_range_superseded() const {
    return monitor_range_superseded_;
  }
  const Histogram& monitor_range_latency() const {
    return monitor_range_latency_;
  }

  // ---- vLog segment registry journal (key-value separation) ----
  // Upsert the full per-segment state (rotation/seal edits journal the new
  // head or the finalized totals; snapshot records carry every segment).
  void AddVlogSegment(const vlog::SegmentInfo& info) {
    vlog_segments_.push_back(info);
  }
  // Remove a segment from the registry (GC collected it).
  void RemoveVlogSegment(uint64_t number) {
    vlog_removed_segments_.push_back(number);
  }
  // One compaction's garbage/pending-purge charge against a segment.
  void AddVlogDelta(const vlog::SegmentDelta& delta) {
    vlog_deltas_.push_back(delta);
  }
  const std::vector<vlog::SegmentInfo>& vlog_segments() const {
    return vlog_segments_;
  }
  const std::vector<uint64_t>& vlog_removed_segments() const {
    return vlog_removed_segments_;
  }
  const std::vector<vlog::SegmentDelta>& vlog_deltas() const {
    return vlog_deltas_;
  }

  // Value-purge monitor journal: count of deleted keys whose vLog value
  // bytes were collected, plus the key-purge -> value-purge latency samples.
  // Delta semantics on ordinary edits, cumulative on snapshot records
  // (mirrors SetMonitorDelta).
  void SetVlogMonitorDelta(uint64_t purged, const Histogram& latency) {
    has_vlog_monitor_delta_ = true;
    vlog_monitor_purged_ = purged;
    vlog_monitor_latency_ = latency;
  }
  bool has_vlog_monitor_delta() const { return has_vlog_monitor_delta_; }
  uint64_t vlog_monitor_purged() const { return vlog_monitor_purged_; }
  const Histogram& vlog_monitor_latency() const {
    return vlog_monitor_latency_;
  }

  void EncodeTo(std::string* dst) const;
  Status DecodeFrom(const Slice& src);

  std::string DebugString() const;

 private:
  friend class VersionSet;

  // Tag-stream encoding without the snapshot CRC envelope.
  void EncodeBodyTo(std::string* dst) const;

  std::string comparator_;
  uint64_t log_number_;
  uint64_t next_file_number_;
  SequenceNumber last_sequence_;
  bool has_comparator_;
  bool has_log_number_;
  bool has_next_file_number_;
  bool has_last_sequence_;

  bool is_snapshot_;
  bool has_monitor_written_;
  uint64_t monitor_written_;
  bool has_monitor_delta_;
  uint64_t monitor_persisted_;
  uint64_t monitor_superseded_;
  Histogram monitor_latency_;
  bool has_monitor_range_written_;
  uint64_t monitor_range_written_;
  bool has_monitor_range_delta_;
  uint64_t monitor_range_persisted_;
  uint64_t monitor_range_superseded_;
  Histogram monitor_range_latency_;

  std::vector<std::pair<int, InternalKey>> compact_pointers_;
  DeletedFileSet deleted_files_;
  std::vector<std::pair<int, FileMetaData>> new_files_;

  std::vector<vlog::SegmentInfo> vlog_segments_;
  std::vector<uint64_t> vlog_removed_segments_;
  std::vector<vlog::SegmentDelta> vlog_deltas_;
  bool has_vlog_monitor_delta_;
  uint64_t vlog_monitor_purged_;
  Histogram vlog_monitor_latency_;
};

}  // namespace acheron

#endif  // ACHERON_LSM_VERSION_EDIT_H_
