#include "src/lsm/filename.h"

#include <cassert>
#include <cstdio>

#include "src/env/env.h"

namespace acheron {

static std::string MakeFileName(const std::string& dbname, uint64_t number,
                                const char* suffix) {
  char buf[100];
  std::snprintf(buf, sizeof(buf), "/%06llu.%s",
                static_cast<unsigned long long>(number), suffix);
  return dbname + buf;
}

std::string LogFileName(const std::string& dbname, uint64_t number) {
  assert(number > 0);
  return MakeFileName(dbname, number, "log");
}

std::string TableFileName(const std::string& dbname, uint64_t number) {
  assert(number > 0);
  return MakeFileName(dbname, number, "sst");
}

std::string DescriptorFileName(const std::string& dbname, uint64_t number) {
  assert(number > 0);
  char buf[100];
  std::snprintf(buf, sizeof(buf), "/MANIFEST-%06llu",
                static_cast<unsigned long long>(number));
  return dbname + buf;
}

std::string CurrentFileName(const std::string& dbname) {
  return dbname + "/CURRENT";
}

std::string LockFileName(const std::string& dbname) { return dbname + "/LOCK"; }

std::string TempFileName(const std::string& dbname, uint64_t number) {
  assert(number > 0);
  return MakeFileName(dbname, number, "tmp");
}

std::string VlogFileName(const std::string& dbname, uint64_t number) {
  assert(number > 0);
  return MakeFileName(dbname, number, "vlog");
}

// Owned filenames have the form:
//    dbname/CURRENT
//    dbname/LOCK
//    dbname/MANIFEST-[0-9]+
//    dbname/[0-9]+.(log|sst|tmp|vlog)
bool ParseFileName(const std::string& filename, uint64_t* number,
                   FileType* type) {
  Slice rest(filename);
  if (rest == "CURRENT") {
    *number = 0;
    *type = kCurrentFile;
  } else if (rest == "LOCK") {
    *number = 0;
    *type = kDBLockFile;
  } else if (rest.starts_with("MANIFEST-")) {
    rest.remove_prefix(strlen("MANIFEST-"));
    uint64_t num = 0;
    if (rest.empty()) return false;
    for (size_t i = 0; i < rest.size(); i++) {
      char c = rest[i];
      if (c < '0' || c > '9') return false;
      num = num * 10 + (c - '0');
    }
    *type = kDescriptorFile;
    *number = num;
  } else {
    // Avoid strtoull() to keep filename format independent of the locale.
    uint64_t num = 0;
    size_t i = 0;
    for (; i < rest.size() && rest[i] >= '0' && rest[i] <= '9'; i++) {
      num = num * 10 + (rest[i] - '0');
    }
    if (i == 0) return false;
    Slice suffix(rest.data() + i, rest.size() - i);
    if (suffix == Slice(".log")) {
      *type = kLogFile;
    } else if (suffix == Slice(".sst")) {
      *type = kTableFile;
    } else if (suffix == Slice(".tmp")) {
      *type = kTempFile;
    } else if (suffix == Slice(".vlog")) {
      *type = kVlogFile;
    } else {
      return false;
    }
    *number = num;
  }
  return true;
}

Status SetCurrentFile(Env* env, const std::string& dbname,
                      uint64_t descriptor_number) {
  // Remove leading "dbname/" and add newline to manifest file name.
  std::string manifest = DescriptorFileName(dbname, descriptor_number);
  Slice contents = manifest;
  assert(contents.starts_with(dbname + "/"));
  contents.remove_prefix(dbname.size() + 1);
  std::string tmp = TempFileName(dbname, descriptor_number);
  // io: unlocked -- callers (LogAndApply, repair) release the DB mutex
  // around CURRENT rotation
  Status s = env->WriteStringToFile(contents.ToString() + "\n", tmp);
  if (s.ok()) {
    s = env->RenameFile(tmp, CurrentFileName(dbname));  // io: unlocked
  }
  if (!s.ok()) {
    // io: unlocked -- best-effort cleanup; s already reports the failure
    (void)env->RemoveFile(tmp);
  }
  return s;
}

}  // namespace acheron
