// InternalStats: engine-wide counters surfaced through DB::GetStats(),
// powering the write/space/read-amplification experiments.
#ifndef ACHERON_LSM_STATS_H_
#define ACHERON_LSM_STATS_H_

#include <array>
#include <cstdint>
#include <string>

namespace acheron {

// Externally synchronized: the DBImpl-owned instance is GUARDED_BY
// DBImpl::mutex_ and mutated only on annotated EXCLUSIVE_LOCKS_REQUIRED
// paths. Counters bumped on lock-free paths -- gets/gets_found on the
// mutex-free Get hot path, iter_tombstones_skipped by live iterators, and
// bloom_useful inside table reads -- live as relaxed atomics in DBImpl and
// TableCache and are merged into the snapshot copy handed out by
// DB::GetStats()/GetProperty() (see DBImpl::MergeReadPathCounters).
struct InternalStats {
  // --- write path ---
  uint64_t user_bytes_written = 0;  // key+value bytes accepted from callers
  uint64_t wal_bytes_written = 0;
  uint64_t flush_count = 0;
  uint64_t flush_bytes_written = 0;

  // --- compactions ---
  uint64_t compaction_count = 0;
  uint64_t compaction_bytes_read = 0;
  uint64_t compaction_bytes_written = 0;
  uint64_t trivial_move_count = 0;
  // Indexed by CompactionReason (see version_set.h); sized generously.
  std::array<uint64_t, 8> compactions_by_reason{};

  // --- entries dropped during compactions ---
  uint64_t entries_shadowed_dropped = 0;    // hidden by a newer entry
  uint64_t tombstones_dropped_bottom = 0;   // persisted deletes
  uint64_t blocks_purged_secondary = 0;     // KiWi-lite block drops

  // --- write stalls / background scheduling ---
  uint64_t stall_slowdown_writes = 0;  // writes delayed by the L0 soft trigger
  uint64_t stall_stop_writes = 0;      // writes blocked by the L0 hard trigger
  uint64_t stall_memtable_waits = 0;   // writes that waited on imm_ flush
  uint64_t stall_ttl_waits = 0;        // writes that waited for a TTL-deadline
                                       // compaction to finish (FADE bound)
  uint64_t stall_micros = 0;           // total wall time writers spent stalled
  uint64_t background_jobs_scheduled = 0;  // Env::Schedule handoffs
  uint64_t memtable_swaps = 0;             // mem_ -> imm_ rotations
  uint64_t wal_syncs = 0;                  // physical WAL fsyncs
  uint64_t group_commits = 0;          // write groups with > 1 logical batch
  uint64_t writes_grouped = 0;         // logical batches riding a leader's
                                       // group (0 when every write is alone)

  // --- recovery / MANIFEST bounded replay ---
  uint64_t manifest_edits_replayed = 0;  // edits applied after the last valid
                                         // snapshot during the last Recover
  uint64_t manifest_snapshots_written = 0;  // snapshot records appended
  uint64_t manifest_rotations = 0;          // descriptor rotations
  uint64_t torn_snapshots_skipped = 0;      // snapshots skipped on inner-CRC
                                            // failure during recovery

  // --- background errors / transient-fault tolerance ---
  uint64_t errors_transient = 0;  // background failures classified retryable
  uint64_t errors_retried = 0;    // error episodes that ended in recovery
  uint64_t errors_fatal = 0;      // episodes that exhausted the retry budget
                                  // (or were corruption, which never retries)
  uint64_t resume_count = 0;      // degraded-read-only -> writable recoveries
                                  // (space probe or DB::Resume)

  // --- value log (key-value separation) ---
  uint64_t vlog_bytes_written = 0;      // record bytes appended to the vLog
  uint64_t vlog_values_written = 0;     // values routed through the vLog
  uint64_t vlog_segments_created = 0;   // head segments opened
  uint64_t vlog_gc_runs = 0;            // GC passes that collected a segment
  uint64_t vlog_gc_values_relocated = 0;  // live values rewritten by GC
  uint64_t vlog_gc_bytes_relocated = 0;   // record bytes rewritten by GC
  uint64_t vlog_reads = 0;              // pointer dereferences served

  // --- reads ---
  uint64_t gets = 0;
  uint64_t gets_found = 0;
  uint64_t bloom_useful = 0;         // table probes skipped by the filter
  uint64_t iter_tombstones_skipped = 0;  // tombstones stepped over by scans

  // Write amplification: bytes written to storage (flush + compaction +
  // value-log appends, including GC relocations) per user byte. Counting
  // the vLog keeps the separated and unseparated configurations honestly
  // comparable.
  double WriteAmplification() const {
    if (user_bytes_written == 0) return 0.0;
    return static_cast<double>(flush_bytes_written +
                               compaction_bytes_written +
                               vlog_bytes_written) /
           static_cast<double>(user_bytes_written);
  }

  std::string ToString() const;
};

}  // namespace acheron

#endif  // ACHERON_LSM_STATS_H_
