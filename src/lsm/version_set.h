// Version / VersionSet: the on-disk state of the LSM-tree.
//
// A Version is an immutable snapshot of the file set, organised per level.
// Level 0 (and every level under tiering) may hold multiple overlapping
// sorted runs; deeper levels under leveling hold one sorted, partitioned run.
// VersionSet tracks the chain of versions, persists deltas to the MANIFEST,
// and assembles Compaction objects from the picks made by the (Acheron)
// compaction planner.
#ifndef ACHERON_LSM_VERSION_SET_H_
#define ACHERON_LSM_VERSION_SET_H_

#include <atomic>
#include <map>
#include <set>
#include <vector>

#include "src/core/range_tombstone.h"
#include "src/lsm/dbformat.h"
#include "src/lsm/options.h"
#include "src/lsm/version_edit.h"
#include "src/table/iterator.h"
#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace acheron {

namespace wal {
class Writer;
}

class Compaction;
class CompactionPlanner;
struct CompactionPick;
class Env;
class TableCache;
class Version;
class VersionSet;
class WritableFile;

// Return the smallest index i such that files[i]->largest >= key.
// Return files.size() if there is no such file.
// REQUIRES: "files" contains a sorted list of non-overlapping files.
int FindFile(const InternalKeyComparator& icmp,
             const std::vector<FileMetaData*>& files, const Slice& key);

// Returns true iff some file in "files" overlaps the user key range
// [*smallest,*largest]. smallest==nullptr represents a key smaller than all
// keys in the DB. largest==nullptr represents a key largest than all keys.
// REQUIRES: If disjoint_sorted_files, files[] contains disjoint ranges in
// sorted order.
bool SomeFileOverlapsRange(const InternalKeyComparator& icmp,
                           bool disjoint_sorted_files,
                           const std::vector<FileMetaData*>& files,
                           const Slice* smallest_user_key,
                           const Slice* largest_user_key);

class Version {
 public:
  // Append to *iters a sequence of iterators that will yield the contents
  // of this Version when merged together.
  // REQUIRES: This version has been saved (see VersionSet::SaveTo)
  void AddIterators(const ReadOptions&, std::vector<Iterator*>* iters);

  // Lookup the value for key. If found, store it in *val and return OK.
  // Else return a non-OK status. A non-null |filter_negatives| batches
  // bloom-negative accounting into the caller's local counter (flushed
  // once per op) instead of one shared atomic RMW per filtered-out table.
  // A non-null |found_seq| receives the sequence number of the entry that
  // decided the result (value or point tombstone), so the caller can test
  // it against range-tombstone coverage; untouched on NotFound. When the
  // deciding entry is a vLog pointer (kTypeValuePointer), |*val| receives
  // the *encoded pointer* and a non-null |*is_pointer| is set to true --
  // the caller dereferences through the value log.
  Status Get(const ReadOptions&, const LookupKey& key, std::string* val,
             uint64_t* filter_negatives = nullptr,
             SequenceNumber* found_seq = nullptr,
             bool* is_pointer = nullptr);

  // One key of a batched lookup (see MultiGet).
  struct MultiGetItem {
    const LookupKey* key = nullptr;  // set by the caller
    std::string* value = nullptr;    // set by the caller
    Status status;                   // OK = found; NotFound; or an error
    bool done = false;               // resolved -- deeper levels skipped
    // Sequence of the deciding entry (coverage test; 0 when NotFound).
    SequenceNumber seq = 0;
    // True when *value holds an encoded vLog pointer the caller must
    // dereference (kTypeValuePointer entry decided the lookup).
    bool is_pointer = false;
  };

  // Batched Get over every not-yet-done item: walks levels shallow to
  // deep, and within each level fans the required table-block reads of
  // each probe round out as one Env::SubmitReads submission (per-level,
  // bloom-filtered) instead of one blocking read per key. Equivalent to
  // calling Get per key; items already marked done are left untouched.
  void MultiGet(const ReadOptions&, MultiGetItem* items, size_t count,
                uint64_t* filter_negatives = nullptr);

  // Reference count management (so Versions do not disappear out from
  // under live iterators).
  void Ref();
  void Unref();

  // Store in "*inputs" all files in "level" that overlap [begin,end].
  void GetOverlappingInputs(int level, const InternalKey* begin,
                            const InternalKey* end,
                            std::vector<FileMetaData*>* inputs);

  // Returns true iff some file in the specified level overlaps some part of
  // [*smallest_user_key,*largest_user_key]. nullptr = unbounded.
  bool OverlapInLevel(int level, const Slice* smallest_user_key,
                      const Slice* largest_user_key);

  int NumFiles(int level) const {
    return static_cast<int>(files_[level].size());
  }
  const std::vector<FileMetaData*>& files(int level) const {
    return files_[level];
  }

  // Deepest level that currently holds any file (0 if tree is empty).
  int DeepestNonEmptyLevel() const;

  // True iff no file below |level| overlaps |user_key| -- i.e. a tombstone
  // compacted out of |level| into... (used when deciding whether a tombstone
  // can be dropped).
  bool IsBaseLevelForKey(int level, const Slice& user_key) const;

  // Largest range-tombstone sequence <= |snapshot| covering |user_key|
  // across every file of this version, or 0 when uncovered. Sequence
  // numbers are global, so a covering tombstone at any level hides every
  // entry with a smaller sequence regardless of level placement; files
  // whose metadata span excludes the key are skipped without opening.
  SequenceNumber MaxRangeCoveringSeq(const Slice& user_key,
                                     SequenceNumber snapshot) const;

  // Append every raw range tombstone stored in this version's files to
  // |*out| (iterator construction, compaction planning diagnostics).
  Status CollectRangeTombstones(std::vector<RangeTombstone>* out) const;

  // Sum over all files of (last_seq - earliest tombstone seq); diagnostics
  // for the delete-persistence invariant.
  uint64_t MaxTombstoneAge(SequenceNumber last_seq) const;
  // Total live tombstones across the tree.
  uint64_t TotalTombstones() const;
  // Range-tombstone counterparts.
  uint64_t MaxRangeTombstoneAge(SequenceNumber last_seq) const;
  uint64_t TotalRangeTombstones() const;
  // Total bytes at a level.
  int64_t NumLevelBytes(int level) const;

  std::string DebugString() const;

 private:
  friend class Compaction;
  friend class VersionSet;

  explicit Version(VersionSet* vset)
      : vset_(vset),
        next_(this),
        prev_(this),
        refs_(0) {}

  Version(const Version&) = delete;
  Version& operator=(const Version&) = delete;

  ~Version();

  // Iterator over the non-overlapping files at a sorted (leveling) level.
  Iterator* NewConcatenatingIterator(const ReadOptions&, int level) const;

  VersionSet* vset_;  // VersionSet to which this Version belongs
  Version* next_;     // Next version in linked list
  Version* prev_;     // Previous version in linked list
  int refs_;          // Number of live refs to this version

  // List of files per level.
  std::vector<FileMetaData*> files_[kNumLevels];
};

// VersionSet is externally synchronized: it is owned by DBImpl and every
// method that touches mutable state expects the DB mutex to be held.
// LogAndApply takes that mutex explicitly so the requirement is enforced by
// the thread-safety analysis at its call sites; the remaining methods are
// only reachable from DBImpl code paths that are themselves annotated
// EXCLUSIVE_LOCKS_REQUIRED(mutex_).
class VersionSet {
 public:
  VersionSet(const std::string& dbname, const Options* options,
             TableCache* table_cache, const InternalKeyComparator*);

  VersionSet(const VersionSet&) = delete;
  VersionSet& operator=(const VersionSet&) = delete;

  ~VersionSet();

  // Apply *edit to the current version to form a new descriptor that is
  // both saved to persistent state and installed as the new current
  // version. |mu| is the DB mutex, held for the duration: the manifest IO
  // happens under it by design (see DESIGN.md "Locking discipline").
  //
  // When Options::manifest_snapshot_interval edits have accumulated in the
  // current MANIFEST, the descriptor is rotated first: a fresh MANIFEST is
  // started whose head record is a checksummed full-version snapshot and
  // CURRENT is repointed, bounding how much any future recovery replays.
  Status LogAndApply(VersionEdit* edit, Mutex* mu)
      EXCLUSIVE_LOCKS_REQUIRED(mu);

  // Recover the last saved descriptor from persistent storage. Replay
  // restarts from the last valid snapshot record; a snapshot record that
  // fails its inner CRC is skipped (state falls back to the previous
  // snapshot plus the edits in between).
  Status Recover(bool* save_manifest);

  // Append a snapshot record to the current MANIFEST and sync it, so a
  // clean reopen replays zero edits. Called by DBImpl's destructor once all
  // background work has drained; a no-op if no descriptor was ever opened.
  Status WriteCleanCloseSnapshot();

  // Cumulative persistence-monitor state journaled through the MANIFEST
  // edit stream (see version_edit.h). After Recover() this holds the exact
  // pre-crash monitor state as of the last installed edit; DBImpl adds the
  // deletes re-counted during WAL replay and restores the live monitor.
  struct MonitorJournal {
    uint64_t written = 0;
    uint64_t persisted = 0;
    uint64_t superseded = 0;
    Histogram latency;
    // Range-delete counterparts (kMonitorRangeWritten/kMonitorRangeDelta
    // tags): a separate population so recovery restores both histograms
    // bit-identically.
    uint64_t range_written = 0;
    uint64_t range_persisted = 0;
    uint64_t range_superseded = 0;
    Histogram range_latency;
    // Value-purge population (kVlogMonitorDelta tag): deleted keys whose
    // vLog value bytes were reclaimed, with key-purge -> value-purge
    // latency samples.
    uint64_t vlog_purged = 0;
    Histogram vlog_latency;
  };
  const MonitorJournal& monitor_journal() const { return journal_state_; }

  // Diagnostics for the bounded-replay machinery (surfaced via
  // GetProperty("acheron.stats") and asserted by the recovery tests).
  uint64_t manifest_edits_replayed() const { return manifest_edits_replayed_; }
  uint64_t manifest_snapshots_written() const { return snapshots_written_; }
  uint64_t manifest_rotations() const { return manifest_rotations_; }
  uint64_t torn_snapshots_skipped() const { return torn_snapshots_skipped_; }

  // Return the current version.
  Version* current() const { return current_; }

  // Return the current manifest file number.
  uint64_t ManifestFileNumber() const { return manifest_file_number_; }

  // Allocate and return a new file number.
  uint64_t NewFileNumber() { return next_file_number_++; }

  // Arrange to reuse "file_number" unless a newer file number has already
  // been allocated. REQUIRES: "file_number" was returned by a call to
  // NewFileNumber().
  void ReuseFileNumber(uint64_t file_number) {
    if (next_file_number_ == file_number + 1) {
      next_file_number_ = file_number;
    }
  }

  // Return the number of Table files at the specified level.
  int NumLevelFiles(int level) const;

  // Return the combined file size of all files at the specified level.
  int64_t NumLevelBytes(int level) const;

  // Return the last sequence number. Relaxed load: sufficient for callers
  // that already hold the DB mutex (the store side is release anyway).
  SequenceNumber LastSequence() const {
    return last_sequence_.load(std::memory_order_relaxed);
  }

  // Acquire load for lock-free readers (DBImpl::Get / NewIterator). Pairs
  // with SetLastSequence's release store: a reader that observes sequence S
  // also observes every memtable insert performed before S was published.
  SequenceNumber LastSequenceAcquire() const {
    return last_sequence_.load(std::memory_order_acquire);
  }

  // Set the last sequence number to s. Release store so lock-free readers
  // that LastSequenceAcquire() >= s can see all writes committed up to s.
  void SetLastSequence(SequenceNumber s) {
    assert(s >= last_sequence_.load(std::memory_order_relaxed));
    last_sequence_.store(s, std::memory_order_release);
  }

  // Mark the specified file number as used.
  void MarkFileNumberUsed(uint64_t number);

  // Return the current log file number.
  uint64_t LogNumber() const { return log_number_; }

  // Ask |planner| for the most urgent compaction and package it as a
  // Compaction object (adding next-level overlaps under leveling). Returns
  // nullptr if no compaction is needed. |droppable_horizon| is the oldest
  // sequence number any live reader may need (snapshot gating).
  Compaction* PickCompaction(const CompactionPlanner& planner,
                             SequenceNumber droppable_horizon);

  // True if |planner| would pick some compaction right now. Side-effect-free
  // (planner.Pick is const and compact_pointer_ is only advanced by
  // PickCompaction), so the background scheduler can poll it cheaply before
  // committing to an Env::Schedule round-trip.
  bool NeedsCompaction(const CompactionPlanner& planner,
                       SequenceNumber droppable_horizon) const;

  // Return a compaction object for compacting the range [begin,end] in the
  // specified level. Returns nullptr if there is nothing in that level that
  // overlaps the specified range. Caller should delete the result.
  Compaction* CompactRange(int level, const InternalKey* begin,
                           const InternalKey* end);

  // Create an iterator that reads over the compaction inputs for "*c".
  // The caller should delete the iterator when no longer needed.
  Iterator* MakeInputIterator(Compaction* c);

  // Add all files listed in any live version to *live.
  void AddLiveFiles(std::set<uint64_t>* live);

  // ---- vLog segment registry (key-value separation) ----
  // Durable per-segment accounting, journaled through the MANIFEST via
  // kVlogSegment/kVlogRemove/kVlogDelta tags: LogAndApply folds an edit's
  // vlog fields in after durable install, Recover replays them, snapshot
  // records carry the whole registry. Mutated only under the DB mutex.
  const vlog::Registry& vlog_registry() const { return vlog_registry_; }

  // Add every vLog segment number that any file of any live version might
  // reference ([min,max] spans) plus the registry's own segments to *live.
  // Used by RemoveObsoleteFiles to classify .vlog files.
  void AddLiveVlogSegments(std::set<uint64_t>* live);

  // Capacity of |level| in bytes under leveling.
  uint64_t MaxBytesForLevel(int level) const;

  // Per-level compaction debug counters.
  struct LevelSummaryStorage {
    char buffer[200];
  };
  const char* LevelSummary(LevelSummaryStorage* scratch) const;

  const InternalKeyComparator& icmp() const { return icmp_; }
  const Options* options() const { return options_; }
  TableCache* table_cache() const { return table_cache_; }

 private:
  class Builder;

  friend class Compaction;
  friend class Version;

  void Finalize(Version* v);

  void GetRange(const std::vector<FileMetaData*>& inputs, InternalKey* smallest,
                InternalKey* largest);

  void GetRange2(const std::vector<FileMetaData*>& inputs1,
                 const std::vector<FileMetaData*>& inputs2,
                 InternalKey* smallest, InternalKey* largest);

  void SetupOtherInputs(Compaction* c);

  // Save current contents to *log as a checksummed snapshot record
  // (includes log/next-file/last-sequence and the monitor journal, so the
  // record alone is a complete restart point). Resets the rotation counter.
  Status WriteSnapshot(wal::Writer* log);

  // Fold an installed edit's piggybacked monitor fields into journal_state_.
  void FoldEditIntoJournal(const VersionEdit& edit);

  void AppendVersion(Version* v);

  Env* const env_;
  const std::string dbname_;
  const Options* const options_;
  TableCache* const table_cache_;
  const InternalKeyComparator icmp_;
  uint64_t next_file_number_;
  uint64_t manifest_file_number_;
  // Atomic: read lock-free by the Get/NewIterator hot path (acquire) while
  // writers advance it under the DB mutex (release).
  std::atomic<SequenceNumber> last_sequence_;
  uint64_t log_number_;

  // Opened lazily.
  WritableFile* descriptor_file_;
  wal::Writer* descriptor_log_;

  // Edits appended to the current MANIFEST since its last snapshot record;
  // reaching Options::manifest_snapshot_interval triggers rotation.
  uint64_t edits_since_snapshot_;
  // Cumulative monitor state as of the last installed edit (journaled into
  // every snapshot record; reconstructed by Recover).
  MonitorJournal journal_state_;
  // Durable vLog segment accounting (see vlog_registry() above).
  vlog::Registry vlog_registry_;
  // Set by Recover: edits applied after the last valid snapshot record.
  uint64_t manifest_edits_replayed_;
  uint64_t snapshots_written_;
  uint64_t manifest_rotations_;
  uint64_t torn_snapshots_skipped_;
  Version dummy_versions_;  // Head of circular doubly-linked list of versions
  Version* current_;        // == dummy_versions_.prev_

  // Per-level key at which the next round-robin compaction at that level
  // should start. Either an empty string, or a valid InternalKey.
  std::string compact_pointer_[kNumLevels];
};

// The reason a compaction was scheduled; drives the E7 trigger-breakdown
// experiment and the delete-persistence accounting.
enum class CompactionReason {
  kNone = 0,
  kL0FileCount,   // too many L0 runs (leveling)
  kLevelSize,     // level over capacity (leveling)
  kTierFull,      // T runs accumulated (tiering)
  kTtlExpiry,     // FADE: a file's oldest tombstone outlived its level TTL
  kManual,        // CompactRange / test hook
  kSecondaryPurge,  // KiWi-lite retention purge rewrite
};

const char* CompactionReasonName(CompactionReason reason);

// A Compaction encapsulates information about a compaction.
class Compaction {
 public:
  ~Compaction();

  // Return the level that is being compacted. Inputs from "level" and
  // "level+1" will be merged to produce a set of "level+1" files.
  int level() const { return level_; }
  // Output level (level+1, or same level for bottom-level TTL rewrites).
  int output_level() const { return output_level_; }

  CompactionReason reason() const { return reason_; }

  // Return the object that holds the edits to the descriptor done by this
  // compaction.
  VersionEdit* edit() { return &edit_; }

  // "which" must be either 0 or 1
  int num_input_files(int which) const {
    return static_cast<int>(inputs_[which].size());
  }

  // Return the ith input file at "level()+which" ("which" must be 0 or 1).
  FileMetaData* input(int which, int i) const { return inputs_[which][i]; }

  // Maximum size of files to build during this compaction.
  uint64_t MaxOutputFileSize() const { return max_output_file_size_; }

  // Is this a trivial compaction that can be implemented by just moving a
  // single input file to the next level (no merging or splitting)?
  bool IsTrivialMove() const;

  // Add all inputs to this compaction as delete operations to *edit.
  void AddInputDeletions(VersionEdit* edit);

  // Returns true if the information we have available guarantees that the
  // compaction is producing data in "output_level" for which no data exists
  // in levels greater than "output_level".
  bool IsBaseLevelForKey(const Slice& user_key);

  // Release the input version for the compaction, once the compaction is
  // successful.
  void ReleaseInputs();

  Version* input_version() const { return input_version_; }

  uint64_t TotalInputBytes() const;

 private:
  friend class Version;
  friend class VersionSet;

  Compaction(const Options* options, int level, int output_level,
             CompactionReason reason);

  int level_;
  int output_level_;
  CompactionReason reason_;
  uint64_t max_output_file_size_;
  Version* input_version_;
  VersionEdit edit_;

  // Each compaction reads inputs from "level_" and "output_level_".
  std::vector<FileMetaData*> inputs_[2];  // The two sets of inputs

  // State for implementing IsBaseLevelForKey.
  // level_ptrs_ holds indices into input_version_->files_: our state is that
  // we are positioned at one of the file ranges for each higher level than
  // the ones involved in this compaction (i.e. for all L >=
  // output_level_+1).
  size_t level_ptrs_[kNumLevels];
};

}  // namespace acheron

#endif  // ACHERON_LSM_VERSION_SET_H_
