// Options: tuning knobs for the engine, including Acheron's delete-aware
// (tombstone-persistence) controls.
#ifndef ACHERON_LSM_OPTIONS_H_
#define ACHERON_LSM_OPTIONS_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

#include "src/util/slice.h"

namespace acheron {

class Cache;
class Comparator;
class Env;
class FilterPolicy;
class Snapshot;

// How levels are laid out and merged.
enum class CompactionStyle {
  // One sorted run per level; a level compacts into the next when it exceeds
  // its capacity (LevelDB/RocksDB leveled compaction).
  kLeveling,
  // Up to T sorted runs per level; when a level accumulates T runs they are
  // merged together into a single run in the next level (write-optimized).
  kTiering,
};

// How the delete persistence threshold D_th is split into per-level TTLs.
enum class TtlAllocation {
  // d_0 = D_th (T-1)/(T^L - 1), d_{i+1} = T d_i. Matches the exponential
  // level capacities so every level's TTL expires "just in time" (FADE).
  kGeometric,
  // d_i = D_th / L. Simpler but over-triggers on deep levels (ablation).
  kUniform,
};

// Extracts the secondary delete key (e.g. a creation timestamp) from an
// entry, enabling retention purges on a non-sort attribute. Returns an empty
// slice if the entry has no secondary key.
using SecondaryKeyExtractor =
    std::function<std::string(const Slice& user_key, const Slice& value)>;

struct Options {
  // -------- Generic engine knobs --------

  // Comparator used to define the order of keys in the table.
  // Default: a comparator that uses lexicographic byte-wise ordering.
  const Comparator* comparator = nullptr;  // nullptr => BytewiseComparator()

  // If true, the database will be created if it is missing.
  bool create_if_missing = true;
  // If true, an error is raised if the database already exists.
  bool error_if_exists = false;
  // If true, the implementation does aggressive checking of the data it is
  // processing and stops early on detected errors.
  bool paranoid_checks = false;

  // Use the specified Env for all file operations. nullptr => DefaultEnv().
  Env* env = nullptr;

  // Amount of data to build up in the in-memory memtable before flushing to
  // a sorted on-disk file.
  size_t write_buffer_size = 4 * 1024 * 1024;

  // Approximate size of user data packed per data block.
  size_t block_size = 4 * 1024;

  // Number of keys between restart points for delta encoding of keys.
  int block_restart_interval = 16;

  // Maximum size of an SSTable produced by flush/compaction under leveling
  // (compaction output is partitioned into files of roughly this size).
  // Tiering ignores this: each sorted run is a single file.
  size_t max_file_size = 2 * 1024 * 1024;

  // Block cache for uncompressed data blocks. nullptr => an 8MB internal
  // cache is created per DB.
  Cache* block_cache = nullptr;

  // Bloom filter bits per key for SSTable filters; 0 disables filters.
  int filter_bits_per_key = 10;

  // Filter policy shared by every table the DB opens or builds. nullptr =>
  // when filter_bits_per_key > 0 the DB creates (and owns) one Bloom policy
  // at Open and threads it through here, so Table::Open no longer allocates
  // a policy per table. A caller-supplied policy is never freed by the DB.
  const FilterPolicy* filter_policy = nullptr;

  // Max number of open table files cached.
  int max_open_files = 1000;

  // If true, every write is followed by a WAL fsync. Slower but no data is
  // lost on machine crash (process crash never loses synced data).
  bool sync_writes = false;

  // When a group commit ends with a WAL sync (sync_writes or
  // WriteOptions::sync), submit the fsync through Env::SubmitSync instead
  // of blocking the writer group's leader on Sync(): the leader applies the
  // batch to the memtable, publishes the sequence, and hands leadership to
  // the next group while the durability fsync completes on the Env's
  // completion path; the leader then waits only for its own sync before
  // returning. Groups still become durable in submission order
  // (FaultInjectionEnv numbers the sync at submit time), so the crash
  // matrix's synced-prefix guarantee is unchanged. Default off: the
  // blocking leader sync is simpler to reason about and is what the
  // deterministic replay tests were written against.
  bool async_wal_sync = false;

  // Disable the WAL entirely (benchmarks on throwaway data).
  bool disable_wal = false;

  // After this many version edits are appended to the current MANIFEST, the
  // descriptor is rotated: a fresh MANIFEST is started whose head record is a
  // checksummed full-version snapshot, and CURRENT is repointed. Recovery
  // then replays only the edits in the newest MANIFEST (at most this many,
  // plus the handful appended since the rotation), instead of the whole edit
  // history. A snapshot record is also appended at clean close so a clean
  // reopen replays zero edits. 0 disables rotation (single ever-growing
  // MANIFEST, as before).
  uint32_t manifest_snapshot_interval = 64;

  // -------- LSM shape --------

  // Size ratio T between adjacent level capacities (and, for tiering, the
  // number of runs per level that triggers a merge).
  int size_ratio = 10;

  // Number of on-disk levels the TTL allocation plans for. The tree may
  // grow deeper; files below plan depth inherit the last level's TTL.
  int num_levels = 7;

  // L0 file count that triggers a compaction into L1 under leveling.
  int level0_compaction_trigger = 4;

  // Compaction layout policy.
  CompactionStyle compaction_style = CompactionStyle::kLeveling;

  // -------- Compaction scheduling --------

  // If true, memtable flushes and compactions run on a background thread
  // (obtained via Env::Schedule): MakeRoomForWrite swaps the full memtable
  // into an immutable `imm_`, hands the flush to the worker, and the writer
  // continues into a fresh memtable; writers are throttled only by the
  // L0 slowdown/stop triggers below.
  //
  // If false (the default), every flush and compaction runs synchronously
  // inside the writing thread before Write() returns, exactly as before
  // this knob existed. This mode is deterministic -- the LSM shape after N
  // writes is a pure function of the write sequence -- and the delete
  // persistence tests and EXPERIMENTS.md E-series measurements rely on that
  // reproducibility.
  //
  // The background pipeline *replays* the synchronous schedule (picks and
  // TTL decisions use the sequence horizon captured at memtable swap, and
  // flushes land only at round boundaries), so a single-threaded writer
  // produces the identical tree in both modes and the D_th bound holds
  // unchanged either way. Overridable per-process with the
  // ACHERON_BACKGROUND_COMPACTIONS=0|1 environment variable.
  bool background_compactions = false;

  // Upper bound on concurrently scheduled background jobs per DB. The
  // current pipeline uses a single compaction/flush worker (leveldb-style),
  // so values > 1 are accepted but clamped to 1; the knob exists so the
  // option struct is stable when multi-job scheduling lands.
  int max_background_jobs = 1;

  // Soft backpressure: when L0 holds at least this many files, each writer
  // group is delayed ~1ms (once) to let the background worker catch up,
  // smearing the write cost instead of stalling for whole compactions.
  // Only consulted when background_compactions is true.
  int level0_slowdown_writes_trigger = 8;

  // Hard backpressure: when L0 holds at least this many files, writers block
  // until the background worker reduces the L0 file count.
  // Only consulted when background_compactions is true.
  int level0_stop_writes_trigger = 12;

  // -------- Transient-fault tolerance --------

  // How many times a failed background job (flush, compaction, WAL
  // rotation, MANIFEST write) is retried before the error becomes fatal.
  // Each failure within an error episode backs off exponentially
  // (retry_backoff_base_micros << attempt, jitterless so fault-injection
  // runs are deterministic). MANIFEST/WAL failures consume two attempts
  // per failure -- they escalate twice as fast as flush/compaction
  // failures -- and corruption is always immediately fatal. 0 restores
  // the pre-retry behavior: the first background error sticks and halts
  // background work (the crash matrix runs in this mode).
  int max_background_retries = 5;

  // Base of the exponential retry backoff, in microseconds.
  uint64_t retry_backoff_base_micros = 1000;

  // When a space error (ENOSPC) degrades the DB to read-only, a
  // background watcher probes for returned space every this-many
  // microseconds and auto-resumes writes once a probe file round-trips.
  // 0 disables the watcher (recovery then requires DB::Resume()).
  uint64_t space_probe_interval_micros = 100 * 1000;

  // -------- Acheron: delete persistence (FADE) --------

  // Delete persistence threshold D_th in *logical operations* (entries
  // ingested). Every tombstone is guaranteed to reach the bottommost level
  // -- i.e. the delete becomes persistent -- within D_th ingested entries
  // of when it was written. 0 disables delete-aware compaction entirely
  // (the engine behaves like a vanilla LSM).
  uint64_t delete_persistence_threshold = 0;

  // How D_th is divided into per-level TTLs.
  TtlAllocation ttl_allocation = TtlAllocation::kGeometric;

  // When picking a file for a size-triggered compaction, prefer the file
  // with the highest weighted tombstone density instead of the default
  // round-robin choice. (Lethe's delete-aware file picking.)
  bool delete_aware_picking = false;

  // Optional extractor for a secondary delete key stored inside values;
  // enables DB::PurgeSecondaryRange (KiWi-style retention deletes).
  SecondaryKeyExtractor secondary_key_extractor;

  // -------- Key-value separation (value log) --------

  // Values of at least this many bytes are routed through the append-only
  // value log (src/vlog/): the WAL/memtable/SSTs carry a
  // (segment, offset, size) pointer and compaction shuffles only
  // keys+pointers, cutting large-value write amplification by the depth of
  // the tree. 0 disables separation entirely (no vLog files are created).
  // Reads dereference pointers transparently; vLog garbage collection is
  // scheduled by the same FADE clock as tombstone-aware compaction, so a
  // configured delete_persistence_threshold bounds when the *value bytes*
  // of a deleted key are gone, not just its key.
  size_t value_separation_threshold = 0;

  // Target size of one vLog segment; the head is sealed and rotated once it
  // grows past this (rotation also happens at every memtable swap, so a
  // sealed segment never has pointers outside flushed state for long).
  uint64_t vlog_segment_size = 4 * 1024 * 1024;

  // Space trigger for vLog GC, independent of the FADE clock: a sealed
  // segment whose live-byte ratio drops to or below this is collected even
  // if no delete deadline is due (Scavenger-style space reclamation).
  // 0 collects only fully-dead or deadline-due segments.
  double vlog_gc_live_ratio = 0.25;
};

// Options that control read operations.
struct ReadOptions {
  // If true, all data read from underlying storage will be verified against
  // corresponding checksums.
  bool verify_checksums = false;
  // Should the data read for this iteration be cached in memory?
  bool fill_cache = true;
  // If non-null, read as of the supplied snapshot (which must belong to the
  // DB that is being read and must not have been released).
  const Snapshot* snapshot = nullptr;
};

// Options that control write operations.
struct WriteOptions {
  // If true, the write will be flushed from the operating system buffer
  // cache before the write is considered complete.
  bool sync = false;
};

}  // namespace acheron

#endif  // ACHERON_LSM_OPTIONS_H_
