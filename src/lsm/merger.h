// Merging iterator: yields the union of its children in comparator order.
#ifndef ACHERON_LSM_MERGER_H_
#define ACHERON_LSM_MERGER_H_

namespace acheron {

class Comparator;
class Iterator;

// Return an iterator that provides the union of the data in
// children[0,n-1]. Takes ownership of the child iterators and will delete
// them when the result iterator is deleted.
//
// The result does no duplicate suppression. I.e., if a particular key is
// present in K child iterators, it will be yielded K times.
//
// REQUIRES: n >= 0
Iterator* NewMergingIterator(const Comparator* comparator, Iterator** children,
                             int n);

}  // namespace acheron

#endif  // ACHERON_LSM_MERGER_H_
