#include "src/lsm/version_set.h"

#include <algorithm>
#include <cstdio>
#include <array>
#include <map>

#include "src/core/compaction_planner.h"
#include "src/env/env.h"
#include "src/lsm/filename.h"
#include "src/lsm/merger.h"
#include "src/lsm/table_cache.h"
#include "src/table/two_level_iterator.h"
#include "src/util/coding.h"
#include "src/wal/log_reader.h"
#include "src/wal/log_writer.h"

namespace acheron {

// Is |level| one where sorted runs may overlap (L0 always; every level under
// tiering)?
static bool IsOverlappingLevel(const Options* options, int level) {
  return level == 0 ||
         options->compaction_style == CompactionStyle::kTiering;
}

int FindFile(const InternalKeyComparator& icmp,
             const std::vector<FileMetaData*>& files, const Slice& key) {
  uint32_t left = 0;
  uint32_t right = static_cast<uint32_t>(files.size());
  while (left < right) {
    uint32_t mid = (left + right) / 2;
    const FileMetaData* f = files[mid];
    if (icmp.Compare(f->largest.Encode(), key) < 0) {
      // Key at "mid.largest" is < "target". Therefore all files at or
      // before "mid" are uninteresting.
      left = mid + 1;
    } else {
      // Key at "mid.largest" is >= "target". Therefore all files after
      // "mid" are uninteresting.
      right = mid;
    }
  }
  return right;
}

static bool AfterFile(const Comparator* ucmp, const Slice* user_key,
                      const FileMetaData* f) {
  // null user_key occurs before all keys and is therefore never after *f
  return (user_key != nullptr &&
          ucmp->Compare(*user_key, f->largest.user_key()) > 0);
}

static bool BeforeFile(const Comparator* ucmp, const Slice* user_key,
                       const FileMetaData* f) {
  // null user_key occurs after all keys and is therefore never before *f
  return (user_key != nullptr &&
          ucmp->Compare(*user_key, f->smallest.user_key()) < 0);
}

bool SomeFileOverlapsRange(const InternalKeyComparator& icmp,
                           bool disjoint_sorted_files,
                           const std::vector<FileMetaData*>& files,
                           const Slice* smallest_user_key,
                           const Slice* largest_user_key) {
  const Comparator* ucmp = icmp.user_comparator();
  if (!disjoint_sorted_files) {
    // Need to check against all files
    for (size_t i = 0; i < files.size(); i++) {
      const FileMetaData* f = files[i];
      if (AfterFile(ucmp, smallest_user_key, f) ||
          BeforeFile(ucmp, largest_user_key, f)) {
        // No overlap
      } else {
        return true;  // Overlap
      }
    }
    return false;
  }

  // Binary search over file list
  uint32_t index = 0;
  if (smallest_user_key != nullptr) {
    // Find the earliest possible internal key for smallest_user_key
    InternalKey small_key(*smallest_user_key, kMaxSequenceNumber,
                          kValueTypeForSeek);
    index = FindFile(icmp, files, small_key.Encode());
  }

  if (index >= files.size()) {
    // beginning of range is after all files, so no overlap.
    return false;
  }

  return !BeforeFile(ucmp, largest_user_key, files[index]);
}

Version::~Version() {
  assert(refs_ == 0);

  // Remove from linked list
  prev_->next_ = next_;
  next_->prev_ = prev_;

  // Drop references to files
  for (int level = 0; level < kNumLevels; level++) {
    for (size_t i = 0; i < files_[level].size(); i++) {
      FileMetaData* f = files_[level][i];
      assert(f->refs > 0);
      f->refs--;
      if (f->refs <= 0) {
        delete f;
      }
    }
  }
}

void Version::Ref() { ++refs_; }

void Version::Unref() {
  assert(this != &vset_->dummy_versions_);
  assert(refs_ >= 1);
  --refs_;
  if (refs_ == 0) {
    delete this;
  }
}

// An internal iterator. For a given version/level pair, yields information
// about the files in the level. For a given entry, key() is the largest key
// that occurs in the file, and value() is a 16-byte value containing the
// file number and file size, both encoded using EncodeFixed64.
class LevelFileNumIterator : public Iterator {
 public:
  LevelFileNumIterator(const InternalKeyComparator& icmp,
                       const std::vector<FileMetaData*>* flist)
      : icmp_(icmp), flist_(flist), index_(flist->size()) {  // Marks as invalid
  }
  bool Valid() const override { return index_ < flist_->size(); }
  void Seek(const Slice& target) override {
    index_ = FindFile(icmp_, *flist_, target);
  }
  void SeekToFirst() override { index_ = 0; }
  void SeekToLast() override {
    index_ = flist_->empty() ? 0 : flist_->size() - 1;
  }
  void Next() override {
    assert(Valid());
    index_++;
  }
  void Prev() override {
    assert(Valid());
    if (index_ == 0) {
      index_ = flist_->size();  // Marks as invalid
    } else {
      index_--;
    }
  }
  Slice key() const override {
    assert(Valid());
    return (*flist_)[index_]->largest.Encode();
  }
  Slice value() const override {
    assert(Valid());
    EncodeFixed64(value_buf_, (*flist_)[index_]->number);
    EncodeFixed64(value_buf_ + 8, (*flist_)[index_]->file_size);
    return Slice(value_buf_, sizeof(value_buf_));
  }
  Status status() const override { return Status::OK(); }

 private:
  const InternalKeyComparator icmp_;
  const std::vector<FileMetaData*>* const flist_;
  size_t index_;

  // Backing store for value(). Holds the file number and size.
  mutable char value_buf_[16];
};

static Iterator* GetFileIterator(void* arg, const ReadOptions& options,
                                 const Slice& file_value) {
  TableCache* cache = reinterpret_cast<TableCache*>(arg);
  if (file_value.size() != 16) {
    return NewErrorIterator(
        Status::Corruption("FileReader invoked with unexpected value"));
  } else {
    return cache->NewIterator(options, DecodeFixed64(file_value.data()),
                              DecodeFixed64(file_value.data() + 8));
  }
}

Iterator* Version::NewConcatenatingIterator(const ReadOptions& options,
                                            int level) const {
  return NewTwoLevelIterator(
      new LevelFileNumIterator(vset_->icmp_, &files_[level]), &GetFileIterator,
      vset_->table_cache_, options);
}

void Version::AddIterators(const ReadOptions& options,
                           std::vector<Iterator*>* iters) {
  for (int level = 0; level < kNumLevels; level++) {
    if (files_[level].empty()) continue;
    if (IsOverlappingLevel(vset_->options_, level)) {
      // Merge all runs; newest first so the merging iterator prefers fresh
      // entries on ties (the internal key comparator already breaks ties by
      // sequence, so order here only matters for efficiency).
      for (size_t i = files_[level].size(); i > 0; i--) {
        const FileMetaData* f = files_[level][i - 1];
        iters->push_back(
            vset_->table_cache_->NewIterator(options, f->number, f->file_size));
      }
    } else {
      // For sorted levels, we can use a concatenating iterator that
      // sequentially walks through the non-overlapping files in the level,
      // opening them lazily.
      iters->push_back(NewConcatenatingIterator(options, level));
    }
  }
}

// Callback from TableCache::Get()
namespace {
enum SaverState {
  kNotFound,
  kFound,
  kDeleted,
  kCorrupt,
};
struct Saver {
  SaverState state;
  const Comparator* ucmp;
  Slice user_key;
  std::string* value;
  SequenceNumber seq = 0;   // sequence of the deciding entry
  bool is_pointer = false;  // *value is an encoded vLog pointer
};
}  // namespace
static void SaveValue(void* arg, const Slice& ikey, const Slice& v) {
  Saver* s = reinterpret_cast<Saver*>(arg);
  ParsedInternalKey parsed_key;
  if (!ParseInternalKey(ikey, &parsed_key)) {
    s->state = kCorrupt;
  } else {
    if (s->ucmp->Compare(parsed_key.user_key, s->user_key) == 0) {
      s->state = (parsed_key.type == kTypeValue ||
                  parsed_key.type == kTypeValuePointer)
                     ? kFound
                     : kDeleted;
      s->seq = parsed_key.sequence;
      if (s->state == kFound) {
        s->value->assign(v.data(), v.size());
        s->is_pointer = (parsed_key.type == kTypeValuePointer);
      }
    }
  }
}

static bool NewestFirst(FileMetaData* a, FileMetaData* b) {
  return a->number > b->number;
}

Status Version::Get(const ReadOptions& options, const LookupKey& k,
                    std::string* value, uint64_t* filter_negatives,
                    SequenceNumber* found_seq, bool* is_pointer) {
  Slice ikey = k.internal_key();
  Slice user_key = k.user_key();
  const Comparator* ucmp = vset_->icmp_.user_comparator();

  std::vector<FileMetaData*> tmp;
  for (int level = 0; level < kNumLevels; level++) {
    const std::vector<FileMetaData*>& files = files_[level];
    if (files.empty()) continue;

    if (IsOverlappingLevel(vset_->options_, level)) {
      // Overlapping runs: gather files whose range covers user_key and
      // search them newest-to-oldest.
      tmp.clear();
      tmp.reserve(files.size());
      for (FileMetaData* f : files) {
        if (ucmp->Compare(user_key, f->smallest.user_key()) >= 0 &&
            ucmp->Compare(user_key, f->largest.user_key()) <= 0) {
          tmp.push_back(f);
        }
      }
      if (tmp.empty()) continue;
      std::sort(tmp.begin(), tmp.end(), NewestFirst);
      for (FileMetaData* f : tmp) {
        Saver saver;
        saver.state = kNotFound;
        saver.ucmp = ucmp;
        saver.user_key = user_key;
        saver.value = value;
        Status s = vset_->table_cache_->Get(options, f->number, f->file_size,
                                            ikey, user_key, &saver, SaveValue,
                                            filter_negatives);
        if (!s.ok()) return s;
        switch (saver.state) {
          case kNotFound:
            break;  // Keep searching
          case kFound:
            if (found_seq != nullptr) *found_seq = saver.seq;
            if (is_pointer != nullptr) *is_pointer = saver.is_pointer;
            return Status::OK();
          case kDeleted:
            if (found_seq != nullptr) *found_seq = saver.seq;
            return Status::NotFound(Slice());
          case kCorrupt:
            return Status::Corruption("corrupted key for ", user_key);
        }
      }
    } else {
      // Binary search to find earliest file whose largest key >= ikey.
      uint32_t index = FindFile(vset_->icmp_, files, ikey);
      if (index >= files.size()) continue;
      FileMetaData* f = files[index];
      if (ucmp->Compare(user_key, f->smallest.user_key()) < 0) {
        continue;  // key is before this file's range: not at this level
      }
      Saver saver;
      saver.state = kNotFound;
      saver.ucmp = ucmp;
      saver.user_key = user_key;
      saver.value = value;
      Status s = vset_->table_cache_->Get(options, f->number, f->file_size,
                                          ikey, user_key, &saver, SaveValue,
                                          filter_negatives);
      if (!s.ok()) return s;
      switch (saver.state) {
        case kNotFound:
          break;  // Keep searching deeper levels
        case kFound:
          if (found_seq != nullptr) *found_seq = saver.seq;
          if (is_pointer != nullptr) *is_pointer = saver.is_pointer;
          return Status::OK();
        case kDeleted:
          if (found_seq != nullptr) *found_seq = saver.seq;
          return Status::NotFound(Slice());
        case kCorrupt:
          return Status::Corruption("corrupted key for ", user_key);
      }
    }
  }

  return Status::NotFound(Slice());
}

namespace {
// One (item, table) probe within a MultiGet round. Lives in a vector that
// is fully sized before any PrepareGet call so &req stays pinned for the
// completion hook.
struct MultiGetLookup {
  size_t item = 0;
  FileMetaData* file = nullptr;
  Table* table = nullptr;
  TableReadRequest req;
};
}  // namespace

void Version::MultiGet(const ReadOptions& options, MultiGetItem* items,
                       size_t count, uint64_t* filter_negatives) {
  const Comparator* ucmp = vset_->icmp_.user_comparator();
  Env* const env = vset_->options_->env;

  // Per-item candidate files within the current level, newest first.
  std::vector<std::vector<FileMetaData*>> cand(count);

  for (int level = 0; level < kNumLevels; level++) {
    const std::vector<FileMetaData*>& files = files_[level];
    if (files.empty()) continue;

    size_t max_rank = 0;
    for (size_t i = 0; i < count; i++) {
      cand[i].clear();
      if (items[i].done) continue;
      const Slice user_key = items[i].key->user_key();
      if (IsOverlappingLevel(vset_->options_, level)) {
        for (FileMetaData* f : files) {
          if (ucmp->Compare(user_key, f->smallest.user_key()) >= 0 &&
              ucmp->Compare(user_key, f->largest.user_key()) <= 0) {
            cand[i].push_back(f);
          }
        }
        std::sort(cand[i].begin(), cand[i].end(), NewestFirst);
      } else {
        const uint32_t index =
            FindFile(vset_->icmp_, files, items[i].key->internal_key());
        if (index < files.size() &&
            ucmp->Compare(user_key, files[index]->smallest.user_key()) >= 0) {
          cand[i].push_back(files[index]);
        }
      }
      max_rank = std::max(max_rank, cand[i].size());
    }

    // Candidates per key are newest-to-oldest, so probing every unresolved
    // key's rank-r table before any rank-r+1 table preserves the per-key
    // order of the sequential Get walk; keys within one rank are
    // independent, which is what lets their block reads share a batch.
    for (size_t rank = 0; rank < max_rank; rank++) {
      std::vector<MultiGetLookup> lookups;
      lookups.reserve(count);
      for (size_t i = 0; i < count; i++) {
        if (items[i].done || rank >= cand[i].size()) continue;
        lookups.emplace_back();
        lookups.back().item = i;
        lookups.back().file = cand[i][rank];
      }
      if (lookups.empty()) break;

      // Pin each distinct table once for the round, then prepare every
      // lookup (bloom + index seek + block-cache check -- no file IO).
      std::map<uint64_t, std::pair<Table*, Cache::Handle*>> pinned;
      std::vector<MultiGetLookup*> ready;    // kReady: resolve without IO
      std::vector<MultiGetLookup*> pending;  // kNeedsRead: block read first
      ready.reserve(lookups.size());
      pending.reserve(lookups.size());
      for (MultiGetLookup& lk : lookups) {
        MultiGetItem& item = items[lk.item];
        auto it = pinned.find(lk.file->number);
        if (it == pinned.end()) {
          Table* table = nullptr;
          Cache::Handle* handle = nullptr;
          Status s = vset_->table_cache_->PinTable(
              lk.file->number, lk.file->file_size, &table, &handle);
          if (!s.ok()) {
            item.status = s;
            item.done = true;
            continue;
          }
          it = pinned.emplace(lk.file->number, std::make_pair(table, handle))
                   .first;
        }
        lk.table = it->second.first;
        const TablePrepare prep = lk.table->PrepareGet(
            options, item.key->internal_key(), item.key->user_key(), &lk.req,
            filter_negatives);
        if (prep == TablePrepare::kFilteredOut ||
            prep == TablePrepare::kNoBlock) {
          continue;  // no entry in this table; deeper candidates decide
        }
        if (prep == TablePrepare::kNeedsRead) {
          pending.push_back(&lk);
        } else {
          ready.push_back(&lk);
        }
      }

      // Submit every block read up front, split across a few completion
      // queues, then resolve group by group: while group g's entries are
      // seeked and copied out, groups g+1.. still have their reads in
      // flight. One barrier over the whole rank would instead serialize
      // all the resolution work after the last (straggler) read.
      constexpr size_t kReadGroups = 8;
      std::array<CompletionQueue, kReadGroups> cqs;
      std::array<std::vector<ReadRequest*>, kReadGroups> group_reads;
      std::array<std::vector<MultiGetLookup*>, kReadGroups> group_lookups;
      const size_t per_group =
          (pending.size() + kReadGroups - 1) / kReadGroups;
      for (size_t j = 0; j < pending.size(); j++) {
        const size_t g = j / per_group;
        group_reads[g].push_back(&pending[j]->req.io);
        group_lookups[g].push_back(pending[j]);
      }
      for (size_t g = 0; g < kReadGroups; g++) {
        if (group_reads[g].empty()) continue;
        env->SubmitReads(group_reads[g].data(), group_reads[g].size(),
                        &cqs[g]);  // io: unlocked
      }

      auto resolve = [&](MultiGetLookup* lk) {
        MultiGetItem& item = items[lk->item];
        Saver saver;
        saver.state = kNotFound;
        saver.ucmp = ucmp;
        saver.user_key = item.key->user_key();
        saver.value = item.value;
        Status s = lk->table->ReadInBlock(&lk->req, item.key->internal_key(),
                                          &saver, SaveValue);
        if (!s.ok()) {
          item.status = s;
          item.done = true;
          return;
        }
        switch (saver.state) {
          case kNotFound:
            break;  // keep searching deeper candidates / levels
          case kFound:
            item.status = Status::OK();
            item.seq = saver.seq;
            item.is_pointer = saver.is_pointer;
            item.done = true;
            break;
          case kDeleted:
            item.status = Status::NotFound(Slice());
            item.seq = saver.seq;
            item.done = true;
            break;
          case kCorrupt:
            item.status =
                Status::Corruption("corrupted key for ", saver.user_key);
            item.done = true;
            break;
        }
      };
      for (MultiGetLookup* lk : ready) resolve(lk);
      for (size_t g = 0; g < kReadGroups; g++) {
        if (group_lookups[g].empty()) continue;
        cqs[g].WaitFor(group_lookups[g].size());
        for (MultiGetLookup* lk : group_lookups[g]) resolve(lk);
      }

      for (auto& entry : pinned) {
        vset_->table_cache_->Unpin(entry.second.second);
      }
    }
  }

  for (size_t i = 0; i < count; i++) {
    if (!items[i].done) {
      items[i].status = Status::NotFound(Slice());
      items[i].done = true;
    }
  }
}

bool Version::OverlapInLevel(int level, const Slice* smallest_user_key,
                             const Slice* largest_user_key) {
  return SomeFileOverlapsRange(vset_->icmp_,
                               !IsOverlappingLevel(vset_->options_, level),
                               files_[level], smallest_user_key,
                               largest_user_key);
}

void Version::GetOverlappingInputs(int level, const InternalKey* begin,
                                   const InternalKey* end,
                                   std::vector<FileMetaData*>* inputs) {
  assert(level >= 0);
  assert(level < kNumLevels);
  inputs->clear();
  Slice user_begin, user_end;
  if (begin != nullptr) {
    user_begin = begin->user_key();
  }
  if (end != nullptr) {
    user_end = end->user_key();
  }
  const Comparator* user_cmp = vset_->icmp_.user_comparator();
  for (size_t i = 0; i < files_[level].size();) {
    FileMetaData* f = files_[level][i++];
    const Slice file_start = f->smallest.user_key();
    const Slice file_limit = f->largest.user_key();
    if (begin != nullptr && user_cmp->Compare(file_limit, user_begin) < 0) {
      // "f" is completely before specified range; skip it
    } else if (end != nullptr && user_cmp->Compare(file_start, user_end) > 0) {
      // "f" is completely after specified range; skip it
    } else {
      inputs->push_back(f);
      if (IsOverlappingLevel(vset_->options_, level)) {
        // Overlapping files may still expand the covered range: restart the
        // search with the widened range so every transitively-overlapping
        // run is included.
        if (begin != nullptr &&
            user_cmp->Compare(file_start, user_begin) < 0) {
          user_begin = file_start;
          inputs->clear();
          i = 0;
        } else if (end != nullptr &&
                   user_cmp->Compare(file_limit, user_end) > 0) {
          user_end = file_limit;
          inputs->clear();
          i = 0;
        }
      }
    }
  }
}

int Version::DeepestNonEmptyLevel() const {
  int deepest = 0;
  for (int level = 0; level < kNumLevels; level++) {
    if (!files_[level].empty()) deepest = level;
  }
  return deepest;
}

bool Version::IsBaseLevelForKey(int level, const Slice& user_key) const {
  const Comparator* ucmp = vset_->icmp_.user_comparator();
  for (int lvl = level + 1; lvl < kNumLevels; lvl++) {
    for (FileMetaData* f : files_[lvl]) {
      if (ucmp->Compare(user_key, f->smallest.user_key()) >= 0 &&
          ucmp->Compare(user_key, f->largest.user_key()) <= 0) {
        return false;
      }
    }
  }
  return true;
}

SequenceNumber Version::MaxRangeCoveringSeq(const Slice& user_key,
                                            SequenceNumber snapshot) const {
  const Comparator* ucmp = vset_->icmp_.user_comparator();
  SequenceNumber best = 0;
  for (int level = 0; level < kNumLevels; level++) {
    for (FileMetaData* f : files_[level]) {
      if (!f->has_range_tombstones()) continue;
      // Metadata span test first: [range_del_begin, range_del_end) must
      // contain the key before the block is worth opening.
      if (ucmp->Compare(user_key, f->range_del_begin) < 0 ||
          ucmp->Compare(user_key, f->range_del_end) >= 0) {
        continue;
      }
      SequenceNumber seq = vset_->table_cache_->MaxRangeCoveringSeq(
          f->number, f->file_size, user_key, snapshot);
      if (seq > best) best = seq;
    }
  }
  return best;
}

Status Version::CollectRangeTombstones(std::vector<RangeTombstone>* out) const {
  for (int level = 0; level < kNumLevels; level++) {
    for (FileMetaData* f : files_[level]) {
      if (!f->has_range_tombstones()) continue;
      Status s = vset_->table_cache_->GetRangeTombstones(f->number,
                                                         f->file_size, out);
      if (!s.ok()) return s;
    }
  }
  return Status::OK();
}

uint64_t Version::MaxRangeTombstoneAge(SequenceNumber last_seq) const {
  uint64_t max_age = 0;
  for (int level = 0; level < kNumLevels; level++) {
    for (FileMetaData* f : files_[level]) {
      if (f->has_range_tombstones() &&
          last_seq >= f->earliest_range_tombstone_seq) {
        max_age =
            std::max(max_age, last_seq - f->earliest_range_tombstone_seq);
      }
    }
  }
  return max_age;
}

uint64_t Version::TotalRangeTombstones() const {
  uint64_t total = 0;
  for (int level = 0; level < kNumLevels; level++) {
    for (FileMetaData* f : files_[level]) {
      total += f->num_range_tombstones;
    }
  }
  return total;
}

uint64_t Version::MaxTombstoneAge(SequenceNumber last_seq) const {
  uint64_t max_age = 0;
  for (int level = 0; level < kNumLevels; level++) {
    for (FileMetaData* f : files_[level]) {
      if (f->has_tombstones() && last_seq >= f->earliest_tombstone_seq) {
        max_age = std::max(max_age, last_seq - f->earliest_tombstone_seq);
      }
    }
  }
  return max_age;
}

uint64_t Version::TotalTombstones() const {
  uint64_t total = 0;
  for (int level = 0; level < kNumLevels; level++) {
    for (FileMetaData* f : files_[level]) {
      total += f->num_tombstones;
    }
  }
  return total;
}

int64_t Version::NumLevelBytes(int level) const {
  int64_t sum = 0;
  for (FileMetaData* f : files_[level]) {
    sum += f->file_size;
  }
  return sum;
}

std::string Version::DebugString() const {
  std::string r;
  for (int level = 0; level < kNumLevels; level++) {
    // E.g.,
    //   --- level 1 ---
    //   17:123['a' .. 'd']
    //   20:43['e' .. 'g']
    if (files_[level].empty()) continue;
    r.append("--- level ");
    r.append(std::to_string(level));
    r.append(" ---\n");
    for (const FileMetaData* f : files_[level]) {
      r.push_back(' ');
      r.append(std::to_string(f->number));
      r.push_back(':');
      r.append(std::to_string(f->file_size));
      r.append("[");
      r.append(f->smallest.DebugString());
      r.append(" .. ");
      r.append(f->largest.DebugString());
      r.append("] ts=");
      r.append(std::to_string(f->num_tombstones));
      r.push_back('\n');
    }
  }
  return r;
}

// A helper class so we can efficiently apply a whole sequence of edits to a
// particular state without creating intermediate Versions that contain full
// copies of the intermediate state.
class VersionSet::Builder {
 private:
  // Helper to sort by v->files_[file_number].smallest
  struct BySmallestKey {
    const InternalKeyComparator* internal_comparator;

    bool operator()(FileMetaData* f1, FileMetaData* f2) const {
      int r = internal_comparator->Compare(f1->smallest, f2->smallest);
      if (r != 0) {
        return (r < 0);
      } else {
        // Break ties by file number
        return (f1->number < f2->number);
      }
    }
  };

  typedef std::set<FileMetaData*, BySmallestKey> FileSet;
  struct LevelState {
    std::set<uint64_t> deleted_files;
    FileSet* added_files;
  };

  VersionSet* vset_;
  Version* base_;
  LevelState levels_[kNumLevels];

 public:
  // Initialize a builder with the files from *base and other info from *vset
  Builder(VersionSet* vset, Version* base) : vset_(vset), base_(base) {
    base_->Ref();
    BySmallestKey cmp;
    cmp.internal_comparator = &vset_->icmp_;
    for (int level = 0; level < kNumLevels; level++) {
      levels_[level].added_files = new FileSet(cmp);
    }
  }

  ~Builder() {
    for (int level = 0; level < kNumLevels; level++) {
      const FileSet* added = levels_[level].added_files;
      std::vector<FileMetaData*> to_unref;
      to_unref.reserve(added->size());
      for (FileSet::const_iterator it = added->begin(); it != added->end();
           ++it) {
        to_unref.push_back(*it);
      }
      delete added;
      for (uint32_t i = 0; i < to_unref.size(); i++) {
        FileMetaData* f = to_unref[i];
        f->refs--;
        if (f->refs <= 0) {
          delete f;
        }
      }
    }
    base_->Unref();
  }

  // Apply all of the edits in *edit to the current state.
  void Apply(const VersionEdit* edit) {
    // Update compaction pointers
    for (size_t i = 0; i < edit->compact_pointers_.size(); i++) {
      const int level = edit->compact_pointers_[i].first;
      vset_->compact_pointer_[level] =
          edit->compact_pointers_[i].second.Encode().ToString();
    }

    // Delete files
    for (const auto& deleted_file_set_kvp : edit->deleted_files_) {
      const int level = deleted_file_set_kvp.first;
      const uint64_t number = deleted_file_set_kvp.second;
      levels_[level].deleted_files.insert(number);
    }

    // Add new files
    for (size_t i = 0; i < edit->new_files_.size(); i++) {
      const int level = edit->new_files_[i].first;
      FileMetaData* f = new FileMetaData(edit->new_files_[i].second);
      f->refs = 1;
      levels_[level].deleted_files.erase(f->number);
      levels_[level].added_files->insert(f);
    }
  }

  // Save the current state in *v.
  void SaveTo(Version* v) {
    BySmallestKey cmp;
    cmp.internal_comparator = &vset_->icmp_;
    for (int level = 0; level < kNumLevels; level++) {
      // Merge the set of added files with the set of pre-existing files.
      // Drop any deleted files.
      const std::vector<FileMetaData*>& base_files = base_->files_[level];
      std::vector<FileMetaData*>::const_iterator base_iter = base_files.begin();
      std::vector<FileMetaData*>::const_iterator base_end = base_files.end();
      const FileSet* added_files = levels_[level].added_files;
      v->files_[level].reserve(base_files.size() + added_files->size());
      for (const auto& added_file : *added_files) {
        // Add all smaller files listed in base_
        for (std::vector<FileMetaData*>::const_iterator bpos =
                 std::upper_bound(base_iter, base_end, added_file, cmp);
             base_iter != bpos; ++base_iter) {
          MaybeAddFile(v, level, *base_iter);
        }

        MaybeAddFile(v, level, added_file);
      }

      // Add remaining base files
      for (; base_iter != base_end; ++base_iter) {
        MaybeAddFile(v, level, *base_iter);
      }

      // Overlapping levels (L0 / tiering) are kept ordered by file number
      // (creation order) so "newest run" is simply the highest number.
      if (IsOverlappingLevel(vset_->options_, level)) {
        std::sort(v->files_[level].begin(), v->files_[level].end(),
                  [](FileMetaData* a, FileMetaData* b) {
                    return a->number < b->number;
                  });
      }

#ifndef NDEBUG
      // Make sure there is no overlap in sorted levels
      if (!IsOverlappingLevel(vset_->options_, level)) {
        for (uint32_t i = 1; i < v->files_[level].size(); i++) {
          const InternalKey& prev_end = v->files_[level][i - 1]->largest;
          const InternalKey& this_begin = v->files_[level][i]->smallest;
          if (vset_->icmp_.Compare(prev_end, this_begin) >= 0) {
            std::fprintf(stderr, "overlapping ranges in same level %s vs. %s\n",
                         prev_end.DebugString().c_str(),
                         this_begin.DebugString().c_str());
            std::abort();
          }
        }
      }
#endif
    }
  }

  void MaybeAddFile(Version* v, int level, FileMetaData* f) {
    if (levels_[level].deleted_files.count(f->number) > 0) {
      // File is deleted: do nothing
    } else {
      std::vector<FileMetaData*>* files = &v->files_[level];
      if (level > 0 && !files->empty() &&
          !IsOverlappingLevel(vset_->options_, level)) {
        // Must not overlap
        assert(vset_->icmp_.Compare((*files)[files->size() - 1]->largest,
                                    f->smallest) < 0);
      }
      f->refs++;
      files->push_back(f);
    }
  }
};

VersionSet::VersionSet(const std::string& dbname, const Options* options,
                       TableCache* table_cache,
                       const InternalKeyComparator* cmp)
    : env_(options->env),
      dbname_(dbname),
      options_(options),
      table_cache_(table_cache),
      icmp_(*cmp),
      next_file_number_(2),
      manifest_file_number_(0),  // Filled by Recover()
      last_sequence_(0),
      log_number_(0),
      descriptor_file_(nullptr),
      descriptor_log_(nullptr),
      edits_since_snapshot_(0),
      manifest_edits_replayed_(0),
      snapshots_written_(0),
      manifest_rotations_(0),
      torn_snapshots_skipped_(0),
      dummy_versions_(this),
      current_(nullptr) {
  AppendVersion(new Version(this));
}

VersionSet::~VersionSet() {
  current_->Unref();
  assert(dummy_versions_.next_ == &dummy_versions_);  // List must be empty
  delete descriptor_log_;
  delete descriptor_file_;
}

void VersionSet::AppendVersion(Version* v) {
  // Make "v" current
  assert(v->refs_ == 0);
  assert(v != current_);
  if (current_ != nullptr) {
    current_->Unref();
  }
  current_ = v;
  v->Ref();

  // Append to linked list
  v->prev_ = dummy_versions_.prev_;
  v->next_ = &dummy_versions_;
  v->prev_->next_ = v;
  v->next_->prev_ = v;
}

Status VersionSet::LogAndApply(VersionEdit* edit, Mutex* mu) {
  mu->AssertHeld();
  if (edit->has_log_number_) {
    assert(edit->log_number_ >= log_number_);
    assert(edit->log_number_ < next_file_number_);
  } else {
    edit->SetLogNumber(log_number_);
  }

  // Rotate the descriptor once enough edits have accumulated since the last
  // snapshot: close the current MANIFEST and let the lazy-open branch below
  // start a fresh one headed by a checksummed snapshot record. Crash-safe at
  // every file op in between: CURRENT keeps naming the old (complete)
  // MANIFEST until SetCurrentFile repoints it. Must run before SetNextFile
  // below so the edit's recorded next-file exceeds the new MANIFEST's own
  // number (recovery derives the next descriptor name from that field).
  if (descriptor_log_ != nullptr && options_->manifest_snapshot_interval > 0 &&
      edits_since_snapshot_ >= options_->manifest_snapshot_interval) {
    // io: mutex-held -- MANIFEST rotation (closes the old descriptor)
    delete descriptor_log_;
    delete descriptor_file_;
    descriptor_log_ = nullptr;
    descriptor_file_ = nullptr;
    manifest_file_number_ = NewFileNumber();
    manifest_rotations_++;
  }

  edit->SetNextFile(next_file_number_);
  edit->SetLastSequence(LastSequence());

  Version* v = new Version(this);
  {
    Builder builder(this, current_);
    builder.Apply(edit);
    builder.SaveTo(v);
  }

  // Initialize new descriptor log file if necessary by creating a temporary
  // file that contains a snapshot of the current version.
  std::string new_manifest_file;
  Status s;
  if (descriptor_log_ == nullptr) {
    // No reason to unlock *mu here since we only hit this path in the first
    // call to LogAndApply (when opening the database).
    assert(descriptor_file_ == nullptr);
    new_manifest_file = DescriptorFileName(dbname_, manifest_file_number_);
    std::unique_ptr<WritableFile> file;
    // io: mutex-held -- first edit into a fresh MANIFEST (open or rotation)
    s = env_->NewWritableFile(new_manifest_file, &file);
    if (s.ok()) {
      descriptor_file_ = file.release();
      descriptor_log_ = new wal::Writer(descriptor_file_);
      s = WriteSnapshot(descriptor_log_);
    }
  }

  // Write new record to MANIFEST log
  if (s.ok()) {
    std::string record;
    edit->EncodeTo(&record);
    s = descriptor_log_->AddRecord(record);
    if (s.ok()) {
      s = descriptor_file_->Sync();
    }
  }

  // If we just created a new descriptor file, install it by writing a new
  // CURRENT file that points to it.
  if (s.ok() && !new_manifest_file.empty()) {
    s = SetCurrentFile(env_, dbname_, manifest_file_number_);
  }

  // Install the new version
  if (s.ok()) {
    AppendVersion(v);
    log_number_ = edit->log_number_;
    edits_since_snapshot_++;
    FoldEditIntoJournal(*edit);
  } else {
    delete v;
    // Whatever failed -- the record append, the sync, or installing a fresh
    // descriptor -- the wal::Writer's block arithmetic may have diverged
    // from the bytes that actually reached the file, so retrying in place
    // could emit records a reader mis-parses. Abandon the descriptor: the
    // next LogAndApply (e.g. a background retry, see
    // DBImpl::RecordBackgroundError) lazily opens a brand-new MANIFEST
    // headed by a full snapshot and repoints CURRENT only after a
    // successful sync. Until then CURRENT keeps naming the last complete
    // MANIFEST, whose torn tail recovery already tolerates.
    // io: mutex-held -- abandon the possibly-desynced descriptor
    delete descriptor_log_;
    delete descriptor_file_;
    descriptor_log_ = nullptr;
    descriptor_file_ = nullptr;
    if (!new_manifest_file.empty()) {
      // io: mutex-held -- best-effort cleanup of the failed MANIFEST
      (void)env_->RemoveFile(new_manifest_file);
    }
    // Never reuse the abandoned number: if CURRENT already points at it,
    // reopening it would truncate the only complete MANIFEST on disk.
    manifest_file_number_ = NewFileNumber();
  }

  return s;
}

// Fold an edit's vLog registry fields into |registry|. Shared by
// LogAndApply (live state) and Recover (replay), so the recovered registry
// is bit-identical to the pre-crash one.
static void ApplyVlogEditTo(const VersionEdit& edit, vlog::Registry* registry) {
  for (const vlog::SegmentInfo& info : edit.vlog_segments()) {
    (*registry)[info.number] = info;
  }
  for (uint64_t seg : edit.vlog_removed_segments()) {
    registry->erase(seg);
  }
  for (const vlog::SegmentDelta& delta : edit.vlog_deltas()) {
    vlog::ApplyDelta(registry, delta);
  }
}

void VersionSet::FoldEditIntoJournal(const VersionEdit& edit) {
  if (edit.has_monitor_written()) {
    journal_state_.written = edit.monitor_written();
  }
  if (edit.has_monitor_delta()) {
    journal_state_.persisted += edit.monitor_persisted();
    journal_state_.superseded += edit.monitor_superseded();
    journal_state_.latency.Merge(edit.monitor_latency());
  }
  if (edit.has_monitor_range_written()) {
    journal_state_.range_written = edit.monitor_range_written();
  }
  if (edit.has_monitor_range_delta()) {
    journal_state_.range_persisted += edit.monitor_range_persisted();
    journal_state_.range_superseded += edit.monitor_range_superseded();
    journal_state_.range_latency.Merge(edit.monitor_range_latency());
  }
  if (edit.has_vlog_monitor_delta()) {
    journal_state_.vlog_purged += edit.vlog_monitor_purged();
    journal_state_.vlog_latency.Merge(edit.vlog_monitor_latency());
  }
  ApplyVlogEditTo(edit, &vlog_registry_);
}

Status VersionSet::WriteCleanCloseSnapshot() {
  if (descriptor_log_ == nullptr) {
    return Status::OK();
  }
  Status s = WriteSnapshot(descriptor_log_);
  if (s.ok()) {
    // io: mutex-held -- clean-close snapshot sync (DB is shutting down)
    s = descriptor_file_->Sync();
  }
  return s;
}

Status VersionSet::Recover(bool* save_manifest) {
  struct LogReporter : public wal::Reader::Reporter {
    Status* status;
    void Corruption(size_t, const Status& s) override {
      if (this->status->ok()) *this->status = s;
    }
  };

  // Read "CURRENT" file, which contains a pointer to the current manifest
  // file.
  std::string current;
  // io: open/recovery
  Status s = env_->ReadFileToString(CurrentFileName(dbname_), &current);
  if (!s.ok()) {
    return s;
  }
  if (current.empty() || current[current.size() - 1] != '\n') {
    return Status::Corruption("CURRENT file does not end with newline");
  }
  current.resize(current.size() - 1);

  std::string dscname = dbname_ + "/" + current;
  std::unique_ptr<SequentialFile> file;
  // io: open/recovery
  s = env_->NewSequentialFile(dscname, &file);
  if (!s.ok()) {
    if (s.IsNotFound()) {
      return Status::Corruption("CURRENT points to a non-existent file",
                                s.ToString());
    }
    return s;
  }

  bool have_log_number = false;
  bool have_next_file = false;
  bool have_last_sequence = false;
  uint64_t next_file = 0;
  uint64_t last_sequence = 0;
  uint64_t log_number = 0;
  std::unique_ptr<Builder> builder(new Builder(this, current_));
  MonitorJournal journal;
  vlog::Registry registry;
  uint64_t edits_replayed = 0;
  int read_records = 0;

  {
    LogReporter reporter;
    reporter.status = &s;
    wal::Reader reader(file.get(), &reporter, true /*checksum*/);
    Slice record;
    std::string scratch;
    while (reader.ReadRecord(&record, &scratch) && s.ok()) {
      ++read_records;
      VersionEdit edit;
      s = edit.DecodeFrom(record);
      if (!s.ok() && edit.IsSnapshot() && read_records > 1) {
        // A non-head snapshot record that failed its inner CRC: skip it and
        // keep the state accumulated so far (previous snapshot + suffix
        // edits). A later snapshot adds no information the preceding records
        // lack, so dropping it is always safe -- unlike a corrupt ordinary
        // edit, which leaves a hole in the delta chain and stays fatal. A
        // corrupt HEAD snapshot is the file-set baseline itself and remains
        // fatal (RepairDB then falls back to an older MANIFEST or salvage).
        torn_snapshots_skipped_++;
        s = Status::OK();
        continue;
      }
      if (s.ok()) {
        if (edit.has_comparator_ &&
            edit.comparator_ != icmp_.user_comparator()->Name()) {
          s = Status::InvalidArgument(
              edit.comparator_ + " does not match existing comparator ",
              icmp_.user_comparator()->Name());
        }
      }

      if (s.ok()) {
        if (edit.IsSnapshot()) {
          // Valid snapshot: restart replay from here. The record carries the
          // complete file set and cumulative monitor state, so everything
          // accumulated before it is superseded.
          builder.reset();
          builder.reset(new Builder(this, new Version(this)));
          journal = MonitorJournal();
          registry.clear();
          edits_replayed = 0;
        } else {
          edits_replayed++;
        }
        builder->Apply(&edit);
        if (edit.has_monitor_written()) {
          journal.written = edit.monitor_written();
        }
        if (edit.has_monitor_delta()) {
          journal.persisted += edit.monitor_persisted();
          journal.superseded += edit.monitor_superseded();
          journal.latency.Merge(edit.monitor_latency());
        }
        if (edit.has_monitor_range_written()) {
          journal.range_written = edit.monitor_range_written();
        }
        if (edit.has_monitor_range_delta()) {
          journal.range_persisted += edit.monitor_range_persisted();
          journal.range_superseded += edit.monitor_range_superseded();
          journal.range_latency.Merge(edit.monitor_range_latency());
        }
        if (edit.has_vlog_monitor_delta()) {
          journal.vlog_purged += edit.vlog_monitor_purged();
          journal.vlog_latency.Merge(edit.vlog_monitor_latency());
        }
        ApplyVlogEditTo(edit, &registry);
      }

      if (edit.has_log_number_) {
        log_number = edit.log_number_;
        have_log_number = true;
      }

      if (edit.has_next_file_number_) {
        next_file = edit.next_file_number_;
        have_next_file = true;
      }

      if (edit.has_last_sequence_) {
        last_sequence = edit.last_sequence_;
        have_last_sequence = true;
      }
    }
  }
  file.reset();

  if (s.ok()) {
    if (!have_next_file) {
      s = Status::Corruption("no meta-nextfile entry in descriptor");
    } else if (!have_log_number) {
      s = Status::Corruption("no meta-lognumber entry in descriptor");
    } else if (!have_last_sequence) {
      s = Status::Corruption("no last-sequence-number entry in descriptor");
    }

    MarkFileNumberUsed(log_number);
  }

  if (s.ok()) {
    Version* v = new Version(this);
    builder->SaveTo(v);
    // Install recovered version
    AppendVersion(v);
    manifest_file_number_ = next_file;
    next_file_number_ = next_file + 1;
    last_sequence_.store(last_sequence, std::memory_order_release);
    log_number_ = log_number;
    journal_state_ = journal;
    vlog_registry_ = std::move(registry);
    manifest_edits_replayed_ = edits_replayed;

    // A new MANIFEST is always written on open (no manifest reuse).
    *save_manifest = true;
  }

  return s;
}

void VersionSet::MarkFileNumberUsed(uint64_t number) {
  if (next_file_number_ <= number) {
    next_file_number_ = number + 1;
  }
}

Status VersionSet::WriteSnapshot(wal::Writer* log) {
  // Save metadata. The snapshot is a self-contained restart point: beyond
  // the file set it records log/next-file/last-sequence and the cumulative
  // monitor journal, and its body is wrapped in an inner CRC32C (see
  // version_edit.cc) so recovery can trust it independently of WAL framing.
  VersionEdit edit;
  edit.SetSnapshot();
  edit.SetComparatorName(icmp_.user_comparator()->Name());
  edit.SetLogNumber(log_number_);
  edit.SetNextFile(next_file_number_);
  edit.SetLastSequence(LastSequence());
  edit.SetMonitorWritten(journal_state_.written);
  edit.SetMonitorDelta(journal_state_.persisted, journal_state_.superseded,
                       journal_state_.latency);
  edit.SetMonitorRangeWritten(journal_state_.range_written);
  edit.SetMonitorRangeDelta(journal_state_.range_persisted,
                            journal_state_.range_superseded,
                            journal_state_.range_latency);
  edit.SetVlogMonitorDelta(journal_state_.vlog_purged,
                           journal_state_.vlog_latency);
  // Snapshot the vLog segment registry (cumulative: replay resets on the
  // snapshot record, then upserts each segment).
  for (const auto& entry : vlog_registry_) {
    edit.AddVlogSegment(entry.second);
  }

  // Save compaction pointers
  for (int level = 0; level < kNumLevels; level++) {
    if (!compact_pointer_[level].empty()) {
      InternalKey key;
      key.DecodeFrom(compact_pointer_[level]);
      edit.SetCompactPointer(level, key);
    }
  }

  // Save files
  for (int level = 0; level < kNumLevels; level++) {
    for (FileMetaData* f : current_->files_[level]) {
      edit.AddFile(level, *f);
    }
  }

  std::string record;
  edit.EncodeTo(&record);
  Status s = log->AddRecord(record);
  if (s.ok()) {
    edits_since_snapshot_ = 0;
    snapshots_written_++;
  }
  return s;
}

int VersionSet::NumLevelFiles(int level) const {
  assert(level >= 0);
  assert(level < kNumLevels);
  return static_cast<int>(current_->files_[level].size());
}

int64_t VersionSet::NumLevelBytes(int level) const {
  assert(level >= 0);
  assert(level < kNumLevels);
  return current_->NumLevelBytes(level);
}

const char* VersionSet::LevelSummary(LevelSummaryStorage* scratch) const {
  int pos = std::snprintf(scratch->buffer, sizeof(scratch->buffer), "files[ ");
  for (int i = 0; i < kNumLevels; i++) {
    int ret = std::snprintf(scratch->buffer + pos,
                            sizeof(scratch->buffer) - pos, "%d ",
                            int(current_->files_[i].size()));
    if (ret < 0 || ret >= static_cast<int>(sizeof(scratch->buffer)) - pos)
      break;
    pos += ret;
  }
  std::snprintf(scratch->buffer + pos, sizeof(scratch->buffer) - pos, "]");
  return scratch->buffer;
}

uint64_t VersionSet::MaxBytesForLevel(int level) const {
  // Level capacities grow geometrically from the write buffer size:
  // capacity(L_i) = write_buffer_size * T^i.
  double result = static_cast<double>(options_->write_buffer_size);
  for (int i = 0; i < level; i++) {
    result *= std::max(2, options_->size_ratio);
  }
  return static_cast<uint64_t>(result);
}

void VersionSet::AddLiveFiles(std::set<uint64_t>* live) {
  for (Version* v = dummy_versions_.next_; v != &dummy_versions_;
       v = v->next_) {
    for (int level = 0; level < kNumLevels; level++) {
      const std::vector<FileMetaData*>& files = v->files_[level];
      for (size_t i = 0; i < files.size(); i++) {
        live->insert(files[i]->number);
      }
    }
  }
}

void VersionSet::AddLiveVlogSegments(std::set<uint64_t>* live) {
  for (const auto& entry : vlog_registry_) {
    live->insert(entry.first);
  }
  // A file's [min,max] span may cover numbers that are not vLog segments at
  // all (file numbers are shared across file kinds); the extra entries are
  // harmless since callers only test membership for actual .vlog files.
  for (Version* v = dummy_versions_.next_; v != &dummy_versions_;
       v = v->next_) {
    for (int level = 0; level < kNumLevels; level++) {
      for (const FileMetaData* f : v->files_[level]) {
        if (!f->has_vlog_pointers()) continue;
        for (uint64_t seg = f->min_vlog_segment; seg <= f->max_vlog_segment;
             seg++) {
          live->insert(seg);
        }
      }
    }
  }
}

// Stores the minimal range that covers all entries in inputs in *smallest,
// *largest. REQUIRES: inputs is not empty
void VersionSet::GetRange(const std::vector<FileMetaData*>& inputs,
                          InternalKey* smallest, InternalKey* largest) {
  assert(!inputs.empty());
  smallest->Clear();
  largest->Clear();
  for (size_t i = 0; i < inputs.size(); i++) {
    FileMetaData* f = inputs[i];
    if (i == 0) {
      *smallest = f->smallest;
      *largest = f->largest;
    } else {
      if (icmp_.Compare(f->smallest, *smallest) < 0) {
        *smallest = f->smallest;
      }
      if (icmp_.Compare(f->largest, *largest) > 0) {
        *largest = f->largest;
      }
    }
  }
}

// Stores the minimal range that covers all entries in inputs1 and inputs2
// in *smallest, *largest. REQUIRES: inputs is not empty
void VersionSet::GetRange2(const std::vector<FileMetaData*>& inputs1,
                           const std::vector<FileMetaData*>& inputs2,
                           InternalKey* smallest, InternalKey* largest) {
  std::vector<FileMetaData*> all = inputs1;
  all.insert(all.end(), inputs2.begin(), inputs2.end());
  GetRange(all, smallest, largest);
}

Iterator* VersionSet::MakeInputIterator(Compaction* c) {
  ReadOptions options;
  options.verify_checksums = options_->paranoid_checks;
  options.fill_cache = false;

  // Level-0/tiering inputs have to be merged file-by-file; sorted level
  // inputs can use a concatenating iterator.
  const bool in0_overlapping = IsOverlappingLevel(options_, c->level());
  const size_t space = (in0_overlapping ? c->num_input_files(0) + 1 : 2);
  Iterator** list = new Iterator*[space];
  size_t num = 0;
  for (int which = 0; which < 2; which++) {
    if (!c->inputs_[which].empty()) {
      const int lvl = (which == 0) ? c->level() : c->output_level();
      if (IsOverlappingLevel(options_, lvl)) {
        const std::vector<FileMetaData*>& files = c->inputs_[which];
        for (size_t i = 0; i < files.size(); i++) {
          list[num++] = table_cache_->NewIterator(options, files[i]->number,
                                                  files[i]->file_size);
        }
      } else {
        // Create concatenating iterator for the files from this level
        list[num++] = NewTwoLevelIterator(
            new LevelFileNumIterator(icmp_, &c->inputs_[which]),
            &GetFileIterator, table_cache_, options);
      }
    }
  }
  assert(num <= space);
  Iterator* result = NewMergingIterator(&icmp_, list, static_cast<int>(num));
  delete[] list;
  return result;
}

bool VersionSet::NeedsCompaction(const CompactionPlanner& planner,
                                 SequenceNumber droppable_horizon) const {
  CompactionPick pick = planner.Pick(current_, LastSequence(),
                                     droppable_horizon, compact_pointer_);
  return !pick.inputs.empty();
}

Compaction* VersionSet::PickCompaction(const CompactionPlanner& planner,
                                       SequenceNumber droppable_horizon) {
  CompactionPick pick = planner.Pick(current_, LastSequence(),
                                     droppable_horizon, compact_pointer_);
  if (pick.inputs.empty()) {
    return nullptr;
  }

  Compaction* c = new Compaction(options_, pick.level, pick.output_level,
                                 static_cast<CompactionReason>(pick.reason_tag));
  c->input_version_ = current_;
  c->input_version_->Ref();
  c->inputs_[0] = pick.inputs;

  // Under leveling, also pull in transitively overlapping files from the
  // input level when it is overlapping (L0), then the next-level overlaps.
  if (options_->compaction_style == CompactionStyle::kLeveling &&
      IsOverlappingLevel(options_, pick.level) &&
      pick.output_level != pick.level) {
    InternalKey smallest, largest;
    GetRange(c->inputs_[0], &smallest, &largest);
    current_->GetOverlappingInputs(pick.level, &smallest, &largest,
                                   &c->inputs_[0]);
    assert(!c->inputs_[0].empty());
  }

  SetupOtherInputs(c);
  return c;
}

void VersionSet::SetupOtherInputs(Compaction* c) {
  const int level = c->level();
  if (c->output_level() == level) {
    // In-place rewrite (bottom-level TTL expiry): no second input set.
    return;
  }

  InternalKey smallest, largest;
  GetRange(c->inputs_[0], &smallest, &largest);

  if (options_->compaction_style == CompactionStyle::kLeveling) {
    current_->GetOverlappingInputs(c->output_level(), &smallest, &largest,
                                   &c->inputs_[1]);
  }
  // Tiering: runs simply stack at the output level; nothing is merged from
  // there, so inputs_[1] stays empty.

  // Update the place where we will do the next compaction for this level.
  // We update this immediately instead of waiting for the VersionEdit to be
  // applied so that if the compaction fails, we will try a different key
  // range next time.
  compact_pointer_[level] = largest.Encode().ToString();
  c->edit_.SetCompactPointer(level, largest);
}

Compaction* VersionSet::CompactRange(int level, const InternalKey* begin,
                                     const InternalKey* end) {
  std::vector<FileMetaData*> inputs;
  current_->GetOverlappingInputs(level, begin, end, &inputs);
  if (inputs.empty()) {
    return nullptr;
  }

  const int deepest = current_->DeepestNonEmptyLevel();
  const int output_level = (level >= deepest) ? level : level + 1;
  Compaction* c =
      new Compaction(options_, level, output_level, CompactionReason::kManual);
  c->input_version_ = current_;
  c->input_version_->Ref();
  c->inputs_[0] = inputs;
  SetupOtherInputs(c);
  return c;
}

const char* CompactionReasonName(CompactionReason reason) {
  switch (reason) {
    case CompactionReason::kNone:
      return "none";
    case CompactionReason::kL0FileCount:
      return "l0-count";
    case CompactionReason::kLevelSize:
      return "level-size";
    case CompactionReason::kTierFull:
      return "tier-full";
    case CompactionReason::kTtlExpiry:
      return "ttl-expiry";
    case CompactionReason::kManual:
      return "manual";
    case CompactionReason::kSecondaryPurge:
      return "secondary-purge";
  }
  return "unknown";
}

Compaction::Compaction(const Options* options, int level, int output_level,
                       CompactionReason reason)
    : level_(level),
      output_level_(output_level),
      reason_(reason),
      max_output_file_size_(
          options->compaction_style == CompactionStyle::kTiering
              ? UINT64_MAX  // a sorted run is one file under tiering
              : options->max_file_size),
      input_version_(nullptr) {
  for (int i = 0; i < kNumLevels; i++) {
    level_ptrs_[i] = 0;
  }
}

Compaction::~Compaction() {
  if (input_version_ != nullptr) {
    input_version_->Unref();
  }
}

uint64_t Compaction::TotalInputBytes() const {
  uint64_t total = 0;
  for (int which = 0; which < 2; which++) {
    for (const FileMetaData* f : inputs_[which]) {
      total += f->file_size;
    }
  }
  return total;
}

bool Compaction::IsTrivialMove() const {
  // A TTL rewrite exists to drop tombstones: never trivially move it.
  // Otherwise, a single input file with nothing to merge below can simply
  // be relinked into the next level.
  if (reason_ == CompactionReason::kTtlExpiry &&
      output_level_ == level_) {
    return false;
  }
  return num_input_files(0) == 1 && num_input_files(1) == 0 &&
         output_level_ != level_;
}

void Compaction::AddInputDeletions(VersionEdit* edit) {
  for (int which = 0; which < 2; which++) {
    const int lvl = (which == 0) ? level_ : output_level_;
    for (size_t i = 0; i < inputs_[which].size(); i++) {
      edit->RemoveFile(lvl, inputs_[which][i]->number);
    }
  }
}

bool Compaction::IsBaseLevelForKey(const Slice& user_key) {
  const Comparator* user_cmp =
      input_version_->vset_->icmp_.user_comparator();
  const bool tiering = input_version_->vset_->options_->compaction_style ==
                       CompactionStyle::kTiering;

  // Levels strictly below the output never contain input files; scan them
  // with the monotonic-pointer optimization (files are sorted there under
  // leveling). Under tiering every level may overlap arbitrarily, so fall
  // back to a plain range scan, skipping this compaction's own inputs.
  const int start = tiering ? output_level_ : output_level_ + 1;
  for (int lvl = start; lvl < kNumLevels; lvl++) {
    const std::vector<FileMetaData*>& files = input_version_->files_[lvl];
    if (!tiering && lvl > 0) {
      while (level_ptrs_[lvl] < files.size()) {
        FileMetaData* f = files[level_ptrs_[lvl]];
        if (user_cmp->Compare(user_key, f->largest.user_key()) <= 0) {
          // We've advanced far enough
          if (user_cmp->Compare(user_key, f->smallest.user_key()) >= 0) {
            // Key falls in this file's range, so definitely not base level
            return false;
          }
          break;
        }
        level_ptrs_[lvl]++;
      }
    } else {
      for (FileMetaData* f : files) {
        bool is_input = false;
        for (int which = 0; which < 2; which++) {
          const int input_lvl = (which == 0) ? level_ : output_level_;
          if (input_lvl != lvl) continue;
          for (FileMetaData* in : inputs_[which]) {
            if (in->number == f->number) {
              is_input = true;
              break;
            }
          }
        }
        if (is_input) continue;
        if (user_cmp->Compare(user_key, f->smallest.user_key()) >= 0 &&
            user_cmp->Compare(user_key, f->largest.user_key()) <= 0) {
          return false;
        }
      }
    }
  }
  return true;
}

void Compaction::ReleaseInputs() {
  if (input_version_ != nullptr) {
    input_version_->Unref();
    input_version_ = nullptr;
  }
}

}  // namespace acheron
