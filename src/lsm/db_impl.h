// DBImpl: the concrete Acheron engine.
//
// Concurrency model (see DESIGN.md for the full protocol): one DB mutex
// protects the metadata -- memtable pointers, the version set, the writer
// queue, stats -- but the expensive work happens with the mutex *released*:
//
//  * Writers funnel through a leveldb-style queue in Write(). The front
//    writer becomes the leader, absorbs the batches queued behind it
//    (group commit, one WAL append + at most one fsync per group), and
//    applies the merged batch to the WAL and memtable with the mutex
//    dropped; followers sleep on per-writer condition variables.
//  * When the memtable fills, MakeRoomForWrite rotates the WAL and moves
//    mem_ to the immutable imm_ slot. With background_compactions=true the
//    flush (and any planner-driven compactions) run on the Env's background
//    thread via Env::Schedule; with background_compactions=false they run
//    synchronously in the writer, exactly like the original engine.
//  * The pipeline *replays the synchronous compaction schedule*: work is
//    organized into rounds (flush imm_, then compact until the planner is
//    satisfied), each round picks and drops against the sequence horizon
//    captured when its memtable was swapped out (pending_flush_horizon_),
//    and imm_ is only flushed at round boundaries. Tombstone-TTL expiry is
//    enforced inline in the write path in both modes (see
//    pending_ttl_floor_). Concurrency therefore changes *when* work
//    executes, not *what* it does: a single-threaded writer produces the
//    same LSM shape in both modes, which delete_persistence_test and the
//    EXPERIMENTS.md E-series rely on.
//  * All flush/compaction/purge work holds the exclusive "compaction slot"
//    (compaction_active_), because compaction I/O runs unlocked and two
//    jobs could otherwise pick overlapping inputs.
//
// Reads never take the mutex at all: Get/NewIterator acquire the current
// ReadState — an immutable, refcounted {mem, imm, version} bundle published
// by writers with a single atomic pointer store — via a lock-free
// load+ref+recheck, and read-path counters are relaxed atomics. Retired
// ReadStates are torn down on the writer side (retire/drain protocol); see
// the ReadState comment below and DESIGN.md "Read path".
#ifndef ACHERON_LSM_DB_IMPL_H_
#define ACHERON_LSM_DB_IMPL_H_

#include <atomic>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/core/compaction_planner.h"
#include "src/core/persistence_monitor.h"
#include "src/lsm/db.h"
#include "src/lsm/dbformat.h"
#include "src/lsm/snapshot.h"
#include "src/lsm/stats.h"
#include "src/lsm/version_set.h"
#include "src/lsm/write_batch.h"
#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"
#include "src/vlog/vlog_reader.h"
#include "src/vlog/vlog_writer.h"
#include "src/wal/log_writer.h"

namespace acheron {

class MemTable;
class TableBuilder;
class TableCache;

class DBImpl : public DB {
 public:
  DBImpl(const Options& options, const std::string& dbname);

  DBImpl(const DBImpl&) = delete;
  DBImpl& operator=(const DBImpl&) = delete;

  ~DBImpl() override;

  // Implementations of the DB interface.
  Status Put(const WriteOptions&, const Slice& key,
             const Slice& value) override;
  Status Delete(const WriteOptions&, const Slice& key) override;
  Status DeleteRange(const WriteOptions&, const Slice& begin,
                     const Slice& end) override;
  Status Write(const WriteOptions& options, WriteBatch* updates) override;
  Status Get(const ReadOptions& options, const Slice& key,
             std::string* value) override;
  std::vector<Status> MultiGet(const ReadOptions& options,
                               std::span<const Slice> keys,
                               std::vector<std::string>* values) override;
  Iterator* NewIterator(const ReadOptions&) override;
  const Snapshot* GetSnapshot() override;
  void ReleaseSnapshot(const Snapshot* snapshot) override;
  bool GetProperty(const Slice& property, std::string* value) override;
  void CompactRange(const Slice* begin, const Slice* end) override;
  Status FlushMemTable() override;
  Status WaitForCompactions() override;
  DeleteStats GetDeleteStats() override;
  InternalStats GetStats() override;
  Status PurgeSecondaryRange(const Slice& threshold) override;
  Status Resume() override;

  // Extra test/bench hooks.
  // Compact any files in level L that overlap [*begin,*end].
  void TEST_CompactRange(int level, const Slice* begin, const Slice* end);
  // Return an internal iterator over the current DB state (internal keys).
  Iterator* TEST_NewInternalIterator();
  // The planner in use (TTL schedule inspection).
  const CompactionPlanner& TEST_planner() const { return planner_; }

 private:
  friend class DB;
  struct CompactionState;
  struct Writer;

  // An immutable snapshot of the structures a read needs, published by
  // writers with one atomic pointer store and acquired by readers with a
  // lock-free load+ref+recheck. The node's refcount counts the publication
  // itself (1 while the node is read_state_) plus every in-flight reader.
  //
  // Memory is type-stable: nodes are never freed while the DB is open.
  // Retiring a superseded node moves it to retired_read_states_; the
  // writer-side drain (under mutex_) tears down nodes whose refcount has
  // reached zero — Unref'ing mem/imm/current — and recycles them through
  // free_read_states_. A reader can therefore touch a retired (or even
  // recycled) node's refcount at any time without a use-after-free; the
  // recheck of read_state_ after the ref guarantees it only *uses* the
  // fields of the currently published node.
  struct ReadState {
    std::atomic<uint32_t> refs{0};
    MemTable* mem = nullptr;
    MemTable* imm = nullptr;  // may be null
    Version* current = nullptr;
  };

  // Lock-free: returns the current ReadState with one reference held.
  ReadState* AcquireReadState() LOCKS_EXCLUDED(mutex_);
  // Lock-free: drops a reference taken by AcquireReadState. Never tears the
  // node down — that is deferred to the writer-side drain.
  void ReleaseReadState(ReadState* state) { UnrefReadState(this, state); }
  // Iterator-cleanup shape of ReleaseReadState (|arg1| is the DBImpl,
  // |arg2| the ReadState), so iterator destruction stays mutex-free.
  static void UnrefReadState(void* arg1, void* arg2);
  // Re-bundle {mem_, imm_, versions_->current()} into a fresh node, publish
  // it, retire the predecessor, and drain retired nodes. Called after every
  // memtable swap / flush install / version install.
  void PublishReadState() EXCLUSIVE_LOCKS_REQUIRED(mutex_);
  // Tear down retired nodes whose refcount reached zero.
  void DrainRetiredReadStates() EXCLUSIVE_LOCKS_REQUIRED(mutex_);

  // |state_out|, when non-null, receives the pinned ReadState backing the
  // iterator (valid for the iterator's lifetime; the iterator's cleanup
  // drops the reference). NewIterator uses it to aggregate the range
  // tombstones visible to the same snapshot.
  Iterator* NewInternalIterator(const ReadOptions&,
                                SequenceNumber* latest_snapshot,
                                ReadState** state_out = nullptr)
      LOCKS_EXCLUDED(mutex_);

  Status NewDB();

  // Recover the descriptor from persistent storage. May do a significant
  // amount of work to recover recently logged updates.
  Status Recover(VersionEdit* edit, bool* save_manifest)
      EXCLUSIVE_LOCKS_REQUIRED(mutex_);

  // |replayed_deletes| accumulates the tombstones re-inserted from the log,
  // so Recover can restore the monitor's exact written count (journaled
  // baseline + WAL replay).
  Status RecoverLogFile(uint64_t log_number, bool last_log,
                        bool* save_manifest, VersionEdit* edit,
                        SequenceNumber* max_sequence,
                        uint64_t* replayed_deletes,
                        uint64_t* replayed_range_deletes)
      EXCLUSIVE_LOCKS_REQUIRED(mutex_);

  // Delete any unneeded files and stale in-memory entries. Classifies the
  // directory listing under the mutex, then releases it for the unlink loop.
  void RemoveObsoleteFiles() EXCLUSIVE_LOCKS_REQUIRED(mutex_);

  // Record the former level of every table file |edit| retired (skipping
  // numbers it re-adds, i.e. trivial moves) into dead_table_levels_. Called
  // after the edit installs.
  void RecordDeadTableLevels(const VersionEdit& edit)
      EXCLUSIVE_LOCKS_REQUIRED(mutex_);

  // Flush imm_ to an L0 table and clear it. Requires the compaction slot.
  Status CompactMemTable() EXCLUSIVE_LOCKS_REQUIRED(mutex_);

  // Build an SSTable from |mem| and register it in |edit| at level 0. The
  // mutex is released for the table build (|mem| is frozen: either imm_ or
  // a recovery-only memtable no writer can touch).
  Status WriteLevel0Table(MemTable* mem, VersionEdit* edit)
      EXCLUSIVE_LOCKS_REQUIRED(mutex_);

  // Ensure mem_ has room for the next batch: apply L0 slowdown/stop
  // throttles, wait out a busy imm_, and rotate mem_ -> imm_ (plus the WAL)
  // when the write buffer is full or the FADE memtable-tombstone-age
  // trigger fires. |force| (a Write(nullptr) from FlushMemTable) swaps even
  // a non-full memtable. Called by the write-group leader.
  Status MakeRoomForWrite(bool force) EXCLUSIVE_LOCKS_REQUIRED(mutex_);

  // Merge the batches of the writers queued behind the leader into one
  // batch (group commit). Sets *last_writer to the last writer absorbed.
  WriteBatch* BuildBatchGroup(Writer** last_writer)
      EXCLUSIVE_LOCKS_REQUIRED(mutex_);

  // Hand a round to the Env's background thread if a flush is pending
  // (imm_ != nullptr) and none is in flight. Rounds are flush-driven:
  // planner work runs inside the round that flushed, and TTL expiry is
  // enforced inline by the write path, so there is nothing to schedule
  // without a pending flush. No-op when background_compactions=false.
  void MaybeScheduleCompaction() EXCLUSIVE_LOCKS_REQUIRED(mutex_);
  static void BGWork(void* db);
  void BackgroundCall() LOCKS_EXCLUDED(mutex_);

  // Acquire/release the exclusive compaction slot. All flush/compaction/
  // purge work runs inside the slot because its I/O drops the mutex.
  void AcquireCompactionSlot() EXCLUSIVE_LOCKS_REQUIRED(mutex_);
  void ReleaseCompactionSlot() EXCLUSIVE_LOCKS_REQUIRED(mutex_);

  // One round: flush imm_ (if any), then run compactions until the planner
  // is satisfied, all against the horizon captured when the memtable was
  // swapped (or the current sequence if there is no pending flush). Takes
  // the compaction slot for the duration.
  Status RunCompactions() EXCLUSIVE_LOCKS_REQUIRED(mutex_);

  // Run planner-picked compactions until nothing is left to do at
  // |horizon| (both the planner's TTL clock and the drop horizon). Caller
  // must hold the compaction slot.
  Status MaybeCompact(SequenceNumber horizon) EXCLUSIVE_LOCKS_REQUIRED(mutex_);

  Status DoCompactionWork(CompactionState* compact, SequenceNumber horizon)
      EXCLUSIVE_LOCKS_REQUIRED(mutex_);
  Status OpenCompactionOutputFile(CompactionState* compact)
      LOCKS_EXCLUDED(mutex_);
  Status FinishCompactionOutputFile(CompactionState* compact, Iterator* input)
      LOCKS_EXCLUDED(mutex_);
  Status InstallCompactionResults(CompactionState* compact)
      EXCLUSIVE_LOCKS_REQUIRED(mutex_);
  void CleanupCompaction(CompactionState* compact)
      EXCLUSIVE_LOCKS_REQUIRED(mutex_);

  // ---- Background-error state machine (transient-fault tolerance) ----
  //
  // Replaces the old sticky bg_error_: background failures are classified
  // by subsystem and errno class and drive a small state machine,
  //
  //     kOk -> kRetrying ----------> kFatal      (budget exhausted)
  //      ^        |
  //      |        +----------------> kFatal      (corruption, always)
  //      `---- (round succeeds)
  //     kOk -> kDegradedReadOnly -> kOk          (ENOSPC; space returns)
  //     kDegradedReadOnly --------> kFatal       (never: space errors only
  //                                               resolve or persist)
  //
  // While kRetrying, failed flush/compaction rounds are re-run with
  // exponential backoff (deterministic, jitterless); WAL and MANIFEST
  // failures consume two attempts per failure so they escalate faster.
  // While kDegradedReadOnly, writes fail with Status::NoSpace but the
  // lock-free read path stays fully live; a space-watcher probe (or
  // DB::Resume) transitions back to kOk. kFatal is sticky and equals the
  // old behavior.

  // Where a background failure occurred; determines escalation speed and
  // whether the WAL must rotate before the next record.
  enum class ErrorSubsystem { kFlush, kCompaction, kWalSync, kManifest };
  enum class BackgroundErrorState { kOk, kRetrying, kDegradedReadOnly, kFatal };

  // Classify |s| and advance the state machine. All transitions happen
  // here, in ClearBackgroundError, and in TryResumeFromNoSpace -- each
  // under mutex_ (checked by tools/acheron_check.py).
  void RecordBackgroundError(const Status& s, ErrorSubsystem subsystem)
      EXCLUSIVE_LOCKS_REQUIRED(mutex_);

  // A background round completed while kRetrying: the episode recovered.
  // No-op in any other state.
  void ClearBackgroundError() EXCLUSIVE_LOCKS_REQUIRED(mutex_);

  // Probe the filesystem (mutex released for the I/O) and, if space has
  // returned while kDegradedReadOnly, transition back to kOk and restart
  // background work. Returns OK once writable, the space error otherwise.
  Status TryResumeFromNoSpace() EXCLUSIVE_LOCKS_REQUIRED(mutex_);

  // Background work (flush/compaction rounds) may proceed in this state --
  // possibly as a retry. False once fatal or degraded.
  bool BackgroundWorkAllowed() const EXCLUSIVE_LOCKS_REQUIRED(mutex_) {
    return bg_error_state_ == BackgroundErrorState::kOk ||
           bg_error_state_ == BackgroundErrorState::kRetrying;
  }

  // RunCompactions, plus an inline unlock/backoff/retry loop for the
  // synchronous-mode call sites (background mode retries by re-scheduling
  // the round through Env::Schedule instead). Returns the final status;
  // clears the error episode on success.
  Status RunCompactionsWithRetry() EXCLUSIVE_LOCKS_REQUIRED(mutex_);

  // Consume the scheduled backoff for an in-writer retry (mutex released
  // while sleeping). Returns true if the episode is still kRetrying -- the
  // caller should re-attempt; false in any other state.
  bool BackoffForRetry() EXCLUSIVE_LOCKS_REQUIRED(mutex_);

  // Kick off the ENOSPC space watcher if configured and not running.
  void MaybeStartSpaceWatcher() EXCLUSIVE_LOCKS_REQUIRED(mutex_);
  static void SpaceWatcherWork(void* db);
  void SpaceWatcherCall() LOCKS_EXCLUDED(mutex_);

  // The oldest sequence number any reader may still need.
  SequenceNumber SmallestSnapshot() const EXCLUSIVE_LOCKS_REQUIRED(mutex_);

  // Fold the atomic read-path counters (gets, gets_found, bloom_useful,
  // iter_tombstones_skipped) into an InternalStats snapshot copy.
  void MergeReadPathCounters(InternalStats* merged) const;

  // Recompute next_ttl_deadline_ from the current version: the earliest
  // logical time at which some file's oldest tombstone will exceed its
  // level's cumulative TTL.
  void ComputeNextTtlDeadline() EXCLUSIVE_LOCKS_REQUIRED(mutex_);

  // Rewrite one table file, dropping entries whose secondary key is below
  // |threshold|; emits the replacement (if non-empty) into |edit|. The
  // rewrite I/O runs with the mutex released (caller holds the compaction
  // slot, which keeps |f| alive and unrivaled).
  Status RewriteFileForPurge(FileMetaData* f, int level, const Slice& threshold,
                             VersionEdit* edit)
      EXCLUSIVE_LOCKS_REQUIRED(mutex_);

  // ---- Value log (key-value separation; see src/vlog/ and DESIGN.md) ----
  //
  // Values at or above Options::value_separation_threshold are appended to
  // an append-only, checksummed value-log segment by the write-group leader
  // (in its unlocked section -- one leader at a time serializes appends, the
  // same argument that covers log_), leaving a (segment, offset, size)
  // pointer in the WAL/memtable/SSTs. The registry of segments lives in the
  // VersionSet and is journaled through the MANIFEST (tags 13-16), so the
  // set of value-bearing files recovers exactly like the set of tables.

  bool VlogEnabled() const { return options_.value_separation_threshold > 0; }

  // Open a fresh head segment and register it (unsealed) in |edit|.
  Status NewVlogHead(VersionEdit* edit) EXCLUSIVE_LOCKS_REQUIRED(mutex_);

  // Seal the current head: flush + sync + close the file and record the
  // final sealed extent in |edit|. Sync-before-install: callers LogAndApply
  // |edit| only after this returns OK, so a "sealed" registry entry always
  // describes durable bytes.
  Status SealVlogHead(VersionEdit* edit) EXCLUSIVE_LOCKS_REQUIRED(mutex_);

  // Seal the head (if it holds values), open a successor, and install both
  // through one immediately-applied edit. Runs at every memtable swap --
  // which keeps all pointers into a sealed segment inside a single memtable
  // generation, the invariant vLog GC's safety proof rests on -- and when
  // the head exceeds Options::vlog_segment_size or is poisoned by an
  // append/sync error (vlog_rotation_pending_).
  Status RotateVlogHead() EXCLUSIVE_LOCKS_REQUIRED(mutex_);

  // Recompute next_vlog_gc_deadline_ from the registry's pending purges.
  void ComputeNextVlogGcDeadline() EXCLUSIVE_LOCKS_REQUIRED(mutex_);

  // Collect every GC-eligible sealed segment: FADE deadline reached
  // (earliest pending purge_seq + D_th/2 <= now) or live-byte ratio at or
  // below Options::vlog_gc_live_ratio. Caller holds the compaction slot.
  Status MaybeVlogGc() EXCLUSIVE_LOCKS_REQUIRED(mutex_);

  // Relocate |segment|'s live values (keyed back-check through the tables
  // that still point at it) into a fresh sealed segment, then drop it from
  // the registry and journal the value-purge latencies of its pending
  // purges. Caller holds the compaction slot.
  Status CollectVlogSegment(uint64_t segment) EXCLUSIVE_LOCKS_REQUIRED(mutex_);

  // Rewrite |f|, redirecting every pointer into |victim| at |reloc|; all
  // other entries are copied verbatim (same level, preserved run_id --
  // mirrors RewriteFileForPurge). The rewrite I/O runs unlocked.
  Status RewriteFileForVlogGc(const FileMetaData* f, int level,
                              uint64_t victim, vlog::Writer* reloc,
                              VersionEdit* edit, uint64_t* relocated_values,
                              uint64_t* relocated_bytes)
      EXCLUSIVE_LOCKS_REQUIRED(mutex_);

  // Recovery: reconcile the recovered registry against the .vlog files on
  // disk. The unsealed head (if any) is CRC-scanned and logically sealed at
  // its valid extent via |edit|; recovered_vlog_extents_ is filled for WAL
  // pointer validation during replay.
  Status RecoverVlog(VersionEdit* edit, bool* save_manifest)
      EXCLUSIVE_LOCKS_REQUIRED(mutex_);

  // Lock-free: dereference an encoded value pointer (keyed back-check
  // against |user_key|) through the reader cache.
  Status DerefValuePointer(const Slice& encoded, const Slice& user_key,
                           std::string* value);

  // Constant after construction.
  Env* const env_;
  const InternalKeyComparator internal_comparator_;
  const Options options_;  // sanitized
  const bool owns_cache_;
  const bool owns_filter_policy_;
  const std::string dbname_;

  // table_cache_ provides its own synchronization.
  std::unique_ptr<TableCache> table_cache_;

  // State below is protected by mutex_ (enforced by the thread-safety
  // analysis under Clang; see src/util/thread_annotations.h).
  mutable Mutex mutex_;
  std::atomic<bool> shutting_down_{false};
  MemTable* mem_ GUARDED_BY(mutex_);
  MemTable* imm_ GUARDED_BY(mutex_);  // memtable being flushed; may be null
  // The sequence horizon captured when mem_ was swapped into imm_: the
  // round that flushes imm_ picks and drops against this value, so the
  // compaction schedule matches what synchronous mode would have done at
  // the swap point regardless of how far writers have raced ahead.
  SequenceNumber pending_flush_horizon_ GUARDED_BY(mutex_) = 0;
  // Conservative lower bound on the TTL deadline the pending imm_ flush
  // will introduce (its earliest tombstone + level-0's cumulative TTL).
  // next_ttl_deadline_ only learns about a file once its flush installs;
  // without this floor a writer could race past the deadline while the
  // flush is still queued behind it. UINT64_MAX when imm_ is null or
  // tombstone-free. Installs never lower existing deadlines (moving a
  // file down adds TTL budget), so the floor only needs to track the
  // pending flush.
  uint64_t pending_ttl_floor_ GUARDED_BY(mutex_) = UINT64_MAX;
  // Monitor written-count captured when mem_ was swapped into imm_. At that
  // instant the new (empty) WAL holds no deletes, so this equals the number
  // of tombstones in all WALs older than the flush edit's log_number; the
  // flush edit journals it (SetMonitorWritten) so recovery can reconstruct
  // the exact written count as journaled value + deletes re-counted from
  // the surviving WALs.
  uint64_t pending_written_at_swap_ GUARDED_BY(mutex_) = 0;
  // Range-delete counterpart of pending_written_at_swap_, captured at the
  // same instant and journaled by the same flush edit (kMonitorRangeWritten).
  uint64_t pending_range_written_at_swap_ GUARDED_BY(mutex_) = 0;
  std::unique_ptr<WritableFile> logfile_ GUARDED_BY(mutex_);
  uint64_t logfile_number_ GUARDED_BY(mutex_);
  // The log number created by the swap that produced the current imm_:
  // the flush edit retires exactly the logs older than this. Usually
  // equals logfile_number_, but a WAL-recovery rotation (see
  // wal_rotation_pending_) can advance logfile_number_ while imm_ is still
  // pending -- retiring by the *current* number would drop un-flushed
  // acked records that live in the swap-time log.
  uint64_t pending_log_number_at_swap_ GUARDED_BY(mutex_) = 0;
  std::unique_ptr<wal::Writer> log_ GUARDED_BY(mutex_);

  // Writer queue: the front writer is the group leader and the only thread
  // that touches the WAL/memtable; it does so with the mutex released (the
  // pointers are captured under the lock first).
  std::deque<Writer*> writers_ GUARDED_BY(mutex_);
  WriteBatch tmp_batch_ GUARDED_BY(mutex_);  // scratch for group commit

  // Async group-commit WAL syncs (Options::async_wal_sync) still in flight
  // on logfile_. Incremented by the leader before it promotes a successor
  // (so no later leader can rotate the WAL out from under the submitted
  // fsync), decremented when the completion posts; MakeRoomForWrite drains
  // it to zero before destroying the outgoing log file.
  int wal_syncs_inflight_ GUARDED_BY(mutex_) = 0;
  CondVar wal_sync_done_;  // paired with mutex_

  // True while a flush/compaction/purge owns the (single) compaction slot.
  bool compaction_active_ GUARDED_BY(mutex_);
  // True while a background round is queued on or running in the Env's
  // worker thread.
  bool bg_compaction_scheduled_ GUARDED_BY(mutex_);
  // Signaled when background work (or a slot holder) finishes or the imm_
  // flush completes; waited on by throttled writers, WaitForCompactions,
  // the destructor, and slot acquisition.
  CondVar background_work_finished_signal_;  // paired with mutex_

  SnapshotList snapshots_ GUARDED_BY(mutex_);

  // Set of table files to protect from deletion because they are part of
  // ongoing work.
  std::set<uint64_t> pending_outputs_ GUARDED_BY(mutex_);

  // Former level of each dead table file awaiting unlink, recorded when the
  // VersionEdit that retired it installed. RemoveObsoleteFiles unlinks dead
  // tables deepest-level-first (oldest run first within a level): entries
  // that shadow other entries always sit in a *shallower* file, so at every
  // prefix of the unlink order the files still on disk form a
  // resurrection-free set — a crash mid-cleanup followed by RepairDB (which
  // salvages whatever remains) can never expose a value whose tombstone
  // file was already unlinked.
  std::map<uint64_t, int> dead_table_levels_ GUARDED_BY(mutex_);

  std::unique_ptr<VersionSet> versions_ GUARDED_BY(mutex_);

  // Unguarded alias of versions_.get(), set once in the constructor and
  // never changed. The lock-free read path may reach exactly one member
  // through it: the atomic last-sequence accessor (LastSequenceAcquire).
  // Everything else on VersionSet still requires mutex_ via versions_.
  VersionSet* version_set_lockfree_ = nullptr;

  // The currently published ReadState (acquire/release pairing with
  // PublishReadState). Null only before DB::Open publishes the first state
  // and after the destructor tears the last one down.
  std::atomic<ReadState*> read_state_{nullptr};
  // Superseded ReadStates awaiting teardown (refcount may still be held by
  // in-flight readers) and zero-ref nodes ready for reuse. ACQUIRED_AFTER
  // is implicit: both are only touched with mutex_ already held.
  std::vector<ReadState*> retired_read_states_ GUARDED_BY(mutex_);
  std::vector<ReadState*> free_read_states_ GUARDED_BY(mutex_);

  CompactionPlanner planner_;  // immutable after construction
  DeletePersistenceMonitor monitor_;  // provides its own synchronization
  InternalStats stats_ GUARDED_BY(mutex_);

  // Tombstones stepped over by live DBIter instances. Iterators outlive any
  // mutex_ critical section and run concurrently with writers, so this
  // counter is atomic rather than folded under mutex_; it is merged into
  // InternalStats snapshots on read.
  std::atomic<uint64_t> iter_tombstones_skipped_{0};

  // Read-path counters. Get never holds mutex_, so these are relaxed
  // atomics rather than fields of the mutex-guarded stats_; they are merged
  // into InternalStats snapshots on read, like iter_tombstones_skipped_
  // above (bloom_useful is merged from the table cache's aggregate).
  std::atomic<uint64_t> gets_{0};
  std::atomic<uint64_t> gets_found_{0};

  // Logical time at which the next file-TTL expiry fires; writes past this
  // point invoke the compaction machinery even without a flush. UINT64_MAX
  // when no live tombstone is on the clock.
  uint64_t next_ttl_deadline_ GUARDED_BY(mutex_) = UINT64_MAX;

  // ---- Background-error state (see the state-machine comment above) ----

  // Last background error recorded. Meaningful whenever bg_error_state_ is
  // not kOk; returned to writers when kFatal, and by Resume when the DB is
  // past recovery.
  Status bg_error_ GUARDED_BY(mutex_);
  BackgroundErrorState bg_error_state_ GUARDED_BY(mutex_) =
      BackgroundErrorState::kOk;
  ErrorSubsystem bg_error_subsystem_ GUARDED_BY(mutex_) =
      ErrorSubsystem::kCompaction;
  // Attempts consumed by the current error episode (resets on recovery).
  int bg_error_attempts_ GUARDED_BY(mutex_) = 0;
  // Backoff the next background round should sleep before starting;
  // consumed (and zeroed) with the mutex *released* at the top of
  // BackgroundCall / inside RunCompactionsWithRetry.
  uint64_t retry_backoff_micros_ GUARDED_BY(mutex_) = 0;
  // A WAL append or sync failed: the wal::Writer's block arithmetic may
  // have diverged from the bytes that reached the file, so the next record
  // must go to a fresh log (MakeRoomForWrite performs the rotation; a
  // retried append in place could be mis-parsed by recovery).
  bool wal_rotation_pending_ GUARDED_BY(mutex_) = false;
  // True while the ENOSPC space watcher is queued on or running in the
  // Env's worker; the destructor waits for it to drain.
  bool space_watcher_scheduled_ GUARDED_BY(mutex_) = false;
  // Serializes TryResumeFromNoSpace probes (the probe I/O drops mutex_).
  bool resume_probe_active_ GUARDED_BY(mutex_) = false;

  // ---- Value-log state ----

  // Head segment writer. Rotated only under mutex_; the group leader
  // appends through a pointer captured under the lock -- exactly the
  // log_/logfile_ protocol, safe for the same one-leader-awake reason.
  std::unique_ptr<vlog::Writer> vlog_ GUARDED_BY(mutex_);
  // Pointer dereferences on the lock-free read path (provides its own
  // synchronization; a leaf lock under tools/lock_order.txt).
  vlog::ReaderCache vlog_readers_;
  // Dereferences served; relaxed atomic because Get/iterators never hold
  // mutex_. Merged into stats snapshots like gets_.
  std::atomic<uint64_t> vlog_reads_{0};
  // Scratch batch for the leader's value-separation transform (only the
  // leader touches it, through a pointer captured under the lock -- the
  // tmp_batch_ argument).
  WriteBatch separated_batch_ GUARDED_BY(mutex_);
  // A vLog append/flush/sync failed: the writer's offset arithmetic may
  // have diverged from the file, so the head must rotate before the next
  // separated value lands (same contract as wal_rotation_pending_).
  bool vlog_rotation_pending_ GUARDED_BY(mutex_) = false;
  // Earliest logical time at which some segment's pending value purges hit
  // the GC deadline (earliest purge_seq + D_th/2); UINT64_MAX when none.
  // Checked by the write path's inline deadline loop alongside
  // next_ttl_deadline_, so value purges obey the same clock discipline in
  // both pipeline modes.
  uint64_t next_vlog_gc_deadline_ GUARDED_BY(mutex_) = UINT64_MAX;
  // Durable byte extent per segment as recovered (sealed extent, or the
  // CRC-scanned extent of the unsealed head). Used only during Recover: a
  // replayed WAL pointer past its segment's extent proves the write was
  // never acked (the vLog syncs before the WAL on the ack path), so replay
  // stops there -- the vLog analogue of torn-WAL-tail truncation.
  std::map<uint64_t, uint64_t> recovered_vlog_extents_ GUARDED_BY(mutex_);
};

// Sanitize db options: clamp user-supplied values to reasonable ranges and
// fill defaults (env, comparator).
Options SanitizeOptions(const std::string& dbname, const Options& src);

}  // namespace acheron

#endif  // ACHERON_LSM_DB_IMPL_H_
