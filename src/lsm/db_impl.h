// DBImpl: the concrete Acheron engine.
//
// Concurrency model: a single DB mutex protects all mutable state. Flushes
// and compactions run synchronously inside the write path when a trigger
// fires (deterministic write stalls instead of background threads), which
// makes delete-persistence behaviour exactly reproducible. Reads share the
// mutex only to pin the memtable/version and then proceed lock-free.
#ifndef ACHERON_LSM_DB_IMPL_H_
#define ACHERON_LSM_DB_IMPL_H_

#include <atomic>
#include <memory>
#include <set>
#include <string>

#include "src/core/compaction_planner.h"
#include "src/core/persistence_monitor.h"
#include "src/lsm/db.h"
#include "src/lsm/dbformat.h"
#include "src/lsm/snapshot.h"
#include "src/lsm/stats.h"
#include "src/lsm/version_set.h"
#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"
#include "src/wal/log_writer.h"

namespace acheron {

class MemTable;
class TableBuilder;
class TableCache;

class DBImpl : public DB {
 public:
  DBImpl(const Options& options, const std::string& dbname);

  DBImpl(const DBImpl&) = delete;
  DBImpl& operator=(const DBImpl&) = delete;

  ~DBImpl() override;

  // Implementations of the DB interface.
  Status Put(const WriteOptions&, const Slice& key,
             const Slice& value) override;
  Status Delete(const WriteOptions&, const Slice& key) override;
  Status Write(const WriteOptions& options, WriteBatch* updates) override;
  Status Get(const ReadOptions& options, const Slice& key,
             std::string* value) override;
  Iterator* NewIterator(const ReadOptions&) override;
  const Snapshot* GetSnapshot() override;
  void ReleaseSnapshot(const Snapshot* snapshot) override;
  bool GetProperty(const Slice& property, std::string* value) override;
  void CompactRange(const Slice* begin, const Slice* end) override;
  Status FlushMemTable() override;
  Status WaitForCompactions() override;
  DeleteStats GetDeleteStats() override;
  InternalStats GetStats() override;
  Status PurgeSecondaryRange(const Slice& threshold) override;

  // Extra test/bench hooks.
  // Compact any files in level L that overlap [*begin,*end].
  void TEST_CompactRange(int level, const Slice* begin, const Slice* end);
  // Return an internal iterator over the current DB state (internal keys).
  Iterator* TEST_NewInternalIterator();
  // The planner in use (TTL schedule inspection).
  const CompactionPlanner& TEST_planner() const { return planner_; }

 private:
  friend class DB;
  struct CompactionState;

  Iterator* NewInternalIterator(const ReadOptions&,
                                SequenceNumber* latest_snapshot)
      LOCKS_EXCLUDED(mutex_);

  Status NewDB();

  // Recover the descriptor from persistent storage. May do a significant
  // amount of work to recover recently logged updates.
  Status Recover(VersionEdit* edit, bool* save_manifest)
      EXCLUSIVE_LOCKS_REQUIRED(mutex_);

  Status RecoverLogFile(uint64_t log_number, bool last_log,
                        bool* save_manifest, VersionEdit* edit,
                        SequenceNumber* max_sequence)
      EXCLUSIVE_LOCKS_REQUIRED(mutex_);

  // Delete any unneeded files and stale in-memory entries.
  void RemoveObsoleteFiles() EXCLUSIVE_LOCKS_REQUIRED(mutex_);

  // Flush the current memtable to an L0 table and swap in a fresh one.
  Status CompactMemTable() EXCLUSIVE_LOCKS_REQUIRED(mutex_);

  // Build an SSTable from |mem| and register it in |edit| at level 0. The
  // mutex stays held across the IO: the *active* memtable is being flushed,
  // so concurrent writers must stall behind it (see DESIGN.md).
  Status WriteLevel0Table(MemTable* mem, VersionEdit* edit)
      EXCLUSIVE_LOCKS_REQUIRED(mutex_);

  // Flush / stall logic ahead of a write of |bytes| user bytes.
  Status MakeRoomForWrite() EXCLUSIVE_LOCKS_REQUIRED(mutex_);

  // Run compactions until the planner reports nothing to do.
  Status MaybeCompact() EXCLUSIVE_LOCKS_REQUIRED(mutex_);

  Status DoCompactionWork(CompactionState* compact)
      EXCLUSIVE_LOCKS_REQUIRED(mutex_);
  Status OpenCompactionOutputFile(CompactionState* compact)
      EXCLUSIVE_LOCKS_REQUIRED(mutex_);
  Status FinishCompactionOutputFile(CompactionState* compact, Iterator* input)
      EXCLUSIVE_LOCKS_REQUIRED(mutex_);
  Status InstallCompactionResults(CompactionState* compact)
      EXCLUSIVE_LOCKS_REQUIRED(mutex_);
  void CleanupCompaction(CompactionState* compact)
      EXCLUSIVE_LOCKS_REQUIRED(mutex_);

  void RecordBackgroundError(const Status& s)
      EXCLUSIVE_LOCKS_REQUIRED(mutex_);

  // The oldest sequence number any reader may still need.
  SequenceNumber SmallestSnapshot() const EXCLUSIVE_LOCKS_REQUIRED(mutex_);

  // Recompute next_ttl_deadline_ from the current version: the earliest
  // logical time at which some file's oldest tombstone will exceed its
  // level's cumulative TTL.
  void ComputeNextTtlDeadline() EXCLUSIVE_LOCKS_REQUIRED(mutex_);

  // Rewrite one table file, dropping entries whose secondary key is below
  // |threshold|; emits the replacement (if non-empty) into |edit|.
  Status RewriteFileForPurge(FileMetaData* f, int level, const Slice& threshold,
                             VersionEdit* edit)
      EXCLUSIVE_LOCKS_REQUIRED(mutex_);

  // Constant after construction.
  Env* const env_;
  const InternalKeyComparator internal_comparator_;
  const Options options_;  // sanitized
  const bool owns_cache_;
  const std::string dbname_;

  // table_cache_ provides its own synchronization.
  std::unique_ptr<TableCache> table_cache_;

  // State below is protected by mutex_ (enforced by the thread-safety
  // analysis under Clang; see src/util/thread_annotations.h).
  mutable Mutex mutex_;
  MemTable* mem_ GUARDED_BY(mutex_);
  std::unique_ptr<WritableFile> logfile_ GUARDED_BY(mutex_);
  uint64_t logfile_number_ GUARDED_BY(mutex_);
  std::unique_ptr<wal::Writer> log_ GUARDED_BY(mutex_);

  SnapshotList snapshots_ GUARDED_BY(mutex_);

  // Set of table files to protect from deletion because they are part of
  // ongoing work.
  std::set<uint64_t> pending_outputs_ GUARDED_BY(mutex_);

  std::unique_ptr<VersionSet> versions_ GUARDED_BY(mutex_);

  CompactionPlanner planner_;  // immutable after construction
  DeletePersistenceMonitor monitor_;  // provides its own synchronization
  InternalStats stats_ GUARDED_BY(mutex_);

  // Tombstones stepped over by live DBIter instances. Iterators outlive any
  // mutex_ critical section and run concurrently with writers, so this
  // counter is atomic rather than folded under mutex_; it is merged into
  // InternalStats snapshots on read.
  std::atomic<uint64_t> iter_tombstones_skipped_{0};

  // Logical time at which the next file-TTL expiry fires; writes past this
  // point invoke the compaction loop even without a flush. UINT64_MAX when
  // no live tombstone is on the clock.
  uint64_t next_ttl_deadline_ GUARDED_BY(mutex_) = UINT64_MAX;

  // Sticky error: once set, all writes fail with it.
  Status bg_error_ GUARDED_BY(mutex_);
};

// Sanitize db options: clamp user-supplied values to reasonable ranges and
// fill defaults (env, comparator).
Options SanitizeOptions(const std::string& dbname, const Options& src);

}  // namespace acheron

#endif  // ACHERON_LSM_DB_IMPL_H_
