// DBImpl: the concrete Acheron engine.
//
// Concurrency model: a single DB mutex protects all mutable state. Flushes
// and compactions run synchronously inside the write path when a trigger
// fires (deterministic write stalls instead of background threads), which
// makes delete-persistence behaviour exactly reproducible. Reads share the
// mutex only to pin the memtable/version and then proceed lock-free.
#ifndef ACHERON_LSM_DB_IMPL_H_
#define ACHERON_LSM_DB_IMPL_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <set>
#include <string>

#include "src/core/compaction_planner.h"
#include "src/core/persistence_monitor.h"
#include "src/lsm/db.h"
#include "src/lsm/dbformat.h"
#include "src/lsm/snapshot.h"
#include "src/lsm/stats.h"
#include "src/lsm/version_set.h"
#include "src/wal/log_writer.h"

namespace acheron {

class MemTable;
class TableBuilder;
class TableCache;

class DBImpl : public DB {
 public:
  DBImpl(const Options& options, const std::string& dbname);

  DBImpl(const DBImpl&) = delete;
  DBImpl& operator=(const DBImpl&) = delete;

  ~DBImpl() override;

  // Implementations of the DB interface.
  Status Put(const WriteOptions&, const Slice& key,
             const Slice& value) override;
  Status Delete(const WriteOptions&, const Slice& key) override;
  Status Write(const WriteOptions& options, WriteBatch* updates) override;
  Status Get(const ReadOptions& options, const Slice& key,
             std::string* value) override;
  Iterator* NewIterator(const ReadOptions&) override;
  const Snapshot* GetSnapshot() override;
  void ReleaseSnapshot(const Snapshot* snapshot) override;
  bool GetProperty(const Slice& property, std::string* value) override;
  void CompactRange(const Slice* begin, const Slice* end) override;
  Status FlushMemTable() override;
  Status WaitForCompactions() override;
  DeleteStats GetDeleteStats() override;
  InternalStats GetStats() override;
  Status PurgeSecondaryRange(const Slice& threshold) override;

  // Extra test/bench hooks.
  // Compact any files in level L that overlap [*begin,*end].
  void TEST_CompactRange(int level, const Slice* begin, const Slice* end);
  // Return an internal iterator over the current DB state (internal keys).
  Iterator* TEST_NewInternalIterator();
  // The planner in use (TTL schedule inspection).
  const CompactionPlanner& TEST_planner() const { return planner_; }

 private:
  friend class DB;
  struct CompactionState;

  Iterator* NewInternalIterator(const ReadOptions&,
                                SequenceNumber* latest_snapshot);

  Status NewDB();

  // Recover the descriptor from persistent storage. May do a significant
  // amount of work to recover recently logged updates.
  Status Recover(VersionEdit* edit, bool* save_manifest);

  Status RecoverLogFile(uint64_t log_number, bool last_log,
                        bool* save_manifest, VersionEdit* edit,
                        SequenceNumber* max_sequence);

  // Delete any unneeded files and stale in-memory entries.
  void RemoveObsoleteFiles();

  // Flush the current memtable to an L0 table and swap in a fresh one.
  // REQUIRES: mutex_ held.
  Status CompactMemTable();

  // Build an SSTable from |mem| and register it in |edit| at level 0.
  // REQUIRES: mutex_ held (dropped during the IO).
  Status WriteLevel0Table(MemTable* mem, VersionEdit* edit);

  // Flush / stall logic ahead of a write of |bytes| user bytes.
  // REQUIRES: mutex_ held.
  Status MakeRoomForWrite();

  // Run compactions until the planner reports nothing to do.
  // REQUIRES: mutex_ held.
  Status MaybeCompact();

  Status DoCompactionWork(CompactionState* compact);
  Status OpenCompactionOutputFile(CompactionState* compact);
  Status FinishCompactionOutputFile(CompactionState* compact, Iterator* input);
  Status InstallCompactionResults(CompactionState* compact);
  void CleanupCompaction(CompactionState* compact);

  void RecordBackgroundError(const Status& s);

  // The oldest sequence number any reader may still need.
  SequenceNumber SmallestSnapshot() const;

  // Recompute next_ttl_deadline_ from the current version: the earliest
  // logical time at which some file's oldest tombstone will exceed its
  // level's cumulative TTL. REQUIRES: mutex_ held.
  void ComputeNextTtlDeadline();

  // Rewrite one table file, dropping entries whose secondary key is below
  // |threshold|; emits the replacement (if non-empty) into |edit|.
  Status RewriteFileForPurge(FileMetaData* f, int level, const Slice& threshold,
                             VersionEdit* edit);

  // Constant after construction.
  Env* const env_;
  const InternalKeyComparator internal_comparator_;
  const Options options_;  // sanitized
  const bool owns_cache_;
  const std::string dbname_;

  // table_cache_ provides its own synchronization.
  std::unique_ptr<TableCache> table_cache_;

  // State below is protected by mutex_.
  mutable std::mutex mutex_;
  MemTable* mem_;
  std::unique_ptr<WritableFile> logfile_;
  uint64_t logfile_number_;
  std::unique_ptr<wal::Writer> log_;

  SnapshotList snapshots_;

  // Set of table files to protect from deletion because they are part of
  // ongoing work.
  std::set<uint64_t> pending_outputs_;

  std::unique_ptr<VersionSet> versions_;

  CompactionPlanner planner_;
  DeletePersistenceMonitor monitor_;
  InternalStats stats_;

  // Logical time at which the next file-TTL expiry fires; writes past this
  // point invoke the compaction loop even without a flush. UINT64_MAX when
  // no live tombstone is on the clock.
  uint64_t next_ttl_deadline_ = UINT64_MAX;

  // Sticky error: once set, all writes fail with it.
  Status bg_error_;
};

// Sanitize db options: clamp user-supplied values to reasonable ranges and
// fill defaults (env, comparator).
Options SanitizeOptions(const std::string& dbname, const Options& src);

}  // namespace acheron

#endif  // ACHERON_LSM_DB_IMPL_H_
