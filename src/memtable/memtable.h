// MemTable: in-memory write buffer over a skiplist, keyed by internal keys.
// Tracks tombstone statistics (count + oldest tombstone sequence number) so
// flushes can seed the SSTable's delete-persistence metadata.
#ifndef ACHERON_MEMTABLE_MEMTABLE_H_
#define ACHERON_MEMTABLE_MEMTABLE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "src/core/range_tombstone.h"
#include "src/lsm/dbformat.h"
#include "src/memtable/skiplist.h"
#include "src/table/iterator.h"
#include "src/util/arena.h"

namespace acheron {

class MemTable {
 public:
  // MemTables are reference counted. The initial reference count is zero
  // and the caller must call Ref() at least once.
  explicit MemTable(const InternalKeyComparator& comparator);

  MemTable(const MemTable&) = delete;
  MemTable& operator=(const MemTable&) = delete;

  // Increase reference count.
  void Ref() { ++refs_; }

  // Drop reference count. Delete if no more references exist.
  void Unref() {
    --refs_;
    assert(refs_ >= 0);
    if (refs_ <= 0) {
      delete this;
    }
  }

  // Returns an estimate of the number of bytes of data in use by this
  // data structure. It is safe to call when MemTable is being modified.
  size_t ApproximateMemoryUsage();

  // Return an iterator that yields the contents of the memtable.
  //
  // The caller must ensure that the underlying MemTable remains live while
  // the returned iterator is live. The keys returned by this iterator are
  // internal keys encoded by AppendInternalKey in the db/format.{h,cc}
  // module.
  Iterator* NewIterator();

  // Add an entry into memtable that maps key to value at the specified
  // sequence number and with the specified type. Typically value will be
  // empty if type==kTypeDeletion.
  void Add(SequenceNumber seq, ValueType type, const Slice& key,
           const Slice& value);

  // Record a range tombstone over user keys [begin, end) at |seq|. Range
  // tombstones live outside the skiplist, in an arena-backed lock-free list
  // (single writer pushes with a release store; readers walk concurrently).
  // Inverted ranges (begin >= end) are dropped.
  void AddRange(SequenceNumber seq, const Slice& begin, const Slice& end);

  // If memtable contains a value for key, store it in *value and return
  // true. If memtable contains a deletion for key, store a NotFound() error
  // in *status and return true. Else, return false. A non-null |seq_out|
  // receives the matched entry's sequence number so callers can test it
  // against range-tombstone coverage. When the matched entry is a vLog
  // pointer (kTypeValuePointer), |*value| receives the *encoded pointer*
  // and a non-null |*is_pointer| is set to true -- the caller dereferences.
  bool Get(const LookupKey& key, std::string* value, Status* s,
           SequenceNumber* seq_out = nullptr, bool* is_pointer = nullptr);

  // Largest range-tombstone sequence <= |snapshot| covering |user_key|
  // in this memtable, or 0 when uncovered.
  SequenceNumber MaxRangeCoveringSeq(const Slice& user_key,
                                     SequenceNumber snapshot) const;

  // Append every range tombstone in this memtable to |*out| (read-path
  // aggregation and flush).
  void CollectRangeTombstones(std::vector<RangeTombstone>* out) const;

  // ---- Tombstone statistics (Acheron delete-persistence metadata) ----
  //
  // Atomic (relaxed) because under the background pipeline a write-group
  // leader calls Add() with DBImpl::mutex_ released while other threads read
  // these counters under the mutex (GetProperty, MakeRoomForWrite's FADE
  // trigger). The skiplist itself is already safe for concurrent readers.

  // Number of point tombstones added.
  uint64_t num_tombstones() const {
    return num_tombstones_.load(std::memory_order_relaxed);
  }
  // Sequence number of the oldest tombstone added; kMaxSequenceNumber when
  // no tombstone is present.
  SequenceNumber earliest_tombstone_seq() const {
    return earliest_tombstone_seq_.load(std::memory_order_relaxed);
  }
  // Wall-clock microseconds when the oldest tombstone was added.
  uint64_t earliest_tombstone_wall_micros() const {
    return earliest_tombstone_wall_micros_.load(std::memory_order_relaxed);
  }
  uint64_t num_entries() const {
    return num_entries_.load(std::memory_order_relaxed);
  }

  // Range tombstones added; their oldest sequence / wall-clock analogs.
  uint64_t num_range_tombstones() const {
    return num_range_tombstones_.load(std::memory_order_relaxed);
  }
  SequenceNumber earliest_range_tombstone_seq() const {
    return earliest_range_tombstone_seq_.load(std::memory_order_relaxed);
  }
  uint64_t earliest_range_tombstone_wall_micros() const {
    return earliest_range_tombstone_wall_micros_.load(
        std::memory_order_relaxed);
  }

 private:
  friend class MemTableIterator;

  struct KeyComparator {
    const InternalKeyComparator comparator;
    explicit KeyComparator(const InternalKeyComparator& c) : comparator(c) {}
    int operator()(const char* a, const char* b) const;
  };

  typedef SkipList<const char*, KeyComparator> Table;

  // One node of the lock-free range-tombstone list. Immutable once
  // published; the encoded payload is
  //   begin_len varint32 | begin | end_len varint32 | end | seq fixed64
  // laid out directly after the node header in the arena.
  struct RangeDelNode {
    RangeDelNode* next;
    const char* data;
  };

  ~MemTable();  // Private since only Unref() should be used to delete it

  static void DecodeRangeNode(const RangeDelNode* node, Slice* begin,
                              Slice* end, SequenceNumber* seq);

  KeyComparator comparator_;
  int refs_;
  Arena arena_;
  Table table_;
  // Push-front list head: the writer publishes with a release store;
  // readers acquire-load and walk nodes that never change afterwards.
  std::atomic<RangeDelNode*> range_head_;
  std::atomic<uint64_t> num_entries_;
  std::atomic<uint64_t> num_tombstones_;
  std::atomic<SequenceNumber> earliest_tombstone_seq_;
  std::atomic<uint64_t> earliest_tombstone_wall_micros_;
  std::atomic<uint64_t> num_range_tombstones_;
  std::atomic<SequenceNumber> earliest_range_tombstone_seq_;
  std::atomic<uint64_t> earliest_range_tombstone_wall_micros_;
};

}  // namespace acheron

#endif  // ACHERON_MEMTABLE_MEMTABLE_H_
